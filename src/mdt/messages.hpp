// Protocol messages shared by MDT and VPoD.
//
// One envelope type serves every control message so a single NetSim instance
// carries the whole protocol stack (the paper piggybacks VPoD fields on MDT
// messages the same way). Fields are a union-of-needs; each Kind documents
// which fields it uses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/vec.hpp"

namespace gdvr::mdt {

using NodeId = int;

// A node's advertised state: globally unique id, current virtual position,
// estimated position error (VPoD's e_u), and whether it has completed its
// MDT join (join requests are routed through joined nodes only -- they form
// the multi-hop DT that gives greedy forwarding its delivery guarantee).
struct NodeInfo {
  NodeId id = -1;
  Vec pos;
  double err = 1.0;
  bool joined = false;
  // Monotone per-node position version, bumped on every adjustment (and
  // preserved across reboots). Position state reaches a node over many
  // channels -- direct updates, hellos, replies, second-hand gossip in
  // neighbor-set exchanges -- with different latencies and loss rates; the
  // version decides which copy is freshest, so a lossy direct channel can be
  // repaired by gossip without stale gossip ever clobbering fresher state.
  std::uint64_t pos_version = 0;
  // The sender's incarnation (bumped by the link layer on every crash/rejoin
  // cycle). Receivers order state lexicographically by (incarnation,
  // pos_version) and drop messages from a past life outright, so in-flight
  // messages sent before a crash can never resurrect the dead incarnation's
  // links or coordinates after the node rejoins.
  std::uint32_t incarnation = 0;
};

enum class Kind {
  // VPoD start token, flooded once over physical links. Uses: origin_info
  // (sender's freshly initialized position).
  kToken,
  // Position/error advertisement to a physical neighbor. Uses: origin_info.
  kHello,
  // Find the joined node closest to the origin's position (greedy-forwarded).
  // Uses: origin, target_pos, origin_info, visited, accum_cost, ttl.
  kJoinRequest,
  // Closest node's neighbor set, source-routed back. Uses: origin (replier),
  // target (joiner), origin_info, nbr_infos, route/route_idx, accum_cost.
  kJoinReply,
  // Neighbor-set request to a specific node (greedy toward target_pos with
  // virtual-link detours). The exchange is mutual: the request carries the
  // origin's neighbor set (nbr_infos) so the replier learns from it too.
  // Uses: origin, target, target_pos, origin_info, nbr_infos, visited,
  // route/route_idx/detour, accum_cost, ttl.
  kNbrSetRequest,
  // Uses: origin (replier), target, origin_info, nbr_infos, fwd_cost,
  // route/route_idx, accum_cost.
  kNbrSetReply,
  // VPoD adjustment result pushed to physical and DT neighbors. Direct to
  // physical neighbors; source-routed over the virtual link otherwise.
  // Uses: origin, target, origin_info, route/route_idx.
  kPosUpdate,
  // Application data packet routed live by GDV (see vpod/live_gdv.hpp).
  // Uses: origin, target, target_pos, token (packet id), accum_cost (forward
  // metric cost), ttl, route/route_idx/detour (virtual-link traversal).
  kData,
  // Per-hop acknowledgment of a reliably sent control message (see
  // sim/reliable.hpp). Uses: origin (acking node), target (hop sender),
  // rel_seq (the acknowledged sequence).
  kAck,
  // Liveness probe for the adaptive failure detector (mdt/failure_detector).
  // Sent on a fixed per-node cadence to multi-hop DT neighbors so their
  // phi-accrual detectors see a clean inter-arrival signal (position updates
  // and sync traffic are too bursty to model). Direct to physical neighbors;
  // source-routed over the virtual link otherwise. Uses: origin, target,
  // origin_info, route/route_idx.
  kHeartbeat,
};

struct Envelope {
  Kind kind = Kind::kHello;
  NodeId origin = -1;          // logical source
  NodeId target = -1;          // logical destination (-1: "node closest to target_pos")
  Vec target_pos;              // greedy destination position
  NodeInfo origin_info;        // origin's position/error snapshot

  // Physical trail of the message so far (origin first, excluding the node
  // currently holding the message). Replies reverse this to source-route back.
  std::vector<NodeId> visited;

  // Active source route (for replies, virtual-link detours, pos updates).
  std::vector<NodeId> route;
  int route_idx = 0;  // position of the *current holder* within `route`
  // True while a greedy request is detouring along a stored virtual-link
  // path; greedy forwarding resumes when the detour ends.
  bool detour = false;

  // Cumulative link cost of the reverse path (paper Section III-A: each
  // receiving node x adds c(x, sender), so the final receiver learns its own
  // routing cost back to the message's origin).
  double accum_cost = 0.0;

  std::vector<NodeInfo> nbr_infos;  // payload of replies
  double fwd_cost = 0.0;            // the request's accumulated cost, echoed in the reply
  int ttl = 0;
  std::uint64_t token = 0;          // data-packet id (kData)
  // Reliable-transport hop sequence (sim/reliable.hpp): nonzero while this
  // copy's current hop transfer is ACK/retransmit protected; reset before
  // the next hop reassigns it. 0 = plain unreliable delivery.
  std::uint64_t rel_seq = 0;
};

}  // namespace gdvr::mdt
