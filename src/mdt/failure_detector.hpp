// Adaptive (phi-accrual) failure detection for multi-hop DT neighbors.
//
// The fixed `neighbor_stale_s` soft-state timeout treats every neighbor the
// same: a crashed neighbor lingers for 45 s while an unlucky-but-alive one
// can be reaped by one slow maintenance round. Phi-accrual detection
// (Hayashibara et al., SRDS 2004) instead learns each neighbor's heartbeat
// inter-arrival distribution and turns "how long since the last heartbeat"
// into a continuous suspicion level:
//
//   phi(t) = -log10 P(next inter-arrival > t - t_last)
//
// under a normal model fitted to a sliding window of observed inter-arrival
// times. Crossing a phi threshold declares the neighbor dead. Because the
// model adapts to what the link actually delivers, a 4x delay spike (which
// shifts arrivals by fractions of a second against a multi-second cadence)
// barely moves phi, while a genuine crash drives it past any threshold
// within a few missed heartbeats -- far faster than the fixed timeout, with
// fewer false positives.
//
// The detector is clock-agnostic: callers feed it arrival timestamps from
// the simulation clock and query phi at the current time. Until
// `min_samples` heartbeats have arrived the detector reports suspicion only
// after `bootstrap_stale_s` of silence (the legacy fixed-timeout behavior),
// so freshly established links are never evicted on thin statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/simulator.hpp"

namespace gdvr::mdt {

struct FailureDetectorConfig {
  // Master switch: when false the overlay keeps the fixed neighbor_stale_s
  // soft-state timeout and sends no heartbeats (legacy behavior; golden
  // traces and existing chaos scenarios are unchanged).
  bool enabled = false;
  double heartbeat_period_s = 3.0;   // per-node heartbeat cadence
  double heartbeat_jitter_s = 0.3;   // deterministic desync between nodes
  double phi_threshold = 9.0;        // suspicion level that declares death
  // Variance floor. Heartbeats are plain (unreliable) sends, so the floor is
  // sized to forgive a single lost heartbeat (one period of extra silence
  // stays under the phi threshold) while two consecutive losses -- or a
  // crash -- still cross it within ~1.5 further periods.
  double min_stddev_s = 0.8;
  int min_samples = 4;               // heartbeats required before phi applies
  double bootstrap_stale_s = 45.0;   // silence bound while bootstrapping
  std::size_t window = 32;           // inter-arrival samples retained
  // Tombstone retention for evicted neighbors: while a tombstone stands,
  // second-hand gossip about incarnations <= the evicted one is suppressed
  // (only direct contact, which proves liveness, clears it). Bounded GC: the
  // tombstone is dropped after this long regardless.
  double tombstone_ttl_s = 120.0;
};

class PhiAccrualDetector {
 public:
  PhiAccrualDetector() = default;
  PhiAccrualDetector(const FailureDetectorConfig& config, sim::Time first_heard);

  // Records a heartbeat arrival; the inter-arrival since the previous one
  // becomes a sample of the neighbor's cadence distribution.
  void heartbeat(sim::Time now);

  // Suspicion level at `now`: 0 right after a heartbeat, growing without
  // bound through silence. Scale: phi = 1 means "1 in 10 inter-arrivals are
  // this long", phi = 9 means "1 in 10^9".
  double phi(sim::Time now) const;

  // True when phi exceeds the configured threshold -- or, before the model
  // has min_samples, when silence exceeds bootstrap_stale_s.
  bool suspect(sim::Time now) const;

  sim::Time last_heard() const { return last_; }
  int samples() const { return static_cast<int>(count_); }
  double mean_interval() const;
  double stddev_interval() const;

 private:
  FailureDetectorConfig config_;
  sim::Time last_ = 0.0;
  // Sliding window of inter-arrival samples (ring buffer) with running sums
  // maintained incrementally: O(1) per heartbeat, O(1) per phi query.
  std::vector<double> window_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace gdvr::mdt
