#include "mdt/failure_detector.hpp"

#include <algorithm>
#include <cmath>

namespace gdvr::mdt {

PhiAccrualDetector::PhiAccrualDetector(const FailureDetectorConfig& config, sim::Time first_heard)
    : config_(config), last_(first_heard) {
  window_.resize(std::max<std::size_t>(config.window, 1), 0.0);
}

void PhiAccrualDetector::heartbeat(sim::Time now) {
  const double interval = now - last_;
  last_ = now;
  if (interval <= 0.0) return;  // duplicate delivery within the same instant
  if (count_ >= window_.size()) {
    const double evicted = window_[next_];
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
  } else {
    ++count_;
  }
  window_[next_] = interval;
  sum_ += interval;
  sum_sq_ += interval * interval;
  next_ = (next_ + 1) % window_.size();
}

double PhiAccrualDetector::mean_interval() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double PhiAccrualDetector::stddev_interval() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double mean = sum_ / n;
  return std::sqrt(std::max(sum_sq_ / n - mean * mean, 0.0));
}

double PhiAccrualDetector::phi(sim::Time now) const {
  if (count_ < static_cast<std::size_t>(std::max(config_.min_samples, 1))) return 0.0;
  const double elapsed = now - last_;
  if (elapsed <= 0.0) return 0.0;
  const double mean = mean_interval();
  const double sd = std::max(stddev_interval(), config_.min_stddev_s);
  // P(interval > elapsed) under N(mean, sd): the normal survival function.
  // erfc underflows to 0 around x ~ 27 (phi ~ 320), far beyond any sane
  // threshold; clamp so phi stays finite.
  const double x = (elapsed - mean) / (sd * std::sqrt(2.0));
  const double p = 0.5 * std::erfc(x);
  if (p <= 1e-300) return 300.0;
  return -std::log10(p);
}

bool PhiAccrualDetector::suspect(sim::Time now) const {
  if (count_ < static_cast<std::size_t>(std::max(config_.min_samples, 1)))
    return now - last_ > config_.bootstrap_stale_s;
  return phi(now) > config_.phi_threshold;
}

}  // namespace gdvr::mdt
