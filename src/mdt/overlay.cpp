#include "mdt/overlay.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "geom/delaunay.hpp"
#include "obs/profile.hpp"

namespace gdvr::mdt {

namespace {

std::pair<NodeId, NodeId> norm_pair(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

bool contains(const std::vector<NodeId>& xs, NodeId x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

MdtOverlay::MdtOverlay(Net& net, const MdtConfig& config)
    : net_(net),
      config_(config),
      sync_stats_(static_cast<std::size_t>(net.size())),
      recompute_stats_(static_cast<std::size_t>(net.size())),
      fd_stats_(static_cast<std::size_t>(net.size())),
      dt_retired_(static_cast<std::size_t>(net.size())),
      states_(static_cast<std::size_t>(net.size())) {
  Rng base(0x4D445400ull);  // "MDT" seed for protocol-internal jitter
  rng_.reserve(static_cast<std::size_t>(net.size()));
  for (NodeId u = 0; u < net.size(); ++u)
    rng_.push_back(base.split(static_cast<std::uint64_t>(u)));
}

void MdtOverlay::attach() {
  net_.set_receiver([this](NodeId to, NodeId from, Envelope msg) { handle(to, from, std::move(msg)); });
}

// --------------------------------------------------------------------------
// Lifecycle

void MdtOverlay::activate(NodeId u, const Vec& pos, bool first) {
  NodeState& s = st(u);
  s.active = true;
  s.joined = first;
  s.pos = pos;
  s.err = 1.0;
  s.pos_version += 1;
  send_hello(u);
  if (config_.fd.enabled) schedule_fd_tick(u);
}

void MdtOverlay::start_join(NodeId u) {
  NodeState& s = st(u);
  if (!s.active || s.joined || !net_.alive(u)) return;
  // Rate-limit: Hello announcements and the retry timer may both trigger us.
  const sim::Time now = net_.simulator().now();
  if (now - s.last_join_attempt < 0.8) return;
  s.last_join_attempt = now;
  // Seed: the *joined* physical neighbor closest (in the virtual space) to
  // u. Join requests travel inside the multi-hop DT, where greedy forwarding
  // has its delivery guarantee.
  refresh_phys(u);
  NodeId seed = -1;
  double best = graph::kInf;
  for (const auto& [id, info] : s.phys) {
    if (!info.joined) continue;
    const double d = info.pos.distance(s.pos);
    if (d < best) {
      best = d;
      seed = id;
    }
  }
  if (seed >= 0) {
    Envelope m;
    m.kind = Kind::kJoinRequest;
    m.origin = u;
    m.target = -1;
    m.target_pos = s.pos;
    m.origin_info = info_of(u);
    m.visited = {u};
    m.ttl = config_.greedy_ttl;
    send_ctrl(u, seed, std::move(m));
  }
  // Retry until joined (replies may be lost to dead ends during construction).
  const double delay = 2.0 + rng_at(u).uniform(0.0, 1.0);
  net_.simulator().schedule_in_node(u, delay, [this, u] { start_join(u); });
}

void MdtOverlay::deactivate(NodeId u) {
  net_.set_alive(u, false);
  const std::uint64_t pos_version = st(u).pos_version;
  if (st(u).dyn) {
    // Fold the dying instance's maintenance counters into the per-node
    // retired accumulator so dt_stats() stays monotone across churn.
    const geom::DynamicDtStats d = st(u).dyn->stats();
    geom::DynamicDtStats& r = dt_retired_[static_cast<std::size_t>(u)];
    r.inserts += d.inserts;
    r.removes += d.removes;
    r.moves += d.moves;
    r.move_early_outs += d.move_early_outs;
    r.full_rebuilds += d.full_rebuilds;
    r.walk_fallbacks += d.walk_fallbacks;
  }
  st(u) = NodeState{};  // silent failure: all soft state at u is gone
  // Position versions stay monotonic across reboots, so a rebooted node's
  // fresh position is never out-voted by gossip about its previous life.
  st(u).pos_version = pos_version;
}

geom::DynamicDtStats MdtOverlay::dt_stats() const {
  geom::DynamicDtStats total;
  const auto add = [&total](const geom::DynamicDtStats& d) {
    total.inserts += d.inserts;
    total.removes += d.removes;
    total.moves += d.moves;
    total.move_early_outs += d.move_early_outs;
    total.full_rebuilds += d.full_rebuilds;
    total.walk_fallbacks += d.walk_fallbacks;
  };
  for (const geom::DynamicDtStats& d : dt_retired_) add(d);
  for (const NodeState& s : states_)
    if (s.dyn) add(s.dyn->stats());
  return total;
}

// --------------------------------------------------------------------------
// VPoD hooks

void MdtOverlay::set_position(NodeId u, const Vec& pos, double err) {
  NodeState& s = st(u);
  // The version is a name for the position *value*: only mint a new one when
  // the value changes, so downstream memoization (recompute) sees identical
  // input for an unmoved node. Error updates and the announcement below are
  // unaffected.
  if (!(pos == s.pos)) s.pos_version += 1;
  s.pos = pos;
  s.err = err;
  if (!net_.alive(u)) return;
  // Push the new position to physical neighbors (direct) and multi-hop DT
  // neighbors (source-routed along the stored virtual-link path).
  for (const auto& [id, info] : s.phys) {
    (void)info;
    Envelope m;
    m.kind = Kind::kPosUpdate;
    m.origin = u;
    m.target = id;
    m.origin_info = info_of(u);
    net_.send(u, id, std::move(m));
  }
  for (NodeId y : s.dt_nbrs) {
    if (s.phys.count(y)) continue;
    auto it = s.cand.find(y);
    if (it == s.cand.end() || it->second.path.size() < 2) continue;
    Envelope m;
    m.kind = Kind::kPosUpdate;
    m.origin = u;
    m.target = y;
    m.origin_info = info_of(u);
    m.route = it->second.path;
    m.route_idx = 0;
    const NodeId next = m.route[1];  // read before the envelope is moved from
    net_.send(u, next, std::move(m));
  }
}

void MdtOverlay::run_maintenance_round(NodeId u) {
  NodeState& s = st(u);
  if (!s.active || !net_.alive(u)) return;
  refresh_phys(u);
  send_hello(u);
  // Expire relay soft state.
  const sim::Time now = net_.simulator().now();
  for (auto it = s.relay.begin(); it != s.relay.end();) {
    if (now - it->second.refreshed > config_.relay_ttl_s)
      it = s.relay.erase(it);
    else
      ++it;
  }
  // Soft-state staleness: a non-physical candidate that has sent us nothing
  // (position update, request, reply) for neighbor_stale_s is presumed dead.
  // With the adaptive failure detector on, entries with a fitted detector are
  // governed by phi instead (fd_tick evicts them within a few heartbeat
  // periods of death); the fixed timeout remains the bootstrap fallback for
  // entries that never delivered a heartbeat.
  for (auto it = s.cand.begin(); it != s.cand.end();) {
    const bool fd_governed = config_.fd.enabled && s.fd.count(it->first) > 0;
    const bool stale = !fd_governed && !s.phys.count(it->first) &&
                       now - it->second.last_heard > config_.neighbor_stale_s;
    if (stale) {
      s.pending.erase(it->first);
      s.fd.erase(it->first);
      it = s.cand.erase(it);
    } else {
      ++it;
    }
  }
  // Bounded tombstone GC.
  for (auto it = s.tombstones.begin(); it != s.tombstones.end();) {
    if (now - it->second.created > config_.fd.tombstone_ttl_s)
      it = s.tombstones.erase(it);
    else
      ++it;
  }
  // Per paper, every DT-neighbor pair exchanges a Neighbor-Set Request and
  // Reply each round; the smaller id initiates to keep it to two messages.
  for (NodeId y : s.dt_nbrs) {
    auto it = s.cand.find(y);
    if (it != s.cand.end() && (u < y || !it->second.synced)) it->second.synced = false;
  }
  schedule_recompute(u);

  // Instability detection: a changed N_u means the triangulation around u is
  // still in flux (churn, healed partition, position shifts), and one sync
  // per J period chases it too slowly. Schedule a single follow-up sync
  // within this round; a stable neighborhood never takes this path.
  const bool changed = s.dt_nbrs != s.prev_round_dt;
  s.prev_round_dt = s.dt_nbrs;
  if (changed && config_.resync_after_change_s > 0.0 && !s.resync_scheduled) {
    s.resync_scheduled = true;
    const std::uint32_t inc = net_.incarnation(u);
    net_.simulator().schedule_in_node(u, config_.resync_after_change_s, [this, u, inc] {
      // The state this timer belongs to is gone if u died (and possibly
      // rejoined as a new incarnation) in the meantime.
      if (!net_.alive(u) || net_.incarnation(u) != inc) return;
      NodeState& s2 = st(u);
      s2.resync_scheduled = false;
      if (!s2.active) return;
      for (NodeId y : s2.dt_nbrs) {
        auto it = s2.cand.find(y);
        if (it != s2.cand.end() && (u < y || !it->second.synced)) it->second.synced = false;
      }
      schedule_recompute(u);
    });
  }
}

void MdtOverlay::force_resync(NodeId u) {
  NodeState& s = st(u);
  if (!s.active || !net_.alive(u)) return;
  if (!s.joined) {
    start_join(u);
    return;
  }
  for (NodeId y : s.dt_nbrs) {
    auto it = s.cand.find(y);
    if (it != s.cand.end()) it->second.synced = false;
  }
  schedule_recompute(u);
}

// --------------------------------------------------------------------------
// Incarnation reconciliation + adaptive failure detection

bool MdtOverlay::stale_origin(NodeId u, const NodeInfo& info) {
  const NodeState& s = st(u);
  std::uint32_t recorded = 0;
  auto it = s.cand.find(info.id);
  if (it != s.cand.end()) recorded = it->second.incarnation;
  auto pit = s.phys.find(info.id);
  if (pit != s.phys.end()) recorded = std::max(recorded, pit->second.incarnation);
  if (info.incarnation < recorded) {
    ++fd_at(u).stale_incarnation_dropped;
    return true;
  }
  return false;
}

void MdtOverlay::note_direct_contact(NodeId u, const NodeInfo& info) {
  NodeState& s = st(u);
  auto tomb = s.tombstones.find(info.id);
  // A message straight from the node is proof of life: a tombstone for its
  // current (or an older) incarnation is refuted and cleared, so a falsely
  // evicted neighbor heals within one heartbeat period.
  if (tomb != s.tombstones.end() && info.incarnation >= tomb->second.incarnation)
    s.tombstones.erase(tomb);
}

double MdtOverlay::suspicion(NodeId u, NodeId v) const {
  const NodeState& s = st(u);
  auto it = s.fd.find(v);
  if (it == s.fd.end()) return 0.0;
  return it->second.phi(net_.simulator().now());
}

void MdtOverlay::schedule_fd_tick(NodeId u) {
  // Deterministic per-(node, incarnation) phase so heartbeat ticks across the
  // network desynchronize without drawing from the shared protocol RNG.
  const std::uint32_t inc = net_.incarnation(u);
  const std::uint64_t h = mix64((static_cast<std::uint64_t>(inc) << 32) ^
                                static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)));
  const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double delay = config_.fd.heartbeat_period_s + config_.fd.heartbeat_jitter_s * frac;
  net_.simulator().schedule_in_node(u, delay, [this, u, inc] {
    // The tick chain belongs to one life of u: it dies with the incarnation
    // (reactivation schedules a fresh chain).
    if (!net_.alive(u) || net_.incarnation(u) != inc) return;
    fd_tick(u);
    schedule_fd_tick(u);
  });
}

void MdtOverlay::fd_tick(NodeId u) {
  NodeState& s = st(u);
  if (!s.active) return;
  send_heartbeats(u);
  const sim::Time now = net_.simulator().now();
  // Evict every multi-hop neighbor whose detector has crossed the threshold.
  std::vector<NodeId> dead;
  for (const auto& [y, det] : s.fd)
    if (!s.phys.count(y) && det.suspect(now)) dead.push_back(y);
  for (NodeId y : dead) evict_neighbor(u, y);
}

void MdtOverlay::send_heartbeats(NodeId u) {
  NodeState& s = st(u);
  if (!net_.alive(u)) return;
  // Only multi-hop DT neighbors need explicit probes: physical neighbors are
  // covered by link-layer liveness (refresh_phys), and everything else is
  // transient soft state with its own freshness rules.
  for (NodeId y : s.dt_nbrs) {
    if (s.phys.count(y)) continue;
    auto it = s.cand.find(y);
    if (it == s.cand.end() || it->second.path.size() < 2) continue;
    Envelope m;
    m.kind = Kind::kHeartbeat;
    m.origin = u;
    m.target = y;
    m.origin_info = info_of(u);
    m.route = it->second.path;
    m.route_idx = 0;
    const NodeId next = m.route[1];  // read before the envelope is moved from
    if (net_.send(u, next, std::move(m))) ++fd_at(u).heartbeats_sent;
  }
}

void MdtOverlay::evict_neighbor(NodeId u, NodeId y) {
  NodeState& s = st(u);
  auto it = s.cand.find(y);
  if (it != s.cand.end()) {
    s.tombstones[y] = {it->second.incarnation, net_.simulator().now()};
    ++fd_at(u).tombstones_created;
    s.cand.erase(it);
  }
  s.pending.erase(y);
  s.fd.erase(y);
  ++fd_at(u).evictions;
  schedule_recompute(u);
}

// --------------------------------------------------------------------------
// Receiving

void MdtOverlay::handle(NodeId to, NodeId from, Envelope msg) {
  NodeState& s = st(to);
  if (msg.kind == Kind::kToken) return;  // tokens belong to the layer above (VPoD)
  if (msg.kind == Kind::kAck) {
    if (reliable_ != nullptr) reliable_->on_ack(to, msg.rel_seq);
    return;
  }
  // Reliable-transport hop bookkeeping: ACK the transfer (even when the
  // message is a duplicate -- the earlier ACK may be the thing that was
  // lost) and suppress retransmitted copies already processed.
  if (reliable_ != nullptr && msg.rel_seq != 0) {
    const bool fresh = reliable_->on_receive(to, from, msg.rel_seq);
    msg.rel_seq = 0;
    if (!fresh) return;
  }
  if (msg.kind == Kind::kHello) {
    on_hello(to, msg);
    return;
  }
  if (!s.active) return;

  // Cumulative reverse-path cost (paper Sec. III-A): the receiver x adds
  // c(x, sender), so the final receiver knows its own routing cost back to
  // the origin of the message.
  switch (msg.kind) {
    case Kind::kJoinRequest:
    case Kind::kJoinReply:
    case Kind::kNbrSetRequest:
    case Kind::kNbrSetReply:
      msg.accum_cost += net_.link_cost(to, from);
      break;
    default:
      break;
  }

  // Source-routed relay (replies, position updates, virtual-link detours).
  const bool follows_route =
      msg.kind == Kind::kJoinReply || msg.kind == Kind::kNbrSetReply ||
      ((msg.kind == Kind::kPosUpdate || msg.kind == Kind::kHeartbeat) && !msg.route.empty()) ||
      msg.detour;
  if (follows_route) {
    const auto idx = static_cast<std::size_t>(msg.route_idx);
    if (idx + 1 < msg.route.size() && msg.route[idx + 1] == to) ++msg.route_idx;
    const bool at_end =
        msg.route.empty() || msg.route_idx == static_cast<int>(msg.route.size()) - 1;
    if (!at_end) {
      // Interior relay: refresh the virtual-link forwarding entry and pass on.
      const auto cur = static_cast<std::size_t>(msg.route_idx);
      note_relay(to, msg.route.front(), msg.route.back(), msg.route[cur - 1], msg.route[cur + 1]);
      if (msg.detour) msg.visited.push_back(to);
      forward_routed(to, std::move(msg));
      return;
    }
    if (msg.detour) {
      // Detour finished: resume greedy processing at this node.
      msg.detour = false;
      msg.route.clear();
      msg.route_idx = 0;
    }
  }

  switch (msg.kind) {
    case Kind::kJoinRequest:
      on_join_request(to, std::move(msg));
      break;
    case Kind::kJoinReply:
      on_join_reply(to, std::move(msg));
      break;
    case Kind::kNbrSetRequest:
      on_nbr_set_request(to, std::move(msg));
      break;
    case Kind::kNbrSetReply:
      on_nbr_set_reply(to, std::move(msg));
      break;
    case Kind::kPosUpdate:
      on_pos_update(to, std::move(msg));
      break;
    case Kind::kHeartbeat:
      on_heartbeat(to, msg);
      break;
    default:
      break;
  }
}

void MdtOverlay::on_hello(NodeId u, const Envelope& msg) {
  NodeState& s = st(u);
  if (stale_origin(u, msg.origin_info)) return;
  note_direct_contact(u, msg.origin_info);
  const bool known = s.phys.count(msg.origin_info.id) > 0;
  // Learn/update a physical neighbor's advertised position and error. Stored
  // even before this node activates: the VPoD initialization rules need the
  // positions of already-initialized physical neighbors.
  if (!known || at_least_as_fresh(msg.origin_info, s.phys[msg.origin_info.id].incarnation,
                                  s.phys[msg.origin_info.id].pos_version))
    s.phys[msg.origin_info.id] = msg.origin_info;
  // Neighbor-discovery handshake: a joined node answers a Hello from an
  // unknown or not-yet-joined neighbor (a fresh joiner, or a rebooted node
  // whose state was wiped) with its own Hello, so the joiner can bootstrap
  // without waiting for a maintenance round. Only joined nodes reply, so two
  // unjoined nodes can never ping-pong.
  if ((!known || !msg.origin_info.joined) && s.active && s.joined && net_.alive(u)) {
    Envelope reply;
    reply.kind = Kind::kHello;
    reply.origin = u;
    reply.target = msg.origin_info.id;
    reply.origin_info = info_of(u);
    net_.send(u, msg.origin_info.id, std::move(reply));
  }
  auto it = s.cand.find(msg.origin_info.id);
  if (it != s.cand.end()) {
    if (at_least_as_fresh(msg.origin_info, it->second.incarnation, it->second.pos_version)) {
      it->second.pos = msg.origin_info.pos;
      it->second.err = msg.origin_info.err;
      it->second.pos_version = msg.origin_info.pos_version;
    }
    it->second.incarnation = std::max(it->second.incarnation, msg.origin_info.incarnation);
    it->second.last_heard = net_.simulator().now();
  }
  // A neighbor announcing it joined unblocks our own join immediately (the
  // join wave then travels at message speed instead of retry-timer speed).
  if (msg.origin_info.joined && s.active && !s.joined)
    net_.simulator().schedule_in_node(u, 0.05, [this, u] { start_join(u); });
}

void MdtOverlay::on_join_request(NodeId u, Envelope msg) {
  // Greedy search for the joined node closest to the joiner's position.
  if (forward_request(u, msg)) return;
  // Local minimum: if we are joined, we are (locally) the closest node.
  NodeState& s = st(u);
  if (!s.joined) return;  // cannot serve; the joiner retries later
  reply_with_neighbor_set(u, msg, Kind::kJoinReply);
}

void MdtOverlay::on_join_reply(NodeId u, Envelope msg) {
  NodeState& s = st(u);
  if (msg.target != u || !s.active) return;
  if (stale_origin(u, msg.origin_info)) return;
  note_direct_contact(u, msg.origin_info);
  // The replier becomes a synced candidate with known cost and path.
  Candidate& c = s.cand[msg.origin];
  if (at_least_as_fresh(msg.origin_info, c.incarnation, c.pos_version)) {
    c.pos = msg.origin_info.pos;
    c.err = msg.origin_info.err;
    c.pos_version = msg.origin_info.pos_version;
  }
  c.incarnation = std::max(c.incarnation, msg.origin_info.incarnation);
  c.cost = msg.accum_cost;
  c.path.assign(msg.route.rbegin(), msg.route.rend());
  c.via = msg.origin;
  c.last_heard = net_.simulator().now();
  c.synced = true;
  for (const NodeInfo& info : msg.nbr_infos) merge_candidate_info(u, info, msg.origin);
  s.got_join_reply = true;
  schedule_recompute(u);
}

void MdtOverlay::on_nbr_set_request(NodeId u, Envelope msg) {
  if (msg.target != u) {
    (void)forward_request(u, msg);  // dead ends are dropped; origin retries
    return;
  }
  reply_with_neighbor_set(u, msg, Kind::kNbrSetReply);
}

void MdtOverlay::on_nbr_set_reply(NodeId u, Envelope msg) {
  NodeState& s = st(u);
  if (msg.target != u) return;
  if (stale_origin(u, msg.origin_info)) return;
  note_direct_contact(u, msg.origin_info);
  auto pending_it = s.pending.find(msg.origin);
  if (pending_it != s.pending.end()) {
    net_.simulator().cancel(pending_it->second.timer);
    s.pending.erase(pending_it);
  }
  Candidate& c = s.cand[msg.origin];
  if (at_least_as_fresh(msg.origin_info, c.incarnation, c.pos_version)) {
    c.pos = msg.origin_info.pos;
    c.err = msg.origin_info.err;
    c.pos_version = msg.origin_info.pos_version;
  }
  c.incarnation = std::max(c.incarnation, msg.origin_info.incarnation);
  c.cost = msg.accum_cost;
  c.path.assign(msg.route.rbegin(), msg.route.rend());
  c.via = msg.origin;
  c.last_heard = net_.simulator().now();
  c.synced = true;
  for (const NodeInfo& info : msg.nbr_infos) merge_candidate_info(u, info, msg.origin);
  schedule_recompute(u);
}

void MdtOverlay::on_pos_update(NodeId u, Envelope msg) {
  NodeState& s = st(u);
  if (stale_origin(u, msg.origin_info)) return;
  note_direct_contact(u, msg.origin_info);
  const sim::Time now = net_.simulator().now();
  if (msg.route.empty() && net_.links().has_edge(u, msg.origin)) {
    // Direct physical-neighbor update (acts as a keep-alive as well).
    auto pit = s.phys.find(msg.origin);
    if (pit == s.phys.end() ||
        at_least_as_fresh(msg.origin_info, pit->second.incarnation, pit->second.pos_version))
      s.phys[msg.origin] = msg.origin_info;
  }
  auto it = s.cand.find(msg.origin);
  if (it != s.cand.end()) {
    if (at_least_as_fresh(msg.origin_info, it->second.incarnation, it->second.pos_version)) {
      it->second.pos = msg.origin_info.pos;
      it->second.err = msg.origin_info.err;
      it->second.pos_version = msg.origin_info.pos_version;
    }
    it->second.incarnation = std::max(it->second.incarnation, msg.origin_info.incarnation);
    it->second.last_heard = now;  // direct evidence of liveness either way
  }
}

void MdtOverlay::on_heartbeat(NodeId u, const Envelope& msg) {
  NodeState& s = st(u);
  if (stale_origin(u, msg.origin_info)) return;
  note_direct_contact(u, msg.origin_info);
  const sim::Time now = net_.simulator().now();
  auto it = s.cand.find(msg.origin);
  if (it == s.cand.end()) return;  // not (any longer) a neighbor of ours
  it->second.incarnation = std::max(it->second.incarnation, msg.origin_info.incarnation);
  it->second.last_heard = now;
  if (!config_.fd.enabled || s.phys.count(msg.origin)) return;
  auto fd_it = s.fd.find(msg.origin);
  if (fd_it == s.fd.end())
    s.fd.emplace(msg.origin, PhiAccrualDetector(config_.fd, now));
  else
    fd_it->second.heartbeat(now);
}

// --------------------------------------------------------------------------
// Forwarding

std::optional<NodeId> MdtOverlay::greedy_next(NodeId u, const Vec& pos,
                                              const std::vector<NodeId>& visited,
                                              bool joined_only) const {
  const NodeState& s = st(u);
  const double own = s.pos.distance(pos);
  // MDT-greedy: prefer the closest physical neighbor if it makes progress;
  // otherwise the closest multi-hop DT neighbor that makes progress.
  NodeId best_phys = -1;
  double best_phys_d = own;
  for (const auto& [id, info] : s.phys) {
    if (contains(visited, id) || !net_.alive(id) || !net_.link_up(u, id)) continue;
    if (joined_only && !info.joined) continue;
    const double d = info.pos.distance(pos);
    if (d < best_phys_d) {
      best_phys_d = d;
      best_phys = id;
    }
  }
  if (best_phys >= 0) return best_phys;
  NodeId best_dt = -1;
  double best_dt_d = own;
  for (NodeId y : s.dt_nbrs) {
    if (s.phys.count(y) || contains(visited, y)) continue;
    auto it = s.cand.find(y);
    if (it == s.cand.end() || it->second.path.size() < 2) continue;
    const double d = it->second.pos.distance(pos);
    if (d < best_dt_d) {
      best_dt_d = d;
      best_dt = y;
    }
  }
  if (best_dt >= 0) return best_dt;
  return std::nullopt;
}

bool MdtOverlay::forward_request(NodeId u, Envelope msg) {
  NodeState& s = st(u);
  if (msg.ttl <= 0) return false;
  --msg.ttl;

  // Addressed request: deliver directly if the target is a physical neighbor
  // or a known DT neighbor with an established virtual link.
  if (msg.target >= 0) {
    if (s.phys.count(msg.target) && net_.alive(msg.target)) {
      msg.visited.push_back(u);
      const NodeId next = msg.target;  // read before the envelope is moved from
      return send_ctrl(u, next, std::move(msg));
    }
    auto it = s.cand.find(msg.target);
    if (it != s.cand.end() && it->second.path.size() >= 2) {
      msg.detour = true;
      msg.route = it->second.path;
      msg.route_idx = 0;
      msg.visited.push_back(u);
      const NodeId next = msg.route[1];
      return send_ctrl(u, next, std::move(msg));
    }
  }

  const auto next =
      greedy_next(u, msg.target_pos, msg.visited, msg.kind == Kind::kJoinRequest);
  if (!next) return false;
  if (s.phys.count(*next)) {
    msg.visited.push_back(u);
    const NodeId hop = *next;
    return send_ctrl(u, hop, std::move(msg));
  }
  // Multi-hop DT neighbor: detour along the stored virtual-link path.
  const auto it = s.cand.find(*next);
  GDVR_ASSERT(it != s.cand.end() && it->second.path.size() >= 2);
  msg.detour = true;
  msg.route = it->second.path;
  msg.route_idx = 0;
  msg.visited.push_back(u);
  const NodeId hop = msg.route[1];
  return send_ctrl(u, hop, std::move(msg));
}

void MdtOverlay::forward_routed(NodeId u, Envelope msg) {
  const auto idx = static_cast<std::size_t>(msg.route_idx);
  if (idx + 1 >= msg.route.size()) return;
  const NodeId next = msg.route[idx + 1];
  (void)send_ctrl(u, next, std::move(msg));  // failure = dead next hop; soft state recovers
}

bool MdtOverlay::send_ctrl(NodeId from, NodeId to, Envelope msg) {
  // Only the join / neighbor-set exchange opts into ACK + retransmit: it is
  // the traffic whose loss stalls the protocol (a lost kPosUpdate or kHello
  // is refreshed by the next periodic one anyway, and kData keeps the
  // paper's fate-sharing semantics).
  const bool protect = msg.kind == Kind::kJoinRequest || msg.kind == Kind::kJoinReply ||
                       msg.kind == Kind::kNbrSetRequest || msg.kind == Kind::kNbrSetReply;
  if (reliable_ != nullptr && protect) return reliable_->send(from, to, std::move(msg));
  msg.rel_seq = 0;  // a forwarded copy must not reuse the previous hop's sequence
  return net_.send(from, to, std::move(msg));
}

void MdtOverlay::note_relay(NodeId u, NodeId a, NodeId b, NodeId pred, NodeId succ) {
  NodeState& s = st(u);
  RelayEntry& e = s.relay[norm_pair(a, b)];
  e.pred = pred;
  e.succ = succ;
  e.refreshed = net_.simulator().now();
}

// --------------------------------------------------------------------------
// Protocol actions

std::vector<NodeInfo> MdtOverlay::neighbor_infos(NodeId u) const {
  const NodeState& s = st(u);
  std::vector<NodeInfo> infos;
  std::set<NodeId> seen;
  for (const auto& [id, info] : s.phys) {
    infos.push_back(info);
    seen.insert(id);
  }
  for (NodeId y : s.dt_nbrs) {
    if (seen.count(y)) continue;
    auto it = s.cand.find(y);
    if (it == s.cand.end()) continue;
    infos.push_back(NodeInfo{y, it->second.pos, it->second.err, /*joined=*/true,
                             it->second.pos_version, it->second.incarnation});
  }
  return infos;
}

void MdtOverlay::reply_with_neighbor_set(NodeId u, const Envelope& request, Kind kind) {
  NodeState& s = st(u);
  // A request from a past incarnation must neither teach us the dead life's
  // state nor earn a reply (the link layer would refuse to deliver it to the
  // new incarnation anyway).
  if (stale_origin(u, request.origin_info)) return;
  note_direct_contact(u, request.origin_info);
  // Learn the requester: the request's accumulated cost is exactly this
  // node's routing cost back to the requester along the reverse trail.
  Candidate& c = s.cand[request.origin];
  if (at_least_as_fresh(request.origin_info, c.incarnation, c.pos_version)) {
    c.pos = request.origin_info.pos;
    c.err = request.origin_info.err;
    c.pos_version = request.origin_info.pos_version;
  }
  c.incarnation = std::max(c.incarnation, request.origin_info.incarnation);
  c.cost = request.accum_cost;
  c.path.clear();
  c.path.push_back(u);
  for (auto it = request.visited.rbegin(); it != request.visited.rend(); ++it) c.path.push_back(*it);
  c.via = request.origin;
  c.last_heard = net_.simulator().now();
  c.synced = true;
  // Mutual exchange: a neighbor-set request carries the requester's neighbor
  // set (empty for join requests).
  for (const NodeInfo& info : request.nbr_infos) merge_candidate_info(u, info, request.origin);
  schedule_recompute(u);

  Envelope r;
  r.kind = kind;
  r.origin = u;
  r.target = request.origin;
  r.origin_info = info_of(u);
  r.nbr_infos = neighbor_infos(u);
  r.fwd_cost = request.accum_cost;
  r.route = c.path;
  r.route_idx = 0;
  if (r.route.size() >= 2) {
    const NodeId next = r.route[1];  // read before the envelope is moved from
    (void)send_ctrl(u, next, std::move(r));
  }
}

void MdtOverlay::merge_candidate_info(NodeId u, const NodeInfo& info, NodeId via) {
  NodeState& s = st(u);
  if (info.id == u || info.id < 0) return;
  // Tombstone: this node was evicted as dead, and only *direct* contact (or
  // word of a strictly newer incarnation, i.e. it genuinely rebooted since)
  // may bring it back. Second-hand gossip at the evicted incarnation is the
  // resurrection channel the tombstone exists to block.
  auto tomb = s.tombstones.find(info.id);
  if (tomb != s.tombstones.end()) {
    if (info.incarnation <= tomb->second.incarnation) {
      ++fd_at(u).gossip_suppressed;
      return;
    }
    s.tombstones.erase(tomb);
  }
  auto it = s.cand.find(info.id);
  if (it == s.cand.end()) {
    Candidate c;
    c.pos = info.pos;
    c.err = info.err;
    c.pos_version = info.pos_version;
    c.incarnation = info.incarnation;
    c.via = via;
    c.last_heard = net_.simulator().now();
    s.cand.emplace(info.id, std::move(c));
  } else {
    // Refresh position/error only when the gossiped copy is strictly newer
    // than what we hold -- a peer's snapshot of a node we also hear from
    // directly is usually older, and overwriting fresher state with it
    // measurably perturbs the local DT. When the direct channel lost an
    // update, though, newer gossip repairs the staleness. Deliberately do
    // NOT refresh last_heard: gossip is not evidence of liveness, and
    // letting it count would keep dead nodes alive epidemically after churn.
    if (strictly_fresher(info, it->second.incarnation, it->second.pos_version)) {
      it->second.pos = info.pos;
      it->second.err = info.err;
      it->second.pos_version = info.pos_version;
      it->second.incarnation = info.incarnation;
    }
    if (!it->second.synced && via >= 0) it->second.via = via;
  }
}

void MdtOverlay::mark_joined(NodeId u) {
  NodeState& s = st(u);
  if (s.joined) return;
  s.joined = true;
  send_hello(u);  // announce: neighbors waiting to join can proceed
}

void MdtOverlay::send_nbr_request(NodeId u, NodeId y) {
  // External entry point: an exchange already in flight is not restarted
  // (that would reset its retry budget -- see resend_nbr_request).
  if (st(u).pending.count(y)) return;
  resend_nbr_request(u, y);
}

void MdtOverlay::resend_nbr_request(NodeId u, NodeId y) {
  NodeState& s = st(u);
  if (!s.active || !net_.alive(u)) return;
  auto cand_it = s.cand.find(y);
  if (cand_it == s.cand.end()) return;

  const auto make_nbr_request = [this](NodeId from, NodeId to, const Vec& to_pos) {
    Envelope e;
    e.kind = Kind::kNbrSetRequest;
    e.origin = from;
    e.target = to;
    e.target_pos = to_pos;
    e.origin_info = info_of(from);
    // The exchange is mutual: the request carries the origin's neighbor set
    // so the replier learns from it too. With one-directional gossip (only
    // the requester learns, and the smaller id always initiates), neighbor
    // knowledge only ever flows from larger ids to smaller ones -- a node
    // pair whose informed common neighbors all have smaller ids than both
    // endpoints would stay mutually unaware forever after churn.
    e.nbr_infos = neighbor_infos(from);
    e.ttl = config_.greedy_ttl;
    return e;
  };

  // Route selection, in order of preference:
  //  1. direct physical delivery;
  //  2. greedy toward y's position -- crucially this lets virtual-link paths
  //     *shrink* as VPoD converges (a stored path found during early
  //     construction may be far longer than what greedy now finds, and the
  //     reply re-installs whatever route the request actually took);
  //  3. the stored virtual-link path;
  //  4. detour through the neighbor that told us about y (it knows y
  //     directly) -- how the join phase reaches neighbors-of-neighbors while
  //     greedy forwarding is still unreliable.
  bool sent = false;
  if (s.phys.count(y) && net_.alive(y)) {
    Envelope g = make_nbr_request(u, y, cand_it->second.pos);
    g.visited = {u};
    sent = send_ctrl(u, y, std::move(g));
  }
  if (!sent && config_.refresh_paths_greedily) {
    const auto next = greedy_next(u, cand_it->second.pos, {u}, /*joined_only=*/false);
    if (next && s.phys.count(*next)) {
      Envelope g = make_nbr_request(u, y, cand_it->second.pos);
      g.visited = {u};
      const NodeId hop = *next;
      sent = send_ctrl(u, hop, std::move(g));
    }
  }
  if (!sent && cand_it->second.path.size() >= 2) {
    Envelope g = make_nbr_request(u, y, cand_it->second.pos);
    g.detour = true;
    g.route = cand_it->second.path;
    g.route_idx = 0;
    g.visited = {u};
    const NodeId hop = g.route[1];
    sent = send_ctrl(u, hop, std::move(g));
  }
  const NodeId via = cand_it->second.via;
  if (!sent && via >= 0 && via != y && via != u) {
    if (s.phys.count(via) && net_.alive(via)) {
      Envelope g = make_nbr_request(u, y, cand_it->second.pos);
      g.visited = {u};
      sent = send_ctrl(u, via, std::move(g));
    } else {
      auto vit = s.cand.find(via);
      if (vit != s.cand.end() && vit->second.path.size() >= 2) {
        Envelope g = make_nbr_request(u, y, cand_it->second.pos);
        g.detour = true;
        g.route = vit->second.path;
        g.route_idx = 0;
        g.visited = {u};
        const NodeId hop = g.route[1];
        sent = send_ctrl(u, hop, std::move(g));
      }
    }
  }
  if (!sent) {
    // Last resort: full greedy machinery (may use DT detours).
    Envelope g = make_nbr_request(u, y, cand_it->second.pos);
    sent = forward_request(u, std::move(g));
  }

  ++sync_at(u).requests;
  PendingSync& p = s.pending[y];
  ++p.attempts;
  const int attempts = p.attempts;
  p.timer = net_.simulator().schedule_in_node(
      u, config_.sync_timeout_s + rng_at(u).uniform(0.0, 0.3), [this, u, y, attempts] {
        NodeState& su = st(u);
        auto it = su.pending.find(y);
        if (it == su.pending.end() || it->second.attempts != attempts) return;
        if (!su.active || !net_.alive(u)) {
          su.pending.erase(it);
          return;
        }
        auto cy = su.cand.find(y);
        if (cy == su.cand.end()) {
          su.pending.erase(it);
          return;
        }
        if (attempts < config_.max_sync_retries) {
          // Retry through the SAME pending entry so the attempt count
          // accumulates; erasing it here would reset the retry budget and
          // make the give-up below unreachable.
          resend_nbr_request(u, y);
          return;
        }
        // Give up this round; the next maintenance round starts a fresh
        // exchange with a full budget. The candidate itself is NOT dropped
        // here -- during early construction greedy dead-ends make honest
        // neighbors slow to sync, and a genuinely dead one is reaped by the
        // neighbor_stale_s soft-state timer anyway.
        su.pending.erase(it);
        ++sync_at(u).failures;
      });
  (void)sent;  // even a failed send arms the retry timer above
}

void MdtOverlay::sync_missing_neighbors(NodeId u) {
  NodeState& s = st(u);
  for (NodeId y : s.dt_nbrs) {
    auto it = s.cand.find(y);
    if (it == s.cand.end()) continue;
    if (!it->second.synced && !s.pending.count(y)) send_nbr_request(u, y);
  }
  // Join completes once the node has been served by a DT member and has
  // recomputed its neighbor set (further syncs refine it), or when every DT
  // neighbor is already synced.
  if (!s.joined) {
    bool all = !s.dt_nbrs.empty();
    for (NodeId y : s.dt_nbrs) {
      auto it = s.cand.find(y);
      if (it == s.cand.end() || !it->second.synced) all = false;
    }
    if (all || (s.got_join_reply && !s.dt_nbrs.empty())) mark_joined(u);
  }
}

void MdtOverlay::schedule_recompute(NodeId u) {
  NodeState& s = st(u);
  if (s.recompute_scheduled) return;
  s.recompute_scheduled = true;
  net_.simulator().schedule_in_node(u, config_.recompute_delay_s, [this, u] { recompute(u); });
}

void MdtOverlay::recompute(NodeId u) {
  GDVR_PROFILE_SCOPE("mdt.recompute");
  NodeState& s = st(u);
  s.recompute_scheduled = false;
  if (!s.active || !net_.alive(u)) return;
  refresh_phys(u);
  ++rec_at(u).calls;

  // Memoization: the local DT depends only on the positions of {u} + P_u +
  // C_u, and every advertised position travels with its owner's monotonic
  // pos_version -- equal (id, version) implies an identical position. Hash
  // the input as a sequence of those pairs (map order is deterministic) and
  // replay the cached neighbor set when the exact input was triangulated
  // before. The cache holds a few entries because steady-state rounds cycle
  // through a small set of inputs: the pair sync re-teaches neighbors'
  // neighbors each round, recompute considers them once and prunes them, so
  // the input alternates between "with" and "without" those candidates.
  std::uint64_t h = mix64(0x4D44542Dull ^ s.pos_version);
  for (const auto& [id, info] : s.phys)
    h = mix64(h ^ mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 32) ^
                        info.pos_version));
  for (const auto& [id, c] : s.cand) {
    if (s.phys.count(id)) continue;
    h = mix64(h ^ mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 32) ^
                        c.pos_version));
  }

  auto cached = std::find_if(s.dt_cache.begin(), s.dt_cache.end(),
                             [h](const NodeState::DtCacheEntry& e) { return e.hash == h; });
  if (cached != s.dt_cache.end()) {
    s.dt_nbrs = cached->nbrs;
    cached->stamp = ++s.dt_cache_clock;
  } else {
    ++rec_at(u).rebuilds;

    // Local DT of {u} + P_u + C_u; N_u = u's neighbors in it. The desired
    // input is collected as a sorted (id, pos, version) sequence -- u plus
    // two already-sorted maps -- and diffed against dt_in, the multiset the
    // live triangulation currently holds, so only changed points are
    // touched: O(affected) instead of recompute-from-scratch.
    struct DtInput {
      NodeId id;
      const Vec* pos;
      std::uint64_t ver;
    };
    std::vector<DtInput> in;
    in.reserve(1 + s.phys.size() + s.cand.size());
    in.push_back({u, &s.pos, s.pos_version});
    for (const auto& [id, info] : s.phys) in.push_back({id, &info.pos, info.pos_version});
    for (const auto& [id, c] : s.cand) {
      if (s.phys.count(id)) continue;
      in.push_back({id, &c.pos, c.pos_version});
    }
    std::sort(in.begin(), in.end(),
              [](const DtInput& a, const DtInput& b) { return a.id < b.id; });

    const bool full = config_.dt_maintenance == MdtConfig::DtMaintenance::kFullRebuild;
    if (!s.dyn) s.dyn = std::make_unique<geom::DynamicDelaunay>(s.pos.dim());
    if (full || s.dt_in.empty()) {
      std::vector<std::pair<geom::DynamicDelaunay::Key, Vec>> pts;
      pts.reserve(in.size());
      for (const DtInput& e : in) pts.emplace_back(e.id, *e.pos);
      s.dyn->assign(pts);
    } else {
      // Two-pointer diff of sorted (id, version) sequences: ids present only
      // in dt_in are removed, ids present only in `in` are inserted, and a
      // version bump on a shared id is a point move. The collected diff is
      // applied as one batch so DynamicDelaunay can coalesce moves that fail
      // their early-out certificate into a single rebuild.
      std::vector<geom::DynamicDelaunay::Key> removes;
      std::vector<std::pair<geom::DynamicDelaunay::Key, Vec>> inserts;
      std::vector<std::pair<geom::DynamicDelaunay::Key, Vec>> moves;
      auto old_it = s.dt_in.begin();
      auto new_it = in.begin();
      while (old_it != s.dt_in.end() || new_it != in.end()) {
        if (new_it == in.end() || (old_it != s.dt_in.end() && old_it->first < new_it->id)) {
          removes.push_back(old_it->first);
          ++old_it;
        } else if (old_it == s.dt_in.end() || new_it->id < old_it->first) {
          inserts.emplace_back(new_it->id, *new_it->pos);
          ++new_it;
        } else {
          if (old_it->second != new_it->ver) moves.emplace_back(new_it->id, *new_it->pos);
          ++old_it;
          ++new_it;
        }
      }
      s.dyn->apply_diff(removes, inserts, moves);
    }
    s.dt_in.clear();
    s.dt_in.reserve(in.size());
    for (const DtInput& e : in) s.dt_in.emplace_back(e.id, e.ver);  // `in` is id-sorted

    s.dt_nbrs.clear();
    if (in.size() >= 2) {
      for (geom::DynamicDelaunay::Key k : s.dyn->neighbors(u))
        s.dt_nbrs.push_back(static_cast<NodeId>(k));
      // DynamicDelaunay::neighbors returns sorted keys already.
    }

    constexpr std::size_t kDtCacheEntries = 4;
    if (s.dt_cache.size() < kDtCacheEntries) {
      s.dt_cache.push_back({h, s.dt_nbrs, ++s.dt_cache_clock});
    } else {
      auto lru = std::min_element(s.dt_cache.begin(), s.dt_cache.end(),
                                  [](const NodeState::DtCacheEntry& a,
                                     const NodeState::DtCacheEntry& b) { return a.stamp < b.stamp; });
      *lru = {h, s.dt_nbrs, ++s.dt_cache_clock};
    }
  }

  // Candidate pruning (soft state): keep DT neighbors, physical neighbors,
  // nodes with an exchange in flight, and freshly learned nodes that have
  // not yet been through a recompute.
  const sim::Time now = net_.simulator().now();
  for (auto it = s.cand.begin(); it != s.cand.end();) {
    const NodeId id = it->first;
    const bool keep = contains(s.dt_nbrs, id) || s.phys.count(id) || s.pending.count(id) ||
                      now - it->second.last_heard <= config_.candidate_fresh_s;
    if (keep) {
      ++it;
    } else {
      s.fd.erase(id);
      it = s.cand.erase(it);
    }
  }

  // Ensure every DT neighbor has a candidate record (physical neighbors may
  // not have one yet: give them their trivial one-hop path and link cost).
  for (NodeId y : s.dt_nbrs) {
    if (!s.cand.count(y) && s.phys.count(y)) {
      Candidate c;
      c.pos = s.phys[y].pos;
      c.err = s.phys[y].err;
      c.pos_version = s.phys[y].pos_version;
      c.incarnation = s.phys[y].incarnation;
      c.cost = net_.link_cost(u, y);
      c.path = {u, y};
      c.last_heard = now;
      c.synced = true;  // link-layer exchange suffices for physical neighbors
      s.cand.emplace(y, std::move(c));
    }
  }

  sync_missing_neighbors(u);
}

void MdtOverlay::refresh_phys(NodeId u) {
  NodeState& s = st(u);
  for (auto it = s.phys.begin(); it != s.phys.end();) {
    // Downed (flapping / partitioned) links count as absent: the neighbor is
    // unreachable at the link layer until the fault clears, at which point
    // its periodic Hello re-announces it.
    if (!net_.alive(it->first) || !net_.link_usable(u, it->first))
      it = s.phys.erase(it);
    else
      ++it;
  }
}

void MdtOverlay::send_hello(NodeId u) {
  if (!net_.alive(u)) return;
  net_.for_each_alive_neighbor(u, [&](const graph::Edge& e) {
    Envelope m;
    m.kind = Kind::kHello;
    m.origin = u;
    m.target = e.to;
    m.origin_info = info_of(u);
    net_.send(u, e.to, std::move(m));
  });
}

// --------------------------------------------------------------------------
// Queries

std::vector<NeighborView> MdtOverlay::neighbor_views(NodeId u) const {
  const NodeState& s = st(u);
  std::vector<NeighborView> views;
  for (const auto& [id, info] : s.phys) {
    NeighborView v;
    v.id = id;
    v.pos = info.pos;
    v.err = info.err;
    v.cost = net_.link_cost(u, id);
    v.is_phys = true;
    v.is_dt = contains(s.dt_nbrs, id);
    views.push_back(v);
  }
  for (NodeId y : s.dt_nbrs) {
    if (s.phys.count(y)) continue;
    auto it = s.cand.find(y);
    if (it == s.cand.end() || !std::isfinite(it->second.cost)) continue;
    NeighborView v;
    v.id = y;
    v.pos = it->second.pos;
    v.err = it->second.err;
    v.cost = it->second.cost;
    v.is_phys = false;
    v.is_dt = true;
    views.push_back(v);
  }
  return views;
}

const std::vector<NodeId>& MdtOverlay::virtual_path(NodeId u, NodeId v) const {
  const NodeState& s = st(u);
  auto it = s.cand.find(v);
  if (it == s.cand.end()) return empty_path_;
  return it->second.path;
}

std::vector<NodeId> MdtOverlay::dt_neighbors(NodeId u) const { return st(u).dt_nbrs; }

std::vector<NodeId> MdtOverlay::candidate_ids(NodeId u) const {
  std::vector<NodeId> ids;
  ids.reserve(st(u).cand.size());
  for (const auto& [id, c] : st(u).cand) ids.push_back(id);
  return ids;
}

int MdtOverlay::distinct_nodes_stored(NodeId u) const {
  const NodeState& s = st(u);
  std::set<NodeId> known;
  for (const auto& [id, info] : s.phys) {
    (void)info;
    known.insert(id);
  }
  for (NodeId y : s.dt_nbrs) known.insert(y);
  for (const auto& [pair, entry] : s.relay) {
    known.insert(pair.first);
    known.insert(pair.second);
    known.insert(entry.pred);
    known.insert(entry.succ);
  }
  known.erase(u);
  known.erase(-1);
  return static_cast<int>(known.size());
}

}  // namespace gdvr::mdt
