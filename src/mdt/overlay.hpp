// Distributed multi-hop Delaunay triangulation (MDT) protocol.
//
// Implements the MDT join and maintenance protocols of Lam & Qian
// (SIGMETRICS 2011) with the VPoD extensions from the GDV paper:
//  * nodes are identified by globally unique ids, not coordinates;
//  * forwarding-table tuples are extended with (cost, error);
//  * every Neighbor-Set Request/Reply records the cumulative routing cost of
//    its (reverse) path, so both endpoints of a DT-neighbor pair learn their
//    directed routing cost to each other (supports asymmetric metrics);
//  * position updates are pushed to physical and multi-hop DT neighbors.
//
// Each node keeps a candidate set C_u (id -> position/error/cost/path), its
// DT neighbor set N_u = neighbors of u in the local Delaunay triangulation
// of {u} + C_u + P_u, and soft-state relay entries for virtual links that
// pass through it. Control messages are greedy-forwarded using physical
// neighbors and established virtual links; dead ends are retried by the
// origin after a timeout (the triangulation is still under construction when
// they happen) and repaired by periodic maintenance rounds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "geom/dynamic_delaunay.hpp"
#include "mdt/failure_detector.hpp"
#include "mdt/messages.hpp"
#include "sim/netsim.hpp"
#include "sim/reliable.hpp"
#include "sim/simulator.hpp"

namespace gdvr::mdt {

using Net = sim::NetSim<Envelope>;
using ReliableNet = sim::ReliableTransport<Envelope>;

// The ACK message the reliable transport returns for a protected hop.
inline Envelope make_ack(NodeId from, NodeId to, std::uint64_t seq) {
  Envelope a;
  a.kind = Kind::kAck;
  a.origin = from;
  a.target = to;
  a.rel_seq = seq;
  return a;
}

struct MdtConfig {
  int dim = 3;                     // dimension of the (virtual) space
  double sync_timeout_s = 1.5;     // Neighbor-Set Request retry timeout
  int max_sync_retries = 4;        // per maintenance round
  // Non-neighbor candidates survive one recompute cycle: freshly learned
  // nodes must be considered once, but keeping them longer balloons the
  // local-DT input during early construction.
  double candidate_fresh_s = 2.0;
  double relay_ttl_s = 60.0;       // soft-state expiry for relay entries
  // A multi-hop DT neighbor not heard from (position update or neighbor-set
  // exchange) for this long is presumed dead and dropped at the next
  // maintenance round -- the mechanism behind churn recovery (Sec. IV-H).
  double neighbor_stale_s = 45.0;
  double recompute_delay_s = 0.7;  // coalescing delay for local DT recomputes
  // Local-DT maintenance strategy. kIncremental (default) keeps one live
  // triangulation per node and applies only the diff of the input multiset
  // {(id, pos_version)} since the last recompute -- O(affected) point
  // inserts/removes/moves. kFullRebuild re-triangulates from scratch on
  // every memoization miss; it is the oracle the incremental path is pinned
  // against (mdt_fuzz_test), the same pattern as kAllPairs/kLinearScan.
  enum class DtMaintenance { kIncremental, kFullRebuild };
  DtMaintenance dt_maintenance = DtMaintenance::kIncremental;
  // Robustness: when a maintenance round observes that N_u changed since the
  // previous round (churn, partition healing, large position shifts), one
  // follow-up neighbor-set sync fires after this delay, still inside the
  // same J period. Self-limiting: a stable DT never pays for it, while
  // post-fault repair runs at twice the per-period rate. 0 disables.
  double resync_after_change_s = 2.5;
  int greedy_ttl = 96;             // hop budget for greedy-forwarded requests
  // Ablation switch: when true (default), neighbor-set re-syncs route
  // greedily first so virtual-link paths shrink as the embedding converges;
  // when false, the stored path is always reused ("sticky paths"), so costs
  // recorded during early construction never improve. bench/ablation_paths
  // quantifies the difference.
  bool refresh_paths_greedily = true;
  // Adaptive failure detection (mdt/failure_detector.hpp). Default-off:
  // legacy configs keep the fixed neighbor_stale_s timeout and send no
  // heartbeats, so existing scenarios are bit-identical. When enabled, each
  // node heartbeats its multi-hop DT neighbors on fd.heartbeat_period_s and
  // evicts (with a tombstone) any whose phi crosses fd.phi_threshold.
  FailureDetectorConfig fd;
};

// A neighbor as seen by VPoD's adjustment algorithm and by GDV forwarding.
struct NeighborView {
  NodeId id = -1;
  Vec pos;
  double err = 1.0;
  double cost = 0.0;   // c(u,v) for physical neighbors, D(u,v) otherwise
  bool is_phys = false;
  bool is_dt = false;
};

class MdtOverlay {
 public:
  MdtOverlay(Net& net, const MdtConfig& config);

  // Installs this overlay as the NetSim receiver. Call once before starting.
  void attach();

  // Opts the join / neighbor-set control exchange into per-hop ACK +
  // retransmit delivery (sim/reliable.hpp). Without it, once the control
  // plane is lossy (set_loss_from_etx, fault-injected bursts), lost
  // Neighbor-Set Requests/Replies stall sync until maintenance-round
  // timeouts. The transport must outlive this overlay's message processing;
  // pass nullptr to revert to plain delivery.
  void use_reliable_transport(ReliableNet* transport) { reliable_ = transport; }
  const ReliableNet* reliable_transport() const { return reliable_; }

  // --- node lifecycle -----------------------------------------------------
  // Node u enters the protocol with an initial position (sends Hello to all
  // physical neighbors). The first node of the system passes joined=true.
  void activate(NodeId u, const Vec& pos, bool first = false);
  // Begins (or retries) the join: greedy-search for the closest joined node.
  void start_join(NodeId u);
  // Churn: the node fails silently (link layer stops delivering).
  void deactivate(NodeId u);

  // --- VPoD hooks -----------------------------------------------------------
  // Updates u's position/error after an adjustment and pushes kPosUpdate to
  // all physical and DT neighbors.
  void set_position(NodeId u, const Vec& pos, double err);
  void set_error(NodeId u, double err) { states_[static_cast<std::size_t>(u)].err = err; }
  // J-period maintenance: refresh physical neighbors, expire soft state,
  // recompute the local DT, and re-sync every DT-neighbor pair.
  void run_maintenance_round(NodeId u);
  // Targeted repair (used by the convergence watchdog on stuck nodes): marks
  // every DT-neighbor exchange of u unsynced and schedules a recompute, so
  // the full pair-sync re-runs immediately instead of at the next J period.
  // A node that lost its join entirely restarts the join search.
  void force_resync(NodeId u);

  // --- queries (used by VPoD, GDV and the evaluation harness) -------------
  bool active(NodeId u) const { return states_[static_cast<std::size_t>(u)].active; }
  bool joined(NodeId u) const { return states_[static_cast<std::size_t>(u)].joined; }
  const Vec& position(NodeId u) const { return states_[static_cast<std::size_t>(u)].pos; }
  double error(NodeId u) const { return states_[static_cast<std::size_t>(u)].err; }
  // P_u ∪ N_u with positions, errors and routing costs.
  std::vector<NeighborView> neighbor_views(NodeId u) const;
  // Advertised state of physical neighbors (populated by Hello / PosUpdate;
  // available even before the node activates -- VPoD's position
  // initialization rules need it).
  const std::map<NodeId, NodeInfo>& phys_info(NodeId u) const {
    return states_[static_cast<std::size_t>(u)].phys;
  }
  // The stored physical route u -> ... -> v for a multi-hop DT neighbor v
  // (empty for physical neighbors and unknown nodes).
  const std::vector<NodeId>& virtual_path(NodeId u, NodeId v) const;
  std::vector<NodeId> dt_neighbors(NodeId u) const;
  // Introspection for diagnostics/eval: the ids currently in C_u.
  std::vector<NodeId> candidate_ids(NodeId u) const;
  // Storage metric: distinct remote nodes u must store to forward (physical
  // neighbors, DT neighbors, and relay-entry endpoints).
  int distinct_nodes_stored(NodeId u) const;

  Net& net() { return net_; }
  const Net& net() const { return net_; }
  const MdtConfig& config() const { return config_; }

  // Health counters for the neighbor-set sync machinery (bench/ablation_faults
  // reads these to quantify what the reliable control transport buys).
  // All health counters (and the protocol-jitter RNG) are kept per node and
  // aggregated on read, so concurrent lanes of the sharded engine never
  // share a counter and jitter draws are a function of each node's own
  // event sequence (DESIGN.md §4g).
  struct SyncStats {
    std::uint64_t requests = 0;  // neighbor-set requests sent, incl. retries
    std::uint64_t failures = 0;  // sync rounds abandoned after max_sync_retries
  };
  SyncStats sync_stats() const {
    SyncStats total;
    for (const SyncStats& s : sync_stats_) {
      total.requests += s.requests;
      total.failures += s.failures;
    }
    return total;
  }

  // Local-DT memoization counters: `calls` counts recompute() invocations on
  // live nodes, `rebuilds` the subset that actually re-triangulated because
  // the input multiset {(id, pos_version)} + own position changed. On a
  // converged, churn-free network the hit rate (1 - rebuilds/calls)
  // approaches 1: maintenance rounds become near-zero triangulation work.
  struct RecomputeStats {
    std::uint64_t calls = 0;
    std::uint64_t rebuilds = 0;
  };
  RecomputeStats recompute_stats() const {
    RecomputeStats total;
    for (const RecomputeStats& s : recompute_stats_) {
      total.calls += s.calls;
      total.rebuilds += s.rebuilds;
    }
    return total;
  }

  // Incremental-maintenance counters summed over every node's live DT
  // instance plus instances retired by deactivation. Exported as mdt.dt.*.
  geom::DynamicDtStats dt_stats() const;

  // Failure-detector / incarnation-reconciliation counters.
  struct FdStats {
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t evictions = 0;            // neighbors dropped by phi crossing
    std::uint64_t tombstones_created = 0;
    std::uint64_t gossip_suppressed = 0;    // tombstoned gossip ignored
    std::uint64_t stale_incarnation_dropped = 0;  // messages from a past life
  };
  FdStats fd_stats() const {
    FdStats total;
    for (const FdStats& s : fd_stats_) {
      total.heartbeats_sent += s.heartbeats_sent;
      total.evictions += s.evictions;
      total.tombstones_created += s.tombstones_created;
      total.gossip_suppressed += s.gossip_suppressed;
      total.stale_incarnation_dropped += s.stale_incarnation_dropped;
    }
    return total;
  }
  // Current suspicion level u holds about multi-hop DT neighbor v (0 when no
  // detector exists, e.g. physical neighbors). Test/diagnostic hook.
  double suspicion(NodeId u, NodeId v) const;
  // Test hook: runs the FD eviction path (tombstone + candidate erase +
  // recompute) at u for neighbor y, as if y's phi had crossed the threshold.
  // Lets tests pin the false-eviction healing behavior without contriving a
  // real false positive.
  void evict_for_test(NodeId u, NodeId y) { evict_neighbor(u, y); }

  // Receiver entry point (public so VPoD can delegate MDT kinds to it).
  void handle(NodeId to, NodeId from, Envelope msg);

 private:
  struct Candidate {
    Vec pos;
    double err = 1.0;
    std::uint64_t pos_version = 0;  // version of `pos` (see NodeInfo)
    std::uint32_t incarnation = 0;  // highest incarnation heard from this node
    double cost = graph::kInf;     // routing cost from the owner to this node
    std::vector<NodeId> path;      // physical route owner -> ... -> node
    NodeId via = -1;               // the neighbor whose reply taught us this node
    sim::Time last_heard = 0.0;
    bool synced = false;           // a NbrSet exchange with it has completed
  };

  struct PendingSync {
    int attempts = 0;
    sim::Simulator::EventId timer = 0;
  };

  struct RelayEntry {
    NodeId pred = -1;
    NodeId succ = -1;
    sim::Time refreshed = 0.0;
  };

  struct NodeState {
    bool active = false;
    bool joined = false;
    bool got_join_reply = false;
    Vec pos;
    double err = 1.0;
    std::uint64_t pos_version = 0;  // bumped on every set_position / activate
    std::map<NodeId, NodeInfo> phys;      // physical neighbors' advertised state
    std::map<NodeId, Candidate> cand;     // candidate set C_u
    std::vector<NodeId> dt_nbrs;          // N_u (sorted)
    // Relay entries: normalized endpoint pair -> pred/succ soft state.
    std::map<std::pair<NodeId, NodeId>, RelayEntry> relay;
    std::map<NodeId, PendingSync> pending;
    std::vector<NodeId> prev_round_dt;    // N_u at the previous maintenance round
    // Memoized local-DT results, keyed by a hash of the triangulated input
    // (own pos_version plus every contributing (id, pos_version) pair). A
    // handful of entries, LRU-evicted: steady-state maintenance alternates
    // between a small cycle of inputs (freshly synced neighbors-of-neighbors
    // appear, get pruned, reappear next round), and each recurring input
    // replays its cached neighbor set instead of re-triangulating.
    // Deactivation resets the whole NodeState, so a crashed-and-rejoined
    // node can never serve a stale cache entry.
    struct DtCacheEntry {
      std::uint64_t hash = 0;
      std::vector<NodeId> nbrs;
      std::uint64_t stamp = 0;  // LRU clock value of the last use
    };
    std::vector<DtCacheEntry> dt_cache;
    std::uint64_t dt_cache_clock = 0;
    // Incremental local-DT state: one live triangulation over {u} + P_u +
    // C_u and the (id, pos_version) multiset it currently holds, so a memo
    // miss applies only the diff. Reset with the rest of the NodeState on
    // deactivation (counters are folded into dt_retired_ first).
    std::unique_ptr<geom::DynamicDelaunay> dyn;
    // (id, pos_version) the live DT holds, sorted by id: rebuilt by a linear
    // append each recompute and consumed by a two-pointer diff, so a flat
    // vector replaces the former std::map without changing iteration order.
    std::vector<std::pair<NodeId, std::uint64_t>> dt_in;
    bool resync_scheduled = false;
    bool recompute_scheduled = false;
    sim::Time last_join_attempt = -1e18;  // rate limit for join retries
    // Adaptive failure detection (config.fd.enabled): one phi-accrual
    // detector per multi-hop DT neighbor, created at its first heartbeat.
    std::map<NodeId, PhiAccrualDetector> fd;
    // Tombstones for FD-evicted neighbors: the incarnation evicted and when.
    // Gossip about (id, incarnation <= tombstone) is suppressed until direct
    // contact clears it or tombstone_ttl_s expires.
    struct Tombstone {
      std::uint32_t incarnation = 0;
      sim::Time created = 0.0;
    };
    std::map<NodeId, Tombstone> tombstones;
  };

  NodeState& st(NodeId u) { return states_[static_cast<std::size_t>(u)]; }
  const NodeState& st(NodeId u) const { return states_[static_cast<std::size_t>(u)]; }

  NodeInfo info_of(NodeId u) const {
    return NodeInfo{u,           st(u).pos,          st(u).err,
                    st(u).joined, st(u).pos_version, net_.incarnation(u)};
  }

  // --- incarnation reconciliation ------------------------------------------
  // True when `info` reports an incarnation older than what u has already
  // recorded for that node: the message was sent before the node's last
  // crash and must not mutate state about the new life.
  bool stale_origin(NodeId u, const NodeInfo& info);
  // Direct contact from (id, incarnation): clears any refuted tombstone.
  void note_direct_contact(NodeId u, const NodeInfo& info);
  // Lexicographic (incarnation, pos_version) freshness of `info` against a
  // stored record.
  static bool at_least_as_fresh(const NodeInfo& info, std::uint32_t inc, std::uint64_t ver) {
    return std::make_pair(info.incarnation, info.pos_version) >= std::make_pair(inc, ver);
  }
  static bool strictly_fresher(const NodeInfo& info, std::uint32_t inc, std::uint64_t ver) {
    return std::make_pair(info.incarnation, info.pos_version) > std::make_pair(inc, ver);
  }

  // --- adaptive failure detection ------------------------------------------
  void schedule_fd_tick(NodeId u);
  void fd_tick(NodeId u);
  void send_heartbeats(NodeId u);
  // Drops multi-hop DT neighbor y as dead: erases its soft state, writes a
  // tombstone for its last-known incarnation, and recomputes the local DT.
  void evict_neighbor(NodeId u, NodeId y);

  // --- message handling ----------------------------------------------------
  void on_hello(NodeId u, const Envelope& msg);
  void on_join_request(NodeId u, Envelope msg);
  void on_join_reply(NodeId u, Envelope msg);
  void on_nbr_set_request(NodeId u, Envelope msg);
  void on_nbr_set_reply(NodeId u, Envelope msg);
  void on_pos_update(NodeId u, Envelope msg);
  void on_heartbeat(NodeId u, const Envelope& msg);

  // --- forwarding helpers --------------------------------------------------
  // Greedy next hop toward `pos` among u's physical neighbors and DT
  // neighbors, excluding already visited nodes. Join requests restrict
  // physical hops to joined nodes (the multi-hop DT members). Returns the
  // chosen neighbor id, or nullopt if u is a local minimum among eligible
  // candidates.
  std::optional<NodeId> greedy_next(NodeId u, const Vec& pos, const std::vector<NodeId>& visited,
                                    bool joined_only) const;
  // Sends a greedy-phase message onward from u (handles virtual-link
  // detours); returns false when no progress was possible.
  bool forward_request(NodeId u, Envelope msg);
  // Continues a source-routed message from u along msg.route.
  void forward_routed(NodeId u, Envelope msg);
  // One physical-hop control send; routes join / neighbor-set kinds through
  // the reliable transport when one is attached.
  bool send_ctrl(NodeId from, NodeId to, Envelope msg);
  // Installs/refreshes a relay entry at u for the virtual link (a, b).
  void note_relay(NodeId u, NodeId a, NodeId b, NodeId pred, NodeId succ);

  // --- protocol actions ------------------------------------------------------
  void send_nbr_request(NodeId u, NodeId y);
  // (Re)sends without the in-flight guard: reuses any existing pending entry
  // so retry attempts accumulate toward max_sync_retries.
  void resend_nbr_request(NodeId u, NodeId y);
  void sync_missing_neighbors(NodeId u);
  void schedule_recompute(NodeId u);
  void recompute(NodeId u);
  void merge_candidate_info(NodeId u, const NodeInfo& info, NodeId via);
  void mark_joined(NodeId u);
  void reply_with_neighbor_set(NodeId u, const Envelope& request, Kind kind);
  std::vector<NodeInfo> neighbor_infos(NodeId u) const;
  void refresh_phys(NodeId u);
  void send_hello(NodeId u);

  // Per-node accessors for the counters/RNG above; every call site passes
  // the node whose event is executing, so writes stay lane-local.
  SyncStats& sync_at(NodeId u) { return sync_stats_[static_cast<std::size_t>(u)]; }
  RecomputeStats& rec_at(NodeId u) { return recompute_stats_[static_cast<std::size_t>(u)]; }
  FdStats& fd_at(NodeId u) { return fd_stats_[static_cast<std::size_t>(u)]; }
  Rng& rng_at(NodeId u) { return rng_[static_cast<std::size_t>(u)]; }

  Net& net_;
  MdtConfig config_;
  ReliableNet* reliable_ = nullptr;
  std::vector<SyncStats> sync_stats_;
  std::vector<RecomputeStats> recompute_stats_;
  std::vector<FdStats> fd_stats_;
  // Counters of DT instances destroyed by deactivate(); per-node slots so
  // writes stay lane-local under the sharded engine.
  std::vector<geom::DynamicDtStats> dt_retired_;
  std::vector<NodeState> states_;
  std::vector<Rng> rng_;
  std::vector<NodeId> empty_path_;
};

}  // namespace gdvr::mdt
