// Shared Dijkstra kernel, templated on the adjacency container. Graph and
// CsrGraph both instantiate this exact body (graph.cpp / csr.cpp), which is
// what guarantees the two overloads agree bit-for-bit on distances, parents
// and tie-breaking: same heap discipline, same relaxation order for the same
// neighbor order. Internal header -- include only from src/graph/*.cpp.
#pragma once

#include <algorithm>

#include "graph/graph.hpp"
#include "obs/profile.hpp"

namespace gdvr::graph::detail {

template <typename AdjacencyT>
const ShortestPaths& dijkstra_impl(const AdjacencyT& g, int src, DijkstraWorkspace& ws) {
  GDVR_PROFILE_SCOPE("graph.dijkstra");
  const int n = g.size();
  ShortestPaths& sp = ws.sp;
  sp.dist.assign(static_cast<std::size_t>(n), kInf);
  sp.parent.assign(static_cast<std::size_t>(n), -1);
  // Manual binary heap on the reused buffer: std::priority_queue owns its
  // container, so its storage cannot survive across calls.
  auto& heap = ws.heap;
  heap.clear();
  const auto cmp = [](const std::pair<double, int>& a, const std::pair<double, int>& b) {
    return a.first > b.first;
  };
  sp.dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace_back(0.0, src);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > sp.dist[static_cast<std::size_t>(u)]) continue;
    for (const Edge& e : g.neighbors(u)) {
      const double nd = d + e.cost;
      if (nd < sp.dist[static_cast<std::size_t>(e.to)]) {
        sp.dist[static_cast<std::size_t>(e.to)] = nd;
        sp.parent[static_cast<std::size_t>(e.to)] = u;
        heap.emplace_back(nd, e.to);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  return sp;
}

}  // namespace gdvr::graph::detail
