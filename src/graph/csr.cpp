#include "graph/csr.hpp"

#include <algorithm>
#include <cstring>

#include "common/parallel.hpp"
#include "graph/dijkstra_impl.hpp"

namespace gdvr::graph {

CsrGraph::CsrGraph(const Graph& g) {
  const int n = g.size();
  offsets_.resize(static_cast<std::size_t>(n) + 1, 0);
  for (int u = 0; u < n; ++u)
    offsets_[static_cast<std::size_t>(u) + 1] =
        offsets_[static_cast<std::size_t>(u)] + g.neighbors(u).size();
  edges_.resize(offsets_[static_cast<std::size_t>(n)]);
  for (int u = 0; u < n; ++u) {
    const std::span<const Edge> nb = g.neighbors(u);
    Edge* run = edges_.data() + offsets_[static_cast<std::size_t>(u)];
    std::copy(nb.begin(), nb.end(), run);
    // The generator emits ascending runs already; is_sorted is then a single
    // linear pass and the sort never runs. Stable, so duplicate targets (a
    // multigraph built via add_edge) keep their insertion order.
    if (!std::is_sorted(run, run + nb.size(),
                        [](const Edge& a, const Edge& b) { return a.to < b.to; }))
      std::stable_sort(run, run + nb.size(),
                       [](const Edge& a, const Edge& b) { return a.to < b.to; });
  }
}

const ShortestPaths& dijkstra(const CsrGraph& g, int src, DijkstraWorkspace& ws) {
  return detail::dijkstra_impl(g, src, ws);
}

ShortestPaths dijkstra(const CsrGraph& g, int src) {
  DijkstraWorkspace ws;
  dijkstra(g, src, ws);
  return std::move(ws.sp);
}

std::vector<double> all_pairs_distances(const CsrGraph& g, int threads) {
  const int n = g.size();
  std::vector<double> out(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf);
  if (n == 0) return out;
  // Fixed-size source chunks keep the fan-out deterministic (chunk c always
  // covers the same sources) and amortize per-task overhead. Workers write
  // disjoint row slices of the shared output, so there is no aggregation
  // step and no ordering hazard.
  constexpr int kSourcesPerChunk = 16;
  const int chunks = (n + kSourcesPerChunk - 1) / kSourcesPerChunk;
  ParallelTrials pool(threads);
  pool.run(chunks, [&](int c) {
    DijkstraWorkspace ws;
    const int lo = c * kSourcesPerChunk;
    const int hi = std::min(n, lo + kSourcesPerChunk);
    for (int src = lo; src < hi; ++src) {
      const ShortestPaths& sp = dijkstra(g, src, ws);
      std::memcpy(out.data() + static_cast<std::size_t>(src) * static_cast<std::size_t>(n),
                  sp.dist.data(), static_cast<std::size_t>(n) * sizeof(double));
    }
    return 0;
  });
  return out;
}

}  // namespace gdvr::graph
