// Frozen CSR (compressed sparse row) snapshot of a Graph.
//
// Graph stores one heap-allocated vector per node, which is the right shape
// while a topology is being built or churned but a poor one for the read-only
// phases that dominate runtime: routing hot loops, all-pairs Dijkstra sweeps,
// and greedy forwarding all walk adjacency lists millions of times without
// ever mutating them. CsrGraph freezes a Graph into two flat arrays (offsets
// and edges) so those walks are contiguous, and keeps every node's run sorted
// by target id so link_cost() is a binary search instead of a linear scan.
//
// The snapshot is positionally deterministic: node ids, per-node edge order
// (ascending by target) and costs are a pure function of the source Graph,
// and dijkstra() over a CsrGraph uses the same kernel as dijkstra() over the
// Graph it came from, so distances, parents and tie-breaking match exactly
// whenever the source adjacency was already sorted (the topology generator
// always produces sorted adjacency).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gdvr::graph {

class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  int size() const {
    return offsets_.empty() ? 0 : static_cast<int>(offsets_.size()) - 1;
  }
  std::size_t edge_count() const { return edges_.size(); }

  std::span<const Edge> neighbors(int u) const {
    GDVR_ASSERT(u >= 0 && u < size());
    const std::size_t lo = offsets_[static_cast<std::size_t>(u)];
    const std::size_t hi = offsets_[static_cast<std::size_t>(u) + 1];
    return {edges_.data() + lo, hi - lo};
  }

  int degree(int u) const { return static_cast<int>(neighbors(u).size()); }

  // Directed cost of link (u, v); kInf if absent. Runs are sorted by target,
  // so this is a binary search -- O(log degree) against Graph's O(degree).
  double link_cost(int u, int v) const {
    const std::span<const Edge> nb = neighbors(u);
    std::size_t lo = 0, hi = nb.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (nb[mid].to < v)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < nb.size() && nb[lo].to == v ? nb[lo].cost : kInf;
  }

  bool has_edge(int u, int v) const { return link_cost(u, v) < kInf; }

 private:
  std::vector<std::size_t> offsets_;  // size() + 1 entries; empty when default
  std::vector<Edge> edges_;           // per-node runs, ascending by target id
};

// Dijkstra over a frozen snapshot; same kernel (hence identical distances,
// parents and tie-breaking) as the Graph overloads in graph.hpp.
ShortestPaths dijkstra(const CsrGraph& g, int src);
const ShortestPaths& dijkstra(const CsrGraph& g, int src, DijkstraWorkspace& ws);

// Row-major n x n matrix of shortest-path costs: entry [src * n + dst] is the
// cost of the cheapest src -> dst path, kInf when unreachable. One Dijkstra
// per source, fanned over ParallelTrials workers (GDVR_THREADS) in fixed
// chunks; every row is an independent computation written to its own slice,
// so the result is bit-identical to a sequential sweep at any thread count.
// This is the backbone of the embedding cost matrices and the ETX-stretch
// baselines, whose all-pairs loops dominate large-N analysis runs.
std::vector<double> all_pairs_distances(const CsrGraph& g, int threads = 0);

}  // namespace gdvr::graph
