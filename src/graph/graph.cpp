#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "graph/dijkstra_impl.hpp"
#include "obs/profile.hpp"

namespace gdvr::graph {

Graph Graph::induced_subgraph(std::span<const int> keep, std::vector<int>* old_ids) const {
  std::vector<int> remap(static_cast<std::size_t>(size()), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) remap[static_cast<std::size_t>(keep[i])] = static_cast<int>(i);
  Graph g(static_cast<int>(keep.size()));
  for (int u : keep) {
    const int nu = remap[static_cast<std::size_t>(u)];
    for (const Edge& e : neighbors(u)) {
      const int nv = remap[static_cast<std::size_t>(e.to)];
      if (nv >= 0) g.add_edge(nu, nv, e.cost);
    }
  }
  if (old_ids) old_ids->assign(keep.begin(), keep.end());
  return g;
}

const ShortestPaths& dijkstra(const Graph& g, int src, DijkstraWorkspace& ws) {
  return detail::dijkstra_impl(g, src, ws);
}

ShortestPaths dijkstra(const Graph& g, int src) {
  DijkstraWorkspace ws;
  dijkstra(g, src, ws);
  return std::move(ws.sp);
}

std::vector<int> bfs_hops(const Graph& g, int src) {
  std::vector<int> hops(static_cast<std::size_t>(g.size()), -1);
  std::queue<int> q;
  hops[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (const Edge& e : g.neighbors(u)) {
      if (hops[static_cast<std::size_t>(e.to)] < 0) {
        hops[static_cast<std::size_t>(e.to)] = hops[static_cast<std::size_t>(u)] + 1;
        q.push(e.to);
      }
    }
  }
  return hops;
}

std::vector<int> extract_path(const ShortestPaths& sp, int dst) {
  std::vector<int> path;
  if (dst < 0 || dst >= static_cast<int>(sp.dist.size()) ||
      sp.dist[static_cast<std::size_t>(dst)] == kInf)
    return path;
  for (int u = dst; u >= 0; u = sp.parent[static_cast<std::size_t>(u)]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> largest_component(const Graph& g) {
  const int n = g.size();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int best_id = -1;
  std::size_t best_size = 0;
  int next = 0;
  std::vector<int> q;  // flat BFS queue, reused across components
  q.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    const int id = next++;
    q.clear();
    comp[static_cast<std::size_t>(s)] = id;
    q.push_back(s);
    for (std::size_t head = 0; head < q.size(); ++head) {
      const int u = q[head];
      for (const Edge& e : g.neighbors(u)) {
        if (comp[static_cast<std::size_t>(e.to)] < 0) {
          comp[static_cast<std::size_t>(e.to)] = id;
          q.push_back(e.to);
        }
      }
    }
    const std::size_t count = q.size();
    if (count > best_size) {
      best_size = count;
      best_id = id;
    }
  }
  std::vector<int> nodes;
  nodes.reserve(best_size);
  for (int u = 0; u < n; ++u)
    if (comp[static_cast<std::size_t>(u)] == best_id) nodes.push_back(u);
  return nodes;
}

}  // namespace gdvr::graph
