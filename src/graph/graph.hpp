// Directed weighted connectivity graph plus shortest-path utilities.
//
// Link costs are per-direction (the paper's metrics may be asymmetric, e.g.
// ETX measured separately for each direction). Hop count is modeled as a
// unit-cost view of the same adjacency.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace gdvr::graph {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Edge {
  int to = -1;
  double cost = 1.0;  // cost of the directed link (from, to)
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n) : adj_(static_cast<std::size_t>(n)) {}

  int size() const { return static_cast<int>(adj_.size()); }

  void add_edge(int from, int to, double cost) {
    GDVR_ASSERT(from >= 0 && from < size() && to >= 0 && to < size() && from != to);
    GDVR_ASSERT_MSG(cost > 0.0, "routing metrics must be positive");
    adj_[static_cast<std::size_t>(from)].push_back({to, cost});
  }

  // Adds both directions with (possibly different) costs.
  void add_bidirectional(int u, int v, double cost_uv, double cost_vu) {
    add_edge(u, v, cost_uv);
    add_edge(v, u, cost_vu);
  }

  // Bulk construction: replaces node u's adjacency with `edges` in one
  // validated pass. The topology generator builds per-node edge runs with a
  // counting sort and hands each run over here -- one allocation and a flat
  // copy per node instead of ~degree checked push_backs.
  void assign_neighbors(int u, std::span<const Edge> edges) {
    GDVR_ASSERT(u >= 0 && u < size());
    for (const Edge& e : edges) {
      GDVR_ASSERT(e.to >= 0 && e.to < size() && e.to != u);
      GDVR_ASSERT_MSG(e.cost > 0.0, "routing metrics must be positive");
    }
    adj_[static_cast<std::size_t>(u)].assign(edges.begin(), edges.end());
  }

  // Unvalidated variant for bulk builders whose edges are correct by
  // construction (the topology generator's counting-sort assembly). The
  // per-edge checks above are compiled into release builds, so skipping them
  // matters when this runs 4 graphs x n nodes times per generation.
  void assign_neighbors_unchecked(int u, std::span<const Edge> edges) {
    GDVR_ASSERT(u >= 0 && u < size());
    adj_[static_cast<std::size_t>(u)].assign(edges.begin(), edges.end());
  }

  std::span<const Edge> neighbors(int u) const {
    return adj_[static_cast<std::size_t>(u)];
  }

  // Directed cost of link (u, v); kInf if absent.
  double link_cost(int u, int v) const {
    for (const Edge& e : neighbors(u))
      if (e.to == v) return e.cost;
    return kInf;
  }

  bool has_edge(int u, int v) const { return link_cost(u, v) < kInf; }

  int degree(int u) const { return static_cast<int>(adj_[static_cast<std::size_t>(u)].size()); }

  double average_degree() const {
    if (size() == 0) return 0.0;
    std::size_t total = 0;
    for (const auto& a : adj_) total += a.size();
    return static_cast<double>(total) / static_cast<double>(size());
  }

  std::size_t edge_count() const {
    std::size_t total = 0;
    for (const auto& a : adj_) total += a.size();
    return total;
  }

  // Same adjacency with every cost replaced by 1 (hop-count metric).
  Graph with_unit_costs() const {
    Graph g(size());
    for (int u = 0; u < size(); ++u)
      for (const Edge& e : neighbors(u)) g.add_edge(u, e.to, 1.0);
    return g;
  }

  // Keeps only the listed nodes (compacted ids in list order). Used by the
  // topology generator to restrict to the largest connected component and by
  // churn experiments. `old_ids` returns the original id of each new node.
  Graph induced_subgraph(std::span<const int> keep, std::vector<int>* old_ids = nullptr) const;

 private:
  std::vector<std::vector<Edge>> adj_;
};

struct ShortestPaths {
  std::vector<double> dist;    // kInf when unreachable
  std::vector<int> parent;     // -1 for source / unreachable
};

// Dijkstra from `src` over directed costs.
ShortestPaths dijkstra(const Graph& g, int src);

// Reusable storage for repeated dijkstra runs. All-pairs loops (centralized
// MDT views, ETX stretch baselines, embedding cost matrices) call dijkstra
// once per source; reusing the dist/parent arrays and the heap buffer avoids
// three allocations per call.
struct DijkstraWorkspace {
  ShortestPaths sp;
  std::vector<std::pair<double, int>> heap;
};

// Workspace overload: runs dijkstra from `src`, leaving the result in
// `ws.sp` and returning a reference to it. The returned reference is
// invalidated by the next call with the same workspace.
const ShortestPaths& dijkstra(const Graph& g, int src, DijkstraWorkspace& ws);

// Minimum hop counts from `src` (BFS); -1 when unreachable.
std::vector<int> bfs_hops(const Graph& g, int src);

// Reconstructs the path src -> dst from a parent array; empty if unreachable.
std::vector<int> extract_path(const ShortestPaths& sp, int dst);

// Node ids of the largest connected component, treating edges as undirected.
std::vector<int> largest_component(const Graph& g);

}  // namespace gdvr::graph
