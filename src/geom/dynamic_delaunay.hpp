// Dynamic Delaunay triangulation over a keyed point set.
//
// The MDT overlay maintains, per node, the Delaunay neighbors of the node
// within a small churning candidate set. delaunay_graph() recomputes that
// triangulation from scratch on every input change; this wrapper keeps one
// live Triangulation and applies O(affected) insert / remove / move updates
// instead, falling back to a full rebuild only when an incremental operation
// reports an inconsistency.
//
// Determinism contract: jitter is a pure function of (key, position,
// escalation level) -- never of insertion order or of the rest of the set --
// so an incrementally maintained instance and a freshly assign()ed oracle
// holding the same logical points place every point at bit-identical
// coordinates. Structural equality of the two complexes is pinned in
// geom_test across randomized insert/remove/move schedules.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/delaunay.hpp"

namespace gdvr::geom {

// Maintenance counters, exported per overlay node through the metric
// registry (mdt.dt.* in VpodRunner::export_metrics).
struct DynamicDtStats {
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
  std::uint64_t moves = 0;
  std::uint64_t move_early_outs = 0;  // topology untouched, spheres updated in place
  std::uint64_t full_rebuilds = 0;    // incremental op failed -> rebuilt from scratch
  std::uint64_t walk_fallbacks = 0;   // forwarded from the walk-based locate kernel
};

class DynamicDelaunay {
 public:
  using Key = std::int64_t;

  explicit DynamicDelaunay(int dim, const DelaunayOptions& opts = {});

  // Replaces the whole point set and builds from scratch. This is the
  // initial build and the kFullRebuild oracle path: it runs the same
  // jitter-escalation ladder every time, so two instances assigned the same
  // set are bit-identical.
  void assign(std::span<const std::pair<Key, Vec>> points);

  void insert(Key key, const Vec& pos);
  void remove(Key key);
  void move(Key key, const Vec& pos);

  // Applies one batch of updates. Lands on the same complex as the per-op
  // calls above (the jittered set's DT is unique); only the repair policy
  // differs. Moves attempt their early-out certificate first -- declines
  // leave the complex untouched -- and the batch's structural work (removes,
  // inserts, declined moves) is costed against one from-scratch build; past
  // that line the whole remainder becomes a single rebuild instead of
  // per-point cavity digs. This keeps a mostly-moved diff (the VPoD steady
  // state: every position nudged each adjustment period) no worse than the
  // from-scratch baseline while a mostly-unchanged diff stays O(affected).
  void apply_diff(std::span<const Key> removes, std::span<const std::pair<Key, Vec>> inserts,
                  std::span<const std::pair<Key, Vec>> moves);

  bool contains(Key key) const;
  int size() const { return static_cast<int>(raw_.size()); }
  int dim() const { return dim_; }

  // Sorted keys of `key`'s Delaunay neighbors. In complete-graph mode (fewer
  // than dim+2 points, or a point set that defeated every build attempt)
  // every other key is returned -- the same safe over-approximation
  // delaunay_graph() falls back to.
  std::vector<Key> neighbors(Key key);

  bool complete_fallback() const { return !tri_ok_ && static_cast<int>(raw_.size()) >= 2; }
  int jitter_level() const { return level_; }
  DynamicDtStats stats() const;

  // Test hook: the live complex (only meaningful when !complete_fallback()).
  const Triangulation& triangulation() const { return tri_; }
  bool has_triangulation() const { return tri_ok_; }

 private:
  Vec jittered(Key key, const Vec& pos, int level) const;
  void rebuild();

  int dim_;
  DelaunayOptions opts_;
  // Sorted-by-key flat maps. The per-node candidate sets are tiny (tens of
  // points) and re-diffed every adjustment period, so binary-searched vectors
  // beat node-allocating std::map on lookups and on the rebuild() scan. The
  // key-sorted order is load-bearing: vertex index i is the i-th smallest
  // key, the same order a from-scratch assign() oracle produces.
  std::vector<std::pair<Key, Vec>> raw_;  // authoritative key -> raw position
  std::vector<std::pair<Key, int>> idx_;  // key -> tri vertex index (tri mode only)
  std::vector<Key> key_of_;               // vertex index -> key
  Triangulation tri_;
  bool tri_ok_ = false;
  int level_ = 0;  // jitter-escalation level the current complex was built at
  // apply_diff's predictive-skip state: trailing early-out rate of attempted
  // move certificates (EWMA, decay 3/4) and skips since the last probe.
  double eo_rate_ = 0.5;
  int skips_since_probe_ = 0;
  DynamicDtStats stats_;
  std::vector<int> nbr_scratch_;
  std::vector<Vec> pts_scratch_;
  std::vector<Key> declined_scratch_;  // apply_diff: moves awaiting per-point repair
};

}  // namespace gdvr::geom
