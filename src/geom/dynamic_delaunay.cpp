#include "geom/dynamic_delaunay.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace gdvr::geom {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Deterministic jitter in [-1, 1) keyed by (seed, key hash, coordinate) --
// the keyed counterpart of the per-index jitter in delaunay.cpp.
double jitter_unit(std::uint64_t seed, std::uint64_t kh, int coord) {
  const std::uint64_t h = splitmix(seed ^ splitmix(kh * 131 + static_cast<std::uint64_t>(coord)));
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

// Binary search over a key-sorted vector of pairs: position a key would
// occupy, and exact-match lookup (end() when absent).
template <class Flat>
auto key_slot(Flat& v, DynamicDelaunay::Key k) {
  return std::lower_bound(v.begin(), v.end(), k,
                          [](const auto& e, DynamicDelaunay::Key key) { return e.first < key; });
}

template <class Flat>
auto key_find(Flat& v, DynamicDelaunay::Key k) {
  auto it = key_slot(v, k);
  return (it != v.end() && it->first == k) ? it : v.end();
}

}  // namespace

DynamicDelaunay::DynamicDelaunay(int dim, const DelaunayOptions& opts)
    : dim_(dim), opts_(opts) {
  GDVR_ASSERT(dim >= 2 && dim <= 12);
  if (opts_.force_linear_scan) tri_.set_locate_mode(Triangulation::LocateMode::kLinearScan);
  // All jitter is applied here, keyed by Key; the Triangulation must not add
  // a second, index-keyed layer on rebuilds.
  tri_.set_jitter(0.0, 0);
}

Vec DynamicDelaunay::jittered(Key key, const Vec& pos, int level) const {
  // Magnitude is relative to the point's own coordinate scale rather than
  // the set's bounding box: the set changes under churn, the point does not,
  // and the oracle contract needs jitter to depend on nothing mutable.
  double scale = 1.0;
  for (int c = 0; c < dim_; ++c) scale = std::max(scale, std::abs(pos[c]));
  double mag = opts_.jitter_rel * scale;
  for (int l = 0; l < level; ++l) mag *= 1e3;
  const std::uint64_t kh = splitmix(static_cast<std::uint64_t>(key));
  const std::uint64_t seed =
      opts_.jitter_seed + static_cast<std::uint64_t>(level) * 0x1234567ull;
  Vec out = pos;
  for (int c = 0; c < dim_; ++c) out[c] += mag * jitter_unit(seed, kh, c);
  return out;
}

bool DynamicDelaunay::contains(Key key) const { return key_find(raw_, key) != raw_.end(); }

void DynamicDelaunay::assign(std::span<const std::pair<Key, Vec>> points) {
  raw_.clear();
  for (const auto& [k, p] : points) {
    GDVR_ASSERT(p.dim() == dim_);
    auto it = key_slot(raw_, k);
    if (it != raw_.end() && it->first == k)
      it->second = p;
    else
      raw_.insert(it, {k, p});
  }
  rebuild();
}

void DynamicDelaunay::rebuild() {
  tri_ok_ = false;
  idx_.clear();
  key_of_.clear();
  const int n = static_cast<int>(raw_.size());
  if (n < dim_ + 2) return;  // with <= dim+1 points every pair is a DT neighbor
  // The same escalation ladder as delaunay_graph(): retry with 1000x the
  // jitter when a build fails on a degenerate set. The level is part of the
  // coordinates, so a from-scratch oracle walking the same ladder on the
  // same set lands on the same jittered points.
  for (int lv = 0; lv < std::max(1, opts_.max_attempts) && !tri_ok_; ++lv) {
    pts_scratch_.clear();
    for (const auto& [k, p] : raw_) pts_scratch_.push_back(jittered(k, p, lv));
    if (tri_.build(pts_scratch_)) {
      tri_ok_ = true;
      level_ = lv;
    }
  }
  if (!tri_ok_) {
    GDVR_LOG_WARN(
        "DynamicDelaunay: rebuild failed after retries (n=%d dim=%d); "
        "complete-graph fallback",
        n, dim_);
    return;
  }
  key_of_.reserve(raw_.size());
  idx_.reserve(raw_.size());
  int i = 0;
  for (const auto& [k, p] : raw_) {
    (void)p;
    idx_.push_back({k, i});  // raw_ is key-sorted, so idx_ comes out sorted too
    key_of_.push_back(k);
    ++i;
  }
}

void DynamicDelaunay::insert(Key key, const Vec& pos) {
  GDVR_ASSERT(pos.dim() == dim_);
  ++stats_.inserts;
  auto rt = key_slot(raw_, key);
  GDVR_ASSERT(rt == raw_.end() || rt->first != key);
  raw_.insert(rt, {key, pos});
  if (!tri_ok_) {
    // Either still below the triangulable size (first viable build is not a
    // fallback) or in degenerate fallback, where a fresh point may well make
    // the set triangulable again.
    if (static_cast<int>(raw_.size()) >= dim_ + 2) rebuild();
    return;
  }
  const int idx = tri_.insert_point(jittered(key, pos, level_));
  if (idx < 0) {
    ++stats_.full_rebuilds;
    rebuild();
    return;
  }
  if (idx == static_cast<int>(key_of_.size()))
    key_of_.push_back(key);
  else
    key_of_[static_cast<std::size_t>(idx)] = key;
  auto it = key_slot(idx_, key);
  if (it != idx_.end() && it->first == key)
    it->second = idx;
  else
    idx_.insert(it, {key, idx});
}

void DynamicDelaunay::remove(Key key) {
  auto it = key_find(raw_, key);
  if (it == raw_.end()) return;
  ++stats_.removes;
  raw_.erase(it);
  if (!tri_ok_) {
    if (static_cast<int>(raw_.size()) >= dim_ + 2) rebuild();  // degenerate point may be gone
    return;
  }
  if (static_cast<int>(raw_.size()) < dim_ + 2) {
    tri_ok_ = false;  // too small to triangulate: complete-graph mode
    idx_.clear();
    key_of_.clear();
    return;
  }
  auto ii = key_find(idx_, key);
  if (ii == idx_.end() || !tri_.remove_point(ii->second)) {
    ++stats_.full_rebuilds;
    rebuild();
    return;
  }
  idx_.erase(ii);
}

void DynamicDelaunay::move(Key key, const Vec& pos) {
  auto it = key_find(raw_, key);
  GDVR_ASSERT(it != raw_.end());
  GDVR_ASSERT(pos.dim() == dim_);
  ++stats_.moves;
  if (it->second == pos) return;
  it->second = pos;
  if (!tri_ok_) {
    if (idx_.empty() && static_cast<int>(raw_.size()) >= dim_ + 2)
      rebuild();  // degenerate fallback: the move may have broken the tie
    return;
  }
  const auto ii = key_find(idx_, key);
  bool ok = ii != idx_.end();
  if (ok) {
    const Triangulation::MoveResult r = tri_.move_point(ii->second, jittered(key, pos, level_));
    if (r == Triangulation::MoveResult::kEarlyOut) ++stats_.move_early_outs;
    ok = r != Triangulation::MoveResult::kFailed;
  }
  if (!ok) {
    ++stats_.full_rebuilds;
    rebuild();
  }
}

void DynamicDelaunay::apply_diff(std::span<const Key> removes,
                                 std::span<const std::pair<Key, Vec>> inserts,
                                 std::span<const std::pair<Key, Vec>> moves) {
  if (removes.empty() && inserts.empty() && moves.empty()) return;
  if (!tri_ok_) {
    // Complete-graph or undersized mode: apply the whole batch to the raw
    // set, then at most one build attempt (a nudge may fix a degenerate set).
    bool changed = false;
    for (Key k : removes) {
      auto it = key_find(raw_, k);
      if (it == raw_.end()) continue;
      ++stats_.removes;
      raw_.erase(it);
      changed = true;
    }
    for (const auto& [k, p] : inserts) {
      GDVR_ASSERT(p.dim() == dim_);
      ++stats_.inserts;
      auto it = key_slot(raw_, k);
      GDVR_ASSERT(it == raw_.end() || it->first != k);
      raw_.insert(it, {k, p});
      changed = true;
    }
    for (const auto& [k, p] : moves) {
      auto it = key_find(raw_, k);
      GDVR_ASSERT(it != raw_.end());
      GDVR_ASSERT(p.dim() == dim_);
      ++stats_.moves;
      if (it->second == p) continue;
      it->second = p;
      changed = true;
    }
    if (changed) rebuild();  // resets complete-graph mode when still undersized
    return;
  }
  // Phase 1: moves, early-out certificate only, against the pre-batch
  // complex. A declined move leaves the complex untouched, so the whole
  // remaining batch can still collapse into one rebuild. Any interleaving of
  // the batch's ops lands on the same complex -- each op preserves the
  // Delaunay invariant and the jittered set's DT is unique -- so evaluating
  // move certificates before the removes/inserts is safe.
  //
  // Cost model, in units of one fresh insert (a cavity dig): a remove also
  // builds the link DT of its hole, a declined move repaired per-point pays
  // both. A from-scratch rebuild is about one insert per live point, but the
  // per-point ops run on a complex the batch keeps perturbing and their
  // constants are worse than bulk insertion, so the bar is set at half a
  // rebuild: measured on the VPoD steady-state bench, n/2 and n/3 tie while
  // a full-n bar loses ~15% by staying per-point too long. Once the batch's
  // structural work passes the bar, one rebuild replaces all of it -- a
  // mostly-moved diff (VPoD steady state) collapses to from-scratch cost
  // while a mostly-unchanged diff stays O(affected).
  const std::size_t rebuild_cost = raw_.size() / 2;
  const std::size_t fixed_cost = inserts.size() + 2 * removes.size();
  declined_scratch_.clear();
  std::size_t mi = 0;
  bool bail = fixed_cost > rebuild_cost;
  // Predictive skip: when a batch bails, every certificate already attempted
  // -- including the ones that passed -- was wasted, because the rebuild
  // re-places those points from raw_ anyway. So before attempting any,
  // predict the declines from the trailing early-out rate and skip straight
  // to the rebuild when the batch looks doomed. Every 8th skip runs phase 1
  // anyway, so a workload that turns calm (small steps, certificates start
  // holding) pulls the estimate back up and re-enables the incremental path.
  if (!bail && !moves.empty()) {
    const double predicted = static_cast<double>(moves.size()) * (1.0 - eo_rate_);
    if (static_cast<double>(fixed_cost) + 3.0 * predicted > static_cast<double>(rebuild_cost)) {
      if (skips_since_probe_ < 7) {
        ++skips_since_probe_;
        bail = true;
      } else {
        skips_since_probe_ = 0;
      }
    }
  }
  std::size_t attempted = 0;
  std::size_t attempted_eo = 0;
  for (; !bail && mi < moves.size(); ++mi) {
    const auto& [k, p] = moves[mi];
    auto it = key_find(raw_, k);
    GDVR_ASSERT(it != raw_.end());
    GDVR_ASSERT(p.dim() == dim_);
    ++stats_.moves;
    if (it->second == p) continue;
    it->second = p;
    const auto ii = key_find(idx_, k);
    if (ii == idx_.end()) {
      bail = true;  // index inconsistency: let the rebuild resolve it
      ++mi;
      break;
    }
    const Triangulation::MoveResult r =
        tri_.move_point(ii->second, jittered(k, p, level_), /*allow_reinsert=*/false);
    ++attempted;
    if (r == Triangulation::MoveResult::kEarlyOut) {
      ++attempted_eo;
      ++stats_.move_early_outs;
      continue;
    }
    if (r == Triangulation::MoveResult::kDeclined &&
        fixed_cost + 3 * (declined_scratch_.size() + 1) <= rebuild_cost) {
      declined_scratch_.push_back(k);
      continue;
    }
    bail = true;  // kFailed, or past the point where one rebuild is cheaper
    ++mi;
    break;
  }
  if (attempted > 0)
    eo_rate_ = (3.0 * eo_rate_ + static_cast<double>(attempted_eo) / static_cast<double>(attempted)) / 4.0;
  if (bail) {
    // Fold everything still pending -- remaining moves, all removes, all
    // inserts, the declined moves already recorded in raw_ -- into one
    // rebuild instead of paying per-point cavity work first.
    for (; mi < moves.size(); ++mi) {
      const auto& [k, p] = moves[mi];
      auto it = key_find(raw_, k);
      GDVR_ASSERT(it != raw_.end());
      ++stats_.moves;
      it->second = p;
    }
    for (Key k : removes) {
      auto it = key_find(raw_, k);
      if (it == raw_.end()) continue;
      ++stats_.removes;
      raw_.erase(it);
    }
    for (const auto& [k, p] : inserts) {
      GDVR_ASSERT(p.dim() == dim_);
      ++stats_.inserts;
      auto it = key_slot(raw_, k);
      GDVR_ASSERT(it == raw_.end() || it->first != k);
      raw_.insert(it, {k, p});
    }
    ++stats_.full_rebuilds;
    rebuild();
    return;
  }
  // Phase 2: cheap enough to stay incremental. remove()/insert() recover
  // from their own failures with an internal rebuild (which consumes raw_,
  // already holding every declined move's position).
  for (Key k : removes) remove(k);
  for (const auto& [k, p] : inserts) insert(k, p);
  for (Key k : declined_scratch_) {
    if (!tri_ok_) return;  // a structural op above fell back; nothing to repair
    const auto ii = key_find(idx_, k);
    const auto rt = key_find(raw_, k);
    const Triangulation::MoveResult r =
        (ii != idx_.end() && rt != raw_.end())
            ? tri_.move_point(ii->second, jittered(k, rt->second, level_), /*allow_reinsert=*/true)
            : Triangulation::MoveResult::kFailed;
    if (r == Triangulation::MoveResult::kFailed) {
      ++stats_.full_rebuilds;
      rebuild();
      return;
    }
    // kReinserted keeps the same vertex slot, so idx_ stays valid. A second
    // early-out is possible when an earlier repair restored the certificate.
    if (r == Triangulation::MoveResult::kEarlyOut) ++stats_.move_early_outs;
  }
}

std::vector<DynamicDelaunay::Key> DynamicDelaunay::neighbors(Key key) {
  std::vector<Key> out;
  if (!contains(key)) return out;
  if (tri_ok_) {
    const auto ii = key_find(idx_, key);
    if (ii != idx_.end() && tri_.vertex_neighbors(ii->second, nbr_scratch_)) {
      out.reserve(nbr_scratch_.size());
      for (int vi : nbr_scratch_) out.push_back(key_of_[static_cast<std::size_t>(vi)]);
      std::sort(out.begin(), out.end());
      return out;
    }
    // A live complex whose star walk fails is poisoned: rebuild and retry.
    ++stats_.full_rebuilds;
    rebuild();
    if (tri_ok_) {
      const auto ij = key_find(idx_, key);
      if (ij != idx_.end() && tri_.vertex_neighbors(ij->second, nbr_scratch_)) {
        out.reserve(nbr_scratch_.size());
        for (int vi : nbr_scratch_) out.push_back(key_of_[static_cast<std::size_t>(vi)]);
        std::sort(out.begin(), out.end());
        return out;
      }
    }
  }
  // Complete-graph mode.
  out.reserve(raw_.size());
  for (const auto& [k, p] : raw_) {
    (void)p;
    if (k != key) out.push_back(k);
  }
  return out;
}

DynamicDtStats DynamicDelaunay::stats() const {
  DynamicDtStats s = stats_;
  // tri_ persists across rebuilds (build() reassigns the complex but never
  // resets the counter), so this is monotone over the instance's lifetime.
  s.walk_fallbacks = tri_.walk_fallbacks();
  return s;
}

}  // namespace gdvr::geom
