// Brute-force Delaunay oracle used by the test suite.
//
// Enumerates every (d+1)-subset of the input, keeps those whose circumsphere
// is empty of all other points, and returns the union of their edges. This is
// O(n^(d+2)) and only suitable for small n, but it is an independent
// implementation against which the incremental triangulation is validated.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/vec.hpp"

namespace gdvr::geom {

// Edge set (u < v, sorted) of the Delaunay graph, by exhaustive search.
// `tol` is the relative slack on the empty-circumsphere test.
std::vector<std::pair<int, int>> brute_force_delaunay_edges(std::span<const Vec> points,
                                                            double tol = 1e-9);

}  // namespace gdvr::geom
