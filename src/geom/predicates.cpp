#include "geom/predicates.hpp"

#include <array>
#include <cmath>

namespace gdvr::geom {

namespace {

// Maximum predicate matrix size: dim+1 rows for in_sphere with dim <= 12.
constexpr int kMaxN = 13;

// Determinant of an n x n row-major matrix held in a flat stack buffer;
// Gaussian elimination with partial pivoting, destroys the buffer. Closed
// forms for n <= 3 (the 2D/3D hot path: every walk step and hull-visibility
// test bottoms out here, and generic pivoting costs several times the
// arithmetic at these sizes).
double det_flat(double* m, int n) {
  if (n == 1) return m[0];
  if (n == 2) return m[0] * m[3] - m[1] * m[2];
  if (n == 3)
    return m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
  double det = 1.0;
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::fabs(m[col * n + col]);
    for (int row = col + 1; row < n; ++row) {
      const double mag = std::fabs(m[row * n + col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (best == 0.0) return 0.0;
    if (pivot != col) {
      for (int k = 0; k < n; ++k) std::swap(m[pivot * n + k], m[col * n + k]);
      det = -det;
    }
    det *= m[col * n + col];
    const double inv = 1.0 / m[col * n + col];
    for (int row = col + 1; row < n; ++row) {
      const double factor = m[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (int k = col; k < n; ++k) m[row * n + k] -= factor * m[col * n + k];
    }
  }
  return det;
}

double orient_flat(std::span<const Vec> points, int dim) {
  std::array<double, kMaxN * kMaxN> buf;
  for (int r = 0; r < dim; ++r)
    for (int c = 0; c < dim; ++c)
      buf[static_cast<std::size_t>(r * dim + c)] =
          points[static_cast<std::size_t>(r + 1)][c] - points[0][c];
  return det_flat(buf.data(), dim);
}

}  // namespace

double det_inplace(double* m, int n) {
  GDVR_ASSERT(n <= kMaxN);
  return det_flat(m, n);
}

double determinant_inplace(std::vector<std::vector<double>>& m) {
  const int n = static_cast<int>(m.size());
  GDVR_ASSERT(n <= kMaxN);
  std::array<double, kMaxN * kMaxN> buf;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      buf[static_cast<std::size_t>(r * n + c)] = m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  return det_flat(buf.data(), n);
}

double orient(std::span<const Vec> points) {
  const int dim = points[0].dim();
  GDVR_ASSERT(static_cast<int>(points.size()) == dim + 1 && dim < kMaxN);
  return orient_flat(points, dim);
}

double in_sphere(std::span<const Vec> points, const Vec& q) {
  const int dim = q.dim();
  GDVR_ASSERT(static_cast<int>(points.size()) == dim + 1 && dim + 1 < kMaxN);
  // Lifted-paraboloid determinant with rows (p_i - q, |p_i - q|^2). For a
  // positively oriented simplex the determinant is positive iff q is strictly
  // inside the circumsphere; multiply by the orientation sign so callers get
  // an orientation-independent predicate.
  const int n = dim + 1;
  std::array<double, kMaxN * kMaxN> buf;
  for (int r = 0; r < n; ++r) {
    double norm2 = 0.0;
    for (int c = 0; c < dim; ++c) {
      const double diff = points[static_cast<std::size_t>(r)][c] - q[c];
      buf[static_cast<std::size_t>(r * n + c)] = diff;
      norm2 += diff * diff;
    }
    buf[static_cast<std::size_t>(r * n + dim)] = norm2;
  }
  const double det = det_flat(buf.data(), n);
  const double o = orient_flat(points, dim);
  // The lifted determinant's "inside" sign alternates with dimension parity
  // (classic 2D incircle: positive inside for a CCW triangle; classic 3D
  // insphere: negative inside for a positively oriented tetrahedron).
  const double parity = (dim % 2 == 0) ? 1.0 : -1.0;
  if (o > 0.0) return parity * det;
  if (o < 0.0) return -parity * det;
  return 0.0;  // degenerate simplex: no meaningful circumsphere
}

bool circumsphere(std::span<const Vec> points, Vec& center, double& radius2) {
  const int dim = points[0].dim();
  GDVR_ASSERT(static_cast<int>(points.size()) == dim + 1);
  const double* rows[kMaxN];
  for (int i = 0; i <= dim; ++i)
    rows[static_cast<std::size_t>(i)] = points[static_cast<std::size_t>(i)].coords().data();
  return circumsphere_rows(rows, dim, center, radius2);
}

bool circumsphere_rows(const double* const* rows, int dim, Vec& center, double& radius2) {
  // Solve 2 (p_i - p_0) . x = |p_i|^2 - |p_0|^2 for i = 1..d, augmented
  // Gaussian elimination with partial pivoting on a stack buffer.
  constexpr int kW = kMaxN + 1;
  std::array<double, kMaxN * kW> a;
  const double* p0 = rows[0];
  double n0 = 0.0;
  for (int c = 0; c < dim; ++c) n0 += p0[c] * p0[c];
  const int w = dim + 1;  // row width: dim coefficients + rhs
  for (int r = 0; r < dim; ++r) {
    const double* p = rows[r + 1];
    double np = 0.0;
    for (int c = 0; c < dim; ++c) {
      a[static_cast<std::size_t>(r * w + c)] = 2.0 * (p[c] - p0[c]);
      np += p[c] * p[c];
    }
    a[static_cast<std::size_t>(r * w + dim)] = np - n0;
  }
  for (int col = 0; col < dim; ++col) {
    int pivot = col;
    double best = std::fabs(a[static_cast<std::size_t>(col * w + col)]);
    for (int row = col + 1; row < dim; ++row) {
      const double mag = std::fabs(a[static_cast<std::size_t>(row * w + col)]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col)
      for (int k = 0; k < w; ++k)
        std::swap(a[static_cast<std::size_t>(pivot * w + k)], a[static_cast<std::size_t>(col * w + k)]);
    for (int row = col + 1; row < dim; ++row) {
      const double f = a[static_cast<std::size_t>(row * w + col)] / a[static_cast<std::size_t>(col * w + col)];
      for (int k = col; k < w; ++k)
        a[static_cast<std::size_t>(row * w + k)] -= f * a[static_cast<std::size_t>(col * w + k)];
    }
  }
  center = Vec(dim);
  for (int row = dim - 1; row >= 0; --row) {
    double s = a[static_cast<std::size_t>(row * w + dim)];
    for (int k = row + 1; k < dim; ++k) s -= a[static_cast<std::size_t>(row * w + k)] * center[k];
    center[row] = s / a[static_cast<std::size_t>(row * w + row)];
  }
  double r2 = 0.0;
  for (int c = 0; c < dim; ++c) {
    const double diff = center[c] - p0[c];
    r2 += diff * diff;
  }
  radius2 = r2;
  return center.finite() && std::isfinite(radius2);
}

}  // namespace gdvr::geom
