// Incremental Delaunay triangulation in arbitrary dimension (2 <= d <= 8).
//
// This is the geometric engine under both MDT (multi-hop Delaunay
// triangulation) and VPoD: every node repeatedly computes the Delaunay
// neighbors of its own (virtual) position within a small candidate set, and
// the centralized baselines / test oracles triangulate whole networks.
//
// Algorithm: Bowyer-Watson insertion with a single symbolic infinite vertex
// (the CGAL convention). A cell is either finite (d+1 real vertices) or
// infinite (a convex-hull facet joined to the infinite vertex). Conflict
// tests on finite cells use the lifted in-sphere predicate; on infinite
// cells they reduce to a hull-visibility orientation test, so no gigantic
// super-simplex coordinates are ever involved.
//
// Robustness: inputs are deterministically jittered (paper Section II-B also
// jitters positions to avoid degeneracy). If an insertion still produces an
// inconsistent conflict region, the build retries with a larger jitter and
// finally falls back to reporting the complete graph, which is a safe
// over-approximation of DT neighbors for the MDT protocols.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/vec.hpp"

namespace gdvr::geom {

struct DelaunayOptions {
  // Jitter magnitude relative to the point set's bounding-box diagonal.
  double jitter_rel = 1e-9;
  // Seed for the deterministic per-index jitter.
  std::uint64_t jitter_seed = 0x5eedULL;
  // Maximum rebuild attempts (jitter grows 1000x per attempt).
  int max_attempts = 3;
  // Testing hook: collect each insertion's conflict region by exhaustive
  // linear scan (the original kernel) instead of the hint-seeded walk + BFS
  // flood. Equivalence tests pin the two against each other.
  bool force_linear_scan = false;
};

// The Delaunay *graph* of a point set: per-point sorted neighbor lists plus
// the edge list (u < v). This is all the routing protocols consume.
struct DelaunayGraph {
  int dim = 0;
  // True when the input was degenerate (affine rank < dim) or triangulation
  // failed after retries; in that case the complete graph is returned.
  bool complete_graph_fallback = false;
  std::vector<std::vector<int>> nbrs;
  std::vector<std::pair<int, int>> edges;

  bool has_edge(int u, int v) const;
};

DelaunayGraph delaunay_graph(std::span<const Vec> points, const DelaunayOptions& opts = {});

// Exposed for tests and benchmarks: the full cell complex.
class Triangulation {
 public:
  static constexpr int kInfinite = -1;
  static constexpr int kMaxVerts = 13;  // dim + 1 for dim <= 12

  struct Cell {
    // Vertex indices (kInfinite possible) and the neighbor cell across the
    // facet opposite each vertex; entries 0..dim are valid.
    std::array<int, kMaxVerts> v;
    std::array<int, kMaxVerts> nbr;
    // Cached circumsphere (finite cells only): conflict tests reduce to one
    // squared-distance comparison instead of a determinant evaluation.
    Vec center;
    double radius2 = 0.0;
    bool alive = true;
  };

  // Builds the triangulation of jittered copies of `points`. Returns false if
  // the input is degenerate or an insertion failed (caller should retry or
  // fall back).
  bool build(std::span<const Vec> points);

  // Conflict-region seed strategy. kWalk (default) runs a hint-seeded
  // visibility walk from the last created cell; kLinearScan is the original
  // exhaustive scan, kept as the walk's fallback and as the reference kernel
  // for equivalence tests.
  enum class LocateMode { kWalk, kLinearScan };
  void set_locate_mode(LocateMode mode) { locate_mode_ = mode; }

  // Exposed for tests and benchmarks: one cell (alive) whose circumsphere /
  // hull-visibility region contains q -- the seed of the Bowyer-Watson
  // cavity. Returns -1 if no cell is in conflict.
  int locate_conflict(const Vec& q);
  // How many walks gave up and fell back to the linear scan (diagnostics).
  std::uint64_t walk_fallbacks() const { return walk_fallbacks_; }

  int dim() const { return dim_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Vec>& jittered_points() const { return pts_; }

  // Collect the finite-finite edge set (u < v, deduplicated).
  std::vector<std::pair<int, int>> finite_edges() const;

  // --- incremental maintenance (requires a successfully built complex) -----
  // The incremental API mutates a live complex in O(affected cells). Every
  // operation either succeeds and leaves a valid Delaunay complex, or fails
  // and leaves the complex POISONED: the caller must rebuild from scratch
  // (DynamicDelaunay does exactly that and counts the fallback).

  // Inserts `p` as a new vertex. The caller supplies already-jittered
  // coordinates -- no jitter is added here. Returns the new vertex index
  // (tombstoned slots are reused) or -1 on failure.
  int insert_point(const Vec& p);

  // Removes vertex v by re-triangulating the cavity left by its star: the
  // filling cells are the cells of the Delaunay triangulation of v's link
  // that are in conflict with v's position (the Bowyer-Watson duality --
  // deleting v undoes inserting it). Returns false on failure (degenerate
  // link, inconsistent cavity).
  bool remove_point(int v);

  // Moves vertex v to `p` (already jittered). Fast path: when the kinetic
  // Delaunay certificate set holds at the new position -- every finite star
  // cell keeps its orientation sign, every star-cell facet keeps its local
  // Delaunay property, and the hull stays locally convex at every ridge of
  // every hull facet incident to v -- only positions and cached
  // circumspheres change, no topology update at all. Otherwise the move
  // degrades to remove_point + reinsertion at the same vertex slot, unless
  // `allow_reinsert` is false: then kDeclined is returned with the complex
  // untouched (still holding v's old position), so a caller applying a
  // batch of moves can coalesce every declined move into one rebuild
  // instead of paying a cavity dig + link-DT build per point.
  enum class MoveResult { kEarlyOut, kReinserted, kDeclined, kFailed };
  MoveResult move_point(int v, const Vec& p, bool allow_reinsert = true);

  // Sorted finite Delaunay neighbors of vertex v, via a BFS over v's star.
  // Returns false if v's star cannot be collected (inconsistent complex).
  bool vertex_neighbors(int v, std::vector<int>& out);

  bool point_alive(int v) const {
    return v >= 0 && v < static_cast<int>(pt_alive_.size()) &&
           pt_alive_[static_cast<std::size_t>(v)] != 0;
  }
  int live_points() const { return live_points_; }

  // Validation helper for tests: true iff no jittered input point lies
  // strictly inside the circumsphere of any alive finite cell (tolerance is
  // absolute on the predicate value).
  bool empty_circumsphere_property(double tol = 1e-9) const;

  void set_jitter(double rel, std::uint64_t seed) {
    jitter_rel_ = rel;
    jitter_seed_ = seed;
  }

 private:
  // Open-addressing hash table matching facets/ridges by their sorted vertex
  // tuple. Entries pair up and vanish; a consistent cavity leaves the table
  // empty. Storage is reused across inserts (epoch-stamped slots, no per-use
  // clearing).
  class FacetTable {
   public:
    void reset(int dim, std::size_t expected_entries);
    // If `key` is already present, removes it, fills *other_cell /
    // *other_facet with the stored pair and returns true; otherwise inserts
    // (cell, facet) under `key` and returns false.
    bool match_or_insert(const std::array<int, 12>& key, int cell, int facet, int* other_cell,
                         int* other_facet);
    bool empty() const { return live_ == 0; }

   private:
    struct Slot {
      std::array<int, 12> key;
      int cell = -1;
      int facet = -1;
      std::uint64_t stamp = 0;  // epoch the slot was written in
      bool tombstone = false;
    };
    std::vector<Slot> slots_;
    std::uint64_t epoch_ = 0;
    std::size_t mask_ = 0;
    std::size_t live_ = 0;
    int dim_ = 0;
  };

  bool init_first_simplex(std::vector<int>& chosen);
  bool insert(int p);
  // Star of v (every alive cell with v as a vertex) via BFS across the
  // facets containing v, seeded from the v_cell_ hint; fills star_. False if
  // no alive cell contains v or the adjacency is inconsistent.
  bool collect_star(int v);
  bool in_conflict(const Cell& c, const Vec& p) const;
  bool cache_circumsphere(Cell& c);
  int infinite_index(const Cell& c) const;
  // Visibility walk from the hint cell; -1 directs the caller to fall back.
  int locate_walk(const Vec& q);
  int locate_linear(const Vec& q) const;
  // Orientation sign of the simplex formed by cell c's vertices with the one
  // at index `replace` (if >= 0) substituted by q. Stack buffers only.
  double cell_orient(const Cell& c, int replace, const Vec& q) const;
  // Same with two substituted vertices -- the hull-convexity certificates in
  // move_point need the moved vertex AND the infinite slot replaced at once.
  double cell_orient2(const Cell& c, int ra, const Vec& qa, int rb, const Vec& qb) const;
  // Takes a slot off the free list (or grows cells_); returns its id.
  int alloc_cell();

  int dim_ = 0;
  double jitter_rel_ = 1e-9;
  std::uint64_t jitter_seed_ = 0x5eedULL;
  LocateMode locate_mode_ = LocateMode::kWalk;
  std::vector<Vec> pts_;
  std::vector<Cell> cells_;
  // Liveness mask + free slots for vertices, so remove/insert cycles reuse
  // point storage instead of growing pts_ monotonically.
  std::vector<char> pt_alive_;
  std::vector<int> point_free_;
  int live_points_ = 0;
  // Per-vertex incident-cell hint: one alive cell containing the vertex,
  // refreshed whenever cells are created. collect_star() verifies it and
  // falls back to a linear scan when stale.
  std::vector<int> v_cell_;
  // Tombstoned cell slots available for reuse, so cells_ stays proportional
  // to the live complex instead of growing monotonically with inserts.
  std::vector<int> free_cells_;
  int hint_ = -1;  // last created cell: the walk's starting point
  std::uint64_t walk_fallbacks_ = 0;
  // Scratch reused across inserts (conflict marks, BFS queue, created list,
  // predicate vertex buffer -- Vec default-construction zeroes kMaxDim
  // coordinates, so a fresh array per in_conflict call costs more than the
  // conflict test itself).
  mutable std::array<Vec, kMaxVerts> vert_scratch_;
  std::vector<std::uint64_t> mark_;
  std::uint64_t mark_epoch_ = 0;
  std::vector<int> conflict_;
  std::vector<int> created_;
  FacetTable facets_;
  // Scratch for the incremental operations (star cells, link vertex ids and
  // coordinates, selected filling cells, tentative circumspheres of a moved
  // star) plus the scratch triangulation of a removed vertex's link.
  std::vector<int> star_;
  std::vector<int> link_;
  std::vector<Vec> link_pts_;
  std::vector<int> sel_;
  std::vector<Vec> star_centers_;
  std::vector<double> star_r2_;
  std::unique_ptr<Triangulation> cavity_tri_;
};

}  // namespace gdvr::geom
