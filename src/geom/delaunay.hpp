// Incremental Delaunay triangulation in arbitrary dimension (2 <= d <= 8).
//
// This is the geometric engine under both MDT (multi-hop Delaunay
// triangulation) and VPoD: every node repeatedly computes the Delaunay
// neighbors of its own (virtual) position within a small candidate set, and
// the centralized baselines / test oracles triangulate whole networks.
//
// Algorithm: Bowyer-Watson insertion with a single symbolic infinite vertex
// (the CGAL convention). A cell is either finite (d+1 real vertices) or
// infinite (a convex-hull facet joined to the infinite vertex). Conflict
// tests on finite cells use the lifted in-sphere predicate; on infinite
// cells they reduce to a hull-visibility orientation test, so no gigantic
// super-simplex coordinates are ever involved.
//
// Robustness: inputs are deterministically jittered (paper Section II-B also
// jitters positions to avoid degeneracy). If an insertion still produces an
// inconsistent conflict region, the build retries with a larger jitter and
// finally falls back to reporting the complete graph, which is a safe
// over-approximation of DT neighbors for the MDT protocols.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/vec.hpp"

namespace gdvr::geom {

struct DelaunayOptions {
  // Jitter magnitude relative to the point set's bounding-box diagonal.
  double jitter_rel = 1e-9;
  // Seed for the deterministic per-index jitter.
  std::uint64_t jitter_seed = 0x5eedULL;
  // Maximum rebuild attempts (jitter grows 1000x per attempt).
  int max_attempts = 3;
};

// The Delaunay *graph* of a point set: per-point sorted neighbor lists plus
// the edge list (u < v). This is all the routing protocols consume.
struct DelaunayGraph {
  int dim = 0;
  // True when the input was degenerate (affine rank < dim) or triangulation
  // failed after retries; in that case the complete graph is returned.
  bool complete_graph_fallback = false;
  std::vector<std::vector<int>> nbrs;
  std::vector<std::pair<int, int>> edges;

  bool has_edge(int u, int v) const;
};

DelaunayGraph delaunay_graph(std::span<const Vec> points, const DelaunayOptions& opts = {});

// Exposed for tests and benchmarks: the full cell complex.
class Triangulation {
 public:
  static constexpr int kInfinite = -1;
  static constexpr int kMaxVerts = 13;  // dim + 1 for dim <= 12

  struct Cell {
    // Vertex indices (kInfinite possible) and the neighbor cell across the
    // facet opposite each vertex; entries 0..dim are valid.
    std::array<int, kMaxVerts> v;
    std::array<int, kMaxVerts> nbr;
    // Cached circumsphere (finite cells only): conflict tests reduce to one
    // squared-distance comparison instead of a determinant evaluation.
    Vec center;
    double radius2 = 0.0;
    bool alive = true;
  };

  // Builds the triangulation of jittered copies of `points`. Returns false if
  // the input is degenerate or an insertion failed (caller should retry or
  // fall back).
  bool build(std::span<const Vec> points);

  int dim() const { return dim_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Vec>& jittered_points() const { return pts_; }

  // Collect the finite-finite edge set (u < v, deduplicated).
  std::vector<std::pair<int, int>> finite_edges() const;

  // Validation helper for tests: true iff no jittered input point lies
  // strictly inside the circumsphere of any alive finite cell (tolerance is
  // absolute on the predicate value).
  bool empty_circumsphere_property(double tol = 1e-9) const;

  void set_jitter(double rel, std::uint64_t seed) {
    jitter_rel_ = rel;
    jitter_seed_ = seed;
  }

 private:
  bool init_first_simplex(std::vector<int>& chosen);
  bool insert(int p);
  bool in_conflict(const Cell& c, const Vec& p) const;
  bool cache_circumsphere(Cell& c);
  int infinite_index(const Cell& c) const;

  int dim_ = 0;
  double jitter_rel_ = 1e-9;
  std::uint64_t jitter_seed_ = 0x5eedULL;
  std::vector<Vec> pts_;
  std::vector<Cell> cells_;
};

}  // namespace gdvr::geom
