#include "geom/delaunay.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"
#include "geom/predicates.hpp"

namespace gdvr::geom {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Deterministic jitter in [-1, 1) keyed by (seed, point index, coordinate).
double jitter_unit(std::uint64_t seed, std::size_t idx, int coord) {
  const std::uint64_t h = splitmix(seed ^ splitmix(idx * 131 + static_cast<std::uint64_t>(coord)));
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double bbox_diagonal(std::span<const Vec> points) {
  if (points.empty()) return 1.0;
  const int dim = points[0].dim();
  Vec lo = points[0], hi = points[0];
  for (const Vec& p : points)
    for (int c = 0; c < dim; ++c) {
      lo[c] = std::min(lo[c], p[c]);
      hi[c] = std::max(hi[c], p[c]);
    }
  const double diag = lo.distance(hi);
  return diag > 0.0 ? diag : 1.0;
}

// Sorted facet key: the dim vertex ids of a facet (dim <= 12).
using FacetKey = std::array<int, 12>;

FacetKey facet_key(const Triangulation::Cell& c, int skip, int dim) {
  FacetKey key;
  key.fill(INT32_MAX);
  int w = 0;
  for (int i = 0; i <= dim; ++i)
    if (i != skip) key[static_cast<std::size_t>(w++)] = c.v[static_cast<std::size_t>(i)];
  std::sort(key.begin(), key.begin() + dim);
  return key;
}

}  // namespace

bool DelaunayGraph::has_edge(int u, int v) const {
  const auto& n = nbrs[static_cast<std::size_t>(u)];
  return std::binary_search(n.begin(), n.end(), v);
}

int Triangulation::infinite_index(const Cell& c) const {
  for (int i = 0; i <= dim_; ++i)
    if (c.v[static_cast<std::size_t>(i)] == kInfinite) return i;
  return -1;
}

bool Triangulation::init_first_simplex(std::vector<int>& chosen) {
  const int n = static_cast<int>(pts_.size());
  const double diag = bbox_diagonal(pts_);
  const double tol = 1e-12 * diag;
  chosen.clear();
  chosen.push_back(0);
  // Greedy affine-rank growth with Gram-Schmidt on difference vectors.
  std::vector<Vec> basis;
  for (int i = 1; i < n && static_cast<int>(chosen.size()) < dim_ + 1; ++i) {
    Vec r = pts_[static_cast<std::size_t>(i)] - pts_[static_cast<std::size_t>(chosen[0])];
    for (const Vec& b : basis) r -= b * r.dot(b);
    if (r.norm() > tol) {
      basis.push_back(r.unit());
      chosen.push_back(i);
    }
  }
  return static_cast<int>(chosen.size()) == dim_ + 1;
}

bool Triangulation::in_conflict(const Cell& c, const Vec& p) const {
  const int inf = infinite_index(c);
  std::array<Vec, kMaxVerts> verts;
  if (inf < 0) {
    // Cached circumsphere: one squared-distance comparison.
    double d2 = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double diff = p[i] - c.center[i];
      d2 += diff * diff;
    }
    return d2 < c.radius2;
  }
  // Infinite cell: conflict iff p lies strictly on the outer side of the
  // hull facet F, or on F's hyperplane but inside the circumsphere of the
  // adjacent finite cell.
  int w = 0;
  for (int i = 0; i <= dim_; ++i)
    if (i != inf)
      verts[static_cast<std::size_t>(w++)] =
          pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])];
  const Cell& fin = cells_[static_cast<std::size_t>(c.nbr[static_cast<std::size_t>(inf)])];
  if (infinite_index(fin) >= 0) return false;  // degenerate flat hull; retry path handles it
  // Find the vertex of `fin` that is not on the facet.
  int apex = -1;
  for (int i = 0; i <= dim_; ++i) {
    const int fv = fin.v[static_cast<std::size_t>(i)];
    bool on_facet = false;
    for (int j = 0; j <= dim_; ++j)
      if (j != inf && c.v[static_cast<std::size_t>(j)] == fv) on_facet = true;
    if (!on_facet) {
      apex = fv;
      break;
    }
  }
  if (apex < 0) return false;
  verts[static_cast<std::size_t>(dim_)] = p;
  const double op = orient({verts.data(), static_cast<std::size_t>(dim_ + 1)});
  verts[static_cast<std::size_t>(dim_)] = pts_[static_cast<std::size_t>(apex)];
  const double ow = orient({verts.data(), static_cast<std::size_t>(dim_ + 1)});
  if (ow == 0.0) return false;
  if (op == 0.0) return p.distance2(fin.center) < fin.radius2;
  return (op > 0.0) != (ow > 0.0);
}

bool Triangulation::cache_circumsphere(Cell& c) {
  if (infinite_index(c) >= 0) return true;  // infinite cells need no sphere
  std::array<Vec, kMaxVerts> verts;
  for (int i = 0; i <= dim_; ++i)
    verts[static_cast<std::size_t>(i)] =
        pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])];
  return circumsphere({verts.data(), static_cast<std::size_t>(dim_ + 1)}, c.center, c.radius2);
}

bool Triangulation::build(std::span<const Vec> points) {
  GDVR_ASSERT(!points.empty());
  dim_ = points[0].dim();
  GDVR_ASSERT(dim_ >= 2 && dim_ <= 12);
  const int n = static_cast<int>(points.size());
  if (n < dim_ + 1) return false;

  // Jittered working copies.
  pts_.assign(points.begin(), points.end());
  const double diag = bbox_diagonal(points);
  const double mag = jitter_rel_ * diag;
  for (std::size_t i = 0; i < pts_.size(); ++i)
    for (int c = 0; c < dim_; ++c) pts_[i][c] += mag * jitter_unit(jitter_seed_, i, c);

  cells_.clear();
  std::vector<int> chosen;
  if (!init_first_simplex(chosen)) return false;

  // Initial complex: one finite cell plus one infinite cell per facet.
  {
    Cell fin;
    fin.nbr.fill(-1);
    for (int i = 0; i <= dim_; ++i) fin.v[static_cast<std::size_t>(i)] = chosen[static_cast<std::size_t>(i)];
    if (!cache_circumsphere(fin)) return false;
    cells_.push_back(fin);
    for (int k = 0; k <= dim_; ++k) {
      Cell inf;
      inf.nbr.fill(-1);
      int w = 0;
      for (int i = 0; i <= dim_; ++i)
        if (i != k) inf.v[static_cast<std::size_t>(w++)] = chosen[static_cast<std::size_t>(i)];
      inf.v[static_cast<std::size_t>(dim_)] = kInfinite;
      cells_.push_back(inf);
    }
    // Wire adjacency by matching facets (sorted vertex tuples).
    std::map<FacetKey, std::pair<int, int>> open_facets;
    for (int ci = 0; ci < static_cast<int>(cells_.size()); ++ci) {
      Cell& c = cells_[static_cast<std::size_t>(ci)];
      for (int k = 0; k <= dim_; ++k) {
        const FacetKey key = facet_key(c, k, dim_);
        auto it = open_facets.find(key);
        if (it == open_facets.end()) {
          open_facets.emplace(key, std::make_pair(ci, k));
        } else {
          const auto [cj, kj] = it->second;
          c.nbr[static_cast<std::size_t>(k)] = cj;
          cells_[static_cast<std::size_t>(cj)].nbr[static_cast<std::size_t>(kj)] = ci;
          open_facets.erase(it);
        }
      }
    }
    if (!open_facets.empty()) return false;
  }

  // Insert the remaining points.
  std::vector<char> is_chosen(static_cast<std::size_t>(n), 0);
  for (int c : chosen) is_chosen[static_cast<std::size_t>(c)] = 1;
  for (int p = 0; p < n; ++p) {
    if (is_chosen[static_cast<std::size_t>(p)]) continue;
    if (!insert(p)) return false;
  }
  return true;
}

bool Triangulation::insert(int p) {
  const Vec& q = pts_[static_cast<std::size_t>(p)];

  // Conflict region: linear scan over alive cells. Candidate sets in the MDT
  // protocols are tens of points, and centralized builds are offline, so the
  // simplicity/robustness of a full scan beats a walk here.
  std::vector<char> conflict(cells_.size(), 0);
  bool any = false;
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    if (!cells_[ci].alive) continue;
    if (in_conflict(cells_[ci], q)) {
      conflict[ci] = 1;
      any = true;
    }
  }
  if (!any) return false;

  // Build one new cell per boundary facet of the conflict region.
  std::vector<int> created;
  std::map<FacetKey, std::pair<int, int>> open_ridges;
  const std::size_t existing = cells_.size();
  for (std::size_t ci = 0; ci < existing; ++ci) {
    if (!conflict[ci]) continue;
    for (int k = 0; k <= dim_; ++k) {
      const int nb = cells_[ci].nbr[static_cast<std::size_t>(k)];
      if (nb < 0 || conflict[static_cast<std::size_t>(nb)]) continue;
      // Boundary facet: vertices of the dying cell except v[k]; the facet
      // survives and gets joined to p. p sits at index dim_, opposite it.
      Cell fresh;
      fresh.nbr.fill(-1);
      int w = 0;
      for (int i = 0; i <= dim_; ++i)
        if (i != k) fresh.v[static_cast<std::size_t>(w++)] = cells_[ci].v[static_cast<std::size_t>(i)];
      fresh.v[static_cast<std::size_t>(dim_)] = p;
      fresh.nbr[static_cast<std::size_t>(dim_)] = nb;
      const int fresh_id = static_cast<int>(cells_.size());
      // Redirect the outside neighbor's pointer from the dying cell to us.
      Cell& out = cells_[static_cast<std::size_t>(nb)];
      bool redirected = false;
      for (int j = 0; j <= dim_; ++j)
        if (out.nbr[static_cast<std::size_t>(j)] == static_cast<int>(ci)) {
          out.nbr[static_cast<std::size_t>(j)] = fresh_id;
          redirected = true;
          break;
        }
      if (!redirected) return false;
      if (!cache_circumsphere(fresh)) return false;  // degenerate: retry with more jitter
      cells_.push_back(fresh);
      created.push_back(fresh_id);
    }
  }
  if (created.empty()) return false;

  // Wire new-cell-to-new-cell adjacency across ridges (facets containing p).
  for (int ci : created) {
    Cell& c = cells_[static_cast<std::size_t>(ci)];
    for (int k = 0; k < dim_; ++k) {  // facets opposite each non-p vertex
      const FacetKey key = facet_key(c, k, dim_);
      auto it = open_ridges.find(key);
      if (it == open_ridges.end()) {
        open_ridges.emplace(key, std::make_pair(ci, k));
      } else {
        const auto [cj, kj] = it->second;
        c.nbr[static_cast<std::size_t>(k)] = cj;
        cells_[static_cast<std::size_t>(cj)].nbr[static_cast<std::size_t>(kj)] = ci;
        open_ridges.erase(it);
      }
    }
  }
  if (!open_ridges.empty()) return false;  // inconsistent region; caller retries

  for (std::size_t ci = 0; ci < conflict.size(); ++ci)
    if (conflict[ci]) cells_[ci].alive = false;
  return true;
}

std::vector<std::pair<int, int>> Triangulation::finite_edges() const {
  std::vector<std::pair<int, int>> edges;
  for (const Cell& c : cells_) {
    if (!c.alive || infinite_index(c) >= 0) continue;
    for (int i = 0; i <= dim_; ++i)
      for (int j = i + 1; j <= dim_; ++j)
        edges.emplace_back(std::min(c.v[static_cast<std::size_t>(i)], c.v[static_cast<std::size_t>(j)]),
                           std::max(c.v[static_cast<std::size_t>(i)], c.v[static_cast<std::size_t>(j)]));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

bool Triangulation::empty_circumsphere_property(double tol) const {
  std::array<Vec, kMaxVerts> verts;
  for (const Cell& c : cells_) {
    if (!c.alive || infinite_index(c) >= 0) continue;
    for (int i = 0; i <= dim_; ++i)
      verts[static_cast<std::size_t>(i)] =
          pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])];
    for (std::size_t pi = 0; pi < pts_.size(); ++pi) {
      bool is_vertex = false;
      for (int i = 0; i <= dim_; ++i)
        if (c.v[static_cast<std::size_t>(i)] == static_cast<int>(pi)) is_vertex = true;
      if (is_vertex) continue;
      if (in_sphere({verts.data(), static_cast<std::size_t>(dim_ + 1)}, pts_[pi]) > tol)
        return false;
    }
  }
  return true;
}

DelaunayGraph delaunay_graph(std::span<const Vec> points, const DelaunayOptions& opts) {
  DelaunayGraph g;
  const int n = static_cast<int>(points.size());
  g.dim = points.empty() ? 0 : points[0].dim();
  g.nbrs.assign(static_cast<std::size_t>(n), {});
  if (n <= 1) return g;

  auto complete = [&] {
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) g.edges.emplace_back(u, v);
  };

  // With at most dim+1 points in general position, every pair is a Delaunay
  // neighbor; return the complete graph directly.
  if (n <= g.dim + 1) {
    complete();
  } else {
    bool built = false;
    double rel = opts.jitter_rel;
    for (int attempt = 0; attempt < opts.max_attempts && !built; ++attempt, rel *= 1e3) {
      Triangulation t;
      t.set_jitter(rel, opts.jitter_seed + static_cast<std::uint64_t>(attempt) * 0x1234567ull);
      if (t.build(points)) {
        g.edges = t.finite_edges();
        built = true;
      }
    }
    if (!built) {
      GDVR_LOG_WARN("delaunay_graph: triangulation failed after retries (n=%d dim=%d); "
                    "falling back to complete graph",
                    n, g.dim);
      g.complete_graph_fallback = true;
      complete();
    }
  }

  for (const auto& [u, v] : g.edges) {
    g.nbrs[static_cast<std::size_t>(u)].push_back(v);
    g.nbrs[static_cast<std::size_t>(v)].push_back(u);
  }
  for (auto& lst : g.nbrs) std::sort(lst.begin(), lst.end());
  return g;
}

}  // namespace gdvr::geom
