#include "geom/delaunay.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "geom/predicates.hpp"
#include "obs/profile.hpp"

namespace gdvr::geom {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Deterministic jitter in [-1, 1) keyed by (seed, point index, coordinate).
double jitter_unit(std::uint64_t seed, std::size_t idx, int coord) {
  const std::uint64_t h = splitmix(seed ^ splitmix(idx * 131 + static_cast<std::uint64_t>(coord)));
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double bbox_diagonal(std::span<const Vec> points) {
  if (points.empty()) return 1.0;
  const int dim = points[0].dim();
  Vec lo = points[0], hi = points[0];
  for (const Vec& p : points)
    for (int c = 0; c < dim; ++c) {
      lo[c] = std::min(lo[c], p[c]);
      hi[c] = std::max(hi[c], p[c]);
    }
  const double diag = lo.distance(hi);
  return diag > 0.0 ? diag : 1.0;
}

// Sorted facet key: the dim vertex ids of a facet (dim <= 12).
using FacetKey = std::array<int, 12>;

FacetKey facet_key(const Triangulation::Cell& c, int skip, int dim) {
  FacetKey key;
  int w = 0;
  // Insertion sort while filling: facets have at most 12 vertices, where this
  // beats std::sort and the full-array fill it would require.
  for (int i = 0; i <= dim; ++i) {
    if (i == skip) continue;
    const int x = c.v[static_cast<std::size_t>(i)];
    int j = w++;
    while (j > 0 && key[static_cast<std::size_t>(j - 1)] > x) {
      key[static_cast<std::size_t>(j)] = key[static_cast<std::size_t>(j - 1)];
      --j;
    }
    key[static_cast<std::size_t>(j)] = x;
  }
  return key;
}

std::uint64_t facet_hash(const FacetKey& key, int dim) {
  std::uint64_t h = 0x243F6A8885A308D3ull;
  for (int i = 0; i < dim; ++i)
    h = splitmix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(key[static_cast<std::size_t>(i)])));
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// FacetTable

void Triangulation::FacetTable::reset(int dim, std::size_t expected_entries) {
  dim_ = dim;
  std::size_t want = 16;
  while (want < expected_entries * 2 + 2) want <<= 1;
  if (slots_.size() < want) {
    slots_.assign(want, Slot{});
    epoch_ = 0;
  }
  mask_ = slots_.size() - 1;
  ++epoch_;
  live_ = 0;
}

bool Triangulation::FacetTable::match_or_insert(const FacetKey& key, int cell, int facet,
                                                int* other_cell, int* other_facet) {
  std::size_t i = facet_hash(key, dim_) & mask_;
  std::size_t insert_at = slots_.size();  // first reusable slot seen while probing
  for (;; i = (i + 1) & mask_) {
    Slot& s = slots_[i];
    if (s.stamp != epoch_) {
      // Empty for this use: key is absent.
      if (insert_at == slots_.size()) insert_at = i;
      break;
    }
    if (s.tombstone) {
      if (insert_at == slots_.size()) insert_at = i;
      continue;
    }
    if (std::equal(s.key.begin(), s.key.begin() + dim_, key.begin())) {
      *other_cell = s.cell;
      *other_facet = s.facet;
      s.tombstone = true;
      --live_;
      return true;
    }
  }
  Slot& s = slots_[insert_at];
  s.key = key;
  s.cell = cell;
  s.facet = facet;
  s.stamp = epoch_;
  s.tombstone = false;
  ++live_;
  return false;
}

// ---------------------------------------------------------------------------
// Triangulation

bool DelaunayGraph::has_edge(int u, int v) const {
  const auto& n = nbrs[static_cast<std::size_t>(u)];
  return std::binary_search(n.begin(), n.end(), v);
}

int Triangulation::infinite_index(const Cell& c) const {
  for (int i = 0; i <= dim_; ++i)
    if (c.v[static_cast<std::size_t>(i)] == kInfinite) return i;
  return -1;
}

bool Triangulation::init_first_simplex(std::vector<int>& chosen) {
  const int n = static_cast<int>(pts_.size());
  const double diag = bbox_diagonal(pts_);
  const double tol = 1e-12 * diag;
  chosen.clear();
  chosen.push_back(0);
  // Greedy affine-rank growth with Gram-Schmidt on difference vectors.
  std::vector<Vec> basis;
  for (int i = 1; i < n && static_cast<int>(chosen.size()) < dim_ + 1; ++i) {
    Vec r = pts_[static_cast<std::size_t>(i)] - pts_[static_cast<std::size_t>(chosen[0])];
    for (const Vec& b : basis) r -= b * r.dot(b);
    if (r.norm() > tol) {
      basis.push_back(r.unit());
      chosen.push_back(i);
    }
  }
  return static_cast<int>(chosen.size()) == dim_ + 1;
}

bool Triangulation::in_conflict(const Cell& c, const Vec& p) const {
  const int inf = infinite_index(c);
  if (inf < 0) {
    // Cached circumsphere: one squared-distance comparison. Raw pointers:
    // operator[] bounds-checks stay active in release builds by design, and
    // this loop runs for every flood/walk step.
    const double* pc = p.coords().data();
    const double* cc = c.center.coords().data();
    double d2 = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double diff = pc[i] - cc[i];
      d2 += diff * diff;
    }
    return d2 < c.radius2;
  }
  // Infinite cell: conflict iff p lies strictly on the outer side of the
  // hull facet F, or on F's hyperplane but inside the circumsphere of the
  // adjacent finite cell.
  std::array<Vec, kMaxVerts>& verts = vert_scratch_;
  int w = 0;
  for (int i = 0; i <= dim_; ++i)
    if (i != inf)
      verts[static_cast<std::size_t>(w++)] =
          pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])];
  const Cell& fin = cells_[static_cast<std::size_t>(c.nbr[static_cast<std::size_t>(inf)])];
  if (infinite_index(fin) >= 0) return false;  // degenerate flat hull; retry path handles it
  // Find the vertex of `fin` that is not on the facet.
  int apex = -1;
  for (int i = 0; i <= dim_; ++i) {
    const int fv = fin.v[static_cast<std::size_t>(i)];
    bool on_facet = false;
    for (int j = 0; j <= dim_; ++j)
      if (j != inf && c.v[static_cast<std::size_t>(j)] == fv) on_facet = true;
    if (!on_facet) {
      apex = fv;
      break;
    }
  }
  if (apex < 0) return false;
  verts[static_cast<std::size_t>(dim_)] = p;
  const double op = orient({verts.data(), static_cast<std::size_t>(dim_ + 1)});
  verts[static_cast<std::size_t>(dim_)] = pts_[static_cast<std::size_t>(apex)];
  const double ow = orient({verts.data(), static_cast<std::size_t>(dim_ + 1)});
  if (ow == 0.0) return false;
  if (op == 0.0) return p.distance2(fin.center) < fin.radius2;
  return (op > 0.0) != (ow > 0.0);
}

bool Triangulation::cache_circumsphere(Cell& c) {
  if (infinite_index(c) >= 0) return true;  // infinite cells need no sphere
  const double* rows[kMaxVerts];
  for (int i = 0; i <= dim_; ++i)
    rows[static_cast<std::size_t>(i)] =
        pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])].coords().data();
  return circumsphere_rows(rows, dim_, c.center, c.radius2);
}

double Triangulation::cell_orient(const Cell& c, int replace, const Vec& q) const {
  // Rows of the orientation matrix: (w_i - w_0) for i = 1..dim, where w_k is
  // either the cell's k-th vertex or q. Flat stack buffer, no temporaries.
  const double* w[kMaxVerts];
  for (int i = 0; i <= dim_; ++i) {
    if (i == replace)
      w[static_cast<std::size_t>(i)] = q.coords().data();
    else
      w[static_cast<std::size_t>(i)] =
          pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])].coords().data();
  }
  double buf[12 * 12];
  for (int r = 0; r < dim_; ++r)
    for (int col = 0; col < dim_; ++col)
      buf[r * dim_ + col] = w[static_cast<std::size_t>(r + 1)][col] - w[0][col];
  return det_inplace(buf, dim_);
}

double Triangulation::cell_orient2(const Cell& c, int ra, const Vec& qa, int rb,
                                   const Vec& qb) const {
  const double* w[kMaxVerts];
  for (int i = 0; i <= dim_; ++i) {
    if (i == ra)
      w[static_cast<std::size_t>(i)] = qa.coords().data();
    else if (i == rb)
      w[static_cast<std::size_t>(i)] = qb.coords().data();
    else
      w[static_cast<std::size_t>(i)] =
          pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])].coords().data();
  }
  double buf[12 * 12];
  for (int r = 0; r < dim_; ++r)
    for (int col = 0; col < dim_; ++col)
      buf[r * dim_ + col] = w[static_cast<std::size_t>(r + 1)][col] - w[0][col];
  return det_inplace(buf, dim_);
}

int Triangulation::locate_linear(const Vec& q) const {
  for (std::size_t ci = 0; ci < cells_.size(); ++ci)
    if (cells_[ci].alive && in_conflict(cells_[ci], q)) return static_cast<int>(ci);
  return -1;
}

int Triangulation::locate_walk(const Vec& q) {
  int cur = hint_;
  if (cur < 0 || !cells_[static_cast<std::size_t>(cur)].alive) {
    for (std::size_t ci = 0; ci < cells_.size(); ++ci)
      if (cells_[ci].alive) {
        cur = static_cast<int>(ci);
        break;
      }
  }
  if (cur < 0) return -1;

  // Remembering visibility walk: step across any facet whose hyperplane
  // strictly separates q from the cell, never stepping straight back. On a
  // Delaunay triangulation the visibility walk cannot cycle; the step cap
  // and every degenerate branch fall back to the exhaustive scan, which is
  // always correct.
  int prev = -1;
  const int max_steps = static_cast<int>(cells_.size()) + 16;
  for (int step = 0; step < max_steps; ++step) {
    const Cell& c = cells_[static_cast<std::size_t>(cur)];
    if (in_conflict(c, q)) return cur;
    const int inf = infinite_index(c);
    if (inf >= 0) {
      // Non-conflicting infinite cell: q is on the inner side of this hull
      // facet; re-enter the triangulation through the adjacent finite cell.
      const int nb = c.nbr[static_cast<std::size_t>(inf)];
      if (nb < 0 || nb == prev) break;
      prev = cur;
      cur = nb;
      continue;
    }
    const double oc = cell_orient(c, -1, q);
    if (oc == 0.0) break;  // degenerate sliver: let the scan decide
    int next = -1;
    for (int i = 0; i <= dim_; ++i) {
      // Rotate the facet scan origin with the step count so a numerically
      // ambiguous pair of facets cannot trap the walk in a 2-cycle.
      const int k = (i + step) % (dim_ + 1);
      const int nb = c.nbr[static_cast<std::size_t>(k)];
      if (nb < 0 || nb == prev) continue;
      const double oq = cell_orient(c, k, q);
      if ((oq > 0.0) != (oc > 0.0) && oq != 0.0) {
        next = nb;
        break;
      }
    }
    if (next < 0) break;  // inside the cell yet outside its sphere: impossible unless degenerate
    prev = cur;
    cur = next;
  }
  ++walk_fallbacks_;
  return -1;
}

int Triangulation::locate_conflict(const Vec& q) {
  if (locate_mode_ == LocateMode::kWalk) {
    const int seed = locate_walk(q);
    if (seed >= 0) return seed;
  }
  return locate_linear(q);
}

int Triangulation::alloc_cell() {
  if (!free_cells_.empty()) {
    const int id = free_cells_.back();
    free_cells_.pop_back();
    return id;
  }
  cells_.emplace_back();
  return static_cast<int>(cells_.size()) - 1;
}

bool Triangulation::build(std::span<const Vec> points) {
  GDVR_PROFILE_SCOPE("geom.delaunay_build");
  GDVR_ASSERT(!points.empty());
  dim_ = points[0].dim();
  GDVR_ASSERT(dim_ >= 2 && dim_ <= 12);
  const int n = static_cast<int>(points.size());
  if (n < dim_ + 1) return false;

  // Jittered working copies.
  pts_.assign(points.begin(), points.end());
  const double diag = bbox_diagonal(points);
  const double mag = jitter_rel_ * diag;
  for (std::size_t i = 0; i < pts_.size(); ++i)
    for (int c = 0; c < dim_; ++c) pts_[i][c] += mag * jitter_unit(jitter_seed_, i, c);

  cells_.clear();
  // Live complex size is roughly linear in n (about 7n tetrahedra in 3D);
  // reserving avoids reallocation copies of the fat Cell structs mid-build.
  cells_.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(4 * dim_) + 64);
  free_cells_.clear();
  pt_alive_.assign(static_cast<std::size_t>(n), 1);
  point_free_.clear();
  live_points_ = n;
  v_cell_.assign(static_cast<std::size_t>(n), -1);
  mark_.clear();
  mark_epoch_ = 0;
  hint_ = -1;
  std::vector<int> chosen;
  if (!init_first_simplex(chosen)) return false;

  // Initial complex: one finite cell plus one infinite cell per facet.
  {
    Cell fin;
    fin.nbr.fill(-1);
    for (int i = 0; i <= dim_; ++i) fin.v[static_cast<std::size_t>(i)] = chosen[static_cast<std::size_t>(i)];
    if (!cache_circumsphere(fin)) return false;
    cells_.push_back(fin);
    for (int k = 0; k <= dim_; ++k) {
      Cell inf;
      inf.nbr.fill(-1);
      int w = 0;
      for (int i = 0; i <= dim_; ++i)
        if (i != k) inf.v[static_cast<std::size_t>(w++)] = chosen[static_cast<std::size_t>(i)];
      inf.v[static_cast<std::size_t>(dim_)] = kInfinite;
      cells_.push_back(inf);
    }
    // Wire adjacency by matching facets (sorted vertex tuples).
    facets_.reset(dim_, cells_.size() * static_cast<std::size_t>(dim_ + 1));
    for (int ci = 0; ci < static_cast<int>(cells_.size()); ++ci) {
      for (int k = 0; k <= dim_; ++k) {
        const FacetKey key = facet_key(cells_[static_cast<std::size_t>(ci)], k, dim_);
        int cj = -1, kj = -1;
        if (facets_.match_or_insert(key, ci, k, &cj, &kj)) {
          cells_[static_cast<std::size_t>(ci)].nbr[static_cast<std::size_t>(k)] = cj;
          cells_[static_cast<std::size_t>(cj)].nbr[static_cast<std::size_t>(kj)] = ci;
        }
      }
    }
    if (!facets_.empty()) return false;
    for (int ci = 0; ci < static_cast<int>(cells_.size()); ++ci)
      for (int i = 0; i <= dim_; ++i) {
        const int w = cells_[static_cast<std::size_t>(ci)].v[static_cast<std::size_t>(i)];
        if (w != kInfinite) v_cell_[static_cast<std::size_t>(w)] = ci;
      }
  }
  hint_ = 0;

  // Insert the remaining points.
  std::vector<char> is_chosen(static_cast<std::size_t>(n), 0);
  for (int c : chosen) is_chosen[static_cast<std::size_t>(c)] = 1;
  for (int p = 0; p < n; ++p) {
    if (is_chosen[static_cast<std::size_t>(p)]) continue;
    if (!insert(p)) return false;
  }
  return true;
}

bool Triangulation::insert(int p) {
  const Vec& q = pts_[static_cast<std::size_t>(p)];

  // Conflict region: one seed cell from the walk (or the exhaustive scan),
  // then a BFS flood over cell adjacency -- the conflict region of a point
  // is connected, so the flood collects all of it. Marks, queue and created
  // list are scratch reused across inserts.
  const int seed = locate_conflict(q);
  if (seed < 0) return false;
  if (mark_.size() < cells_.size()) mark_.resize(cells_.size(), 0);
  ++mark_epoch_;
  conflict_.clear();
  conflict_.push_back(seed);
  mark_[static_cast<std::size_t>(seed)] = mark_epoch_;
  for (std::size_t i = 0; i < conflict_.size(); ++i) {
    const Cell& c = cells_[static_cast<std::size_t>(conflict_[i])];
    for (int k = 0; k <= dim_; ++k) {
      const int nb = c.nbr[static_cast<std::size_t>(k)];
      if (nb < 0 || mark_[static_cast<std::size_t>(nb)] == mark_epoch_) continue;
      if (in_conflict(cells_[static_cast<std::size_t>(nb)], q)) {
        mark_[static_cast<std::size_t>(nb)] = mark_epoch_;
        conflict_.push_back(nb);
      }
    }
  }
  if (locate_mode_ == LocateMode::kLinearScan) {
    // Reference kernel: the scan marks every conflicting cell, flood or not.
    for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
      if (!cells_[ci].alive || mark_[ci] == mark_epoch_) continue;
      if (in_conflict(cells_[ci], q)) {
        mark_[ci] = mark_epoch_;
        conflict_.push_back(static_cast<int>(ci));
      }
    }
  }

  // Build one new cell per boundary facet of the conflict region. New cells
  // reuse tombstoned slots where possible; the dying cells' slots are only
  // recycled after this insert completes, so their vertex/neighbor arrays
  // stay readable throughout.
  created_.clear();
  for (std::size_t i = 0; i < conflict_.size(); ++i) {
    const int ci = conflict_[i];
    for (int k = 0; k <= dim_; ++k) {
      const int nb = cells_[static_cast<std::size_t>(ci)].nbr[static_cast<std::size_t>(k)];
      if (nb < 0 || mark_[static_cast<std::size_t>(nb)] == mark_epoch_) continue;
      // Boundary facet: vertices of the dying cell except v[k]; the facet
      // survives and gets joined to p. p sits at index dim_, opposite it.
      const int fresh_id = alloc_cell();
      Cell& fresh = cells_[static_cast<std::size_t>(fresh_id)];
      fresh.nbr.fill(-1);
      fresh.alive = true;
      int w = 0;
      const Cell& dying = cells_[static_cast<std::size_t>(ci)];
      for (int j = 0; j <= dim_; ++j)
        if (j != k) fresh.v[static_cast<std::size_t>(w++)] = dying.v[static_cast<std::size_t>(j)];
      fresh.v[static_cast<std::size_t>(dim_)] = p;
      fresh.nbr[static_cast<std::size_t>(dim_)] = nb;
      // Redirect the outside neighbor's pointer from the dying cell to us.
      Cell& out = cells_[static_cast<std::size_t>(nb)];
      bool redirected = false;
      for (int j = 0; j <= dim_; ++j)
        if (out.nbr[static_cast<std::size_t>(j)] == ci) {
          out.nbr[static_cast<std::size_t>(j)] = fresh_id;
          redirected = true;
          break;
        }
      if (!redirected) return false;
      if (!cache_circumsphere(fresh)) return false;  // degenerate: retry with more jitter
      created_.push_back(fresh_id);
    }
  }
  if (created_.empty()) return false;

  // Wire new-cell-to-new-cell adjacency across ridges (facets containing p).
  facets_.reset(dim_, created_.size() * static_cast<std::size_t>(dim_));
  for (int ci : created_) {
    for (int k = 0; k < dim_; ++k) {  // facets opposite each non-p vertex
      const FacetKey key = facet_key(cells_[static_cast<std::size_t>(ci)], k, dim_);
      int cj = -1, kj = -1;
      if (facets_.match_or_insert(key, ci, k, &cj, &kj)) {
        cells_[static_cast<std::size_t>(ci)].nbr[static_cast<std::size_t>(k)] = cj;
        cells_[static_cast<std::size_t>(cj)].nbr[static_cast<std::size_t>(kj)] = ci;
      }
    }
  }
  if (!facets_.empty()) return false;  // inconsistent region; caller retries

  for (int ci : conflict_) {
    cells_[static_cast<std::size_t>(ci)].alive = false;
    free_cells_.push_back(ci);
  }
  // Refresh incident-cell hints: every vertex of a destroyed cell lies on
  // the cavity boundary and therefore reappears in a created cell, so this
  // pass leaves no live vertex pointing at a dead cell.
  for (int ci : created_)
    for (int i = 0; i <= dim_; ++i) {
      const int w = cells_[static_cast<std::size_t>(ci)].v[static_cast<std::size_t>(i)];
      if (w != kInfinite) v_cell_[static_cast<std::size_t>(w)] = ci;
    }
  hint_ = created_.back();
  return true;
}

// ---------------------------------------------------------------------------
// Incremental maintenance

bool Triangulation::collect_star(int v) {
  const auto has_v = [&](int ci) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    for (int i = 0; i <= dim_; ++i)
      if (c.v[static_cast<std::size_t>(i)] == v) return true;
    return false;
  };
  int c0 = v < static_cast<int>(v_cell_.size()) ? v_cell_[static_cast<std::size_t>(v)] : -1;
  if (c0 < 0 || c0 >= static_cast<int>(cells_.size()) ||
      !cells_[static_cast<std::size_t>(c0)].alive || !has_v(c0)) {
    c0 = -1;  // stale hint: fall back to a scan (rare; insert/remove refresh hints)
    for (std::size_t ci = 0; ci < cells_.size(); ++ci)
      if (cells_[ci].alive && has_v(static_cast<int>(ci))) {
        c0 = static_cast<int>(ci);
        break;
      }
    if (c0 < 0) return false;
    v_cell_[static_cast<std::size_t>(v)] = c0;
  }
  if (mark_.size() < cells_.size()) mark_.resize(cells_.size(), 0);
  ++mark_epoch_;
  star_.clear();
  star_.push_back(c0);
  mark_[static_cast<std::size_t>(c0)] = mark_epoch_;
  // Flood across the facets that contain v: the cell on the other side of
  // such a facet also contains v, and the star is facet-connected.
  for (std::size_t i = 0; i < star_.size(); ++i) {
    const Cell& c = cells_[static_cast<std::size_t>(star_[i])];
    int iv = -1;
    for (int k = 0; k <= dim_; ++k)
      if (c.v[static_cast<std::size_t>(k)] == v) iv = k;
    if (iv < 0) return false;
    for (int k = 0; k <= dim_; ++k) {
      if (k == iv) continue;
      const int nb = c.nbr[static_cast<std::size_t>(k)];
      if (nb < 0) return false;
      if (mark_[static_cast<std::size_t>(nb)] == mark_epoch_) continue;
      if (!cells_[static_cast<std::size_t>(nb)].alive || !has_v(nb)) return false;
      mark_[static_cast<std::size_t>(nb)] = mark_epoch_;
      star_.push_back(nb);
    }
  }
  return true;
}

bool Triangulation::vertex_neighbors(int v, std::vector<int>& out) {
  out.clear();
  if (!point_alive(v) || !collect_star(v)) return false;
  for (int ci : star_) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    for (int i = 0; i <= dim_; ++i) {
      const int w = c.v[static_cast<std::size_t>(i)];
      if (w != v && w != kInfinite) out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

int Triangulation::insert_point(const Vec& p) {
  GDVR_ASSERT(p.dim() == dim_);
  int idx;
  if (!point_free_.empty()) {
    idx = point_free_.back();
    point_free_.pop_back();
    pts_[static_cast<std::size_t>(idx)] = p;
    pt_alive_[static_cast<std::size_t>(idx)] = 1;
  } else {
    idx = static_cast<int>(pts_.size());
    pts_.push_back(p);
    pt_alive_.push_back(1);
    v_cell_.push_back(-1);
  }
  ++live_points_;
  return insert(idx) ? idx : -1;
}

bool Triangulation::remove_point(int v) {
  GDVR_PROFILE_SCOPE("geom.delaunay_remove");
  if (!point_alive(v) || !collect_star(v)) return false;
  const Vec q = pts_[static_cast<std::size_t>(v)];

  // The link of v: every finite vertex of a star cell other than v.
  link_.clear();
  for (int ci : star_) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    for (int i = 0; i <= dim_; ++i) {
      const int w = c.v[static_cast<std::size_t>(i)];
      if (w != v && w != kInfinite) link_.push_back(w);
    }
  }
  std::sort(link_.begin(), link_.end());
  link_.erase(std::unique(link_.begin(), link_.end()), link_.end());
  if (static_cast<int>(link_.size()) < dim_ + 1) return false;

  // Triangulate the link from scratch (a handful of points -- the degree of
  // v). The coordinates are the already-jittered global ones, so the scratch
  // complex's predicates agree bit-for-bit with ours and its circumspheres
  // can be copied verbatim.
  if (!cavity_tri_) cavity_tri_ = std::make_unique<Triangulation>();
  Triangulation& lt = *cavity_tri_;
  lt.set_jitter(0.0, 0);
  lt.set_locate_mode(locate_mode_);
  link_pts_.clear();
  for (int w : link_) link_pts_.push_back(pts_[static_cast<std::size_t>(w)]);
  if (!lt.build(link_pts_)) return false;

  // Bowyer-Watson duality: deleting v is undoing its insertion into DT(link),
  // so the cavity is filled by exactly the link-DT cells whose circumsphere /
  // hull-visibility region contains v. Infinite link-DT cells supply the new
  // hull facets when v was on the hull.
  sel_.clear();
  for (std::size_t ci = 0; ci < lt.cells_.size(); ++ci)
    if (lt.cells_[ci].alive && lt.in_conflict(lt.cells_[ci], q)) sel_.push_back(static_cast<int>(ci));
  if (sel_.empty()) return false;

  // Register the cavity's boundary facets: for each star cell, the facet
  // opposite v, keyed by global vertex ids and carrying the OUTSIDE cell and
  // its facet index back into the cavity. The filling pass below matches
  // them and rewires the outside pointers; a consistent fill leaves the
  // table empty.
  facets_.reset(dim_, star_.size() + sel_.size() * static_cast<std::size_t>(dim_ + 1));
  for (int ci : star_) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    int iv = -1;
    for (int k = 0; k <= dim_; ++k)
      if (c.v[static_cast<std::size_t>(k)] == v) iv = k;
    const int nb = c.nbr[static_cast<std::size_t>(iv)];
    if (nb < 0 || mark_[static_cast<std::size_t>(nb)] == mark_epoch_) return false;
    int j = -1;
    const Cell& out = cells_[static_cast<std::size_t>(nb)];
    for (int k = 0; k <= dim_; ++k)
      if (out.nbr[static_cast<std::size_t>(k)] == ci) j = k;
    if (j < 0) return false;
    const FacetKey key = facet_key(c, iv, dim_);
    int oc = -1, of = -1;
    if (facets_.match_or_insert(key, nb, j, &oc, &of)) return false;  // duplicate boundary facet
  }

  // Create the filling cells (vertices mapped scratch -> global) and wire
  // all adjacency -- fill-to-fill ridges and fill-to-boundary -- through the
  // facet table.
  created_.clear();
  for (int si : sel_) {
    const int id = alloc_cell();
    Cell& fresh = cells_[static_cast<std::size_t>(id)];
    const Cell& sc = lt.cells_[static_cast<std::size_t>(si)];
    fresh.nbr.fill(-1);
    fresh.alive = true;
    for (int i = 0; i <= dim_; ++i) {
      const int w = sc.v[static_cast<std::size_t>(i)];
      fresh.v[static_cast<std::size_t>(i)] =
          w == kInfinite ? kInfinite : link_[static_cast<std::size_t>(w)];
    }
    fresh.center = sc.center;
    fresh.radius2 = sc.radius2;
    created_.push_back(id);
  }
  for (int ci : created_) {
    for (int k = 0; k <= dim_; ++k) {
      const FacetKey key = facet_key(cells_[static_cast<std::size_t>(ci)], k, dim_);
      int oc = -1, of = -1;
      if (facets_.match_or_insert(key, ci, k, &oc, &of)) {
        cells_[static_cast<std::size_t>(ci)].nbr[static_cast<std::size_t>(k)] = oc;
        cells_[static_cast<std::size_t>(oc)].nbr[static_cast<std::size_t>(of)] = ci;
      }
    }
  }
  if (!facets_.empty()) return false;  // fill does not close the cavity: poisoned

  for (int ci : star_) {
    cells_[static_cast<std::size_t>(ci)].alive = false;
    free_cells_.push_back(ci);
  }
  pt_alive_[static_cast<std::size_t>(v)] = 0;
  point_free_.push_back(v);
  --live_points_;
  for (int ci : created_)
    for (int i = 0; i <= dim_; ++i) {
      const int w = cells_[static_cast<std::size_t>(ci)].v[static_cast<std::size_t>(i)];
      if (w != kInfinite) v_cell_[static_cast<std::size_t>(w)] = ci;
    }
  hint_ = created_.back();
  return true;
}

Triangulation::MoveResult Triangulation::move_point(int v, const Vec& p, bool allow_reinsert) {
  GDVR_PROFILE_SCOPE("geom.delaunay_move");
  if (!point_alive(v)) return MoveResult::kFailed;
  if (!collect_star(v)) return MoveResult::kFailed;

  // Early-out certificate (the kinetic-Delaunay certificate set): the
  // topology is unchanged under v -> p iff
  //   (1) every finite star cell keeps its orientation sign (no inversion),
  //   (2) every facet of a finite star cell keeps its local Delaunay
  //       property at the new position, and
  //   (3) the hull stays locally convex at every ridge of every hull facet
  //       incident to v (the infinite star cells).
  // Facets not incident to the star are untouched, so local Delaunay (and
  // hull convexity) everywhere else follows, and only v's coordinates plus
  // the star's circumspheres need updating.
  bool early = true;
  star_centers_.clear();
  star_r2_.clear();
  // Pass 1: per-cell validity. Finite star cells must keep their
  // orientation sign and admit a circumsphere at the new position; infinite
  // cells have neither and get placeholder slots to keep the arrays in
  // lockstep with star_.
  for (int ci : star_) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    if (infinite_index(c) >= 0) {
      star_centers_.push_back(Vec());
      star_r2_.push_back(0.0);
      continue;
    }
    int iv = -1;
    for (int k = 0; k <= dim_; ++k)
      if (c.v[static_cast<std::size_t>(k)] == v) iv = k;
    const double so = cell_orient(c, -1, p);
    const double sn = cell_orient(c, iv, p);
    if (so == 0.0 || sn == 0.0 || (so > 0.0) != (sn > 0.0)) {
      early = false;
      break;
    }
    const double* rows[kMaxVerts];
    for (int i = 0; i <= dim_; ++i)
      rows[static_cast<std::size_t>(i)] =
          i == iv ? p.coords().data()
                  : pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])].coords().data();
    Vec center;
    double r2 = 0.0;
    if (!circumsphere_rows(rows, dim_, center, r2)) {
      early = false;
      break;
    }
    star_centers_.push_back(center);
    star_r2_.push_back(r2);
  }
  if (early) {
    // Pass 2: facet certificates.
    for (std::size_t si = 0; si < star_.size() && early; ++si) {
      const Cell& c = cells_[static_cast<std::size_t>(star_[si])];
      const int inf = infinite_index(c);
      int iv = -1;
      for (int k = 0; k <= dim_; ++k)
        if (c.v[static_cast<std::size_t>(k)] == v) iv = k;
      if (inf < 0) {
        for (int k = 0; k <= dim_ && early; ++k) {
          const int nb = c.nbr[static_cast<std::size_t>(k)];
          if (nb < 0) {
            early = false;
            break;
          }
          if (k == iv) {
            // Facet opposite v: the outside neighbor is unchanged; the moved
            // vertex must stay outside its conflict region.
            if (in_conflict(cells_[static_cast<std::size_t>(nb)], p)) early = false;
          } else {
            // Facet containing v: the neighbor is another star cell. Its apex
            // (the vertex opposite the shared facet) must stay outside our
            // updated circumsphere.
            const Cell& nc = cells_[static_cast<std::size_t>(nb)];
            // v is on the shared facet, so it can never be the apex: use it
            // as the not-yet-found sentinel. kInfinite (= -1) is a *valid*
            // apex here and must stay distinguishable from "not found".
            int apex = v;
            for (int i = 0; i <= dim_ && apex == v; ++i) {
              const int w = nc.v[static_cast<std::size_t>(i)];
              bool on_facet = false;
              for (int j = 0; j <= dim_; ++j)
                if (j != k && c.v[static_cast<std::size_t>(j)] == w) on_facet = true;
              if (!on_facet) apex = w;
            }
            // An infinite apex means this facet is a hull facet of an
            // infinite star cell; its conditions are the ridge-convexity
            // checks run from that cell's side below. (Guarding this before
            // the sanity decline is load-bearing: hull vertices would
            // otherwise never certify, turning every hull move into a
            // remove+reinsert -- or, on minimum-size complexes whose links
            // are too small to remove from, a full rebuild.)
            if (apex == kInfinite) continue;
            if (apex == v) {  // inconsistent adjacency: don't trust the star
              early = false;
              break;
            }
            const double d2 =
                pts_[static_cast<std::size_t>(apex)].distance2(star_centers_[si]);
            if (d2 < star_r2_[si]) early = false;
          }
        }
      } else {
        // Infinite star cell: its hull facet F (the finite vertices of c)
        // contains v. The facet opposite the infinite slot borders the
        // finite cell F + {apex}, which also contains v and is covered by
        // pass 1 and the finite-cell facet checks. What remains is local
        // convexity of the moved hull at each ridge of F: the apex of every
        // adjacent hull facet must stay strictly on the inner side of F's
        // new hyperplane, where "inner" is the side of the adjacent finite
        // cell's apex.
        const int fin = c.nbr[static_cast<std::size_t>(inf)];
        if (fin < 0 || infinite_index(cells_[static_cast<std::size_t>(fin)]) >= 0) {
          early = false;  // degenerate flat hull
          break;
        }
        const Cell& fc = cells_[static_cast<std::size_t>(fin)];
        int a_fin = -1;
        for (int i = 0; i <= dim_ && a_fin < 0; ++i) {
          const int w = fc.v[static_cast<std::size_t>(i)];
          bool on_facet = false;
          for (int j = 0; j <= dim_; ++j)
            if (j != inf && c.v[static_cast<std::size_t>(j)] == w) on_facet = true;
          if (!on_facet) a_fin = w;
        }
        if (a_fin < 0 || a_fin == kInfinite || a_fin == v) {
          early = false;
          break;
        }
        const double base =
            cell_orient2(c, inf, pts_[static_cast<std::size_t>(a_fin)], iv, p);
        if (base == 0.0) {
          early = false;
          break;
        }
        for (int k = 0; k <= dim_ && early; ++k) {
          if (k == inf) continue;
          const int nb = c.nbr[static_cast<std::size_t>(k)];
          if (nb < 0) {
            early = false;
            break;
          }
          // The neighbor across a ridge (facet keeping the infinite slot)
          // is the adjacent hull facet's infinite cell; its apex is finite.
          const Cell& nc = cells_[static_cast<std::size_t>(nb)];
          int a_r = -1;
          for (int i = 0; i <= dim_ && a_r < 0; ++i) {
            const int w = nc.v[static_cast<std::size_t>(i)];
            bool on_facet = false;
            for (int j = 0; j <= dim_; ++j)
              if (j != k && c.v[static_cast<std::size_t>(j)] == w) on_facet = true;
            if (!on_facet) a_r = w;
          }
          if (a_r < 0 || a_r == kInfinite || a_r == v) {
            early = false;
            break;
          }
          const double o = cell_orient2(c, inf, pts_[static_cast<std::size_t>(a_r)], iv, p);
          if (o == 0.0 || (o > 0.0) != (base > 0.0)) early = false;
        }
      }
    }
    if (early) {
      pts_[static_cast<std::size_t>(v)] = p;
      for (std::size_t si = 0; si < star_.size(); ++si) {
        Cell& c = cells_[static_cast<std::size_t>(star_[si])];
        if (infinite_index(c) >= 0) continue;
        c.center = star_centers_[si];
        c.radius2 = star_r2_[si];
      }
      return MoveResult::kEarlyOut;
    }
  }

  // The certificate failed: the topology must change. A caller batching
  // moves opts out of per-point repair and coalesces into one rebuild.
  if (!allow_reinsert) return MoveResult::kDeclined;

  // Slow path: remove, then reinsert the same vertex slot at the new
  // position (the slot just freed is by construction the back of the free
  // list).
  if (!remove_point(v)) return MoveResult::kFailed;
  GDVR_ASSERT(!point_free_.empty() && point_free_.back() == v);
  point_free_.pop_back();
  pt_alive_[static_cast<std::size_t>(v)] = 1;
  ++live_points_;
  pts_[static_cast<std::size_t>(v)] = p;
  return insert(v) ? MoveResult::kReinserted : MoveResult::kFailed;
}

std::vector<std::pair<int, int>> Triangulation::finite_edges() const {
  // Each edge shows up in every incident cell (five-ish tetrahedra per edge
  // in 3D), so dedup through a small open-addressing set before the final
  // sort instead of sorting the whole multiset.
  std::vector<std::pair<int, int>> edges;
  std::size_t cap = 64;
  while (cap < cells_.size() * static_cast<std::size_t>(dim_ + 1)) cap <<= 1;
  std::vector<std::uint64_t> seen(cap, UINT64_MAX);
  const std::size_t mask = cap - 1;
  for (const Cell& c : cells_) {
    if (!c.alive || infinite_index(c) >= 0) continue;
    for (int i = 0; i <= dim_; ++i)
      for (int j = i + 1; j <= dim_; ++j) {
        const int a = std::min(c.v[static_cast<std::size_t>(i)], c.v[static_cast<std::size_t>(j)]);
        const int b = std::max(c.v[static_cast<std::size_t>(i)], c.v[static_cast<std::size_t>(j)]);
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
            static_cast<std::uint32_t>(b);
        std::size_t s = splitmix(packed) & mask;
        while (seen[s] != UINT64_MAX && seen[s] != packed) s = (s + 1) & mask;
        if (seen[s] == packed) continue;
        seen[s] = packed;
        edges.emplace_back(a, b);
      }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

bool Triangulation::empty_circumsphere_property(double tol) const {
  std::array<Vec, kMaxVerts> verts;
  for (const Cell& c : cells_) {
    if (!c.alive || infinite_index(c) >= 0) continue;
    for (int i = 0; i <= dim_; ++i)
      verts[static_cast<std::size_t>(i)] =
          pts_[static_cast<std::size_t>(c.v[static_cast<std::size_t>(i)])];
    for (std::size_t pi = 0; pi < pts_.size(); ++pi) {
      if (pi < pt_alive_.size() && pt_alive_[pi] == 0) continue;  // removed slot
      bool is_vertex = false;
      for (int i = 0; i <= dim_; ++i)
        if (c.v[static_cast<std::size_t>(i)] == static_cast<int>(pi)) is_vertex = true;
      if (is_vertex) continue;
      if (in_sphere({verts.data(), static_cast<std::size_t>(dim_ + 1)}, pts_[pi]) > tol)
        return false;
    }
  }
  return true;
}

DelaunayGraph delaunay_graph(std::span<const Vec> points, const DelaunayOptions& opts) {
  DelaunayGraph g;
  const int n = static_cast<int>(points.size());
  g.dim = points.empty() ? 0 : points[0].dim();
  g.nbrs.assign(static_cast<std::size_t>(n), {});
  if (n <= 1) return g;

  auto complete = [&] {
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) g.edges.emplace_back(u, v);
  };

  // With at most dim+1 points in general position, every pair is a Delaunay
  // neighbor; return the complete graph directly.
  if (n <= g.dim + 1) {
    complete();
  } else {
    bool built = false;
    double rel = opts.jitter_rel;
    for (int attempt = 0; attempt < opts.max_attempts && !built; ++attempt, rel *= 1e3) {
      Triangulation t;
      t.set_jitter(rel, opts.jitter_seed + static_cast<std::uint64_t>(attempt) * 0x1234567ull);
      if (opts.force_linear_scan) t.set_locate_mode(Triangulation::LocateMode::kLinearScan);
      if (t.build(points)) {
        g.edges = t.finite_edges();
        built = true;
      }
    }
    if (!built) {
      GDVR_LOG_WARN("delaunay_graph: triangulation failed after retries (n=%d dim=%d); "
                    "falling back to complete graph",
                    n, g.dim);
      g.complete_graph_fallback = true;
      complete();
    }
  }

  for (const auto& [u, v] : g.edges) {
    g.nbrs[static_cast<std::size_t>(u)].push_back(v);
    g.nbrs[static_cast<std::size_t>(v)].push_back(u);
  }
  for (auto& lst : g.nbrs) std::sort(lst.begin(), lst.end());
  return g;
}

}  // namespace gdvr::geom
