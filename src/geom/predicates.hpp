// Geometric predicates for d-dimensional Delaunay triangulation.
//
// All predicates are evaluated with double-precision Gaussian elimination
// (partial pivoting). Inputs to the triangulation are jittered (see
// delaunay.hpp), which keeps point sets in general position, so we do not
// need exact arithmetic; the test suite validates the resulting DT graphs
// against a brute-force empty-circumsphere oracle.
#pragma once

#include <span>
#include <vector>

#include "common/vec.hpp"

namespace gdvr::geom {

// Determinant of a small dense matrix, destroyed in place.
double determinant_inplace(std::vector<std::vector<double>>& m);

// Determinant of an n x n row-major matrix held in a caller-provided flat
// buffer (destroyed in place). Allocation-free building block for callers on
// hot paths (the Delaunay walk's per-facet orientation tests). n <= 13.
double det_inplace(double* m, int n);

// Orientation of the simplex (p[0], ..., p[d]) in d dimensions:
// sign of det [p1-p0; p2-p0; ...; pd-p0]. Positive / negative / ~zero
// (degenerate). `points` must contain exactly dim+1 points of dimension dim.
double orient(std::span<const Vec> points);

// In-sphere predicate: > 0 iff `q` lies strictly inside the circumsphere of
// the simplex `points` (dim+1 points in dim dimensions), independent of the
// simplex's orientation. ~0 means co-spherical / degenerate.
double in_sphere(std::span<const Vec> points, const Vec& q);

// Circumcenter and squared circumradius of a d-simplex. Returns false if the
// simplex is (numerically) degenerate.
bool circumsphere(std::span<const Vec> points, Vec& center, double& radius2);

// Same predicate over raw coordinate rows (dim + 1 pointers, each to `dim`
// doubles). The triangulation kernel calls this once per created cell; the
// row-pointer form avoids copying dim+1 Vec objects into scratch first.
bool circumsphere_rows(const double* const* rows, int dim, Vec& center, double& radius2);

}  // namespace gdvr::geom
