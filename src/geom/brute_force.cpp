#include "geom/brute_force.hpp"

#include <algorithm>
#include <functional>

#include "geom/predicates.hpp"

namespace gdvr::geom {

namespace {

void for_each_subset(int n, int k, const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  while (true) {
    fn(idx);
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j)
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
}

}  // namespace

std::vector<std::pair<int, int>> brute_force_delaunay_edges(std::span<const Vec> points,
                                                            double tol) {
  std::vector<std::pair<int, int>> edges;
  const int n = static_cast<int>(points.size());
  if (n < 2) return edges;
  const int dim = points[0].dim();

  if (n <= dim + 1) {
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) edges.emplace_back(u, v);
    return edges;
  }

  std::vector<Vec> verts(static_cast<std::size_t>(dim) + 1, Vec(dim));
  for_each_subset(n, dim + 1, [&](const std::vector<int>& idx) {
    for (int i = 0; i <= dim; ++i)
      verts[static_cast<std::size_t>(i)] = points[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
    Vec center;
    double radius2 = 0.0;
    if (!circumsphere(verts, center, radius2)) return;
    const double limit = radius2 * (1.0 - tol);
    for (int p = 0; p < n; ++p) {
      if (std::binary_search(idx.begin(), idx.end(), p)) continue;
      if (points[static_cast<std::size_t>(p)].distance2(center) < limit) return;
    }
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t j = i + 1; j < idx.size(); ++j)
        edges.emplace_back(std::min(idx[i], idx[j]), std::max(idx[i], idx[j]));
  });

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace gdvr::geom
