#include "vpod/live_gdv.hpp"

#include <cmath>

namespace gdvr::vpod {

using mdt::Envelope;
using mdt::Kind;
using mdt::NeighborView;

LiveGdv::LiveGdv(mdt::Net& net, Vpod& vpod) : net_(net), vpod_(vpod) {
  net_.set_receiver([this](NodeId to, NodeId from, Envelope m) { handle(to, from, std::move(m)); });
}

std::uint64_t LiveGdv::send_packet(NodeId s, NodeId t) {
  const std::uint64_t id = next_id_++;
  Delivery d;
  d.sent_at = net_.simulator().now();
  packets_.emplace(id, d);

  Envelope m;
  m.kind = Kind::kData;
  m.origin = s;
  m.target = t;
  // Location-service lookup: the destination's current virtual position.
  m.target_pos = vpod_.overlay().position(t);
  m.token = id;
  m.ttl = 12 * net_.size() + 64;
  forward(s, std::move(m));
  return id;
}

double LiveGdv::mean_delivered_cost() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& [id, d] : packets_) {
    (void)id;
    if (d.delivered) {
      sum += d.cost;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

void LiveGdv::handle(NodeId to, NodeId from, Envelope msg) {
  if (msg.kind != Kind::kData) {
    vpod_.handle(to, from, std::move(msg));
    return;
  }
  // Account the hop that just happened (forward-direction metric cost).
  msg.accum_cost += net_.link_cost(from, to);
  auto it = packets_.find(msg.token);
  if (it != packets_.end()) {
    ++it->second.transmissions;
    it->second.cost = msg.accum_cost;
  }

  if (to == msg.target) {
    if (it != packets_.end()) {
      it->second.delivered = true;
      it->second.delivered_at = net_.simulator().now();
    }
    return;
  }

  // Mid-virtual-link relay: follow the source route; GDV resumes at its end.
  if (msg.detour) {
    const auto idx = static_cast<std::size_t>(msg.route_idx);
    if (idx + 1 < msg.route.size() && msg.route[idx + 1] == to) ++msg.route_idx;
    if (msg.route_idx < static_cast<int>(msg.route.size()) - 1) {
      const NodeId next = msg.route[static_cast<std::size_t>(msg.route_idx) + 1];
      (void)net_.send(to, next, std::move(msg));
      return;
    }
    msg.detour = false;
    msg.route.clear();
    msg.route_idx = 0;
  }
  forward(to, std::move(msg));
}

void LiveGdv::forward(NodeId u, Envelope msg) {
  if (msg.ttl-- <= 0) return drop(msg);
  const auto& overlay = vpod_.overlay();
  if (!overlay.active(u) || !net_.alive(u)) return drop(msg);

  const Vec& tpos = msg.target_pos;
  const double own = overlay.position(u).distance(tpos);
  const auto views = overlay.neighbor_views(u);

  // Lines 1-3 (Fig. 7, right column): DV estimates over P_u ∪ N_u from u's
  // own knowledge of neighbor positions and costs.
  const NeighborView* best = nullptr;
  double best_r = graph::kInf;
  for (const NeighborView& v : views) {
    if (!net_.alive(v.id)) continue;  // link layer knows dead neighbors
    const double r = v.cost + v.pos.distance(tpos);
    if (r < best_r) {
      best_r = r;
      best = &v;
    }
  }
  if (best && best_r < own) {
    if (best->is_phys) {
      const NodeId next = best->id;
      (void)net_.send(u, next, std::move(msg));
      return;
    }
    const auto& path = overlay.virtual_path(u, best->id);
    if (path.size() >= 2) {
      msg.detour = true;
      msg.route = path;
      msg.route_idx = 0;
      const NodeId next = path[1];
      (void)net_.send(u, next, std::move(msg));
      return;
    }
  }

  // Line 5: MDT-greedy fallback on u's local state.
  const NeighborView* gbest = nullptr;
  double gbest_d = own;
  for (const NeighborView& v : views) {
    if (!v.is_phys || !net_.alive(v.id)) continue;
    const double d = v.pos.distance(tpos);
    if (d < gbest_d) {
      gbest_d = d;
      gbest = &v;
    }
  }
  if (gbest) {
    const NodeId next = gbest->id;
    (void)net_.send(u, next, std::move(msg));
    return;
  }
  gbest_d = own;
  for (const NeighborView& v : views) {
    if (v.is_phys || !v.is_dt) continue;
    const double d = v.pos.distance(tpos);
    if (d < gbest_d && overlay.virtual_path(u, v.id).size() >= 2) {
      gbest_d = d;
      gbest = &v;
    }
  }
  if (!gbest) return drop(msg);  // local minimum: DT incomplete here
  const auto& path = overlay.virtual_path(u, gbest->id);
  msg.detour = true;
  msg.route = path;
  msg.route_idx = 0;
  const NodeId next = path[1];
  (void)net_.send(u, next, std::move(msg));
}

}  // namespace gdvr::vpod
