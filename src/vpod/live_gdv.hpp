// Live GDV data plane: real packets forwarded hop by hop through the
// discrete-event simulator, with every forwarding decision made from the
// forwarding node's *own* protocol state (its possibly-stale view of
// neighbor positions, costs and virtual links) -- unlike the offline
// evaluation in eval/routing_eval.hpp, which snapshots global state.
//
// Used to validate that the offline evaluation methodology is faithful
// (bench/ablation_live_eval) and to demonstrate routing while VPoD is still
// converging and under churn.
#pragma once

#include <cstdint>
#include <map>

#include "vpod/vpod.hpp"

namespace gdvr::vpod {

class LiveGdv {
 public:
  struct Delivery {
    bool delivered = false;
    int transmissions = 0;   // physical hops taken so far / in total
    double cost = 0.0;       // forward metric cost accumulated
    sim::Time sent_at = 0.0;
    sim::Time delivered_at = 0.0;
  };

  // Takes over as the NetSim receiver, delegating every non-data message to
  // `vpod`. Construct *after* vpod.start().
  LiveGdv(mdt::Net& net, Vpod& vpod);

  // Injects a data packet at s addressed to t. The destination's current
  // virtual position is stamped into the packet (the role a location
  // service plays for any geographic protocol). Returns the packet id.
  std::uint64_t send_packet(NodeId s, NodeId t);

  const Delivery& status(std::uint64_t id) const { return packets_.at(id); }
  int sent_count() const { return static_cast<int>(packets_.size()); }
  int delivered_count() const {
    int n = 0;
    for (const auto& [id, d] : packets_) {
      (void)id;
      if (d.delivered) ++n;
    }
    return n;
  }
  double delivery_rate() const {
    return packets_.empty() ? 0.0
                            : static_cast<double>(delivered_count()) / sent_count();
  }
  // Mean accumulated metric cost over delivered packets.
  double mean_delivered_cost() const;

 private:
  void handle(NodeId to, NodeId from, mdt::Envelope msg);
  // One GDV forwarding decision at u, using only u's local overlay state.
  void forward(NodeId u, mdt::Envelope msg);
  void drop(const mdt::Envelope& msg) { (void)msg; }

  mdt::Net& net_;
  Vpod& vpod_;
  std::map<std::uint64_t, Delivery> packets_;
  std::uint64_t next_id_ = 1;
};

}  // namespace gdvr::vpod
