#include "vpod/vpod.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace gdvr::vpod {

Vpod::Vpod(mdt::Net& net, const VpodConfig& config)
    : net_(net),
      config_(config),
      overlay_(net, [&] {
        mdt::MdtConfig m = config.mdt;
        m.dim = config.dim;
        return m;
      }()),
      ctl_(static_cast<std::size_t>(net.size())),
      periods_(static_cast<std::size_t>(net.size()), 0),
      adjustments_(static_cast<std::size_t>(net.size()), 0) {
  Rng base(config.seed);
  rng_.reserve(static_cast<std::size_t>(net.size()));
  for (NodeId u = 0; u < net.size(); ++u)
    rng_.push_back(base.split(static_cast<std::uint64_t>(u)));
}

void Vpod::start(NodeId starting_node) {
  starting_node_ = starting_node;
  net_.set_receiver([this](NodeId to, NodeId from, Envelope msg) { handle(to, from, std::move(msg)); });
  receive_token(starting_node, NodeInfo{});
}

void Vpod::handle(NodeId to, NodeId from, Envelope msg) {
  if (msg.kind == Kind::kToken) {
    receive_token(to, msg.origin_info);
    return;
  }
  overlay_.handle(to, from, std::move(msg));
}

// ---------------------------------------------------------------------------
// Token flood and position initialization (Sec. II-B)

void Vpod::receive_token(NodeId u, const NodeInfo& sender) {
  NodeCtl& c = ctl_[static_cast<std::size_t>(u)];
  if (c.has_token || !net_.alive(u)) return;  // duplicate tokens are ignored
  c.has_token = true;

  const Vec pos = initial_position(u, sender);
  overlay_.activate(u, pos, u == starting_node_);

  // Forward the token to all physical neighbors (it carries this node's
  // freshly initialized position, doubling as a Hello).
  net_.for_each_alive_neighbor(u, [&](const graph::Edge& e) {
    Envelope t;
    t.kind = Kind::kToken;
    t.origin = u;
    t.origin_info = NodeInfo{u, pos, 1.0};
    net_.send(u, e.to, std::move(t));
  });

  // Enter the first J period shortly afterwards (staggered so the token
  // flood and initial Hellos settle).
  net_.simulator().schedule_in_node(u, 0.1 + rng_at(u).uniform(0.0, 0.2),
                                    [this, u, life = life_of(u)] {
    if (same_life(u, life)) enter_join_period(u);
  });
}

Vec Vpod::initial_position(NodeId u, const NodeInfo& sender) {
  if (u == starting_node_) return Vec::zero(config_.dim);

  // Initialized physical neighbors: everything that has sent us a Hello or a
  // token (only initialized nodes send either).
  std::vector<NodeInfo> inits;
  for (const auto& [id, info] : overlay_.phys_info(u)) {
    (void)id;
    inits.push_back(info);
  }
  if (sender.id >= 0 &&
      std::none_of(inits.begin(), inits.end(), [&](const NodeInfo& i) { return i.id == sender.id; }))
    inits.push_back(sender);

  if (inits.empty()) {
    // Should not happen (the token sender is always initialized); place near
    // the origin as a safe default.
    return rng_at(u).point_on_sphere(Vec::zero(config_.dim), 1.0);
  }
  if (inits.size() == 1) {
    // One initialized neighbor v: a random point on the sphere centered at v
    // with radius equal to the link cost c(u, v).
    const double radius = std::max(net_.link_cost(u, inits[0].id), 1e-6);
    return rng_at(u).point_on_sphere(inits[0].pos, radius);
  }
  // Two or more: midpoint of the two farthest-apart neighbors, plus a short
  // random offset to avoid degenerate collinear placements.
  std::size_t bi = 0, bj = 1;
  double best = -1.0;
  for (std::size_t i = 0; i < inits.size(); ++i)
    for (std::size_t j = i + 1; j < inits.size(); ++j) {
      const double d = inits[i].pos.distance(inits[j].pos);
      if (d > best) {
        best = d;
        bi = i;
        bj = j;
      }
    }
  const Vec mid = (inits[bi].pos + inits[bj].pos) * 0.5;
  const double offset = std::max(best, 1e-6) * config_.init_offset_rel;
  return rng_at(u).point_on_sphere(mid, offset);
}

// ---------------------------------------------------------------------------
// J / A period alternation

void Vpod::enter_join_period(NodeId u) {
  if (!net_.alive(u) || !overlay_.active(u)) return;
  if (!overlay_.joined(u))
    overlay_.start_join(u);
  else
    overlay_.run_maintenance_round(u);
  net_.simulator().schedule_in_node(u, config_.join_period_s, [this, u, life = life_of(u)] {
    if (same_life(u, life)) enter_adjust_period(u);
  });
}

void Vpod::enter_adjust_period(NodeId u) {
  if (!net_.alive(u) || !overlay_.active(u)) return;
  ctl_[static_cast<std::size_t>(u)].a_period_end =
      net_.simulator().now() + config_.adjust_period_s;
  adjustment_tick(u);
}

void Vpod::adjustment_tick(NodeId u) {
  if (!net_.alive(u) || !overlay_.active(u)) return;
  const sim::Time a_end = ctl_[static_cast<std::size_t>(u)].a_period_end;
  const double dt = adjustment_timeout(u);
  const sim::Time next = net_.simulator().now() + dt;
  if (next >= a_end) {
    // Period over: one last wait until the boundary, then back to a J period.
    net_.simulator().schedule_at_node(u, a_end, [this, u, life = life_of(u)] {
      if (!same_life(u, life) || !net_.alive(u) || !overlay_.active(u)) return;
      ++periods_[static_cast<std::size_t>(u)];
      enter_join_period(u);
    });
    return;
  }
  net_.simulator().schedule_at_node(u, next, [this, u, life = life_of(u)] {
    if (!same_life(u, life) || !net_.alive(u) || !overlay_.active(u)) return;
    adjust(u);
    adjustment_tick(u);
  });
}

double Vpod::adjustment_timeout(NodeId u) const {
  if (config_.timeout_mode == VpodConfig::TimeoutMode::kFixed) return config_.fixed_timeout_s;
  const auto views = overlay_.neighbor_views(u);
  if (views.empty()) return config_.initial_timeout_s;
  double ebar = 0.0;
  for (const auto& v : views) ebar += v.err;
  ebar /= static_cast<double>(views.size());
  if (ebar <= config_.initial_timeout_s / config_.adjust_period_s) return config_.adjust_period_s;
  return std::min(config_.initial_timeout_s / ebar, config_.adjust_period_s);
}

// ---------------------------------------------------------------------------
// The Figure 6 adjustment algorithm

void Vpod::adjust(NodeId u) {
  const auto views = overlay_.neighbor_views(u);
  if (views.empty()) return;
  ++adjustments_[static_cast<std::size_t>(u)];

  Vec x = overlay_.position(u);
  double eu = overlay_.error(u);
  double esum = 0.0;

  for (const auto& v : views) {
    const double cost = v.cost;                 // D(u,v): link cost or DT routing cost
    const double dist = std::max(x.distance(v.pos), 1e-9);  // D~(u,v)
    // Line 3: physical neighbors only pull (when the virtual distance
    // overestimates the link cost); multi-hop DT neighbors both push and pull.
    const bool is_multihop_dt = v.is_dt && !v.is_phys;
    if (!(is_multihop_dt || (v.is_phys && dist > cost))) continue;

    const double denom = eu + v.err;
    const double f = config_.use_confidence ? (denom > 0.0 ? eu / denom : 0.0) : 0.5;
    x += config_.cc * f * (cost - dist) * (x - v.pos).unit();
    esum += std::fabs(cost - dist) / dist;
  }

  const double enew = esum / static_cast<double>(views.size());
  eu = eu * (1.0 - config_.ce) + enew * config_.ce;
  // Line 13: send the updated position and error to all P_u ∪ N_u.
  overlay_.set_position(u, x, eu);
}

// ---------------------------------------------------------------------------
// Churn (Sec. IV-H)

void Vpod::fail_node(NodeId u) {
  overlay_.deactivate(u);
  NodeCtl& c = ctl_[static_cast<std::size_t>(u)];
  const std::uint32_t next_life = c.life + 1;
  c = NodeCtl{};
  c.life = next_life;  // cancels every timer scheduled in the previous life
  periods_[static_cast<std::size_t>(u)] = 0;
}

void Vpod::join_node(NodeId u) {
  net_.set_alive(u, true);
  NodeCtl& c = ctl_[static_cast<std::size_t>(u)];
  c.has_token = true;
  // Initial position: centroid of alive physical neighbors with error < 1
  // (modeling a link-layer position probe of the direct neighborhood).
  Vec centroid = Vec::zero(config_.dim);
  int count = 0;
  for (const graph::Edge& e : net_.alive_neighbors(u)) {
    if (overlay_.active(e.to) && overlay_.error(e.to) < 1.0) {
      centroid += overlay_.position(e.to);
      ++count;
    }
  }
  Vec pos = count > 0 ? centroid / static_cast<double>(count)
                      : rng_at(u).point_on_sphere(Vec::zero(config_.dim), 1.0);
  // Small offset so multiple joiners sharing neighbors do not coincide.
  pos = rng_at(u).point_on_sphere(pos, 0.05 + 0.001 * static_cast<double>(u));
  overlay_.activate(u, pos, false);
  net_.simulator().schedule_in_node(u, 0.1 + rng_at(u).uniform(0.0, 0.2),
                                    [this, u, life = life_of(u)] {
    if (same_life(u, life)) enter_join_period(u);
  });
}

}  // namespace gdvr::vpod
