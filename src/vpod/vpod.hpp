// VPoD: Virtual Position by Delaunay (paper Section II).
//
// Every node, upon receiving the start token, initializes a position in the
// d-dimensional virtual space, then alternates between J periods (MDT join /
// maintenance: rebuild the multi-hop DT over current virtual positions,
// refresh DT-neighbor routing costs) and A periods (iterative position
// adjustment against physical and DT neighbors). All timing is per-node and
// asynchronous; the token flood is the only global coordination.
//
// The adjustment algorithm is the paper's Figure 6 verbatim, including the
// confidence weight f = e_u / (e_u + e_v), the moving-average error update
// with tuning parameter c_e, and the adaptive adjustment timeout
// delta_u = min(delta_u0 / e_bar, Ta).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "mdt/overlay.hpp"

namespace gdvr::vpod {

using mdt::Envelope;
using mdt::Kind;
using mdt::NodeId;
using mdt::NodeInfo;

struct VpodConfig {
  int dim = 3;             // virtual space dimension
  double cc = 0.1;         // position-change tuning parameter (Sec. IV-D)
  double ce = 0.25;        // error moving-average parameter
  double adjust_period_s = 20.0;  // Ta
  double join_period_s = 6.0;     // J-period duration (MDT join/maintenance)
  double initial_timeout_s = 2.0; // delta_u0

  enum class TimeoutMode { kFixed, kAdaptive };
  TimeoutMode timeout_mode = TimeoutMode::kAdaptive;
  double fixed_timeout_s = 2.0;  // used when timeout_mode == kFixed

  // Ablation switch: when false, the confidence weight f = e_u / (e_u + e_v)
  // is replaced by a constant 0.5 (all neighbors trusted equally, position
  // errors propagate freely). The paper argues confidence weighting dampens
  // error propagation; bench/ablation_confidence quantifies it.
  bool use_confidence = true;

  // Relative size of the random offset that avoids degenerate (collinear)
  // midpoint initializations (Sec. II-B).
  double init_offset_rel = 0.05;

  mdt::MdtConfig mdt;  // dim is overwritten with `dim`
  std::uint64_t seed = 42;
};

class Vpod {
 public:
  Vpod(mdt::Net& net, const VpodConfig& config);

  // Installs this protocol as the NetSim receiver and injects the start
  // token at `starting_node` at the current simulation time.
  void start(NodeId starting_node);

  mdt::MdtOverlay& overlay() { return overlay_; }
  const mdt::MdtOverlay& overlay() const { return overlay_; }
  const VpodConfig& config() const { return config_; }

  // Number of completed A periods at node u (the figures' x axis).
  int completed_periods(NodeId u) const { return periods_[static_cast<std::size_t>(u)]; }

  // Total Figure-6 position adjustments executed across all nodes (each one
  // pushes a kPosUpdate to every physical and DT neighbor) -- the "VPoD
  // updates" metric the observability registry exports.
  std::uint64_t adjustments() const {
    std::uint64_t total = 0;
    for (std::uint64_t a : adjustments_) total += a;
    return total;
  }

  // --- churn (Sec. IV-H) ---------------------------------------------------
  // Node fails silently.
  void fail_node(NodeId u);
  // A fresh node joins: its initial position is the centroid of the virtual
  // positions of its alive physical neighbors whose error is below 1 (the
  // paper's churn rule); error starts at 1.
  void join_node(NodeId u);

  // Receiver entry point.
  void handle(NodeId to, NodeId from, Envelope msg);

 private:
  struct NodeCtl {
    bool has_token = false;
    sim::Time a_period_end = 0.0;
    // Bumped by fail_node: pending J/A timers capture the life they were
    // scheduled in and discard themselves if the node has died (and possibly
    // rejoined as a fresh protocol instance) since. Without this, a stale
    // adjust timer from the previous life can fire into a rejoined node whose
    // A-period state was reset.
    std::uint32_t life = 0;
  };

  // True while node u is still in the protocol life a timer was scheduled in.
  bool same_life(NodeId u, std::uint32_t life) const {
    return ctl_[static_cast<std::size_t>(u)].life == life;
  }
  std::uint32_t life_of(NodeId u) const { return ctl_[static_cast<std::size_t>(u)].life; }

  void receive_token(NodeId u, const NodeInfo& sender);
  Vec initial_position(NodeId u, const NodeInfo& sender);
  void enter_join_period(NodeId u);
  void enter_adjust_period(NodeId u);
  void adjustment_tick(NodeId u);
  // One execution of the Figure 6 adjustment algorithm.
  void adjust(NodeId u);
  // Adaptive timeout delta_u = min(delta_u0 / e_bar, Ta).
  double adjustment_timeout(NodeId u) const;

  mdt::Net& net_;
  VpodConfig config_;
  mdt::MdtOverlay overlay_;
  std::vector<NodeCtl> ctl_;
  std::vector<int> periods_;
  // Per node, aggregated by adjustments(): adjust(u) runs inside u's events,
  // so under the sharded engine no two lanes may share the counter.
  std::vector<std::uint64_t> adjustments_;
  // One stream per node for placement/stagger draws (DESIGN.md §4g).
  std::vector<Rng> rng_;
  Rng& rng_at(NodeId u) { return rng_[static_cast<std::size_t>(u)]; }
  NodeId starting_node_ = -1;
};

}  // namespace gdvr::vpod
