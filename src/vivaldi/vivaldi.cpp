#include "vivaldi/vivaldi.hpp"

#include <algorithm>
#include <cmath>

namespace gdvr::vivaldi {

TwoHopVivaldi::TwoHopVivaldi(sim::NetSim<VivMsg>& net, const VivaldiConfig& config)
    : net_(net),
      config_(config),
      pos_(static_cast<std::size_t>(net.size())),
      err_(static_cast<std::size_t>(net.size()), 1.0),
      periods_(static_cast<std::size_t>(net.size()), 0),
      two_hop_(static_cast<std::size_t>(net.size())) {
  // Vivaldi starts everyone near the origin with a tiny random kick so the
  // spring forces have a direction to act along.
  Rng base(config.seed);
  for (auto& p : pos_) p = base.point_on_sphere(Vec::zero(config_.dim), 0.01);
  rng_.reserve(static_cast<std::size_t>(net.size()));
  for (NodeId u = 0; u < net.size(); ++u)
    rng_.push_back(base.split(static_cast<std::uint64_t>(u)));
}

void TwoHopVivaldi::start() {
  net_.set_receiver([this](NodeId to, NodeId from, VivMsg m) { handle(to, from, std::move(m)); });
  for (NodeId u = 0; u < net_.size(); ++u) {
    if (!net_.alive(u)) continue;
    const double offset = rng_at(u).uniform(0.0, 1.0);
    net_.simulator().schedule_in_node(u, offset, [this, u] { begin_period(u); });
  }
}

void TwoHopVivaldi::begin_period(NodeId u) {
  if (!net_.alive(u)) return;
  // Advertise the neighbor list so neighbors can refresh their 2-hop sets.
  std::vector<NodeId> ids;
  net_.for_each_alive_neighbor(u, [&](const graph::Edge& e) { ids.push_back(e.to); });
  for (NodeId to : ids) {
    VivMsg m;
    m.kind = VivMsg::Kind::kNbrList;
    m.origin = u;
    m.target = to;
    m.nbr_ids = ids;
    net_.send(u, to, std::move(m));
  }
  // Spread the period's samples uniformly over the period.
  const int total = config_.one_hop_samples + config_.two_hop_samples;
  for (int i = 0; i < total; ++i) {
    const double at = rng_at(u).uniform(0.05, config_.period_s);
    net_.simulator().schedule_in_node(u, at, [this, u] { do_sample(u); });
  }
  net_.simulator().schedule_in_node(u, config_.period_s, [this, u] {
    if (!net_.alive(u)) return;
    ++periods_[static_cast<std::size_t>(u)];
    begin_period(u);
  });
}

void TwoHopVivaldi::do_sample(NodeId u) {
  if (!net_.alive(u)) return;
  const auto nbrs = net_.alive_neighbors(u);
  if (nbrs.empty()) return;
  auto& two = two_hop_[static_cast<std::size_t>(u)];
  // 1-hop and 2-hop samples alternate 50/50 in expectation, matching the
  // paper's 100 + 100 per period.
  const bool sample_two_hop = !two.empty() && rng_at(u).bernoulli(
      static_cast<double>(config_.two_hop_samples) /
      static_cast<double>(config_.one_hop_samples + config_.two_hop_samples));
  VivMsg m;
  m.kind = VivMsg::Kind::kSampleRequest;
  m.origin = u;
  if (sample_two_hop) {
    auto it = two.begin();
    std::advance(it, static_cast<long>(rng_at(u).uniform_int(two.size())));
    m.target = it->first;
    m.route = {u, it->second, it->first};
  } else {
    const auto& pick = nbrs[static_cast<std::size_t>(rng_at(u).uniform_index(static_cast<int>(nbrs.size())))];
    m.target = pick.to;
    m.route = {u, pick.to};
  }
  m.route_idx = 0;
  const NodeId next = m.route[1];  // read before the envelope is moved from
  net_.send(u, next, std::move(m));
}

void TwoHopVivaldi::handle(NodeId to, NodeId from, VivMsg msg) {
  if (!net_.alive(to)) return;
  switch (msg.kind) {
    case VivMsg::Kind::kNbrList: {
      auto& two = two_hop_[static_cast<std::size_t>(to)];
      // Record 2-hop targets reachable via `from` (refresh relay choice).
      for (NodeId v : msg.nbr_ids) {
        if (v == to || net_.links().has_edge(to, v)) continue;
        two[v] = from;
      }
      return;
    }
    case VivMsg::Kind::kSampleRequest: {
      msg.accum_cost += net_.link_cost(from, to);  // forward-path cost
      const auto idx = static_cast<std::size_t>(msg.route_idx);
      if (idx + 1 < msg.route.size() && msg.route[idx + 1] == to) ++msg.route_idx;
      if (msg.route_idx < static_cast<int>(msg.route.size()) - 1) {
        const NodeId next = msg.route[static_cast<std::size_t>(msg.route_idx) + 1];
        net_.send(to, next, std::move(msg));
        return;
      }
      // At the target: reply with coordinates, confidence and measured cost.
      VivMsg r;
      r.kind = VivMsg::Kind::kSampleReply;
      r.origin = to;
      r.target = msg.origin;
      r.route.assign(msg.route.rbegin(), msg.route.rend());
      r.route_idx = 0;
      r.accum_cost = msg.accum_cost;
      r.pos = pos_[static_cast<std::size_t>(to)];
      r.err = err_[static_cast<std::size_t>(to)];
      if (r.route.size() >= 2) {
        const NodeId next = r.route[1];  // read before the envelope is moved from
        net_.send(to, next, std::move(r));
      }
      return;
    }
    case VivMsg::Kind::kSampleReply: {
      const auto idx = static_cast<std::size_t>(msg.route_idx);
      if (idx + 1 < msg.route.size() && msg.route[idx + 1] == to) ++msg.route_idx;
      if (msg.route_idx < static_cast<int>(msg.route.size()) - 1) {
        const NodeId next = msg.route[static_cast<std::size_t>(msg.route_idx) + 1];
        net_.send(to, next, std::move(msg));
        return;
      }
      vivaldi_update(to, msg.pos, msg.err, msg.accum_cost);
      return;
    }
  }
}

void TwoHopVivaldi::vivaldi_update(NodeId u, const Vec& remote_pos, double remote_err,
                                   double cost) {
  if (cost <= 0.0) return;
  Vec& x = pos_[static_cast<std::size_t>(u)];
  double& eu = err_[static_cast<std::size_t>(u)];
  const double dist = std::max(x.distance(remote_pos), 1e-9);
  const double denom = eu + remote_err;
  const double w = denom > 0.0 ? eu / denom : 0.0;  // sample confidence
  const double es = std::fabs(dist - cost) / cost;  // relative sample error
  eu = es * config_.ce * w + eu * (1.0 - config_.ce * w);
  const double delta = config_.cc * w;
  x += delta * (cost - dist) * (x - remote_pos).unit();
}

int TwoHopVivaldi::distinct_nodes_stored(NodeId u) const {
  std::vector<NodeId> known;
  for (const graph::Edge& e : net_.alive_neighbors(u)) known.push_back(e.to);
  for (const auto& [id, via] : two_hop_[static_cast<std::size_t>(u)]) {
    (void)via;
    known.push_back(id);
  }
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());
  return static_cast<int>(known.size());
}

}  // namespace gdvr::vivaldi
