// 2-hop Vivaldi baseline (paper Section I and Figures 2, 12, 14).
//
// The paper enhances the classic Vivaldi network coordinate algorithm with
// just enough routing support for a wireless network: in every adjustment
// period a node samples random members of its 1-hop neighbor set 100 times
// and of its 2-hop neighbor set 100 times, measuring the routing cost of
// each sample and applying the standard Vivaldi spring update with
// confidence weighting. Two-hop sets are learned from periodic neighbor-list
// broadcasts; two-hop samples are relayed through a shared physical
// neighbor. This reproduces the paper's observation that 2-hop Vivaldi
// preserves local relationships but collapses global ones -- and that it
// costs far more storage and messages per period than VPoD.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"
#include "sim/netsim.hpp"

namespace gdvr::vivaldi {

using NodeId = int;

struct VivMsg {
  enum class Kind { kNbrList, kSampleRequest, kSampleReply };
  Kind kind = Kind::kNbrList;
  NodeId origin = -1;
  NodeId target = -1;
  std::vector<NodeId> route;  // fixed route for relayed samples (origin first)
  int route_idx = 0;
  double accum_cost = 0.0;  // forward-path cost (the sampled routing cost)
  Vec pos;                  // replier's coordinates
  double err = 1.0;         // replier's confidence
  std::vector<NodeId> nbr_ids;  // payload of kNbrList
};

struct VivaldiConfig {
  int dim = 3;
  double cc = 0.25;  // Vivaldi's delta scaling
  double ce = 0.25;  // Vivaldi's error smoothing
  double period_s = 26.0;  // one adjustment period (compare: VPoD Tj + Ta)
  int one_hop_samples = 100;
  int two_hop_samples = 100;
  std::uint64_t seed = 7;
};

class TwoHopVivaldi {
 public:
  TwoHopVivaldi(sim::NetSim<VivMsg>& net, const VivaldiConfig& config);

  // Installs the receiver and starts periodic sampling at every alive node
  // (staggered within the first second).
  void start();

  const Vec& position(NodeId u) const { return pos_[static_cast<std::size_t>(u)]; }
  std::vector<Vec> positions() const { return pos_; }
  double error(NodeId u) const { return err_[static_cast<std::size_t>(u)]; }
  int completed_periods(NodeId u) const { return periods_[static_cast<std::size_t>(u)]; }

  // Storage metric: |1-hop ∪ 2-hop neighbor set| (what the node must know to
  // sample and to run GDV_basic on Vivaldi coordinates).
  int distinct_nodes_stored(NodeId u) const;

 private:
  void begin_period(NodeId u);
  void do_sample(NodeId u);
  void handle(NodeId to, NodeId from, VivMsg msg);
  void vivaldi_update(NodeId u, const Vec& remote_pos, double remote_err, double cost);

  sim::NetSim<VivMsg>& net_;
  VivaldiConfig config_;
  std::vector<Vec> pos_;
  std::vector<double> err_;
  std::vector<int> periods_;
  // Two-hop map: target -> relay neighbor (first seen wins; refreshed each period).
  std::vector<std::map<NodeId, NodeId>> two_hop_;
  // One stream per node: sampling draws happen inside per-node events, so
  // they must not depend on the global event interleaving (DESIGN.md §4g).
  std::vector<Rng> rng_;
  Rng& rng_at(NodeId u) { return rng_[static_cast<std::size_t>(u)]; }
};

}  // namespace gdvr::vivaldi
