#include "eval/watchdog.hpp"

#include <algorithm>

#include "eval/protocol_runner.hpp"

namespace gdvr::eval {

ConvergenceWatchdog::ConvergenceWatchdog(VpodRunner& runner, const WatchdogConfig& config)
    : runner_(runner),
      config_(config),
      stuck_counts_(static_cast<std::size_t>(runner.net().size()), 0),
      failed_nodes_(static_cast<std::size_t>(runner.net().size()), false) {}

void ConvergenceWatchdog::start(sim::Time until) {
  sim::Simulator& sim = runner_.simulator();
  tick();  // baseline sampling starts immediately
  for (sim::Time at = sim.now() + config_.period_s; at <= until; at += config_.period_s)
    sim.schedule_at(at, [this] { tick(); });
  sim.schedule_at(until + 1e-9, [this] { finish(); });
}

const InvariantReport& ConvergenceWatchdog::tick() {
  InvariantOptions opts = config_.audit;
  // Fresh pair sample per audit, deterministic for a fixed base seed.
  opts.seed = config_.audit.seed + static_cast<std::uint64_t>(history_.size());
  history_.push_back(audit_invariants(runner_, opts));
  const InvariantReport& r = history_.back();

  // --- steady-state baseline ----------------------------------------------
  if (baseline_success_ < 0.0 &&
      static_cast<int>(history_.size()) >= std::max(config_.baseline_audits, 1)) {
    double sum = 0.0;
    for (int i = 0; i < std::max(config_.baseline_audits, 1); ++i)
      sum += history_[static_cast<std::size_t>(i)].routing_success;
    baseline_success_ = sum / static_cast<double>(std::max(config_.baseline_audits, 1));
  }

  // --- time-to-recover episodes -------------------------------------------
  if (baseline_success_ >= 0.0) {
    const bool below = r.routing_success < baseline_success_ - config_.tolerance;
    if (below && !degraded_) {
      degraded_ = true;
      episode_start_ = r.at;
    } else if (!below && degraded_) {
      degraded_ = false;
      recovery_times_.push_back(r.at - episode_start_);
    }
  }

  // --- stuck-node repair ----------------------------------------------------
  const mdt::Net& net = runner_.net();
  mdt::MdtOverlay& overlay = runner_.protocol().overlay();
  const int grace = std::max(config_.stuck_grace, 1);
  for (int u = 0; u < net.size(); ++u) {
    const auto ui = static_cast<std::size_t>(u);
    const bool stuck = net.alive(u) && overlay.active(u) &&
                       (!overlay.joined(u) || overlay.dt_neighbors(u).empty());
    if (!stuck) {
      stuck_counts_[ui] = 0;
      failed_nodes_[ui] = false;
      continue;
    }
    ++stuck_counts_[ui];
    // Every `grace` consecutive stuck audits, fire a targeted re-sync; a
    // node that rode through an entire resync cycle without recovering is an
    // audit failure (counted once per continuous stuck stretch).
    if (stuck_counts_[ui] % grace == 0) {
      overlay.force_resync(u);
      ++resyncs_;
    }
    if (stuck_counts_[ui] >= 2 * grace && !failed_nodes_[ui]) {
      failed_nodes_[ui] = true;
      ++audit_failures_;
    }
  }
  return r;
}

void ConvergenceWatchdog::finish() {
  if (finished_) return;
  finished_ = true;
  if (degraded_) {
    // Supervision ended inside an open episode: delivery never recovered.
    ++audit_failures_;
    degraded_ = false;
  }
}

double ConvergenceWatchdog::worst_recovery_s() const {
  double worst = 0.0;
  for (double t : recovery_times_) worst = std::max(worst, t);
  return worst;
}

void ConvergenceWatchdog::export_metrics(obs::Registry& reg) const {
  reg.gauge("watchdog.baseline_success").set(std::max(baseline_success_, 0.0));
  reg.counter("watchdog.audits").set(history_.size());
  reg.counter("watchdog.episodes").set(recovery_times_.size());
  reg.gauge("watchdog.worst_recovery_s").set(worst_recovery_s());
  reg.counter("watchdog.resyncs").set(resyncs_);
  reg.counter("watchdog.audit_failures").set(audit_failures_);
}

}  // namespace gdvr::eval
