// Routing-performance evaluation (paper Section IV-A).
//
// For the hop-count metric the criterion is routing stretch: selected-route
// hops divided by shortest-path hops. For ETX it is the expected number of
// transmissions per delivery: the sum of per-link ETX values along the
// selected route. Results are averaged over source-destination pairs --
// exhaustively, or over a deterministic sample for large networks.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <string>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "radio/topology.hpp"
#include "routing/routers.hpp"

namespace gdvr::eval {

struct RoutingStats {
  double stretch = 0.0;            // hop metric: mean(selected hops / optimal hops)
  double transmissions = 0.0;      // ETX metric: mean selected-path ETX (delivered only)
  double optimal_transmissions = 0.0;  // ETX metric: mean shortest-path ETX
  double success_rate = 1.0;
  int pairs_evaluated = 0;
};

// Publishes a RoutingStats into the metric registry as gauges named
// "<prefix>.delivery_rate", "<prefix>.stretch", "<prefix>.transmissions",
// "<prefix>.optimal_transmissions" and "<prefix>.pairs" -- the hook the
// scenario matrix and scenario benches use to report per-scenario routing
// quality through the standard export path (JSON/CSV, GDVR_METRICS_OUT).
void export_routing_stats(obs::Registry& reg, const std::string& prefix,
                          const RoutingStats& stats);

// Deterministic sample of ordered (s, t) pairs among `eligible` nodes.
// count <= 0 selects all ordered pairs.
std::vector<std::pair<int, int>> sample_pairs(const std::vector<int>& eligible, int count,
                                              std::uint64_t seed);

// All alive node ids of a view (or all ids when no liveness info).
std::vector<int> alive_nodes(const routing::MdtView& view);

using RouteFn = std::function<routing::RouteResult(int, int)>;

// Evaluates `route` over the pairs. `metric` carries the metric costs the
// router reports; `hops` is the unit-cost adjacency for optimal hop counts.
RoutingStats evaluate_router(const RouteFn& route, const graph::Graph& metric,
                             const graph::Graph& hops, bool use_etx,
                             const std::vector<std::pair<int, int>>& pairs);

// Convenience wrappers used by the figure benches ---------------------------

struct EvalOptions {
  int pair_samples = 500;  // <= 0: exhaustive
  std::uint64_t seed = 1;
  bool use_etx = false;
  // When non-empty, restrict sources/destinations to these nodes (e.g. the
  // largest alive component after churn). Otherwise all alive nodes.
  std::vector<int> eligible;
};

// Largest connected component among the view's alive nodes (in the metric
// graph) -- the eligible set for post-churn evaluation.
std::vector<int> largest_alive_component(const routing::MdtView& view);

RoutingStats eval_gdv(const routing::MdtView& view, const radio::Topology& topo,
                      const EvalOptions& opts);
RoutingStats eval_gdv_basic(const routing::MdtView& view, const radio::Topology& topo,
                            const EvalOptions& opts);
// MDT-greedy on actual node locations (centralized construction).
RoutingStats eval_mdt_actual(const radio::Topology& topo, const EvalOptions& opts);
// NADV on actual node locations.
RoutingStats eval_nadv_actual(const radio::Topology& topo, const EvalOptions& opts);
// GDV over arbitrary externally produced coordinates (e.g. 2-hop Vivaldi):
// centralized MDT over those coordinates.
RoutingStats eval_gdv_on_positions(std::span<const Vec> positions, const radio::Topology& topo,
                                   const EvalOptions& opts);

}  // namespace gdvr::eval
