// Drives the VPoD / 2-hop-Vivaldi protocols over a topology inside the
// discrete-event simulator and exposes per-adjustment-period snapshots --
// the common skeleton of every time-series figure in the paper.
#pragma once

#include <memory>

#include "eval/routing_eval.hpp"
#include "obs/metrics.hpp"
#include "radio/topology.hpp"
#include "routing/mdt_view.hpp"
#include "sim/faults.hpp"
#include "sim/reliable.hpp"
#include "sim/simulator.hpp"
#include "vivaldi/vivaldi.hpp"
#include "vpod/vpod.hpp"

namespace gdvr::eval {

// Per-hop message delay range (paper: "random message delivery times ...
// sampled from a uniform distribution over a specified time interval").
struct DelayRange {
  double min_s = 0.01;
  double max_s = 0.1;
};

class VpodRunner {
 public:
  // `metric` selects the routing metric VPoD embeds (any positive additive
  // metric from the topology: hop count, ETX, ETT, energy).
  // `initially_dead` nodes do not participate from the start; churn
  // experiments bring them in later with protocol().join_node().
  VpodRunner(const radio::Topology& topo, radio::Metric metric, const vpod::VpodConfig& config,
             DelayRange delays = {}, std::uint64_t net_seed = 99,
             const std::vector<int>& initially_dead = {});
  // Convenience: the paper's two headline metrics.
  VpodRunner(const radio::Topology& topo, bool use_etx, const vpod::VpodConfig& config,
             DelayRange delays = {}, std::uint64_t net_seed = 99,
             const std::vector<int>& initially_dead = {})
      : VpodRunner(topo, use_etx ? radio::Metric::kEtx : radio::Metric::kHopCount, config,
                   delays, net_seed, initially_dead) {}

  // Advances the simulation to the boundary where (approximately) every node
  // has completed `k` adjustment periods. Monotone: k must not decrease.
  void run_to_period(int k);

  // Makes the control plane lossy: every protocol message over link (u, v)
  // is dropped with probability 1 - PRR(u, v). Call before run_to_period.
  void enable_control_loss() { net_->set_loss_from_etx(topo_.etx); }

  // Opts the MDT join / neighbor-set exchange into per-hop ACK + retransmit
  // delivery (sim/reliable.hpp), so a lossy or fault-injected control plane
  // degrades the protocol gracefully instead of stalling it.
  void enable_reliable_sync(const sim::ReliableConfig& config = {});
  const sim::ReliableTransport<mdt::Envelope>* reliable() const { return reliable_.get(); }

  // Fault injection (sim/faults.hpp): crash/recover are bound to the
  // protocol lifecycle (fail_node / join_node), link and loss knobs to the
  // NetSim. Install any FaultSchedule before or between run_to_period calls.
  sim::FaultActions fault_actions();
  sim::FaultInjector& faults();
  // Undirected physical edges (u < v) of the topology, as FaultActions use.
  std::vector<std::pair<int, int>> physical_edges() const;

  vpod::Vpod& protocol() { return *vpod_; }
  const vpod::Vpod& protocol() const { return *vpod_; }
  mdt::Net& net() { return *net_; }
  const mdt::Net& net() const { return *net_; }
  sim::Simulator& simulator() { return sim_; }
  const radio::Topology& topology() const { return topo_; }
  radio::Metric metric() const { return metric_; }
  bool use_etx() const { return metric_ == radio::Metric::kEtx; }

  // Snapshot of the distributed MDT state for routing evaluation.
  routing::MdtView snapshot() const;
  // Average over alive nodes of the distinct-nodes-stored metric.
  double avg_storage() const;
  // Control messages per alive node since the previous call (per-period cost).
  double messages_per_node_since_mark();

  // Dumps the run's observability counters into `reg`: per-protocol totals
  // (MDT sync requests/failures, recompute calls/rebuilds, VPoD adjustments,
  // NetSim transmissions/losses, reliable-transport retransmits) plus
  // per-node distributions (messages sent, distinct nodes stored) as
  // histograms. Idempotent snapshot: counters are set, not incremented, so
  // exporting twice into the same registry reflects the latest state.
  void export_metrics(obs::Registry& reg) const;

 private:
  const radio::Topology& topo_;
  radio::Metric metric_;
  sim::Simulator sim_;
  std::unique_ptr<mdt::Net> net_;
  std::unique_ptr<vpod::Vpod> vpod_;
  std::unique_ptr<sim::ReliableTransport<mdt::Envelope>> reliable_;
  std::unique_ptr<sim::FaultInjector> faults_;
  double period_len_;
  double start_offset_;
  std::uint64_t msg_mark_ = 0;
};

class VivaldiRunner {
 public:
  VivaldiRunner(const radio::Topology& topo, bool use_etx, const vivaldi::VivaldiConfig& config,
                DelayRange delays = {}, std::uint64_t net_seed = 99);

  void run_to_period(int k);

  vivaldi::TwoHopVivaldi& protocol() { return *viv_; }
  sim::NetSim<vivaldi::VivMsg>& net() { return *net_; }
  std::vector<Vec> positions() const { return viv_->positions(); }
  double avg_storage() const;
  double messages_per_node_since_mark();

 private:
  const radio::Topology& topo_;
  sim::Simulator sim_;
  std::unique_ptr<sim::NetSim<vivaldi::VivMsg>> net_;
  std::unique_ptr<vivaldi::TwoHopVivaldi> viv_;
  double period_len_;
  std::uint64_t msg_mark_ = 0;
};

}  // namespace gdvr::eval
