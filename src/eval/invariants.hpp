// Invariant-checking harness for fault runs (chaos testing).
//
// While faults are being injected -- and especially after they cease -- the
// distributed MDT/VPoD state must hold three properties the routing layer
// depends on:
//
//  1. DT-neighbor accuracy: the distributed neighbor sets agree with the
//     centralized Delaunay triangulation of the *current* virtual positions
//     of alive, joined nodes (the structure that gives MDT-greedy its
//     delivery guarantee);
//  2. virtual-link liveness: every stored virtual-link path is composed of
//     alive nodes and usable physical links (stale paths through crashed
//     nodes or partitioned links mean undeliverable control traffic);
//  3. routing health: GDV over the current snapshot still delivers, with
//     bounded stretch / transmissions.
//
// `audit_invariants` computes one report; `InvariantAuditor` samples reports
// periodically on the simulator clock, building the time series the chaos
// test and bench/ablation_faults assert on.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/topology.hpp"
#include "sim/simulator.hpp"
#include "vpod/vpod.hpp"

namespace gdvr::eval {

struct InvariantReport {
  sim::Time at = 0.0;
  int alive_nodes = 0;
  int joined_nodes = 0;       // alive nodes that completed their MDT join
  // Fraction of centralized-DT adjacencies present in the distributed
  // neighbor sets (recall, over alive joined nodes). 1.0 when fewer than two
  // nodes qualify.
  double dt_accuracy = 1.0;
  // Fraction of stored multi-hop virtual-link paths whose every relay is
  // alive and every consecutive hop a usable physical link.
  double link_liveness = 1.0;
  int virtual_links = 0;      // paths inspected for link_liveness
  // GDV routing over the snapshot, sources/destinations restricted to the
  // largest alive component.
  double routing_success = 0.0;
  double stretch = 0.0;          // hop metric runs
  double transmissions = 0.0;    // ETX metric runs
};

struct InvariantOptions {
  int pair_samples = 200;  // <= 0: exhaustive
  std::uint64_t seed = 1;
};

class VpodRunner;

// One audit of the runner's current protocol state.
InvariantReport audit_invariants(const VpodRunner& runner, const InvariantOptions& opts = {});

// Periodic audits on the simulation clock. Reports accumulate in history();
// worst-case accessors summarize a whole fault run.
class InvariantAuditor {
 public:
  InvariantAuditor(VpodRunner& runner, const InvariantOptions& opts = {});

  // Audits every `period_s` seconds from now until `until` (inclusive of the
  // first sample at now + period_s).
  void start(double period_s, sim::Time until);
  // One immediate audit appended to the history.
  const InvariantReport& audit_now();

  const std::vector<InvariantReport>& history() const { return history_; }
  double min_dt_accuracy() const;
  double min_link_liveness() const;
  double min_routing_success() const;

 private:
  VpodRunner& runner_;
  InvariantOptions opts_;
  std::vector<InvariantReport> history_;
};

}  // namespace gdvr::eval
