// Convergence watchdog: live self-healing supervision for churn runs.
//
// The invariant auditor (eval/invariants.hpp) *measures* protocol health;
// the watchdog closes the loop. Each adjustment period it audits the running
// protocol, tracks delivery against a pre-event steady-state baseline, and
//
//  * measures time-to-recover: every excursion of routing success below
//    (baseline - tolerance) opens a degradation episode, and the episode's
//    duration -- until success is back within tolerance -- is recorded;
//  * repairs stuck nodes: a node that stays alive-but-unjoined (or joined
//    with an empty DT neighborhood) for `stuck_grace` consecutive audits
//    gets a targeted neighbor-set re-sync (MdtOverlay::force_resync) instead
//    of a full restart;
//  * flags audit failures: a node still stuck `stuck_grace` audits after its
//    re-sync, or an episode open at the end of supervision, counts as a
//    failure -- the soak harness asserts this stays zero.
//
// Everything is exported through the metric registry (export_metrics), so a
// soak run's health is inspectable with the same observability machinery as
// the paper-figure benches.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/invariants.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace gdvr::eval {

struct WatchdogConfig {
  double period_s = 26.0;   // audit cadence; one J+A cycle by default
  // Recovery band: recovered when routing success >= baseline - tolerance
  // (the acceptance bar: delivery within 2% of pre-event steady state).
  double tolerance = 0.02;
  // The first `baseline_audits` audits (taken before faults start) are
  // averaged into the steady-state baseline.
  int baseline_audits = 2;
  // Consecutive bad audits before a stuck node is force-resynced, and again
  // before a resynced-but-still-stuck node counts as an audit failure.
  int stuck_grace = 2;
  InvariantOptions audit;   // pair samples + seed for each audit
};

class ConvergenceWatchdog {
 public:
  ConvergenceWatchdog(VpodRunner& runner, const WatchdogConfig& config = {});

  // Audits every period_s from now until `until` (first sample at now).
  // Call at steady state, before installing fault schedules, so the baseline
  // audits measure the healthy protocol.
  void start(sim::Time until);
  // One immediate audit + repair pass (also the periodic tick body).
  const InvariantReport& tick();
  // Closes supervision: an episode still open counts as an audit failure.
  // Called automatically when the scheduled run passes `until`; idempotent.
  void finish();

  const std::vector<InvariantReport>& history() const { return history_; }
  double baseline_success() const { return baseline_success_; }
  // Duration of each completed degradation episode (seconds from the first
  // audit below the band to the first audit back inside it).
  const std::vector<double>& recovery_times() const { return recovery_times_; }
  double worst_recovery_s() const;
  std::uint64_t resyncs_triggered() const { return resyncs_; }
  // Unrecovered conditions: nodes stuck through a resync + episodes never
  // closed. The soak acceptance criterion is that this stays 0.
  std::uint64_t audit_failures() const { return audit_failures_; }

  // Gauges/counters: watchdog.baseline_success, watchdog.audits,
  // watchdog.episodes, watchdog.worst_recovery_s, watchdog.resyncs,
  // watchdog.audit_failures.
  void export_metrics(obs::Registry& reg) const;

 private:
  VpodRunner& runner_;
  WatchdogConfig config_;
  std::vector<InvariantReport> history_;
  std::vector<double> recovery_times_;
  double baseline_success_ = -1.0;   // < 0: still collecting baseline audits
  bool degraded_ = false;
  sim::Time episode_start_ = 0.0;
  // Per-node consecutive stuck-audit counts; negative after a resync fired
  // (counting down the post-resync grace).
  std::vector<int> stuck_counts_;
  std::vector<bool> failed_nodes_;   // already counted as audit failure
  std::uint64_t resyncs_ = 0;
  std::uint64_t audit_failures_ = 0;
  bool finished_ = false;
};

}  // namespace gdvr::eval
