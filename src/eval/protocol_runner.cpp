#include "eval/protocol_runner.hpp"

namespace gdvr::eval {

VpodRunner::VpodRunner(const radio::Topology& topo, radio::Metric metric_kind,
                       const vpod::VpodConfig& config, DelayRange delays, std::uint64_t net_seed,
                       const std::vector<int>& initially_dead)
    : topo_(topo), metric_(metric_kind) {
  // Engine seam: GDVR_SIM_ENGINE=sharded runs this simulation on the
  // conservative-parallel engine, partitioned by the spatial bucket grid.
  // Must precede start(): node-owned timers route through shard lanes.
  if (sim::engine_from_env() == sim::SimEngine::kSharded)
    sim_.configure_sharding(radio::spatial_shards(topo));
  const graph::Graph& metric = topo.metric_graph(metric_kind);
  net_ = std::make_unique<mdt::Net>(sim_, metric, delays.min_s, delays.max_s, net_seed);
  for (int u : initially_dead) net_->set_alive(u, false);
  vpod_ = std::make_unique<vpod::Vpod>(*net_, config);
  period_len_ = config.join_period_s + config.adjust_period_s;
  // Token flood + first-J-period stagger happens within ~0.5 s.
  start_offset_ = 0.5;
  vpod_->start(/*starting_node=*/0);
}

void VpodRunner::run_to_period(int k) {
  // Each node's cycle is one J period followed by one A period. Sampling at
  // the end of the J period *after* A period k matches the paper's
  // methodology ("the MDT protocols are then run one more time to update the
  // multi-hop DT"): positions reflect k adjustment periods and the DT has
  // been reconstructed over them. k = 0 samples freshly initialized
  // positions after the initial join.
  const double boundary = start_offset_ + vpod_->config().join_period_s +
                          static_cast<double>(k) * period_len_;
  sim_.run_until(boundary);
}

void VpodRunner::enable_reliable_sync(const sim::ReliableConfig& config) {
  if (reliable_) return;
  reliable_ = std::make_unique<sim::ReliableTransport<mdt::Envelope>>(
      *net_, config, [](int from, int to, std::uint64_t seq) { return mdt::make_ack(from, to, seq); });
  vpod_->overlay().use_reliable_transport(reliable_.get());
}

std::vector<std::pair<int, int>> VpodRunner::physical_edges() const {
  const graph::Graph& g = topo_.metric_graph(metric_);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < g.size(); ++u)
    for (const graph::Edge& e : g.neighbors(u))
      if (u < e.to) edges.emplace_back(u, e.to);
  return edges;
}

sim::FaultActions VpodRunner::fault_actions() {
  sim::FaultActions a;
  a.crash = [this](int u) { vpod_->fail_node(u); };
  a.recover = [this](int u) { vpod_->join_node(u); };
  a.set_link_up = [this](int u, int v, bool up) { net_->set_link_up(u, v, up); };
  a.set_loss = [this](double p) { net_->set_fault_loss(p); };
  a.set_duplication = [this](double p) { net_->set_duplication(p); };
  a.set_delay_factor = [this](double f) { net_->set_delay_factor(f); };
  a.node_count = [this] { return net_->size(); };
  a.edges = [this] { return physical_edges(); };
  a.is_alive = [this](int u) { return net_->alive(u); };
  return a;
}

sim::FaultInjector& VpodRunner::faults() {
  if (!faults_) faults_ = std::make_unique<sim::FaultInjector>(sim_, fault_actions());
  return *faults_;
}

routing::MdtView VpodRunner::snapshot() const {
  return routing::snapshot_overlay(vpod_->overlay(), topo_.metric_graph(metric_));
}

double VpodRunner::avg_storage() const {
  const auto& overlay = vpod_->overlay();
  double total = 0.0;
  int count = 0;
  for (int u = 0; u < net_->size(); ++u) {
    if (!net_->alive(u) || !overlay.active(u)) continue;
    total += overlay.distinct_nodes_stored(u);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

double VpodRunner::messages_per_node_since_mark() {
  const std::uint64_t now = net_->total_messages_sent();
  const std::uint64_t delta = now - msg_mark_;
  msg_mark_ = now;
  int alive = 0;
  for (int u = 0; u < net_->size(); ++u)
    if (net_->alive(u)) ++alive;
  return alive > 0 ? static_cast<double>(delta) / alive : 0.0;
}

void VpodRunner::export_metrics(obs::Registry& reg) const {
  const mdt::MdtOverlay& overlay = vpod_->overlay();

  reg.counter("mdt.sync_requests").set(overlay.sync_stats().requests);
  reg.counter("mdt.sync_failures").set(overlay.sync_stats().failures);
  reg.counter("mdt.recompute_calls").set(overlay.recompute_stats().calls);
  reg.counter("mdt.recompute_rebuilds").set(overlay.recompute_stats().rebuilds);
  reg.counter("vpod.adjustments").set(vpod_->adjustments());

  const mdt::MdtOverlay::FdStats& fd = overlay.fd_stats();
  reg.counter("mdt.fd.heartbeats_sent").set(fd.heartbeats_sent);
  reg.counter("mdt.fd.evictions").set(fd.evictions);
  reg.counter("mdt.fd.tombstones_created").set(fd.tombstones_created);
  reg.counter("mdt.fd.gossip_suppressed").set(fd.gossip_suppressed);
  reg.counter("mdt.fd.stale_incarnation_dropped").set(fd.stale_incarnation_dropped);

  // Incremental local-DT maintenance: what the memo misses actually cost.
  const geom::DynamicDtStats dt = overlay.dt_stats();
  reg.counter("mdt.dt.inserts").set(dt.inserts);
  reg.counter("mdt.dt.removes").set(dt.removes);
  reg.counter("mdt.dt.moves").set(dt.moves);
  reg.counter("mdt.dt.move_early_outs").set(dt.move_early_outs);
  reg.counter("mdt.dt.full_rebuilds").set(dt.full_rebuilds);
  reg.counter("mdt.dt.walk_fallbacks").set(dt.walk_fallbacks);

  reg.counter("net.messages_sent").set(net_->total_messages_sent());
  reg.counter("net.messages_lost").set(net_->messages_lost());
  reg.counter("net.messages_expired").set(net_->messages_expired());
  reg.counter("net.fault_messages_lost").set(net_->fault_messages_lost());
  reg.counter("net.messages_duplicated").set(net_->messages_duplicated());

  if (reliable_) {
    const sim::ReliableStats& rs = reliable_->stats();
    reg.counter("reliable.sent").set(rs.sent);
    reg.counter("reliable.retransmissions").set(rs.retransmissions);
    reg.counter("reliable.acked").set(rs.acked);
    reg.counter("reliable.gave_up").set(rs.gave_up);
    reg.counter("reliable.acks_sent").set(rs.acks_sent);
    reg.counter("reliable.duplicates_suppressed").set(rs.duplicates_suppressed);
  }

  // Per-node distributions: registered both as per-node counters/gauges (for
  // drill-down) and as whole-network histograms (for summary percentiles).
  obs::Histogram& sent_hist = reg.histogram("node.messages_sent");
  obs::Histogram& storage_hist = reg.histogram("node.storage");
  for (int u = 0; u < net_->size(); ++u) {
    reg.counter("node.messages_sent", u).set(net_->messages_sent(u));
    if (!net_->alive(u) || !overlay.active(u)) continue;
    const double stored = overlay.distinct_nodes_stored(u);
    reg.gauge("node.storage", u).set(stored);
    sent_hist.observe(static_cast<double>(net_->messages_sent(u)));
    storage_hist.observe(stored);
  }
  reg.gauge("vpod.avg_storage").set(avg_storage());
}

// ---------------------------------------------------------------------------

VivaldiRunner::VivaldiRunner(const radio::Topology& topo, bool use_etx,
                             const vivaldi::VivaldiConfig& config, DelayRange delays,
                             std::uint64_t net_seed)
    : topo_(topo) {
  if (sim::engine_from_env() == sim::SimEngine::kSharded)
    sim_.configure_sharding(radio::spatial_shards(topo));
  const graph::Graph& metric = topo.metric_graph(use_etx);
  net_ = std::make_unique<sim::NetSim<vivaldi::VivMsg>>(sim_, metric, delays.min_s, delays.max_s,
                                                        net_seed);
  viv_ = std::make_unique<vivaldi::TwoHopVivaldi>(*net_, config);
  period_len_ = config.period_s;
  viv_->start();
}

void VivaldiRunner::run_to_period(int k) {
  sim_.run_until(1.0 + static_cast<double>(k) * period_len_);
}

double VivaldiRunner::avg_storage() const {
  double total = 0.0;
  int count = 0;
  for (int u = 0; u < net_->size(); ++u) {
    if (!net_->alive(u)) continue;
    total += viv_->distinct_nodes_stored(u);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

double VivaldiRunner::messages_per_node_since_mark() {
  const std::uint64_t now = net_->total_messages_sent();
  const std::uint64_t delta = now - msg_mark_;
  msg_mark_ = now;
  int alive = 0;
  for (int u = 0; u < net_->size(); ++u)
    if (net_->alive(u)) ++alive;
  return alive > 0 ? static_cast<double>(delta) / alive : 0.0;
}

}  // namespace gdvr::eval
