#include "eval/routing_eval.hpp"

#include <algorithm>
#include <map>

#include "graph/csr.hpp"

namespace gdvr::eval {

std::vector<std::pair<int, int>> sample_pairs(const std::vector<int>& eligible, int count,
                                              std::uint64_t seed) {
  std::vector<std::pair<int, int>> pairs;
  const int n = static_cast<int>(eligible.size());
  if (n < 2) return pairs;
  if (count <= 0 || static_cast<long>(count) >= static_cast<long>(n) * (n - 1)) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        if (i != j) pairs.emplace_back(eligible[static_cast<std::size_t>(i)],
                                       eligible[static_cast<std::size_t>(j)]);
    return pairs;
  }
  Rng rng(seed);
  pairs.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    const int i = rng.uniform_index(n);
    int j = rng.uniform_index(n - 1);
    if (j >= i) ++j;
    pairs.emplace_back(eligible[static_cast<std::size_t>(i)], eligible[static_cast<std::size_t>(j)]);
  }
  return pairs;
}

void export_routing_stats(obs::Registry& reg, const std::string& prefix,
                          const RoutingStats& stats) {
  reg.gauge(prefix + ".delivery_rate").set(stats.success_rate);
  reg.gauge(prefix + ".stretch").set(stats.stretch);
  reg.gauge(prefix + ".transmissions").set(stats.transmissions);
  reg.gauge(prefix + ".optimal_transmissions").set(stats.optimal_transmissions);
  reg.gauge(prefix + ".pairs").set(static_cast<double>(stats.pairs_evaluated));
}

std::vector<int> alive_nodes(const routing::MdtView& view) {
  std::vector<int> ids;
  for (int u = 0; u < view.size(); ++u)
    if (view.is_alive(u)) ids.push_back(u);
  return ids;
}

std::vector<int> largest_alive_component(const routing::MdtView& view) {
  // BFS over alive nodes only.
  const graph::Graph& g = *view.metric;
  std::vector<int> comp(static_cast<std::size_t>(g.size()), -1);
  std::vector<int> best;
  for (int s = 0; s < g.size(); ++s) {
    if (!view.is_alive(s) || comp[static_cast<std::size_t>(s)] >= 0) continue;
    std::vector<int> members{s};
    comp[static_cast<std::size_t>(s)] = s;
    for (std::size_t i = 0; i < members.size(); ++i)
      for (const graph::Edge& e : g.neighbors(members[i]))
        if (view.is_alive(e.to) && comp[static_cast<std::size_t>(e.to)] < 0) {
          comp[static_cast<std::size_t>(e.to)] = s;
          members.push_back(e.to);
        }
    if (members.size() > best.size()) best = std::move(members);
  }
  std::sort(best.begin(), best.end());
  return best;
}

RoutingStats evaluate_router(const RouteFn& route, const graph::Graph& metric,
                             const graph::Graph& hops, bool use_etx,
                             const std::vector<std::pair<int, int>>& pairs) {
  RoutingStats stats;
  if (pairs.empty()) return stats;

  // Cache optimal distances per source (hops for stretch, ETX for optimal
  // transmissions). The per-source trees run over a frozen CSR snapshot of
  // the metric graph -- one flat copy up front, contiguous adjacency for the
  // many Dijkstra sweeps that follow.
  std::map<int, std::vector<int>> hop_cache;
  std::map<int, std::vector<double>> etx_cache;
  const graph::CsrGraph metric_csr(metric);
  graph::DijkstraWorkspace dijkstra_ws;

  double stretch_sum = 0.0, tx_sum = 0.0, opt_sum = 0.0;
  int delivered = 0, opt_count = 0;
  for (const auto& [s, t] : pairs) {
    ++stats.pairs_evaluated;
    if (use_etx) {
      auto it = etx_cache.find(s);
      if (it == etx_cache.end())
        it = etx_cache.emplace(s, graph::dijkstra(metric_csr, s, dijkstra_ws).dist).first;
      const double opt = it->second[static_cast<std::size_t>(t)];
      if (opt < graph::kInf) {
        opt_sum += opt;
        ++opt_count;
      }
    } else {
      auto it = hop_cache.find(s);
      if (it == hop_cache.end()) it = hop_cache.emplace(s, graph::bfs_hops(hops, s)).first;
    }

    const routing::RouteResult r = route(s, t);
    if (!r.success) continue;
    ++delivered;
    if (use_etx) {
      tx_sum += r.cost;
    } else {
      const int opt_hops = hop_cache[s][static_cast<std::size_t>(t)];
      if (opt_hops > 0) stretch_sum += static_cast<double>(r.transmissions) / opt_hops;
    }
  }

  stats.success_rate =
      static_cast<double>(delivered) / static_cast<double>(stats.pairs_evaluated);
  if (delivered > 0) {
    stats.stretch = stretch_sum / delivered;
    stats.transmissions = tx_sum / delivered;
  }
  if (opt_count > 0) stats.optimal_transmissions = opt_sum / opt_count;
  return stats;
}

namespace {

RoutingStats eval_view(const routing::MdtView& view, const radio::Topology& topo,
                       const EvalOptions& opts, bool basic) {
  const auto pairs = sample_pairs(opts.eligible.empty() ? alive_nodes(view) : opts.eligible,
                                  opts.pair_samples, opts.seed);
  const graph::Graph& metric = topo.metric_graph(opts.use_etx);
  RouteFn fn;
  if (basic)
    fn = [&](int s, int t) { return routing::route_gdv_basic(view, s, t); };
  else
    fn = [&](int s, int t) { return routing::route_gdv(view, s, t); };
  return evaluate_router(fn, metric, topo.hops, opts.use_etx, pairs);
}

}  // namespace

RoutingStats eval_gdv(const routing::MdtView& view, const radio::Topology& topo,
                      const EvalOptions& opts) {
  return eval_view(view, topo, opts, /*basic=*/false);
}

RoutingStats eval_gdv_basic(const routing::MdtView& view, const radio::Topology& topo,
                            const EvalOptions& opts) {
  return eval_view(view, topo, opts, /*basic=*/true);
}

RoutingStats eval_mdt_actual(const radio::Topology& topo, const EvalOptions& opts) {
  const graph::Graph& metric = topo.metric_graph(opts.use_etx);
  const routing::MdtView view = routing::centralized_mdt(topo.positions, metric);
  const auto pairs = sample_pairs(alive_nodes(view), opts.pair_samples, opts.seed);
  return evaluate_router([&](int s, int t) { return routing::route_mdt_greedy(view, s, t); },
                         metric, topo.hops, opts.use_etx, pairs);
}

RoutingStats eval_nadv_actual(const radio::Topology& topo, const EvalOptions& opts) {
  const graph::Graph& metric = topo.metric_graph(opts.use_etx);
  const routing::PlanarGraph planar(topo.positions, topo.hops);
  std::vector<int> ids(static_cast<std::size_t>(topo.size()));
  for (int i = 0; i < topo.size(); ++i) ids[static_cast<std::size_t>(i)] = i;
  const auto pairs = sample_pairs(ids, opts.pair_samples, opts.seed);
  return evaluate_router(
      [&](int s, int t) { return routing::route_nadv(topo.positions, metric, planar, s, t); },
      metric, topo.hops, opts.use_etx, pairs);
}

RoutingStats eval_gdv_on_positions(std::span<const Vec> positions, const radio::Topology& topo,
                                   const EvalOptions& opts) {
  const graph::Graph& metric = topo.metric_graph(opts.use_etx);
  const routing::MdtView view = routing::centralized_mdt(positions, metric);
  const auto pairs = sample_pairs(alive_nodes(view), opts.pair_samples, opts.seed);
  return evaluate_router([&](int s, int t) { return routing::route_gdv(view, s, t); }, metric,
                         topo.hops, opts.use_etx, pairs);
}

}  // namespace gdvr::eval
