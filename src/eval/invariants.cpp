#include "eval/invariants.hpp"

#include <algorithm>
#include <set>

#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "geom/delaunay.hpp"
#include "routing/mdt_view.hpp"

namespace gdvr::eval {

namespace {

// Recall of the centralized Delaunay adjacency (over current positions of
// alive joined nodes) within the distributed DT neighbor sets.
double dt_neighbor_accuracy(const mdt::MdtOverlay& overlay, const mdt::Net& net) {
  std::vector<int> ids;
  std::vector<Vec> pts;
  for (int u = 0; u < net.size(); ++u) {
    if (!net.alive(u) || !overlay.active(u) || !overlay.joined(u)) continue;
    ids.push_back(u);
    pts.push_back(overlay.position(u));
  }
  if (ids.size() < 2) return 1.0;
  const geom::DelaunayGraph ideal = geom::delaunay_graph(pts);
  const std::set<int> universe(ids.begin(), ids.end());
  std::size_t expected = 0;
  std::size_t matched = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::set<int> want;
    for (int v : ideal.nbrs[i]) want.insert(ids[static_cast<std::size_t>(v)]);
    expected += want.size();
    for (int y : overlay.dt_neighbors(ids[i]))
      if (universe.count(y) && want.count(y)) ++matched;
  }
  return expected == 0 ? 1.0 : static_cast<double>(matched) / static_cast<double>(expected);
}

// Every stored multi-hop virtual-link path must cross only alive nodes and
// usable links; a physical DT neighbor has no stored path and is skipped.
std::pair<int, int> virtual_link_liveness(const mdt::MdtOverlay& overlay, const mdt::Net& net) {
  int total = 0;
  int live = 0;
  for (int u = 0; u < net.size(); ++u) {
    if (!net.alive(u) || !overlay.active(u)) continue;
    for (int y : overlay.dt_neighbors(u)) {
      const std::vector<int>& path = overlay.virtual_path(u, y);
      if (path.size() < 2) continue;  // physical neighbor or unknown
      ++total;
      bool ok = true;
      for (std::size_t i = 0; i < path.size() && ok; ++i) {
        if (!net.alive(path[i])) ok = false;
        if (ok && i + 1 < path.size() && !net.link_usable(path[i], path[i + 1])) ok = false;
      }
      if (ok) ++live;
    }
  }
  return {live, total};
}

}  // namespace

InvariantReport audit_invariants(const VpodRunner& runner, const InvariantOptions& opts) {
  const mdt::MdtOverlay& overlay = runner.protocol().overlay();
  const mdt::Net& net = overlay.net();

  InvariantReport r;
  r.at = net.simulator().now();
  for (int u = 0; u < net.size(); ++u) {
    if (!net.alive(u)) continue;
    ++r.alive_nodes;
    if (overlay.active(u) && overlay.joined(u)) ++r.joined_nodes;
  }

  r.dt_accuracy = dt_neighbor_accuracy(overlay, net);
  const auto [live, total] = virtual_link_liveness(overlay, net);
  r.virtual_links = total;
  r.link_liveness = total == 0 ? 1.0 : static_cast<double>(live) / static_cast<double>(total);

  const routing::MdtView view = runner.snapshot();
  EvalOptions eval_opts;
  eval_opts.use_etx = runner.use_etx();
  eval_opts.pair_samples = opts.pair_samples;
  eval_opts.seed = opts.seed;
  eval_opts.eligible = largest_alive_component(view);
  const RoutingStats stats = eval_gdv(view, runner.topology(), eval_opts);
  r.routing_success = stats.success_rate;
  r.stretch = stats.stretch;
  r.transmissions = stats.transmissions;
  return r;
}

InvariantAuditor::InvariantAuditor(VpodRunner& runner, const InvariantOptions& opts)
    : runner_(runner), opts_(opts) {}

void InvariantAuditor::start(double period_s, sim::Time until) {
  sim::Simulator& sim = runner_.simulator();
  for (sim::Time at = sim.now() + period_s; at <= until; at += period_s) {
    sim.schedule_at(at, [this] { audit_now(); });
  }
}

const InvariantReport& InvariantAuditor::audit_now() {
  InvariantOptions opts = opts_;
  // Vary the pair sample per audit so a time series does not resample the
  // same pairs, while staying deterministic for a fixed base seed.
  opts.seed = opts_.seed + static_cast<std::uint64_t>(history_.size());
  history_.push_back(audit_invariants(runner_, opts));
  return history_.back();
}

double InvariantAuditor::min_dt_accuracy() const {
  double m = 1.0;
  for (const auto& r : history_) m = std::min(m, r.dt_accuracy);
  return m;
}

double InvariantAuditor::min_link_liveness() const {
  double m = 1.0;
  for (const auto& r : history_) m = std::min(m, r.link_liveness);
  return m;
}

double InvariantAuditor::min_routing_success() const {
  double m = 1.0;
  for (const auto& r : history_) m = std::min(m, r.routing_success);
  return m;
}

}  // namespace gdvr::eval
