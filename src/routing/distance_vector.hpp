// Classic distributed Distance Vector routing -- the protocol GDV's name and
// forwarding rule come from (paper Section I).
//
// Every node maintains a full routing table (cost + next hop per
// destination) and advertises its distance vector to physical neighbors,
// periodically and on change (triggered updates). With positive additive
// costs and a static topology this converges to the Dijkstra optimum; the
// price is Theta(N) state per node and Theta(N)-sized update messages --
// exactly the costs GDV avoids by computing distance vectors locally from
// virtual positions. bench/ablation_dv_vs_gdv quantifies the trade.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "routing/routers.hpp"
#include "sim/netsim.hpp"

namespace gdvr::routing {

using NodeId = int;

struct DvMsg {
  NodeId origin = -1;
  // The sender's current view: (destination, cost-from-sender).
  std::vector<std::pair<NodeId, double>> vector;
};

struct DvConfig {
  double advertise_period_s = 5.0;  // periodic full-table advertisement
  double triggered_delay_s = 0.2;   // coalescing delay for triggered updates
};

class DistanceVector {
 public:
  DistanceVector(sim::NetSim<DvMsg>& net, const DvConfig& config = {});

  // Installs the receiver and starts periodic advertising at every alive
  // node (staggered within the first advertise period).
  void start();

  // Routing-table queries.
  double cost(NodeId u, NodeId t) const;
  NodeId next_hop(NodeId u, NodeId t) const;
  int table_size(NodeId u) const {
    return static_cast<int>(tables_[static_cast<std::size_t>(u)].size());
  }
  // Storage metric comparable to MdtOverlay::distinct_nodes_stored: number
  // of distinct remote nodes in the routing table.
  int distinct_nodes_stored(NodeId u) const { return table_size(u) - 1; }

  // Follows next-hop pointers from s to t, accumulating real link costs.
  RouteResult route(NodeId s, NodeId t) const;

  // True iff every alive node's table matches its Dijkstra distances.
  // Diagnostic for *static* topologies (O(N * E log N)).
  bool converged() const;

 private:
  struct Entry {
    double cost = 0.0;
    NodeId next = -1;
  };

  void advertise(NodeId u);
  void schedule_triggered(NodeId u);
  void on_message(NodeId to, NodeId from, const DvMsg& msg);

  sim::NetSim<DvMsg>& net_;
  DvConfig config_;
  std::vector<std::map<NodeId, Entry>> tables_;
  std::vector<bool> dirty_;
  Rng rng_;
};

}  // namespace gdvr::routing
