// Classic distributed Distance Vector routing -- the protocol GDV's name and
// forwarding rule come from (paper Section I).
//
// Every node maintains a full routing table (cost + next hop per
// destination) and advertises its distance vector to physical neighbors,
// periodically and on change (triggered updates). With positive additive
// costs and a static topology this converges to the Dijkstra optimum; the
// price is Theta(N) state per node and Theta(N)-sized update messages --
// exactly the costs GDV avoids by computing distance vectors locally from
// virtual positions. bench/ablation_dv_vs_gdv quantifies the trade.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "routing/routers.hpp"
#include "sim/netsim.hpp"

namespace gdvr::routing {

using NodeId = int;

struct DvMsg {
  NodeId origin = -1;
  // The sender's current view: (destination, cost-from-sender).
  std::vector<std::pair<NodeId, double>> vector;
};

struct DvConfig {
  double advertise_period_s = 5.0;  // periodic full-table advertisement
  double triggered_delay_s = 0.2;   // coalescing delay for triggered updates
  // When true (default), triggered updates carry only the entries whose
  // (cost, next hop) changed since the node last advertised, instead of the
  // full Theta(N) table. The periodic advertisement stays full-table and
  // doubles as anti-entropy, so a neighbor that missed a delta (fresh link,
  // reboot) converges within one period -- the same guarantee as before.
  // routing_test pins table equivalence between the two modes.
  bool delta_updates = true;
};

class DistanceVector {
 public:
  DistanceVector(sim::NetSim<DvMsg>& net, const DvConfig& config = {});

  // Installs the receiver and starts periodic advertising at every alive
  // node (staggered within the first advertise period).
  void start();

  // Routing-table queries.
  double cost(NodeId u, NodeId t) const;
  NodeId next_hop(NodeId u, NodeId t) const;
  int table_size(NodeId u) const {
    return static_cast<int>(tables_[static_cast<std::size_t>(u)].size());
  }
  // Storage metric comparable to MdtOverlay::distinct_nodes_stored: number
  // of distinct remote nodes in the routing table.
  int distinct_nodes_stored(NodeId u) const { return table_size(u) - 1; }

  // Follows next-hop pointers from s to t, accumulating real link costs.
  RouteResult route(NodeId s, NodeId t) const;

  // True iff every alive node's table matches its Dijkstra distances.
  // Diagnostic for *static* topologies (O(N * E log N)).
  bool converged() const;

  // Update-traffic counters, summed over nodes. entries_* measure the
  // advertised (dest, cost) pairs -- the Theta(N)-vs-O(changed) message-size
  // trade delta_updates buys.
  struct DvStats {
    std::uint64_t full_adverts = 0;
    std::uint64_t delta_adverts = 0;
    std::uint64_t entries_full = 0;
    std::uint64_t entries_delta = 0;
  };
  DvStats dv_stats() const {
    DvStats total;
    for (const DvStats& s : stats_) {
      total.full_adverts += s.full_adverts;
      total.delta_adverts += s.delta_adverts;
      total.entries_full += s.entries_full;
      total.entries_delta += s.entries_delta;
    }
    return total;
  }

 private:
  struct Entry {
    double cost = 0.0;
    NodeId next = -1;
  };

  void advertise(NodeId u);
  void schedule_triggered(NodeId u);
  void on_message(NodeId to, NodeId from, const DvMsg& msg);

  sim::NetSim<DvMsg>& net_;
  DvConfig config_;
  std::vector<std::map<NodeId, Entry>> tables_;
  std::vector<bool> dirty_;
  // Destinations whose entry changed since this node's last advertisement;
  // a triggered delta update floods exactly these. Cleared by every
  // advertisement (a full table trivially covers the set).
  std::vector<std::set<NodeId>> changed_;
  std::vector<DvStats> stats_;  // per-node slots: writes stay lane-local
  Rng rng_;
};

}  // namespace gdvr::routing
