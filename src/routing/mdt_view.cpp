#include "routing/mdt_view.hpp"

#include <algorithm>

#include "geom/delaunay.hpp"
#include "obs/profile.hpp"

namespace gdvr::routing {

MdtView snapshot_overlay(const mdt::MdtOverlay& overlay, const graph::Graph& metric) {
  MdtView view;
  const int n = metric.size();
  view.metric = &metric;
  view.phys = graph::CsrGraph(metric);
  view.pos.resize(static_cast<std::size_t>(n));
  view.dt.resize(static_cast<std::size_t>(n));
  view.alive.resize(static_cast<std::size_t>(n), 1);
  for (int u = 0; u < n; ++u) {
    view.alive[static_cast<std::size_t>(u)] =
        overlay.active(u) && overlay.net().alive(u) ? 1 : 0;
    view.pos[static_cast<std::size_t>(u)] = overlay.position(u);
    if (!view.alive[static_cast<std::size_t>(u)]) continue;
    for (const mdt::NeighborView& nv : overlay.neighbor_views(u)) {
      if (!nv.is_dt || nv.is_phys) continue;
      MdtView::DtNbr d;
      d.id = nv.id;
      d.cost = nv.cost;
      d.path = overlay.virtual_path(u, nv.id);
      if (d.path.size() >= 2 && d.path.front() == u && d.path.back() == nv.id)
        view.dt[static_cast<std::size_t>(u)].push_back(std::move(d));
    }
  }
  return view;
}

MdtView centralized_mdt(std::span<const Vec> positions, const graph::Graph& metric) {
  GDVR_PROFILE_SCOPE("routing.centralized_mdt");
  MdtView view;
  const int n = metric.size();
  GDVR_ASSERT(static_cast<int>(positions.size()) == n);
  view.metric = &metric;
  view.phys = graph::CsrGraph(metric);
  view.pos.assign(positions.begin(), positions.end());
  view.dt.resize(static_cast<std::size_t>(n));
  view.alive.assign(static_cast<std::size_t>(n), 1);

  const geom::DelaunayGraph dtg = geom::delaunay_graph(positions);
  // Sources that own at least one non-physical DT edge need a shortest-path
  // tree to extract virtual-link paths and costs. Both the has_edge probes
  // and the per-source trees run over the frozen CSR snapshot.
  graph::DijkstraWorkspace ws;
  for (int u = 0; u < n; ++u) {
    bool needs_tree = false;
    for (int v : dtg.nbrs[static_cast<std::size_t>(u)])
      if (!view.phys.has_edge(u, v)) needs_tree = true;
    if (!needs_tree) continue;
    const graph::ShortestPaths& sp = graph::dijkstra(view.phys, u, ws);
    for (int v : dtg.nbrs[static_cast<std::size_t>(u)]) {
      if (view.phys.has_edge(u, v)) continue;
      if (sp.dist[static_cast<std::size_t>(v)] == graph::kInf) continue;
      MdtView::DtNbr d;
      d.id = v;
      d.cost = sp.dist[static_cast<std::size_t>(v)];
      d.path = graph::extract_path(sp, v);
      view.dt[static_cast<std::size_t>(u)].push_back(std::move(d));
    }
  }
  return view;
}

}  // namespace gdvr::routing
