#include "routing/distance_vector.hpp"

#include <cmath>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"

namespace gdvr::routing {

DistanceVector::DistanceVector(sim::NetSim<DvMsg>& net, const DvConfig& config)
    : net_(net),
      config_(config),
      tables_(static_cast<std::size_t>(net.size())),
      dirty_(static_cast<std::size_t>(net.size()), false),
      changed_(static_cast<std::size_t>(net.size())),
      stats_(static_cast<std::size_t>(net.size())),
      rng_(0xD57A7ull) {}

void DistanceVector::start() {
  net_.set_receiver([this](NodeId to, NodeId from, DvMsg m) { on_message(to, from, m); });
  for (NodeId u = 0; u < net_.size(); ++u) {
    if (!net_.alive(u)) continue;
    tables_[static_cast<std::size_t>(u)][u] = Entry{0.0, u};
    // Stagger initial advertisements, then advertise periodically.
    const double offset = rng_.uniform(0.0, config_.advertise_period_s);
    net_.simulator().schedule_in_node(u, offset, [this, u] { advertise(u); });
  }
}

void DistanceVector::advertise(NodeId u) {
  if (!net_.alive(u)) return;
  DvMsg m;
  m.origin = u;
  for (const auto& [dest, entry] : tables_[static_cast<std::size_t>(u)])
    m.vector.emplace_back(dest, entry.cost);
  net_.for_each_alive_neighbor(u, [&](const graph::Edge& e) { net_.send(u, e.to, m); });
  dirty_[static_cast<std::size_t>(u)] = false;
  changed_[static_cast<std::size_t>(u)].clear();  // the full table covers everything
  ++stats_[static_cast<std::size_t>(u)].full_adverts;
  stats_[static_cast<std::size_t>(u)].entries_full += m.vector.size();
  net_.simulator().schedule_in_node(u, config_.advertise_period_s, [this, u] { advertise(u); });
}

void DistanceVector::schedule_triggered(NodeId u) {
  if (dirty_[static_cast<std::size_t>(u)]) return;
  dirty_[static_cast<std::size_t>(u)] = true;
  net_.simulator().schedule_in_node(u, config_.triggered_delay_s, [this, u] {
    if (!dirty_[static_cast<std::size_t>(u)] || !net_.alive(u)) return;
    // Triggered advertisement (does not reset the periodic timer chain; the
    // duplicate periodic send is the protocol's normal redundancy). With
    // delta_updates only the entries that changed since the last
    // advertisement are sent -- O(changed) instead of Theta(N); absence of a
    // destination never carries meaning for the receiver, so the two message
    // shapes are interchangeable on the wire.
    DvMsg m;
    m.origin = u;
    const auto& table = tables_[static_cast<std::size_t>(u)];
    std::set<NodeId>& changed = changed_[static_cast<std::size_t>(u)];
    if (config_.delta_updates) {
      for (NodeId dest : changed) {
        const auto it = table.find(dest);
        if (it != table.end()) m.vector.emplace_back(dest, it->second.cost);
      }
      ++stats_[static_cast<std::size_t>(u)].delta_adverts;
      stats_[static_cast<std::size_t>(u)].entries_delta += m.vector.size();
    } else {
      for (const auto& [dest, entry] : table) m.vector.emplace_back(dest, entry.cost);
      ++stats_[static_cast<std::size_t>(u)].full_adverts;
      stats_[static_cast<std::size_t>(u)].entries_full += m.vector.size();
    }
    changed.clear();
    if (!m.vector.empty())
      net_.for_each_alive_neighbor(u, [&](const graph::Edge& e) { net_.send(u, e.to, m); });
    dirty_[static_cast<std::size_t>(u)] = false;
  });
}

void DistanceVector::on_message(NodeId to, NodeId from, const DvMsg& msg) {
  if (!net_.alive(to)) return;
  const double link = net_.link_cost(to, from);
  if (!(link < graph::kInf)) return;
  auto& table = tables_[static_cast<std::size_t>(to)];
  bool changed = false;
  for (const auto& [dest, remote_cost] : msg.vector) {
    if (dest == to) continue;
    const double candidate = link + remote_cost;
    auto it = table.find(dest);
    if (it == table.end() || candidate < it->second.cost - 1e-12 ||
        (it->second.next == from && candidate > it->second.cost + 1e-12)) {
      // Better path, or our current path through `from` got worse.
      table[dest] = Entry{candidate, from};
      changed_[static_cast<std::size_t>(to)].insert(dest);
      changed = true;
    }
  }
  if (changed) schedule_triggered(to);
}

double DistanceVector::cost(NodeId u, NodeId t) const {
  const auto& table = tables_[static_cast<std::size_t>(u)];
  auto it = table.find(t);
  return it == table.end() ? graph::kInf : it->second.cost;
}

NodeId DistanceVector::next_hop(NodeId u, NodeId t) const {
  const auto& table = tables_[static_cast<std::size_t>(u)];
  auto it = table.find(t);
  return it == table.end() ? -1 : it->second.next;
}

RouteResult DistanceVector::route(NodeId s, NodeId t) const {
  RouteResult res;
  obs::PacketTrace trace(s, t, &res.success);
  int cur = s;
  const int budget = 4 * net_.size() + 16;
  while (cur != t) {
    if (res.transmissions >= budget) return res;
    const NodeId next = next_hop(cur, t);
    if (next < 0 || next == cur || !net_.alive(next)) return res;
    const double c = net_.link_cost(cur, next);
    if (!(c < graph::kInf)) return res;
    // A table-driven hop is the protocol's primary mode; the estimate is the
    // node's current table cost to the destination.
    obs::trace_hop(cur, next, obs::HopMode::kGreedy, cost(cur, t));
    if (res.path.empty()) res.path.push_back(cur);
    res.path.push_back(next);
    res.cost += c;
    ++res.transmissions;
    cur = next;
  }
  res.success = true;
  return res;
}

bool DistanceVector::converged() const {
  // Freeze the link graph once; the ground-truth check runs one Dijkstra per
  // alive node over the same adjacency.
  const graph::CsrGraph links(net_.links());
  graph::DijkstraWorkspace ws;
  for (NodeId u = 0; u < net_.size(); ++u) {
    if (!net_.alive(u)) continue;
    const auto& sp = graph::dijkstra(links, u, ws);
    for (NodeId t = 0; t < net_.size(); ++t) {
      if (!net_.alive(t)) continue;
      const double truth = sp.dist[static_cast<std::size_t>(t)];
      const double mine = cost(u, t);
      if (truth == graph::kInf && mine == graph::kInf) continue;
      if (std::fabs(truth - mine) > 1e-9) return false;
    }
  }
  return true;
}

}  // namespace gdvr::routing
