#include "routing/planar.hpp"

#include <algorithm>
#include <cmath>

namespace gdvr::routing {

PlanarGraph::PlanarGraph(std::span<const Vec> positions, const graph::Graph& links)
    : pos_(positions.begin(), positions.end()),
      adj_(static_cast<std::size_t>(links.size())),
      angle_(static_cast<std::size_t>(links.size())) {
  const int n = links.size();
  GDVR_ASSERT(n == 0 || pos_[0].dim() == 2);
  for (int u = 0; u < n; ++u) {
    for (const graph::Edge& e : links.neighbors(u)) {
      const int v = e.to;
      if (v < u) continue;  // handle each undirected pair once
      // Gabriel test: keep iff no witness inside the circle with diameter uv.
      const Vec mid = (pos_[static_cast<std::size_t>(u)] + pos_[static_cast<std::size_t>(v)]) * 0.5;
      const double r2 = pos_[static_cast<std::size_t>(u)].distance2(mid);
      bool witnessed = false;
      auto check = [&](int w) {
        if (w == u || w == v) return;
        if (pos_[static_cast<std::size_t>(w)].distance2(mid) < r2 * (1.0 - 1e-12)) witnessed = true;
      };
      for (const graph::Edge& we : links.neighbors(u)) check(we.to);
      if (!witnessed)
        for (const graph::Edge& we : links.neighbors(v)) check(we.to);
      if (witnessed) continue;
      adj_[static_cast<std::size_t>(u)].push_back(v);
      adj_[static_cast<std::size_t>(v)].push_back(u);
    }
  }
  for (int u = 0; u < n; ++u) {
    auto& a = adj_[static_cast<std::size_t>(u)];
    std::sort(a.begin(), a.end(), [&](int x, int y) { return angle_from(u, x) < angle_from(u, y); });
    auto& angles = angle_[static_cast<std::size_t>(u)];
    angles.reserve(a.size());
    for (int v : a) angles.push_back(angle_from(u, v));
  }
}

bool PlanarGraph::has_edge(int u, int v) const {
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::find(a.begin(), a.end(), v) != a.end();
}

double PlanarGraph::angle_from(int u, int v) const {
  const Vec d = pos_[static_cast<std::size_t>(v)] - pos_[static_cast<std::size_t>(u)];
  return std::atan2(d[1], d[0]);
}

int PlanarGraph::next_ccw(int u, double ref_angle) const {
  const auto& a = adj_[static_cast<std::size_t>(u)];
  if (a.empty()) return -1;
  const auto& angles = angle_[static_cast<std::size_t>(u)];
  // First neighbor with angle strictly greater than ref (wrapping around).
  for (std::size_t i = 0; i < a.size(); ++i)
    if (angles[i] > ref_angle + 1e-12) return a[i];
  return a[0];
}

}  // namespace gdvr::routing
