// A routing-time snapshot of per-node MDT state: positions, DT neighbor sets
// with routing costs, and the physical paths of virtual links.
//
// Two producers:
//  * snapshot_overlay -- extracts the state the distributed MDT/VPoD
//    protocols actually built (what "GDV on VPoD" routes with);
//  * centralized_mdt -- builds the same view offline from a set of positions
//    (used for the "MDT on actual locations" baseline and for "GDV on
//    Vivaldi", where no distributed MDT ran over those coordinates).
#pragma once

#include <span>
#include <vector>

#include "common/vec.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "mdt/overlay.hpp"

namespace gdvr::routing {

struct MdtView {
  struct DtNbr {
    int id = -1;
    double cost = 0.0;          // D(u, id): routing cost over the virtual link
    std::vector<int> path;      // physical route u -> ... -> id (empty if physical)
  };

  std::vector<Vec> pos;              // per-node positions (virtual or actual)
  const graph::Graph* metric = nullptr;  // physical links with metric costs
  // Frozen CSR snapshot of *metric, built once by the producers. The routers
  // walk adjacency and probe link costs on every forwarding decision; the
  // flat sorted layout keeps those inner loops contiguous and makes the
  // per-hop link_cost probe a binary search.
  graph::CsrGraph phys;
  std::vector<std::vector<DtNbr>> dt;    // per-node multi-hop DT neighbors
  std::vector<char> alive;

  int size() const { return static_cast<int>(pos.size()); }
  bool is_alive(int u) const { return alive.empty() || alive[static_cast<std::size_t>(u)]; }
};

// Snapshot of the distributed overlay (only synced multi-hop DT neighbors
// with usable paths are included; physical DT neighbors are reachable via the
// metric graph directly).
MdtView snapshot_overlay(const mdt::MdtOverlay& overlay, const graph::Graph& metric);

// Offline construction: Delaunay graph of `positions`; every non-physical DT
// edge becomes a virtual link along the metric-shortest path.
MdtView centralized_mdt(std::span<const Vec> positions, const graph::Graph& metric);

}  // namespace gdvr::routing
