// Gabriel-graph planarization and right-hand-rule face traversal.
//
// This powers the recovery mode of the NADV / GPSR-style baselines. On a
// unit-disk graph, Gabriel planarization preserves connectivity and face
// routing guarantees delivery; on the paper's *general* lossy connectivity
// graphs it does not -- planarization can disconnect the graph or leave
// crossing edges -- which is exactly why the paper's Figure 16(b) shows
// NADV's success rate dropping below 100%. We reproduce that honestly.
#pragma once

#include <span>
#include <vector>

#include "common/vec.hpp"
#include "graph/graph.hpp"

namespace gdvr::routing {

class PlanarGraph {
 public:
  // Positions must be 2D. An edge (u, v) of `links` is kept iff no witness w
  // (drawn from u's and v's physical neighborhoods, as a distributed
  // implementation would) lies strictly inside the circle with diameter uv.
  PlanarGraph(std::span<const Vec> positions, const graph::Graph& links);

  // Neighbors of u sorted by angle around u (counterclockwise).
  std::span<const int> neighbors(int u) const {
    return adj_[static_cast<std::size_t>(u)];
  }
  bool has_edge(int u, int v) const;

  // Right-hand rule: the next edge counterclockwise from the reference
  // direction (either the reversed incoming edge, or the direction toward
  // the destination when entering perimeter mode). Returns -1 if u has no
  // planar neighbors.
  int next_ccw(int u, double ref_angle) const;

  double angle_from(int u, int v) const;

  const Vec& position(int u) const { return pos_[static_cast<std::size_t>(u)]; }

 private:
  std::vector<Vec> pos_;
  std::vector<std::vector<int>> adj_;       // angle-sorted
  std::vector<std::vector<double>> angle_;  // matching angles
};

}  // namespace gdvr::routing
