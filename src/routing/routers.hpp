// Packet-forwarding evaluation of GDV and the baseline protocols.
//
// Routers walk a packet hop by hop over the physical graph, summing metric
// costs and counting transmissions. With ETX as the metric the accumulated
// cost *is* the paper's "average number of transmissions per delivery"; with
// hop count it is the path length used for routing stretch.
//
//  * route_gdv        -- the paper's full GDV (Figure 7, right column):
//                        DV-style cost minimization over physical + multi-hop
//                        DT neighbors, MDT-greedy fallback, guaranteed
//                        delivery on a correct multi-hop DT.
//  * route_gdv_basic  -- Figure 7, left column: physical neighbors only,
//                        generic geographic-routing fallback.
//  * route_mdt_greedy -- MDT-greedy alone (the paper's strongest prior
//                        geographic baseline, run on actual locations).
//  * route_nadv       -- NADV (Lee et al.): maximize (d(u,t)-d(y,t))/c(u,y),
//                        with GPSR-style perimeter recovery on a Gabriel
//                        planarization (imperfect on general lossy graphs,
//                        as the paper observes).
//  * route_gpsr       -- plain greedy + perimeter (used as GDV_basic's GR
//                        and as an extra baseline).
#pragma once

#include <span>

#include "routing/mdt_view.hpp"
#include "routing/planar.hpp"

namespace gdvr::routing {

struct RouteResult {
  bool success = false;
  int transmissions = 0;  // physical link traversals
  double cost = 0.0;      // sum of per-link metric costs
  std::vector<int> path;  // nodes visited, source first (source only if no hops)
};

RouteResult route_gdv(const MdtView& view, int s, int t);

// `recovery` may be null (3D+ virtual spaces have no planar recovery; the
// route fails at a greedy local minimum, as any GR without recovery would).
RouteResult route_gdv_basic(const MdtView& view, int s, int t,
                            const PlanarGraph* recovery = nullptr);

RouteResult route_mdt_greedy(const MdtView& view, int s, int t);

RouteResult route_nadv(std::span<const Vec> pos, const graph::Graph& metric,
                       const PlanarGraph& planar, int s, int t);

RouteResult route_gpsr(std::span<const Vec> pos, const graph::Graph& metric,
                       const PlanarGraph& planar, int s, int t);

}  // namespace gdvr::routing
