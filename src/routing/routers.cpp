#include "routing/routers.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace gdvr::routing {

namespace {

constexpr double kEps = 1e-12;

// One physical hop; returns false if the link is missing. Works over either
// adjacency representation (the MdtView routers forward over the frozen CSR
// snapshot; NADV/GPSR take the caller's Graph directly).
template <typename MetricT>
bool take_link(const MetricT& metric, RouteResult& res, int from, int to) {
  const double c = metric.link_cost(from, to);
  if (!(c < graph::kInf)) return false;
  if (res.path.empty()) res.path.push_back(from);
  res.path.push_back(to);
  res.cost += c;
  ++res.transmissions;
  return true;
}

// Traverses a stored virtual-link path starting at `cur`; stops early if the
// destination `t` appears as a relay (a real relay would deliver). Returns
// the node the packet ends up at, or -1 on a broken path.
int traverse_path(const MdtView& view, RouteResult& res, const std::vector<int>& path, int t) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const int a = path[i], b = path[i + 1];
    if (!view.is_alive(b)) return -1;
    if (!take_link(view.phys, res, a, b)) return -1;
    obs::trace_hop(a, b, obs::HopMode::kRelay, 0.0);
    if (b == t) return t;
  }
  return path.back();
}

int transmission_budget(const MdtView& view) { return 12 * view.size() + 64; }

// MDT-greedy step from `cur` toward view.pos[t]: closest physical neighbor
// if it makes progress, else closest multi-hop DT neighbor. Returns the new
// current node, or -1 at a local minimum / broken state. `mode` tags the
// decision's trace events (kGreedy when MDT-greedy is the primary protocol,
// kRecovery when it runs as GDV's fallback).
int mdt_greedy_step(const MdtView& view, RouteResult& res, int cur, int t,
                    obs::HopMode mode = obs::HopMode::kGreedy) {
  const Vec& tp = view.pos[static_cast<std::size_t>(t)];
  const double own = view.pos[static_cast<std::size_t>(cur)].distance(tp);
  int best_phys = -1;
  double best_d = own;
  for (const graph::Edge& e : view.phys.neighbors(cur)) {
    if (!view.is_alive(e.to)) continue;
    const double d = view.pos[static_cast<std::size_t>(e.to)].distance(tp);
    if (d < best_d) {
      best_d = d;
      best_phys = e.to;
    }
  }
  if (best_phys >= 0) {
    if (!take_link(view.phys, res, cur, best_phys)) return -1;
    obs::trace_hop(cur, best_phys, mode, own);
    return best_phys;
  }
  const MdtView::DtNbr* best_dt = nullptr;
  best_d = own;
  for (const MdtView::DtNbr& d : view.dt[static_cast<std::size_t>(cur)]) {
    if (!view.is_alive(d.id)) continue;
    const double dist = view.pos[static_cast<std::size_t>(d.id)].distance(tp);
    if (dist < best_d) {
      best_d = dist;
      best_dt = &d;
    }
  }
  if (!best_dt) return -1;  // local minimum: the multi-hop DT is incomplete here
  obs::trace_hop(cur, best_dt->id, mode, own);
  return traverse_path(view, res, best_dt->path, t);
}

// 2D segment intersection point of (a,b) and (c,d); returns true and the
// parameter s along (c,d) if they properly intersect.
bool segment_cross(const Vec& a, const Vec& b, const Vec& c, const Vec& d, Vec& out) {
  const double r_x = b[0] - a[0], r_y = b[1] - a[1];
  const double s_x = d[0] - c[0], s_y = d[1] - c[1];
  const double denom = r_x * s_y - r_y * s_x;
  if (std::fabs(denom) < kEps) return false;
  const double qp_x = c[0] - a[0], qp_y = c[1] - a[1];
  const double tt = (qp_x * s_y - qp_y * s_x) / denom;
  const double uu = (qp_x * r_y - qp_y * r_x) / denom;
  if (tt < -kEps || tt > 1.0 + kEps || uu < -kEps || uu > 1.0 + kEps) return false;
  out = Vec{a[0] + tt * r_x, a[1] + tt * r_y};
  return true;
}

// GPSR-style perimeter traversal on the planar graph, starting at `cur`
// after a greedy failure. Exits back to the caller (returning the node id)
// as soon as some node is strictly closer to t than the entry point; returns
// -1 on failure (perimeter loop or disconnection).
template <typename MetricT>
int perimeter_mode(std::span<const Vec> pos, const MetricT& metric,
                   const PlanarGraph& planar, RouteResult& res, int cur, int t,
                   int budget) {
  const Vec& tp = pos[static_cast<std::size_t>(t)];
  const double entry_dist = pos[static_cast<std::size_t>(cur)].distance(tp);
  const Vec entry_pos = pos[static_cast<std::size_t>(cur)];
  double cross_dist = entry_dist;

  int next = planar.next_ccw(cur, planar.angle_from(cur, t));
  if (next < 0) return -1;
  const std::pair<int, int> first_edge{cur, next};
  bool first = true;

  while (res.transmissions < budget) {
    // Face change: if the edge about to be traversed crosses the line from
    // the perimeter entry point to t at a point closer to t, walk the new
    // face instead of crossing the line (standard GPSR rule).
    for (int guard = 0; guard < 64; ++guard) {
      Vec q;
      if (!segment_cross(pos[static_cast<std::size_t>(cur)], pos[static_cast<std::size_t>(next)],
                         entry_pos, tp, q))
        break;
      const double dq = q.distance(tp);
      if (dq >= cross_dist - kEps) break;
      cross_dist = dq;
      const int alt = planar.next_ccw(cur, planar.angle_from(cur, next));
      if (alt < 0 || alt == next) break;
      next = alt;
    }
    if (!first && std::pair<int, int>{cur, next} == first_edge) return -1;  // full loop
    first = false;
    if (!take_link(metric, res, cur, next)) return -1;
    obs::trace_hop(cur, next, obs::HopMode::kRecovery,
                   pos[static_cast<std::size_t>(cur)].distance(tp));
    const int prev = cur;
    cur = next;
    if (cur == t) return cur;
    if (pos[static_cast<std::size_t>(cur)].distance(tp) < entry_dist - kEps) return cur;
    next = planar.next_ccw(cur, planar.angle_from(cur, prev));
    if (next < 0) return -1;
  }
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------

RouteResult route_gdv(const MdtView& view, int s, int t) {
  RouteResult res;
  obs::PacketTrace trace(s, t, &res.success);
  const graph::CsrGraph& metric = view.phys;
  const Vec& tp = view.pos[static_cast<std::size_t>(t)];
  const int budget = transmission_budget(view);
  int cur = s;
  while (cur != t) {
    if (res.transmissions >= budget) return res;
    const double own = view.pos[static_cast<std::size_t>(cur)].distance(tp);

    // Lines 1-3: DV-style estimated costs over P_u ∪ N_u.
    double best_r = graph::kInf;
    int best_phys = -1;
    const MdtView::DtNbr* best_dt = nullptr;
    for (const graph::Edge& e : metric.neighbors(cur)) {
      if (!view.is_alive(e.to)) continue;
      const double r = e.cost + view.pos[static_cast<std::size_t>(e.to)].distance(tp);
      if (r < best_r) {
        best_r = r;
        best_phys = e.to;
        best_dt = nullptr;
      }
    }
    for (const MdtView::DtNbr& d : view.dt[static_cast<std::size_t>(cur)]) {
      if (!view.is_alive(d.id)) continue;
      const double r = d.cost + view.pos[static_cast<std::size_t>(d.id)].distance(tp);
      if (r < best_r) {
        best_r = r;
        best_phys = -1;
        best_dt = &d;
      }
    }

    if (best_r < own) {
      // Line 4: forward directly or along the stored multi-hop path.
      if (best_phys >= 0) {
        if (!take_link(metric, res, cur, best_phys)) return res;
        obs::trace_hop(cur, best_phys, obs::HopMode::kGreedy, own);
        cur = best_phys;
      } else {
        obs::trace_hop(cur, best_dt->id, obs::HopMode::kGreedy, own);
        cur = traverse_path(view, res, best_dt->path, t);
        if (cur < 0) return res;
      }
      continue;
    }
    // Line 5: MDT-greedy fallback (guaranteed delivery on a correct DT).
    cur = mdt_greedy_step(view, res, cur, t, obs::HopMode::kRecovery);
    if (cur < 0) return res;
  }
  res.success = true;
  return res;
}

RouteResult route_gdv_basic(const MdtView& view, int s, int t, const PlanarGraph* recovery) {
  RouteResult res;
  obs::PacketTrace trace(s, t, &res.success);
  const graph::CsrGraph& metric = view.phys;
  const Vec& tp = view.pos[static_cast<std::size_t>(t)];
  const int budget = transmission_budget(view);
  int cur = s;
  while (cur != t) {
    if (res.transmissions >= budget) return res;
    const double own = view.pos[static_cast<std::size_t>(cur)].distance(tp);

    double best_r = graph::kInf;
    int best = -1;
    for (const graph::Edge& e : metric.neighbors(cur)) {
      if (!view.is_alive(e.to)) continue;
      const double r = e.cost + view.pos[static_cast<std::size_t>(e.to)].distance(tp);
      if (r < best_r) {
        best_r = r;
        best = e.to;
      }
    }
    if (best >= 0 && best_r < own) {
      if (!take_link(metric, res, cur, best)) return res;
      obs::trace_hop(cur, best, obs::HopMode::kGreedy, own);
      cur = best;
      continue;
    }
    // GR fallback: plain greedy step; perimeter recovery if available (2D).
    int closest = -1;
    double closest_d = own;
    for (const graph::Edge& e : metric.neighbors(cur)) {
      if (!view.is_alive(e.to)) continue;
      const double d = view.pos[static_cast<std::size_t>(e.to)].distance(tp);
      if (d < closest_d) {
        closest_d = d;
        closest = e.to;
      }
    }
    if (closest >= 0) {
      if (!take_link(metric, res, cur, closest)) return res;
      obs::trace_hop(cur, closest, obs::HopMode::kRecovery, own);
      cur = closest;
      continue;
    }
    if (!recovery) return res;
    cur = perimeter_mode(view.pos, metric, *recovery, res, cur, t, budget);
    if (cur < 0) return res;
  }
  res.success = true;
  return res;
}

RouteResult route_mdt_greedy(const MdtView& view, int s, int t) {
  RouteResult res;
  obs::PacketTrace trace(s, t, &res.success);
  const int budget = transmission_budget(view);
  int cur = s;
  while (cur != t) {
    if (res.transmissions >= budget) return res;
    cur = mdt_greedy_step(view, res, cur, t);
    if (cur < 0) return res;
  }
  res.success = true;
  return res;
}

RouteResult route_nadv(std::span<const Vec> pos, const graph::Graph& metric,
                       const PlanarGraph& planar, int s, int t) {
  RouteResult res;
  obs::PacketTrace trace(s, t, &res.success);
  const Vec& tp = pos[static_cast<std::size_t>(t)];
  const int budget = 12 * metric.size() + 64;
  int cur = s;
  while (cur != t) {
    if (res.transmissions >= budget) return res;
    const double own = pos[static_cast<std::size_t>(cur)].distance(tp);
    // NADV: maximize (d(u,t) - d(y,t)) / c(u,y) over neighbors with positive
    // advance.
    int best = -1;
    double best_nadv = 0.0;
    for (const graph::Edge& e : metric.neighbors(cur)) {
      const double adv = own - pos[static_cast<std::size_t>(e.to)].distance(tp);
      if (adv <= 0.0) continue;
      const double nadv = adv / e.cost;
      if (nadv > best_nadv) {
        best_nadv = nadv;
        best = e.to;
      }
    }
    if (best >= 0) {
      if (!take_link(metric, res, cur, best)) return res;
      obs::trace_hop(cur, best, obs::HopMode::kGreedy, own);
      cur = best;
      continue;
    }
    cur = perimeter_mode(pos, metric, planar, res, cur, t, budget);
    if (cur < 0) return res;
  }
  res.success = true;
  return res;
}

RouteResult route_gpsr(std::span<const Vec> pos, const graph::Graph& metric,
                       const PlanarGraph& planar, int s, int t) {
  RouteResult res;
  obs::PacketTrace trace(s, t, &res.success);
  const Vec& tp = pos[static_cast<std::size_t>(t)];
  const int budget = 12 * metric.size() + 64;
  int cur = s;
  while (cur != t) {
    if (res.transmissions >= budget) return res;
    const double own = pos[static_cast<std::size_t>(cur)].distance(tp);
    int best = -1;
    double best_d = own;
    for (const graph::Edge& e : metric.neighbors(cur)) {
      const double d = pos[static_cast<std::size_t>(e.to)].distance(tp);
      if (d < best_d) {
        best_d = d;
        best = e.to;
      }
    }
    if (best >= 0) {
      if (!take_link(metric, res, cur, best)) return res;
      obs::trace_hop(cur, best, obs::HopMode::kGreedy, own);
      cur = best;
      continue;
    }
    cur = perimeter_mode(pos, metric, planar, res, cur, t, budget);
    if (cur < 0) return res;
  }
  res.success = true;
  return res;
}

}  // namespace gdvr::routing
