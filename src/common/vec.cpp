#include "common/vec.hpp"

#include <cstdio>

namespace gdvr {

std::string Vec::to_string() const {
  std::string s = "(";
  char buf[32];
  for (int i = 0; i < dim_; ++i) {
    std::snprintf(buf, sizeof buf, "%.4g", (*this)[i]);
    s += buf;
    if (i + 1 < dim_) s += ", ";
  }
  s += ")";
  return s;
}

}  // namespace gdvr
