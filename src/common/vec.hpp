// Small dynamic-dimension Euclidean vector.
//
// VPoD embeds nodes in a virtual space whose dimension is a runtime
// parameter (the paper evaluates 2D, 3D and 4D; the PCA study goes to 15).
// Vec stores up to kMaxDim coordinates inline -- no heap allocation -- and
// carries its dimension. All arithmetic requires matching dimensions.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "common/assert.hpp"

namespace gdvr {

class Vec {
 public:
  // Generous upper bound: the paper's PCA study looks at up to 15 dimensions.
  static constexpr int kMaxDim = 16;

  Vec() = default;
  explicit Vec(int dim) : dim_(dim) {
    GDVR_ASSERT(dim >= 0 && dim <= kMaxDim);
    c_.fill(0.0);
  }
  Vec(std::initializer_list<double> xs) : dim_(static_cast<int>(xs.size())) {
    GDVR_ASSERT(dim_ <= kMaxDim);
    int i = 0;
    for (double x : xs) c_[static_cast<std::size_t>(i++)] = x;
  }
  static Vec zero(int dim) { return Vec(dim); }

  int dim() const { return dim_; }
  bool empty() const { return dim_ == 0; }

  double& operator[](int i) {
    GDVR_ASSERT(i >= 0 && i < dim_);
    return c_[static_cast<std::size_t>(i)];
  }
  double operator[](int i) const {
    GDVR_ASSERT(i >= 0 && i < dim_);
    return c_[static_cast<std::size_t>(i)];
  }

  std::span<const double> coords() const { return {c_.data(), static_cast<std::size_t>(dim_)}; }

  Vec& operator+=(const Vec& o) {
    GDVR_ASSERT(dim_ == o.dim_);
    for (int i = 0; i < dim_; ++i) c_[static_cast<std::size_t>(i)] += o.c_[static_cast<std::size_t>(i)];
    return *this;
  }
  Vec& operator-=(const Vec& o) {
    GDVR_ASSERT(dim_ == o.dim_);
    for (int i = 0; i < dim_; ++i) c_[static_cast<std::size_t>(i)] -= o.c_[static_cast<std::size_t>(i)];
    return *this;
  }
  Vec& operator*=(double s) {
    for (int i = 0; i < dim_; ++i) c_[static_cast<std::size_t>(i)] *= s;
    return *this;
  }
  Vec& operator/=(double s) { return *this *= (1.0 / s); }

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }
  friend Vec operator/(Vec a, double s) { return a /= s; }

  friend bool operator==(const Vec& a, const Vec& b) {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i)
      if (a.c_[static_cast<std::size_t>(i)] != b.c_[static_cast<std::size_t>(i)]) return false;
    return true;
  }

  double dot(const Vec& o) const {
    GDVR_ASSERT(dim_ == o.dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i)
      s += c_[static_cast<std::size_t>(i)] * o.c_[static_cast<std::size_t>(i)];
    return s;
  }
  double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  // Euclidean distance to another point of the same dimension. Computed as a
  // raw loop: these sit on every in-conflict test and greedy-forwarding
  // decision, and going through operator- would construct a temporary Vec
  // (kMaxDim doubles) per call.
  double distance2(const Vec& o) const {
    GDVR_ASSERT(dim_ == o.dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double d = c_[static_cast<std::size_t>(i)] - o.c_[static_cast<std::size_t>(i)];
      s += d * d;
    }
    return s;
  }
  double distance(const Vec& o) const { return std::sqrt(distance2(o)); }

  // Unit vector in this direction; if the vector is (near) zero, returns a
  // deterministic unit vector along the first axis so callers never divide
  // by zero (VPoD moves nodes apart even when they coincide).
  Vec unit() const {
    const double n = norm();
    if (n < 1e-12) {
      Vec e(dim_);
      if (dim_ > 0) e[0] = 1.0;
      return e;
    }
    return *this / n;
  }

  bool finite() const {
    for (int i = 0; i < dim_; ++i)
      if (!std::isfinite(c_[static_cast<std::size_t>(i)])) return false;
    return true;
  }

  std::string to_string() const;

 private:
  std::array<double, kMaxDim> c_{};
  int dim_ = 0;
};

inline double distance(const Vec& a, const Vec& b) { return a.distance(b); }

}  // namespace gdvr
