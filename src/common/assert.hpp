// Lightweight always-on assertion macro for invariant checks.
//
// GDVR_ASSERT stays active in release builds: the protocols in this library
// are distributed algorithms whose bugs manifest as silent divergence, so we
// prefer a loud crash with context over undefined behaviour.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gdvr {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "GDVR_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace gdvr

#define GDVR_ASSERT(expr)                                            \
  do {                                                               \
    if (!(expr)) ::gdvr::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GDVR_ASSERT_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::gdvr::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
