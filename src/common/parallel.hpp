// Deterministic thread-pool for embarrassingly parallel trials.
//
// Every sweep in bench/ runs many independent trials (one Simulator + NetSim
// per (parameter, run) pair) and aggregates per-trial metrics. ParallelTrials
// fans those trials out over a fixed set of worker threads while preserving
// the determinism contract the figures rely on:
//
//  * each trial derives everything (topology seed, protocol seeds) from its
//    own index, never from shared mutable state or scheduling order;
//  * results land in a vector indexed by trial, so the output is bit-identical
//    to a sequential run no matter how the OS interleaves workers;
//  * aggregation happens on the caller's thread after run() returns.
//
// Trials must not touch shared mutable state. Everything reachable from a
// trial function must be const or trial-local (radio::Topology and its
// metric graphs are read-only once built).
#pragma once

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gdvr {

class ParallelTrials {
 public:
  // threads <= 0 selects automatically: the GDVR_THREADS environment
  // variable if set, otherwise the hardware concurrency. One thread (or a
  // single-CPU machine) degrades to plain sequential execution in the
  // calling thread.
  explicit ParallelTrials(int threads = 0) {
    if (threads <= 0) {
      if (const char* env = std::getenv("GDVR_THREADS")) threads = std::atoi(env);
      if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    threads_ = threads;
  }

  int threads() const { return threads_; }

  // Runs fn(0), fn(1), ..., fn(count - 1) across the workers and returns the
  // results in index order. The result type must be default-constructible
  // and movable. If any trial throws, the first exception (by completion
  // order) is rethrown after all workers drain.
  template <typename Fn>
  auto run(int count, Fn&& fn) -> std::vector<decltype(fn(0))> {
    using R = decltype(fn(0));
    std::vector<R> results(static_cast<std::size_t>(count));
    if (count <= 0) return results;

    if (threads_ <= 1) {
      for (int i = 0; i < count; ++i) results[static_cast<std::size_t>(i)] = fn(i);
      return results;
    }

    std::atomic<int> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          results[static_cast<std::size_t>(i)] = fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    const int nw = std::min(threads_, count);
    pool.reserve(static_cast<std::size_t>(nw));
    for (int t = 0; t < nw; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

 private:
  int threads_ = 1;
};

}  // namespace gdvr
