// Deterministic thread-pool for embarrassingly parallel trials.
//
// Every sweep in bench/ runs many independent trials (one Simulator + NetSim
// per (parameter, run) pair) and aggregates per-trial metrics. ParallelTrials
// fans those trials out over a fixed set of worker threads while preserving
// the determinism contract the figures rely on:
//
//  * each trial derives everything (topology seed, protocol seeds) from its
//    own index, never from shared mutable state or scheduling order;
//  * results land in a vector indexed by trial, so the output is bit-identical
//    to a sequential run no matter how the OS interleaves workers;
//  * aggregation happens on the caller's thread after run() returns.
//
// Trials must not touch shared mutable state. Everything reachable from a
// trial function must be const or trial-local (radio::Topology and its
// metric graphs are read-only once built).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gdvr {

// Resolves the worker count the way every parallel facility in this repo
// does: an explicit positive request wins, then the GDVR_THREADS environment
// variable, then the hardware concurrency, floored at 1.
inline int resolve_thread_count(int threads) {
  if (threads <= 0) {
    if (const char* env = std::getenv("GDVR_THREADS")) threads = std::atoi(env);
    if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return threads;
}

class ParallelTrials {
 public:
  // threads <= 0 selects automatically: the GDVR_THREADS environment
  // variable if set, otherwise the hardware concurrency. One thread (or a
  // single-CPU machine) degrades to plain sequential execution in the
  // calling thread.
  explicit ParallelTrials(int threads = 0) { threads_ = resolve_thread_count(threads); }

  int threads() const { return threads_; }

  // Runs fn(0), fn(1), ..., fn(count - 1) across the workers and returns the
  // results in index order. The result type must be default-constructible
  // and movable. If any trial throws, the first exception (by completion
  // order) is rethrown after all workers drain.
  template <typename Fn>
  auto run(int count, Fn&& fn) -> std::vector<decltype(fn(0))> {
    using R = decltype(fn(0));
    std::vector<R> results(static_cast<std::size_t>(count));
    if (count <= 0) return results;

    if (threads_ <= 1) {
      for (int i = 0; i < count; ++i) results[static_cast<std::size_t>(i)] = fn(i);
      return results;
    }

    std::atomic<int> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          results[static_cast<std::size_t>(i)] = fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    const int nw = std::min(threads_, count);
    pool.reserve(static_cast<std::size_t>(nw));
    for (int t = 0; t < nw; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

 private:
  int threads_ = 1;
};

// One PAUSE-class hint to the core while spinning on an atomic.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Persistent spin-then-park worker pool.
//
// ParallelTrials spawns threads per run() call, which is fine for sweeps
// that fan out a handful of times. The sharded simulator issues one parallel
// burst per lookahead window -- tens of thousands per run, each burst only
// tens to hundreds of microseconds of work -- so the latency of *starting* a
// burst is the whole ballgame. A pool that parks workers on a condition
// variable between bursts loses it: a futex wake takes longer than the
// burst, so the caller thread has drained every index before any worker
// arrives, serializing the "parallel" engine. Workers here spin on the
// generation counter for a short budget (a window's worth of time) before
// parking, which keeps them hot across back-to-back windows and still yields
// the CPU when the simulator goes quiet. parallel_for(count, fn) runs
// fn(0..count-1) across the workers plus the calling thread and returns when
// every index completed.
//
// Determinism contract: like ParallelTrials, work items must not share
// mutable state across indices; which thread runs which index is
// intentionally unobservable.
class WorkerPool {
 public:
  explicit WorkerPool(int threads = 0) : threads_(resolve_thread_count(threads)) {
    for (int t = 0; t < threads_ - 1; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(m_);
      stop_.store(true, std::memory_order_relaxed);
    }
    cv_start_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  // Blocks until fn has been invoked for every index in [0, count). The
  // first exception (by completion order) is rethrown on the caller. fn must
  // not re-enter the same pool.
  void parallel_for(int count, const std::function<void(int)>& fn) {
    if (count <= 0) return;
    if (threads_ <= 1 || count == 1) {
      for (int i = 0; i < count; ++i) fn(i);
      return;
    }
    {
      // The mutex orders this publication against the predicate check of any
      // parked worker (no lost wakeups); spinning workers see the
      // release-store of generation_ directly.
      const std::lock_guard<std::mutex> lock(m_);
      job_ = &fn;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      done_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      generation_.fetch_add(1, std::memory_order_release);
    }
    cv_start_.notify_all();
    run_indices(fn);
    // Completion: spin briefly (workers finish within the same window
    // timescale), then fall back to a timed wait so a descheduled worker
    // cannot strand the caller in a busy loop.
    const int workers = static_cast<int>(workers_.size());
    for (int spins = 0; done_.load(std::memory_order_acquire) != workers;) {
      if (++spins < spin_budget()) {
        cpu_relax();
      } else {
        std::unique_lock<std::mutex> lock(m_);
        cv_done_.wait_for(lock, std::chrono::microseconds(100), [&] {
          return done_.load(std::memory_order_relaxed) == workers;
        });
      }
    }
    job_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  // ~tens of microseconds of PAUSE on current hardware: long enough to
  // bridge the gap between back-to-back lookahead windows, short enough to
  // stop burning a core when the simulation is over. On a single-hardware-
  // thread machine spinning is pure sabotage -- the spinner occupies the
  // only core the thread it waits for needs -- so the budget drops to zero
  // and both sides go straight to the futex path.
  static int spin_budget() {
    static const int budget = std::thread::hardware_concurrency() > 1 ? (1 << 15) : 0;
    return budget;
  }

  void run_indices(const std::function<void(int)>& fn) {
    for (;;) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t gen;
      int spins = 0;
      while ((gen = generation_.load(std::memory_order_acquire)) == seen &&
             !stop_.load(std::memory_order_relaxed)) {
        if (++spins < spin_budget()) {
          cpu_relax();
        } else {
          std::unique_lock<std::mutex> lock(m_);
          cv_start_.wait(lock, [&] {
            return stop_.load(std::memory_order_relaxed) ||
                   generation_.load(std::memory_order_relaxed) != seen;
          });
        }
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      seen = gen;
      run_indices(*job_);
      done_.fetch_add(1, std::memory_order_release);
      if (done_.load(std::memory_order_relaxed) == static_cast<int>(workers_.size())) {
        // The caller may have exhausted its spin budget and parked: pairing
        // the notify with the mutex closes the check-then-wait race.
        { const std::lock_guard<std::mutex> lock(m_); }
        cv_done_.notify_one();
      }
    }
  }

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  int count_ = 0;
  std::atomic<int> next_{0};
  std::atomic<int> done_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};
  std::exception_ptr error_;
};

}  // namespace gdvr
