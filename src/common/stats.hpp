// Small statistics helpers used by the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace gdvr {

// Streaming mean / variance (Welford) with min/max tracking.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    mean_ += delta * nb / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

inline double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double stddev_of(std::span<const double> xs) {
  RunningStat rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

// Percentile with linear interpolation; q in [0, 1]. Copies and sorts.
inline double percentile(std::vector<double> xs, double q) {
  GDVR_ASSERT(!xs.empty());
  GDVR_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

inline double median_of(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

}  // namespace gdvr
