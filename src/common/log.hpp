// Minimal leveled logging to stderr. Off (warn-and-above) by default so
// experiment sweeps stay quiet; tests and examples can raise verbosity.
#pragma once

#include <cstdio>
#include <string>

namespace gdvr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define GDVR_LOG_DEBUG(...) ::gdvr::detail::vlog(::gdvr::LogLevel::kDebug, __VA_ARGS__)
#define GDVR_LOG_INFO(...) ::gdvr::detail::vlog(::gdvr::LogLevel::kInfo, __VA_ARGS__)
#define GDVR_LOG_WARN(...) ::gdvr::detail::vlog(::gdvr::LogLevel::kWarn, __VA_ARGS__)
#define GDVR_LOG_ERROR(...) ::gdvr::detail::vlog(::gdvr::LogLevel::kError, __VA_ARGS__)

}  // namespace gdvr
