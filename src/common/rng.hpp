// Deterministic random number generation.
//
// Every experiment in this repository is seeded; the same seed reproduces the
// same topology, the same message delays and the same routing results. We use
// xoshiro256** seeded through SplitMix64 -- fast, high quality, and stable
// across platforms (unlike std::mt19937 + std::distributions, whose outputs
// are not specified bit-for-bit across standard library implementations).
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/vec.hpp"

namespace gdvr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  // Derive an independent child stream (for per-node / per-link randomness).
  Rng split(std::uint64_t stream) {
    return Rng(next_u64() ^ (0x9E3779B97F4A7C15ull * (stream + 1)));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    GDVR_ASSERT(n > 0);
    // Lemire's nearly-divisionless bounded sampling with rejection.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  int uniform_index(int n) { return static_cast<int>(uniform_int(static_cast<std::uint64_t>(n))); }

  bool bernoulli(double p) { return uniform() < p; }

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Uniform point inside the axis-aligned box [0,extent_0) x ... in `dim` dims.
  Vec point_in_box(const Vec& extent) {
    Vec p(extent.dim());
    for (int i = 0; i < extent.dim(); ++i) p[i] = uniform(0.0, extent[i]);
    return p;
  }

  // Uniform point on the sphere of given radius centered at `center`.
  Vec point_on_sphere(const Vec& center, double radius) {
    Vec dir(center.dim());
    double n2 = 0.0;
    do {
      for (int i = 0; i < center.dim(); ++i) dir[i] = normal();
      n2 = dir.norm2();
    } while (n2 < 1e-12);
    return center + dir * (radius / std::sqrt(n2));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4] = {};
};

}  // namespace gdvr
