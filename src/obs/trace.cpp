#include "obs/trace.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace gdvr::obs {

namespace {

thread_local TraceSink* g_sink = nullptr;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
inline std::uint64_t fnv1a_value(std::uint64_t h, const T& v) {
  return fnv1a(h, &v, sizeof(v));
}

}  // namespace

const char* hop_mode_name(HopMode mode) {
  switch (mode) {
    case HopMode::kGreedy: return "greedy";
    case HopMode::kRecovery: return "recovery";
    case HopMode::kRelay: return "relay";
    case HopMode::kControl: return "control";
  }
  return "?";
}

int TraceSink::begin_packet(int src, int dst) {
  GDVR_ASSERT(open_packet_ < 0);
  PacketRecord r;
  r.src = src;
  r.dst = dst;
  packets_.push_back(r);
  open_packet_ = static_cast<int>(packets_.size()) - 1;
  return open_packet_;
}

void TraceSink::end_packet(bool delivered) {
  GDVR_ASSERT(open_packet_ >= 0);
  packets_[static_cast<std::size_t>(open_packet_)].delivered = delivered;
  packets_[static_cast<std::size_t>(open_packet_)].closed = true;
  open_packet_ = -1;
}

void TraceSink::hop(int node, int next, HopMode mode, double estimate, double time) {
  HopEvent e;
  e.packet = open_packet_;
  e.node = node;
  e.next = next;
  e.mode = mode;
  e.estimate = estimate;
  e.time = time;
  events_.push_back(e);
}

std::vector<HopEvent> TraceSink::packet_events(int packet) const {
  std::vector<HopEvent> out;
  for (const HopEvent& e : events_)
    if (e.packet == packet) out.push_back(e);
  return out;
}

std::uint64_t TraceSink::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const PacketRecord& p : packets_) {
    h = fnv1a_value(h, p.src);
    h = fnv1a_value(h, p.dst);
    h = fnv1a_value(h, static_cast<std::uint8_t>(p.delivered));
  }
  for (const HopEvent& e : events_) {
    h = fnv1a_value(h, e.packet);
    h = fnv1a_value(h, e.node);
    h = fnv1a_value(h, e.next);
    h = fnv1a_value(h, static_cast<std::uint8_t>(e.mode));
    h = fnv1a_value(h, e.estimate);  // exact bit pattern
    h = fnv1a_value(h, e.time);
  }
  return h;
}

std::string TraceSink::digest_hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(digest()));
  return buf;
}

void TraceSink::absorb(TraceSink& other) {
  GDVR_ASSERT(other.open_packet_ < 0);
  const int offset = static_cast<int>(packets_.size());
  packets_.insert(packets_.end(), other.packets_.begin(), other.packets_.end());
  events_.reserve(events_.size() + other.events_.size());
  for (HopEvent e : other.events_) {
    if (e.packet >= 0) e.packet += offset;
    events_.push_back(e);
  }
  other.clear();
}

void TraceSink::clear() {
  events_.clear();
  packets_.clear();
  open_packet_ = -1;
}

TraceSink* trace_sink() { return g_sink; }

ScopedTrace::ScopedTrace(TraceSink& sink) : prev_(g_sink) { g_sink = &sink; }

ScopedTrace::~ScopedTrace() { g_sink = prev_; }

PacketTrace::PacketTrace(int src, int dst, const bool* delivered)
    : sink_(g_sink), delivered_(delivered) {
  if (sink_) sink_->begin_packet(src, dst);
}

PacketTrace::~PacketTrace() {
  if (sink_) sink_->end_packet(*delivered_);
}

}  // namespace gdvr::obs
