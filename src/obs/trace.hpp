// Packet-trace sink: per-packet hop events from the routers and the
// simulated control plane, recorded only when a sink is installed.
//
// The paper's claims are trajectory-level (per-hop greedy choice of estimated
// end-to-end cost, MDT-greedy's guaranteed delivery), so tests need to see
// *how* a packet travelled, not just whether it arrived. A TraceSink records
// one event per forwarding decision or physical transmission:
//
//  * kGreedy    -- the protocol's primary forwarding rule chose `next`
//                  (GDV's DV-style cost minimization, MDT-greedy's closest
//                  neighbor, GPSR/NADV greedy advance, a DV table hop);
//  * kRecovery  -- a fallback mode chose `next` (GDV falling back to
//                  MDT-greedy, GR/perimeter traversal after a greedy local
//                  minimum);
//  * kRelay     -- one physical hop of a stored virtual-link path (no
//                  decision is made at relays; revisits are legal here);
//  * kControl   -- one control-plane transmission in NetSim (opt-in via
//                  set_trace_control, because protocol sims send thousands).
//
// `estimate` carries the deciding node's own estimated remaining cost to the
// destination at decision time (virtual distance for geographic modes, table
// cost for DV); 0 for relay/control events. `time` is simulation time, 0 for
// offline routing.
//
// Overhead contract: tracing is OFF unless a sink is installed in the
// current thread. Every emission site guards on one thread-local pointer
// load; with no sink installed that is the entire cost. The sink pointer is
// thread-local so ParallelTrials workers can trace independent trials
// without synchronization, keeping traces bit-identical to sequential runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gdvr::obs {

enum class HopMode : std::uint8_t {
  kGreedy = 0,
  kRecovery = 1,
  kRelay = 2,
  kControl = 3,
};

const char* hop_mode_name(HopMode mode);

struct HopEvent {
  std::int32_t packet = -1;  // index into packets(); -1 for control events
  std::int32_t node = -1;    // deciding / transmitting node
  std::int32_t next = -1;    // chosen next hop (virtual-link endpoint for a
                             // DT decision; physically adjacent otherwise)
  HopMode mode = HopMode::kGreedy;
  double estimate = 0.0;     // node's estimated remaining cost at decision time
  double time = 0.0;         // simulation time (0 for offline routing)
};

struct PacketRecord {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  bool delivered = false;
  bool closed = false;
};

class TraceSink {
 public:
  // Opens a new packet; subsequent hop() calls attach to it until
  // end_packet. Returns the packet index.
  int begin_packet(int src, int dst);
  void end_packet(bool delivered);

  // Records one hop event against the currently open packet (or packet -1
  // for control events emitted outside any packet).
  void hop(int node, int next, HopMode mode, double estimate, double time = 0.0);

  // Control-plane transmissions (NetSim sends) are high-volume; they are
  // only recorded when explicitly enabled.
  void set_trace_control(bool on) { trace_control_ = on; }
  bool trace_control() const { return trace_control_; }

  const std::vector<HopEvent>& events() const { return events_; }
  const std::vector<PacketRecord>& packets() const { return packets_; }
  // Events of one packet, in order (linear scan; test-side convenience).
  std::vector<HopEvent> packet_events(int packet) const;

  // Order-sensitive 64-bit FNV-1a digest over every packet record and every
  // event (including exact bit patterns of estimates and times). Two runs
  // produce equal digests iff their full forwarding behavior is identical.
  std::uint64_t digest() const;
  // digest() as fixed-width lowercase hex, for pinning in golden tests.
  std::string digest_hex() const;

  // Appends every packet and event of `other` to this sink (packet indices
  // are remapped past this sink's existing packets) and clears `other`. The
  // sharded simulator gives each lane a private sink during a parallel
  // window and absorbs them into the main sink at the barrier in lane order,
  // so the merged trace is a pure function of the partition, never of the
  // thread count. `other` must not have a packet open.
  void absorb(TraceSink& other);

  void clear();

 private:
  std::vector<HopEvent> events_;
  std::vector<PacketRecord> packets_;
  int open_packet_ = -1;
  bool trace_control_ = false;
};

// The thread-local active sink; nullptr when tracing is disabled.
TraceSink* trace_sink();

// Installs `sink` as the current thread's active sink for the lifetime of
// the scope, restoring the previous sink (usually nullptr) on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSink& sink);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink* prev_;
};

// Emission guard used by the routers: one TLS load when tracing is off.
inline void trace_hop(int node, int next, HopMode mode, double estimate, double time = 0.0) {
  if (TraceSink* s = trace_sink()) s->hop(node, next, mode, estimate, time);
}

// Packet lifetime guard for a route_* call: begins a packet when a sink is
// installed and closes it with the delivery flag on scope exit.
class PacketTrace {
 public:
  PacketTrace(int src, int dst, const bool* delivered);
  ~PacketTrace();
  PacketTrace(const PacketTrace&) = delete;
  PacketTrace& operator=(const PacketTrace&) = delete;

 private:
  TraceSink* sink_;
  const bool* delivered_;
};

}  // namespace gdvr::obs
