// Scoped profiling timers for the simulator's hot kernels.
//
// Each GDVR_PROFILE_SCOPE("name") site owns one statically allocated
// ProfileSite (registered on an intrusive global list at first execution)
// and accumulates call count and total nanoseconds with relaxed atomics, so
// ParallelTrials workers profile concurrently without locks.
//
// Overhead contract: profiling is OFF by default. A disabled scope costs one
// relaxed atomic bool load and a branch -- no clock read, no atomic RMW.
// Enable with set_profiling(true) or by exporting GDVR_PROFILE=1 before the
// process starts (scripts/bench.sh --profile drives this).
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace gdvr::obs {

bool profiling_enabled();
void set_profiling(bool on);

struct ProfileSite {
  explicit ProfileSite(const char* site_name);

  void add(std::uint64_t ns) {
    calls.fetch_add(1, std::memory_order_relaxed);
    total_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  const char* name;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  ProfileSite* next = nullptr;  // intrusive registry list (never unregistered)
};

// Monotonic wall-clock in nanoseconds (steady_clock).
std::uint64_t profile_now_ns();

class ScopedTimer {
 public:
  explicit ScopedTimer(ProfileSite& site)
      : site_(site), start_ns_(profiling_enabled() ? profile_now_ns() : 0) {}
  ~ScopedTimer() {
    if (start_ns_ != 0) site_.add(profile_now_ns() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileSite& site_;
  std::uint64_t start_ns_;
};

// Table of every site that executed at least once: name, calls, total ms,
// mean us per call. Sites are sorted by total time, descending.
void write_profile_report(std::ostream& os);

// Zeroes every registered site's accumulators (sites stay registered).
void reset_profile();

}  // namespace gdvr::obs

#define GDVR_PROFILE_CONCAT_INNER(a, b) a##b
#define GDVR_PROFILE_CONCAT(a, b) GDVR_PROFILE_CONCAT_INNER(a, b)

// Times the enclosing scope under `name` when profiling is enabled.
#define GDVR_PROFILE_SCOPE(name)                                              \
  static ::gdvr::obs::ProfileSite GDVR_PROFILE_CONCAT(gdvr_profile_site_,     \
                                                      __LINE__){name};        \
  ::gdvr::obs::ScopedTimer GDVR_PROFILE_CONCAT(gdvr_profile_timer_, __LINE__)(\
      GDVR_PROFILE_CONCAT(gdvr_profile_site_, __LINE__))
