#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <vector>

namespace gdvr::obs {

namespace {

std::atomic<ProfileSite*> g_sites{nullptr};

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("GDVR_PROFILE");
    return env != nullptr && env[0] == '1';
  }();
  return flag;
}

}  // namespace

bool profiling_enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_profiling(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

ProfileSite::ProfileSite(const char* site_name) : name(site_name) {
  ProfileSite* head = g_sites.load(std::memory_order_relaxed);
  do {
    next = head;
  } while (!g_sites.compare_exchange_weak(head, this, std::memory_order_release,
                                          std::memory_order_relaxed));
}

std::uint64_t profile_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void write_profile_report(std::ostream& os) {
  struct Row {
    const char* name;
    std::uint64_t calls;
    std::uint64_t total_ns;
  };
  std::vector<Row> rows;
  for (ProfileSite* s = g_sites.load(std::memory_order_acquire); s != nullptr; s = s->next) {
    const std::uint64_t calls = s->calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    rows.push_back({s->name, calls, s->total_ns.load(std::memory_order_relaxed)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.total_ns > b.total_ns; });

  os << "== profile ==\n";
  os << std::left << std::setw(32) << "scope" << std::right << std::setw(12) << "calls"
     << std::setw(14) << "total_ms" << std::setw(14) << "mean_us" << "\n";
  for (const Row& r : rows) {
    const double total_ms = static_cast<double>(r.total_ns) / 1e6;
    const double mean_us = static_cast<double>(r.total_ns) / 1e3 / static_cast<double>(r.calls);
    os << std::left << std::setw(32) << r.name << std::right << std::setw(12) << r.calls
       << std::setw(14) << std::fixed << std::setprecision(3) << total_ms << std::setw(14)
       << mean_us << "\n";
    os.unsetf(std::ios::fixed);
  }
  if (rows.empty()) os << "(no profiled scopes executed)\n";
}

void reset_profile() {
  for (ProfileSite* s = g_sites.load(std::memory_order_acquire); s != nullptr; s = s->next) {
    s->calls.store(0, std::memory_order_relaxed);
    s->total_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gdvr::obs
