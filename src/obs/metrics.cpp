#include "obs/metrics.hpp"

#include <cmath>
#include <iomanip>

namespace gdvr::obs {

void Histogram::observe(double x) {
  stat_.add(x);
  if (++phase_ >= stride_) {
    phase_ = 0;
    samples_.push_back(x);
    if (samples_.size() >= cap_ && cap_ >= 2) {
      // Decimate: keep every other retained sample, double the stride.
      std::size_t w = 0;
      for (std::size_t r = 0; r < samples_.size(); r += 2) samples_[w++] = samples_[r];
      samples_.resize(w);
      stride_ *= 2;
    }
  }
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  return gdvr::percentile(samples_, q);
}

Counter& Registry::counter(const std::string& name, int node) {
  return counters_[MetricKey{name, node}];
}

Gauge& Registry::gauge(const std::string& name, int node) {
  return gauges_[MetricKey{name, node}];
}

Histogram& Registry::histogram(const std::string& name, int node) {
  return histograms_[MetricKey{name, node}];
}

namespace {

// Minimal JSON double formatting: finite values round-trip via max_digits10;
// non-finite values (never expected, but never invalid output) become null.
void json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  const auto old_precision = os.precision();
  os << std::setprecision(17) << v << std::setprecision(static_cast<int>(old_precision));
}

void json_key(std::ostream& os, const MetricKey& k) {
  os << "\"name\":\"" << k.name << "\",\"node\":" << k.node;
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& [k, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "{";
    json_key(os, k);
    os << ",\"value\":" << c.value() << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [k, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "{";
    json_key(os, k);
    os << ",\"value\":";
    json_double(os, g.value());
    os << "}";
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [k, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "{";
    json_key(os, k);
    os << ",\"count\":" << h.count();
    os << ",\"mean\":";
    json_double(os, h.mean());
    os << ",\"min\":";
    json_double(os, h.count() ? h.min() : 0.0);
    os << ",\"max\":";
    json_double(os, h.count() ? h.max() : 0.0);
    os << ",\"p50\":";
    json_double(os, h.percentile(0.5));
    os << ",\"p90\":";
    json_double(os, h.percentile(0.9));
    os << ",\"p99\":";
    json_double(os, h.percentile(0.99));
    os << "}";
  }
  os << "]}";
}

void Registry::write_csv(std::ostream& os) const {
  os << "kind,name,node,count,value,mean,min,max,p50,p90,p99\n";
  for (const auto& [k, c] : counters_)
    os << "counter," << k.name << "," << k.node << ",1," << c.value() << ",,,,,,\n";
  for (const auto& [k, g] : gauges_) {
    os << "gauge," << k.name << "," << k.node << ",1,";
    json_double(os, g.value());
    os << ",,,,,,\n";
  }
  for (const auto& [k, h] : histograms_) {
    os << "histogram," << k.name << "," << k.node << "," << h.count() << ",,";
    json_double(os, h.mean());
    os << ",";
    json_double(os, h.count() ? h.min() : 0.0);
    os << ",";
    json_double(os, h.count() ? h.max() : 0.0);
    os << ",";
    json_double(os, h.percentile(0.5));
    os << ",";
    json_double(os, h.percentile(0.9));
    os << ",";
    json_double(os, h.percentile(0.99));
    os << "\n";
  }
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace gdvr::obs
