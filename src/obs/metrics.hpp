// Metric registry: named counters, gauges and histograms with optional
// per-node attribution, exportable as JSON or CSV.
//
// The registry is a passive container the harnesses write into on demand
// (VpodRunner::export_metrics, bench exports); nothing in the protocol hot
// paths touches it, so it adds zero cost to runs that do not export.
// Iteration order is the lexicographic (name, node) order of a std::map, so
// exports are byte-stable across runs -- a requirement for diffable metric
// snapshots in CI.
//
// Histograms combine a RunningStat (exact count/mean/min/max/stddev) with a
// bounded sample buffer for percentiles: once the buffer reaches its cap,
// every other retained sample is dropped and the keep stride doubles.
// Deterministic, bounded memory, and percentile error that shrinks as the
// retained sample count re-grows toward the cap.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace gdvr::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  explicit Histogram(std::size_t sample_cap = 4096) : cap_(sample_cap) {}

  void observe(double x);

  std::size_t count() const { return stat_.count(); }
  double mean() const { return stat_.mean(); }
  double stddev() const { return stat_.stddev(); }
  double min() const { return stat_.min(); }
  double max() const { return stat_.max(); }
  // Percentile over the retained samples (exact until `sample_cap`
  // observations, stride-decimated beyond). q in [0, 1]; 0 with no samples.
  double percentile(double q) const;

  std::size_t retained_samples() const { return samples_.size(); }
  std::size_t sample_stride() const { return stride_; }

 private:
  RunningStat stat_;
  std::vector<double> samples_;
  std::size_t cap_;
  std::size_t stride_ = 1;   // keep every stride-th observation
  std::size_t phase_ = 0;    // observations since the last kept sample
};

// A metric is addressed by (name, node); node -1 means "whole system" (or
// "whole protocol"), node >= 0 attributes the value to one simulated node.
struct MetricKey {
  std::string name;
  int node = -1;

  bool operator<(const MetricKey& o) const {
    if (name != o.name) return name < o.name;
    return node < o.node;
  }
};

class Registry {
 public:
  Counter& counter(const std::string& name, int node = -1);
  Gauge& gauge(const std::string& name, int node = -1);
  Histogram& histogram(const std::string& name, int node = -1);

  const std::map<MetricKey, Counter>& counters() const { return counters_; }
  const std::map<MetricKey, Gauge>& gauges() const { return gauges_; }
  const std::map<MetricKey, Histogram>& histograms() const { return histograms_; }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // One JSON object: {"counters": [...], "gauges": [...], "histograms":
  // [...]} with (name, node, value/summary) entries in deterministic order.
  void write_json(std::ostream& os) const;
  // Flat CSV: kind,name,node,count,value,mean,min,max,p50,p90,p99
  void write_csv(std::ostream& os) const;

  void clear();

 private:
  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
};

}  // namespace gdvr::obs
