// Topology generation: random node placement in a 2D physical space with the
// lossy link model, optional rectangular obstacles, and regular grids.
//
// This reproduces the paper's methodology (Section IV-A): N nodes placed
// uniformly at random; a physical link exists when PRR > 0.1; ETX per
// direction is 1/PRR; obstacles are squares that exclude node placement and
// block any link whose line of sight intersects them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"
#include "graph/graph.hpp"
#include "radio/link_model.hpp"

namespace gdvr::radio {

struct Obstacle {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;  // axis-aligned, x0<x1, y0<y1

  bool contains(const Vec& p) const {
    return p[0] >= x0 && p[0] <= x1 && p[1] >= y0 && p[1] <= y1;
  }
  // True iff the open segment a-b crosses this rectangle.
  bool blocks(const Vec& a, const Vec& b) const;
};

// Routing metrics the generator can derive for every link. All are positive
// and additive, as GDV requires (paper Section III-A).
enum class Metric {
  kHopCount,  // 1 per link
  kEtx,       // expected transmissions: 1 / PRR, per direction
  kEtt,       // expected transmission time: ETX * frame_time / bandwidth share
  kEnergy,    // transmit energy: ETX * per-attempt energy (power-dependent)
};

// How the generator enumerates candidate node pairs for link realization.
// Both modes share the same per-pair realization (counter-based randomness
// hashed from (seed, i, j)), so they produce bit-identical topologies; the
// grid only changes which pairs are *visited*, never what a visited pair
// draws. kAllPairs is kept as the slow oracle for equivalence tests, the
// same pattern as geom::Triangulation::LocateMode::kLinearScan.
enum class LinkScanMode {
  kGrid,      // uniform spatial grid at the radio's max-PRR-cutoff radius
  kAllPairs,  // original O(n^2) scan over every (i, j) pair
};

struct TopologyConfig {
  int n = 200;
  double width_m = 100.0;
  double height_m = 100.0;
  // Physical space dimension: 2 (paper default) or 3 (paper Sec. I: GDV
  // provides guaranteed delivery for nodes placed in 2D, 3D and higher).
  // In 3D the z extent equals depth_m; obstacles are 2D-only.
  int space_dim = 2;
  double depth_m = 100.0;
  LinkModelParams radio;
  double prr_threshold = 0.1;
  int num_obstacles = 0;
  double obstacle_size_m = 10.0;
  std::uint64_t seed = 1;
  // When > 0, tx_power_dbm is auto-tuned so the generated network has about
  // this average physical degree (the paper keeps 14.5 at every N).
  double target_avg_degree = 0.0;
  // Keep only the largest connected component (routing experiments need a
  // connected graph); node ids are compacted.
  bool restrict_to_largest_component = true;
  // ETT model: nominal link rate is drawn per link pair from this range
  // (multi-rate radios), frame_bits from the radio config.
  double min_rate_mbps = 1.0;
  double max_rate_mbps = 11.0;
  LinkScanMode link_scan = LinkScanMode::kGrid;
};

struct Topology {
  std::vector<Vec> positions;       // true physical positions (2D or 3D)
  graph::Graph etx;                 // directed ETX link costs (1/PRR)
  graph::Graph hops;                // same adjacency, unit costs
  graph::Graph ett;                 // expected transmission time (ms)
  graph::Graph energy;              // transmit energy per delivered packet (uJ)
  std::vector<Obstacle> obstacles;
  LinkModelParams radio;            // parameters actually used (post-calibration)

  int size() const { return static_cast<int>(positions.size()); }
  const graph::Graph& metric_graph(bool use_etx) const { return use_etx ? etx : hops; }
  const graph::Graph& metric_graph(Metric m) const {
    switch (m) {
      case Metric::kHopCount: return hops;
      case Metric::kEtx: return etx;
      case Metric::kEtt: return ett;
      case Metric::kEnergy: return energy;
    }
    return hops;
  }
};

const char* metric_name(Metric m);

// Random lossy-radio topology per the config. Deterministic in `seed`.
Topology make_random_topology(const TopologyConfig& config);

// Realizes the lossy-radio link model over externally supplied positions
// (mobility rounds, scripted layouts) instead of placing nodes itself;
// config.n is ignored in favor of positions.size(). Per-node hardware
// offsets and obstacles are drawn from config.seed exactly as in
// make_random_topology, and link realization uses the same counter-based
// per-pair randomness -- so for a fixed seed, successive mobility rounds see
// stable hardware and a link set that depends only on where the two
// endpoints currently are, never on how the rest of the network moved.
Topology make_topology_from_positions(const TopologyConfig& config,
                                      std::vector<Vec> positions);

// Regular grid with ideal (PRR = 1) links between nodes within
// `connect_radius_factor * spacing` of each other; factor 1.0 gives the
// 4-neighbor grid of the paper's Figure 1. Used by the grid embedding
// experiments (Figures 1, 2, 5).
Topology make_grid(int rows, int cols, double spacing_m = 1.0,
                   double connect_radius_factor = 1.0);

// Spatial shard partition for the sharded simulator engine (DESIGN.md §4g):
// buckets nodes on the same uniform grid the link scan uses, then packs the
// grid cells -- visited in row-major order, so consecutive cells are spatial
// neighbors -- into `shards` groups with balanced node counts. Physical
// neighbors land in the same or a nearby shard with high probability, which
// keeps cross-shard message traffic (and thus barrier pressure) low.
// `shards == 0` picks clamp(n / 128, 1, 64), overridable via the
// GDVR_SIM_SHARDS environment variable. Returns one shard id in [0, k) per
// node, suitable for Simulator::configure_sharding.
std::vector<int> spatial_shards(const Topology& topo, int shards = 0);

// Binary-searches the transmit power that yields `target_avg_degree` for the
// given config (averaged over a few seeded instances).
double calibrate_tx_power(const TopologyConfig& config, double target_avg_degree);

// Randomly places `count` square obstacles (side `size_m`) fully inside the
// area. Deterministic in `rng`.
std::vector<Obstacle> random_obstacles(int count, double size_m, double width_m, double height_m,
                                       Rng& rng);

}  // namespace gdvr::radio
