// Lossy wireless link model after Zuniga & Krishnamachari ("Analyzing the
// transitional region in low power wireless links") -- the same model behind
// the Seada et al. link-layer simulator the paper uses to create connectivity
// graphs and ETX values.
//
//   path loss:  PL(d) = PL(d0) + 10 n log10(d/d0) + X_sigma   (log-normal)
//   SNR:        gamma(d) = Pt - PL(d) - Pn                     (dB)
//   bit error:  Pe = 1/2 exp(-gamma/2 * B_N/R)                 (NC-FSK)
//   PRR:        (1 - Pe)^(8 * bytes * enc)   enc=2 w/ Manchester encoding
//
// Per-node transmit-power and noise-floor offsets model hardware variance and
// make PRR (hence ETX) asymmetric, as in the original simulator. The paper
// admits a physical link when PRR > 0.1 and sets ETX(u->v) = 1/PRR(u->v).
#pragma once

#include <cmath>

namespace gdvr::radio {

struct LinkModelParams {
  double pl_d0_db = 55.0;        // path loss at the reference distance
  double ref_distance_m = 1.0;
  // Calibrated so a meaningful share of admitted links falls in the
  // transitional (lossy) region, as in the paper's link-layer simulator; see
  // DESIGN.md. Lower exponents put more node pairs near the PRR threshold.
  double path_loss_exp = 3.0;
  double shadow_sigma_db = 4.0;  // log-normal shadowing std dev
  double tx_power_dbm = 5.0;     // see calibrate_tx_power()
  double noise_floor_dbm = -105.0;
  double tx_power_var_db = 1.0;  // per-node output power std dev (asymmetry)
  double noise_var_db = 0.5;     // per-node noise floor std dev (asymmetry)
  double bandwidth_noise_ratio = 0.64;  // B_N/R for MICA2-class NC-FSK radios
  int frame_bytes = 50;
  int preamble_bytes = 2;
  bool manchester = true;
};

// Deterministic (noise-free) path loss in dB at distance d (meters).
inline double path_loss_db(const LinkModelParams& p, double distance_m) {
  const double d = std::max(distance_m, p.ref_distance_m);
  return p.pl_d0_db + 10.0 * p.path_loss_exp * std::log10(d / p.ref_distance_m);
}

// Packet reception rate given the receiver's SNR in dB.
inline double prr_from_snr_db(const LinkModelParams& p, double snr_db) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  const double pe = 0.5 * std::exp(-0.5 * snr * p.bandwidth_noise_ratio);
  const double bits = 8.0 * static_cast<double>(p.frame_bytes + p.preamble_bytes) *
                      (p.manchester ? 2.0 : 1.0);
  return std::pow(1.0 - pe, bits);
}

// PRR at distance d with a given shadowing sample and per-node offsets.
inline double prr(const LinkModelParams& p, double distance_m, double shadow_db,
                  double tx_offset_db, double rx_noise_offset_db) {
  const double snr = (p.tx_power_dbm + tx_offset_db) - (path_loss_db(p, distance_m) + shadow_db) -
                     (p.noise_floor_dbm + rx_noise_offset_db);
  return prr_from_snr_db(p, snr);
}

// Distance beyond which even a very lucky (-4 sigma shadowing, +3 sigma
// hardware) link cannot clear `prr_threshold`; used to prune the O(n^2) pair
// scan during topology generation.
double max_link_distance(const LinkModelParams& p, double prr_threshold);

// SNR (dB) at which prr_from_snr_db crosses `prr_threshold`. PRR is strictly
// increasing in SNR, so a link is admitted iff its (shadowed, offset) SNR
// exceeds this value -- the generator tests admission with one compare in
// the SNR domain instead of evaluating the transcendental PRR chain per pair.
double snr_threshold_db(const LinkModelParams& p, double prr_threshold);

}  // namespace gdvr::radio
