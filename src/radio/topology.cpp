#include "radio/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "common/parallel.hpp"

namespace gdvr::radio {

namespace {

// Proper segment-segment intersection test (including touching).
bool segments_intersect(double ax, double ay, double bx, double by, double cx, double cy,
                        double dx, double dy) {
  const auto cross = [](double ox, double oy, double px, double py, double qx, double qy) {
    return (px - ox) * (qy - oy) - (py - oy) * (qx - ox);
  };
  const double d1 = cross(cx, cy, dx, dy, ax, ay);
  const double d2 = cross(cx, cy, dx, dy, bx, by);
  const double d3 = cross(ax, ay, bx, by, cx, cy);
  const double d4 = cross(ax, ay, bx, by, dx, dy);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)))
    return true;
  const auto on_segment = [](double px, double py, double qx, double qy, double rx, double ry) {
    return std::min(px, qx) <= rx && rx <= std::max(px, qx) && std::min(py, qy) <= ry &&
           ry <= std::max(py, qy);
  };
  if (d1 == 0 && on_segment(cx, cy, dx, dy, ax, ay)) return true;
  if (d2 == 0 && on_segment(cx, cy, dx, dy, bx, by)) return true;
  if (d3 == 0 && on_segment(ax, ay, bx, by, cx, cy)) return true;
  if (d4 == 0 && on_segment(ax, ay, bx, by, dx, dy)) return true;
  return false;
}

struct NodeHardware {
  double tx_offset_db = 0.0;
  double noise_offset_db = 0.0;
};

// ---------------------------------------------------------------------------
// Counter-based per-pair randomness.
//
// Link realization draws (shadowing sample, nominal rate) from a SplitMix64
// stream whose state is a hash of (seed, i, j) rather than from the
// generator's sequential Rng. A pair's draws therefore do not depend on how
// many other pairs were visited before it, which is what lets the spatial
// grid skip far-apart pairs, lets the sweep run on worker threads, and keeps
// LinkScanMode::kGrid bit-identical to LinkScanMode::kAllPairs.

inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class PairRng {
 public:
  // `seed_hash` is mix64(seed + golden) -- constant per topology, so callers
  // hash the seed once (seed_hash()) instead of per pair.
  PairRng(std::uint64_t seed_hash, int i, int j)
      : x_(mix64(seed_hash ^
                 ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
                  static_cast<std::uint32_t>(j)))) {}

  static std::uint64_t seed_hash(std::uint64_t seed) {
    return mix64(seed + 0x9E3779B97F4A7C15ull);
  }

  std::uint64_t next_u64() {
    x_ += 0x9E3779B97F4A7C15ull;
    return mix64(x_);
  }
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Raw stream state, for suspending a pair's stream between realization
  // stages (the batched sweep gates many pairs before admitting any).
  std::uint64_t state() const { return x_; }
  static PairRng from_state(std::uint64_t state) { return PairRng(state); }

 private:
  explicit PairRng(std::uint64_t raw_state) : x_(raw_state) {}
  std::uint64_t x_;
};

// Standard normal quantile (Acklam's rational approximation, |rel err| <
// 1.2e-9 -- far below the model's own calibration uncertainty). The shadow
// sample is sigma * inv_normal_cdf(u): *monotone* in the single uniform u,
// which is what makes the band-gate ladder in realize() exact -- "admission
// would need shadow < -k sigma" becomes "u < Phi(-k)", one compare, no
// transcendentals. Only the tail branches (|u - 1/2| > 0.47575) pay a
// log + sqrt.
double inv_normal_cdf(double u) {
  constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                           -2.759285104469687e+02, 1.383577518672690e+02,
                           -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                           -1.556989798598866e+02, 6.680131188771972e+01,
                           -1.328068155288572e+01};
  constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                           -2.400758277161838e+00, -2.549732539343734e+00,
                           4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                           2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  if (u < kLow) {
    const double q = std::sqrt(-2.0 * std::log(u));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (u > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - u));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = u - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// Phi(-k/2) for k = 1..7, each rounded *up* so a band-gate rejection is
// always confirmed by the final shadow < s_adm compare (the gates are
// conservative; they never reject a pair the exact rule admits). Stored as
// 53-bit integers on the PairRng mantissa scale: the ladder compares the raw
// shadow draw before it is ever converted to a double.
constexpr int kNumBands = 7;
constexpr std::uint64_t kPhiBandU53[kNumBands] = {
    static_cast<std::uint64_t>(0.3085376 * 0x1.0p53),    // Phi(-0.5)
    static_cast<std::uint64_t>(0.1586554 * 0x1.0p53),    // Phi(-1.0)
    static_cast<std::uint64_t>(0.0668073 * 0x1.0p53),    // Phi(-1.5)
    static_cast<std::uint64_t>(0.0227502 * 0x1.0p53),    // Phi(-2.0)
    static_cast<std::uint64_t>(0.0062097 * 0x1.0p53),    // Phi(-2.5)
    static_cast<std::uint64_t>(0.0013500 * 0x1.0p53),    // Phi(-3.0)
    static_cast<std::uint64_t>(0.0002326291 * 0x1.0p53), // Phi(-3.5)
};

// exp(x) for the link model's argument range (|x| < ~30 on the admission
// path, [-700, 0] on the packet-error path): Cody-Waite 2^k range reduction
// plus a degree-9 Taylor kernel on r in [-ln2/2, ln2/2]. Max relative error
// ~1e-11 -- three orders below the 1e-9 tolerances the radio tests allow,
// and an order faster than libm's exactly-rounded exp on this path. x below
// -700 returns 0 (the exact value is subnormal; a packet-error probability
// that small is 0 for every metric). Deterministic: plain double arithmetic
// in fixed order, no library calls.
inline double fast_exp(double x) {
  if (x < -700.0) return 0.0;
  constexpr double kShift = 0x1.8p52;  // add-subtract trick: round-to-nearest
  const double t = x * 1.4426950408889634074 + kShift;
  const double kd = t - kShift;
  const std::int64_t k = static_cast<std::int64_t>(kd);
  const double r = (x - kd * 6.93147180369123816490e-01) - kd * 1.90821492927058770002e-10;
  double p = 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  std::uint64_t bits;
  std::memcpy(&bits, &p, sizeof(bits));
  bits += static_cast<std::uint64_t>(k) << 52;  // scale by 2^k
  std::memcpy(&p, &bits, sizeof(bits));
  return p;
}

// -log1p(-pe) for packet-error probabilities. Admitted links have
// pe <= ~0.03 even at extreme PRR thresholds, so the truncated series is
// accurate to ~pe^7/7 -- far below the exp kernel's own error.
inline double neg_log1p_neg(double pe) {
  double s = 1.0 / 6.0;
  s = s * pe + 1.0 / 5.0;
  s = s * pe + 1.0 / 4.0;
  s = s * pe + 1.0 / 3.0;
  s = s * pe + 1.0 / 2.0;
  s = s * pe + 1.0;
  return pe * s;
}

// One admitted pair as the sweep leaves it: per-direction linear SNR plus the
// drawn nominal rate. The exact PRR/ETX chain runs later in a tight
// branch-free pass (finish()) -- separating the two keeps the sweep's
// serial per-pair dependency chain short and lets the out-of-order core
// overlap the transcendental math of independent links.
struct PairDraw {
  int i = -1, j = -1;
  double snr_ij = 0.0, snr_ji = 0.0;
  double rate = 1.0;
};

// One admitted link, ready to insert into the four metric graphs.
struct LinkRec {
  int i = -1, j = -1;
  double etx_ij = 0.0, etx_ji = 0.0;
  double ett_ij = 0.0, ett_ji = 0.0;
  double en_ij = 0.0, en_ji = 0.0;
};

// Shared per-pair realization used by both scan modes. Admission is decided
// with a single compare in the SNR domain: PRR is strictly increasing in
// SNR, so min(prr_ij, prr_ji) > threshold iff the pair's shadowing sample
// falls below `s_adm`, the shadow-free worst-direction SNR margin over
// snr_threshold_db. Two deterministic pre-gates avoid even drawing for
// hopeless pairs: the global d_max cutoff (as before), and a per-pair
// squared-distance bound equivalent to s_adm <= -4 sigma -- consistent with
// max_link_distance(), which already truncates the shadowing tail at
// -4 sigma. The exact transcendental PRR chain runs only for admitted pairs.
struct LinkRealizer {
  const TopologyConfig* config = nullptr;
  const std::vector<Vec>* positions = nullptr;
  const std::vector<Obstacle>* obstacles = nullptr;
  const std::vector<NodeHardware>* hw = nullptr;

  double d_max = 0.0, d_max2 = 0.0;
  double ref2 = 1.0;       // ref_distance^2
  double pl_coeff = 0.0;   // 5 * path_loss_exp (log10(d^2) form of path loss)
  double s_base = 0.0;     // Pt - Pn - pl_d0 - snr_threshold (shared s_adm part)
  // Linear-domain constants: the admitted-pair math runs entirely on linear
  // power ratios (one exp per transcendental step) instead of the dB-domain
  // pow(10, x/10) chains, which is what makes realize() cheap enough to call
  // tens of thousands of times per generated topology.
  double half_pl_exp = 1.5;  // path_loss_exp / 2 ((d^2)^this = (d/d0)^n_pl)
  double ln10_10 = 0.0;      // ln(10) / 10: dB -> natural-log scale
  double snr_c0 = 0.0;       // 10^((Pt - Pn - pl_d0) / 10): shared linear-SNR factor
  double adm_c0 = 0.0;       // 10^(s_base / 10): linear admission bound factor
  double bn_half = 0.0;      // bandwidth_noise_ratio / 2
  std::vector<double> P10t, P10n;  // 10^(tx_offset/10), 10^(-noise_offset/10)
  // d^2-domain band gates: band_d2[k] * min(T[i] * V[j], T[j] * V[i]) is the
  // squared distance beyond which admission requires shadow < -(k+1)/2 sigma.
  // band_d2 folds the scalar constants, T/V the per-node hardware offsets
  // (10^(+-offset / (5 n_pl))). The last band (-4 sigma) rejects outright: it
  // is the same truncation max_link_distance() already applies globally,
  // evaluated with the pair's actual hardware. Earlier bands reject on the
  // shadow uniform alone (u >= Phi(-(k+1)/2)), before any transcendental
  // runs; half-sigma rungs leave only a thin boundary layer of pairs that
  // reach the exact (and much costlier) admission compare.
  bool use_band_gates = false;
  double band_d2[kNumBands + 1] = {0.0};
  std::vector<double> T, V;
  std::vector<double> tx_mw;   // per-node transmit power (energy metric)
  double frame_bits = 0.0;
  // Flat position copies. Vec is a 16-slot dynamic-dimension type; the sweep
  // touches every candidate pair, so it reads plain arrays instead.
  std::vector<double> px, py, pz;  // pz empty in 2D
  std::uint64_t seed_hash = 0;     // PairRng::seed_hash(config.seed)

  void init(const TopologyConfig& cfg, const std::vector<Vec>& pos,
            const std::vector<Obstacle>& obs, const std::vector<NodeHardware>& hardware) {
    config = &cfg;
    positions = &pos;
    obstacles = &obs;
    hw = &hardware;
    const LinkModelParams& p = cfg.radio;
    d_max = max_link_distance(p, cfg.prr_threshold);
    d_max2 = d_max * d_max;
    ref2 = p.ref_distance_m * p.ref_distance_m;
    pl_coeff = 5.0 * p.path_loss_exp;
    const double snr_thr = snr_threshold_db(p, cfg.prr_threshold);
    s_base = p.tx_power_dbm - p.noise_floor_dbm - p.pl_d0_db - snr_thr;
    frame_bits = 8.0 * static_cast<double>(p.frame_bytes + p.preamble_bytes) *
                 (p.manchester ? 2.0 : 1.0);
    half_pl_exp = 0.5 * p.path_loss_exp;
    ln10_10 = std::log(10.0) / 10.0;
    snr_c0 = std::pow(10.0, (p.tx_power_dbm - p.noise_floor_dbm - p.pl_d0_db) / 10.0);
    adm_c0 = std::pow(10.0, s_base / 10.0);
    bn_half = 0.5 * p.bandwidth_noise_ratio;
    const std::size_t n = hardware.size();
    T.resize(n);
    V.resize(n);
    P10t.resize(n);
    P10n.resize(n);
    tx_mw.resize(n);
    use_band_gates = p.path_loss_exp > 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (use_band_gates) {
        T[u] = std::pow(10.0, hardware[u].tx_offset_db / pl_coeff);
        V[u] = std::pow(10.0, -hardware[u].noise_offset_db / pl_coeff);
      }
      P10t[u] = std::pow(10.0, hardware[u].tx_offset_db / 10.0);
      P10n[u] = std::pow(10.0, -hardware[u].noise_offset_db / 10.0);
      tx_mw[u] = std::pow(10.0, (p.tx_power_dbm + hardware[u].tx_offset_db) / 10.0);
    }
    if (use_band_gates) {
      // s_adm <= -k/2 sigma <=> 10 n_pl log10(d / d0) >= beta_k + min-offset,
      // i.e. d^2 >= d0^2 10^(beta_k / (5 n_pl)) * 10^(min-offset / (5 n_pl)).
      for (int k = 1; k <= kNumBands + 1; ++k) {
        const double beta = s_base + 0.5 * static_cast<double>(k) * p.shadow_sigma_db;
        band_d2[k - 1] = ref2 * std::pow(10.0, beta / pl_coeff);
      }
    }
    px.resize(n);
    py.resize(n);
    if (!pos.empty() && pos.front().dim() == 3) pz.resize(n);
    for (std::size_t u = 0; u < n; ++u) {
      px[u] = pos[u][0];
      py[u] = pos[u][1];
      if (!pz.empty()) pz[u] = pos[u][2];
    }
    seed_hash = PairRng::seed_hash(cfg.seed);
  }

  // Cheap inline prefilter: squared distance from the flat arrays plus the
  // global radio-range cutoff. Only in-range pairs reach the out-of-line
  // realization body.
  bool realize(int i, int j, PairDraw& rec) const {
    const std::size_t si = static_cast<std::size_t>(i), sj = static_cast<std::size_t>(j);
    const double dx = px[si] - px[sj], dy = py[si] - py[sj];
    double d2 = dx * dx + dy * dy;
    if (!pz.empty()) {
      const double dz = pz[si] - pz[sj];
      d2 += dz * dz;
    }
    if (d2 > d_max2 || d2 <= 0.0) return false;
    return realize_in_range(i, j, d2, rec);
  }

  bool realize_in_range(int i, int j, double d2, PairDraw& rec) const {
    double u = 0.0;
    std::uint64_t state = 0;
    return gate(i, j, d2, &u, &state) && admit(i, j, d2, u, state, rec);
  }

  // Realization stage 1: deterministic band gates plus the ladder on the
  // pair's shadow uniform -- everything that can reject a pair without
  // transcendental math. On success, *u_out is the retained uniform and
  // *state_out the pair's suspended draw stream (the rate draw continues it
  // in admit()).
  bool gate(int i, int j, double d2, double* u_out, std::uint64_t* state_out) const {
    const std::size_t si = static_cast<std::size_t>(i), sj = static_cast<std::size_t>(j);
    const double mtv = use_band_gates ? std::min(T[si] * V[sj], T[sj] * V[si]) : 0.0;
    if (use_band_gates && d2 >= band_d2[kNumBands] * mtv) return false;  // needs < -4 sigma
    PairRng prng(seed_hash, i, j);
    // Raw 53-bit draw; u = raw * 2^-53 exactly, so the ladder can compare in
    // the integer domain (raw == 0 is the uniform() <= 1e-300 retry case).
    std::uint64_t raw = prng.next_u64() >> 11;
    while (raw == 0) raw = prng.next_u64() >> 11;
    if (use_band_gates && d2 >= band_d2[0] * mtv) {
      if (raw >= kPhiBandU53[0]) return false;
      for (int k = 1; k < kNumBands && d2 >= band_d2[k] * mtv; ++k)
        if (raw >= kPhiBandU53[k]) return false;
    }
    *u_out = static_cast<double>(raw) * 0x1.0p-53;
    *state_out = prng.state();
    return true;
  }

  // Realization stage 2: exact admission compare, rate draw, obstacle check.
  bool admit(int i, int j, double d2, double u, std::uint64_t state, PairDraw& rec) const {
    const std::size_t si = static_cast<std::size_t>(i), sj = static_cast<std::size_t>(j);
    const LinkModelParams& p = config->radio;
    // Everything below runs on linear power ratios. With
    //   pf = 10^(-shadow/10) / (d/d0)^n_pl     (shadow + distance attenuation)
    //   g_uv = 10^((tx_u - noise_v)/10)        (per-direction hardware gain)
    // the receiver SNR is snr_c0 * pf * g_uv, and `shadow < s_adm` from the
    // dB-domain admission rule becomes adm_c0 * pf * min(g_ij, g_ji) > 1 --
    // strictly monotone transforms of both sides, so the same rule. This
    // spends one exp (shadow) + a sqrt (path loss) on the admission test,
    // and 2 exp + (exp + log1p) per direction on the exact PRR chain for
    // admitted pairs, instead of the pow(10, x/10) / pow(1-pe, bits) chain.
    const double shadow = p.shadow_sigma_db * inv_normal_cdf(u);
    const double d2n = std::max(d2, ref2) / ref2;
    double plin;  // (d/d0)^n_pl, i.e. 10^(distance path loss / 10)
    if (p.path_loss_exp == 3.0)
      plin = d2n * std::sqrt(d2n);
    else if (p.path_loss_exp == 2.0)
      plin = d2n;
    else if (p.path_loss_exp == 4.0)
      plin = d2n * d2n;
    else
      plin = std::pow(d2n, half_pl_exp);
    const double att = fast_exp(-ln10_10 * shadow);  // 10^(-shadow/10)
    const double g_ij = P10t[si] * P10n[sj];
    const double g_ji = P10t[sj] * P10n[si];
    // adm_c0 * (att / plin) * min(g) > 1, with the division hoisted off the
    // rejection path (most calls reject; only admitted pairs need pf itself).
    if (!(adm_c0 * att * std::min(g_ij, g_ji) > plin)) return false;
    const double pf = att / plin;
    PairRng prng = PairRng::from_state(state);
    const double rate = prng.uniform(config->min_rate_mbps, config->max_rate_mbps);
    if (!obstacles->empty()) {
      const Vec& a = (*positions)[si];
      const Vec& b = (*positions)[sj];
      if (std::any_of(obstacles->begin(), obstacles->end(),
                      [&](const Obstacle& o) { return o.blocks(a, b); }))
        return false;
    }
    rec.i = i;
    rec.j = j;
    rec.snr_ij = snr_c0 * pf * g_ij;
    rec.snr_ji = snr_c0 * pf * g_ji;
    rec.rate = rate;
    return true;
  }

  // PRR chain (same model as prr()): pe = 1/2 exp(-B/2 * snr_lin),
  // ETX = 1/PRR = (1 - pe)^-bits = exp(bits * -log1p(-pe)).
  LinkRec finish(const PairDraw& pd) const {
    const std::size_t si = static_cast<std::size_t>(pd.i), sj = static_cast<std::size_t>(pd.j);
    const double pe_ij = 0.5 * fast_exp(-bn_half * pd.snr_ij);
    const double pe_ji = 0.5 * fast_exp(-bn_half * pd.snr_ji);
    LinkRec r;
    r.i = pd.i;
    r.j = pd.j;
    r.etx_ij = fast_exp(frame_bits * neg_log1p_neg(pe_ij));
    r.etx_ji = fast_exp(frame_bits * neg_log1p_neg(pe_ji));
    const double airtime_ms = frame_bits / (pd.rate * 1000.0);
    r.ett_ij = r.etx_ij * airtime_ms;
    r.ett_ji = r.etx_ji * airtime_ms;
    r.en_ij = r.ett_ij * tx_mw[si];
    r.en_ji = r.ett_ji * tx_mw[sj];
    return r;
  }
};

// Reusable per-thread buffers for generate()'s large transient arrays (the
// admitted-pair lists and the flat edge runs). Topology generation is called
// in tight loops (power calibration, benchmarks, scalability sweeps); letting
// these megabyte-scale vectors survive between calls keeps glibc from
// mmap/munmap-ing them every generation, which otherwise costs a fresh page
// fault per 4 KiB touched -- measurably more than the link math itself.
// Worker threads each get their own scratch; a few MB per thread stays
// resident, which is fine for a simulator.
struct GenScratch {
  std::vector<PairDraw> draws;
  std::vector<graph::Edge> fe, fh, ft, fn;  // flat per-metric edge runs
};

GenScratch& gen_scratch() {
  static thread_local GenScratch s;
  return s;
}

// Uniform spatial grid over the placement box. Cells are at least
// d_max / 2 on a side (capped so the cell count stays O(n)); a node's
// candidate partners all live within `range` cells per axis, where
// range = ceil(d_max / cell) <= 2.
struct SpatialGrid {
  int dim = 2;
  int counts[3] = {1, 1, 1};
  double cell[3] = {1.0, 1.0, 1.0};
  int range[3] = {1, 1, 1};
  std::vector<std::vector<int>> cells;  // node ids in ascending id order

  SpatialGrid(const std::vector<Vec>& pos, const Vec& extent, double d_max) {
    dim = extent.dim();
    const int n = static_cast<int>(pos.size());
    // Per-axis cap keeps total cells <= ~8n even for tiny radii.
    const int cap = std::max(
        1, 2 * static_cast<int>(std::ceil(std::pow(std::max(n, 1), 1.0 / dim))));
    int total = 1;
    for (int k = 0; k < dim; ++k) {
      const double target = std::max(d_max / 2.0, 1e-9);
      counts[k] = std::clamp(static_cast<int>(extent[k] / target), 1, cap);
      cell[k] = extent[k] / counts[k];
      range[k] = cell[k] > 0.0
                     ? std::min(counts[k], static_cast<int>(std::ceil(d_max / cell[k])))
                     : counts[k];
      total *= counts[k];
    }
    cells.resize(static_cast<std::size_t>(total));
    for (int u = 0; u < n; ++u)
      cells[static_cast<std::size_t>(cell_index(pos[static_cast<std::size_t>(u)]))].push_back(u);
  }

  int coord(const Vec& p, int k) const {
    return std::clamp(static_cast<int>(p[k] / cell[k]), 0, counts[k] - 1);
  }
  int cell_index(const Vec& p) const {
    int idx = dim == 3 ? coord(p, 2) : 0;
    idx = idx * counts[1] + coord(p, 1);
    return idx * counts[0] + coord(p, 0);
  }
};

// Link realization + graph assembly over already-placed positions. Shared by
// generate() and make_topology_from_positions(): `topo` arrives with
// positions/obstacles/radio set, and everything downstream keys off
// topo.size(), so the same code serves config-placed and caller-placed nodes.
void realize_and_assemble(const TopologyConfig& config, Topology& topo,
                          const std::vector<NodeHardware>& hw, const Vec& extent) {
  const int n = topo.size();
  // One symmetric shadowing sample and one nominal rate per pair, drawn from
  // the counter-based PairRng; asymmetry comes from the per-node hardware
  // offsets, as in the original link-layer simulator.
  LinkRealizer realizer;
  realizer.init(config, topo.positions, topo.obstacles, hw);

  GenScratch& scratch = gen_scratch();
  // Admitted pairs in (i, j) order, as a list of chunks (the parallel sweep
  // produces one list per row chunk; gluing them would just copy megabytes,
  // so the assembly passes below iterate the chunks in place).
  std::vector<std::vector<PairDraw>> chunk_links;
  std::vector<const std::vector<PairDraw>*> parts;
  if (config.link_scan == LinkScanMode::kAllPairs) {
    std::vector<PairDraw>& draws = scratch.draws;
    draws.clear();
    PairDraw rec;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (realizer.realize(i, j, rec)) draws.push_back(rec);
    parts.push_back(&draws);
  } else {
    const SpatialGrid grid(topo.positions, extent, realizer.d_max);
    // Fan row chunks over the worker pool. Chunk boundaries are fixed (not
    // thread-count dependent) and results are concatenated in chunk order,
    // so the admitted link list -- and with it every graph -- is identical
    // no matter how many workers ran the sweep.
    constexpr int kRowsPerChunk = 64;
    const int chunks = (n + kRowsPerChunk - 1) / kRowsPerChunk;
    ParallelTrials pool;
    auto result = pool.run(chunks, [&](int c) {
      std::vector<PairDraw> out;
      PairDraw rec;
      const int lo = c * kRowsPerChunk;
      const int hi = std::min(n, lo + kRowsPerChunk);
      out.reserve(static_cast<std::size_t>(hi - lo) * 8);
      const bool three_d = !realizer.pz.empty();
      for (int i = lo; i < hi; ++i) {
        const std::size_t si = static_cast<std::size_t>(i);
        const Vec& p = topo.positions[si];
        const std::size_t row_start = out.size();
        const double xi = realizer.px[si], yi = realizer.py[si];
        const double zi = three_d ? realizer.pz[si] : 0.0;
        const int cx = grid.coord(p, 0), cy = grid.coord(p, 1);
        const int cz = grid.dim == 3 ? grid.coord(p, 2) : 0;
        const int z_lo = std::max(0, cz - grid.range[2]);
        const int z_hi = grid.dim == 3 ? std::min(grid.counts[2] - 1, cz + grid.range[2]) : 0;
        for (int z = z_lo; z <= z_hi; ++z)
          for (int y = std::max(0, cy - grid.range[1]);
               y <= std::min(grid.counts[1] - 1, cy + grid.range[1]); ++y)
            for (int x = std::max(0, cx - grid.range[0]);
                 x <= std::min(grid.counts[0] - 1, cx + grid.range[0]); ++x) {
              const auto& bucket =
                  grid.cells[static_cast<std::size_t>((z * grid.counts[1] + y) * grid.counts[0] + x)];
              // Bucket ids ascend, so the j > i suffix starts at upper_bound.
              for (auto it = std::upper_bound(bucket.begin(), bucket.end(), i);
                   it != bucket.end(); ++it) {
                const int j = *it;
                const std::size_t sj = static_cast<std::size_t>(j);
                const double dx = xi - realizer.px[sj], dy = yi - realizer.py[sj];
                double d2 = dx * dx + dy * dy;
                if (three_d) {
                  const double dz = zi - realizer.pz[sj];
                  d2 += dz * dz;
                }
                if (d2 <= realizer.d_max2 && d2 > 0.0 &&
                    realizer.realize_in_range(i, j, d2, rec))
                  out.push_back(rec);
              }
            }
        // Cells are visited in arbitrary spatial order; restore the (i, j)
        // lexicographic order the all-pairs oracle produces.
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(row_start), out.end(),
                  [](const PairDraw& a, const PairDraw& b) { return a.j < b.j; });
      }
      return out;
    });
    chunk_links = std::move(result);
    for (const auto& chunk : chunk_links) parts.push_back(&chunk);
  }

  // Counting-sort the directed edges into per-node runs, then hand each run
  // to the graphs in one bulk assignment. The per-node edge order is exactly
  // the order a per-link add_bidirectional loop would have produced. The
  // exact PRR/ETX chain (finish()) runs inside the scatter pass: iterations
  // are independent, so the expensive exp calls of neighboring links overlap,
  // and the per-link metric record never round-trips through memory.
  topo.etx = graph::Graph(n);
  topo.hops = graph::Graph(n);
  topo.ett = graph::Graph(n);
  topo.energy = graph::Graph(n);
  {
    const std::size_t nn = static_cast<std::size_t>(n);
    std::vector<std::size_t> off(nn + 1, 0);
    for (const auto* part : parts)
      for (const PairDraw& d : *part) {
        ++off[static_cast<std::size_t>(d.i) + 1];
        ++off[static_cast<std::size_t>(d.j) + 1];
      }
    for (std::size_t u = 0; u < nn; ++u) off[u + 1] += off[u];
    const std::size_t m = off[nn];
    std::vector<graph::Edge>&fe = scratch.fe, &fh = scratch.fh, &ft = scratch.ft,
                            &fn = scratch.fn;
    fe.resize(m);
    fh.resize(m);
    ft.resize(m);
    fn.resize(m);
    std::vector<std::size_t> cur(off.begin(), off.end() - 1);
    for (const auto* part : parts)
    for (const PairDraw& d : *part) {
      const LinkRec r = realizer.finish(d);
      const std::size_t a = cur[static_cast<std::size_t>(r.i)]++;
      fe[a] = {r.j, r.etx_ij};
      fh[a] = {r.j, 1.0};
      ft[a] = {r.j, r.ett_ij};
      fn[a] = {r.j, r.en_ij};
      const std::size_t b = cur[static_cast<std::size_t>(r.j)]++;
      fe[b] = {r.i, r.etx_ji};
      fh[b] = {r.i, 1.0};
      ft[b] = {r.i, r.ett_ji};
      fn[b] = {r.i, r.en_ji};
    }
    for (int u = 0; u < n; ++u) {
      const std::size_t lo = off[static_cast<std::size_t>(u)];
      const std::size_t k = off[static_cast<std::size_t>(u) + 1] - lo;
      topo.etx.assign_neighbors_unchecked(u, {fe.data() + lo, k});
      topo.hops.assign_neighbors_unchecked(u, {fh.data() + lo, k});
      topo.ett.assign_neighbors_unchecked(u, {ft.data() + lo, k});
      topo.energy.assign_neighbors_unchecked(u, {fn.data() + lo, k});
    }
  }

  if (config.restrict_to_largest_component) {
    const std::vector<int> keep = graph::largest_component(topo.etx);
    if (static_cast<int>(keep.size()) != n) {
      std::vector<Vec> pos;
      pos.reserve(keep.size());
      for (int u : keep) pos.push_back(topo.positions[static_cast<std::size_t>(u)]);
      topo.positions = std::move(pos);
      topo.etx = topo.etx.induced_subgraph(keep);
      topo.hops = topo.hops.induced_subgraph(keep);
      topo.ett = topo.ett.induced_subgraph(keep);
      topo.energy = topo.energy.induced_subgraph(keep);
    }
  }
}

Topology generate(const TopologyConfig& config) {
  GDVR_ASSERT(config.space_dim == 2 || config.space_dim == 3);
  GDVR_ASSERT_MSG(config.space_dim == 2 || config.num_obstacles == 0,
                  "obstacles are modeled in 2D only");
  Rng rng(config.seed);
  Topology topo;
  topo.radio = config.radio;
  topo.obstacles =
      random_obstacles(config.num_obstacles, config.obstacle_size_m, config.width_m,
                       config.height_m, rng);

  // Place nodes uniformly, rejecting positions inside obstacles.
  topo.positions.reserve(static_cast<std::size_t>(config.n));
  Vec extent = config.space_dim == 2 ? Vec{config.width_m, config.height_m}
                                     : Vec{config.width_m, config.height_m, config.depth_m};
  for (int i = 0; i < config.n; ++i) {
    Vec p;
    for (int attempt = 0; attempt < 10000; ++attempt) {
      p = rng.point_in_box(extent);
      const bool inside = std::any_of(topo.obstacles.begin(), topo.obstacles.end(),
                                      [&](const Obstacle& o) { return o.contains(p); });
      if (!inside) break;
    }
    topo.positions.push_back(p);
  }

  // Per-node hardware variance (makes links asymmetric).
  std::vector<NodeHardware> hw(static_cast<std::size_t>(config.n));
  for (auto& h : hw) {
    h.tx_offset_db = rng.normal(0.0, config.radio.tx_power_var_db);
    h.noise_offset_db = rng.normal(0.0, config.radio.noise_var_db);
  }

  realize_and_assemble(config, topo, hw, extent);
  return topo;
}

}  // namespace

std::vector<int> spatial_shards(const Topology& topo, int shards) {
  const int n = topo.size();
  if (shards <= 0) {
    if (const char* env = std::getenv("GDVR_SIM_SHARDS")) shards = std::atoi(env);
    if (shards <= 0) shards = std::clamp(n / 128, 1, 64);
  }
  shards = std::clamp(shards, 1, std::max(n, 1));
  std::vector<int> shard_of(static_cast<std::size_t>(n), 0);
  if (shards == 1 || n == 0) return shard_of;

  // Bounding box of the placement (positions live in [0, extent] per axis).
  const int dim = topo.positions.front().dim();
  Vec extent(dim);
  for (const Vec& p : topo.positions)
    for (int k = 0; k < dim; ++k) extent[k] = std::max(extent[k], p[k]);
  double max_extent = 1e-9;
  for (int k = 0; k < dim; ++k) {
    extent[k] = std::max(extent[k], 1e-9) * 1.0001;  // keep coord() off the edge
    max_extent = std::max(max_extent, extent[k]);
  }

  // Reuse the link-scan bucket grid with d_max chosen so the grid has at
  // least `shards` cells (SpatialGrid targets a cell side of d_max / 2).
  const double per_axis = std::ceil(std::pow(static_cast<double>(shards), 1.0 / dim));
  SpatialGrid grid(topo.positions, extent, 2.0 * max_extent / per_axis);

  // Pack cells into `shards` groups with balanced node counts: the i-th node
  // in cell-major order goes to shard floor(i * shards / n).
  int rank = 0;
  for (const std::vector<int>& cell : grid.cells)
    for (int u : cell) {
      shard_of[static_cast<std::size_t>(u)] =
          static_cast<int>(static_cast<std::int64_t>(rank) * shards / n);
      ++rank;
    }
  return shard_of;
}

bool Obstacle::blocks(const Vec& a, const Vec& b) const {
  if (contains(a) || contains(b)) return true;
  // Segment fully to one side of the box?
  if (std::max(a[0], b[0]) < x0 || std::min(a[0], b[0]) > x1 || std::max(a[1], b[1]) < y0 ||
      std::min(a[1], b[1]) > y1)
    return false;
  return segments_intersect(a[0], a[1], b[0], b[1], x0, y0, x1, y0) ||
         segments_intersect(a[0], a[1], b[0], b[1], x1, y0, x1, y1) ||
         segments_intersect(a[0], a[1], b[0], b[1], x1, y1, x0, y1) ||
         segments_intersect(a[0], a[1], b[0], b[1], x0, y1, x0, y0);
}

double max_link_distance(const LinkModelParams& p, double prr_threshold) {
  // Best case: -4 sigma shadowing plus +3 sigma hardware luck on both ends.
  const double margin = 4.0 * p.shadow_sigma_db + 3.0 * (p.tx_power_var_db + p.noise_var_db);
  double lo = p.ref_distance_m, hi = p.ref_distance_m;
  // Grow until PRR at hi is below threshold even with full margin.
  for (int i = 0; i < 64; ++i) {
    const double snr = p.tx_power_dbm + margin - path_loss_db(p, hi) - p.noise_floor_dbm;
    if (prr_from_snr_db(p, snr) <= prr_threshold) break;
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double snr = p.tx_power_dbm + margin - path_loss_db(p, mid) - p.noise_floor_dbm;
    if (prr_from_snr_db(p, snr) > prr_threshold)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

double snr_threshold_db(const LinkModelParams& p, double prr_threshold) {
  double lo = -200.0, hi = 200.0;  // prr is ~0 at -200 dB and ~1 at +200 dB
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (prr_from_snr_db(p, mid) > prr_threshold)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

std::vector<Obstacle> random_obstacles(int count, double size_m, double width_m, double height_m,
                                       Rng& rng) {
  std::vector<Obstacle> obstacles;
  obstacles.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double x = rng.uniform(0.0, std::max(width_m - size_m, 0.0));
    const double y = rng.uniform(0.0, std::max(height_m - size_m, 0.0));
    obstacles.push_back({x, y, x + size_m, y + size_m});
  }
  return obstacles;
}

double calibrate_tx_power(const TopologyConfig& config, double target_avg_degree) {
  double lo = -30.0, hi = 30.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    TopologyConfig c = config;
    c.radio.tx_power_dbm = mid;
    c.target_avg_degree = 0.0;
    c.restrict_to_largest_component = false;
    double degree = 0.0;
    constexpr int kSamples = 3;
    for (int s = 0; s < kSamples; ++s) {
      c.seed = config.seed + 7919ull * static_cast<std::uint64_t>(s);
      degree += generate(c).etx.average_degree();
    }
    degree /= kSamples;
    if (degree < target_avg_degree)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

Topology make_random_topology(const TopologyConfig& config) {
  TopologyConfig c = config;
  if (config.target_avg_degree > 0.0)
    c.radio.tx_power_dbm = calibrate_tx_power(config, config.target_avg_degree);
  return generate(c);
}

Topology make_topology_from_positions(const TopologyConfig& config,
                                      std::vector<Vec> positions) {
  Topology topo;
  topo.radio = config.radio;
  if (positions.empty()) return topo;
  const int dim = positions.front().dim();
  GDVR_ASSERT(dim == 2 || dim == 3);
  GDVR_ASSERT_MSG(dim == 2 || config.num_obstacles == 0, "obstacles are modeled in 2D only");
  const int n = static_cast<int>(positions.size());

  // Same seed-keyed draw order as generate(): obstacles first, then per-node
  // hardware -- only the placement draws are skipped. target_avg_degree is
  // intentionally NOT honored here (calibration re-places nodes randomly);
  // callers wanting a target degree calibrate once up front and pass the
  // resulting tx power in config.radio.
  Rng rng(config.seed);
  topo.obstacles = random_obstacles(config.num_obstacles, config.obstacle_size_m,
                                    config.width_m, config.height_m, rng);
  topo.positions = std::move(positions);
  std::vector<NodeHardware> hw(static_cast<std::size_t>(n));
  for (auto& h : hw) {
    h.tx_offset_db = rng.normal(0.0, config.radio.tx_power_var_db);
    h.noise_offset_db = rng.normal(0.0, config.radio.noise_var_db);
  }

  // Bounding box of the supplied positions (the spatial grid clamps, so a
  // slightly-tight box only merges edge cells -- never loses a candidate).
  Vec extent(dim);
  for (const Vec& p : topo.positions)
    for (int k = 0; k < dim; ++k) extent[k] = std::max(extent[k], p[k]);
  for (int k = 0; k < dim; ++k) extent[k] = std::max(extent[k], 1e-9) * 1.0001;

  realize_and_assemble(config, topo, hw, extent);
  return topo;
}

Topology make_grid(int rows, int cols, double spacing_m, double connect_radius_factor) {
  Topology topo;
  const int n = rows * cols;
  topo.positions.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      topo.positions.push_back(Vec{static_cast<double>(c) * spacing_m,
                                   static_cast<double>(r) * spacing_m});
  topo.etx = graph::Graph(n);
  topo.hops = graph::Graph(n);
  topo.ett = graph::Graph(n);
  topo.energy = graph::Graph(n);
  const double radius = connect_radius_factor * spacing_m * 1.0001;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      if (topo.positions[static_cast<std::size_t>(i)].distance(
              topo.positions[static_cast<std::size_t>(j)]) <= radius) {
        topo.etx.add_bidirectional(i, j, 1.0, 1.0);
        topo.hops.add_bidirectional(i, j, 1.0, 1.0);
        topo.ett.add_bidirectional(i, j, 1.0, 1.0);
        topo.energy.add_bidirectional(i, j, 1.0, 1.0);
      }
    }
  return topo;
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kHopCount: return "hop count";
    case Metric::kEtx: return "ETX";
    case Metric::kEtt: return "ETT (ms)";
    case Metric::kEnergy: return "energy (uJ)";
  }
  return "?";
}

}  // namespace gdvr::radio
