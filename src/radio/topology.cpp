#include "radio/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace gdvr::radio {

namespace {

// Proper segment-segment intersection test (including touching).
bool segments_intersect(double ax, double ay, double bx, double by, double cx, double cy,
                        double dx, double dy) {
  const auto cross = [](double ox, double oy, double px, double py, double qx, double qy) {
    return (px - ox) * (qy - oy) - (py - oy) * (qx - ox);
  };
  const double d1 = cross(cx, cy, dx, dy, ax, ay);
  const double d2 = cross(cx, cy, dx, dy, bx, by);
  const double d3 = cross(ax, ay, bx, by, cx, cy);
  const double d4 = cross(ax, ay, bx, by, dx, dy);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)))
    return true;
  const auto on_segment = [](double px, double py, double qx, double qy, double rx, double ry) {
    return std::min(px, qx) <= rx && rx <= std::max(px, qx) && std::min(py, qy) <= ry &&
           ry <= std::max(py, qy);
  };
  if (d1 == 0 && on_segment(cx, cy, dx, dy, ax, ay)) return true;
  if (d2 == 0 && on_segment(cx, cy, dx, dy, bx, by)) return true;
  if (d3 == 0 && on_segment(ax, ay, bx, by, cx, cy)) return true;
  if (d4 == 0 && on_segment(ax, ay, bx, by, dx, dy)) return true;
  return false;
}

struct NodeHardware {
  double tx_offset_db = 0.0;
  double noise_offset_db = 0.0;
};

Topology generate(const TopologyConfig& config) {
  GDVR_ASSERT(config.space_dim == 2 || config.space_dim == 3);
  GDVR_ASSERT_MSG(config.space_dim == 2 || config.num_obstacles == 0,
                  "obstacles are modeled in 2D only");
  Rng rng(config.seed);
  Topology topo;
  topo.radio = config.radio;
  topo.obstacles =
      random_obstacles(config.num_obstacles, config.obstacle_size_m, config.width_m,
                       config.height_m, rng);

  // Place nodes uniformly, rejecting positions inside obstacles.
  topo.positions.reserve(static_cast<std::size_t>(config.n));
  Vec extent = config.space_dim == 2 ? Vec{config.width_m, config.height_m}
                                     : Vec{config.width_m, config.height_m, config.depth_m};
  for (int i = 0; i < config.n; ++i) {
    Vec p;
    for (int attempt = 0; attempt < 10000; ++attempt) {
      p = rng.point_in_box(extent);
      const bool inside = std::any_of(topo.obstacles.begin(), topo.obstacles.end(),
                                      [&](const Obstacle& o) { return o.contains(p); });
      if (!inside) break;
    }
    topo.positions.push_back(p);
  }

  // Per-node hardware variance (makes links asymmetric).
  std::vector<NodeHardware> hw(static_cast<std::size_t>(config.n));
  for (auto& h : hw) {
    h.tx_offset_db = rng.normal(0.0, config.radio.tx_power_var_db);
    h.noise_offset_db = rng.normal(0.0, config.radio.noise_var_db);
  }

  // Frame airtime (ms) at a given nominal rate; ETT = ETX * airtime.
  const double frame_bits = 8.0 *
                            static_cast<double>(config.radio.frame_bytes +
                                                config.radio.preamble_bytes) *
                            (config.radio.manchester ? 2.0 : 1.0);
  const auto airtime_ms = [&](double rate_mbps) { return frame_bits / (rate_mbps * 1000.0); };
  // Transmit power in mW for the energy metric (mW * ms = microjoules).
  const auto tx_mw = [&](double offset_db) {
    return std::pow(10.0, (config.radio.tx_power_dbm + offset_db) / 10.0);
  };

  const double d_max = max_link_distance(config.radio, config.prr_threshold);
  topo.etx = graph::Graph(config.n);
  topo.hops = graph::Graph(config.n);
  topo.ett = graph::Graph(config.n);
  topo.energy = graph::Graph(config.n);
  for (int i = 0; i < config.n; ++i) {
    for (int j = i + 1; j < config.n; ++j) {
      const Vec& a = topo.positions[static_cast<std::size_t>(i)];
      const Vec& b = topo.positions[static_cast<std::size_t>(j)];
      const double d = a.distance(b);
      if (d > d_max || d <= 0.0) continue;
      // One symmetric shadowing sample per pair; asymmetry comes from the
      // per-node hardware offsets, as in the original link-layer simulator.
      const double shadow = rng.normal(0.0, config.radio.shadow_sigma_db);
      const double prr_ij = prr(config.radio, d, shadow, hw[static_cast<std::size_t>(i)].tx_offset_db,
                                hw[static_cast<std::size_t>(j)].noise_offset_db);
      const double prr_ji = prr(config.radio, d, shadow, hw[static_cast<std::size_t>(j)].tx_offset_db,
                                hw[static_cast<std::size_t>(i)].noise_offset_db);
      // Per-pair nominal rate (multi-rate radios; used by ETT).
      const double rate = rng.uniform(config.min_rate_mbps, config.max_rate_mbps);
      if (std::min(prr_ij, prr_ji) <= config.prr_threshold) continue;
      const bool blocked = std::any_of(topo.obstacles.begin(), topo.obstacles.end(),
                                       [&](const Obstacle& o) { return o.blocks(a, b); });
      if (blocked) continue;
      const double etx_ij = 1.0 / prr_ij, etx_ji = 1.0 / prr_ji;
      topo.etx.add_bidirectional(i, j, etx_ij, etx_ji);
      topo.hops.add_bidirectional(i, j, 1.0, 1.0);
      topo.ett.add_bidirectional(i, j, etx_ij * airtime_ms(rate), etx_ji * airtime_ms(rate));
      topo.energy.add_bidirectional(
          i, j, etx_ij * airtime_ms(rate) * tx_mw(hw[static_cast<std::size_t>(i)].tx_offset_db),
          etx_ji * airtime_ms(rate) * tx_mw(hw[static_cast<std::size_t>(j)].tx_offset_db));
    }
  }

  if (config.restrict_to_largest_component) {
    const std::vector<int> keep = graph::largest_component(topo.etx);
    if (static_cast<int>(keep.size()) != config.n) {
      std::vector<Vec> pos;
      pos.reserve(keep.size());
      for (int u : keep) pos.push_back(topo.positions[static_cast<std::size_t>(u)]);
      topo.positions = std::move(pos);
      topo.etx = topo.etx.induced_subgraph(keep);
      topo.hops = topo.hops.induced_subgraph(keep);
      topo.ett = topo.ett.induced_subgraph(keep);
      topo.energy = topo.energy.induced_subgraph(keep);
    }
  }
  return topo;
}

}  // namespace

bool Obstacle::blocks(const Vec& a, const Vec& b) const {
  if (contains(a) || contains(b)) return true;
  // Segment fully to one side of the box?
  if (std::max(a[0], b[0]) < x0 || std::min(a[0], b[0]) > x1 || std::max(a[1], b[1]) < y0 ||
      std::min(a[1], b[1]) > y1)
    return false;
  return segments_intersect(a[0], a[1], b[0], b[1], x0, y0, x1, y0) ||
         segments_intersect(a[0], a[1], b[0], b[1], x1, y0, x1, y1) ||
         segments_intersect(a[0], a[1], b[0], b[1], x1, y1, x0, y1) ||
         segments_intersect(a[0], a[1], b[0], b[1], x0, y1, x0, y0);
}

double max_link_distance(const LinkModelParams& p, double prr_threshold) {
  // Best case: -4 sigma shadowing plus +3 sigma hardware luck on both ends.
  const double margin = 4.0 * p.shadow_sigma_db + 3.0 * (p.tx_power_var_db + p.noise_var_db);
  double lo = p.ref_distance_m, hi = p.ref_distance_m;
  // Grow until PRR at hi is below threshold even with full margin.
  for (int i = 0; i < 64; ++i) {
    const double snr = p.tx_power_dbm + margin - path_loss_db(p, hi) - p.noise_floor_dbm;
    if (prr_from_snr_db(p, snr) <= prr_threshold) break;
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double snr = p.tx_power_dbm + margin - path_loss_db(p, mid) - p.noise_floor_dbm;
    if (prr_from_snr_db(p, snr) > prr_threshold)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

std::vector<Obstacle> random_obstacles(int count, double size_m, double width_m, double height_m,
                                       Rng& rng) {
  std::vector<Obstacle> obstacles;
  obstacles.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double x = rng.uniform(0.0, std::max(width_m - size_m, 0.0));
    const double y = rng.uniform(0.0, std::max(height_m - size_m, 0.0));
    obstacles.push_back({x, y, x + size_m, y + size_m});
  }
  return obstacles;
}

double calibrate_tx_power(const TopologyConfig& config, double target_avg_degree) {
  double lo = -30.0, hi = 30.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    TopologyConfig c = config;
    c.radio.tx_power_dbm = mid;
    c.target_avg_degree = 0.0;
    c.restrict_to_largest_component = false;
    double degree = 0.0;
    constexpr int kSamples = 3;
    for (int s = 0; s < kSamples; ++s) {
      c.seed = config.seed + 7919ull * static_cast<std::uint64_t>(s);
      degree += generate(c).etx.average_degree();
    }
    degree /= kSamples;
    if (degree < target_avg_degree)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

Topology make_random_topology(const TopologyConfig& config) {
  TopologyConfig c = config;
  if (config.target_avg_degree > 0.0)
    c.radio.tx_power_dbm = calibrate_tx_power(config, config.target_avg_degree);
  return generate(c);
}

Topology make_grid(int rows, int cols, double spacing_m, double connect_radius_factor) {
  Topology topo;
  const int n = rows * cols;
  topo.positions.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      topo.positions.push_back(Vec{static_cast<double>(c) * spacing_m,
                                   static_cast<double>(r) * spacing_m});
  topo.etx = graph::Graph(n);
  topo.hops = graph::Graph(n);
  topo.ett = graph::Graph(n);
  topo.energy = graph::Graph(n);
  const double radius = connect_radius_factor * spacing_m * 1.0001;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      if (topo.positions[static_cast<std::size_t>(i)].distance(
              topo.positions[static_cast<std::size_t>(j)]) <= radius) {
        topo.etx.add_bidirectional(i, j, 1.0, 1.0);
        topo.hops.add_bidirectional(i, j, 1.0, 1.0);
        topo.ett.add_bidirectional(i, j, 1.0, 1.0);
        topo.energy.add_bidirectional(i, j, 1.0, 1.0);
      }
    }
  return topo;
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kHopCount: return "hop count";
    case Metric::kEtx: return "ETX";
    case Metric::kEtt: return "ETT (ms)";
    case Metric::kEnergy: return "energy (uJ)";
  }
  return "?";
}

}  // namespace gdvr::radio
