// Singular value computation for the PCA dimensionality study (Figure 9).
//
// Two engines:
//  * jacobi_singular_values: one-sided Jacobi SVD, exact to working
//    precision, O(n^3) -- used for small matrices and as the test oracle.
//  * top_singular_values: randomized subspace iteration on A^T A -- returns
//    the k largest singular values of big matrices (N = 1000 cost matrices)
//    in O(k N^2 iters).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/matrix.hpp"

namespace gdvr::analysis {

// All singular values, descending. Destroys no input (copies internally).
std::vector<double> jacobi_singular_values(const Matrix& a, int max_sweeps = 60,
                                           double tol = 1e-12);

// The k largest singular values, descending.
std::vector<double> top_singular_values(const Matrix& a, int k, int iterations = 40,
                                        std::uint64_t seed = 12345);

// Normalizes a singular-value vector by its largest element (the paper plots
// normalized singular values).
std::vector<double> normalized(std::vector<double> values);

}  // namespace gdvr::analysis
