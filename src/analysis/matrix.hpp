// Minimal dense row-major matrix for the PCA / SVD analysis (Figure 9).
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace gdvr::analysis {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) {
    GDVR_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(c)];
  }
  double at(int r, int c) const {
    GDVR_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(c)];
  }

  const std::vector<double>& data() const { return data_; }

  // y = A x
  std::vector<double> mul(const std::vector<double>& x) const {
    GDVR_ASSERT(static_cast<int>(x.size()) == cols_);
    std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      double s = 0.0;
      const double* row = &data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_)];
      for (int c = 0; c < cols_; ++c) s += row[static_cast<std::size_t>(c)] * x[static_cast<std::size_t>(c)];
      y[static_cast<std::size_t>(r)] = s;
    }
    return y;
  }

  // y = A^T x
  std::vector<double> mul_transpose(const std::vector<double>& x) const {
    GDVR_ASSERT(static_cast<int>(x.size()) == rows_);
    std::vector<double> y(static_cast<std::size_t>(cols_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const double xr = x[static_cast<std::size_t>(r)];
      if (xr == 0.0) continue;
      const double* row = &data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_)];
      for (int c = 0; c < cols_; ++c) y[static_cast<std::size_t>(c)] += row[static_cast<std::size_t>(c)] * xr;
    }
    return y;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gdvr::analysis
