#include "analysis/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"
#include "graph/csr.hpp"

namespace gdvr::analysis {

EmbeddingQuality embedding_quality(std::span<const Vec> positions, const Matrix& costs) {
  const int n = static_cast<int>(positions.size());
  GDVR_ASSERT(costs.rows() == n && costs.cols() == n);
  EmbeddingQuality q;

  std::vector<double> all_costs;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double c = costs.at(i, j);
      if (std::isfinite(c) && c > 0.0) all_costs.push_back(c);
    }
  if (all_costs.empty()) return q;
  const double lo_cut = percentile(all_costs, 0.25);
  const double hi_cut = percentile(all_costs, 0.75);

  std::vector<double> rel_errors;
  rel_errors.reserve(all_costs.size());
  RunningStat local, global, overall;
  double err2 = 0.0, cost2 = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double c = costs.at(i, j);
      if (!std::isfinite(c) || c <= 0.0) continue;
      const double est =
          positions[static_cast<std::size_t>(i)].distance(positions[static_cast<std::size_t>(j)]);
      const double rel = std::fabs(est - c) / c;
      rel_errors.push_back(rel);
      overall.add(rel);
      if (c <= lo_cut) local.add(rel);
      if (c >= hi_cut) global.add(rel);
      err2 += (est - c) * (est - c);
      cost2 += c * c;
    }

  q.mean_rel_error = overall.mean();
  q.median_rel_error = median_of(std::move(rel_errors));
  q.stress = cost2 > 0.0 ? std::sqrt(err2 / cost2) : 0.0;
  q.local_rel_error = local.mean();
  q.global_rel_error = global.mean();
  return q;
}

Matrix cost_matrix(const graph::Graph& g) {
  const int n = g.size();
  Matrix m(n, n);
  // All-pairs Dijkstra over a frozen CSR snapshot, fanned over GDVR_THREADS
  // workers; the result is bit-identical at any thread count.
  const std::vector<double> dist = graph::all_pairs_distances(graph::CsrGraph(g));
  for (int src = 0; src < n; ++src)
    for (int dst = 0; dst < n; ++dst)
      m.at(src, dst) = dist[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(dst)];
  return m;
}

}  // namespace gdvr::analysis
