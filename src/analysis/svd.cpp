#include "analysis/svd.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace gdvr::analysis {

std::vector<double> jacobi_singular_values(const Matrix& a, int max_sweeps, double tol) {
  const int m = a.rows(), n = a.cols();
  // Column-major working copy: one-sided Jacobi orthogonalizes columns.
  std::vector<std::vector<double>> col(static_cast<std::size_t>(n),
                                       std::vector<double>(static_cast<std::size_t>(m)));
  for (int r = 0; r < m; ++r)
    for (int c = 0; c < n; ++c) col[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)] = a.at(r, c);

  double frob2 = 0.0;
  for (const auto& c : col)
    for (double x : c) frob2 += x * x;
  const double off_tol = tol * tol * frob2;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int i = 0; i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        auto& ci = col[static_cast<std::size_t>(i)];
        auto& cj = col[static_cast<std::size_t>(j)];
        double aii = 0.0, ajj = 0.0, aij = 0.0;
        for (int r = 0; r < m; ++r) {
          aii += ci[static_cast<std::size_t>(r)] * ci[static_cast<std::size_t>(r)];
          ajj += cj[static_cast<std::size_t>(r)] * cj[static_cast<std::size_t>(r)];
          aij += ci[static_cast<std::size_t>(r)] * cj[static_cast<std::size_t>(r)];
        }
        if (aij * aij <= off_tol * 1e-6 || aij == 0.0) continue;
        // Jacobi rotation angle zeroing the off-diagonal of the 2x2 Gram block.
        const double zeta = (ajj - aii) / (2.0 * aij);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (int r = 0; r < m; ++r) {
          const double vi = ci[static_cast<std::size_t>(r)];
          const double vj = cj[static_cast<std::size_t>(r)];
          ci[static_cast<std::size_t>(r)] = cs * vi - sn * vj;
          cj[static_cast<std::size_t>(r)] = sn * vi + cs * vj;
        }
        rotated = true;
      }
    }
    if (!rotated) break;
  }

  std::vector<double> sv(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    double s = 0.0;
    for (double x : col[static_cast<std::size_t>(c)]) s += x * x;
    sv[static_cast<std::size_t>(c)] = std::sqrt(s);
  }
  std::sort(sv.begin(), sv.end(), std::greater<>());
  return sv;
}

namespace {

// Modified Gram-Schmidt orthonormalization of k vectors of length n.
void orthonormalize(std::vector<std::vector<double>>& q) {
  for (std::size_t i = 0; i < q.size(); ++i) {
    auto& qi = q[i];
    for (std::size_t j = 0; j < i; ++j) {
      const auto& qj = q[j];
      double dot = 0.0;
      for (std::size_t r = 0; r < qi.size(); ++r) dot += qi[r] * qj[r];
      for (std::size_t r = 0; r < qi.size(); ++r) qi[r] -= dot * qj[r];
    }
    double norm = 0.0;
    for (double x : qi) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-300) norm = 1.0;  // degenerate direction; leave as ~zero
    for (double& x : qi) x /= norm;
  }
}

}  // namespace

std::vector<double> top_singular_values(const Matrix& a, int k, int iterations,
                                        std::uint64_t seed) {
  const int n = a.cols();
  k = std::min(k, n);
  Rng rng(seed);
  std::vector<std::vector<double>> q(static_cast<std::size_t>(k),
                                     std::vector<double>(static_cast<std::size_t>(n)));
  for (auto& v : q)
    for (double& x : v) x = rng.normal();
  orthonormalize(q);

  for (int it = 0; it < iterations; ++it) {
    for (auto& v : q) v = a.mul_transpose(a.mul(v));  // v <- A^T A v
    orthonormalize(q);
  }

  std::vector<double> sv(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto av = a.mul(q[static_cast<std::size_t>(i)]);
    double s = 0.0;
    for (double x : av) s += x * x;
    sv[static_cast<std::size_t>(i)] = std::sqrt(s);
  }
  std::sort(sv.begin(), sv.end(), std::greater<>());
  return sv;
}

std::vector<double> normalized(std::vector<double> values) {
  if (values.empty() || values.front() <= 0.0) return values;
  const double top = values.front();
  for (double& v : values) v /= top;
  return values;
}

}  // namespace gdvr::analysis
