// Embedding-quality metrics: how well Euclidean distances between virtual
// positions predict routing costs. Used to compare VPoD against 2-hop
// Vivaldi quantitatively (paper Figures 2 and 5 show this visually).
#pragma once

#include <span>

#include "analysis/matrix.hpp"
#include "common/vec.hpp"
#include "graph/graph.hpp"

namespace gdvr::analysis {

struct EmbeddingQuality {
  double mean_rel_error = 0.0;    // mean |D~ - D| / D over all ordered pairs
  double median_rel_error = 0.0;
  double stress = 0.0;            // sqrt(sum (D~ - D)^2 / sum D^2)
  // The paper's two requirements for useful virtual positions:
  double local_rel_error = 0.0;   // pairs with cost <= 25th percentile ("nodes with low cost nearby")
  double global_rel_error = 0.0;  // pairs with cost >= 75th percentile ("high cost far away")
};

// `costs` is the all-pairs routing-cost matrix (kInf entries and the diagonal
// are skipped).
EmbeddingQuality embedding_quality(std::span<const Vec> positions, const Matrix& costs);

// All-pairs routing costs via one Dijkstra per source; unreachable pairs get
// graph::kInf.
Matrix cost_matrix(const graph::Graph& g);

}  // namespace gdvr::analysis
