#include "scenario/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gdvr::scenario {

MobilityDriver::MobilityDriver(const MobilityConfig& config) : config_(config) {
  GDVR_ASSERT(config.n > 0);
  GDVR_ASSERT(config.speed_min_mps > 0.0 && config.speed_max_mps >= config.speed_min_mps);
  const double auto_side = 100.0 * std::sqrt(static_cast<double>(config.n) / 200.0);
  width_m_ = config.width_m > 0.0 ? config.width_m : auto_side;
  height_m_ = config.height_m > 0.0 ? config.height_m : auto_side;
  init_nodes();
}

void MobilityDriver::reset() { init_nodes(); }

void MobilityDriver::init_nodes() {
  const std::size_t n = static_cast<std::size_t>(config_.n);
  positions_.assign(n, Vec{0.0, 0.0});
  nodes_.assign(n, NodeState{});
  moved_.clear();
  Rng base(config_.seed);
  const Vec extent{width_m_, height_m_};

  if (config_.model == MobilityConfig::Model::kRandomWaypoint) {
    for (std::size_t i = 0; i < n; ++i) {
      NodeState& s = nodes_[i];
      s.rng = base.split(static_cast<std::uint64_t>(i));
      positions_[i] = s.rng.point_in_box(extent);
      s.target = s.rng.point_in_box(extent);
      s.speed = s.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    }
    return;
  }

  // kGroup: the first `groups` node indices are leaders doing random
  // waypoint; the rest are members tethered to leader (i % groups).
  const int groups = std::clamp(config_.groups, 1, config_.n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeState& s = nodes_[i];
    s.rng = base.split(static_cast<std::uint64_t>(i));
    if (static_cast<int>(i) < groups) {
      positions_[i] = s.rng.point_in_box(extent);
      s.target = s.rng.point_in_box(extent);
      s.speed = s.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    } else {
      s.leader = static_cast<int>(i) % groups;
      const double ang = s.rng.uniform(0.0, 6.283185307179586);
      const double rad = config_.group_radius_m * std::sqrt(s.rng.uniform());
      s.offset = Vec{rad * std::cos(ang), rad * std::sin(ang)};
    }
  }
  // Members start at their nominal spot around the leader's initial position.
  for (std::size_t i = 0; i < n; ++i) {
    NodeState& s = nodes_[i];
    if (s.leader < 0) continue;
    Vec p = positions_[static_cast<std::size_t>(s.leader)] + s.offset;
    p[0] = std::clamp(p[0], 0.0, width_m_);
    p[1] = std::clamp(p[1], 0.0, height_m_);
    positions_[i] = p;
  }
}

void MobilityDriver::step_waypoint(int i, double dt) {
  const std::size_t si = static_cast<std::size_t>(i);
  NodeState& s = nodes_[si];
  double budget = dt;
  while (budget > 0.0) {
    if (s.pause_left > 0.0) {
      const double rest = std::min(s.pause_left, budget);
      s.pause_left -= rest;
      budget -= rest;
      continue;
    }
    const Vec to = s.target - positions_[si];
    const double d = to.norm();
    const double reach = s.speed * budget;
    if (reach < d) {
      positions_[si] = positions_[si] + to * (reach / d);
      break;
    }
    // Arrive, pause, then draw the next leg.
    positions_[si] = s.target;
    budget -= s.speed > 0.0 ? d / s.speed : budget;
    s.pause_left = config_.pause_s;
    s.target = s.rng.point_in_box(Vec{width_m_, height_m_});
    s.speed = s.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
  }
}

void MobilityDriver::step(double dt) {
  GDVR_ASSERT(dt > 0.0);
  moved_.clear();
  const std::size_t n = positions_.size();
  std::vector<Vec> before(positions_);
  for (std::size_t i = 0; i < n; ++i)
    if (nodes_[i].leader < 0) step_waypoint(static_cast<int>(i), dt);
  // Members follow after every leader has moved this step.
  for (std::size_t i = 0; i < n; ++i) {
    NodeState& s = nodes_[i];
    if (s.leader < 0) continue;
    const double ang = s.rng.uniform(0.0, 6.283185307179586);
    const double rad = 0.25 * config_.group_radius_m * s.rng.uniform();
    Vec p = positions_[static_cast<std::size_t>(s.leader)] + s.offset +
            Vec{rad * std::cos(ang), rad * std::sin(ang)};
    p[0] = std::clamp(p[0], 0.0, width_m_);
    p[1] = std::clamp(p[1], 0.0, height_m_);
    positions_[i] = p;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (!(positions_[i] == before[i])) moved_.push_back(static_cast<int>(i));
}

}  // namespace gdvr::scenario
