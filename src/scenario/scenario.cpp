#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/churn.hpp"

namespace gdvr::scenario {

namespace {

// Restrict a topology to the given (sorted, compacting) node subset, then to
// the largest remaining connected component -- the same guarantee generate()
// gives, applied to an externally chosen alive set.
radio::Topology induce_connected(const radio::Topology& base, const std::vector<int>& keep) {
  radio::Topology t;
  t.radio = base.radio;
  t.obstacles = base.obstacles;
  t.positions.reserve(keep.size());
  for (int u : keep) t.positions.push_back(base.positions[static_cast<std::size_t>(u)]);
  t.etx = base.etx.induced_subgraph(keep);
  t.hops = base.hops.induced_subgraph(keep);
  t.ett = base.ett.induced_subgraph(keep);
  t.energy = base.energy.induced_subgraph(keep);
  const std::vector<int> comp = graph::largest_component(t.etx);
  if (comp.size() != keep.size()) {
    std::vector<Vec> pos;
    pos.reserve(comp.size());
    for (int u : comp) pos.push_back(t.positions[static_cast<std::size_t>(u)]);
    t.positions = std::move(pos);
    t.etx = t.etx.induced_subgraph(comp);
    t.hops = t.hops.induced_subgraph(comp);
    t.ett = t.ett.induced_subgraph(comp);
    t.energy = t.energy.induced_subgraph(comp);
  }
  return t;
}

radio::TopologyConfig paper_config(int n, std::uint64_t seed) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  const double scale = std::sqrt(static_cast<double>(n) / 200.0);
  tc.width_m = 100.0 * scale;
  tc.height_m = 100.0 * scale;
  tc.target_avg_degree = 14.5;
  return tc;
}

class UnitSquareScenario final : public Scenario {
 public:
  UnitSquareScenario(int n, std::uint64_t seed, int rounds)
      : n_(n), seed_(seed), rounds_(rounds) {}
  const std::string& name() const override { return name_; }
  int rounds() const override { return rounds_; }
  Round round(int k) override {
    GDVR_ASSERT(k >= 0 && k < rounds_);
    Round r;
    r.time_s = static_cast<double>(k);
    r.topo = radio::make_random_topology(paper_config(n_, seed_ + static_cast<std::uint64_t>(k)));
    return r;
  }

 private:
  std::string name_ = "unit_square";
  int n_;
  std::uint64_t seed_;
  int rounds_;
};

class GeoWanScenario final : public Scenario {
 public:
  GeoWanScenario(const GeoWanConfig& config, int rounds) : config_(config), rounds_(rounds) {}
  const std::string& name() const override { return name_; }
  int rounds() const override { return rounds_; }
  Round round(int k) override {
    GDVR_ASSERT(k >= 0 && k < rounds_);
    GeoWanConfig c = config_;
    c.seed += static_cast<std::uint64_t>(k);
    Round r;
    r.time_s = static_cast<double>(k);
    r.topo = make_geo_wan(c);
    return r;
  }

 private:
  std::string name_ = "geo_wan";
  GeoWanConfig config_;
  int rounds_;
};

class MobilityScenario final : public Scenario {
 public:
  explicit MobilityScenario(const MobilityScenarioConfig& config)
      : config_(config), driver_(config.mobility) {
    name_ = config.mobility.model == MobilityConfig::Model::kGroup ? "mobility_group"
                                                                   : "mobility_waypoint";
    // Radio config the rounds share. The seed is the mobility seed and the
    // node count never changes, so make_topology_from_positions draws the
    // same obstacles (none) and per-node hardware every round: the only
    // round-to-round difference in the link set is the motion itself.
    tc_.n = config.mobility.n;
    tc_.seed = config.mobility.seed;
    tc_.width_m = driver_.width_m();
    tc_.height_m = driver_.height_m();
    tc_.radio = config.radio;
    if (config.target_avg_degree > 0.0) {
      radio::TopologyConfig cal = tc_;
      tc_.radio.tx_power_dbm = radio::calibrate_tx_power(cal, config.target_avg_degree);
    }
  }
  const std::string& name() const override { return name_; }
  int rounds() const override { return config_.rounds; }
  Round round(int k) override {
    GDVR_ASSERT(k >= 0 && k < config_.rounds);
    if (k < current_) {
      driver_.reset();
      current_ = 0;
    }
    for (; current_ < k; ++current_) driver_.step(config_.step_dt_s);
    Round r;
    r.time_s = static_cast<double>(k) * config_.step_dt_s;
    r.topo = radio::make_topology_from_positions(tc_, driver_.positions());
    return r;
  }

 private:
  std::string name_;
  MobilityScenarioConfig config_;
  MobilityDriver driver_;
  radio::TopologyConfig tc_;
  int current_ = 0;
};

class FlashCrowdScenario final : public Scenario {
 public:
  explicit FlashCrowdScenario(const FlashCrowdScenarioConfig& config) : config_(config) {
    base_ = radio::make_random_topology(paper_config(config.n, config.seed));
    const int n = base_.size();
    const int latent =
        std::clamp(static_cast<int>(std::lround(config.latent_fraction * n)), 0, n - 2);

    // Project the alive set through each flash crowd exactly as sim/churn
    // schedules it: round 0 is the pre-churn network, round k the network
    // after crowd k swapped flash_fraction of the alive population for
    // latent/dead nodes.
    std::set<int> alive;
    for (int u = 0; u < n - latent; ++u) alive.insert(u);
    std::set<int> dead;
    for (int u = n - latent; u < n; ++u) dead.insert(u);
    alive_by_round_.push_back({alive.begin(), alive.end()});
    for (int c = 0; c < config.crowds; ++c) {
      const std::vector<int> leave_pool(alive.begin(), alive.end());
      const std::vector<int> join_pool(dead.begin(), dead.end());
      const int leaves = std::clamp(
          static_cast<int>(std::lround(config.flash_fraction * static_cast<double>(alive.size()))),
          0, static_cast<int>(alive.size()) - 2);
      const int joins = std::min<int>(leaves, static_cast<int>(join_pool.size()));
      const sim::FaultSchedule crowd =
          sim::flash_crowd(static_cast<double>(c + 1) * config.period_s, leaves, leave_pool,
                           joins, join_pool, config.seed + static_cast<std::uint64_t>(c));
      schedule_.merge(crowd);
      for (const sim::FaultAction& a : crowd.actions()) {
        if (a.kind == sim::FaultKind::kCrash) {
          alive.erase(a.node);
          dead.insert(a.node);
        } else if (a.kind == sim::FaultKind::kRecover) {
          dead.erase(a.node);
          alive.insert(a.node);
        }
      }
      alive_by_round_.push_back({alive.begin(), alive.end()});
    }
  }
  const std::string& name() const override { return name_; }
  int rounds() const override { return static_cast<int>(alive_by_round_.size()); }
  Round round(int k) override {
    GDVR_ASSERT(k >= 0 && k < rounds());
    Round r;
    r.time_s = static_cast<double>(k) * config_.period_s;
    r.topo = induce_connected(base_, alive_by_round_[static_cast<std::size_t>(k)]);
    return r;
  }

  // The composed crash/recover schedule, for experiments that want to drive
  // a live protocol through the same membership shocks.
  const sim::FaultSchedule& schedule() const { return schedule_; }

 private:
  std::string name_ = "flash_crowd";
  FlashCrowdScenarioConfig config_;
  radio::Topology base_;
  sim::FaultSchedule schedule_;
  std::vector<std::vector<int>> alive_by_round_;
};

}  // namespace

std::unique_ptr<Scenario> unit_square_scenario(int n, std::uint64_t seed, int rounds) {
  return std::make_unique<UnitSquareScenario>(n, seed, rounds);
}

std::unique_ptr<Scenario> geo_wan_scenario(const GeoWanConfig& config, int rounds) {
  return std::make_unique<GeoWanScenario>(config, rounds);
}

std::unique_ptr<Scenario> mobility_scenario(const MobilityScenarioConfig& config) {
  return std::make_unique<MobilityScenario>(config);
}

std::unique_ptr<Scenario> flash_crowd_scenario(const FlashCrowdScenarioConfig& config) {
  return std::make_unique<FlashCrowdScenario>(config);
}

}  // namespace gdvr::scenario
