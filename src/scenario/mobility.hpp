// Continuous mobility drivers: random-waypoint and RPGM-style group motion.
//
// A MobilityDriver owns per-node kinematic state and advances it in discrete
// steps; each step reports which nodes moved and by how much, so consumers
// can feed position diffs straight into the incremental paths
// (DynamicDelaunay::apply_diff, MdtOverlay::recompute's (id, pos_version)
// delta) instead of rebuilding from scratch every round.
//
// Models:
//  * kRandomWaypoint -- each node independently picks a uniform waypoint and
//    a uniform speed, travels there in a straight line, pauses, repeats.
//  * kGroup -- RPGM: `groups` leaders do random-waypoint; members hold a
//    fixed offset from their leader plus a small per-step jitter inside
//    group_radius_m, so clusters of nodes move coherently (vehicle convoys,
//    conference crowds).
//
// Determinism: all state derives from per-node Rng::split streams of
// config.seed, so a (config, step count) pair always reproduces the same
// positions regardless of how the steps were batched.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"

namespace gdvr::scenario {

struct MobilityConfig {
  enum class Model { kRandomWaypoint, kGroup };
  Model model = Model::kRandomWaypoint;
  int n = 120;
  // Placement box; 0 auto-scales like the paper's workload (200 nodes per
  // 100 m x 100 m, i.e. side = 100 * sqrt(n / 200)).
  double width_m = 0.0;
  double height_m = 0.0;
  double speed_min_mps = 0.5;
  double speed_max_mps = 2.0;
  double pause_s = 2.0;        // dwell at each waypoint (random-waypoint)
  int groups = 6;              // kGroup: number of leaders
  double group_radius_m = 8.0; // kGroup: member jitter radius around offset
  std::uint64_t seed = 1;
};

class MobilityDriver {
 public:
  explicit MobilityDriver(const MobilityConfig& config);

  const std::vector<Vec>& positions() const { return positions_; }
  double width_m() const { return width_m_; }
  double height_m() const { return height_m_; }

  // Indices of nodes whose position changed in the last step().
  const std::vector<int>& moved() const { return moved_; }

  // Advance all nodes by dt seconds.
  void step(double dt);

  // Back to the initial (step-0) placement and kinematic state.
  void reset();

 private:
  struct NodeState {
    Rng rng;          // private stream: waypoint, speed, pause, jitter draws
    Vec target;       // current waypoint (leaders / independent nodes)
    double speed = 0.0;
    double pause_left = 0.0;
    int leader = -1;  // kGroup members: index of their leader
    Vec offset;       // kGroup members: nominal offset from the leader
  };

  void init_nodes();
  void step_waypoint(int i, double dt);

  MobilityConfig config_;
  double width_m_ = 0.0, height_m_ = 0.0;
  std::vector<Vec> positions_;
  std::vector<NodeState> nodes_;
  std::vector<int> moved_;
};

}  // namespace gdvr::scenario
