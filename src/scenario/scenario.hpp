// Scenario subsystem: workload generators behind one interface.
//
// A Scenario is a deterministic sequence of rounds; each round materializes a
// full radio::Topology (positions + the four metric graphs), so everything
// downstream -- centralized MDT views, the routers, routing_eval, the DV
// protocol over NetSim -- consumes scenario rounds exactly like it consumes
// the paper's unit-square workload. Four generators ship:
//
//  * unit_square  -- the paper's Zuniga-model workload (baseline; one fresh
//    seed per round);
//  * geo_wan      -- geographic WAN: lat/lon routers, haversine great-circle
//    costs, fractional edge drop (geo_wan.hpp);
//  * mobility     -- continuous motion: a MobilityDriver (random-waypoint or
//    group) advances positions each round and the radio link model is
//    re-realized over them via make_topology_from_positions, with per-node
//    hardware held fixed so only *motion* changes the link set;
//  * flash_crowd  -- membership shocks composed on sim/churn's flash_crowd
//    generator: each round is the base topology restricted to the projected
//    alive set after the k-th crowd swapped a fraction of the network.
//
// Rounds whose graph ends up disconnected are restricted to the largest
// component with compacted node ids (the standard generate() behavior), so a
// round is always a connected routable world; ids are therefore stable
// within a round but not across rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "radio/link_model.hpp"
#include "radio/topology.hpp"
#include "scenario/geo_wan.hpp"
#include "scenario/mobility.hpp"

namespace gdvr::scenario {

struct Round {
  radio::Topology topo;
  double time_s = 0.0;  // scenario clock this round corresponds to
};

class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual const std::string& name() const = 0;
  virtual int rounds() const = 0;
  // Materializes round k (0-based). Deterministic in (config, k); callers may
  // revisit rounds in any order, though sequential access is the cheap path
  // for mobility (random access replays the driver from round 0).
  virtual Round round(int k) = 0;
};

// The paper's baseline workload: n nodes, area auto-scaled to keep average
// physical degree 14.5. Round k draws a fresh instance from seed + k.
std::unique_ptr<Scenario> unit_square_scenario(int n, std::uint64_t seed, int rounds = 1);

// Geographic WAN (geo_wan.hpp). Round k regenerates with config.seed + k.
std::unique_ptr<Scenario> geo_wan_scenario(const GeoWanConfig& config, int rounds = 1);

struct MobilityScenarioConfig {
  MobilityConfig mobility;
  int rounds = 6;
  double step_dt_s = 5.0;  // scenario time advanced between rounds
  // Radio model re-realized over the moved positions each round. When
  // target_avg_degree > 0 the tx power is calibrated once at construction
  // (against a random placement of the same density) and then held fixed --
  // re-calibrating per round would confound motion with power changes.
  radio::LinkModelParams radio;
  double target_avg_degree = 14.5;
};

std::unique_ptr<Scenario> mobility_scenario(const MobilityScenarioConfig& config);

struct FlashCrowdScenarioConfig {
  int n = 150;             // total node pool (alive + latent)
  std::uint64_t seed = 1;
  double latent_fraction = 0.25;  // nodes initially dead, joining in crowds
  int crowds = 2;          // flash events; the scenario has crowds + 1 rounds
  double flash_fraction = 0.3;    // fraction of the alive set swapped per crowd
  double period_s = 30.0;  // time between crowds
};

std::unique_ptr<Scenario> flash_crowd_scenario(const FlashCrowdScenarioConfig& config);

}  // namespace gdvr::scenario
