#include "scenario/geo_wan.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gdvr::scenario {

namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
// Propagation speed in fiber is roughly 2/3 c: ~200 km per millisecond.
constexpr double kKmPerMs = 200.0;

}  // namespace

double haversine_km(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlam = (lon2 - lon1) * kDegToRad;
  const double sp = std::sin(0.5 * dphi);
  const double sl = std::sin(0.5 * dlam);
  const double a = sp * sp + std::cos(phi1) * std::cos(phi2) * sl * sl;
  return kEarthRadiusKm * 2.0 * std::atan2(std::sqrt(a), std::sqrt(1.0 - a));
}

radio::Topology make_geo_wan(const GeoWanConfig& config) {
  GDVR_ASSERT(config.n >= 2);
  GDVR_ASSERT(config.drop_fraction >= 0.0 && config.drop_fraction < 1.0);
  Rng rng(config.seed);

  // City centers, then routers normally scattered around a uniformly chosen
  // city, clamped into the box.
  const int cities = std::max(1, config.cities);
  std::vector<std::pair<double, double>> centers;
  centers.reserve(static_cast<std::size_t>(cities));
  for (int c = 0; c < cities; ++c)
    centers.emplace_back(rng.uniform(config.lat_min, config.lat_max),
                         rng.uniform(config.lon_min, config.lon_max));
  std::vector<double> lat(static_cast<std::size_t>(config.n));
  std::vector<double> lon(static_cast<std::size_t>(config.n));
  for (int i = 0; i < config.n; ++i) {
    const auto& [clat, clon] = centers[static_cast<std::size_t>(rng.uniform_index(cities))];
    lat[static_cast<std::size_t>(i)] =
        std::clamp(rng.normal(clat, config.city_spread_deg), config.lat_min, config.lat_max);
    lon[static_cast<std::size_t>(i)] =
        std::clamp(rng.normal(clon, config.city_spread_deg), config.lon_min, config.lon_max);
  }

  // All pairwise great-circle distances (n is WAN-scale, O(n^2) is fine),
  // then the symmetrized k-nearest-neighbor candidate edge set.
  const std::size_t nn = static_cast<std::size_t>(config.n);
  std::vector<double> dist(nn * nn, 0.0);
  for (int i = 0; i < config.n; ++i)
    for (int j = i + 1; j < config.n; ++j) {
      const double d = haversine_km(lat[static_cast<std::size_t>(i)],
                                    lon[static_cast<std::size_t>(i)],
                                    lat[static_cast<std::size_t>(j)],
                                    lon[static_cast<std::size_t>(j)]);
      dist[static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)] = d;
      dist[static_cast<std::size_t>(j) * nn + static_cast<std::size_t>(i)] = d;
    }

  struct Edge {
    int i, j;
    double km;
  };
  std::vector<Edge> candidates;
  {
    const int k = std::clamp(config.k_nearest, 1, config.n - 1);
    std::vector<char> picked(nn * nn, 0);
    std::vector<int> order(nn);
    for (int i = 0; i < config.n; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      for (int j = 0; j < config.n; ++j) order[static_cast<std::size_t>(j)] = j;
      std::nth_element(order.begin(), order.begin() + k, order.end(), [&](int a, int b) {
        // Self-distance is 0; push i past the k nearest by treating it as inf.
        const double da = a == i ? 1e30 : dist[si * nn + static_cast<std::size_t>(a)];
        const double db = b == i ? 1e30 : dist[si * nn + static_cast<std::size_t>(b)];
        if (da != db) return da < db;
        return a < b;
      });
      for (int r = 0; r < k; ++r) {
        const int j = order[static_cast<std::size_t>(r)];
        const int a = std::min(i, j), b = std::max(i, j);
        char& seen = picked[static_cast<std::size_t>(a) * nn + static_cast<std::size_t>(b)];
        if (seen) continue;
        seen = 1;
        candidates.push_back({a, b, dist[static_cast<std::size_t>(a) * nn +
                                         static_cast<std::size_t>(b)]});
      }
    }
    // nth_element leaves the k nearest in unspecified order; sort candidates
    // so the drop lottery below is enumeration-order independent.
    std::sort(candidates.begin(), candidates.end(), [](const Edge& a, const Edge& b) {
      if (a.i != b.i) return a.i < b.i;
      return a.j < b.j;
    });
  }

  // Drop `drop_fraction` of the candidates: Fisher-Yates the kept prefix,
  // mirroring the snippet's random.sample(edges, keep).
  const std::size_t keep = static_cast<std::size_t>(
      std::llround(static_cast<double>(candidates.size()) * (1.0 - config.drop_fraction)));
  for (std::size_t r = 0; r < keep && r + 1 < candidates.size(); ++r) {
    const std::size_t pick =
        r + static_cast<std::size_t>(rng.uniform_int(candidates.size() - r));
    std::swap(candidates[r], candidates[pick]);
  }
  candidates.resize(keep);
  std::sort(candidates.begin(), candidates.end(), [](const Edge& a, const Edge& b) {
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  // Project (lat, lon) to kilometers: equirectangular about the box's middle
  // latitude, shifted into the positive quadrant. Great-circle edge costs
  // come from the haversine distances, not from these projected positions --
  // the projection only gives the greedy routers a 2D embedding to steer by,
  // so position-space and cost-space disagree slightly (as they do on any
  // real WAN), which is part of what this scenario tests.
  radio::Topology topo;
  const double mid_phi = 0.5 * (config.lat_min + config.lat_max) * kDegToRad;
  const double kx = kEarthRadiusKm * std::cos(mid_phi) * kDegToRad;
  const double ky = kEarthRadiusKm * kDegToRad;
  topo.positions.reserve(nn);
  for (std::size_t i = 0; i < nn; ++i)
    topo.positions.push_back(Vec{(lon[i] - config.lon_min) * kx,
                                 (lat[i] - config.lat_min) * ky});

  topo.etx = graph::Graph(config.n);
  topo.hops = graph::Graph(config.n);
  topo.ett = graph::Graph(config.n);
  topo.energy = graph::Graph(config.n);
  for (const Edge& e : candidates) {
    topo.etx.add_bidirectional(e.i, e.j, e.km, e.km);
    topo.hops.add_bidirectional(e.i, e.j, 1.0, 1.0);
    const double ms = e.km / kKmPerMs;
    topo.ett.add_bidirectional(e.i, e.j, ms, ms);
    topo.energy.add_bidirectional(e.i, e.j, e.km, e.km);
  }

  if (config.restrict_to_largest_component) {
    const std::vector<int> keep_ids = graph::largest_component(topo.etx);
    if (static_cast<int>(keep_ids.size()) != config.n) {
      std::vector<Vec> pos;
      pos.reserve(keep_ids.size());
      for (int u : keep_ids) pos.push_back(topo.positions[static_cast<std::size_t>(u)]);
      topo.positions = std::move(pos);
      topo.etx = topo.etx.induced_subgraph(keep_ids);
      topo.hops = topo.hops.induced_subgraph(keep_ids);
      topo.ett = topo.ett.induced_subgraph(keep_ids);
      topo.energy = topo.energy.induced_subgraph(keep_ids);
    }
  }
  return topo;
}

}  // namespace gdvr::scenario
