// Geographic WAN topologies: lat/lon router sets with haversine great-circle
// link costs and fractional edge drop.
//
// This is the workload of the distance-vector exemplar (SNIPPETS.md snippet
// 1): routers at geographic coordinates, candidate links weighted by
// great-circle kilometers, and a fraction of candidate edges removed to
// simulate network sparsity. Unlike the snippet's complete graph we start
// from the k-nearest-neighbor graph -- at WAN scale a complete graph makes
// greedy routing trivially one-hop -- and then drop `drop_fraction` of the
// candidate edges at random, which is what creates the long-way-around
// detours that stress greedy forwarding on Internet-like geometry.
//
// The emitted Topology reuses the standard metric slots with WAN semantics:
//   etx    = great-circle kilometers (the routing cost)
//   hops   = 1 per link (for stretch accounting)
//   ett    = propagation delay in ms (km / 200 km-per-ms fiber speed)
//   energy = kilometers (no radio energy model on a WAN)
// Positions are an equirectangular projection of (lat, lon) into kilometers,
// shifted to the positive quadrant, so everything downstream that consumes
// positions (centralized MDT, GPSR planarization, spatial shards) works
// unchanged.
#pragma once

#include <cstdint>

#include "radio/topology.hpp"

namespace gdvr::scenario {

struct GeoWanConfig {
  int n = 120;
  std::uint64_t seed = 1;
  // Geographic box the routers are scattered over; defaults approximate the
  // continental United States.
  double lat_min = 25.0, lat_max = 49.0;
  double lon_min = -124.0, lon_max = -67.0;
  // Routers cluster around `cities` metro centers (normal spread in degrees)
  // rather than filling the box uniformly -- WAN node density is lumpy.
  int cities = 12;
  double city_spread_deg = 1.5;
  // Candidate links: each router connects to its k nearest routers by
  // great-circle distance (symmetrized).
  int k_nearest = 6;
  // Fraction of candidate edges removed at random (snippet 1's T).
  double drop_fraction = 0.15;
  bool restrict_to_largest_component = true;
};

// Great-circle distance in kilometers between two (lat, lon) points in
// degrees (haversine formula, R = 6371 km).
double haversine_km(double lat1, double lon1, double lat2, double lon2);

radio::Topology make_geo_wan(const GeoWanConfig& config);

}  // namespace gdvr::scenario
