#include "sim/reliable.hpp"

#include <algorithm>
#include <cmath>

namespace gdvr::sim {

RetransmitBackoff::RetransmitBackoff(double initial_s, double backoff, double max_s)
    : initial_s_(initial_s), backoff_(std::max(backoff, 1.0)), max_s_(std::max(max_s, initial_s)) {}

double RetransmitBackoff::delay(int attempt) const {
  const double exp = std::pow(backoff_, static_cast<double>(std::max(attempt - 1, 0)));
  return std::min(initial_s_ * exp, max_s_);
}

DedupWindow::DedupWindow(std::size_t cap) : cap_(std::max<std::size_t>(cap, 1)) {}

bool DedupWindow::accept(std::uint64_t seq) {
  if (seq <= floor_) {
    ++suppressed_;
    return false;
  }
  if (!seen_.insert(seq).second) {
    ++suppressed_;
    return false;
  }
  // Compact: slide the floor over the contiguous prefix, then enforce the
  // window cap by conservatively raising the floor past the oldest entries.
  auto it = seen_.begin();
  while (it != seen_.end() && *it == floor_ + 1) {
    floor_ = *it;
    it = seen_.erase(it);
  }
  while (seen_.size() > cap_) {
    floor_ = std::max(floor_, *seen_.begin());
    seen_.erase(seen_.begin());
  }
  return true;
}

}  // namespace gdvr::sim
