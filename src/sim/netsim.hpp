// Network binding for the discrete-event simulator: delivers typed messages
// between physically connected nodes with uniform-random per-hop delay, and
// accounts every transmission (the paper's communication-cost metric counts
// messages sent per node, including each hop of a multi-hop forwarding).
//
// Delivery is reliable by default: link lossiness is captured by the routing
// metric (ETX), not by dropping control messages -- the same abstraction the
// paper uses. Beyond that baseline, the layer exposes the failure modes the
// fault-injection subsystem (sim/faults.hpp) drives:
//  * dead nodes (churn): neither send nor receive; messages in flight to a
//    node that dies are dropped on arrival, and a per-node incarnation
//    number guarantees a message sent to one incarnation is never delivered
//    to a later one (die-and-rejoin races);
//  * downed links (flapping / partitions): send fails at the link layer;
//  * burst loss: an extra uniform drop probability on top of the ETX model;
//  * duplication: a transmission may arrive twice (independent delays);
//  * delay spikes: sampled delays are scaled, reordering traffic relative
//    to messages sent outside the spike window.
//
// Sharded-execution contract (DESIGN.md §4g): all randomness and all counters
// are per-node. Every draw on the send path comes from the sender's own
// stream and every counter is incremented either at the sender (sent, lost,
// duplicated) or at the receiver (expired), so concurrent lanes never touch
// the same state and -- more importantly -- the sampled values are a function
// of each node's own event sequence, not of any global interleaving. That is
// what makes serial and sharded runs behaviorally identical. Cross-node
// state (liveness, incarnations, downed links, fault knobs) is written only
// from global-lane events and merely read during parallel windows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {

// Open-addressing hash set of undirected link keys, replacing the
// std::set<std::pair<int,int>> that used to back NetSim's downed-link state:
// link_up() sits on the hot send() path (one call per transmission), and a
// red-black tree walk per send is measurable (see BM_DownLinksStdSet vs
// BM_DownLinksLinkSet in bench/micro_core.cpp). Linear probing with
// backward-shift deletion; the empty-set fast path makes the common
// no-faults case one load.
class LinkSet {
 public:
  // Order-independent key; +1 keeps 0 free as the empty-slot marker.
  static std::uint64_t key(int u, int v) {
    const std::uint64_t a = static_cast<std::uint64_t>(u < v ? u : v) + 1;
    const std::uint64_t b = static_cast<std::uint64_t>(u < v ? v : u) + 1;
    return (a << 32) | b;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  bool contains(std::uint64_t k) const {
    if (size_ == 0) return false;
    std::size_t i = home(k);
    while (table_[i] != 0) {
      if (table_[i] == k) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  void insert(std::uint64_t k) {
    if (table_.empty()) rehash(16);
    if ((size_ + 1) * 10 > table_.size() * 7) rehash(table_.size() * 2);
    std::size_t i = home(k);
    while (table_[i] != 0) {
      if (table_[i] == k) return;
      i = (i + 1) & mask_;
    }
    table_[i] = k;
    ++size_;
  }

  void erase(std::uint64_t k) {
    if (size_ == 0) return;
    std::size_t i = home(k);
    while (table_[i] != k) {
      if (table_[i] == 0) return;
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: pull every displaced follower of the probe
    // chain into the hole so lookups never need tombstones.
    std::size_t j = i;
    for (;;) {
      table_[i] = 0;
      for (;;) {
        j = (j + 1) & mask_;
        if (table_[j] == 0) {
          --size_;
          return;
        }
        const std::size_t h = home(table_[j]);
        // Is slot j's element allowed to move into the hole at i? Yes iff
        // its home position does not lie in the (cyclic) range (i, j].
        const bool movable = i <= j ? (h <= i || h > j) : (h <= i && h > j);
        if (movable) break;
      }
      table_[i] = table_[j];
      i = j;
    }
  }

 private:
  std::size_t home(std::uint64_t k) const {
    // SplitMix64 finalizer: full-avalanche so sequential node ids spread.
    k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ull;
    k = (k ^ (k >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(k ^ (k >> 31)) & mask_;
  }

  void rehash(std::size_t capacity) {
    std::vector<std::uint64_t> old = std::move(table_);
    table_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (std::uint64_t k : old) {
      if (k == 0) continue;
      std::size_t i = home(k);
      while (table_[i] != 0) i = (i + 1) & mask_;
      table_[i] = k;
    }
  }

  std::vector<std::uint64_t> table_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

template <typename Message>
class NetSim {
 public:
  // `links` defines physical connectivity and per-direction link costs in the
  // experiment's routing metric.
  NetSim(Simulator& sim, const graph::Graph& links, double delay_min, double delay_max,
         std::uint64_t seed)
      : sim_(sim),
        links_(links),
        delay_min_(delay_min),
        delay_max_(delay_max),
        alive_(static_cast<std::size_t>(links.size()), true),
        incarnation_(static_cast<std::size_t>(links.size()), 0),
        counters_(static_cast<std::size_t>(links.size())) {
    Rng base(seed);
    rng_.reserve(static_cast<std::size_t>(links.size()));
    for (int u = 0; u < links.size(); ++u)
      rng_.push_back(base.split(static_cast<std::uint64_t>(u)));
    // The minimum cross-node interaction delay bounds the sharded engine's
    // parallel windows. Re-queried every window, so delay spikes shrink the
    // lookahead for exactly as long as the fault is active.
    sim_.add_lookahead_provider(
        [this] { return delay_min_ * std::min(1.0, delay_factor_); });
  }

  // The lookahead provider above captures `this`.
  NetSim(const NetSim&) = delete;
  NetSim& operator=(const NetSim&) = delete;

  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }
  const graph::Graph& links() const { return links_; }
  int size() const { return links_.size(); }

  // Handler invoked as (to, from, message) on delivery.
  void set_receiver(std::function<void(int, int, Message)> handler) {
    receiver_ = std::move(handler);
  }

  // Optional lossy control plane: each transmission over link (u, v) is
  // dropped with probability 1 - PRR(u, v), where PRR = 1/ETX from the given
  // cost graph (clamped to [0, 1]). By default delivery is reliable -- the
  // paper folds link lossiness into the routing metric only; this knob
  // exposes the protocols to real message loss (see the control-loss
  // ablation bench).
  void set_loss_from_etx(const graph::Graph& etx) { loss_etx_ = &etx; }
  void clear_loss_model() { loss_etx_ = nullptr; }
  std::uint64_t messages_lost() const { return sum(&NodeCounters::lost); }

  // --- fault-injection knobs (driven by sim/faults.hpp) --------------------
  // Extra uniform drop probability applied to every transmission (burst
  // loss), on top of the ETX loss model if one is set.
  void set_fault_loss(double p) { fault_loss_ = std::clamp(p, 0.0, 1.0); }
  double fault_loss() const { return fault_loss_; }
  // Probability that a delivered transmission arrives a second time with an
  // independently sampled delay (duplication faults).
  void set_duplication(double p) { dup_prob_ = std::clamp(p, 0.0, 1.0); }
  double duplication() const { return dup_prob_; }
  // Multiplier on sampled per-hop delays (delay spikes; >= 1 reorders
  // in-flight traffic relative to normal-delay messages).
  void set_delay_factor(double f) { delay_factor_ = std::max(f, 0.0); }
  double delay_factor() const { return delay_factor_; }
  // Administrative (fault) state of a physical link; both directions share
  // one state. Global-lane only under the sharded engine.
  void set_link_up(int u, int v, bool up) {
    if (up)
      down_links_.erase(LinkSet::key(u, v));
    else if (links_.has_edge(u, v))
      down_links_.insert(LinkSet::key(u, v));
  }
  bool link_up(int u, int v) const { return !down_links_.contains(LinkSet::key(u, v)); }
  // A link exists physically AND is administratively up.
  bool link_usable(int u, int v) const { return links_.has_edge(u, v) && link_up(u, v); }

  bool alive(int node) const { return alive_[static_cast<std::size_t>(node)]; }
  void set_alive(int node, bool alive) {
    // A node that rejoins is a fresh incarnation: messages addressed to the
    // previous incarnation (still in flight across its death) must not be
    // delivered to the new one.
    if (alive && !alive_[static_cast<std::size_t>(node)])
      ++incarnation_[static_cast<std::size_t>(node)];
    alive_[static_cast<std::size_t>(node)] = alive;
  }
  std::uint32_t incarnation(int node) const {
    return incarnation_[static_cast<std::size_t>(node)];
  }

  // Link-layer view: alive physical neighbors of an alive node over usable
  // links, with costs. Heap-allocates; hot callers use the for_each variant.
  std::vector<graph::Edge> alive_neighbors(int u) const {
    std::vector<graph::Edge> result;
    for_each_alive_neighbor(u, [&](const graph::Edge& e) { result.push_back(e); });
    return result;
  }

  // Allocation-free equivalent: invokes fn(edge) for every alive physical
  // neighbor of an alive node over a usable link, in adjacency order.
  template <typename Fn>
  void for_each_alive_neighbor(int u, Fn&& fn) const {
    if (!alive(u)) return;
    for (const graph::Edge& e : links_.neighbors(u))
      if (alive(e.to) && link_up(u, e.to)) fn(e);
  }

  double link_cost(int u, int v) const { return links_.link_cost(u, v); }

  // Sends over the physical link from -> to. Returns false (and sends
  // nothing) if the link does not exist or is down, or either endpoint is
  // dead at send time. The transmission is counted at the sender, and every
  // random draw (loss, duplication, delay) comes from the sender's stream.
  bool send(int from, int to, Message msg) {
    if (!alive(from) || !alive(to)) return false;
    if (!link_usable(from, to)) return false;
    NodeCounters& c = counters_[static_cast<std::size_t>(from)];
    Rng& rng = rng_[static_cast<std::size_t>(from)];
    ++c.sent;
    // Control-plane tracing: one event per counted transmission (loss and
    // duplication are delivery-side effects and do not change the record).
    if (obs::TraceSink* sink = obs::trace_sink(); sink && sink->trace_control())
      sink->hop(from, to, obs::HopMode::kControl, 0.0, sim_.now());
    if (fault_loss_ > 0.0 && rng.bernoulli(fault_loss_)) {
      ++c.lost;
      ++c.fault_lost;
      return true;  // transmitted (and counted), but never arrives
    }
    if (loss_etx_ != nullptr) {
      const double etx = loss_etx_->link_cost(from, to);
      const double prr = etx >= 1.0 ? 1.0 / etx : 1.0;
      if (!rng.bernoulli(prr)) {
        ++c.lost;
        return true;  // transmitted (and counted), but never arrives
      }
    }
    const bool duplicate = dup_prob_ > 0.0 && rng.bernoulli(dup_prob_);
    deliver(from, to, msg);
    if (duplicate) {
      ++c.duplicated;
      deliver(from, to, std::move(msg));
    }
    return true;
  }

  std::uint64_t messages_sent(int node) const {
    return counters_[static_cast<std::size_t>(node)].sent;
  }
  std::uint64_t total_messages_sent() const { return sum(&NodeCounters::sent); }
  // Messages dropped on arrival because the receiver died (or died and
  // rejoined as a new incarnation) while they were in flight.
  std::uint64_t messages_expired() const { return sum(&NodeCounters::expired); }
  // Subsets of messages_lost() / extra deliveries injected by fault knobs.
  std::uint64_t fault_messages_lost() const { return sum(&NodeCounters::fault_lost); }
  std::uint64_t messages_duplicated() const { return sum(&NodeCounters::duplicated); }
  void reset_counters() {
    for (NodeCounters& c : counters_) c.sent = 0;
  }

 private:
  // Written only from the owning node's lane: sent/lost/fault_lost/
  // duplicated at the sender, expired at the receiver.
  struct NodeCounters {
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
    std::uint64_t fault_lost = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t expired = 0;
  };

  std::uint64_t sum(std::uint64_t NodeCounters::* field) const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : counters_) total += c.*field;
    return total;
  }

  void deliver(int from, int to, Message msg) {
    const double delay =
        rng_[static_cast<std::size_t>(from)].uniform(delay_min_, delay_max_) * delay_factor_;
    const std::uint32_t inc = incarnation(to);
    sim_.schedule_in_node(to, delay, [this, from, to, inc, m = std::move(msg)]() mutable {
      // Receiver died -- or died and rejoined -- while the message was in
      // flight: the message belongs to a previous incarnation.
      if (!alive(to) || incarnation(to) != inc) {
        ++counters_[static_cast<std::size_t>(to)].expired;
        return;
      }
      if (receiver_) receiver_(to, from, std::move(m));
    });
  }

  Simulator& sim_;
  const graph::Graph& links_;
  double delay_min_;
  double delay_max_;
  std::vector<Rng> rng_;  // one stream per node; send-path draws use [from]
  std::vector<bool> alive_;
  std::vector<std::uint32_t> incarnation_;
  std::vector<NodeCounters> counters_;
  double fault_loss_ = 0.0;
  double dup_prob_ = 0.0;
  double delay_factor_ = 1.0;
  LinkSet down_links_;
  const graph::Graph* loss_etx_ = nullptr;
  std::function<void(int, int, Message)> receiver_;
};

}  // namespace gdvr::sim
