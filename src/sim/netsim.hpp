// Network binding for the discrete-event simulator: delivers typed messages
// between physically connected nodes with uniform-random per-hop delay, and
// accounts every transmission (the paper's communication-cost metric counts
// messages sent per node, including each hop of a multi-hop forwarding).
//
// Delivery is reliable: link lossiness is captured by the routing metric
// (ETX), not by dropping control messages -- the same abstraction the paper
// uses. Nodes can be dead (churn): dead nodes neither send nor receive, and
// messages in flight to a node that dies are dropped on arrival.
#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {

template <typename Message>
class NetSim {
 public:
  // `links` defines physical connectivity and per-direction link costs in the
  // experiment's routing metric.
  NetSim(Simulator& sim, const graph::Graph& links, double delay_min, double delay_max,
         std::uint64_t seed)
      : sim_(sim),
        links_(links),
        delay_min_(delay_min),
        delay_max_(delay_max),
        rng_(seed),
        alive_(static_cast<std::size_t>(links.size()), true),
        sent_(static_cast<std::size_t>(links.size()), 0) {}

  Simulator& simulator() { return sim_; }
  const graph::Graph& links() const { return links_; }
  int size() const { return links_.size(); }

  // Handler invoked as (to, from, message) on delivery.
  void set_receiver(std::function<void(int, int, Message)> handler) {
    receiver_ = std::move(handler);
  }

  // Optional lossy control plane: each transmission over link (u, v) is
  // dropped with probability 1 - PRR(u, v), where PRR = 1/ETX from the given
  // cost graph (clamped to [0, 1]). By default delivery is reliable -- the
  // paper folds link lossiness into the routing metric only; this knob
  // exposes the protocols to real message loss (see the control-loss
  // ablation bench).
  void set_loss_from_etx(const graph::Graph& etx) { loss_etx_ = &etx; }
  void clear_loss_model() { loss_etx_ = nullptr; }
  std::uint64_t messages_lost() const { return lost_; }

  bool alive(int node) const { return alive_[static_cast<std::size_t>(node)]; }
  void set_alive(int node, bool alive) { alive_[static_cast<std::size_t>(node)] = alive; }

  // Link-layer view: alive physical neighbors of an alive node, with costs.
  std::vector<graph::Edge> alive_neighbors(int u) const {
    std::vector<graph::Edge> result;
    if (!alive(u)) return result;
    for (const graph::Edge& e : links_.neighbors(u))
      if (alive(e.to)) result.push_back(e);
    return result;
  }

  double link_cost(int u, int v) const { return links_.link_cost(u, v); }

  // Sends over the physical link from -> to. Returns false (and sends
  // nothing) if the link does not exist or either endpoint is dead at send
  // time. The transmission is counted at the sender.
  bool send(int from, int to, Message msg) {
    if (!alive(from) || !alive(to)) return false;
    if (!links_.has_edge(from, to)) return false;
    ++sent_[static_cast<std::size_t>(from)];
    ++total_sent_;
    if (loss_etx_ != nullptr) {
      const double etx = loss_etx_->link_cost(from, to);
      const double prr = etx >= 1.0 ? 1.0 / etx : 1.0;
      if (!rng_.bernoulli(prr)) {
        ++lost_;
        return true;  // transmitted (and counted), but never arrives
      }
    }
    const double delay = rng_.uniform(delay_min_, delay_max_);
    sim_.schedule_in(delay, [this, from, to, m = std::move(msg)]() mutable {
      if (!alive(to)) return;  // receiver died while the message was in flight
      if (receiver_) receiver_(to, from, std::move(m));
    });
    return true;
  }

  std::uint64_t messages_sent(int node) const { return sent_[static_cast<std::size_t>(node)]; }
  std::uint64_t total_messages_sent() const { return total_sent_; }
  void reset_counters() {
    std::fill(sent_.begin(), sent_.end(), 0);
    total_sent_ = 0;
  }

 private:
  Simulator& sim_;
  const graph::Graph& links_;
  double delay_min_;
  double delay_max_;
  Rng rng_;
  std::vector<bool> alive_;
  std::vector<std::uint64_t> sent_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t lost_ = 0;
  const graph::Graph* loss_etx_ = nullptr;
  std::function<void(int, int, Message)> receiver_;
};

}  // namespace gdvr::sim
