// Network binding for the discrete-event simulator: delivers typed messages
// between physically connected nodes with uniform-random per-hop delay, and
// accounts every transmission (the paper's communication-cost metric counts
// messages sent per node, including each hop of a multi-hop forwarding).
//
// Delivery is reliable by default: link lossiness is captured by the routing
// metric (ETX), not by dropping control messages -- the same abstraction the
// paper uses. Beyond that baseline, the layer exposes the failure modes the
// fault-injection subsystem (sim/faults.hpp) drives:
//  * dead nodes (churn): neither send nor receive; messages in flight to a
//    node that dies are dropped on arrival, and a per-node incarnation
//    number guarantees a message sent to one incarnation is never delivered
//    to a later one (die-and-rejoin races);
//  * downed links (flapping / partitions): send fails at the link layer;
//  * burst loss: an extra uniform drop probability on top of the ETX model;
//  * duplication: a transmission may arrive twice (independent delays);
//  * delay spikes: sampled delays are scaled, reordering traffic relative
//    to messages sent outside the spike window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {

template <typename Message>
class NetSim {
 public:
  // `links` defines physical connectivity and per-direction link costs in the
  // experiment's routing metric.
  NetSim(Simulator& sim, const graph::Graph& links, double delay_min, double delay_max,
         std::uint64_t seed)
      : sim_(sim),
        links_(links),
        delay_min_(delay_min),
        delay_max_(delay_max),
        rng_(seed),
        alive_(static_cast<std::size_t>(links.size()), true),
        incarnation_(static_cast<std::size_t>(links.size()), 0),
        sent_(static_cast<std::size_t>(links.size()), 0) {}

  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }
  const graph::Graph& links() const { return links_; }
  int size() const { return links_.size(); }

  // Handler invoked as (to, from, message) on delivery.
  void set_receiver(std::function<void(int, int, Message)> handler) {
    receiver_ = std::move(handler);
  }

  // Optional lossy control plane: each transmission over link (u, v) is
  // dropped with probability 1 - PRR(u, v), where PRR = 1/ETX from the given
  // cost graph (clamped to [0, 1]). By default delivery is reliable -- the
  // paper folds link lossiness into the routing metric only; this knob
  // exposes the protocols to real message loss (see the control-loss
  // ablation bench).
  void set_loss_from_etx(const graph::Graph& etx) { loss_etx_ = &etx; }
  void clear_loss_model() { loss_etx_ = nullptr; }
  std::uint64_t messages_lost() const { return lost_; }

  // --- fault-injection knobs (driven by sim/faults.hpp) --------------------
  // Extra uniform drop probability applied to every transmission (burst
  // loss), on top of the ETX loss model if one is set.
  void set_fault_loss(double p) { fault_loss_ = std::clamp(p, 0.0, 1.0); }
  double fault_loss() const { return fault_loss_; }
  // Probability that a delivered transmission arrives a second time with an
  // independently sampled delay (duplication faults).
  void set_duplication(double p) { dup_prob_ = std::clamp(p, 0.0, 1.0); }
  double duplication() const { return dup_prob_; }
  // Multiplier on sampled per-hop delays (delay spikes; >= 1 reorders
  // in-flight traffic relative to normal-delay messages).
  void set_delay_factor(double f) { delay_factor_ = std::max(f, 0.0); }
  double delay_factor() const { return delay_factor_; }
  // Administrative (fault) state of a physical link; both directions share
  // one state. Returns false if no such physical link exists.
  void set_link_up(int u, int v, bool up) {
    const auto key = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
    if (up)
      down_links_.erase(key);
    else if (links_.has_edge(u, v))
      down_links_.insert(key);
  }
  bool link_up(int u, int v) const {
    const auto key = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
    return down_links_.count(key) == 0;
  }
  // A link exists physically AND is administratively up.
  bool link_usable(int u, int v) const { return links_.has_edge(u, v) && link_up(u, v); }

  bool alive(int node) const { return alive_[static_cast<std::size_t>(node)]; }
  void set_alive(int node, bool alive) {
    // A node that rejoins is a fresh incarnation: messages addressed to the
    // previous incarnation (still in flight across its death) must not be
    // delivered to the new one.
    if (alive && !alive_[static_cast<std::size_t>(node)])
      ++incarnation_[static_cast<std::size_t>(node)];
    alive_[static_cast<std::size_t>(node)] = alive;
  }
  std::uint32_t incarnation(int node) const {
    return incarnation_[static_cast<std::size_t>(node)];
  }

  // Link-layer view: alive physical neighbors of an alive node over usable
  // links, with costs.
  std::vector<graph::Edge> alive_neighbors(int u) const {
    std::vector<graph::Edge> result;
    if (!alive(u)) return result;
    for (const graph::Edge& e : links_.neighbors(u))
      if (alive(e.to) && link_up(u, e.to)) result.push_back(e);
    return result;
  }

  double link_cost(int u, int v) const { return links_.link_cost(u, v); }

  // Sends over the physical link from -> to. Returns false (and sends
  // nothing) if the link does not exist or is down, or either endpoint is
  // dead at send time. The transmission is counted at the sender.
  bool send(int from, int to, Message msg) {
    if (!alive(from) || !alive(to)) return false;
    if (!link_usable(from, to)) return false;
    ++sent_[static_cast<std::size_t>(from)];
    ++total_sent_;
    // Control-plane tracing: one event per counted transmission (loss and
    // duplication are delivery-side effects and do not change the record).
    if (obs::TraceSink* sink = obs::trace_sink(); sink && sink->trace_control())
      sink->hop(from, to, obs::HopMode::kControl, 0.0, sim_.now());
    if (fault_loss_ > 0.0 && rng_.bernoulli(fault_loss_)) {
      ++lost_;
      ++fault_lost_;
      return true;  // transmitted (and counted), but never arrives
    }
    if (loss_etx_ != nullptr) {
      const double etx = loss_etx_->link_cost(from, to);
      const double prr = etx >= 1.0 ? 1.0 / etx : 1.0;
      if (!rng_.bernoulli(prr)) {
        ++lost_;
        return true;  // transmitted (and counted), but never arrives
      }
    }
    const bool duplicate = dup_prob_ > 0.0 && rng_.bernoulli(dup_prob_);
    deliver(from, to, msg);
    if (duplicate) {
      ++duplicated_;
      deliver(from, to, std::move(msg));
    }
    return true;
  }

  std::uint64_t messages_sent(int node) const { return sent_[static_cast<std::size_t>(node)]; }
  std::uint64_t total_messages_sent() const { return total_sent_; }
  // Messages dropped on arrival because the receiver died (or died and
  // rejoined as a new incarnation) while they were in flight.
  std::uint64_t messages_expired() const { return expired_; }
  // Subsets of messages_lost() / extra deliveries injected by fault knobs.
  std::uint64_t fault_messages_lost() const { return fault_lost_; }
  std::uint64_t messages_duplicated() const { return duplicated_; }
  void reset_counters() {
    std::fill(sent_.begin(), sent_.end(), 0);
    total_sent_ = 0;
  }

 private:
  void deliver(int from, int to, Message msg) {
    const double delay = rng_.uniform(delay_min_, delay_max_) * delay_factor_;
    const std::uint32_t inc = incarnation(to);
    sim_.schedule_in(delay, [this, from, to, inc, m = std::move(msg)]() mutable {
      // Receiver died -- or died and rejoined -- while the message was in
      // flight: the message belongs to a previous incarnation.
      if (!alive(to) || incarnation(to) != inc) {
        ++expired_;
        return;
      }
      if (receiver_) receiver_(to, from, std::move(m));
    });
  }

  Simulator& sim_;
  const graph::Graph& links_;
  double delay_min_;
  double delay_max_;
  Rng rng_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> incarnation_;
  std::vector<std::uint64_t> sent_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t fault_lost_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t expired_ = 0;
  double fault_loss_ = 0.0;
  double dup_prob_ = 0.0;
  double delay_factor_ = 1.0;
  std::set<std::pair<int, int>> down_links_;
  const graph::Graph* loss_etx_ = nullptr;
  std::function<void(int, int, Message)> receiver_;
};

}  // namespace gdvr::sim
