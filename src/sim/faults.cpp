#include "sim/faults.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "common/rng.hpp"

namespace gdvr::sim {

// ---------------------------------------------------------------------------
// FaultSchedule

FaultSchedule& FaultSchedule::push(FaultAction a) {
  actions_.push_back(a);
  return *this;
}

FaultSchedule& FaultSchedule::crash(Time at, int node) {
  return push({at, FaultKind::kCrash, node, -1, 0.0, 0});
}

FaultSchedule& FaultSchedule::recover(Time at, int node) {
  return push({at, FaultKind::kRecover, node, -1, 0.0, 0});
}

FaultSchedule& FaultSchedule::crash_cycle(Time at, int node, double downtime) {
  crash(at, node);
  return recover(at + downtime, node);
}

FaultSchedule& FaultSchedule::link_down(Time at, int u, int v) {
  return push({at, FaultKind::kLinkDown, u, v, 0.0, 0});
}

FaultSchedule& FaultSchedule::link_up(Time at, int u, int v) {
  return push({at, FaultKind::kLinkUp, u, v, 0.0, 0});
}

FaultSchedule& FaultSchedule::link_flap(Time at, int u, int v, double downtime) {
  link_down(at, u, v);
  return link_up(at + downtime, u, v);
}

FaultSchedule& FaultSchedule::loss_burst(Time at, double duration, double prob) {
  const std::uint64_t tag = next_tag_++;
  push({at, FaultKind::kLossStart, -1, -1, prob, tag});
  return push({at + duration, FaultKind::kLossEnd, -1, -1, 0.0, tag});
}

FaultSchedule& FaultSchedule::dup_burst(Time at, double duration, double prob) {
  const std::uint64_t tag = next_tag_++;
  push({at, FaultKind::kDupStart, -1, -1, prob, tag});
  return push({at + duration, FaultKind::kDupEnd, -1, -1, 0.0, tag});
}

FaultSchedule& FaultSchedule::delay_spike(Time at, double duration, double factor) {
  const std::uint64_t tag = next_tag_++;
  push({at, FaultKind::kDelayStart, -1, -1, factor, tag});
  return push({at + duration, FaultKind::kDelayEnd, -1, -1, 0.0, tag});
}

FaultSchedule& FaultSchedule::partition(Time at, double duration, double fraction) {
  const std::uint64_t tag = next_tag_++;
  push({at, FaultKind::kPartitionStart, -1, -1, fraction, tag});
  return push({at + duration, FaultKind::kPartitionEnd, -1, -1, 0.0, tag});
}

FaultSchedule& FaultSchedule::merge(const FaultSchedule& other) {
  // Re-tag the merged windowed actions so tags stay unique within *this.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> remap;
  for (FaultAction a : other.actions_) {
    if (a.tag != 0) {
      auto it = std::find_if(remap.begin(), remap.end(),
                             [&](const auto& p) { return p.first == a.tag; });
      if (it == remap.end()) {
        remap.emplace_back(a.tag, next_tag_++);
        a.tag = remap.back().second;
      } else {
        a.tag = it->second;
      }
    }
    actions_.push_back(a);
  }
  return *this;
}

Time FaultSchedule::quiesce_time() const {
  Time t = 0.0;
  for (const FaultAction& a : actions_) t = std::max(t, a.at);
  return t;
}

FaultSchedule FaultSchedule::random_chaos(const ChaosConfig& config, std::uint64_t seed,
                                          int node_count,
                                          const std::vector<std::pair<int, int>>& links) {
  Rng rng(seed);
  FaultSchedule s;
  const double span = std::max(config.t_end - config.t_begin, 1e-9);
  // Uniform time within the window, leaving room for `tail` of aftermath so
  // the recovery/up/end action still lands inside [t_begin, t_end].
  const auto when = [&](double tail) {
    return config.t_begin + rng.uniform(0.0, std::max(span - tail, 1e-9));
  };

  for (int i = 0; i < config.crash_cycles && node_count > 1; ++i) {
    int victim = rng.uniform_index(node_count);
    if (victim == config.protected_node) victim = (victim + 1) % node_count;
    const double down = rng.uniform(0.5, 1.5) * config.crash_downtime_s;
    s.crash_cycle(when(down), victim, down);
  }
  for (int i = 0; i < config.link_flaps && !links.empty(); ++i) {
    const auto [u, v] = links[static_cast<std::size_t>(rng.uniform_index(
        static_cast<int>(links.size())))];
    const double down = rng.uniform(0.5, 1.5) * config.flap_downtime_s;
    s.link_flap(when(down), u, v, down);
  }
  for (int i = 0; i < config.loss_bursts; ++i) {
    const double dur = rng.uniform(0.5, 1.5) * config.loss_burst_s;
    s.loss_burst(when(dur), dur, config.loss_prob);
  }
  for (int i = 0; i < config.dup_bursts; ++i) {
    const double dur = rng.uniform(0.5, 1.5) * config.dup_burst_s;
    s.dup_burst(when(dur), dur, config.dup_prob);
  }
  for (int i = 0; i < config.delay_spikes; ++i) {
    const double dur = rng.uniform(0.5, 1.5) * config.delay_spike_s;
    s.delay_spike(when(dur), dur, config.delay_factor);
  }
  for (int i = 0; i < config.partitions; ++i) {
    const double dur = rng.uniform(0.75, 1.25) * config.partition_s;
    s.partition(when(dur), dur, config.partition_fraction);
  }
  return s;
}

std::string FaultSchedule::describe() const {
  std::vector<FaultAction> sorted = actions_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  std::string out;
  char line[128];
  for (const FaultAction& a : sorted) {
    const char* name = "?";
    switch (a.kind) {
      case FaultKind::kCrash: name = "crash"; break;
      case FaultKind::kRecover: name = "recover"; break;
      case FaultKind::kLinkDown: name = "link-down"; break;
      case FaultKind::kLinkUp: name = "link-up"; break;
      case FaultKind::kLossStart: name = "loss-start"; break;
      case FaultKind::kLossEnd: name = "loss-end"; break;
      case FaultKind::kDupStart: name = "dup-start"; break;
      case FaultKind::kDupEnd: name = "dup-end"; break;
      case FaultKind::kDelayStart: name = "delay-start"; break;
      case FaultKind::kDelayEnd: name = "delay-end"; break;
      case FaultKind::kPartitionStart: name = "partition-start"; break;
      case FaultKind::kPartitionEnd: name = "partition-end"; break;
    }
    std::snprintf(line, sizeof(line), "t=%8.2f  %-15s node=%d node_b=%d mag=%.3f tag=%llu\n",
                  a.at, name, a.node, a.node_b, a.magnitude,
                  static_cast<unsigned long long>(a.tag));
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(Simulator& sim, FaultActions actions)
    : sim_(sim), actions_(std::move(actions)) {}

void FaultInjector::install(const FaultSchedule& schedule) {
  for (const FaultAction& a : schedule.actions()) {
    GDVR_ASSERT_MSG(a.at >= sim_.now(), "fault schedule reaches into the past");
    sim_.schedule_at(a.at, [this, a] { apply(a); });
  }
}

void FaultInjector::apply(const FaultAction& a) {
  switch (a.kind) {
    case FaultKind::kCrash:
      if (actions_.crash) actions_.crash(a.node);
      ++crashes_;
      break;
    case FaultKind::kRecover:
      if (actions_.recover) actions_.recover(a.node);
      ++recoveries_;
      break;
    case FaultKind::kLinkDown:
      if (actions_.set_link_up) actions_.set_link_up(a.node, a.node_b, false);
      ++link_events_;
      break;
    case FaultKind::kLinkUp:
      if (actions_.set_link_up) actions_.set_link_up(a.node, a.node_b, true);
      ++link_events_;
      break;
    case FaultKind::kLossStart:
      open_window(FaultKind::kLossStart, a.tag, a.magnitude);
      break;
    case FaultKind::kLossEnd:
      close_window(FaultKind::kLossStart, a.tag);
      break;
    case FaultKind::kDupStart:
      open_window(FaultKind::kDupStart, a.tag, a.magnitude);
      break;
    case FaultKind::kDupEnd:
      close_window(FaultKind::kDupStart, a.tag);
      break;
    case FaultKind::kDelayStart:
      open_window(FaultKind::kDelayStart, a.tag, a.magnitude);
      break;
    case FaultKind::kDelayEnd:
      close_window(FaultKind::kDelayStart, a.tag);
      break;
    case FaultKind::kPartitionStart:
      begin_partition(a);
      break;
    case FaultKind::kPartitionEnd:
      end_partition(a.tag);
      break;
  }
}

void FaultInjector::open_window(FaultKind kind, std::uint64_t tag, double magnitude) {
  windows_.push_back({kind, tag, magnitude});
  ++windows_opened_;
  apply_windows(kind);
}

void FaultInjector::close_window(FaultKind kind, std::uint64_t tag) {
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [&](const Window& w) { return w.kind == kind && w.tag == tag; }),
                 windows_.end());
  apply_windows(kind);
}

void FaultInjector::apply_windows(FaultKind kind) {
  // The most recently opened window of this kind wins; none open -> neutral.
  double magnitude = kind == FaultKind::kDelayStart ? 1.0 : 0.0;
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->kind == kind) {
      magnitude = it->magnitude;
      break;
    }
  }
  switch (kind) {
    case FaultKind::kLossStart:
      if (actions_.set_loss) actions_.set_loss(magnitude);
      break;
    case FaultKind::kDupStart:
      if (actions_.set_duplication) actions_.set_duplication(magnitude);
      break;
    case FaultKind::kDelayStart:
      if (actions_.set_delay_factor) actions_.set_delay_factor(magnitude);
      break;
    default:
      break;
  }
}

void FaultInjector::begin_partition(const FaultAction& a) {
  if (!actions_.edges || !actions_.node_count || !actions_.set_link_up) return;
  const std::vector<std::pair<int, int>> edges = actions_.edges();
  const int n = actions_.node_count();
  if (n <= 1 || edges.empty()) return;

  // Liveness-aware view: the split is computed over the *live* component, so
  // a crashed node can neither seed the BFS nor act as a conduit that lets
  // side A swallow nodes it could not reach through live links. Edges with a
  // dead endpoint are excluded from adjacency but still eligible for the cut
  // below (a victim rejoining mid-partition must not bridge the split).
  const auto alive = [&](int u) { return !actions_.is_alive || actions_.is_alive(u); };
  int n_alive = 0;
  for (int u = 0; u < n; ++u)
    if (alive(u)) ++n_alive;
  if (n_alive <= 1) return;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [u, v] : edges) {
    if (!alive(u) || !alive(v)) continue;
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
  }
  // Deterministic per-partition seed: grow side A by BFS from a tag-derived
  // alive node until it holds `fraction` of the live nodes, then cut every
  // edge with exactly one endpoint in A. BFS keeps side A connected, so the
  // cut really disconnects two internally connected halves.
  Rng rng(0xFA017Full ^ (a.tag * 0x9E3779B97F4A7C15ull));
  int start = rng.uniform_index(n);
  for (int probe = 0; probe < n && !alive(start); ++probe)
    start = (start + 1) % n;
  if (!alive(start)) return;
  const auto target = static_cast<std::size_t>(
      std::max(1.0, a.magnitude * static_cast<double>(n_alive)));
  std::vector<char> in_a(static_cast<std::size_t>(n), 0);
  std::queue<int> bfs;
  bfs.push(start);
  in_a[static_cast<std::size_t>(start)] = 1;
  std::size_t size_a = 1;
  while (!bfs.empty() && size_a < target) {
    const int u = bfs.front();
    bfs.pop();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (in_a[static_cast<std::size_t>(v)] || size_a >= target) continue;
      in_a[static_cast<std::size_t>(v)] = 1;
      ++size_a;
      bfs.push(v);
    }
  }
  std::vector<std::pair<int, int>> cut;
  for (const auto& [u, v] : edges)
    if (in_a[static_cast<std::size_t>(u)] != in_a[static_cast<std::size_t>(v)]) cut.push_back({u, v});
  for (const auto& [u, v] : cut) actions_.set_link_up(u, v, false);
  ++link_events_;
  ++partitions_;
  partition_cuts_.emplace_back(a.tag, std::move(cut));
}

void FaultInjector::end_partition(std::uint64_t tag) {
  for (auto it = partition_cuts_.begin(); it != partition_cuts_.end(); ++it) {
    if (it->first != tag) continue;
    for (const auto& [u, v] : it->second) actions_.set_link_up(u, v, true);
    ++link_events_;
    partition_cuts_.erase(it);
    return;
  }
}

}  // namespace gdvr::sim
