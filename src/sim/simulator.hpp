// Discrete-event simulation engine with two interchangeable executors.
//
// Matches the paper's methodology (Section IV-A): queueing is not modeled;
// each message takes a uniformly random time to cross a link. Events with
// equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), so runs are fully deterministic for a given seed.
//
// Engines (see DESIGN.md §4g):
//
//  * kSerial  -- the original single event loop. One 4-ary heap, one clock.
//                This is the oracle every other engine is pinned against.
//  * kSharded -- conservative (lookahead-synchronized) parallel execution.
//                Nodes are partitioned into shards; each shard owns a lane
//                (its own heap, slot table, sequence counter and clock) and
//                lanes advance in windows bounded by the minimum cross-node
//                message delay (the lookahead, registered by NetSim).
//                Within a window lanes run concurrently on a persistent
//                WorkerPool; cross-lane schedules are buffered in per-lane
//                outboxes and merged at the window barrier in lane order, so
//                the merge is a pure function of the partition, never of the
//                thread count. Events not owned by any node (fault actions,
//                watchdogs, harness callbacks) live on a global lane that
//                executes serially between windows.
//
// Determinism contract: a sharded run is bit-identical for any GDVR_THREADS
// value, because the shard count and partition are fixed independently of
// the worker count and shards share no mutable state inside a window (the
// protocol layers keep per-node RNG streams and counters for exactly this
// reason). The serial engine stays the behavioral oracle: the same scenario
// produces identical per-node event sequences, RNG draws and counters on
// both engines (golden tests pin this), though trace *ordering* differs --
// the sharded engine flushes per-lane trace buffers at window barriers.
//
// Callback storage is O(pending events), not O(events ever scheduled): each
// event occupies a slot that is reclaimed when the event fires or is
// cancelled, and EventIds carry a per-slot generation counter so a stale id
// (from an already-fired or cancelled event) can never cancel the slot's
// current occupant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace gdvr::sim {

using Time = double;  // seconds

enum class SimEngine { kSerial, kSharded };

// Resolves GDVR_SIM_ENGINE ("serial" | "sharded", default serial). This is
// the engine-selection seam the runners consult; low-level Simulator
// construction stays serial unless configure_sharding is called, so unit
// tests that build bare simulators are unaffected by the environment.
SimEngine engine_from_env();
const char* engine_name(SimEngine e);

// 4-ary min-heap keyed on (time, sequence). Half the depth of the binary
// std::priority_queue it replaced, and the four children of a node share a
// cache line: a measurable win on the pop-heavy event loop
// (BM_SimulatorEventLoop). The comparator is a strict total order (seq is
// unique per lane), so pop order -- and therefore every golden digest -- is
// identical to the old binary heap.
class EventHeap {
 public:
  struct Entry {
    Time at;
    std::uint64_t seq;  // monotone per lane: FIFO among equal times
    std::uint64_t id;
  };

  bool empty() const { return h_.empty(); }
  std::size_t size() const { return h_.size(); }
  const Entry& top() const { return h_.front(); }

  void push(Entry e) {
    h_.push_back(e);
    std::size_t i = h_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!less(h_[i], h_[parent])) break;
      std::swap(h_[i], h_[parent]);
      i = parent;
    }
  }

  void pop() {
    GDVR_ASSERT(!h_.empty());
    h_.front() = h_.back();
    h_.pop_back();
    if (h_.empty()) return;
    std::size_t i = 0;
    const std::size_t n = h_.size();
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c)
        if (less(h_[c], h_[best])) best = c;
      if (!less(h_[best], h_[i])) break;
      std::swap(h_[i], h_[best]);
      i = best;
    }
  }

 private:
  static bool less(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }
  std::vector<Entry> h_;
};

class Simulator {
 public:
  // Encodes (lane << 48) | (generation << 24) | (slot + 1); 0 is never a
  // valid id, so a zero-initialized EventId is safely cancelable as a no-op.
  // Lane 0 is the global lane (and the only lane of the serial engine);
  // node lanes are 1-based.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator();  // out of line: unique_ptr<Sharded> needs the complete type
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimEngine engine() const { return sharded_ ? SimEngine::kSharded : SimEngine::kSerial; }

  // Switches this simulator to the sharded engine. shard_of[u] gives the
  // shard (0-based, contiguous) owning node u; the shard count and partition
  // must not depend on the thread count or the determinism contract breaks.
  // threads <= 0 resolves via GDVR_THREADS / hardware concurrency. Must be
  // called before any node-owned event is scheduled.
  void configure_sharding(std::vector<int> shard_of, int threads = 0);
  int shard_count() const;
  int shard_of_node(int node) const;

  // Lookahead: the minimum delay of any cross-node interaction, i.e. the
  // window length the sharded engine may safely run lanes in parallel for.
  // NetSim registers its minimum per-hop link delay here; when several
  // providers exist the minimum wins. Queried at every window boundary, so
  // fault actions that scale delays are picked up by the next window.
  void add_lookahead_provider(std::function<double()> provider) {
    lookahead_.push_back(std::move(provider));
  }

  // Current simulation time. Inside a sharded window this is the executing
  // lane's clock (the timestamp of the event being processed), which is what
  // protocol code timestamping its own state must see.
  Time now() const { return sharded_ ? sharded_now() : serial_.now; }

  // --- scheduling ----------------------------------------------------------
  // Global-lane events: fault scripts, watchdogs, harness callbacks --
  // anything that reads or writes state spanning nodes. The sharded engine
  // runs these serially at window barriers.
  EventId schedule_at(Time at, std::function<void()> fn) {
    if (!sharded_) return serial_schedule(at, std::move(fn));
    return sharded_schedule(kGlobalLane, at, std::move(fn));
  }
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  // Node-owned events: message deliveries and per-node protocol timers whose
  // callbacks touch only that node's state (plus sends). The serial engine
  // treats these exactly like schedule_at, preserving its global (time,
  // schedule-order) semantics bit-for-bit.
  EventId schedule_at_node(int node, Time at, std::function<void()> fn) {
    if (!sharded_) return serial_schedule(at, std::move(fn));
    return sharded_schedule(node_lane(node), at, std::move(fn));
  }
  EventId schedule_in_node(int node, Time delay, std::function<void()> fn) {
    return schedule_at_node(node, now() + delay, std::move(fn));
  }

  // Cancels a pending event; stale ids are no-ops. Inside a sharded window a
  // lane may only cancel its own events (checked); the global phase may
  // cancel anything.
  void cancel(EventId id) {
    if (id == kInvalidEvent) return;
    if (!sharded_) {
      lane_cancel(serial_, id);
      return;
    }
    sharded_cancel(id);
  }

  bool empty() const { return live_count() == 0; }
  // Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_count(); }
  // Storage bound: slots ever allocated across lanes (regression hook --
  // must track peak pending, not total events scheduled).
  std::size_t slot_capacity() const;

  // Sharded-engine allocation counters (zeros on the serial engine). The
  // per-lane outboxes are pooled: clear() at the barrier keeps capacity, so
  // `outbox_grows` -- buffer reallocations while appending -- must stop
  // increasing once a workload reaches steady state (pinned in
  // sharded_engine_test).
  struct ShardedStats {
    std::uint64_t outbox_grows = 0;
    std::uint64_t outbox_peak = 0;  // max cross-lane messages buffered by one lane in one window
  };
  ShardedStats sharded_stats() const;

  // Runs one event; returns false if the queue is empty. Serial engine only
  // (the sharded engine advances in windows, not single events).
  bool step() {
    GDVR_ASSERT_MSG(!sharded_, "step() is serial-only; use run_until");
    return serial_step();
  }

  // Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t) {
    if (sharded_) {
      sharded_run_until(t);
      return;
    }
    while (lane_peek(serial_) <= t) serial_step();
    serial_.now = t;
  }

  // Drains the whole queue (use with care: protocols with periodic timers
  // never drain; prefer run_until). Serial engine only.
  void run_all(std::size_t max_events = SIZE_MAX) {
    GDVR_ASSERT_MSG(!sharded_, "run_all() is serial-only; use run_until");
    for (std::size_t i = 0; i < max_events && serial_step(); ++i) {
    }
  }

 private:
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  struct Lane {
    EventHeap queue;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free;
    std::uint64_t next_seq = 0;
    std::size_t live = 0;
    Time now = 0.0;
  };

  static constexpr int kGlobalLane = 0;
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kGenBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (1ull << kGenBits) - 1;

  static EventId make_id(int lane, std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(lane) << (kSlotBits + kGenBits)) |
           ((static_cast<EventId>(gen) & kGenMask) << kSlotBits) |
           (static_cast<EventId>(slot) + 1);
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>((id & kSlotMask) - 1);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>((id >> kSlotBits) & kGenMask);
  }
  static int lane_of(EventId id) {
    return static_cast<int>(id >> (kSlotBits + kGenBits));
  }

  // --- lane primitives (engine-agnostic) -----------------------------------
  static EventId lane_push(Lane& ln, int lane, Time at, std::function<void()> fn) {
    std::uint32_t slot;
    if (!ln.free.empty()) {
      slot = ln.free.back();
      ln.free.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(ln.slots.size());
      GDVR_ASSERT_MSG(slot < kSlotMask, "event slot space exhausted");
      ln.slots.emplace_back();
    }
    Slot& s = ln.slots[slot];
    s.fn = std::move(fn);
    s.live = true;
    const EventId id = make_id(lane, slot, s.gen);
    ln.queue.push({at, ln.next_seq++, id});
    ++ln.live;
    return id;
  }

  static void lane_cancel(Lane& ln, EventId id) {
    const std::uint32_t slot = slot_of(id);
    GDVR_ASSERT(slot < ln.slots.size());
    Slot& s = ln.slots[slot];
    if (!s.live || s.gen != gen_of(id)) return;  // already fired or cancelled
    lane_release(ln, slot);  // heap entry becomes a tombstone
  }

  static void lane_release(Lane& ln, std::uint32_t slot) {
    Slot& s = ln.slots[slot];
    s.fn = nullptr;
    s.live = false;
    ++s.gen;  // invalidate every outstanding EventId for this slot
    ln.free.push_back(slot);
    GDVR_ASSERT(ln.live > 0);
    --ln.live;
  }

  // Earliest live event time of a lane, popping tombstones; +inf when empty.
  static Time lane_peek(Lane& ln) {
    while (!ln.queue.empty()) {
      const EventHeap::Entry& e = ln.queue.top();
      const std::uint32_t slot = slot_of(e.id);
      if (ln.slots[slot].live && ln.slots[slot].gen == gen_of(e.id)) return e.at;
      ln.queue.pop();
    }
    return kInfTime;
  }

  static constexpr Time kInfTime = 1e300;

  // --- serial engine -------------------------------------------------------
  EventId serial_schedule(Time at, std::function<void()> fn) {
    GDVR_ASSERT_MSG(at >= serial_.now, "cannot schedule in the past");
    return lane_push(serial_, kGlobalLane, at, std::move(fn));
  }

  bool serial_step() {
    Lane& ln = serial_;
    while (!ln.queue.empty()) {
      const EventHeap::Entry e = ln.queue.top();
      ln.queue.pop();
      const std::uint32_t slot = slot_of(e.id);
      Slot& s = ln.slots[slot];
      if (!s.live || s.gen != gen_of(e.id)) continue;  // cancelled tombstone
      ln.now = e.at;
      // Move the callback out and reclaim the slot before running, so the
      // callback can schedule new events (possibly reusing this very slot).
      auto fn = std::move(s.fn);
      lane_release(ln, slot);
      fn();
      return true;
    }
    GDVR_ASSERT(ln.live == 0);
    return false;
  }

  // --- sharded engine (src/sim/engine.cpp) ---------------------------------
  struct Sharded;
  int node_lane(int node) const;
  EventId sharded_schedule(int lane, Time at, std::function<void()> fn);
  void sharded_cancel(EventId id);
  void sharded_run_until(Time t);
  static void run_lane(Lane& ln, Time cap);
  Time sharded_now() const;
  std::size_t sharded_live() const;
  double lookahead() const;

  std::size_t live_count() const { return sharded_ ? sharded_live() : serial_.live; }

  Lane serial_;  // the serial engine's only lane; the global lane when sharded
  std::vector<std::function<double()>> lookahead_;
  std::unique_ptr<Sharded> sharded_;
};

}  // namespace gdvr::sim
