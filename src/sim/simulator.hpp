// Packet-level discrete-event simulation engine.
//
// Matches the paper's methodology (Section IV-A): queueing is not modeled;
// each message takes a uniformly random time to cross a link. Events with
// equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), so runs are fully deterministic for a given seed.
//
// Callback storage is O(pending events), not O(events ever scheduled): each
// event occupies a slot that is reclaimed when the event fires or is
// cancelled, and EventIds carry a per-slot generation counter so a stale id
// (from an already-fired or cancelled event) can never cancel the slot's
// current occupant.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"

namespace gdvr::sim {

using Time = double;  // seconds

class Simulator {
 public:
  // Encodes (generation << 32) | (slot + 1); 0 is never a valid id, so a
  // zero-initialized EventId is safely cancelable as a no-op.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Time now() const { return now_; }

  EventId schedule_at(Time at, std::function<void()> fn) {
    GDVR_ASSERT_MSG(at >= now_, "cannot schedule in the past");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.live = true;
    const EventId id = make_id(slot, s.gen);
    queue_.push(Entry{at, next_seq_++, id});
    ++live_;
    return id;
  }

  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  void cancel(EventId id) {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen_of(id)) return;  // stale id: slot moved on
    release(slot);  // the queue entry becomes a tombstone, skipped at pop
  }

  bool empty() const { return live_ == 0; }
  // Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_; }
  // Storage bound: slots ever allocated (regression hook -- must track peak
  // pending, not total events scheduled).
  std::size_t slot_capacity() const { return slots_.size(); }

  // Runs one event; returns false if the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      queue_.pop();
      const std::uint32_t slot = slot_of(e.id);
      Slot& s = slots_[slot];
      if (!s.live || s.gen != gen_of(e.id)) continue;  // cancelled tombstone
      now_ = e.at;
      // Move the callback out and reclaim the slot before running, so the
      // callback can schedule new events (possibly reusing this very slot).
      auto fn = std::move(s.fn);
      release(slot);
      fn();
      return true;
    }
    GDVR_ASSERT(live_ == 0);
    return false;
  }

  // Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t) {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      const std::uint32_t slot = slot_of(e.id);
      if (!slots_[slot].live || slots_[slot].gen != gen_of(e.id)) {
        queue_.pop();
        continue;  // drop tombstones without touching the clock
      }
      if (e.at > t) break;
      step();
    }
    GDVR_ASSERT(now_ <= t);
    now_ = t;
  }

  // Drains the whole queue (use with care: protocols with periodic timers
  // never drain; prefer run_until).
  void run_all(std::size_t max_events = SIZE_MAX) {
    for (std::size_t i = 0; i < max_events && step(); ++i) {
    }
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // monotone: FIFO among equal times
    EventId id;
    bool operator>(const Entry& o) const { return at != o.at ? at > o.at : seq > o.seq; }
  };

  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (static_cast<EventId>(slot) + 1);
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>((id & 0xFFFFFFFFull) - 1);
  }
  static std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }

  void release(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn = nullptr;
    s.live = false;
    ++s.gen;  // invalidate every outstanding EventId for this slot
    free_.push_back(slot);
    GDVR_ASSERT(live_ > 0);
    --live_;
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace gdvr::sim
