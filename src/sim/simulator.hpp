// Packet-level discrete-event simulation engine.
//
// Matches the paper's methodology (Section IV-A): queueing is not modeled;
// each message takes a uniformly random time to cross a link. Events with
// equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), so runs are fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"

namespace gdvr::sim {

using Time = double;  // seconds

class Simulator {
 public:
  using EventId = std::uint64_t;

  Time now() const { return now_; }

  EventId schedule_at(Time at, std::function<void()> fn) {
    GDVR_ASSERT_MSG(at >= now_, "cannot schedule in the past");
    const EventId id = next_id_++;
    queue_.push(Entry{at, id});
    callbacks_.emplace_back(std::move(fn));
    cancelled_.push_back(false);
    return id;
  }

  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  void cancel(EventId id) {
    if (id < cancelled_.size()) cancelled_[id] = true;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  // Runs one event; returns false if the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      queue_.pop();
      now_ = e.at;
      if (cancelled_[e.id]) continue;
      // Move the callback out so it can schedule new events freely.
      auto fn = std::move(callbacks_[e.id]);
      fn();
      return true;
    }
    return false;
  }

  // Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t) {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      if (e.at > t) break;
      if (cancelled_[e.id]) {
        queue_.pop();
        continue;  // drop tombstones without touching the clock
      }
      step();
    }
    GDVR_ASSERT(now_ <= t);
    now_ = t;
  }

  // Drains the whole queue (use with care: protocols with periodic timers
  // never drain; prefer run_until).
  void run_all(std::size_t max_events = SIZE_MAX) {
    for (std::size_t i = 0; i < max_events && step(); ++i) {
    }
  }

 private:
  struct Entry {
    Time at;
    EventId id;
    // Earliest time first; FIFO among equal times via the monotone id.
    bool operator>(const Entry& o) const { return at != o.at ? at > o.at : id > o.id; }
  };

  Time now_ = 0.0;
  EventId next_id_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<std::function<void()>> callbacks_;
  std::vector<bool> cancelled_;
};

}  // namespace gdvr::sim
