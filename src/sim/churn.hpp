// Continuous churn workload generation.
//
// Where ChaosConfig/random_chaos model a bounded fault *storm* (a fixed
// number of crash cycles inside a window), this module models sustained
// *membership* churn: Poisson join/leave arrival processes, flash-crowd
// bursts (a large fraction of the network swapped out at one instant, the
// paper's Figure 17 event generalized), and periodic partition/heal cycles.
// The output is an ordinary FaultSchedule -- crash/recover/partition actions
// with concrete victims and times -- so churn composes with every existing
// piece of the fault machinery: `merge` with a chaos storm, install on any
// FaultInjector, describe() for reproduction.
//
// Determinism: a (config, seed, node_count, initially_dead) tuple always
// expands to the same schedule. The generator tracks the projected alive set
// as it walks forward in time, so victims are always (projected) alive and
// joiners (projected) dead; `min_alive_fraction` bounds how deep sustained
// departures can drain the network.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/faults.hpp"

namespace gdvr::sim {

struct ChurnConfig {
  Time t_begin = 0.0;
  Time t_end = 100.0;
  // Poisson arrival rates (events per second of simulated time). A leave
  // crashes a random projected-alive node; a join recovers a random
  // projected-dead one. Rates of 0 disable that process.
  double leave_rate_hz = 0.0;
  double join_rate_hz = 0.0;
  // Flash crowds: at `flash_crowds` instants spread over the window, a
  // `flash_fraction` of the projected-alive population leaves and an equal
  // number of projected-dead nodes (as available) joins simultaneously.
  int flash_crowds = 0;
  double flash_fraction = 0.25;
  // Partition/heal cycles (resolved topologically at install time by
  // FaultInjector over the live component).
  int partition_cycles = 0;
  double partition_s = 12.0;
  double partition_fraction = 0.5;
  int protected_node = 0;          // never crashed (e.g. the token origin)
  double min_alive_fraction = 0.5; // leaves are suppressed below this floor
};

// Expands a ChurnConfig into a concrete crash/recover/partition schedule,
// deterministic in (config, seed). `initially_dead` seeds the projected dead
// pool (latent nodes a churn experiment brings in later).
FaultSchedule continuous_churn(const ChurnConfig& config, std::uint64_t seed, int node_count,
                               const std::vector<int>& initially_dead = {});

// One flash-crowd event as a standalone schedule: `leaves` distinct victims
// drawn from `leave_pool` crash at `at`, and `joins` nodes drawn in order
// from `join_pool` recover at the same instant. Deterministic in `seed`.
// Generalizes the paper's Figure 17 churn event (150 of 200 fail, 150 latent
// sites join).
FaultSchedule flash_crowd(Time at, int leaves, const std::vector<int>& leave_pool,
                          int joins, const std::vector<int>& join_pool, std::uint64_t seed);

}  // namespace gdvr::sim
