// Fault-injection subsystem: layers scripted and randomized fault schedules
// onto a running simulation.
//
// A FaultSchedule is a plain, inspectable list of timed fault actions --
// node crash/recover, per-link down/up flapping, burst message loss,
// duplication bursts, delay spikes, and temporary partitions. Schedules are
// composable (merge) and seed-deterministic: `random_chaos` expands a
// ChaosConfig into a concrete scripted schedule using only its own RNG, so a
// given (config, seed) pair always produces the same fault sequence.
//
// A FaultInjector binds a schedule to a Simulator through a FaultActions
// vtable of std::functions, so the same machinery drives any NetSim
// instantiation (the message type never reaches this layer) and the
// crash/recover actions can go through the protocol layer (e.g.
// Vpod::fail_node / join_node) rather than bare link-layer liveness.
//
// Partitions are resolved topologically at install time: a BFS from a
// seed-chosen node over the currently known physical edges grows one side
// until it holds ~half the nodes, and every edge crossing the cut is taken
// down for the partition's duration. This guarantees a genuine split of the
// connected component rather than a random edge subset.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace gdvr::sim {

// How a schedule touches the world. Bind these to a NetSim (+ protocol
// lifecycle hooks) with your own lambdas, or use the adapters in
// eval/protocol_runner.hpp for the VPoD stack.
struct FaultActions {
  std::function<void(int)> crash;                     // node fails silently
  std::function<void(int)> recover;                   // node rejoins
  std::function<void(int, int, bool)> set_link_up;    // administrative link state
  std::function<void(double)> set_loss;               // extra uniform drop prob
  std::function<void(double)> set_duplication;        // duplicate-delivery prob
  std::function<void(double)> set_delay_factor;       // per-hop delay multiplier
  std::function<int()> node_count;
  // Undirected physical edges (u < v), used to resolve partitions.
  std::function<std::vector<std::pair<int, int>>()> edges;
  std::function<bool(int)> is_alive;                  // current liveness (optional)
};

enum class FaultKind {
  kCrash,        // node: victim
  kRecover,      // node: victim
  kLinkDown,     // link: (a, b)
  kLinkUp,       // link: (a, b)
  kLossStart,    // magnitude: drop probability
  kLossEnd,
  kDupStart,     // magnitude: duplication probability
  kDupEnd,
  kDelayStart,   // magnitude: delay factor
  kDelayEnd,
  kPartitionStart,  // magnitude: fraction of nodes on the cut-off side
  kPartitionEnd,
};

struct FaultAction {
  Time at = 0.0;
  FaultKind kind = FaultKind::kCrash;
  int node = -1;          // victim (crash/recover) or link endpoint a
  int node_b = -1;        // link endpoint b
  double magnitude = 0.0; // probability / factor / partition fraction
  std::uint64_t tag = 0;  // pairs Start/End actions (e.g. nested partitions)
};

// Parameters for a randomized chaos run. All rates are expanded into a
// concrete scripted schedule by `random_chaos`; the window [t_begin, t_end]
// bounds every injected fault, so the system provably quiesces after t_end.
struct ChaosConfig {
  Time t_begin = 0.0;
  Time t_end = 100.0;
  int crash_cycles = 5;            // crash/recover cycles spread over the window
  double crash_downtime_s = 8.0;   // mean downtime per cycle
  int link_flaps = 10;             // per-link down/up events
  double flap_downtime_s = 3.0;    // mean outage per flap
  int loss_bursts = 3;             // burst-loss windows
  double loss_prob = 0.25;         // drop probability inside a burst
  double loss_burst_s = 10.0;      // mean burst duration
  int dup_bursts = 2;              // duplication windows
  double dup_prob = 0.3;
  double dup_burst_s = 8.0;
  int delay_spikes = 2;            // delay-spike windows
  double delay_factor = 8.0;       // per-hop delay multiplier inside a spike
  double delay_spike_s = 6.0;
  int partitions = 1;              // temporary partitions
  double partition_s = 12.0;       // mean partition duration
  double partition_fraction = 0.5; // target size of the cut-off side
  int protected_node = 0;          // never crashed (e.g. the token origin)
};

class FaultSchedule {
 public:
  // --- scripted construction ----------------------------------------------
  FaultSchedule& crash(Time at, int node);
  FaultSchedule& recover(Time at, int node);
  // Crash at `at`, recover after `downtime`.
  FaultSchedule& crash_cycle(Time at, int node, double downtime);
  FaultSchedule& link_down(Time at, int u, int v);
  FaultSchedule& link_up(Time at, int u, int v);
  FaultSchedule& link_flap(Time at, int u, int v, double downtime);
  FaultSchedule& loss_burst(Time at, double duration, double prob);
  FaultSchedule& dup_burst(Time at, double duration, double prob);
  FaultSchedule& delay_spike(Time at, double duration, double factor);
  FaultSchedule& partition(Time at, double duration, double fraction = 0.5);

  // Merges another schedule into this one (schedules compose by union).
  FaultSchedule& merge(const FaultSchedule& other);

  // Expands a ChaosConfig into a concrete scripted schedule, deterministic
  // in (config, seed). Node/link victims are resolved at install time from
  // FaultActions (so one schedule can drive differently sized networks);
  // here victims are chosen as indices via the seed.
  static FaultSchedule random_chaos(const ChaosConfig& config, std::uint64_t seed, int node_count,
                                    const std::vector<std::pair<int, int>>& links);

  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  // Latest action time (0 for an empty schedule): after this instant the
  // schedule injects nothing further and every windowed fault has ended.
  Time quiesce_time() const;

  // Human-readable one-line-per-action dump (reproducing a failing seed).
  std::string describe() const;

 private:
  FaultSchedule& push(FaultAction a);
  std::vector<FaultAction> actions_;
  std::uint64_t next_tag_ = 1;
};

// Schedules every action of a FaultSchedule onto the simulator. Windowed
// knobs (loss/dup/delay) nest: the most recent still-open window wins, and
// closing a window restores the previous one.
class FaultInjector {
 public:
  FaultInjector(Simulator& sim, FaultActions actions);

  // Schedules the whole fault script. May be called more than once to
  // compose schedules at runtime; actions in the past are rejected.
  void install(const FaultSchedule& schedule);

  // --- observability -------------------------------------------------------
  int crashes_injected() const { return crashes_; }
  int recoveries_injected() const { return recoveries_; }
  int link_events_injected() const { return link_events_; }
  int windows_opened() const { return windows_opened_; }
  int partitions_injected() const { return partitions_; }

 private:
  void apply(const FaultAction& a);
  void begin_partition(const FaultAction& a);
  void end_partition(std::uint64_t tag);

  struct Window {
    FaultKind kind;
    std::uint64_t tag;
    double magnitude;
  };

  void open_window(FaultKind kind, std::uint64_t tag, double magnitude);
  void close_window(FaultKind kind, std::uint64_t tag);
  void apply_windows(FaultKind kind);

  Simulator& sim_;
  FaultActions actions_;
  std::vector<Window> windows_;  // open loss/dup/delay windows, oldest first
  // Edges taken down per open partition tag (restored on PartitionEnd).
  std::vector<std::pair<std::uint64_t, std::vector<std::pair<int, int>>>> partition_cuts_;
  int crashes_ = 0;
  int recoveries_ = 0;
  int link_events_ = 0;
  int windows_opened_ = 0;
  int partitions_ = 0;
};

}  // namespace gdvr::sim
