// Reliable control transport: a per-hop ACK/retransmit wrapper around
// NetSim::send with exponential backoff, a retry cap, and duplicate
// suppression.
//
// The paper's evaluation delivers control messages reliably and folds link
// lossiness into the routing metric only; once real message loss is enabled
// (NetSim::set_loss_from_etx or fault-injected loss bursts), lost
// Neighbor-Set Requests/Replies starve the MDT join protocol, which only
// recovers at maintenance-round timescales. This transport restores per-hop
// delivery at retransmission timescales: each physical-hop transfer of an
// opted-in message is acknowledged by the next hop, retransmitted with
// exponential backoff while unacknowledged, and abandoned after a bounded
// number of attempts (the hop may genuinely be gone -- the protocol's own
// soft-state repair then takes over).
//
// Message requirements: the message type must expose a `std::uint64_t
// rel_seq` field (0 = unreliable / unsequenced). Sequence numbers are
// namespaced by sender -- ((from + 1) << 32) | local -- so they stay
// globally unique within one transport instance while every piece of
// transport state is per-node: pending transfers, sequence counters and
// timers live at the sender, duplicate-suppression windows at the receiver
// (one per sender namespace, which also keeps each window's contiguous-
// prefix compaction exact). Under the sharded engine (DESIGN.md §4g) no two
// lanes ever touch the same transport state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "sim/netsim.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {

// Retransmission schedule: exponential backoff from `initial_s` by factor
// `backoff` per attempt, capped at `max_s` (non-template core, see
// reliable.cpp).
class RetransmitBackoff {
 public:
  RetransmitBackoff(double initial_s, double backoff, double max_s);
  // Timeout armed after transmission attempt `attempt` (1-based).
  double delay(int attempt) const;

 private:
  double initial_s_;
  double backoff_;
  double max_s_;
};

// Sliding-window duplicate detector over globally unique sequence numbers.
// Exact while at most `cap` sequences are simultaneously un-compacted; under
// extreme reordering beyond the window, stragglers are conservatively
// reported as duplicates (safe for control traffic: a duplicate-suppressed
// request is simply retransmitted).
class DedupWindow {
 public:
  explicit DedupWindow(std::size_t cap);
  // True if `seq` is fresh (first acceptance), false if seen before.
  bool accept(std::uint64_t seq);
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  std::set<std::uint64_t> seen_;
  std::uint64_t floor_ = 0;  // every seq <= floor_ counts as seen
  std::size_t cap_;
  std::uint64_t suppressed_ = 0;
};

struct ReliableConfig {
  double rto_initial_s = 0.3;  // first retransmit timeout (per-hop delays are <= 0.1 s)
  double rto_backoff = 2.0;
  double rto_max_s = 4.0;
  // Deterministic retransmit jitter: each armed timeout is stretched by a
  // factor in [1, 1 + rto_jitter) derived by hashing (sequence, attempt), so
  // retries that were synchronized by a shared trigger (a loss burst opening,
  // a partition healing) fan out instead of re-colliding every backoff step.
  // Same (send order, attempt) -> same jitter: runs stay bit-reproducible.
  double rto_jitter = 0.1;
  int max_attempts = 6;        // total transmissions per hop before giving up
  std::size_t dedup_window = 1 << 16;
};

struct ReliableStats {
  std::uint64_t sent = 0;             // reliable sends requested
  std::uint64_t retransmissions = 0;  // extra transmissions beyond the first
  std::uint64_t acked = 0;
  std::uint64_t gave_up = 0;          // retry cap exhausted (or sender died)
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
};

template <typename Message>
class ReliableTransport {
 public:
  // `make_ack` builds the ACK message the receiver returns for a sequence
  // (it travels unreliably over the same NetSim).
  using AckFactory = std::function<Message(int from, int to, std::uint64_t seq)>;
  // Invoked when a hop transfer exhausts max_attempts while the sender is
  // still alive: the explicit "this hop is not answering" signal (the
  // protocol layer can evict the next hop or reroute instead of waiting for
  // soft-state timeouts). Give-ups caused by the sender itself dying are not
  // reported -- the sender's protocol state is gone with it.
  using GiveUpHandler = std::function<void(int from, int to, const Message& msg)>;

  ReliableTransport(NetSim<Message>& net, ReliableConfig config, AckFactory make_ack)
      : net_(net),
        config_(config),
        backoff_(config.rto_initial_s, config.rto_backoff, config.rto_max_s),
        senders_(static_cast<std::size_t>(net.size())),
        receivers_(static_cast<std::size_t>(net.size())),
        make_ack_(std::move(make_ack)) {}

  // Sends from -> to with per-hop retransmission. The initial transmission
  // may fail outright (dead node, downed link); the retransmit timer still
  // arms, because transient faults are exactly what the retries bridge.
  // Always returns true: delivery is now a transport-layer concern.
  bool send(int from, int to, Message msg) {
    SenderState& sender = senders_[static_cast<std::size_t>(from)];
    const std::uint64_t seq =
        (static_cast<std::uint64_t>(from) + 1) << 32 | sender.next_seq++;
    msg.rel_seq = seq;
    Pending p;
    p.from = from;
    p.to = to;
    p.from_incarnation = net_.incarnation(from);
    p.msg = std::move(msg);
    auto [it, inserted] = sender.pending.emplace(seq, std::move(p));
    GDVR_ASSERT(inserted);
    ++sender.stats.sent;
    transmit(sender, it->second, seq);
    return true;
  }

  // Receiver side: call for every arriving message with rel_seq != 0. Sends
  // the ACK (even for duplicates -- the original ACK may have been the loss)
  // and returns true if the message is fresh, false if it must be suppressed.
  bool on_receive(int to, int from, std::uint64_t seq) {
    ReceiverState& receiver = receivers_[static_cast<std::size_t>(to)];
    ++receiver.stats.acks_sent;
    (void)net_.send(to, from, make_ack_(to, from, seq));
    auto it = receiver.dedup.find(seq >> 32);
    if (it == receiver.dedup.end())
      it = receiver.dedup.emplace(seq >> 32, DedupWindow(config_.dedup_window)).first;
    const bool fresh = it->second.accept(seq & 0xFFFFFFFFull);
    if (!fresh) ++receiver.stats.duplicates_suppressed;
    return fresh;
  }

  // Sender side: call when an ACK arrives at `at` (the original sender).
  void on_ack(int at, std::uint64_t seq) {
    SenderState& sender = senders_[static_cast<std::size_t>(at)];
    auto it = sender.pending.find(seq);
    if (it == sender.pending.end() || it->second.from != at) return;
    net_.simulator().cancel(it->second.timer);
    sender.pending.erase(it);
    ++sender.stats.acked;
  }

  // Aggregated over all nodes (per-node state keeps lanes independent).
  ReliableStats stats() const {
    ReliableStats total;
    for (const SenderState& s : senders_) {
      total.sent += s.stats.sent;
      total.retransmissions += s.stats.retransmissions;
      total.acked += s.stats.acked;
      total.gave_up += s.stats.gave_up;
    }
    for (const ReceiverState& r : receivers_) {
      total.acks_sent += r.stats.acks_sent;
      total.duplicates_suppressed += r.stats.duplicates_suppressed;
    }
    return total;
  }
  std::size_t in_flight() const {
    std::size_t n = 0;
    for (const SenderState& s : senders_) n += s.pending.size();
    return n;
  }
  void set_give_up_handler(GiveUpHandler handler) { give_up_ = std::move(handler); }

 private:
  struct Pending {
    int from = -1;
    int to = -1;
    std::uint32_t from_incarnation = 0;
    int attempts = 0;
    Message msg;
    Simulator::EventId timer = Simulator::kInvalidEvent;
  };

  struct SenderState {
    std::map<std::uint64_t, Pending> pending;
    std::uint32_t next_seq = 1;
    ReliableStats stats;  // sent/retransmissions/acked/gave_up
  };
  struct ReceiverState {
    // One window per sender namespace (seq >> 32): each sender's local
    // sequences are contiguous, so prefix compaction stays exact.
    std::map<std::uint64_t, DedupWindow> dedup;
    ReliableStats stats;  // acks_sent/duplicates_suppressed
  };

  // Deterministic jitter factor in [1, 1 + rto_jitter) for a given
  // (sequence, attempt) pair (SplitMix64 finalizer as the hash).
  double jitter_factor(std::uint64_t seq, int attempt) const {
    if (config_.rto_jitter <= 0.0) return 1.0;
    std::uint64_t z = seq * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(attempt);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return 1.0 + config_.rto_jitter * (static_cast<double>(z >> 11) * 0x1.0p-53);
  }

  void transmit(SenderState& sender, Pending& p, std::uint64_t seq) {
    ++p.attempts;
    if (p.attempts > 1) ++sender.stats.retransmissions;
    (void)net_.send(p.from, p.to, Message(p.msg));  // may fail; the timer retries
    // The retransmit timer is the sender's own: it lives (and fires) on the
    // sender's lane, and the ACK that cancels it arrives on the same lane.
    p.timer = net_.simulator().schedule_in_node(
        p.from, backoff_.delay(p.attempts) * jitter_factor(seq, p.attempts),
        [this, seq] { on_timeout(seq); });
  }

  void on_timeout(std::uint64_t seq) {
    SenderState& sender = senders_[(seq >> 32) - 1];
    auto it = sender.pending.find(seq);
    if (it == sender.pending.end()) return;
    Pending& p = it->second;
    // The sender died (or died and rejoined) since the send: its protocol
    // state is gone, so the message belongs to a dead incarnation.
    const bool sender_gone =
        !net_.alive(p.from) || net_.incarnation(p.from) != p.from_incarnation;
    if (sender_gone || p.attempts >= config_.max_attempts) {
      // Detach the entry before the handler runs: the handler may re-enter
      // the transport (e.g. resend over another route).
      Pending done = std::move(it->second);
      sender.pending.erase(it);
      ++sender.stats.gave_up;
      if (!sender_gone && give_up_) give_up_(done.from, done.to, done.msg);
      return;
    }
    transmit(sender, p, seq);
  }

  NetSim<Message>& net_;
  ReliableConfig config_;
  RetransmitBackoff backoff_;
  std::vector<SenderState> senders_;
  std::vector<ReceiverState> receivers_;
  AckFactory make_ack_;
  GiveUpHandler give_up_;
};

}  // namespace gdvr::sim
