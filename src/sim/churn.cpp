#include "sim/churn.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gdvr::sim {
namespace {

// Exponential inter-arrival for a Poisson process at `rate_hz`.
double exp_interval(Rng& rng, double rate_hz) {
  double u = rng.uniform();
  while (u <= 1e-300) u = rng.uniform();
  return -std::log(u) / rate_hz;
}

// Picks a uniformly random member of `pool` and removes it (swap-pop, so the
// pool order is permuted deterministically but membership is exact).
int draw(Rng& rng, std::vector<int>& pool) {
  const int i = rng.uniform_index(static_cast<int>(pool.size()));
  const int picked = pool[static_cast<std::size_t>(i)];
  pool[static_cast<std::size_t>(i)] = pool.back();
  pool.pop_back();
  return picked;
}

}  // namespace

FaultSchedule continuous_churn(const ChurnConfig& config, std::uint64_t seed, int node_count,
                               const std::vector<int>& initially_dead) {
  GDVR_ASSERT(node_count > 1);
  Rng rng(seed);
  FaultSchedule s;
  const double span = std::max(config.t_end - config.t_begin, 1e-9);

  // Projected membership as the schedule unfolds. `alive`/`dead` are pools of
  // candidate victims/joiners; the protected node never enters `alive`.
  std::vector<char> is_dead(static_cast<std::size_t>(node_count), 0);
  for (int u : initially_dead)
    if (u >= 0 && u < node_count) is_dead[static_cast<std::size_t>(u)] = 1;
  std::vector<int> alive;
  std::vector<int> dead;
  for (int u = 0; u < node_count; ++u) {
    if (is_dead[static_cast<std::size_t>(u)])
      dead.push_back(u);
    else if (u != config.protected_node)
      alive.push_back(u);
  }
  const int floor_alive = std::max(
      2, static_cast<int>(std::ceil(config.min_alive_fraction * static_cast<double>(node_count))));
  int alive_total = node_count - static_cast<int>(dead.size());

  // --- flash-crowd instants -------------------------------------------------
  // Evenly spaced through the window (with a small jitter) so soak scenarios
  // stress recovery repeatedly rather than stacking all bursts at once. Times
  // are drawn up front so the burst draws below interleave with the Poisson
  // walk in time order: the projected pools then agree with a chronological
  // replay of the schedule at every instant (a victim is always alive when
  // crashed, a joiner always dead when recovered).
  std::vector<Time> flashes;
  for (int i = 0; i < config.flash_crowds; ++i) {
    const double slot = span / static_cast<double>(config.flash_crowds + 1);
    flashes.push_back(config.t_begin + slot * static_cast<double>(i + 1) +
                      rng.uniform(-0.1, 0.1) * slot);
  }
  std::sort(flashes.begin(), flashes.end());
  std::size_t next_flash = 0;
  const auto do_flash = [&](Time at) {
    const int want = static_cast<int>(config.flash_fraction * static_cast<double>(alive_total));
    const int leaves = std::min({want, static_cast<int>(alive.size()),
                                 std::max(alive_total - floor_alive, 0)});
    const int joins = std::min(want, static_cast<int>(dead.size()));
    for (int k = 0; k < leaves; ++k) {
      const int victim = draw(rng, alive);
      dead.push_back(victim);
      --alive_total;
      s.crash(at, victim);
    }
    // Joiners drawn after the leavers, so a flash crowd really swaps
    // population (the same node never leaves and rejoins at one instant).
    for (int k = 0; k < joins; ++k) {
      const int joiner = draw(rng, dead);
      alive.push_back(joiner);
      ++alive_total;
      s.recover(at, joiner);
    }
  };

  // --- Poisson join/leave arrivals, merged with the flash instants ---------
  // The processes are merged by next-event time so the interleaving (and
  // hence the projected pools) is deterministic in the seed.
  double next_leave = config.leave_rate_hz > 0.0
                          ? config.t_begin + exp_interval(rng, config.leave_rate_hz)
                          : config.t_end + 1.0;
  double next_join = config.join_rate_hz > 0.0
                         ? config.t_begin + exp_interval(rng, config.join_rate_hz)
                         : config.t_end + 1.0;
  while (true) {
    const double t = std::min(next_leave, next_join);
    while (next_flash < flashes.size() && flashes[next_flash] <= std::min(t, config.t_end)) {
      do_flash(flashes[next_flash]);
      ++next_flash;
    }
    if (t >= config.t_end) break;
    if (next_leave <= next_join) {
      if (!alive.empty() && alive_total > floor_alive) {
        const int victim = draw(rng, alive);
        dead.push_back(victim);
        --alive_total;
        s.crash(next_leave, victim);
      }
      next_leave += exp_interval(rng, config.leave_rate_hz);
    } else {
      if (!dead.empty()) {
        const int joiner = draw(rng, dead);
        alive.push_back(joiner);
        ++alive_total;
        s.recover(next_join, joiner);
      }
      next_join += exp_interval(rng, config.join_rate_hz);
    }
  }

  // --- partition/heal cycles ------------------------------------------------
  for (int i = 0; i < config.partition_cycles; ++i) {
    const double slot = span / static_cast<double>(config.partition_cycles + 1);
    const double dur = rng.uniform(0.75, 1.25) * config.partition_s;
    const Time at = config.t_begin + slot * static_cast<double>(i + 1) +
                    rng.uniform(-0.1, 0.1) * slot;
    s.partition(std::min(at, config.t_end - dur), dur, config.partition_fraction);
  }
  return s;
}

FaultSchedule flash_crowd(Time at, int leaves, const std::vector<int>& leave_pool,
                          int joins, const std::vector<int>& join_pool, std::uint64_t seed) {
  Rng rng(seed);
  FaultSchedule s;
  std::vector<int> lp = leave_pool;
  std::vector<int> jp = join_pool;
  leaves = std::min(leaves, static_cast<int>(lp.size()));
  joins = std::min(joins, static_cast<int>(jp.size()));
  for (int k = 0; k < leaves; ++k) s.crash(at, draw(rng, lp));
  for (int k = 0; k < joins; ++k) s.recover(at, draw(rng, jp));
  return s;
}

}  // namespace gdvr::sim
