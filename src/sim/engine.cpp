// Sharded conservative-parallel executor for Simulator (DESIGN.md §4g).
//
// Execution alternates between two phases:
//
//  * global phase (main thread): runs every pending global-lane event whose
//    time precedes the earliest node-lane event, one at a time. Fault
//    scripts, watchdogs and harness callbacks mutate cross-node state here,
//    with no node lane in flight.
//
//  * parallel window: all node lanes advance concurrently up to a cap
//        cap = min(t_limit, pred(tn + L), pred(tg))
//    where tn is the earliest node-lane event, tg the earliest global event,
//    L the lookahead (minimum cross-node interaction delay, registered by
//    NetSim) and pred() the next-smaller double. Any cross-lane message
//    created inside the window arrives no earlier than its send time plus L,
//    hence strictly after the cap: no lane can affect another lane within
//    the same window, so lanes share no mutable state and may run on any
//    number of threads.
//
// Cross-lane schedules issued inside a window are buffered in the sending
// lane's outbox and merged into the target lanes at the barrier, iterating
// outboxes in lane order. The merge order -- like the shard count and the
// partition -- is a pure function of the scenario, never of the thread
// count, which is the whole determinism argument: a sharded run is
// bit-identical at GDVR_THREADS=1 and N.
#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace gdvr::sim {

namespace {

// Lane executing on this thread during a parallel window: -1 in the global
// phase (and on every thread of a serial simulator). Drives the lane-local
// now() and the own-lane-only scheduling/cancel rules.
thread_local int g_current_lane = -1;

}  // namespace

SimEngine engine_from_env() {
  if (const char* env = std::getenv("GDVR_SIM_ENGINE")) {
    if (std::strcmp(env, "sharded") == 0) return SimEngine::kSharded;
    GDVR_ASSERT_MSG(std::strcmp(env, "serial") == 0 || env[0] == '\0',
                    "GDVR_SIM_ENGINE must be 'serial' or 'sharded'");
  }
  return SimEngine::kSerial;
}

const char* engine_name(SimEngine e) {
  return e == SimEngine::kSharded ? "sharded" : "serial";
}

struct Simulator::Sharded {
  // A cross-lane schedule buffered until the window barrier.
  struct Pending {
    int lane;
    Time at;
    std::function<void()> fn;
  };

  // Pooled per-source-lane buffer of cross-lane schedules: cleared (capacity
  // kept) at every barrier, so appends stop allocating once the workload's
  // per-window fan-out peaks. Each lane writes only its own counters inside
  // a window -- no races.
  struct Outbox {
    std::vector<Pending> buf;
    std::uint64_t grows = 0;  // reallocations caused by push_back
    std::uint64_t peak = 0;   // largest single-window size
  };

  std::vector<int> shard_of;             // node -> shard (lane = shard + 1)
  std::vector<Lane> lanes;               // node lanes; lanes[i] is lane i+1
  std::vector<Outbox> outbox;            // per source node lane
  std::vector<obs::TraceSink> sinks;     // per-lane trace buffers
  WorkerPool pool;

  Sharded(std::vector<int> so, int shards, int threads)
      : shard_of(std::move(so)),
        lanes(static_cast<std::size_t>(shards)),
        outbox(static_cast<std::size_t>(shards)),
        sinks(static_cast<std::size_t>(shards)),
        pool(threads) {
    // Warm start: one cache-page worth of slots per lane keeps typical
    // control-plane scenarios from logging the first few doublings as
    // growth in every run.
    for (Outbox& b : outbox) b.buf.reserve(64);
  }
};

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::configure_sharding(std::vector<int> shard_of, int threads) {
  GDVR_ASSERT_MSG(!sharded_, "configure_sharding called twice");
  GDVR_ASSERT_MSG(serial_.now == 0.0, "configure_sharding must precede run_until");
  int shards = 0;
  for (int s : shard_of) {
    GDVR_ASSERT_MSG(s >= 0, "negative shard index");
    shards = std::max(shards, s + 1);
  }
  GDVR_ASSERT_MSG(shards >= 1, "empty shard partition");
  GDVR_ASSERT_MSG(shards < (1 << 16) - 1, "too many shards for the lane field");
  sharded_ = std::make_unique<Sharded>(std::move(shard_of), shards,
                                       resolve_thread_count(threads));
}

int Simulator::shard_count() const {
  return sharded_ ? static_cast<int>(sharded_->lanes.size()) : 1;
}

int Simulator::shard_of_node(int node) const {
  if (!sharded_) return 0;
  GDVR_ASSERT(node >= 0 &&
              node < static_cast<int>(sharded_->shard_of.size()));
  return sharded_->shard_of[static_cast<std::size_t>(node)];
}

int Simulator::node_lane(int node) const { return shard_of_node(node) + 1; }

Time Simulator::sharded_now() const {
  const int cl = g_current_lane;
  if (cl >= 1) return sharded_->lanes[static_cast<std::size_t>(cl - 1)].now;
  return serial_.now;
}

double Simulator::lookahead() const {
  double min_delay = kInfTime;
  for (const auto& provider : lookahead_)
    min_delay = std::min(min_delay, provider());
  return min_delay;
}

Simulator::EventId Simulator::sharded_schedule(int lane, Time at,
                                               std::function<void()> fn) {
  Sharded& sh = *sharded_;
  const int cl = g_current_lane;
  if (cl < 0) {
    // Global phase: no lane is in flight, direct push anywhere is safe.
    GDVR_ASSERT_MSG(at >= serial_.now, "cannot schedule in the past");
    Lane& ln = lane == kGlobalLane ? serial_
                                   : sh.lanes[static_cast<std::size_t>(lane - 1)];
    return lane_push(ln, lane, at, std::move(fn));
  }
  if (lane == cl) {
    // Own lane: runs later in this very window if at <= cap.
    Lane& ln = sh.lanes[static_cast<std::size_t>(cl - 1)];
    GDVR_ASSERT_MSG(at >= ln.now, "cannot schedule in the past");
    return lane_push(ln, lane, at, std::move(fn));
  }
  // Cross-lane from inside a window: buffer until the barrier. These are
  // fire-and-forget (message deliveries); the id cannot be handed out before
  // the merge, so they are not cancelable.
  Sharded::Outbox& box = sh.outbox[static_cast<std::size_t>(cl - 1)];
  if (box.buf.size() == box.buf.capacity()) ++box.grows;
  box.buf.push_back({lane, at, std::move(fn)});
  box.peak = std::max<std::uint64_t>(box.peak, box.buf.size());
  return kInvalidEvent;
}

void Simulator::sharded_cancel(EventId id) {
  const int lane = lane_of(id);
  const int cl = g_current_lane;
  GDVR_ASSERT_MSG(cl < 0 || cl == lane,
                  "cross-lane cancel inside a parallel window");
  Lane& ln = lane == kGlobalLane
                 ? serial_
                 : sharded_->lanes[static_cast<std::size_t>(lane - 1)];
  lane_cancel(ln, id);
}

void Simulator::sharded_run_until(Time t) {
  GDVR_ASSERT_MSG(g_current_lane < 0, "run_until re-entered from an event");
  Sharded& sh = *sharded_;
  const int nlanes = static_cast<int>(sh.lanes.size());
  // The caller's sink (if any) receives global-phase events directly and
  // absorbs the per-lane buffers at each barrier.
  obs::TraceSink* main_sink = obs::trace_sink();

  for (;;) {
    const Time tg = lane_peek(serial_);
    Time tn = kInfTime;
    for (Lane& ln : sh.lanes) tn = std::min(tn, lane_peek(ln));

    if (tg <= t && tg <= tn) {  // global-first on exact-time ties
      serial_step();
      continue;
    }
    if (tn > t) break;

    const double look = lookahead();
    GDVR_ASSERT_MSG(look > 0.0,
                    "sharded engine requires a positive lookahead "
                    "(is a NetSim attached with delay_min > 0?)");
    Time cap = t;
    if (tn + look < kInfTime)
      cap = std::min(cap, std::nextafter(tn + look, -kInfTime));
    if (tg < kInfTime) cap = std::min(cap, std::nextafter(tg, -kInfTime));
    GDVR_ASSERT(cap >= tn);  // at least one event per window: progress

    sh.pool.parallel_for(nlanes, [&](int i) {
      Lane& ln = sh.lanes[static_cast<std::size_t>(i)];
      g_current_lane = i + 1;
      if (main_sink) {
        obs::TraceSink& sink = sh.sinks[static_cast<std::size_t>(i)];
        sink.set_trace_control(main_sink->trace_control());
        const obs::ScopedTrace scoped(sink);
        run_lane(ln, cap);
      } else {
        run_lane(ln, cap);
      }
      g_current_lane = -1;
    });

    // Barrier: merge outboxes and trace buffers in lane order. Both merges
    // depend only on the partition and the scenario, not the thread count.
    for (int i = 0; i < nlanes; ++i) {
      auto& box = sh.outbox[static_cast<std::size_t>(i)].buf;
      for (Sharded::Pending& p : box) {
        if (p.lane == kGlobalLane) {
          // No lookahead guarantee toward the global lane: run it as soon
          // as causally possible, i.e. strictly after this window.
          const Time at = std::max(p.at, std::nextafter(cap, kInfTime));
          lane_push(serial_, kGlobalLane, at, std::move(p.fn));
        } else {
          GDVR_ASSERT_MSG(p.at > cap, "cross-lane message inside the window");
          lane_push(sh.lanes[static_cast<std::size_t>(p.lane - 1)], p.lane,
                    p.at, std::move(p.fn));
        }
      }
      box.clear();
    }
    if (main_sink)
      for (int i = 0; i < nlanes; ++i)
        main_sink->absorb(sh.sinks[static_cast<std::size_t>(i)]);
  }

  serial_.now = t;
  for (Lane& ln : sh.lanes) ln.now = t;
}

void Simulator::run_lane(Lane& ln, Time cap) {
  while (lane_peek(ln) <= cap) {
    const EventHeap::Entry e = ln.queue.top();
    ln.queue.pop();
    const std::uint32_t slot = slot_of(e.id);
    Slot& s = ln.slots[slot];
    ln.now = e.at;
    auto fn = std::move(s.fn);
    lane_release(ln, slot);
    fn();
  }
  ln.now = cap;
}

Simulator::ShardedStats Simulator::sharded_stats() const {
  ShardedStats s;
  if (!sharded_) return s;
  for (const Sharded::Outbox& b : sharded_->outbox) {
    s.outbox_grows += b.grows;
    s.outbox_peak = std::max(s.outbox_peak, b.peak);
  }
  return s;
}

std::size_t Simulator::sharded_live() const {
  std::size_t n = serial_.live;
  for (const Lane& ln : sharded_->lanes) n += ln.live;
  return n;
}

std::size_t Simulator::slot_capacity() const {
  std::size_t n = serial_.slots.size();
  if (sharded_)
    for (const Lane& ln : sharded_->lanes) n += ln.slots.size();
  return n;
}

}  // namespace gdvr::sim
