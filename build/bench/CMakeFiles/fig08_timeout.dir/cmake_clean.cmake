file(REMOVE_RECURSE
  "CMakeFiles/fig08_timeout.dir/fig08_timeout.cpp.o"
  "CMakeFiles/fig08_timeout.dir/fig08_timeout.cpp.o.d"
  "fig08_timeout"
  "fig08_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
