# Empty compiler generated dependencies file for fig08_timeout.
# This may be replaced when dependencies are built.
