# Empty dependencies file for fig09_pca.
# This may be replaced when dependencies are built.
