file(REMOVE_RECURSE
  "CMakeFiles/fig09_pca.dir/fig09_pca.cpp.o"
  "CMakeFiles/fig09_pca.dir/fig09_pca.cpp.o.d"
  "fig09_pca"
  "fig09_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
