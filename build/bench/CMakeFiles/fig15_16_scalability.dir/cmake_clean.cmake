file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_scalability.dir/fig15_16_scalability.cpp.o"
  "CMakeFiles/fig15_16_scalability.dir/fig15_16_scalability.cpp.o.d"
  "fig15_16_scalability"
  "fig15_16_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
