file(REMOVE_RECURSE
  "CMakeFiles/ablation_location_error.dir/ablation_location_error.cpp.o"
  "CMakeFiles/ablation_location_error.dir/ablation_location_error.cpp.o.d"
  "ablation_location_error"
  "ablation_location_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_location_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
