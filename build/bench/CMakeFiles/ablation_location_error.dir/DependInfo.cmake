
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_location_error.cpp" "bench/CMakeFiles/ablation_location_error.dir/ablation_location_error.cpp.o" "gcc" "bench/CMakeFiles/ablation_location_error.dir/ablation_location_error.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/gdvr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gdvr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/gdvr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/gdvr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/vpod/CMakeFiles/gdvr_vpod.dir/DependInfo.cmake"
  "/root/repo/build/src/mdt/CMakeFiles/gdvr_mdt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gdvr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/vivaldi/CMakeFiles/gdvr_vivaldi.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gdvr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
