# Empty compiler generated dependencies file for ablation_location_error.
# This may be replaced when dependencies are built.
