file(REMOVE_RECURSE
  "CMakeFiles/ablation_dv_vs_gdv.dir/ablation_dv_vs_gdv.cpp.o"
  "CMakeFiles/ablation_dv_vs_gdv.dir/ablation_dv_vs_gdv.cpp.o.d"
  "ablation_dv_vs_gdv"
  "ablation_dv_vs_gdv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dv_vs_gdv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
