# Empty dependencies file for ablation_dv_vs_gdv.
# This may be replaced when dependencies are built.
