# Empty dependencies file for ablation_control_loss.
# This may be replaced when dependencies are built.
