file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_loss.dir/ablation_control_loss.cpp.o"
  "CMakeFiles/ablation_control_loss.dir/ablation_control_loss.cpp.o.d"
  "ablation_control_loss"
  "ablation_control_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
