# Empty compiler generated dependencies file for fig17_churn.
# This may be replaced when dependencies are built.
