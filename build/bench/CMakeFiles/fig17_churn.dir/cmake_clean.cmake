file(REMOVE_RECURSE
  "CMakeFiles/fig17_churn.dir/fig17_churn.cpp.o"
  "CMakeFiles/fig17_churn.dir/fig17_churn.cpp.o.d"
  "fig17_churn"
  "fig17_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
