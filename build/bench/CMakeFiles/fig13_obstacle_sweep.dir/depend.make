# Empty dependencies file for fig13_obstacle_sweep.
# This may be replaced when dependencies are built.
