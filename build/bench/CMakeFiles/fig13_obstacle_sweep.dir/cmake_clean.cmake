file(REMOVE_RECURSE
  "CMakeFiles/fig13_obstacle_sweep.dir/fig13_obstacle_sweep.cpp.o"
  "CMakeFiles/fig13_obstacle_sweep.dir/fig13_obstacle_sweep.cpp.o.d"
  "fig13_obstacle_sweep"
  "fig13_obstacle_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_obstacle_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
