file(REMOVE_RECURSE
  "CMakeFiles/fig14_costs.dir/fig14_costs.cpp.o"
  "CMakeFiles/fig14_costs.dir/fig14_costs.cpp.o.d"
  "fig14_costs"
  "fig14_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
