# Empty dependencies file for fig14_costs.
# This may be replaced when dependencies are built.
