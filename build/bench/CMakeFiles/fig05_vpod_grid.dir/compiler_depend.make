# Empty compiler generated dependencies file for fig05_vpod_grid.
# This may be replaced when dependencies are built.
