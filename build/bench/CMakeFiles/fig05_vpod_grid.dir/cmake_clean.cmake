file(REMOVE_RECURSE
  "CMakeFiles/fig05_vpod_grid.dir/fig05_vpod_grid.cpp.o"
  "CMakeFiles/fig05_vpod_grid.dir/fig05_vpod_grid.cpp.o.d"
  "fig05_vpod_grid"
  "fig05_vpod_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_vpod_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
