file(REMOVE_RECURSE
  "CMakeFiles/fig02_vivaldi_grid.dir/fig02_vivaldi_grid.cpp.o"
  "CMakeFiles/fig02_vivaldi_grid.dir/fig02_vivaldi_grid.cpp.o.d"
  "fig02_vivaldi_grid"
  "fig02_vivaldi_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_vivaldi_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
