# Empty dependencies file for fig02_vivaldi_grid.
# This may be replaced when dependencies are built.
