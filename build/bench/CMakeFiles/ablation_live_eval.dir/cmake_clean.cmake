file(REMOVE_RECURSE
  "CMakeFiles/ablation_live_eval.dir/ablation_live_eval.cpp.o"
  "CMakeFiles/ablation_live_eval.dir/ablation_live_eval.cpp.o.d"
  "ablation_live_eval"
  "ablation_live_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_live_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
