# Empty dependencies file for ablation_live_eval.
# This may be replaced when dependencies are built.
