file(REMOVE_RECURSE
  "CMakeFiles/fig10_dimension.dir/fig10_dimension.cpp.o"
  "CMakeFiles/fig10_dimension.dir/fig10_dimension.cpp.o.d"
  "fig10_dimension"
  "fig10_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
