# Empty dependencies file for fig10_dimension.
# This may be replaced when dependencies are built.
