# Empty compiler generated dependencies file for fig03_graphs.
# This may be replaced when dependencies are built.
