file(REMOVE_RECURSE
  "CMakeFiles/fig03_graphs.dir/fig03_graphs.cpp.o"
  "CMakeFiles/fig03_graphs.dir/fig03_graphs.cpp.o.d"
  "fig03_graphs"
  "fig03_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
