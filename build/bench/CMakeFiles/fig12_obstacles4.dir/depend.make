# Empty dependencies file for fig12_obstacles4.
# This may be replaced when dependencies are built.
