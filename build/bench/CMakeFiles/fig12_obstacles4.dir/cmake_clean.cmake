file(REMOVE_RECURSE
  "CMakeFiles/fig12_obstacles4.dir/fig12_obstacles4.cpp.o"
  "CMakeFiles/fig12_obstacles4.dir/fig12_obstacles4.cpp.o.d"
  "fig12_obstacles4"
  "fig12_obstacles4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_obstacles4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
