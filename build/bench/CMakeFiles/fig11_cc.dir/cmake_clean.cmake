file(REMOVE_RECURSE
  "CMakeFiles/fig11_cc.dir/fig11_cc.cpp.o"
  "CMakeFiles/fig11_cc.dir/fig11_cc.cpp.o.d"
  "fig11_cc"
  "fig11_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
