# Empty dependencies file for fig11_cc.
# This may be replaced when dependencies are built.
