file(REMOVE_RECURSE
  "libgdvr_vivaldi.a"
)
