file(REMOVE_RECURSE
  "CMakeFiles/gdvr_vivaldi.dir/vivaldi.cpp.o"
  "CMakeFiles/gdvr_vivaldi.dir/vivaldi.cpp.o.d"
  "libgdvr_vivaldi.a"
  "libgdvr_vivaldi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_vivaldi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
