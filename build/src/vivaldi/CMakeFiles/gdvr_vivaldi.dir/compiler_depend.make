# Empty compiler generated dependencies file for gdvr_vivaldi.
# This may be replaced when dependencies are built.
