# Empty dependencies file for gdvr_mdt.
# This may be replaced when dependencies are built.
