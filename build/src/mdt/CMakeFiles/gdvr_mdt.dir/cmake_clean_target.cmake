file(REMOVE_RECURSE
  "libgdvr_mdt.a"
)
