file(REMOVE_RECURSE
  "CMakeFiles/gdvr_mdt.dir/overlay.cpp.o"
  "CMakeFiles/gdvr_mdt.dir/overlay.cpp.o.d"
  "libgdvr_mdt.a"
  "libgdvr_mdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_mdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
