
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/distance_vector.cpp" "src/routing/CMakeFiles/gdvr_routing.dir/distance_vector.cpp.o" "gcc" "src/routing/CMakeFiles/gdvr_routing.dir/distance_vector.cpp.o.d"
  "/root/repo/src/routing/mdt_view.cpp" "src/routing/CMakeFiles/gdvr_routing.dir/mdt_view.cpp.o" "gcc" "src/routing/CMakeFiles/gdvr_routing.dir/mdt_view.cpp.o.d"
  "/root/repo/src/routing/planar.cpp" "src/routing/CMakeFiles/gdvr_routing.dir/planar.cpp.o" "gcc" "src/routing/CMakeFiles/gdvr_routing.dir/planar.cpp.o.d"
  "/root/repo/src/routing/routers.cpp" "src/routing/CMakeFiles/gdvr_routing.dir/routers.cpp.o" "gcc" "src/routing/CMakeFiles/gdvr_routing.dir/routers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdt/CMakeFiles/gdvr_mdt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gdvr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gdvr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
