file(REMOVE_RECURSE
  "libgdvr_routing.a"
)
