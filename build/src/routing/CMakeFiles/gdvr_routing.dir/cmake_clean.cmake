file(REMOVE_RECURSE
  "CMakeFiles/gdvr_routing.dir/distance_vector.cpp.o"
  "CMakeFiles/gdvr_routing.dir/distance_vector.cpp.o.d"
  "CMakeFiles/gdvr_routing.dir/mdt_view.cpp.o"
  "CMakeFiles/gdvr_routing.dir/mdt_view.cpp.o.d"
  "CMakeFiles/gdvr_routing.dir/planar.cpp.o"
  "CMakeFiles/gdvr_routing.dir/planar.cpp.o.d"
  "CMakeFiles/gdvr_routing.dir/routers.cpp.o"
  "CMakeFiles/gdvr_routing.dir/routers.cpp.o.d"
  "libgdvr_routing.a"
  "libgdvr_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
