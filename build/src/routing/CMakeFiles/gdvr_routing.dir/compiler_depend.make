# Empty compiler generated dependencies file for gdvr_routing.
# This may be replaced when dependencies are built.
