file(REMOVE_RECURSE
  "CMakeFiles/gdvr_vpod.dir/live_gdv.cpp.o"
  "CMakeFiles/gdvr_vpod.dir/live_gdv.cpp.o.d"
  "CMakeFiles/gdvr_vpod.dir/vpod.cpp.o"
  "CMakeFiles/gdvr_vpod.dir/vpod.cpp.o.d"
  "libgdvr_vpod.a"
  "libgdvr_vpod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_vpod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
