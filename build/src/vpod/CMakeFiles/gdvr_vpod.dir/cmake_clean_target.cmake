file(REMOVE_RECURSE
  "libgdvr_vpod.a"
)
