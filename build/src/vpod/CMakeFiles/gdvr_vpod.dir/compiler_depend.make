# Empty compiler generated dependencies file for gdvr_vpod.
# This may be replaced when dependencies are built.
