
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/brute_force.cpp" "src/geom/CMakeFiles/gdvr_geom.dir/brute_force.cpp.o" "gcc" "src/geom/CMakeFiles/gdvr_geom.dir/brute_force.cpp.o.d"
  "/root/repo/src/geom/delaunay.cpp" "src/geom/CMakeFiles/gdvr_geom.dir/delaunay.cpp.o" "gcc" "src/geom/CMakeFiles/gdvr_geom.dir/delaunay.cpp.o.d"
  "/root/repo/src/geom/predicates.cpp" "src/geom/CMakeFiles/gdvr_geom.dir/predicates.cpp.o" "gcc" "src/geom/CMakeFiles/gdvr_geom.dir/predicates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
