file(REMOVE_RECURSE
  "CMakeFiles/gdvr_geom.dir/brute_force.cpp.o"
  "CMakeFiles/gdvr_geom.dir/brute_force.cpp.o.d"
  "CMakeFiles/gdvr_geom.dir/delaunay.cpp.o"
  "CMakeFiles/gdvr_geom.dir/delaunay.cpp.o.d"
  "CMakeFiles/gdvr_geom.dir/predicates.cpp.o"
  "CMakeFiles/gdvr_geom.dir/predicates.cpp.o.d"
  "libgdvr_geom.a"
  "libgdvr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
