file(REMOVE_RECURSE
  "libgdvr_geom.a"
)
