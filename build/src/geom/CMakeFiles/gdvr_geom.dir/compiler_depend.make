# Empty compiler generated dependencies file for gdvr_geom.
# This may be replaced when dependencies are built.
