# Empty dependencies file for gdvr_radio.
# This may be replaced when dependencies are built.
