file(REMOVE_RECURSE
  "libgdvr_radio.a"
)
