file(REMOVE_RECURSE
  "CMakeFiles/gdvr_radio.dir/topology.cpp.o"
  "CMakeFiles/gdvr_radio.dir/topology.cpp.o.d"
  "libgdvr_radio.a"
  "libgdvr_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
