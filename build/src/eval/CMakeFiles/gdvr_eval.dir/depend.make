# Empty dependencies file for gdvr_eval.
# This may be replaced when dependencies are built.
