file(REMOVE_RECURSE
  "libgdvr_eval.a"
)
