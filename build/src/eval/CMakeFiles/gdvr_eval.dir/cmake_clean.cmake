file(REMOVE_RECURSE
  "CMakeFiles/gdvr_eval.dir/protocol_runner.cpp.o"
  "CMakeFiles/gdvr_eval.dir/protocol_runner.cpp.o.d"
  "CMakeFiles/gdvr_eval.dir/routing_eval.cpp.o"
  "CMakeFiles/gdvr_eval.dir/routing_eval.cpp.o.d"
  "libgdvr_eval.a"
  "libgdvr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
