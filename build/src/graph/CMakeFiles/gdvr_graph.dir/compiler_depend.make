# Empty compiler generated dependencies file for gdvr_graph.
# This may be replaced when dependencies are built.
