file(REMOVE_RECURSE
  "libgdvr_graph.a"
)
