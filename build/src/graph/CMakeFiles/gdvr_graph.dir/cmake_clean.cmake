file(REMOVE_RECURSE
  "CMakeFiles/gdvr_graph.dir/graph.cpp.o"
  "CMakeFiles/gdvr_graph.dir/graph.cpp.o.d"
  "libgdvr_graph.a"
  "libgdvr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
