file(REMOVE_RECURSE
  "libgdvr_analysis.a"
)
