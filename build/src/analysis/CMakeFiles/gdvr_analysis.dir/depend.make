# Empty dependencies file for gdvr_analysis.
# This may be replaced when dependencies are built.
