file(REMOVE_RECURSE
  "CMakeFiles/gdvr_analysis.dir/embedding.cpp.o"
  "CMakeFiles/gdvr_analysis.dir/embedding.cpp.o.d"
  "CMakeFiles/gdvr_analysis.dir/svd.cpp.o"
  "CMakeFiles/gdvr_analysis.dir/svd.cpp.o.d"
  "libgdvr_analysis.a"
  "libgdvr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
