file(REMOVE_RECURSE
  "CMakeFiles/gdvr_common.dir/log.cpp.o"
  "CMakeFiles/gdvr_common.dir/log.cpp.o.d"
  "CMakeFiles/gdvr_common.dir/vec.cpp.o"
  "CMakeFiles/gdvr_common.dir/vec.cpp.o.d"
  "libgdvr_common.a"
  "libgdvr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdvr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
