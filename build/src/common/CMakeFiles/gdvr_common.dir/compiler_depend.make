# Empty compiler generated dependencies file for gdvr_common.
# This may be replaced when dependencies are built.
