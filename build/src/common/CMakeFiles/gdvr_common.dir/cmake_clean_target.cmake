file(REMOVE_RECURSE
  "libgdvr_common.a"
)
