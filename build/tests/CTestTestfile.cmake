# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/radio_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/mdt_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/vpod_test[1]_include.cmake")
include("/root/repo/build/tests/vivaldi_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_internals_test[1]_include.cmake")
include("/root/repo/build/tests/dv_test[1]_include.cmake")
include("/root/repo/build/tests/mdt_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/live_gdv_test[1]_include.cmake")
