file(REMOVE_RECURSE
  "CMakeFiles/protocol_internals_test.dir/protocol_internals_test.cpp.o"
  "CMakeFiles/protocol_internals_test.dir/protocol_internals_test.cpp.o.d"
  "protocol_internals_test"
  "protocol_internals_test.pdb"
  "protocol_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
