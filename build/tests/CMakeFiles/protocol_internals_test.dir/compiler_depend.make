# Empty compiler generated dependencies file for protocol_internals_test.
# This may be replaced when dependencies are built.
