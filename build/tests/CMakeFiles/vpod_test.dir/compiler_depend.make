# Empty compiler generated dependencies file for vpod_test.
# This may be replaced when dependencies are built.
