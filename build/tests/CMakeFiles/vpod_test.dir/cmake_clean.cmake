file(REMOVE_RECURSE
  "CMakeFiles/vpod_test.dir/vpod_test.cpp.o"
  "CMakeFiles/vpod_test.dir/vpod_test.cpp.o.d"
  "vpod_test"
  "vpod_test.pdb"
  "vpod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
