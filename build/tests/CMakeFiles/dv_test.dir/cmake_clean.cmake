file(REMOVE_RECURSE
  "CMakeFiles/dv_test.dir/dv_test.cpp.o"
  "CMakeFiles/dv_test.dir/dv_test.cpp.o.d"
  "dv_test"
  "dv_test.pdb"
  "dv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
