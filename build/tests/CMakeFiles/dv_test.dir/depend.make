# Empty dependencies file for dv_test.
# This may be replaced when dependencies are built.
