# Empty dependencies file for vivaldi_test.
# This may be replaced when dependencies are built.
