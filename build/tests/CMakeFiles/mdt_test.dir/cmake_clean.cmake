file(REMOVE_RECURSE
  "CMakeFiles/mdt_test.dir/mdt_test.cpp.o"
  "CMakeFiles/mdt_test.dir/mdt_test.cpp.o.d"
  "mdt_test"
  "mdt_test.pdb"
  "mdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
