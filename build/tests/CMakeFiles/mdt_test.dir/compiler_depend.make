# Empty compiler generated dependencies file for mdt_test.
# This may be replaced when dependencies are built.
