file(REMOVE_RECURSE
  "CMakeFiles/live_gdv_test.dir/live_gdv_test.cpp.o"
  "CMakeFiles/live_gdv_test.dir/live_gdv_test.cpp.o.d"
  "live_gdv_test"
  "live_gdv_test.pdb"
  "live_gdv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_gdv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
