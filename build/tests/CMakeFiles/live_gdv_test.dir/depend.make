# Empty dependencies file for live_gdv_test.
# This may be replaced when dependencies are built.
