# Empty dependencies file for mdt_fuzz_test.
# This may be replaced when dependencies are built.
