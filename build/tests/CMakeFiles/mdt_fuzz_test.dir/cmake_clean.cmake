file(REMOVE_RECURSE
  "CMakeFiles/mdt_fuzz_test.dir/mdt_fuzz_test.cpp.o"
  "CMakeFiles/mdt_fuzz_test.dir/mdt_fuzz_test.cpp.o.d"
  "mdt_fuzz_test"
  "mdt_fuzz_test.pdb"
  "mdt_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdt_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
