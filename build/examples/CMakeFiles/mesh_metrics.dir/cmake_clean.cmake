file(REMOVE_RECURSE
  "CMakeFiles/mesh_metrics.dir/mesh_metrics.cpp.o"
  "CMakeFiles/mesh_metrics.dir/mesh_metrics.cpp.o.d"
  "mesh_metrics"
  "mesh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
