# Empty dependencies file for churn_rescue.
# This may be replaced when dependencies are built.
