file(REMOVE_RECURSE
  "CMakeFiles/churn_rescue.dir/churn_rescue.cpp.o"
  "CMakeFiles/churn_rescue.dir/churn_rescue.cpp.o.d"
  "churn_rescue"
  "churn_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
