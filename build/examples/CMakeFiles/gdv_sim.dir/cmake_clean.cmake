file(REMOVE_RECURSE
  "CMakeFiles/gdv_sim.dir/gdv_sim.cpp.o"
  "CMakeFiles/gdv_sim.dir/gdv_sim.cpp.o.d"
  "gdv_sim"
  "gdv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
