# Empty dependencies file for gdv_sim.
# This may be replaced when dependencies are built.
