// Example: surviving mass node failure (paper Section IV-H).
//
// A disaster-response deployment: 200 relay nodes are air-dropped, the
// network self-organizes with VPoD, and packets flow. Then a storm knocks
// out 60% of the nodes and replacements are deployed into the same field.
// The example tracks GDV's delivery rate and path quality through the
// failure and the recovery, period by period.
//
//   $ ./build/examples/churn_rescue
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"

using namespace gdvr;

int main() {
  // A 320-site universe: 200 initial nodes plus 120 replacement sites that
  // stay dark until the storm. Density tuned so ~200 alive nodes see the
  // usual average degree of 14.5.
  radio::TopologyConfig tc;
  tc.n = 320;
  tc.seed = 2024;
  tc.width_m = 100.0;
  tc.height_m = 100.0;
  tc.target_avg_degree = 14.5 * 320.0 / 200.0;
  const radio::Topology topo = radio::make_random_topology(tc);

  std::vector<int> latent;
  for (int u = 200; u < topo.size(); ++u) latent.push_back(u);

  vpod::VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/true, vc, {}, 7, latent);
  std::printf("deployed %d nodes (plus %d replacement sites in reserve)\n\n", 200,
              static_cast<int>(latent.size()));

  const int storm_period = 6;
  Rng rng(13);
  bool stormed = false;
  std::printf("%8s %10s %14s %12s\n", "period", "alive", "tx/delivery", "delivery");
  for (int k = 0; k <= 14; ++k) {
    runner.run_to_period(k);
    if (!stormed && k == storm_period) {
      stormed = true;
      std::vector<int> victims;
      while (victims.size() < 120) {
        const int u = 1 + rng.uniform_index(199);
        if (std::find(victims.begin(), victims.end(), u) == victims.end()) victims.push_back(u);
      }
      for (int v : victims) runner.protocol().fail_node(v);
      for (int u : latent) runner.protocol().join_node(u);
      std::printf("%8s --- storm: %zu nodes destroyed, %zu replacements deployed ---\n", "",
                  victims.size(), latent.size());
    }
    const auto view = runner.snapshot();
    int alive = 0;
    for (int u = 0; u < view.size(); ++u)
      if (view.is_alive(u)) ++alive;
    eval::EvalOptions opts;
    opts.use_etx = true;
    opts.pair_samples = 300;
    opts.seed = 100 + static_cast<std::uint64_t>(k);
    opts.eligible = eval::largest_alive_component(view);
    const auto stats = eval::eval_gdv(view, topo, opts);
    std::printf("%8d %10d %14.2f %11.0f%%\n", k, alive, stats.transmissions,
                100.0 * stats.success_rate);
  }
  std::printf("\nexpected shape: delivery dips right after the storm, then VPoD's\n"
              "maintenance re-integrates the replacements within ~2-3 periods.\n");
  return 0;
}
