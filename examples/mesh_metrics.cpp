// Example: one network, two routing metrics.
//
// The same wireless mesh is embedded twice by VPoD -- once with hop count as
// the routing metric, once with ETX -- demonstrating the paper's core claim:
// GDV optimizes end-to-end cost for *any additive metric*, because the
// virtual space itself is built from that metric. Each converged embedding
// routes the same sampled pairs; every chosen path is then accounted under
// BOTH metrics (hops actually walked, expected transmissions actually
// spent), so the trade-off is visible directly.
//
//   $ ./build/examples/mesh_metrics
#include <cstdio>

#include "common/rng.hpp"
#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"

using namespace gdvr;

int main() {
  radio::TopologyConfig tc;
  tc.n = 200;
  tc.seed = 31;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  std::printf("mesh: %d nodes, avg degree %.1f\n\n", topo.size(), topo.etx.average_degree());

  // Optimal references for the sampled pairs.
  Rng pair_rng(3);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 500; ++i) {
    const int s = pair_rng.uniform_index(topo.size());
    int t = pair_rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    pairs.emplace_back(s, t);
  }

  std::printf("%-26s %12s %16s %10s\n", "embedding metric", "mean hops", "mean ETX spent",
              "delivery");
  for (bool use_etx : {false, true}) {
    vpod::VpodConfig vc;
    vc.dim = 3;
    eval::VpodRunner runner(topo, use_etx, vc);
    runner.run_to_period(12);
    const routing::MdtView view = runner.snapshot();

    double hops = 0.0, etx = 0.0;
    int delivered = 0;
    for (const auto& [s, t] : pairs) {
      const auto r = routing::route_gdv(view, s, t);
      if (!r.success) continue;
      ++delivered;
      hops += r.transmissions;
      for (std::size_t i = 0; i + 1 < r.path.size(); ++i)
        etx += topo.etx.link_cost(r.path[i], r.path[i + 1]);
    }
    if (delivered > 0) {
      hops /= delivered;
      etx /= delivered;
    }
    std::printf("%-26s %12.2f %16.2f %9.0f%%\n", use_etx ? "ETX" : "hop count", hops, etx,
                100.0 * delivered / pairs.size());
  }

  // Optimal bounds under each metric for context.
  double opt_hops = 0.0, opt_etx = 0.0;
  int count = 0;
  std::map<int, std::vector<int>> hop_cache;
  std::map<int, std::vector<double>> etx_cache;
  for (const auto& [s, t] : pairs) {
    if (!hop_cache.count(s)) hop_cache[s] = graph::bfs_hops(topo.hops, s);
    if (!etx_cache.count(s)) etx_cache[s] = graph::dijkstra(topo.etx, s).dist;
    if (hop_cache[s][static_cast<std::size_t>(t)] < 0) continue;
    opt_hops += hop_cache[s][static_cast<std::size_t>(t)];
    opt_etx += etx_cache[s][static_cast<std::size_t>(t)];
    ++count;
  }
  std::printf("%-26s %12.2f %16.2f\n", "optimal (per metric)", opt_hops / count,
              opt_etx / count);
  std::printf("\nexpected shape: the hop embedding walks fewer hops but spends more\n"
              "expected transmissions; the ETX embedding spends extra hops to ride\n"
              "reliable links and lands near the ETX optimum.\n");
  return 0;
}
