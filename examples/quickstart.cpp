// Quickstart: build a 200-node lossy wireless network, run VPoD to embed
// routing costs into a 3D virtual space, and route packets with GDV.
//
//   $ ./build/examples/quickstart [n_nodes] [periods]
//
// Prints the embedding quality and routing performance after each block of
// adjustment periods, then compares GDV against the MDT-greedy and NADV
// baselines (which are given *actual* node locations) and against optimal
// shortest-path routing.
#include <cstdio>
#include <cstdlib>

#include "analysis/embedding.hpp"
#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"

using namespace gdvr;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 200;
  const int periods = argc > 2 ? std::atoi(argv[2]) : 15;

  // 1. Topology: n nodes in a 100m x 100m field, lossy links (ETX = 1/PRR),
  //    transmit power auto-calibrated to the paper's average degree of 14.5.
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = 7;
  tc.target_avg_degree = 14.5;
  radio::Topology topo = radio::make_random_topology(tc);
  std::printf("topology: %d nodes (largest component), avg degree %.1f\n", topo.size(),
              topo.etx.average_degree());

  // 2. VPoD in a 3D virtual space, ETX as the routing metric.
  vpod::VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/true, vc);

  // Ground truth for embedding quality: all-pairs ETX costs.
  const analysis::Matrix costs = analysis::cost_matrix(topo.etx);

  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 400;

  std::printf("\n%8s %12s %14s %12s %10s\n", "period", "embed-err", "gdv-tx/deliv", "success",
              "storage");
  for (int k = 0; k <= periods; k += (k < 4 ? 2 : 5)) {
    runner.run_to_period(k);
    const routing::MdtView view = runner.snapshot();
    const auto q = analysis::embedding_quality(view.pos, costs);
    const auto stats = eval::eval_gdv(view, topo, opts);
    std::printf("%8d %11.1f%% %14.2f %11.0f%% %10.1f\n", k, 100.0 * q.mean_rel_error,
                stats.transmissions, 100.0 * stats.success_rate, runner.avg_storage());
  }

  // 3. Baselines on actual locations + optimal.
  const auto gdv = eval::eval_gdv(runner.snapshot(), topo, opts);
  const auto mdt = eval::eval_mdt_actual(topo, opts);
  const auto nadv = eval::eval_nadv_actual(topo, opts);
  std::printf("\ntransmissions per delivery (ETX metric):\n");
  std::printf("  GDV on VPoD (3D):        %6.2f  (success %.1f%%)\n", gdv.transmissions,
              100.0 * gdv.success_rate);
  std::printf("  MDT on actual locations: %6.2f  (success %.1f%%)\n", mdt.transmissions,
              100.0 * mdt.success_rate);
  std::printf("  NADV on actual locations:%6.2f  (success %.1f%%)\n", nadv.transmissions,
              100.0 * nadv.success_rate);
  std::printf("  optimal shortest path:   %6.2f\n", gdv.optimal_transmissions);
  return 0;
}
