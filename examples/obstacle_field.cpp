// Example: routing through a field with large obstacles.
//
// Deploys a sensor network in a 100m x 100m field with four 10m x 10m
// obstacles (walls/buildings) that block radio links, then shows why
// cost-aware virtual positions matter: the greedy geographic baselines
// (which see straight-line distance) repeatedly run into the radio shadows,
// while GDV's virtual space -- where distance means routing cost -- routes
// around them.
//
//   $ ./build/examples/obstacle_field [num_obstacles]
#include <cstdio>
#include <cstdlib>

#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"

using namespace gdvr;

int main(int argc, char** argv) {
  const int obstacles = argc > 1 ? std::atoi(argv[1]) : 4;

  radio::TopologyConfig tc;
  tc.n = 200;
  tc.seed = 99;
  tc.num_obstacles = obstacles;
  tc.obstacle_size_m = 10.0;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  std::printf("field: %d nodes, %d obstacles, avg degree %.1f\n", topo.size(), obstacles,
              topo.etx.average_degree());
  for (const auto& o : topo.obstacles)
    std::printf("  obstacle [%.0f..%.0f] x [%.0f..%.0f]\n", o.x0, o.x1, o.y0, o.y1);

  // VPoD in 3D with ETX -- the extra dimension gives the embedding room to
  // "fold" around obstacles (see Figure 12 of the paper).
  vpod::VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/true, vc);
  runner.run_to_period(12);

  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 500;
  const auto gdv = eval::eval_gdv(runner.snapshot(), topo, opts);
  const auto mdt = eval::eval_mdt_actual(topo, opts);
  const auto nadv = eval::eval_nadv_actual(topo, opts);

  std::printf("\nexpected transmissions per delivered packet (ETX):\n");
  std::printf("  optimal (Dijkstra, global knowledge): %6.2f\n", gdv.optimal_transmissions);
  std::printf("  GDV on VPoD 3D:                       %6.2f  (delivery %.1f%%)\n",
              gdv.transmissions, 100.0 * gdv.success_rate);
  std::printf("  MDT-greedy on true positions:         %6.2f  (delivery %.1f%%)\n",
              mdt.transmissions, 100.0 * mdt.success_rate);
  std::printf("  NADV on true positions:               %6.2f  (delivery %.1f%%)\n",
              nadv.transmissions, 100.0 * nadv.success_rate);

  // Trace one concrete route to make the difference tangible: the pair with
  // the largest NADV-vs-GDV gap among a small sample.
  const auto view = runner.snapshot();
  const routing::PlanarGraph planar(topo.positions, topo.hops);
  Rng rng(5);
  double worst_gap = 0.0;
  int ws = -1, wt = -1;
  for (int i = 0; i < 200; ++i) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const auto g = routing::route_gdv(view, s, t);
    const auto nv = routing::route_nadv(topo.positions, topo.etx, planar, s, t);
    if (g.success && nv.success && nv.cost - g.cost > worst_gap) {
      worst_gap = nv.cost - g.cost;
      ws = s;
      wt = t;
    }
  }
  if (ws >= 0) {
    const auto g = routing::route_gdv(view, ws, wt);
    const auto nv = routing::route_nadv(topo.positions, topo.etx, planar, ws, wt);
    std::printf("\nworst sampled pair %d -> %d:\n", ws, wt);
    std::printf("  GDV : %2d hops, %.2f expected transmissions\n", g.transmissions, g.cost);
    std::printf("  NADV: %2d hops, %.2f expected transmissions\n", nv.transmissions, nv.cost);
  }
  return 0;
}
