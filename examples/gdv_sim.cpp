// gdv_sim: configurable command-line driver for the whole stack.
//
// Runs one experiment end to end -- topology generation, VPoD convergence,
// GDV routing evaluation against the baselines -- with every major knob
// exposed as a flag. Useful for exploring the design space beyond the
// paper's figure settings.
//
//   $ ./build/examples/gdv_sim --nodes 300 --metric ett --dim 4 --obstacles 2
//   $ ./build/examples/gdv_sim --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"

using namespace gdvr;

namespace {

struct Args {
  int nodes = 200;
  int dim = 3;
  int space_dim = 2;
  int obstacles = 0;
  int periods = 12;
  int pairs = 400;
  double cc = 0.1;
  double degree = 14.5;
  std::uint64_t seed = 1;
  radio::Metric metric = radio::Metric::kEtx;
  bool fixed_timeout = false;
  double timeout_s = 2.0;
  bool per_period = false;
};

void usage() {
  std::puts(
      "gdv_sim -- run one GDV/VPoD experiment\n"
      "  --nodes N        number of nodes (default 200)\n"
      "  --dim D          virtual space dimension 2..8 (default 3)\n"
      "  --space-dim D    physical space dimension 2 or 3 (default 2)\n"
      "  --metric M       hop | etx | ett | energy (default etx)\n"
      "  --obstacles K    number of 10x10m obstacles, 2D only (default 0)\n"
      "  --periods P      adjustment periods to run (default 12)\n"
      "  --pairs K        sampled src-dst pairs, 0 = all (default 400)\n"
      "  --cc X           VPoD position tuning parameter (default 0.1)\n"
      "  --degree X       target average physical degree (default 14.5)\n"
      "  --seed S         RNG seed (default 1)\n"
      "  --fixed-timeout T  use a fixed adjustment timeout of T seconds\n"
      "  --per-period     print routing quality after every period");
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--help") return false;
    if (flag == "--per-period") {
      a.per_period = true;
      continue;
    }
    const char* v = next();
    if (!v) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    if (flag == "--nodes") a.nodes = std::atoi(v);
    else if (flag == "--dim") a.dim = std::atoi(v);
    else if (flag == "--space-dim") a.space_dim = std::atoi(v);
    else if (flag == "--obstacles") a.obstacles = std::atoi(v);
    else if (flag == "--periods") a.periods = std::atoi(v);
    else if (flag == "--pairs") a.pairs = std::atoi(v);
    else if (flag == "--cc") a.cc = std::atof(v);
    else if (flag == "--degree") a.degree = std::atof(v);
    else if (flag == "--seed") a.seed = std::strtoull(v, nullptr, 10);
    else if (flag == "--fixed-timeout") {
      a.fixed_timeout = true;
      a.timeout_s = std::atof(v);
    } else if (flag == "--metric") {
      if (!std::strcmp(v, "hop")) a.metric = radio::Metric::kHopCount;
      else if (!std::strcmp(v, "etx")) a.metric = radio::Metric::kEtx;
      else if (!std::strcmp(v, "ett")) a.metric = radio::Metric::kEtt;
      else if (!std::strcmp(v, "energy")) a.metric = radio::Metric::kEnergy;
      else {
        std::fprintf(stderr, "unknown metric %s\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return 1;
  }

  radio::TopologyConfig tc;
  tc.n = a.nodes;
  tc.seed = a.seed;
  tc.space_dim = a.space_dim;
  tc.num_obstacles = a.obstacles;
  tc.target_avg_degree = a.degree;
  const double scale = std::sqrt(static_cast<double>(a.nodes) / 200.0);
  tc.width_m = 100.0 * scale;
  tc.height_m = 100.0 * scale;
  const radio::Topology topo = radio::make_random_topology(tc);
  std::printf("topology: %d nodes (%dD space), avg degree %.1f, %d obstacles\n", topo.size(),
              a.space_dim, topo.etx.average_degree(), a.obstacles);
  std::printf("metric: %s | virtual space: %dD | cc=%.3g | %s timeout\n",
              radio::metric_name(a.metric), a.dim, a.cc, a.fixed_timeout ? "fixed" : "adaptive");

  vpod::VpodConfig vc;
  vc.dim = a.dim;
  vc.cc = a.cc;
  if (a.fixed_timeout) {
    vc.timeout_mode = vpod::VpodConfig::TimeoutMode::kFixed;
    vc.fixed_timeout_s = a.timeout_s;
  }
  eval::VpodRunner runner(topo, a.metric, vc, {}, a.seed);

  const graph::Graph& metric = topo.metric_graph(a.metric);
  auto eval_now = [&] {
    const auto view = runner.snapshot();
    const auto pairs = eval::sample_pairs(eval::alive_nodes(view), a.pairs, a.seed);
    return eval::evaluate_router(
        [&](int s, int t) { return routing::route_gdv(view, s, t); }, metric, topo.hops,
        /*use_etx=*/true, pairs);
  };

  if (a.per_period) {
    std::printf("\n%8s %16s %16s %10s %10s\n", "period", "cost/delivery", "optimal", "ratio",
                "delivery");
    for (int k = 0; k <= a.periods; ++k) {
      runner.run_to_period(k);
      const auto s = eval_now();
      std::printf("%8d %16.3f %16.3f %10.3f %9.0f%%\n", k, s.transmissions,
                  s.optimal_transmissions, s.transmissions / s.optimal_transmissions,
                  100.0 * s.success_rate);
    }
  } else {
    runner.run_to_period(a.periods);
  }

  const auto final_stats = eval_now();
  eval::EvalOptions base_opts;
  base_opts.pair_samples = a.pairs;
  base_opts.seed = a.seed;
  base_opts.use_etx = true;

  std::printf("\nfinal results (%s cost per delivered packet):\n", radio::metric_name(a.metric));
  std::printf("  GDV on VPoD:   %10.3f  (delivery %.1f%%, storage %.1f nodes)\n",
              final_stats.transmissions, 100.0 * final_stats.success_rate, runner.avg_storage());
  std::printf("  optimal:       %10.3f  (ratio %.3f)\n", final_stats.optimal_transmissions,
              final_stats.transmissions / final_stats.optimal_transmissions);
  if (a.space_dim == 2) {
    // Baselines need 2D physical positions (planarized recovery).
    const auto view = routing::centralized_mdt(topo.positions, metric);
    const auto pairs = eval::sample_pairs(eval::alive_nodes(view), a.pairs, a.seed);
    const auto mdt = eval::evaluate_router(
        [&](int s, int t) { return routing::route_mdt_greedy(view, s, t); }, metric, topo.hops,
        true, pairs);
    const routing::PlanarGraph planar(topo.positions, topo.hops);
    const auto nadv = eval::evaluate_router(
        [&](int s, int t) { return routing::route_nadv(topo.positions, metric, planar, s, t); },
        metric, topo.hops, true, pairs);
    std::printf("  MDT on actual: %10.3f  (delivery %.1f%%)\n", mdt.transmissions,
                100.0 * mdt.success_rate);
    std::printf("  NADV on actual:%10.3f  (delivery %.1f%%)\n", nadv.transmissions,
                100.0 * nadv.success_rate);
  }
  return 0;
}
