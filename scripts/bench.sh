#!/usr/bin/env bash
# Release-build the microbenchmark suite and write a JSON snapshot to
# BENCH_core.json at the repo root. Commit the refreshed snapshot alongside
# performance work so regressions show up in review diffs.
#
#   scripts/bench.sh                 # full suite, BENCH_core.json
#   scripts/bench.sh --quick         # fast smoke pass, no JSON rewrite
#   scripts/bench.sh --filter REGEX  # subset, no JSON rewrite
#   scripts/bench.sh --profile       # GDVR_PROFILE=1 run: appends the scoped
#                                    # timer report (Delaunay build, overlay
#                                    # recompute, dijkstra) to stderr;
#                                    # no JSON rewrite (timers add overhead)
#
# Build directory: build-rel/ (Release; created on demand, reused).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
FILTER=""
PROFILE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --filter) FILTER="$2"; shift 2 ;;
    --profile) PROFILE=1; shift ;;
    *) echo "usage: scripts/bench.sh [--quick] [--filter REGEX] [--profile]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
cmake -S . -B build-rel -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j "$JOBS" --target micro_core

# NB: this benchmark version wants a plain double for --benchmark_min_time
# (no "s" suffix).
ARGS=(--benchmark_min_time=0.05)
if [[ "$QUICK" == 1 ]]; then
  ARGS=(--benchmark_min_time=0.01)
elif [[ -z "$FILTER" && "$PROFILE" == 0 ]]; then
  ARGS+=(--benchmark_out=BENCH_core.json --benchmark_out_format=json)
fi
[[ -n "$FILTER" ]] && ARGS+=(--benchmark_filter="$FILTER")

if [[ "$PROFILE" == 1 ]]; then
  GDVR_PROFILE=1 ./build-rel/bench/micro_core "${ARGS[@]}"
else
  ./build-rel/bench/micro_core "${ARGS[@]}"
fi
[[ "$QUICK" == 0 && "$PROFILE" == 0 && -z "$FILTER" ]] && echo "wrote BENCH_core.json"
