#!/usr/bin/env bash
# Release-build the microbenchmark suite and write a JSON snapshot to
# BENCH_core.json at the repo root. Commit the refreshed snapshot alongside
# performance work so regressions show up in review diffs.
#
#   scripts/bench.sh                 # full suite, BENCH_core.json
#   scripts/bench.sh --quick         # fast smoke pass, no JSON rewrite
#   scripts/bench.sh --filter REGEX  # subset, no JSON rewrite
#   scripts/bench.sh --compare       # run the suite and diff cpu_time against
#                                    # the committed BENCH_core.json; exits
#                                    # nonzero if any benchmark regressed by
#                                    # more than GDVR_BENCH_TOLERANCE (default
#                                    # 0.25 = 25%). No JSON rewrite.
#
# Snapshot and compare runs both use --benchmark_repetitions=3 and score each
# benchmark by its best (minimum) cpu_time across repetitions. On a shared or
# single-core host, scheduler noise only ever adds time, so min-of-3 is a far
# more stable estimator than a single sample: one-shot runs here drift up to
# ~1.3x run-to-run, which made a 25% gate flag a rotating set of untouched
# benchmarks. Best-of-3 vs best-of-3 keeps the gate meaningful.
#   scripts/bench.sh --profile       # GDVR_PROFILE=1 run: appends the scoped
#                                    # timer report (Delaunay build, overlay
#                                    # recompute, dijkstra) to stderr;
#                                    # no JSON rewrite (timers add overhead)
#
# The run's google-benchmark library_build_type is checked from the JSON
# context: a non-release benchmark library inflates timer overhead, so the
# script warns loudly when the snapshot or comparison was produced against a
# debug library. (Distro packages often ship debug; the warning annotates
# rather than refuses so the suite stays runnable on such hosts -- compare
# runs are still valid as long as baseline and candidate used the same
# library, which the context line in BENCH_core.json records.)
#
# Build directory: build-rel/ (Release; created on demand, reused).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
FILTER=""
PROFILE=0
COMPARE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --filter) FILTER="$2"; shift 2 ;;
    --profile) PROFILE=1; shift ;;
    --compare) COMPARE=1; shift ;;
    *) echo "usage: scripts/bench.sh [--quick] [--filter REGEX] [--compare] [--profile]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
cmake -S . -B build-rel -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j "$JOBS" --target micro_core

warn_debug_lib() {
  # $1: a benchmark JSON file. Non-fatal: annotate when the benchmark library
  # itself was not a release build (timer overhead is inflated).
  python3 - "$1" <<'EOF'
import json, sys
ctx = json.load(open(sys.argv[1])).get("context", {})
bt = ctx.get("library_build_type", "unknown")
if bt != "release":
    print(f"WARNING: google-benchmark library_build_type={bt!r} (not 'release');"
          " absolute timings carry extra overhead. Compare only against"
          " snapshots recorded with the same library.", file=sys.stderr)
EOF
}

if [[ "$COMPARE" == 1 ]]; then
  if [[ ! -f BENCH_core.json ]]; then
    echo "--compare: no BENCH_core.json baseline at repo root" >&2
    exit 2
  fi
  TMP_JSON="$(mktemp /tmp/bench_compare_XXXX.json)"
  trap 'rm -f "$TMP_JSON"' EXIT
  ./build-rel/bench/micro_core --benchmark_min_time=0.05 \
      --benchmark_repetitions=3 \
      --benchmark_out="$TMP_JSON" --benchmark_out_format=json
  warn_debug_lib "$TMP_JSON"
  python3 - BENCH_core.json "$TMP_JSON" "${GDVR_BENCH_TOLERANCE:-0.25}" <<'EOF'
import json, sys

base_path, cand_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(p):
    # Score each benchmark by its best (min) cpu_time across repetitions:
    # on an otherwise-idle host, noise only inflates timings, so the minimum
    # is the most stable per-run estimator. Single-sample snapshots (older
    # baselines) degenerate to their one entry.
    out = {}
    for b in json.load(open(p))["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        prev = out.get(b["name"])
        if prev is None or b["cpu_time"] < prev["cpu_time"]:
            out[b["name"]] = b
    return out

base, cand = load(base_path), load(cand_path)

regressed = []
new_names = []
print(f"\n{'benchmark':<42} {'base':>12} {'now':>12} {'ratio':>7}")
for name, c in cand.items():
    b = base.get(name)
    if b is None:
        # Benchmarks added since the snapshot have nothing to compare
        # against; summarized in one line below instead of flag rows.
        new_names.append(name)
        continue
    ratio = c["cpu_time"] / b["cpu_time"] if b["cpu_time"] > 0 else float("inf")
    flag = ""
    if ratio > 1.0 + tol:
        flag = "  << REGRESSION"
        regressed.append((name, ratio))
    print(f"{name:<42} {b['cpu_time']:>12.0f} {c['cpu_time']:>12.0f} {ratio:>7.2f}{flag}")
for name in base:
    if name not in cand:
        print(f"{name:<42}   (missing from this run)")
if new_names:
    shown = ", ".join(sorted(new_names)[:6])
    more = f" (+{len(new_names) - 6} more)" if len(new_names) > 6 else ""
    print(f"{len(new_names)} benchmark(s) not in the baseline snapshot "
          f"(no comparison): {shown}{more}")

if regressed:
    print(f"\n{len(regressed)} benchmark(s) regressed more than "
          f"{tol:.0%} vs {base_path}:", file=sys.stderr)
    for name, ratio in regressed:
        print(f"  {name}: {ratio:.2f}x baseline cpu_time", file=sys.stderr)
    print("Re-run to rule out host noise; if real, fix it or re-snapshot with"
          " scripts/bench.sh and justify the new baseline in the commit.",
          file=sys.stderr)
    sys.exit(1)
print(f"\nno cpu_time regressions beyond {tol:.0%}")
EOF
  exit 0
fi

# NB: this benchmark version wants a plain double for --benchmark_min_time
# (no "s" suffix).
ARGS=(--benchmark_min_time=0.05)
SNAPSHOT=0
if [[ "$QUICK" == 1 ]]; then
  ARGS=(--benchmark_min_time=0.01)
elif [[ -z "$FILTER" && "$PROFILE" == 0 ]]; then
  ARGS+=(--benchmark_repetitions=3
         --benchmark_out=BENCH_core.json --benchmark_out_format=json)
  SNAPSHOT=1
fi
[[ -n "$FILTER" ]] && ARGS+=(--benchmark_filter="$FILTER")

if [[ "$PROFILE" == 1 ]]; then
  GDVR_PROFILE=1 ./build-rel/bench/micro_core "${ARGS[@]}"
else
  ./build-rel/bench/micro_core "${ARGS[@]}"
fi
if [[ "$SNAPSHOT" == 1 ]]; then
  warn_debug_lib BENCH_core.json
  echo "wrote BENCH_core.json"
fi
