#!/usr/bin/env bash
# Full local gate: fast tier-1 tests first (plus the scenario-matrix smoke
# subset), then the chaos suite, then an ASan/UBSan pass over the whole test
# suite in separate build trees. The full protocol x scenario matrix
# (ctest -L scenario) runs in --release.
#
#   scripts/check.sh            # tier-1 + scenario smoke + chaos + sanitizers
#   scripts/check.sh --quick    # tier-1 + scenario smoke (CI on every push)
#   scripts/check.sh --release  # tier-1 in a Release tree + benchmark compare
#                               # against BENCH_core.json, so optimization-
#                               # level-only bugs and perf regressions surface
#                               # before perf work lands. Raise
#                               # GDVR_BENCH_TOLERANCE (default 0.25) on noisy
#                               # shared hosts.
#   scripts/check.sh --coverage # opt-in: tier-1 under gcov instrumentation,
#                               # failing if src/ line coverage drops below
#                               # the committed COVERAGE_baseline.txt
#
# Build directories: build/ (plain), build-asan/, build-ubsan/, build-tsan/,
# build-rel/ (--release), build-cov/ (--coverage). Created on demand, reused
# across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
RELEASE=0
[[ "${1:-}" == "--quick" ]] && QUICK=1
[[ "${1:-}" == "--release" ]] && RELEASE=1
if [[ "${1:-}" == "--coverage" ]]; then
  exec scripts/coverage.sh --check
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

configure_and_build() {
  local dir="$1"; shift
  cmake -S . -B "$dir" -DGDVR_WERROR=ON "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

if [[ "$RELEASE" == 1 ]]; then
  echo "== tier-1 (Release build) =="
  configure_and_build build-rel -DCMAKE_BUILD_TYPE=Release
  ctest --test-dir build-rel -LE 'chaos|scenario' --output-on-failure -j "$JOBS"
  echo "== full scenario matrix (Release) =="
  # Every protocol x every workload generator: invariants + thread/engine
  # digest determinism. The default gate runs only the smoke subset.
  ctest --test-dir build-rel -L scenario --output-on-failure -j "$JOBS"
  echo "== engine-sweep smoke (serial vs sharded, Release) =="
  # Drives the full VPoD protocol through the sharded engine and asserts
  # message-count equality against the serial oracle (the GDVR_ASSERTs in
  # the sweep); the wall-clock columns surface gross engine regressions.
  ./build-rel/bench/fig15_16_scalability --engine-sweep --smoke
  echo "== benchmark compare vs BENCH_core.json (Release) =="
  # Full suite at the snapshot's min_time; fails on >GDVR_BENCH_TOLERANCE
  # cpu_time regressions against the committed baseline.
  scripts/bench.sh --compare
  echo "release checks passed"
  exit 0
fi

echo "== tier-1 (plain build) =="
configure_and_build build
# Everything except the chaos and scenario labels: the fast suite that must
# always pass. The scenario matrix contributes its smoke subset here; the
# full matrix runs in --release.
ctest --test-dir build -LE 'chaos|scenario' --output-on-failure -j "$JOBS"

echo "== scenario smoke (plain build) =="
ctest --test-dir build -L scenario -R ScenarioMatrixSmoke --output-on-failure -j "$JOBS"

if [[ "$QUICK" == 1 ]]; then
  echo "quick mode: skipping chaos + sanitizer passes"
  exit 0
fi

echo "== chaos suite (plain build) =="
ctest --test-dir build -L chaos --output-on-failure

echo "== churn soak (plain build) =="
ctest --test-dir build -L soak --output-on-failure

for san in address undefined; do
  dir="build-${san:0:1}san"
  [[ "$san" == address ]] && dir=build-asan || dir=build-ubsan
  echo "== tier-1 under ${san} sanitizer (${dir}) =="
  configure_and_build "$dir" -DGDVR_SANITIZE="$san"
  ctest --test-dir "$dir" -LE chaos --output-on-failure -j "$JOBS"
done

# The concurrency the fast suite exercises lives in the eval layer's
# parallel audits and the sharded simulator engine; drive the long-running
# labels (which audit continuously under churn) plus the sharded-engine
# group through TSan to catch data races the single-label runs miss.
echo "== chaos + soak + sharded engine under thread sanitizer (build-tsan) =="
configure_and_build build-tsan -DGDVR_SANITIZE=thread
ctest --test-dir build-tsan -L 'chaos|soak|parallel' --output-on-failure

echo "all checks passed"
