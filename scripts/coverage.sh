#!/usr/bin/env bash
# Line coverage of src/ under the tier-1 test suite, using the toolchain's
# raw gcov (no gcovr/lcov dependency). Lines are unioned across translation
# units, so headers exercised from several tests count once.
#
#   scripts/coverage.sh                    # build, run tier-1, print coverage
#   scripts/coverage.sh --check            # additionally fail if total line
#                                          # coverage drops below the recorded
#                                          # baseline (COVERAGE_baseline.txt)
#   scripts/coverage.sh --update-baseline  # rewrite the baseline from this run
#
# Build directory: build-cov/ (instrumented with --coverage; created on
# demand, reused). The baseline lives at the repo root and is committed, so
# coverage regressions show up in review diffs like benchmark regressions do.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=report
case "${1:-}" in
  "") ;;
  --check) MODE=check ;;
  --update-baseline) MODE=update ;;
  *) echo "usage: scripts/coverage.sh [--check|--update-baseline]" >&2; exit 2 ;;
esac

BASELINE_FILE=COVERAGE_baseline.txt
JOBS="$(nproc 2>/dev/null || echo 4)"
[[ "$JOBS" -lt 8 ]] && JOBS=8

cmake -S . -B build-cov -DGDVR_WERROR=ON \
  -DCMAKE_CXX_FLAGS="--coverage" -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null
cmake --build build-cov -j "$JOBS"

# Stale .gcda from previous runs would mix coverage of deleted tests in.
find build-cov -name '*.gcda' -delete
ctest --test-dir build-cov -LE chaos --output-on-failure -j "$JOBS" >/dev/null

# One gcov invocation per object file; -p -l keeps per-TU output files
# distinct so header coverage from different tests survives until the union.
GCOV_DIR=build-cov/coverage-gcov
rm -rf "$GCOV_DIR" && mkdir -p "$GCOV_DIR"
(
  cd "$GCOV_DIR"
  find ../.. -name '*.gcda' -path '*/build-cov/*' | while read -r f; do
    gcov -p -l -o "$(dirname "$f")" "$f" >/dev/null 2>&1 || true
  done
)

# Union executed lines across TUs: a source line counts as covered if any
# test executed it anywhere. Restricted to src/ (tests and benches measuring
# themselves would only flatter the number).
PCT="$(awk -F: '
  /0:Source:/ {
    file = $0
    sub(/.*0:Source:/, "", file)
    keep = (file ~ /\/src\//) && (file !~ /\/build/)
    next
  }
  keep {
    count = $1; gsub(/[ \t]/, "", count)
    line = $2 + 0
    if (line == 0 || count == "-") next
    key = file ":" line
    instrumented[key] = 1
    if (count != "#####" && count != "=====") executed[key] = 1
  }
  END {
    total = 0; exec_n = 0
    for (k in instrumented) { ++total; if (k in executed) ++exec_n }
    if (total == 0) { print "0.0"; exit }
    printf "%.1f", 100.0 * exec_n / total
    printf " (%d of %d lines)\n", exec_n, total > "/dev/stderr"
  }
' "$GCOV_DIR"/*.gcov)"

echo "src/ line coverage: ${PCT}%"

case "$MODE" in
  update)
    echo "$PCT" > "$BASELINE_FILE"
    echo "baseline updated: $BASELINE_FILE = ${PCT}%"
    ;;
  check)
    if [[ ! -f "$BASELINE_FILE" ]]; then
      echo "no $BASELINE_FILE; run scripts/coverage.sh --update-baseline first" >&2
      exit 1
    fi
    BASE="$(cat "$BASELINE_FILE")"
    # Small tolerance absorbs line-accounting jitter across gcc point releases.
    OK="$(awk -v p="$PCT" -v b="$BASE" 'BEGIN { print (p + 0.2 >= b) ? 1 : 0 }')"
    if [[ "$OK" != 1 ]]; then
      echo "coverage regression: ${PCT}% < baseline ${BASE}%" >&2
      exit 1
    fi
    echo "coverage ok (baseline ${BASE}%)"
    ;;
esac
