// White-box tests of the MDT protocol machinery on small hand-crafted
// topologies: greedy forwarding, virtual-link detours, TTL, retries, and the
// exact message mechanics of the join.
#include <gtest/gtest.h>

#include "mdt/overlay.hpp"
#include "radio/topology.hpp"
#include "sim/simulator.hpp"

namespace gdvr::mdt {
namespace {

// A line of n nodes at unit spacing, unit link costs.
struct Line {
  radio::Topology topo;
  sim::Simulator sim;
  std::unique_ptr<Net> net;
  std::unique_ptr<MdtOverlay> overlay;

  explicit Line(int n) {
    topo.positions.clear();
    graph::Graph g(n);
    for (int i = 0; i < n; ++i) topo.positions.push_back(Vec{static_cast<double>(i), 0.0});
    for (int i = 0; i + 1 < n; ++i) g.add_bidirectional(i, i + 1, 1.0, 1.0);
    topo.etx = g;
    topo.hops = g.with_unit_costs();
    net = std::make_unique<Net>(sim, topo.etx, 0.001, 0.01, 1);
    MdtConfig mc;
    mc.dim = 2;
    overlay = std::make_unique<MdtOverlay>(*net, mc);
    overlay->attach();
  }

  void start_sequential() {
    for (int u = 0; u < net->size(); ++u)
      overlay->activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
    for (int u = 1; u < net->size(); ++u) {
      sim.schedule_at(0.1 * u, [this, u] { overlay->start_join(u); });
    }
    // Sequential joins retry at ~2-3 s granularity when the predecessor has
    // not announced yet, so the tail node needs a couple of retry windows of
    // slack per hop on top of the 10 s base.
    sim.run_until(10.0 + 3.0 * net->size());
  }
};

TEST(ProtocolInternals, LineJoinsEndToEnd) {
  Line line(10);
  line.start_sequential();
  for (int u = 0; u < 10; ++u) EXPECT_TRUE(line.overlay->joined(u)) << u;
  // The DT of a (jittered) collinear point set must at least contain every
  // consecutive pair; near-degenerate slivers may add a few long edges.
  auto has = [&](int u, int v) {
    const auto nbrs = line.overlay->dt_neighbors(u);
    return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
  };
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_TRUE(has(i, i + 1)) << i;
    EXPECT_TRUE(has(i + 1, i)) << i;
  }
}

TEST(ProtocolInternals, HelloAnnouncesJoinedState) {
  Line line(4);
  line.overlay->activate(0, line.topo.positions[0], /*first=*/true);
  line.overlay->activate(1, line.topo.positions[1], false);
  line.sim.run_until(1.0);
  // Node 1 heard node 0's activation Hello (joined = true), triggered its
  // own join through node 0, completed it, and announced -- so by now each
  // side records the other as joined.
  auto it = line.overlay->phys_info(1).find(0);
  ASSERT_NE(it, line.overlay->phys_info(1).end());
  EXPECT_TRUE(it->second.joined);
  EXPECT_TRUE(line.overlay->joined(1));
  auto it2 = line.overlay->phys_info(0).find(1);
  ASSERT_NE(it2, line.overlay->phys_info(0).end());
  EXPECT_TRUE(it2->second.joined);
}

TEST(ProtocolInternals, NeighborViewsExposeLinkCosts) {
  Line line(5);
  line.start_sequential();
  bool saw1 = false, saw3 = false;
  for (const NeighborView& v : line.overlay->neighbor_views(2)) {
    if (v.id == 1 || v.id == 3) {
      EXPECT_TRUE(v.is_phys);
      EXPECT_DOUBLE_EQ(v.cost, 1.0);
      (v.id == 1 ? saw1 : saw3) = true;
    } else {
      // Sliver DT edges on the near-collinear line are multi-hop neighbors
      // with real (>= 2) path costs.
      EXPECT_FALSE(v.is_phys);
      EXPECT_GE(v.cost, 2.0);
    }
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw3);
}

TEST(ProtocolInternals, InactiveNodesDropProtocolMessages) {
  Line line(4);
  line.overlay->activate(0, line.topo.positions[0], true);
  // Node 1 never activates. A join request sent its way must die silently
  // (no crash, no state change) and node 0 stays the only joined node.
  line.overlay->activate(2, line.topo.positions[2], false);
  line.overlay->start_join(2);  // seed is node 1 or 3; both inactive/unknown
  line.sim.run_until(5.0);
  EXPECT_FALSE(line.overlay->joined(2));
}

TEST(ProtocolInternals, SetPositionPushesToPhysNeighbors) {
  Line line(4);
  line.start_sequential();
  line.overlay->set_position(1, Vec{42.0, 7.0}, 0.25);
  line.sim.run_until(line.sim.now() + 1.0);
  for (int nbr : {0, 2}) {
    auto it = line.overlay->phys_info(nbr).find(1);
    ASSERT_NE(it, line.overlay->phys_info(nbr).end());
    EXPECT_EQ(it->second.pos, (Vec{42.0, 7.0}));
    EXPECT_DOUBLE_EQ(it->second.err, 0.25);
  }
}

TEST(ProtocolInternals, DistinctNodesStoredOnLine) {
  Line line(8);
  line.start_sequential();
  // Interior nodes store at least their 2 physical neighbors, plus whatever
  // sliver DT edges the near-collinear geometry produces -- always fewer
  // than the whole network.
  EXPECT_GE(line.overlay->distinct_nodes_stored(4), 2);
  EXPECT_LT(line.overlay->distinct_nodes_stored(4), 8);
  EXPECT_GE(line.overlay->distinct_nodes_stored(0), 1);
}

TEST(ProtocolInternals, MessagesAreCountedPerHop) {
  Line line(3);
  const auto before = line.net->total_messages_sent();
  line.start_sequential();
  const auto after = line.net->total_messages_sent();
  EXPECT_GT(after, before + 4);  // hellos + joins at minimum
}

TEST(ProtocolInternals, DeactivateIsIdempotent) {
  Line line(5);
  line.start_sequential();
  line.overlay->deactivate(2);
  line.overlay->deactivate(2);
  EXPECT_FALSE(line.overlay->active(2));
  // The line is now split; survivors keep running without crashing.
  line.sim.run_until(line.sim.now() + 20.0);
  EXPECT_TRUE(line.overlay->joined(0));
  EXPECT_TRUE(line.overlay->joined(4));
}

TEST(ProtocolInternals, RejoinAfterFailure) {
  Line line(5);
  line.start_sequential();
  line.overlay->deactivate(2);
  line.sim.run_until(line.sim.now() + 5.0);
  // Node 2 comes back with a fresh position and rejoins through neighbors.
  line.net->set_alive(2, true);
  line.overlay->activate(2, Vec{2.0, 0.1}, false);
  line.overlay->start_join(2);
  line.sim.run_until(line.sim.now() + 15.0);
  EXPECT_TRUE(line.overlay->joined(2));
}

// Star topology: hub 0 at origin, leaves around it. DT neighbors of leaves
// include other leaves (through the hub: multi-hop virtual links).
TEST(ProtocolInternals, StarCreatesMultiHopVirtualLinks) {
  radio::Topology topo;
  const int leaves = 6;
  graph::Graph g(leaves + 1);
  topo.positions.push_back(Vec{0.0, 0.0});
  for (int i = 0; i < leaves; ++i) {
    const double angle = 2.0 * 3.14159265358979 * i / leaves;
    topo.positions.push_back(Vec{std::cos(angle), std::sin(angle)});
    g.add_bidirectional(0, i + 1, 1.0, 1.0);
  }
  topo.etx = g;
  topo.hops = g.with_unit_costs();

  sim::Simulator sim;
  Net net(sim, topo.etx, 0.001, 0.01, 2);
  MdtConfig mc;
  mc.dim = 2;
  MdtOverlay overlay(net, mc);
  overlay.attach();
  for (int u = 0; u <= leaves; ++u) overlay.activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
  for (int u = 1; u <= leaves; ++u) sim.schedule_at(0.1 * u, [&, u] { overlay.start_join(u); });
  sim.run_until(15.0);
  // Run one maintenance round to settle mutual syncs.
  for (int u = 0; u <= leaves; ++u) overlay.run_maintenance_round(u);
  sim.run_until(25.0);

  int virtual_links = 0;
  for (int u = 1; u <= leaves; ++u) {
    for (const NeighborView& v : overlay.neighbor_views(u)) {
      if (v.is_phys || !v.is_dt) continue;
      ++virtual_links;
      // The only physical route between leaves goes through the hub.
      const auto& path = overlay.virtual_path(u, v.id);
      ASSERT_EQ(path.size(), 3u);
      EXPECT_EQ(path[1], 0);
      EXPECT_DOUBLE_EQ(v.cost, 2.0);  // two unit links
    }
  }
  EXPECT_GT(virtual_links, 0);
}

// A side x side unit grid with 4-adjacency, unit link costs. Unlike the
// (collinear, hence DT-degenerate) Line, positions are in general position
// after jitter, so a quiescent network reaches a fully cached steady state.
struct GridNet {
  radio::Topology topo;
  sim::Simulator sim;
  std::unique_ptr<Net> net;
  std::unique_ptr<MdtOverlay> overlay;
  int n = 0;

  explicit GridNet(int side) : n(side * side) {
    graph::Graph g(n);
    for (int r = 0; r < side; ++r)
      for (int c = 0; c < side; ++c)
        topo.positions.push_back(Vec{static_cast<double>(c), static_cast<double>(r)});
    for (int r = 0; r < side; ++r)
      for (int c = 0; c < side; ++c) {
        const int u = r * side + c;
        if (c + 1 < side) g.add_bidirectional(u, u + 1, 1.0, 1.0);
        if (r + 1 < side) g.add_bidirectional(u, u + side, 1.0, 1.0);
      }
    topo.etx = g;
    topo.hops = g.with_unit_costs();
    net = std::make_unique<Net>(sim, topo.etx, 0.001, 0.01, 1);
    MdtConfig mc;
    mc.dim = 2;
    overlay = std::make_unique<MdtOverlay>(*net, mc);
    overlay->attach();
    for (int u = 0; u < n; ++u)
      overlay->activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
    for (int u = 1; u < n; ++u) sim.schedule_at(0.1 * u, [this, u] { overlay->start_join(u); });
    sim.run_until(10.0 + n);
  }

  void maintenance_rounds(int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (int u = 0; u < n; ++u) overlay->run_maintenance_round(u);
      sim.run_until(sim.now() + 5.0);
    }
  }
};

TEST(ProtocolInternals, RecomputeMemoizationOnQuiescentNetwork) {
  // recompute() memoizes on the multiset of (id, pos_version) inputs: once
  // the network is quiescent every call's input is one the per-node cache has
  // seen, so local DT rebuilds stop; moving a node invalidates exactly the
  // caches whose input actually changed.
  GridNet grid(3);
  grid.maintenance_rounds(8);  // settle: syncs re-teach candidates for a while

  const MdtOverlay::RecomputeStats before = grid.overlay->recompute_stats();
  grid.maintenance_rounds(6);
  const MdtOverlay::RecomputeStats mid = grid.overlay->recompute_stats();
  const std::uint64_t calls = mid.calls - before.calls;
  const std::uint64_t rebuilds = mid.rebuilds - before.rebuilds;
  ASSERT_GT(calls, 0u);
  // Quiescent rounds must be (almost) all cache hits: >= 90%.
  EXPECT_LE(rebuilds * 10, calls) << rebuilds << " rebuilds in " << calls << " calls";

  // An actual position change flows through as a new pos_version and forces
  // real rebuilds again.
  Vec moved = grid.topo.positions[4];
  moved[1] += 0.6;
  grid.overlay->set_position(4, moved, 0.1);
  grid.sim.run_until(grid.sim.now() + 2.0);
  grid.maintenance_rounds(1);
  const MdtOverlay::RecomputeStats after = grid.overlay->recompute_stats();
  EXPECT_GT(after.rebuilds, mid.rebuilds);
}

TEST(ProtocolInternals, RecomputeSteadyStateOnRandomTopology) {
  // The static-network counterpart of BM_MdtMaintenanceRound's hit-rate
  // counter. Under live VPoD the rate sits in the low tens of percent because
  // every adjustment tick moves positions and bumps pos_version -- a correct
  // invalidation, not a cache defect. With positions frozen (no VPoD, overlay
  // driven directly), maintenance rounds must be nearly all cache hits. A
  // random radio topology rather than a hand-crafted grid: realistic degrees
  // (~14) and general-position coordinates, like the benchmark's network.
  radio::TopologyConfig tc;
  tc.n = 60;
  tc.seed = 4242;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  const int n = topo.size();
  ASSERT_GE(n, 30);

  sim::Simulator sim;
  Net net(sim, topo.etx, 0.001, 0.01, 1);
  MdtConfig mc;
  mc.dim = 2;
  MdtOverlay overlay(net, mc);
  overlay.attach();
  for (int u = 0; u < n; ++u)
    overlay.activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
  for (int u = 1; u < n; ++u) sim.schedule_at(0.1 * u, [&, u] { overlay.start_join(u); });
  sim.run_until(10.0 + n);
  for (int u = 0; u < n; ++u) ASSERT_TRUE(overlay.joined(u)) << u;

  const auto rounds = [&](int count) {
    for (int round = 0; round < count; ++round) {
      for (int u = 0; u < n; ++u) overlay.run_maintenance_round(u);
      sim.run_until(sim.now() + 5.0);
    }
  };
  rounds(8);  // settle: pair syncs stop teaching new candidates

  const MdtOverlay::RecomputeStats before = overlay.recompute_stats();
  rounds(6);
  const MdtOverlay::RecomputeStats after = overlay.recompute_stats();
  const std::uint64_t calls = after.calls - before.calls;
  const std::uint64_t rebuilds = after.rebuilds - before.rebuilds;
  ASSERT_GT(calls, 0u);
  EXPECT_LE(rebuilds * 10, calls) << rebuilds << " rebuilds in " << calls << " calls";
}

TEST(ProtocolInternals, StaleIncarnationMessageCannotMutateNewLife) {
  // The incarnation-reconciliation property: a message carrying state from a
  // node's incarnation k must never mutate what a receiver records about
  // incarnation k+1 -- even if the stale message claims an arbitrarily high
  // pos_version (ordering is lexicographic on (incarnation, pos_version)).
  Line line(4);
  line.start_sequential();
  const std::uint32_t old_inc = line.net->incarnation(2);

  // Node 2 crashes and rejoins: the link layer bumps its incarnation.
  line.overlay->deactivate(2);
  line.sim.run_until(line.sim.now() + 2.0);
  line.net->set_alive(2, true);
  line.overlay->activate(2, Vec{2.0, 0.2}, false);
  line.overlay->start_join(2);
  line.sim.run_until(line.sim.now() + 15.0);
  ASSERT_TRUE(line.overlay->joined(2));
  ASSERT_EQ(line.net->incarnation(2), old_inc + 1);
  auto rec = line.overlay->phys_info(1).find(2);
  ASSERT_NE(rec, line.overlay->phys_info(1).end());
  ASSERT_EQ(rec->second.incarnation, old_inc + 1);
  const Vec fresh_pos = rec->second.pos;

  // A position update from the dead incarnation arrives late (e.g. it was in
  // flight across a long virtual link when node 2 crashed). It must be
  // dropped outright, whatever pos_version it advertises.
  Envelope stale;
  stale.kind = Kind::kPosUpdate;
  stale.origin = 2;
  stale.target = 1;
  stale.origin_info =
      NodeInfo{2, Vec{99.0, 99.0}, 0.5, true, /*pos_version=*/1u << 30, old_inc};
  const std::uint64_t dropped_before = line.overlay->fd_stats().stale_incarnation_dropped;
  line.overlay->handle(1, 2, stale);
  EXPECT_EQ(line.overlay->phys_info(1).at(2).pos, fresh_pos);
  EXPECT_EQ(line.overlay->phys_info(1).at(2).incarnation, old_inc + 1);
  EXPECT_EQ(line.overlay->fd_stats().stale_incarnation_dropped, dropped_before + 1);

  // The same stale info smuggled in as second-hand gossip (a neighbor-set
  // reply payload) must lose the lexicographic freshness race too.
  Envelope gossip;
  gossip.kind = Kind::kNbrSetReply;
  gossip.origin = 0;
  gossip.target = 1;
  gossip.origin_info = line.overlay->phys_info(1).at(0);
  gossip.origin_info.incarnation = line.net->incarnation(0);
  gossip.nbr_infos.push_back(
      NodeInfo{2, Vec{99.0, 99.0}, 0.5, true, /*pos_version=*/1u << 30, old_inc});
  line.overlay->handle(1, 0, gossip);
  line.sim.run_until(line.sim.now() + 2.0);
  for (const NeighborView& v : line.overlay->neighbor_views(1)) {
    if (v.id == 2) {
      EXPECT_EQ(v.pos, fresh_pos);
    }
  }
}

TEST(ProtocolInternals, SetPositionSameValueKeepsVersion) {
  // pos_version names the position *value*: re-announcing an identical
  // position must not bump the version (and so must not thrash the
  // neighbors' recompute caches).
  Line line(4);
  line.start_sequential();
  const auto settle = [&] {
    for (int u = 0; u < 4; ++u) line.overlay->run_maintenance_round(u);
    line.sim.run_until(line.sim.now() + 5.0);
  };
  settle();
  const MdtOverlay::RecomputeStats base = line.overlay->recompute_stats();
  line.overlay->set_position(2, line.overlay->position(2), 0.1);
  settle();
  const MdtOverlay::RecomputeStats same = line.overlay->recompute_stats();
  EXPECT_EQ(same.rebuilds, base.rebuilds);
}

}  // namespace
}  // namespace gdvr::mdt
