// Tests for d-dimensional predicates and the incremental Delaunay
// triangulation, validated against an independent brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "geom/brute_force.hpp"
#include "geom/delaunay.hpp"
#include "geom/dynamic_delaunay.hpp"
#include "geom/predicates.hpp"

namespace gdvr::geom {
namespace {

std::vector<Vec> random_points(int n, int dim, std::uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  std::vector<Vec> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vec p(dim);
    for (int c = 0; c < dim; ++c) p[c] = rng.uniform(0.0, scale);
    pts.push_back(p);
  }
  return pts;
}

// ---------- predicates ----------

TEST(Predicates, Orient2D) {
  const Vec a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(orient(std::vector<Vec>{a, b, c}), 0.0);
  EXPECT_LT(orient(std::vector<Vec>{a, c, b}), 0.0);
  const Vec d{2, 0};
  EXPECT_DOUBLE_EQ(orient(std::vector<Vec>{a, b, d}), 0.0);
}

TEST(Predicates, Orient3D) {
  const Vec a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  const double o1 = orient(std::vector<Vec>{a, b, c, d});
  const double o2 = orient(std::vector<Vec>{a, c, b, d});
  EXPECT_LT(o1 * o2, 0.0);  // swapping two vertices flips the sign
  EXPECT_NE(o1 > 0, o2 > 0);
  const Vec coplanar{0.5, 0.5, 0};
  EXPECT_DOUBLE_EQ(orient(std::vector<Vec>{a, b, c, coplanar}), 0.0);
}

TEST(Predicates, InSphere2DUnitCircle) {
  // Circumcircle of this triangle is the unit circle.
  const Vec a{1, 0}, b{-1, 0}, c{0, 1};
  const std::vector<Vec> tri{a, b, c};
  EXPECT_GT(in_sphere(tri, Vec{0, 0}), 0.0);
  EXPECT_GT(in_sphere(tri, Vec{0.5, -0.5}), 0.0);
  EXPECT_LT(in_sphere(tri, Vec{2, 0}), 0.0);
  EXPECT_LT(in_sphere(tri, Vec{0, -1.001}), 0.0);
  EXPECT_NEAR(in_sphere(tri, Vec{0, -1}), 0.0, 1e-12);
}

TEST(Predicates, InSphereOrientationIndependent) {
  const Vec a{1, 0}, b{-1, 0}, c{0, 1};
  const Vec q{0.1, 0.2};
  const double s1 = in_sphere(std::vector<Vec>{a, b, c}, q);
  const double s2 = in_sphere(std::vector<Vec>{a, c, b}, q);
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s2, 0.0);
  EXPECT_NEAR(s1, s2, 1e-12);
}

TEST(Predicates, InSphereMatchesCircumsphereDistance) {
  // Property: sign(in_sphere) == sign(r^2 - |q - center|^2) for random simplices.
  for (int dim = 2; dim <= 4; ++dim) {
    Rng rng(77u + static_cast<std::uint64_t>(dim));
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<Vec> simplex;
      for (int i = 0; i <= dim; ++i) {
        Vec p(dim);
        for (int c = 0; c < dim; ++c) p[c] = rng.uniform(-1.0, 1.0);
        simplex.push_back(p);
      }
      Vec center;
      double r2 = 0.0;
      if (!circumsphere(simplex, center, r2)) continue;
      Vec q(dim);
      for (int c = 0; c < dim; ++c) q[c] = rng.uniform(-2.0, 2.0);
      const double margin = r2 - q.distance2(center);
      if (std::fabs(margin) < 1e-9 * r2) continue;  // too close to the sphere
      const double pred = in_sphere(simplex, q);
      EXPECT_EQ(pred > 0.0, margin > 0.0)
          << "dim=" << dim << " trial=" << trial << " margin=" << margin << " pred=" << pred;
    }
  }
}

TEST(Predicates, CircumsphereEquidistant) {
  Rng rng(123);
  for (int dim = 2; dim <= 5; ++dim) {
    std::vector<Vec> simplex;
    for (int i = 0; i <= dim; ++i) {
      Vec p(dim);
      for (int c = 0; c < dim; ++c) p[c] = rng.uniform(0.0, 10.0);
      simplex.push_back(p);
    }
    Vec center;
    double r2 = 0.0;
    ASSERT_TRUE(circumsphere(simplex, center, r2));
    for (const Vec& p : simplex) EXPECT_NEAR(p.distance2(center), r2, 1e-6 * (1.0 + r2));
  }
}

TEST(Predicates, DegenerateSimplexRejected) {
  // Collinear "triangle" has no circumcircle.
  const std::vector<Vec> collinear{Vec{0, 0}, Vec{1, 1}, Vec{2, 2}};
  Vec center;
  double r2 = 0.0;
  EXPECT_FALSE(circumsphere(collinear, center, r2));
}

TEST(Predicates, DeterminantKnownValues) {
  std::vector<std::vector<double>> m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(determinant_inplace(m), -2.0);
  std::vector<std::vector<double>> id{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  EXPECT_DOUBLE_EQ(determinant_inplace(id), 1.0);
  std::vector<std::vector<double>> sing{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(determinant_inplace(sing), 0.0);
}

// ---------- triangulation vs oracle ----------

struct DtCase {
  int n;
  int dim;
  std::uint64_t seed;
};

class DelaunayOracleTest : public ::testing::TestWithParam<DtCase> {};

TEST_P(DelaunayOracleTest, MatchesBruteForce) {
  const auto [n, dim, seed] = GetParam();
  const auto pts = random_points(n, dim, seed);
  const DelaunayGraph dt = delaunay_graph(pts);
  ASSERT_FALSE(dt.complete_graph_fallback);
  const auto oracle = brute_force_delaunay_edges(pts);
  EXPECT_EQ(dt.edges, oracle) << "n=" << n << " dim=" << dim << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DelaunayOracleTest,
    ::testing::Values(DtCase{5, 2, 1}, DtCase{10, 2, 2}, DtCase{20, 2, 3}, DtCase{35, 2, 4},
                      DtCase{35, 2, 5}, DtCase{6, 3, 6}, DtCase{12, 3, 7}, DtCase{20, 3, 8},
                      DtCase{25, 3, 9}, DtCase{8, 4, 10}, DtCase{14, 4, 11}, DtCase{18, 4, 12},
                      DtCase{20, 2, 13}, DtCase{20, 3, 14}, DtCase{16, 4, 15}));

TEST(Delaunay, EmptyCircumsphereProperty) {
  for (int dim = 2; dim <= 4; ++dim) {
    const auto pts = random_points(40, dim, 99u + static_cast<std::uint64_t>(dim));
    Triangulation t;
    ASSERT_TRUE(t.build(pts));
    EXPECT_TRUE(t.empty_circumsphere_property()) << "dim=" << dim;
  }
}

TEST(Delaunay, GridPointsNeedJitter) {
  // A perfect grid is maximally degenerate (co-circular quadruples); the
  // built-in jitter must still produce a valid triangulation.
  std::vector<Vec> pts;
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c) pts.push_back(Vec{static_cast<double>(c), static_cast<double>(r)});
  const DelaunayGraph dt = delaunay_graph(pts);
  EXPECT_FALSE(dt.complete_graph_fallback);
  // All 60 grid edges must be Delaunay edges (they are the shortest pairs).
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c) {
      const int u = r * 6 + c;
      if (c + 1 < 6) {
        EXPECT_TRUE(dt.has_edge(u, u + 1));
      }
      if (r + 1 < 6) {
        EXPECT_TRUE(dt.has_edge(u, u + 6));
      }
    }
}

TEST(Delaunay, EdgeCountsPlausible2D) {
  // Euler's formula: a 2D Delaunay triangulation of n points with h hull
  // points has 3n - 3 - h edges; so between 2n-3 and 3n-6 for n >= 3.
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const int n = 60;
    const auto pts = random_points(n, 2, seed);
    const DelaunayGraph dt = delaunay_graph(pts);
    ASSERT_FALSE(dt.complete_graph_fallback);
    EXPECT_GE(static_cast<int>(dt.edges.size()), 2 * n - 3);
    EXPECT_LE(static_cast<int>(dt.edges.size()), 3 * n - 6);
  }
}

TEST(Delaunay, ConnectedGraph) {
  // DT of any point set is connected.
  for (int dim = 2; dim <= 4; ++dim) {
    const auto pts = random_points(50, dim, 400u + static_cast<std::uint64_t>(dim));
    const DelaunayGraph dt = delaunay_graph(pts);
    std::vector<char> seen(pts.size(), 0);
    std::vector<int> stack{0};
    seen[0] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : dt.nbrs[static_cast<std::size_t>(u)])
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          stack.push_back(v);
        }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }));
  }
}

TEST(Delaunay, SmallInputs) {
  // n <= dim+1 points: complete graph, no fallback flag.
  const auto pts = random_points(3, 3, 1);
  const DelaunayGraph dt = delaunay_graph(pts);
  EXPECT_FALSE(dt.complete_graph_fallback);
  EXPECT_EQ(dt.edges.size(), 3u);

  const auto one = random_points(1, 2, 1);
  EXPECT_TRUE(delaunay_graph(one).edges.empty());
  EXPECT_TRUE(delaunay_graph(std::vector<Vec>{}).edges.empty());
}

TEST(Delaunay, DegenerateCollinearFallsBack) {
  std::vector<Vec> pts;
  for (int i = 0; i < 8; ++i) pts.push_back(Vec{static_cast<double>(i), 2.0 * i});
  const DelaunayGraph dt = delaunay_graph(pts);
  // Perfectly collinear input has affine rank 1 < 2. Jitter may rescue it or
  // the build falls back to the complete graph; either way every consecutive
  // pair must be connected (they are Delaunay neighbors of the jittered set).
  for (int i = 0; i + 1 < 8; ++i) EXPECT_TRUE(dt.has_edge(i, i + 1));
}

TEST(Delaunay, CoincidentPointsSurvive) {
  std::vector<Vec> pts = random_points(10, 2, 5);
  pts.push_back(pts[0]);  // exact duplicate
  pts.push_back(pts[3]);
  const DelaunayGraph dt = delaunay_graph(pts);
  EXPECT_EQ(static_cast<int>(dt.nbrs.size()), 12);
  // Duplicates must be adjacent to their twin (nearest neighbor is always a
  // DT neighbor).
  EXPECT_TRUE(dt.has_edge(0, 10));
  EXPECT_TRUE(dt.has_edge(3, 11));
}

TEST(Delaunay, DeterministicAcrossRuns) {
  const auto pts = random_points(30, 3, 42);
  const DelaunayGraph a = delaunay_graph(pts);
  const DelaunayGraph b = delaunay_graph(pts);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Delaunay, NearestNeighborIsAlwaysDTNeighbor) {
  // Classic property: each point's nearest neighbor is a Delaunay neighbor.
  for (int dim = 2; dim <= 4; ++dim) {
    const auto pts = random_points(40, dim, 700u + static_cast<std::uint64_t>(dim));
    const DelaunayGraph dt = delaunay_graph(pts);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      int nn = -1;
      double best = 1e300;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i == j) continue;
        const double d = pts[i].distance2(pts[j]);
        if (d < best) {
          best = d;
          nn = static_cast<int>(j);
        }
      }
      EXPECT_TRUE(dt.has_edge(static_cast<int>(i), nn)) << "dim=" << dim << " i=" << i;
    }
  }
}

// ---------- walk kernel vs original linear-scan kernel ----------
//
// The hint-seeded visibility walk replaced the exhaustive per-insert conflict
// scan; these tests pin the two kernels against each other (and, where small
// enough, against the brute-force oracle) on random and adversarial inputs.

std::pair<DelaunayGraph, DelaunayGraph> both_kernels(std::span<const Vec> pts,
                                                     DelaunayOptions opts = {}) {
  opts.force_linear_scan = false;
  const DelaunayGraph walk = delaunay_graph(pts, opts);
  opts.force_linear_scan = true;
  const DelaunayGraph linear = delaunay_graph(pts, opts);
  return {walk, linear};
}

TEST(DelaunayWalk, MatchesLinearScanRandom) {
  for (int dim = 2; dim <= 4; ++dim) {
    for (int n : {10, 40, 120}) {
      const auto pts =
          random_points(n, dim, 9000u + static_cast<std::uint64_t>(dim) * 31 +
                                    static_cast<std::uint64_t>(n));
      const auto [walk, linear] = both_kernels(pts);
      EXPECT_EQ(walk.complete_graph_fallback, linear.complete_graph_fallback)
          << "dim=" << dim << " n=" << n;
      EXPECT_EQ(walk.edges, linear.edges) << "dim=" << dim << " n=" << n;
    }
  }
}

TEST(DelaunayWalk, MatchesLinearScanAndOracleSmall) {
  // Small enough for the O(n^(d+2)) oracle: all three implementations agree.
  for (int dim = 2; dim <= 4; ++dim) {
    const auto pts = random_points(14, dim, 7100u + static_cast<std::uint64_t>(dim));
    const auto [walk, linear] = both_kernels(pts);
    ASSERT_FALSE(walk.complete_graph_fallback);
    const auto oracle = brute_force_delaunay_edges(pts);
    EXPECT_EQ(walk.edges, oracle) << "dim=" << dim;
    EXPECT_EQ(linear.edges, oracle) << "dim=" << dim;
  }
}

TEST(DelaunayWalk, MatchesLinearScanCosphericalGrid) {
  // Perfect grids are maximally degenerate (co-circular / co-spherical
  // quadruples everywhere), so every insertion lands on a jittered
  // near-tie -- the worst case for a walk that reasons about conflict signs.
  std::vector<Vec> grid2;
  for (int r = 0; r < 7; ++r)
    for (int c = 0; c < 7; ++c)
      grid2.push_back(Vec{static_cast<double>(c), static_cast<double>(r)});
  std::vector<Vec> grid3;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z)
        grid3.push_back(Vec{static_cast<double>(x), static_cast<double>(y),
                            static_cast<double>(z)});
  {
    const auto [walk, linear] = both_kernels(grid2);
    EXPECT_EQ(walk.complete_graph_fallback, linear.complete_graph_fallback);
    EXPECT_EQ(walk.edges, linear.edges);
  }
  // In 3D the default 1e-9 jitter leaves some in-sphere values below the
  // floating-point noise floor. There neither kernel is a reliable DT (the
  // original exhaustive scan included -- it can collect conflict cells
  // disconnected, in the inexact arithmetic, from the seed's region and
  // still pass the cavity-consistency check), so exact equivalence is
  // asserted with a jitter large enough to make every predicate decisive,
  // and under the default jitter only like-for-like behavior is required:
  // both kernels build without hitting the complete-graph fallback.
  {
    DelaunayOptions decisive;
    decisive.jitter_rel = 1e-6;
    const auto [walk, linear] = both_kernels(grid3, decisive);
    ASSERT_FALSE(walk.complete_graph_fallback);
    EXPECT_EQ(walk.edges, linear.edges);
  }
  {
    const auto [walk, linear] = both_kernels(grid3);
    EXPECT_EQ(walk.complete_graph_fallback, linear.complete_graph_fallback);
  }
}

TEST(DelaunayWalk, MatchesLinearScanNearDuplicates) {
  // Clusters of points 1e-13 apart: conflict regions collapse to slivers and
  // the walk must still terminate and agree with the exhaustive scan.
  for (int dim = 2; dim <= 3; ++dim) {
    auto pts = random_points(20, dim, 8200u + static_cast<std::uint64_t>(dim));
    const std::size_t base = pts.size();
    for (std::size_t i = 0; i < 6; ++i) {
      Vec p = pts[i];
      p[static_cast<int>(i) % dim] += 1e-13;
      pts.push_back(p);
    }
    ASSERT_EQ(pts.size(), base + 6);
    const auto [walk, linear] = both_kernels(pts);
    EXPECT_EQ(walk.complete_graph_fallback, linear.complete_graph_fallback) << "dim=" << dim;
    EXPECT_EQ(walk.edges, linear.edges) << "dim=" << dim;
  }
}

TEST(DelaunayWalk, MatchesLinearScanThroughJitterRetry) {
  // A grid with an absurdly small initial jitter forces the build through the
  // retry path (jitter grows 1000x per attempt); both kernels must walk the
  // same retry sequence and land on the same graph.
  std::vector<Vec> pts;
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 5; ++c)
      pts.push_back(Vec{static_cast<double>(c), static_cast<double>(r)});
  DelaunayOptions opts;
  opts.jitter_rel = 1e-18;
  const auto [walk, linear] = both_kernels(pts, opts);
  EXPECT_EQ(walk.complete_graph_fallback, linear.complete_graph_fallback);
  EXPECT_EQ(walk.edges, linear.edges);
}

TEST(DelaunayWalk, TriangulationEdgeSetsAgreeAcrossLocateModes) {
  // Same point set through the Triangulation class directly, once per locate
  // mode: identical finite edge sets and both satisfy the empty-circumsphere
  // property.
  for (int dim = 2; dim <= 4; ++dim) {
    const auto pts = random_points(60, dim, 6400u + static_cast<std::uint64_t>(dim));
    Triangulation walk;
    walk.set_locate_mode(Triangulation::LocateMode::kWalk);
    ASSERT_TRUE(walk.build(pts));
    Triangulation linear;
    linear.set_locate_mode(Triangulation::LocateMode::kLinearScan);
    ASSERT_TRUE(linear.build(pts));
    EXPECT_EQ(walk.finite_edges(), linear.finite_edges()) << "dim=" << dim;
    EXPECT_TRUE(walk.empty_circumsphere_property()) << "dim=" << dim;
  }
}

TEST(DelaunayWalk, LocateConflictAgreesWithLinearOnConflictExistence) {
  // locate_conflict must find *a* conflicting cell exactly when the
  // exhaustive scan finds one (the specific cell may differ; the Bowyer-
  // Watson flood regionalizes from any seed).
  const auto pts = random_points(80, 2, 3300);
  Triangulation tri;
  ASSERT_TRUE(tri.build(pts));
  Triangulation ref;
  ref.set_locate_mode(Triangulation::LocateMode::kLinearScan);
  ASSERT_TRUE(ref.build(pts));
  const auto queries = random_points(200, 2, 3301, /*scale=*/1.4);  // some outside the hull
  for (const Vec& q : queries) {
    const int a = tri.locate_conflict(q);
    const int b = ref.locate_conflict(q);
    EXPECT_EQ(a >= 0, b >= 0);
    if (a >= 0) {
      EXPECT_TRUE(tri.cells()[static_cast<std::size_t>(a)].alive);
    }
  }
}

// ---------- incremental maintenance (DynamicDelaunay) ----------

using Key = DynamicDelaunay::Key;

// The oracle contract: an incrementally maintained instance must be
// structurally equal (same neighbor sets for every key) to a fresh instance
// assigned the same logical point set -- which runs a full from-scratch
// build over bit-identical jittered coordinates.
void expect_matches_oracle(DynamicDelaunay& dyn, const std::map<Key, Vec>& shadow, int dim,
                           const DelaunayOptions& opts, const char* where,
                           bool check_spheres = true) {
  const std::vector<std::pair<Key, Vec>> pts(shadow.begin(), shadow.end());
  DynamicDelaunay oracle(dim, opts);
  oracle.assign(pts);
  ASSERT_EQ(dyn.size(), oracle.size()) << where;
  for (const auto& [k, p] : shadow)
    ASSERT_EQ(dyn.neighbors(k), oracle.neighbors(k)) << where << " key=" << k << " dim=" << dim;
  // The direct geometric check only makes sense when jitter was decisive:
  // on exactly-degenerate inputs (cospherical grids) the in_sphere residuals
  // are of jitter magnitude, above the strict tolerance no matter how the
  // set is triangulated, so callers opt out and rely on oracle equality.
  if (check_spheres && dyn.has_triangulation() && dyn.jitter_level() == 0) {
    ASSERT_TRUE(dyn.triangulation().empty_circumsphere_property()) << where << " dim=" << dim;
  }
}

TEST(IncrementalDelaunay, InsertOnlyMatchesFromScratch) {
  for (int dim : {2, 3}) {
    const auto pts = random_points(40, dim, 9000u + static_cast<std::uint64_t>(dim));
    DynamicDelaunay dyn(dim);
    std::map<Key, Vec> shadow;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      const Key k = 1000 + i * 7;  // non-contiguous keys on purpose
      dyn.insert(k, pts[static_cast<std::size_t>(i)]);
      shadow.emplace(k, pts[static_cast<std::size_t>(i)]);
    }
    expect_matches_oracle(dyn, shadow, dim, {}, "insert-only");
    EXPECT_EQ(dyn.stats().full_rebuilds, 0u) << "dim=" << dim;
  }
}

TEST(IncrementalDelaunay, RemoveMatchesFromScratch) {
  for (int dim : {2, 3}) {
    const auto pts = random_points(36, dim, 9100u + static_cast<std::uint64_t>(dim));
    DynamicDelaunay dyn(dim);
    std::map<Key, Vec> shadow;
    std::vector<std::pair<Key, Vec>> init;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      init.emplace_back(i, pts[static_cast<std::size_t>(i)]);
      shadow.emplace(i, pts[static_cast<std::size_t>(i)]);
    }
    dyn.assign(init);
    // Remove in a scrambled order, all the way below the triangulable size,
    // checking against the oracle at every step (hull vertices included).
    Rng rng(4242);
    while (!shadow.empty()) {
      auto it = shadow.begin();
      std::advance(it, rng.uniform_index(static_cast<int>(shadow.size())));
      const Key victim = it->first;
      shadow.erase(it);
      dyn.remove(victim);
      expect_matches_oracle(dyn, shadow, dim, {}, "remove");
    }
  }
}

TEST(IncrementalDelaunay, MoveNudgesTakeTheEarlyOut) {
  // VPoD adjustment regime: small interior nudges. Most moves must realize
  // as the in-place early-out, and equality with the oracle must hold
  // regardless of which path fired.
  for (int dim : {2, 3}) {
    const auto pts = random_points(30, dim, 9200u + static_cast<std::uint64_t>(dim));
    DynamicDelaunay dyn(dim);
    std::map<Key, Vec> shadow;
    std::vector<std::pair<Key, Vec>> init;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      init.emplace_back(i, pts[static_cast<std::size_t>(i)]);
      shadow.emplace(i, pts[static_cast<std::size_t>(i)]);
    }
    dyn.assign(init);
    Rng rng(515u + static_cast<std::uint64_t>(dim));
    for (int op = 0; op < 120; ++op) {
      const Key k = rng.uniform_index(static_cast<int>(shadow.size()));
      Vec p = shadow.at(k);
      for (int c = 0; c < dim; ++c) p[c] += rng.uniform(-0.004, 0.004);
      shadow[k] = p;
      dyn.move(k, p);
      if (op % 10 == 9) expect_matches_oracle(dyn, shadow, dim, {}, "nudge");
    }
    const DynamicDtStats s = dyn.stats();
    EXPECT_EQ(s.moves, 120u);
    // Hull vertices certify through the ridge-convexity conditions, which
    // decline more often than interior in-sphere certificates do, and small
    // 3D sets have fat hulls -- so demand a majority only of the 2D moves.
    EXPECT_GT(s.move_early_outs, dim == 2 ? s.moves / 2 : s.moves / 3)
        << "dim=" << dim << ": tiny interior nudges should rarely flip topology";
    EXPECT_EQ(s.full_rebuilds, 0u) << "dim=" << dim;
  }
}

TEST(IncrementalDelaunay, RandomOpFuzzMatchesOracle) {
  // The main pin: randomized insert/remove/move schedules, walk and
  // linear-scan kernels, 2D and 3D, checked against the from-scratch oracle
  // throughout. Moves mix small nudges with teleports (which exercise the
  // remove+reinsert path and hull changes).
  for (const bool linear_scan : {false, true}) {
    DelaunayOptions opts;
    opts.force_linear_scan = linear_scan;
    for (int dim : {2, 3}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(0xF00Du * seed + static_cast<std::uint64_t>(dim));
        DynamicDelaunay dyn(dim, opts);
        std::map<Key, Vec> shadow;
        Key next_key = 0;
        const auto random_pos = [&] {
          Vec p(dim);
          for (int c = 0; c < dim; ++c) p[c] = rng.uniform(0.0, 1.0);
          return p;
        };
        for (int op = 0; op < 160; ++op) {
          const double r = rng.uniform();
          if (shadow.empty() || (r < 0.35 && shadow.size() < 48)) {
            const Vec p = random_pos();
            dyn.insert(next_key, p);
            shadow.emplace(next_key, p);
            ++next_key;
          } else if (r < 0.55) {
            auto it = shadow.begin();
            std::advance(it, rng.uniform_index(static_cast<int>(shadow.size())));
            dyn.remove(it->first);
            shadow.erase(it);
          } else {
            auto it = shadow.begin();
            std::advance(it, rng.uniform_index(static_cast<int>(shadow.size())));
            Vec p = it->second;
            if (rng.bernoulli(0.3)) {
              p = random_pos();  // teleport
            } else {
              for (int c = 0; c < dim; ++c) p[c] += rng.uniform(-0.01, 0.01);
            }
            it->second = p;
            dyn.move(it->first, p);
          }
          if (op % 8 == 7)
            expect_matches_oracle(dyn, shadow, dim, opts, linear_scan ? "fuzz/linear" : "fuzz/walk");
        }
        expect_matches_oracle(dyn, shadow, dim, opts, "fuzz/final");
      }
    }
  }
}

TEST(IncrementalDelaunay, DegenerateGridSurvivesChurn) {
  // Cocircular/cospherical grids defeat the base jitter; the escalation
  // ladder (and, failing that, the complete-graph fallback) must keep the
  // incremental instance consistent with the from-scratch oracle.
  for (int dim : {2, 3}) {
    DynamicDelaunay dyn(dim);
    std::map<Key, Vec> shadow;
    Key k = 0;
    const int side = dim == 2 ? 5 : 3;
    for (int x = 0; x < side; ++x)
      for (int y = 0; y < side; ++y)
        for (int z = 0; z < (dim == 2 ? 1 : side); ++z) {
          Vec p(dim);
          p[0] = x;
          p[1] = y;
          if (dim == 3) p[2] = z;
          dyn.insert(k, p);
          shadow.emplace(k, p);
          ++k;
        }
    expect_matches_oracle(dyn, shadow, dim, {}, "grid/full", /*check_spheres=*/false);
    // Remove a few lattice points and nudge one off the lattice.
    for (Key victim : {0, 7, 3}) {
      dyn.remove(victim);
      shadow.erase(victim);
      expect_matches_oracle(dyn, shadow, dim, {}, "grid/remove", /*check_spheres=*/false);
    }
    Vec p = shadow.at(5);
    p[0] += 0.25;
    shadow[5] = p;
    dyn.move(5, p);
    expect_matches_oracle(dyn, shadow, dim, {}, "grid/move", /*check_spheres=*/false);
  }
}

TEST(IncrementalDelaunay, CollinearStaysInCompleteFallback) {
  // Affinely degenerate input (rank < dim even after jitter escalation is
  // irrelevant -- collinear 2D points still triangulate after jitter, but a
  // *duplicate-heavy* tiny set may not). Below dim+2 points the instance
  // must report the complete graph, exactly like delaunay_graph().
  DynamicDelaunay dyn(3);
  std::map<Key, Vec> shadow;
  for (Key i = 0; i < 4; ++i) {  // 4 points < dim + 2 = 5
    Vec p{static_cast<double>(i), 0.0, 0.0};
    dyn.insert(i, p);
    shadow.emplace(i, p);
  }
  EXPECT_FALSE(dyn.has_triangulation());
  for (Key i = 0; i < 4; ++i) {
    std::vector<Key> want;
    for (Key j = 0; j < 4; ++j)
      if (j != i) want.push_back(j);
    EXPECT_EQ(dyn.neighbors(i), want);
  }
  // A fifth collinear point makes n = dim+2 but leaves the set affinely
  // degenerate beyond what jitter can fix at every ladder level... except
  // that jitter in 3D does break collinearity. Either way: oracle equality.
  dyn.insert(4, Vec{4.0, 0.0, 0.0});
  shadow.emplace(4, Vec{4.0, 0.0, 0.0});
  expect_matches_oracle(dyn, shadow, 3, {}, "collinear");
}

TEST(IncrementalDelaunay, NearCollinearMovesMatchOracle) {
  // Near-degenerate motion: points strung along a line with tiny lateral
  // offsets, sliding mostly lengthwise. Every triangle is a sliver, so the
  // move certificate operates right at the predicate tolerance and any of
  // the three outcomes (early-out, per-point repair, rebuild) can fire --
  // correctness must come from oracle equality regardless. The in-sphere
  // residuals are of offset magnitude, so the direct geometric check is
  // opted out exactly like the cocircular-grid test.
  for (int dim : {2, 3}) {
    DynamicDelaunay dyn(dim);
    std::map<Key, Vec> shadow;
    Rng rng(9300u + static_cast<std::uint64_t>(dim));
    const int n = 14;
    for (Key i = 0; i < n; ++i) {
      Vec p(dim);
      p[0] = static_cast<double>(i);
      for (int c = 1; c < dim; ++c) p[c] = rng.uniform(-1e-4, 1e-4);
      dyn.insert(i, p);
      shadow.emplace(i, p);
    }
    expect_matches_oracle(dyn, shadow, dim, {}, "near-collinear/build", /*check_spheres=*/false);
    for (int op = 0; op < 40; ++op) {
      const Key k = rng.uniform_index(n);
      Vec p = shadow.at(k);
      p[0] += rng.uniform(-0.3, 0.3);
      for (int c = 1; c < dim; ++c) p[c] += rng.uniform(-1e-4, 1e-4);
      shadow[k] = p;
      dyn.move(k, p);
      expect_matches_oracle(dyn, shadow, dim, {}, "near-collinear/move", /*check_spheres=*/false);
    }
  }
}

TEST(IncrementalDelaunay, RemoveAndReinsertJustMovedKey) {
  // A key that moves and is then removed (or removed and re-added) must not
  // leave stale slot/index state behind. Exercised per-op and through a
  // single apply_diff batch where the same key appears in moves, removes
  // and inserts at once -- the batch's remove-before-insert ordering makes
  // that legal, and the net effect must equal teleporting the key.
  for (int dim : {2, 3}) {
    const int n = 24;
    const auto pts = random_points(n, dim, 9400u + static_cast<std::uint64_t>(dim));
    DynamicDelaunay dyn(dim);
    std::map<Key, Vec> shadow;
    std::vector<std::pair<Key, Vec>> init;
    for (int i = 0; i < n; ++i) {
      init.emplace_back(i, pts[static_cast<std::size_t>(i)]);
      shadow.emplace(i, pts[static_cast<std::size_t>(i)]);
    }
    dyn.assign(init);
    Rng rng(606u + static_cast<std::uint64_t>(dim));
    for (int round = 0; round < 10; ++round) {
      const Key k = rng.uniform_index(n);
      Vec p = shadow.at(k);
      for (int c = 0; c < dim; ++c) p[c] += rng.uniform(-0.01, 0.01);
      dyn.move(k, p);  // shadow intentionally not updated: the key dies next
      dyn.remove(k);
      shadow.erase(k);
      expect_matches_oracle(dyn, shadow, dim, {}, "move-then-remove");
      Vec q(dim);
      for (int c = 0; c < dim; ++c) q[c] = rng.uniform(0.0, 1.0);
      dyn.insert(k, q);
      shadow.emplace(k, q);
      expect_matches_oracle(dyn, shadow, dim, {}, "move-then-reinsert");
    }
    for (int round = 0; round < 6; ++round) {
      const Key k = rng.uniform_index(n);
      Vec mid = shadow.at(k);
      mid[0] += 0.02;
      Vec fin(dim);
      for (int c = 0; c < dim; ++c) fin[c] = rng.uniform(0.0, 1.0);
      const Key rem[] = {k};
      const std::pair<Key, Vec> ins[] = {{k, fin}};
      const std::pair<Key, Vec> mov[] = {{k, mid}};
      dyn.apply_diff(rem, ins, mov);
      shadow[k] = fin;
      expect_matches_oracle(dyn, shadow, dim, {}, "diff/move+remove+insert");
    }
  }
}

TEST(IncrementalDelaunay, HullRidgeCertificateOnQuadHull) {
  // Smallest triangulable 2D instance where every vertex is a hull vertex:
  // a non-cocircular quad. A hull move that keeps the hull locally convex
  // at both ridges incident to the vertex (and every in-sphere certificate)
  // must take the early-out; dragging the same vertex inside the triangle
  // of the other three breaks ridge convexity and must go through repair.
  // Both paths land on the oracle.
  DynamicDelaunay dyn(2);
  std::map<Key, Vec> shadow;
  const std::vector<std::pair<Key, Vec>> init = {
      {0, Vec{0.0, 0.0}}, {1, Vec{2.0, 0.1}}, {2, Vec{2.2, 1.3}}, {3, Vec{-0.1, 1.0}}};
  for (const auto& [k, p] : init) shadow.emplace(k, p);
  dyn.assign(init);
  ASSERT_TRUE(dyn.has_triangulation());

  const Vec out{2.26, 1.34};  // slightly outward: hull stays convex
  shadow[2] = out;
  dyn.move(2, out);
  const DynamicDtStats s1 = dyn.stats();
  EXPECT_EQ(s1.moves, 1u);
  EXPECT_EQ(s1.move_early_outs, 1u) << "convex hull nudge must certify in place";
  expect_matches_oracle(dyn, shadow, 2, {}, "quad/convex-nudge");

  const Vec in{0.9, 0.45};  // inside triangle {0,1,3}: hull loses the vertex
  shadow[2] = in;
  dyn.move(2, in);
  const DynamicDtStats s2 = dyn.stats();
  EXPECT_EQ(s2.moves, 2u);
  EXPECT_EQ(s2.move_early_outs, 1u) << "concave drag must not certify";
  // Repairing a declined hull move means removing the hull vertex first, and
  // on a minimum-size complex its link (two points) is below the
  // triangulable floor -- the repair path here IS the full rebuild.
  EXPECT_EQ(s2.full_rebuilds, 1u);
  expect_matches_oracle(dyn, shadow, 2, {}, "quad/concave-drag");

  // Back out (through repair -- the star changed shape), then one more
  // outward nudge, which certifies again once the hull is restored.
  shadow[2] = out;
  dyn.move(2, out);
  expect_matches_oracle(dyn, shadow, 2, {}, "quad/restore");
  const Vec out2{2.3, 1.38};
  shadow[2] = out2;
  dyn.move(2, out2);
  const DynamicDtStats s3 = dyn.stats();
  EXPECT_EQ(s3.moves, 4u);
  EXPECT_GE(s3.move_early_outs, 2u) << "restored hull must certify small convex nudges";
  expect_matches_oracle(dyn, shadow, 2, {}, "quad/convex-again");
  EXPECT_EQ(s3.full_rebuilds, 1u) << "only the concave drag may rebuild";
}

TEST(IncrementalDelaunay, VertexSlotsAreReused) {
  // Long churn must not grow point storage monotonically: removed vertex
  // slots are recycled by later inserts.
  DynamicDelaunay dyn(2);
  Rng rng(77);
  std::map<Key, Vec> shadow;
  Key next_key = 0;
  for (Key i = 0; i < 20; ++i) {
    Vec p{rng.uniform(), rng.uniform()};
    dyn.insert(next_key, p);
    shadow.emplace(next_key, p);
    ++next_key;
  }
  for (int round = 0; round < 50; ++round) {
    auto it = shadow.begin();
    std::advance(it, rng.uniform_index(static_cast<int>(shadow.size())));
    dyn.remove(it->first);
    shadow.erase(it);
    Vec p{rng.uniform(), rng.uniform()};
    dyn.insert(next_key, p);
    shadow.emplace(next_key, p);
    ++next_key;
  }
  ASSERT_TRUE(dyn.has_triangulation());
  EXPECT_EQ(dyn.triangulation().live_points(), 20);
  EXPECT_LE(dyn.triangulation().jittered_points().size(), 24u)
      << "removed slots must be recycled, not leaked";
  expect_matches_oracle(dyn, shadow, 2, {}, "slot-reuse");
}

}  // namespace
}  // namespace gdvr::geom
