// Tests for the lossy link model, obstacles, and topology generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "radio/link_model.hpp"
#include "radio/topology.hpp"

namespace gdvr::radio {
namespace {

TEST(LinkModel, PathLossMonotoneInDistance) {
  LinkModelParams p;
  double prev = path_loss_db(p, 1.0);
  for (double d = 2.0; d < 200.0; d *= 1.5) {
    const double pl = path_loss_db(p, d);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(LinkModel, PrrMonotoneInSnr) {
  LinkModelParams p;
  double prev = 0.0;
  for (double snr = -5.0; snr <= 30.0; snr += 1.0) {
    const double r = prr_from_snr_db(p, snr);
    EXPECT_GE(r, prev);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    prev = r;
  }
  EXPECT_GT(prr_from_snr_db(p, 30.0), 0.99);
  EXPECT_LT(prr_from_snr_db(p, -5.0), 0.01);
}

TEST(LinkModel, TransitionalRegionExists) {
  // There must be distances where PRR is neither ~0 nor ~1 (the lossy links
  // that make ETX interesting). The deterministic curve has a narrow
  // transitional band...
  LinkModelParams p;
  int transitional = 0;
  for (double d = 1.0; d < 60.0; d += 0.05) {
    const double r = prr(p, d, 0.0, 0.0, 0.0);
    if (r > 0.1 && r < 0.9) ++transitional;
  }
  EXPECT_GE(transitional, 3);
  // ...and log-normal shadowing widens it substantially: with random shadow
  // draws, a sizable fraction of admitted links (PRR > 0.1) must be lossy.
  Rng rng(2);
  int admitted = 0, lossy = 0;
  for (int i = 0; i < 5000; ++i) {
    const double d = rng.uniform(1.0, 40.0);
    const double r = prr(p, d, rng.normal(0.0, p.shadow_sigma_db), 0.0, 0.0);
    if (r > 0.1) {
      ++admitted;
      if (r < 0.9) ++lossy;
    }
  }
  ASSERT_GT(admitted, 100);
  EXPECT_GT(static_cast<double>(lossy) / admitted, 0.1);
}

TEST(LinkModel, MaxLinkDistanceIsSafeBound) {
  LinkModelParams p;
  const double d_max = max_link_distance(p, 0.1);
  EXPECT_GT(d_max, 1.0);
  // Even with a very lucky draw (-4 sigma shadow, +3 sigma hardware), beyond
  // d_max the PRR must not exceed the threshold.
  const double margin = 4.0 * p.shadow_sigma_db + 3.0 * (p.tx_power_var_db + p.noise_var_db);
  const double snr = p.tx_power_dbm + margin - path_loss_db(p, d_max * 1.01) - p.noise_floor_dbm;
  EXPECT_LE(prr_from_snr_db(p, snr), 0.1 + 1e-6);
}

// ---------- obstacles ----------

TEST(Obstacle, ContainsAndBlocks) {
  const Obstacle o{10, 10, 20, 20};
  EXPECT_TRUE(o.contains(Vec{15, 15}));
  EXPECT_TRUE(o.contains(Vec{10, 10}));  // boundary counts
  EXPECT_FALSE(o.contains(Vec{9.9, 15}));
  // Segment passing straight through.
  EXPECT_TRUE(o.blocks(Vec{0, 15}, Vec{30, 15}));
  // Segment ending inside.
  EXPECT_TRUE(o.blocks(Vec{0, 0}, Vec{15, 15}));
  // Segment to the side.
  EXPECT_FALSE(o.blocks(Vec{0, 0}, Vec{30, 0}));
  EXPECT_FALSE(o.blocks(Vec{0, 25}, Vec{30, 25}));
  // Diagonal clipping a corner.
  EXPECT_TRUE(o.blocks(Vec{5, 15}, Vec{15, 25}));
  // Diagonal just missing the corner.
  EXPECT_FALSE(o.blocks(Vec{0, 29}, Vec{29, 29}));
}

TEST(Obstacle, RandomObstaclesInsideArea) {
  Rng rng(3);
  const auto obs = random_obstacles(10, 10.0, 100.0, 80.0, rng);
  ASSERT_EQ(obs.size(), 10u);
  for (const Obstacle& o : obs) {
    EXPECT_GE(o.x0, 0.0);
    EXPECT_LE(o.x1, 100.0);
    EXPECT_GE(o.y0, 0.0);
    EXPECT_LE(o.y1, 80.0);
    EXPECT_NEAR(o.x1 - o.x0, 10.0, 1e-12);
    EXPECT_NEAR(o.y1 - o.y0, 10.0, 1e-12);
  }
}

// ---------- topology generation ----------

TEST(Topology, DeterministicForSeed) {
  TopologyConfig c;
  c.n = 80;
  c.seed = 11;
  const Topology a = make_random_topology(c);
  const Topology b = make_random_topology(c);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.positions[static_cast<std::size_t>(i)], b.positions[static_cast<std::size_t>(i)]);
  EXPECT_EQ(a.etx.edge_count(), b.etx.edge_count());
}

TEST(Topology, EtxAtLeastOneAndMatchesAdjacency) {
  TopologyConfig c;
  c.n = 100;
  c.seed = 5;
  const Topology t = make_random_topology(c);
  for (int u = 0; u < t.size(); ++u) {
    EXPECT_EQ(t.etx.degree(u), t.hops.degree(u));
    for (const graph::Edge& e : t.etx.neighbors(u)) {
      EXPECT_GE(e.cost, 1.0);       // ETX = 1/PRR >= 1
      EXPECT_LE(e.cost, 1.0 / 0.1 + 1e-9);  // PRR > 0.1 admission
      EXPECT_TRUE(t.etx.has_edge(e.to, u));  // links bidirectional
    }
  }
}

TEST(Topology, EtxIsAsymmetric) {
  TopologyConfig c;
  c.n = 120;
  c.seed = 8;
  const Topology t = make_random_topology(c);
  int asymmetric = 0, total = 0;
  for (int u = 0; u < t.size(); ++u)
    for (const graph::Edge& e : t.etx.neighbors(u)) {
      if (u > e.to) continue;
      ++total;
      if (std::fabs(e.cost - t.etx.link_cost(e.to, u)) > 1e-9) ++asymmetric;
    }
  ASSERT_GT(total, 0);
  EXPECT_GT(asymmetric, total / 2);  // hardware variance makes most links asymmetric
}

TEST(Topology, LargestComponentIsConnected) {
  TopologyConfig c;
  c.n = 100;
  c.seed = 21;
  const Topology t = make_random_topology(c);
  const auto hops = graph::bfs_hops(t.hops, 0);
  for (int h : hops) EXPECT_GE(h, 0);
}

TEST(Topology, DegreeCalibrationHitsTarget) {
  TopologyConfig c;
  c.n = 200;
  c.seed = 7;
  c.target_avg_degree = 14.5;
  const Topology t = make_random_topology(c);
  EXPECT_NEAR(t.etx.average_degree(), 14.5, 2.0);
}

TEST(Topology, ObstaclesBlockLinksAndPlacement) {
  TopologyConfig c;
  c.n = 150;
  c.seed = 9;
  c.num_obstacles = 4;
  c.obstacle_size_m = 10.0;
  const Topology t = make_random_topology(c);
  ASSERT_EQ(t.obstacles.size(), 4u);
  for (const Vec& p : t.positions)
    for (const Obstacle& o : t.obstacles) EXPECT_FALSE(o.contains(p));
  for (int u = 0; u < t.size(); ++u)
    for (const graph::Edge& e : t.etx.neighbors(u))
      for (const Obstacle& o : t.obstacles)
        EXPECT_FALSE(o.blocks(t.positions[static_cast<std::size_t>(u)],
                              t.positions[static_cast<std::size_t>(e.to)]));
}

TEST(Topology, GridShape) {
  const Topology g = make_grid(11, 11, 1.0);
  EXPECT_EQ(g.size(), 121);
  // Interior nodes have 4 neighbors; corners 2; edges 3.
  EXPECT_EQ(g.hops.degree(0), 2);       // corner
  EXPECT_EQ(g.hops.degree(5), 3);       // top edge
  EXPECT_EQ(g.hops.degree(5 * 11 + 5), 4);  // center
  // All grid links are ideal.
  for (const graph::Edge& e : g.etx.neighbors(60)) EXPECT_DOUBLE_EQ(e.cost, 1.0);
}

TEST(Topology, GridDiagonalFactor) {
  const Topology g = make_grid(5, 5, 2.0, 1.5);
  // factor 1.5 x spacing includes diagonals: interior degree 8.
  EXPECT_EQ(g.hops.degree(2 * 5 + 2), 8);
}

TEST(Topology, ScalingKeepsDensity) {
  // The paper scales the area with N to keep average degree at 14.5.
  TopologyConfig c;
  c.seed = 13;
  c.target_avg_degree = 14.5;
  for (int n : {100, 400}) {
    c.n = n;
    const double scale = std::sqrt(n / 200.0);
    c.width_m = 100.0 * scale;
    c.height_m = 100.0 * scale;
    const Topology t = make_random_topology(c);
    EXPECT_NEAR(t.etx.average_degree(), 14.5, 2.5) << "n=" << n;
  }
}

// ---------- spatial-grid scan vs all-pairs oracle ----------

namespace {

// Full structural equality of two metric graphs: same adjacency order, same
// costs bit for bit. The grid scan must not merely be statistically similar
// to the O(n^2) oracle -- it realizes the exact same links because per-pair
// randomness is keyed on (seed, i, j), not on enumeration order.
void expect_same_graph(const graph::Graph& a, const graph::Graph& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (int u = 0; u < a.size(); ++u) {
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << what << " node " << u;
    for (std::size_t k = 0; k < na.size(); ++k) {
      EXPECT_EQ(na[k].to, nb[k].to) << what << " node " << u;
      EXPECT_EQ(na[k].cost, nb[k].cost) << what << " node " << u << " -> " << na[k].to;
    }
  }
}

void expect_scan_modes_agree(TopologyConfig c) {
  c.link_scan = LinkScanMode::kGrid;
  const Topology grid = make_random_topology(c);
  c.link_scan = LinkScanMode::kAllPairs;
  const Topology oracle = make_random_topology(c);
  ASSERT_EQ(grid.size(), oracle.size());
  for (int i = 0; i < grid.size(); ++i)
    EXPECT_EQ(grid.positions[static_cast<std::size_t>(i)],
              oracle.positions[static_cast<std::size_t>(i)]);
  expect_same_graph(grid.etx, oracle.etx, "etx");
  expect_same_graph(grid.hops, oracle.hops, "hops");
  expect_same_graph(grid.ett, oracle.ett, "ett");
  expect_same_graph(grid.energy, oracle.energy, "energy");
}

}  // namespace

TEST(Topology, GridScanMatchesAllPairsAcrossSeeds) {
  TopologyConfig c;
  c.n = 200;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    c.seed = seed;
    expect_scan_modes_agree(c);
  }
}

TEST(Topology, GridScanMatchesAllPairsIn3d) {
  TopologyConfig c;
  c.n = 150;
  c.seed = 7;
  c.space_dim = 3;
  expect_scan_modes_agree(c);
}

TEST(Topology, GridScanMatchesAllPairsWithObstacles) {
  TopologyConfig c;
  c.n = 200;
  c.seed = 42;
  c.num_obstacles = 4;
  expect_scan_modes_agree(c);
}

TEST(Topology, GridScanThreadCountInvariant) {
  // The parallel grid sweep must be bit-identical to a sequential one: chunk
  // boundaries are fixed and per-pair randomness is enumeration-order-free.
  TopologyConfig c;
  c.n = 200;
  c.seed = 17;
  c.link_scan = LinkScanMode::kGrid;

  const char* saved = std::getenv("GDVR_THREADS");
  const std::string saved_copy = saved ? saved : "";
  setenv("GDVR_THREADS", "1", 1);
  const Topology seq = make_random_topology(c);
  setenv("GDVR_THREADS", "4", 1);
  const Topology par = make_random_topology(c);
  if (saved)
    setenv("GDVR_THREADS", saved_copy.c_str(), 1);
  else
    unsetenv("GDVR_THREADS");

  ASSERT_EQ(seq.size(), par.size());
  for (int i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq.positions[static_cast<std::size_t>(i)],
              par.positions[static_cast<std::size_t>(i)]);
  expect_same_graph(seq.etx, par.etx, "etx");
  expect_same_graph(seq.hops, par.hops, "hops");
  expect_same_graph(seq.ett, par.ett, "ett");
  expect_same_graph(seq.energy, par.energy, "energy");
}

}  // namespace
}  // namespace gdvr::radio
