// Tests for the live GDV data plane: packets forwarded through the DES with
// per-node local state.
#include <gtest/gtest.h>

#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"
#include "vpod/live_gdv.hpp"

namespace gdvr::vpod {
namespace {

struct LiveFixture {
  radio::Topology topo;
  sim::Simulator sim;
  std::unique_ptr<mdt::Net> net;
  std::unique_ptr<Vpod> vpod;
  std::unique_ptr<LiveGdv> gdv;

  LiveFixture(int n, std::uint64_t seed, bool use_etx, int settle_periods) {
    radio::TopologyConfig tc;
    tc.n = n;
    tc.seed = seed;
    tc.target_avg_degree = 14.5;
    topo = radio::make_random_topology(tc);
    net = std::make_unique<mdt::Net>(sim, topo.metric_graph(use_etx), 0.01, 0.1, seed);
    VpodConfig vc;
    vc.dim = 3;
    vpod = std::make_unique<Vpod>(*net, vc);
    vpod->start(0);
    gdv = std::make_unique<LiveGdv>(*net, *vpod);  // takes over the receiver
    const double period = vc.join_period_s + vc.adjust_period_s;
    sim.run_until(0.5 + vc.join_period_s + settle_periods * period);
  }
};

TEST(LiveGdv, DeliversAfterConvergence) {
  LiveFixture f(80, 3, /*use_etx=*/true, /*settle_periods=*/10);
  Rng rng(1);
  for (int i = 0; i < 150; ++i) {
    const int s = rng.uniform_index(f.topo.size());
    int t = rng.uniform_index(f.topo.size() - 1);
    if (t >= s) ++t;
    f.gdv->send_packet(s, t);
  }
  f.sim.run_until(f.sim.now() + 30.0);
  EXPECT_GE(f.gdv->delivery_rate(), 0.98);
  EXPECT_GT(f.gdv->mean_delivered_cost(), 1.0);
}

TEST(LiveGdv, LiveCostsMatchOfflineEvaluation) {
  // The offline evaluator snapshots global state; the live plane uses each
  // node's own state. After convergence the two must agree closely.
  LiveFixture f(80, 5, true, 10);
  const auto view = routing::snapshot_overlay(f.vpod->overlay(), f.topo.etx);
  Rng rng(2);
  double live_sum = 0.0, offline_sum = 0.0;
  int counted = 0;
  std::vector<double> offline_costs;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 120; ++i) {
    const int s = rng.uniform_index(f.topo.size());
    int t = rng.uniform_index(f.topo.size() - 1);
    if (t >= s) ++t;
    const auto offline = routing::route_gdv(view, s, t);
    if (!offline.success) continue;
    offline_costs.push_back(offline.cost);
    ids.push_back(f.gdv->send_packet(s, t));
  }
  f.sim.run_until(f.sim.now() + 30.0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& d = f.gdv->status(ids[i]);
    if (!d.delivered) continue;
    live_sum += d.cost;
    offline_sum += offline_costs[i];
    ++counted;
  }
  ASSERT_GT(counted, 100);
  // Mean live cost within 15% of mean offline cost (positions drift only a
  // little between the snapshot and the packets' flight).
  EXPECT_NEAR(live_sum / counted, offline_sum / counted, 0.15 * (offline_sum / counted));
}

TEST(LiveGdv, DeliveryImprovesWithConvergence) {
  auto rate_at = [](int settle) {
    LiveFixture f(80, 7, false, settle);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      const int s = rng.uniform_index(f.topo.size());
      int t = rng.uniform_index(f.topo.size() - 1);
      if (t >= s) ++t;
      f.gdv->send_packet(s, t);
    }
    f.sim.run_until(f.sim.now() + 30.0);
    return f.gdv->delivery_rate();
  };
  const double late = rate_at(10);
  EXPECT_GE(late, 0.95);
}

TEST(LiveGdv, PacketsToSelfDeliverTrivially) {
  LiveFixture f(40, 9, true, 6);
  // s == t: our API still routes; the first forward sees u == target only
  // after a hop, so send to a direct neighbor instead as the trivial case.
  const int s = 0;
  const auto nbrs = f.net->alive_neighbors(s);
  ASSERT_FALSE(nbrs.empty());
  const auto id = f.gdv->send_packet(s, nbrs[0].to);
  f.sim.run_until(f.sim.now() + 10.0);
  EXPECT_TRUE(f.gdv->status(id).delivered);
  EXPECT_GE(f.gdv->status(id).transmissions, 1);
}

TEST(LiveGdv, SurvivesMidFlightChurn) {
  LiveFixture f(100, 11, true, 8);
  Rng rng(4);
  // Inject packets, then immediately kill 10 nodes: in-flight packets whose
  // next hops die are lost, but the system must not crash and later packets
  // must route around.
  for (int i = 0; i < 60; ++i) {
    const int s = rng.uniform_index(f.topo.size());
    int t = rng.uniform_index(f.topo.size() - 1);
    if (t >= s) ++t;
    f.gdv->send_packet(s, t);
  }
  for (int k = 0; k < 10; ++k) f.vpod->fail_node(1 + rng.uniform_index(f.topo.size() - 1));
  f.sim.run_until(f.sim.now() + 60.0);
  // Most packets still deliver (only those crossing dead nodes mid-flight
  // or addressed to dead nodes are lost).
  EXPECT_GE(f.gdv->delivery_rate(), 0.6);
}

}  // namespace
}  // namespace gdvr::vpod
