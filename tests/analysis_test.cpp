// Tests for SVD / PCA and embedding-quality analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/embedding.hpp"
#include "analysis/matrix.hpp"
#include "analysis/svd.hpp"
#include "common/rng.hpp"

namespace gdvr::analysis {
namespace {

Matrix random_matrix(int r, int c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < r; ++i)
    for (int j = 0; j < c; ++j) m.at(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(Matrix, MulAndTranspose) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const auto y = m.mul({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const auto z = m.mul_transpose({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Svd, DiagonalMatrix) {
  Matrix m(3, 3);
  m.at(0, 0) = 3.0;
  m.at(1, 1) = -5.0;  // singular value is |.|
  m.at(2, 2) = 1.0;
  const auto sv = jacobi_singular_values(m);
  ASSERT_EQ(sv.size(), 3u);
  EXPECT_NEAR(sv[0], 5.0, 1e-10);
  EXPECT_NEAR(sv[1], 3.0, 1e-10);
  EXPECT_NEAR(sv[2], 1.0, 1e-10);
}

TEST(Svd, KnownRankOne) {
  // Outer product u v^T has one singular value |u||v|.
  const int n = 8;
  Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = static_cast<double>(i + 1) * (j + 1);
  const auto sv = jacobi_singular_values(m);
  double norm2 = 0.0;
  for (int i = 1; i <= n; ++i) norm2 += static_cast<double>(i) * i;
  EXPECT_NEAR(sv[0], norm2, 1e-8);
  for (std::size_t k = 1; k < sv.size(); ++k) EXPECT_NEAR(sv[k], 0.0, 1e-7);
}

TEST(Svd, FrobeniusNormPreserved) {
  const Matrix m = random_matrix(20, 20, 5);
  const auto sv = jacobi_singular_values(m);
  double frob2 = 0.0;
  for (double x : m.data()) frob2 += x * x;
  double sv2 = 0.0;
  for (double s : sv) sv2 += s * s;
  EXPECT_NEAR(frob2, sv2, 1e-8 * frob2);
}

TEST(Svd, SubspaceIterationMatchesJacobi) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Matrix m = random_matrix(30, 30, seed);
    const auto full = jacobi_singular_values(m);
    const auto top = top_singular_values(m, 5, 120, seed);
    ASSERT_EQ(top.size(), 5u);
    for (int k = 0; k < 5; ++k)
      EXPECT_NEAR(top[static_cast<std::size_t>(k)], full[static_cast<std::size_t>(k)],
                  1e-4 * full[0])
          << "seed=" << seed << " k=" << k;
  }
}

TEST(Svd, NormalizedDividesByLargest) {
  const auto norm = normalized({4.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(norm[0], 1.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.5);
  EXPECT_DOUBLE_EQ(norm[2], 0.25);
  EXPECT_TRUE(normalized({}).empty());
}

TEST(Svd, LowDimCostMatrixHasFewLargeSingularValues) {
  // Distances of points in a 2D box embed (approximately) in low dimension:
  // the first ~3 singular values dominate -- the premise of Figure 9.
  Rng rng(9);
  const int n = 60;
  std::vector<Vec> pts;
  for (int i = 0; i < n; ++i) pts.push_back(Vec{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = pts[static_cast<std::size_t>(i)].distance(pts[static_cast<std::size_t>(j)]);
  const auto sv = normalized(jacobi_singular_values(m));
  EXPECT_LT(sv[4], 0.1);  // 5th singular value tiny relative to the 1st
}

// ---------- embedding quality ----------

TEST(Embedding, PerfectEmbeddingHasZeroError) {
  Rng rng(4);
  std::vector<Vec> pts;
  for (int i = 0; i < 20; ++i) pts.push_back(Vec{rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
  Matrix costs(20, 20);
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j)
      costs.at(i, j) = pts[static_cast<std::size_t>(i)].distance(pts[static_cast<std::size_t>(j)]);
  const auto q = embedding_quality(pts, costs);
  EXPECT_NEAR(q.mean_rel_error, 0.0, 1e-12);
  EXPECT_NEAR(q.stress, 0.0, 1e-12);
  EXPECT_NEAR(q.local_rel_error, 0.0, 1e-12);
  EXPECT_NEAR(q.global_rel_error, 0.0, 1e-12);
}

TEST(Embedding, ScaledEmbeddingHasExpectedError) {
  // Positions at half scale: every estimate is 50% low.
  Rng rng(6);
  std::vector<Vec> pts, half;
  for (int i = 0; i < 15; ++i) {
    const Vec p{rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)};
    pts.push_back(p);
    half.push_back(p * 0.5);
  }
  Matrix costs(15, 15);
  for (int i = 0; i < 15; ++i)
    for (int j = 0; j < 15; ++j)
      costs.at(i, j) = pts[static_cast<std::size_t>(i)].distance(pts[static_cast<std::size_t>(j)]);
  const auto q = embedding_quality(half, costs);
  EXPECT_NEAR(q.mean_rel_error, 0.5, 1e-9);
  EXPECT_NEAR(q.median_rel_error, 0.5, 1e-9);
  EXPECT_NEAR(q.stress, 0.5, 1e-9);
}

TEST(Embedding, CollapsedGlobalStructureShowsInGlobalError) {
  // Paper Figure 2's failure mode: everything near the origin looks fine
  // locally but global distances collapse.
  std::vector<Vec> truth, collapsed;
  for (int i = 0; i < 10; ++i) {
    truth.push_back(Vec{static_cast<double>(i) * 10.0, 0.0});
    collapsed.push_back(Vec{static_cast<double>(i % 2), 0.0});
  }
  Matrix costs(10, 10);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j)
      costs.at(i, j) = truth[static_cast<std::size_t>(i)].distance(truth[static_cast<std::size_t>(j)]);
  const auto q = embedding_quality(collapsed, costs);
  EXPECT_GT(q.global_rel_error, 0.8);  // long distances almost entirely lost
}

TEST(Embedding, CostMatrixMatchesDijkstra) {
  graph::Graph g(4);
  g.add_bidirectional(0, 1, 1.0, 2.0);
  g.add_bidirectional(1, 2, 3.0, 3.0);
  const Matrix m = cost_matrix(g);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 5.0);  // asymmetric
  EXPECT_EQ(m.at(0, 3), graph::kInf);
}

}  // namespace
}  // namespace gdvr::analysis
