// Tests for the distributed Distance Vector baseline.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "radio/topology.hpp"
#include "routing/distance_vector.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace gdvr::routing {
namespace {

struct Fixture {
  graph::Graph g;
  sim::Simulator sim;
  std::unique_ptr<sim::NetSim<DvMsg>> net;
  std::unique_ptr<DistanceVector> dv;

  explicit Fixture(graph::Graph graph, const DvConfig& cfg = {}) : g(std::move(graph)) {
    net = std::make_unique<sim::NetSim<DvMsg>>(sim, g, 0.001, 0.01, 7);
    dv = std::make_unique<DistanceVector>(*net, cfg);
    dv->start();
  }

  void settle(double seconds = 60.0) { sim.run_until(seconds); }
};

TEST(DistanceVector, LineConverges) {
  graph::Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_bidirectional(i, i + 1, 2.0, 2.0);
  Fixture f(std::move(g));
  f.settle();
  EXPECT_TRUE(f.dv->converged());
  EXPECT_DOUBLE_EQ(f.dv->cost(0, 4), 8.0);
  EXPECT_EQ(f.dv->next_hop(0, 4), 1);
  EXPECT_EQ(f.dv->next_hop(4, 0), 3);
}

TEST(DistanceVector, RespectsAsymmetricCosts) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 5.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 0, 1.5);
  Fixture f(std::move(g));
  f.settle();
  EXPECT_TRUE(f.dv->converged());
  EXPECT_DOUBLE_EQ(f.dv->cost(0, 2), 2.0);   // 0->1->2
  EXPECT_DOUBLE_EQ(f.dv->cost(2, 0), 1.5);   // direct
  EXPECT_DOUBLE_EQ(f.dv->cost(1, 0), 2.5);   // 1->2->0 beats the 5.0 link
  EXPECT_EQ(f.dv->next_hop(1, 0), 2);
}

TEST(DistanceVector, MatchesDijkstraOnRandomTopologies) {
  for (std::uint64_t seed : {3u, 9u}) {
    radio::TopologyConfig tc;
    tc.n = 60;
    tc.seed = seed;
    tc.target_avg_degree = 14.5;
    const radio::Topology topo = radio::make_random_topology(tc);
    Fixture f(topo.etx);
    f.settle(90.0);
    EXPECT_TRUE(f.dv->converged()) << "seed=" << seed;
  }
}

TEST(DistanceVector, RoutesFollowTables) {
  radio::TopologyConfig tc;
  tc.n = 50;
  tc.seed = 4;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  Fixture f(topo.etx);
  f.settle(90.0);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const RouteResult r = f.dv->route(s, t);
    ASSERT_TRUE(r.success);
    EXPECT_NEAR(r.cost, f.dv->cost(s, t), 1e-9);  // walked path matches table
    const auto sp = graph::dijkstra(topo.etx, s);
    EXPECT_NEAR(r.cost, sp.dist[static_cast<std::size_t>(t)], 1e-9);  // and is optimal
  }
}

TEST(DistanceVector, StorageIsThetaN) {
  radio::TopologyConfig tc;
  tc.n = 70;
  tc.seed = 6;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  Fixture f(topo.etx);
  f.settle(90.0);
  for (int u = 0; u < topo.size(); ++u)
    EXPECT_EQ(f.dv->distinct_nodes_stored(u), topo.size() - 1);
}

TEST(DistanceVector, MessageCostGrowsWithN) {
  auto messages_per_node = [](int n) {
    radio::TopologyConfig tc;
    tc.n = n;
    tc.seed = 11;
    tc.target_avg_degree = 14.5;
    const radio::Topology topo = radio::make_random_topology(tc);
    Fixture f(topo.etx);
    f.settle(40.0);
    // Count *vector entries* shipped, the honest O(N) cost: approximate by
    // messages * table size at convergence.
    return static_cast<double>(f.net->total_messages_sent()) / topo.size() *
           static_cast<double>(topo.size());
  };
  // Entries shipped grow super-linearly in N.
  EXPECT_GT(messages_per_node(80), 1.8 * messages_per_node(40));
}

TEST(DistanceVector, DeltaUpdatesMatchFullUpdates) {
  // Equivalence pin for delta triggered updates: both modes converge to the
  // same cost table (entrywise, 1e-9). Next hops are checked for cost
  // consistency rather than exact equality -- ties inside the update
  // tolerance can resolve to different but equally cheap hops depending on
  // message arrival order.
  for (std::uint64_t seed : {5u, 12u}) {
    radio::TopologyConfig tc;
    tc.n = 55;
    tc.seed = seed;
    tc.target_avg_degree = 14.5;
    const radio::Topology topo = radio::make_random_topology(tc);
    DvConfig full_cfg;
    full_cfg.delta_updates = false;
    DvConfig delta_cfg;
    delta_cfg.delta_updates = true;
    Fixture full(topo.etx, full_cfg);
    Fixture delta(topo.etx, delta_cfg);
    full.settle(90.0);
    delta.settle(90.0);
    EXPECT_TRUE(full.dv->converged()) << "seed=" << seed;
    EXPECT_TRUE(delta.dv->converged()) << "seed=" << seed;
    for (int u = 0; u < topo.size(); ++u) {
      for (int t = 0; t < topo.size(); ++t) {
        ASSERT_NEAR(full.dv->cost(u, t), delta.dv->cost(u, t), 1e-9)
            << "seed=" << seed << " u=" << u << " t=" << t;
        if (u == t) continue;
        const NodeId next = delta.dv->next_hop(u, t);
        ASSERT_GE(next, 0);
        ASSERT_NEAR(delta.dv->cost(u, t),
                    delta.net->link_cost(u, next) + delta.dv->cost(next, t), 1e-9)
            << "seed=" << seed << " u=" << u << " t=" << t << " next=" << next;
      }
    }
    // The point of the exercise: triggered deltas fire and ship fewer
    // entries overall than full-table triggered updates did.
    const auto sf = full.dv->dv_stats();
    const auto sd = delta.dv->dv_stats();
    EXPECT_GT(sd.delta_adverts, 0u);
    EXPECT_EQ(sf.delta_adverts, 0u);
    EXPECT_LT(sd.entries_delta + sd.entries_full, sf.entries_full)
        << "seed=" << seed;
  }
}

TEST(DistanceVector, DeltaMatchesFullUnderMessageLoss) {
  // Randomized delta-vs-full equivalence fuzz *under message loss*: both
  // modes run through the same scripted loss-burst schedule (sim/faults
  // windows dropping 30-45% of control messages for most of the first 30
  // seconds). Dropped triggered deltas leave a node's neighbors with stale
  // rows -- the failure mode full-table updates are immune to per message --
  // so the anti-entropy guarantee carries the whole weight here: once the
  // bursts end, the next periodic full-table advertisement must repair any
  // divergence. The pin: one advertise period (plus in-flight slack) after
  // the schedule quiesces, both modes sit exactly on the Dijkstra optimum
  // and match each other entrywise.
  for (std::uint64_t seed : {2u, 8u, 15u}) {
    radio::TopologyConfig tc;
    tc.n = 50;
    tc.seed = seed;
    tc.target_avg_degree = 14.5;
    const radio::Topology topo = radio::make_random_topology(tc);

    sim::FaultSchedule schedule;
    schedule.loss_burst(2.0, 12.0, 0.45);
    schedule.loss_burst(18.0, 9.0, 0.30);

    DvConfig full_cfg;
    full_cfg.delta_updates = false;
    DvConfig delta_cfg;
    delta_cfg.delta_updates = true;
    Fixture full(topo.etx, full_cfg);
    Fixture delta(topo.etx, delta_cfg);
    for (Fixture* f : {&full, &delta}) {
      sim::FaultActions actions;
      actions.set_loss = [f](double p) { f->net->set_fault_loss(p); };
      actions.node_count = [f] { return f->net->size(); };
      sim::FaultInjector injector(f->sim, actions);
      injector.install(schedule);
      // Repair budget: the loss windows close at quiesce_time; every node's
      // next periodic full-table advertisement lands within one
      // advertise_period, plus one second of delivery slack.
      f->settle(schedule.quiesce_time() + DvConfig{}.advertise_period_s + 1.0);
      EXPECT_GT(f->net->messages_lost(), 0u) << "seed=" << seed;
    }

    EXPECT_TRUE(full.dv->converged()) << "seed=" << seed;
    EXPECT_TRUE(delta.dv->converged()) << "seed=" << seed;
    for (int u = 0; u < topo.size(); ++u)
      for (int t = 0; t < topo.size(); ++t)
        ASSERT_NEAR(full.dv->cost(u, t), delta.dv->cost(u, t), 1e-9)
            << "seed=" << seed << " u=" << u << " t=" << t;
  }
}

TEST(DistanceVector, UnreachableStaysInf) {
  graph::Graph g(4);
  g.add_bidirectional(0, 1, 1, 1);
  g.add_bidirectional(2, 3, 1, 1);
  Fixture f(std::move(g));
  f.settle(30.0);
  EXPECT_EQ(f.dv->cost(0, 2), graph::kInf);
  EXPECT_FALSE(f.dv->route(0, 3).success);
}

}  // namespace
}  // namespace gdvr::routing
