// Tests for the graph substrate: adjacency, Dijkstra, BFS, components.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace gdvr::graph {
namespace {

Graph line_graph(int n, double cost = 1.0) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_bidirectional(i, i + 1, cost, cost);
  return g;
}

Graph random_graph(int n, double p, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) g.add_bidirectional(u, v, rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0));
  return g;
}

TEST(Graph, BasicAccessors) {
  Graph g(3);
  g.add_bidirectional(0, 1, 2.0, 3.0);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.link_cost(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.link_cost(1, 0), 3.0);  // asymmetric costs preserved
  EXPECT_EQ(g.link_cost(2, 0), kInf);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 / 3.0);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Graph, UnitCostView) {
  Graph g(3);
  g.add_bidirectional(0, 1, 5.0, 7.0);
  const Graph u = g.with_unit_costs();
  EXPECT_DOUBLE_EQ(u.link_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(u.link_cost(1, 0), 1.0);
  EXPECT_EQ(u.edge_count(), g.edge_count());
}

TEST(Graph, DijkstraLine) {
  const Graph g = line_graph(5, 2.0);
  const auto sp = dijkstra(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(sp.dist[static_cast<std::size_t>(i)], 2.0 * i);
  const auto path = extract_path(sp, 4);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Graph, DijkstraPrefersCheaperDetour) {
  Graph g(4);
  g.add_bidirectional(0, 1, 10.0, 10.0);
  g.add_bidirectional(0, 2, 1.0, 1.0);
  g.add_bidirectional(2, 3, 1.0, 1.0);
  g.add_bidirectional(3, 1, 1.0, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 3.0);
  EXPECT_EQ(extract_path(sp, 1), (std::vector<int>{0, 2, 3, 1}));
}

TEST(Graph, DijkstraUnreachable) {
  Graph g(3);
  g.add_bidirectional(0, 1, 1.0, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_EQ(sp.dist[2], kInf);
  EXPECT_TRUE(extract_path(sp, 2).empty());
}

TEST(Graph, DijkstraRespectsAsymmetry) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 9.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 1).dist[0], 9.0);
}

TEST(Graph, BfsHops) {
  const Graph g = line_graph(6, 3.5);
  const auto hops = bfs_hops(g, 2);
  EXPECT_EQ(hops[0], 2);
  EXPECT_EQ(hops[2], 0);
  EXPECT_EQ(hops[5], 3);
}

TEST(Graph, BfsUnreachableIsMinusOne) {
  Graph g(4);
  g.add_bidirectional(0, 1, 1, 1);
  g.add_bidirectional(2, 3, 1, 1);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], -1);
}

TEST(Graph, DijkstraMatchesBfsOnUnitCosts) {
  const Graph g = random_graph(60, 0.08, 3).with_unit_costs();
  for (int src : {0, 10, 30}) {
    const auto sp = dijkstra(g, src);
    const auto hops = bfs_hops(g, src);
    for (int v = 0; v < g.size(); ++v) {
      if (hops[static_cast<std::size_t>(v)] < 0)
        EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)], kInf);
      else
        EXPECT_DOUBLE_EQ(sp.dist[static_cast<std::size_t>(v)],
                         static_cast<double>(hops[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(Graph, DijkstraTriangleInequalityProperty) {
  // d(s, v) <= d(s, u) + c(u, v) for every edge (u, v).
  const Graph g = random_graph(50, 0.1, 7);
  const auto sp = dijkstra(g, 0);
  for (int u = 0; u < g.size(); ++u) {
    if (sp.dist[static_cast<std::size_t>(u)] == kInf) continue;
    for (const Edge& e : g.neighbors(u))
      EXPECT_LE(sp.dist[static_cast<std::size_t>(e.to)],
                sp.dist[static_cast<std::size_t>(u)] + e.cost + 1e-9);
  }
}

TEST(Graph, LargestComponent) {
  Graph g(7);
  g.add_bidirectional(0, 1, 1, 1);
  g.add_bidirectional(1, 2, 1, 1);
  g.add_bidirectional(3, 4, 1, 1);
  // node 5, 6 isolated
  const auto comp = largest_component(g);
  EXPECT_EQ(comp, (std::vector<int>{0, 1, 2}));
}

TEST(Graph, InducedSubgraph) {
  Graph g(5);
  g.add_bidirectional(0, 1, 1.0, 2.0);
  g.add_bidirectional(1, 2, 3.0, 4.0);
  g.add_bidirectional(3, 4, 9.0, 9.0);
  std::vector<int> keep{1, 2, 3};
  std::vector<int> old_ids;
  const Graph sub = g.induced_subgraph(keep, &old_ids);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(old_ids, keep);
  EXPECT_DOUBLE_EQ(sub.link_cost(0, 1), 3.0);  // 1 -> 2 in old ids
  EXPECT_DOUBLE_EQ(sub.link_cost(1, 0), 4.0);
  EXPECT_FALSE(sub.has_edge(2, 0));  // 3 lost its partner 4
}

TEST(Graph, ExtractPathSourceOnly) {
  const Graph g = line_graph(3);
  const auto sp = dijkstra(g, 1);
  EXPECT_EQ(extract_path(sp, 1), (std::vector<int>{1}));
}

// ---------- CSR snapshot equivalence ----------

TEST(Csr, StructureMatchesGraph) {
  const Graph g = random_graph(40, 0.2, 99);
  const CsrGraph csr(g);
  ASSERT_EQ(csr.size(), g.size());
  EXPECT_EQ(csr.edge_count(), g.edge_count());
  for (int u = 0; u < g.size(); ++u) {
    const auto ga = g.neighbors(u);
    const auto ca = csr.neighbors(u);
    ASSERT_EQ(ca.size(), ga.size()) << u;
    EXPECT_EQ(csr.degree(u), g.degree(u));
    for (std::size_t k = 0; k < ga.size(); ++k) {
      EXPECT_EQ(ca[k].to, ga[k].to) << u;
      EXPECT_EQ(ca[k].cost, ga[k].cost) << u;
    }
  }
}

TEST(Csr, LinkCostMatchesIncludingAsymmetryAndAbsence) {
  Graph g(4);
  g.add_bidirectional(0, 1, 1.5, 2.5);  // asymmetric pair
  g.add_bidirectional(1, 2, 3.0, 3.0);
  const CsrGraph csr(g);
  for (int u = 0; u < g.size(); ++u)
    for (int v = 0; v < g.size(); ++v) {
      EXPECT_EQ(csr.link_cost(u, v), g.link_cost(u, v)) << u << "->" << v;
      EXPECT_EQ(csr.has_edge(u, v), g.has_edge(u, v)) << u << "->" << v;
    }
  EXPECT_EQ(csr.link_cost(0, 1), 1.5);
  EXPECT_EQ(csr.link_cost(1, 0), 2.5);
  EXPECT_EQ(csr.link_cost(0, 3), kInf);  // node 3 is isolated
}

TEST(Csr, DijkstraMatchesGraphOnRandomGraphs) {
  // Distances AND parents: the CSR snapshot must preserve tie-breaking, not
  // just path lengths, or routing traces would change under the swap.
  for (const std::uint64_t seed : {3ull, 17ull, 171ull}) {
    const Graph g = random_graph(50, 0.15, seed);
    const CsrGraph csr(g);
    DijkstraWorkspace ws;
    for (int s = 0; s < g.size(); ++s) {
      const ShortestPaths gs = dijkstra(g, s);
      const ShortestPaths& cs = dijkstra(csr, s, ws);
      ASSERT_EQ(cs.dist.size(), gs.dist.size());
      for (std::size_t i = 0; i < gs.dist.size(); ++i) {
        EXPECT_EQ(cs.dist[i], gs.dist[i]) << "seed " << seed << " src " << s << " dst " << i;
        EXPECT_EQ(cs.parent[i], gs.parent[i]) << "seed " << seed << " src " << s << " dst " << i;
      }
    }
  }
}

TEST(Csr, DijkstraHandlesIsolatedNodes) {
  Graph g(5);
  g.add_bidirectional(0, 1, 1.0, 1.0);
  g.add_bidirectional(1, 2, 1.0, 1.0);
  // nodes 3 and 4 isolated
  const CsrGraph csr(g);
  const ShortestPaths sp = dijkstra(csr, 0);
  EXPECT_EQ(sp.dist[2], 2.0);
  EXPECT_EQ(sp.dist[3], kInf);
  EXPECT_EQ(sp.dist[4], kInf);
  const ShortestPaths from_isolated = dijkstra(csr, 3);
  EXPECT_EQ(from_isolated.dist[3], 0.0);
  EXPECT_EQ(from_isolated.dist[0], kInf);
}

TEST(Csr, EmptyGraph) {
  const CsrGraph csr;
  EXPECT_EQ(csr.size(), 0);
  EXPECT_EQ(csr.edge_count(), 0u);
  const CsrGraph from_empty{Graph(0)};
  EXPECT_EQ(from_empty.size(), 0);
}

TEST(Csr, AllPairsMatchesPerSourceDijkstraAtAnyThreadCount) {
  const Graph g = random_graph(30, 0.2, 5);
  const CsrGraph csr(g);
  const int n = csr.size();
  const std::vector<double> seq = all_pairs_distances(csr, 1);
  const std::vector<double> par = all_pairs_distances(csr, 4);
  ASSERT_EQ(seq.size(), static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  // Parallel sweep is bit-identical to sequential (disjoint row writes, fixed
  // chunking), and both match a plain per-source Dijkstra.
  EXPECT_EQ(seq, par);
  for (int s = 0; s < n; ++s) {
    const ShortestPaths sp = dijkstra(csr, s);
    for (int t = 0; t < n; ++t)
      EXPECT_EQ(seq[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(t)],
                sp.dist[static_cast<std::size_t>(t)])
          << s << "->" << t;
  }
}

}  // namespace
}  // namespace gdvr::graph
