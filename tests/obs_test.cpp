// Tests for the observability layer: trace sink, metric registry, and
// scoped profiling timers (src/obs/).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace gdvr::obs {
namespace {

// ---------- TraceSink ----------

TEST(TraceSink, RecordsPacketsAndEvents) {
  TraceSink sink;
  const int p0 = sink.begin_packet(3, 9);
  sink.hop(3, 5, HopMode::kGreedy, 2.5, 0.0);
  sink.hop(5, 9, HopMode::kGreedy, 1.25, 0.0);
  sink.end_packet(true);
  const int p1 = sink.begin_packet(9, 3);
  sink.hop(9, 7, HopMode::kRecovery, 4.0, 0.0);
  sink.end_packet(false);

  EXPECT_EQ(p0, 0);
  EXPECT_EQ(p1, 1);
  ASSERT_EQ(sink.packets().size(), 2u);
  EXPECT_EQ(sink.packets()[0].src, 3);
  EXPECT_EQ(sink.packets()[0].dst, 9);
  EXPECT_TRUE(sink.packets()[0].delivered);
  EXPECT_TRUE(sink.packets()[0].closed);
  EXPECT_FALSE(sink.packets()[1].delivered);

  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0].packet, 0);
  EXPECT_EQ(sink.events()[2].packet, 1);
  EXPECT_EQ(sink.events()[2].mode, HopMode::kRecovery);

  const auto ev0 = sink.packet_events(0);
  ASSERT_EQ(ev0.size(), 2u);
  EXPECT_EQ(ev0[0].node, 3);
  EXPECT_EQ(ev0[1].next, 9);
  EXPECT_EQ(sink.packet_events(1).size(), 1u);
}

TEST(TraceSink, DigestIsOrderSensitiveAndStable) {
  const auto record = [](TraceSink& s, bool swap_order) {
    s.begin_packet(0, 2);
    if (swap_order) {
      s.hop(1, 2, HopMode::kGreedy, 1.0);
      s.hop(0, 1, HopMode::kGreedy, 2.0);
    } else {
      s.hop(0, 1, HopMode::kGreedy, 2.0);
      s.hop(1, 2, HopMode::kGreedy, 1.0);
    }
    s.end_packet(true);
  };
  TraceSink a, b, c;
  record(a, false);
  record(b, false);
  record(c, true);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest_hex(), b.digest_hex());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_EQ(a.digest_hex().size(), 16u);  // fixed-width lowercase hex
}

TEST(TraceSink, DigestSeesEstimateBitPatterns) {
  TraceSink a, b;
  a.begin_packet(0, 1);
  a.hop(0, 1, HopMode::kGreedy, 1.0);
  a.end_packet(true);
  b.begin_packet(0, 1);
  b.hop(0, 1, HopMode::kGreedy, 1.0 + 1e-15);
  b.end_packet(true);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(TraceSink, ClearResets) {
  TraceSink sink;
  const std::uint64_t empty = sink.digest();
  sink.begin_packet(0, 1);
  sink.hop(0, 1, HopMode::kGreedy, 1.0);
  sink.end_packet(true);
  EXPECT_NE(sink.digest(), empty);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_TRUE(sink.packets().empty());
  EXPECT_EQ(sink.digest(), empty);
}

TEST(TraceSink, ScopedTraceInstallsAndRestores) {
  EXPECT_EQ(trace_sink(), nullptr);
  TraceSink outer, inner;
  {
    ScopedTrace so(outer);
    EXPECT_EQ(trace_sink(), &outer);
    {
      ScopedTrace si(inner);
      EXPECT_EQ(trace_sink(), &inner);
      trace_hop(1, 2, HopMode::kRelay, 0.0);
    }
    EXPECT_EQ(trace_sink(), &outer);
    trace_hop(3, 4, HopMode::kRelay, 0.0);
  }
  EXPECT_EQ(trace_sink(), nullptr);
  trace_hop(5, 6, HopMode::kRelay, 0.0);  // no sink: must be a no-op
  ASSERT_EQ(inner.events().size(), 1u);
  EXPECT_EQ(inner.events()[0].node, 1);
  ASSERT_EQ(outer.events().size(), 1u);
  EXPECT_EQ(outer.events()[0].node, 3);
}

TEST(TraceSink, PacketTraceGuardTiesDeliveryFlag) {
  TraceSink sink;
  {
    ScopedTrace scope(sink);
    bool delivered = false;
    {
      PacketTrace guard(4, 8, &delivered);
      trace_hop(4, 8, HopMode::kGreedy, 1.0);
      delivered = true;  // set after the guard opened, read at close
    }
  }
  ASSERT_EQ(sink.packets().size(), 1u);
  EXPECT_EQ(sink.packets()[0].src, 4);
  EXPECT_TRUE(sink.packets()[0].delivered);
  EXPECT_TRUE(sink.packets()[0].closed);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].packet, 0);
}

TEST(TraceSink, ControlEventsOutsidePacketsUseMinusOne) {
  TraceSink sink;
  sink.set_trace_control(true);
  EXPECT_TRUE(sink.trace_control());
  sink.hop(2, 3, HopMode::kControl, 0.0, 1.5);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].packet, -1);
  EXPECT_DOUBLE_EQ(sink.events()[0].time, 1.5);
}

TEST(TraceSink, HopModeNames) {
  EXPECT_STREQ(hop_mode_name(HopMode::kGreedy), "greedy");
  EXPECT_STREQ(hop_mode_name(HopMode::kRecovery), "recovery");
  EXPECT_STREQ(hop_mode_name(HopMode::kRelay), "relay");
  EXPECT_STREQ(hop_mode_name(HopMode::kControl), "control");
}

// ---------- Registry ----------

TEST(Registry, AccessorsReturnStableReferences) {
  Registry reg;
  Counter& c = reg.counter("a.count");
  c.inc();
  c.inc(2);
  EXPECT_EQ(reg.counter("a.count").value(), 3u);
  EXPECT_EQ(&reg.counter("a.count"), &c);

  reg.gauge("g", 4).set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g", 4).value(), 2.5);
  // Same name, different node: a distinct metric.
  EXPECT_DOUBLE_EQ(reg.gauge("g", 5).value(), 0.0);

  reg.histogram("h").observe(1.0);
  reg.histogram("h").observe(3.0);
  EXPECT_EQ(reg.histogram("h").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.histogram("h").mean(), 2.0);

  EXPECT_EQ(reg.size(), 4u);  // counter + 2 gauge nodes + histogram
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, ExportIsInsertionOrderIndependent) {
  Registry a, b;
  a.counter("x").set(1);
  a.counter("y", 2).set(7);
  a.gauge("z").set(0.5);
  a.histogram("h", 1).observe(2.0);
  // Same content, reversed insertion order.
  b.histogram("h", 1).observe(2.0);
  b.gauge("z").set(0.5);
  b.counter("y", 2).set(7);
  b.counter("x").set(1);

  std::ostringstream ja, jb, ca, cb;
  a.write_json(ja);
  b.write_json(jb);
  a.write_csv(ca);
  b.write_csv(cb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(Registry, JsonAndCsvShapes) {
  Registry reg;
  reg.counter("msgs").set(12);
  reg.gauge("load", 3).set(1.5);
  for (int i = 1; i <= 100; ++i) reg.histogram("lat").observe(i);

  std::ostringstream js;
  reg.write_json(js);
  const std::string json = js.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"msgs\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  std::ostringstream cs;
  reg.write_csv(cs);
  std::istringstream rows(cs.str());
  std::string line;
  std::getline(rows, line);
  EXPECT_EQ(line, "kind,name,node,count,value,mean,min,max,p50,p90,p99");
  std::getline(rows, line);
  EXPECT_EQ(line.rfind("counter,msgs,-1,", 0), 0u) << line;
}

// ---------- Histogram decimation ----------

TEST(Histogram, ExactUntilCapThenBoundedAndDecimated) {
  Histogram h(/*sample_cap=*/64);
  for (int i = 0; i < 63; ++i) h.observe(i);
  EXPECT_EQ(h.retained_samples(), 63u);  // exact below the cap
  EXPECT_EQ(h.sample_stride(), 1u);

  for (int i = 63; i < 10000; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 10000u);                 // exact moments survive decimation
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 9999.0);
  EXPECT_LE(h.retained_samples(), 64u);
  EXPECT_GT(h.sample_stride(), 1u);

  // Percentiles stay approximately right: p50 of 0..9999 is ~5000.
  const double p50 = h.percentile(0.5);
  EXPECT_NEAR(p50, 5000.0, 1500.0);
  EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

// ---------- Profiling ----------

void timed_work() {
  GDVR_PROFILE_SCOPE("obs_test.timed_work");
  volatile int x = 0;
  for (int i = 0; i < 1000; ++i) x = x + i;
}

TEST(Profile, AccumulatesOnlyWhenEnabled) {
  reset_profile();
  set_profiling(false);
  timed_work();  // registers the site but must not accumulate

  std::ostringstream off;
  write_profile_report(off);
  EXPECT_EQ(off.str().find("obs_test.timed_work"), std::string::npos);

  set_profiling(true);
  timed_work();
  timed_work();
  set_profiling(false);

  std::ostringstream on;
  write_profile_report(on);
  EXPECT_NE(on.str().find("obs_test.timed_work"), std::string::npos) << on.str();

  reset_profile();
  std::ostringstream after;
  write_profile_report(after);
  EXPECT_EQ(after.str().find("obs_test.timed_work"), std::string::npos);
}

}  // namespace
}  // namespace gdvr::obs
