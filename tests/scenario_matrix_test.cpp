// Cross-scenario conformance matrix (ctest label `scenario`): every routing
// protocol runs on every workload generator and is checked against one
// shared invariant set --
//
//   * loop-freedom outside relay hops (GPSR: greedy decisions only, since a
//     perimeter walk legally revisits nodes),
//   * monotone remaining-cost estimates at decision events,
//   * per-(scenario, protocol) delivery-rate floors,
//   * digest determinism: every cell's routing trace is bit-identical across
//     GDVR_THREADS=1 vs 4 and across the serial vs sharded sim engines.
//
// The engine dimension is exercised end to end: scenario materialization
// re-runs under each thread setting (topology generation fans its link sweep
// over GDVR_THREADS workers), and the delta-DV cells converge the protocol
// on a real simulator under both engines before routing from the resulting
// tables. Routing itself happens outside the simulator with control tracing
// off, so a cell's digest is a pure function of the converged state -- which
// the engine contract (DESIGN.md §4g) requires to be engine-invariant.
//
// ScenarioMatrixSmoke.* is the quick subset scripts/check.sh runs by
// default; the full ScenarioMatrix.* suite runs in --release (and plain
// ctest).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "eval/routing_eval.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/distance_vector.hpp"
#include "routing/mdt_view.hpp"
#include "routing/planar.hpp"
#include "routing/routers.hpp"
#include "scenario/scenario.hpp"
#include "sim/netsim.hpp"
#include "sim/simulator.hpp"

namespace gdvr {
namespace {

using routing::MdtView;
using routing::RouteResult;

// ---------------------------------------------------------------------------
// Matrix axes.

enum class Proto { kGdv, kMdtGreedy, kGpsr, kDeltaDv };
constexpr Proto kProtocols[] = {Proto::kGdv, Proto::kMdtGreedy, Proto::kGpsr, Proto::kDeltaDv};

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kGdv: return "gdv";
    case Proto::kMdtGreedy: return "mdt_greedy";
    case Proto::kGpsr: return "gpsr";
    case Proto::kDeltaDv: return "delta_dv";
  }
  return "?";
}

enum class ScenarioKind { kUnitSquare, kGeoWan, kMobilityWaypoint, kMobilityGroup, kFlashCrowd };

std::unique_ptr<scenario::Scenario> make_scenario(ScenarioKind kind, bool smoke) {
  switch (kind) {
    case ScenarioKind::kUnitSquare:
      return scenario::unit_square_scenario(smoke ? 40 : 60, 7, /*rounds=*/1);
    case ScenarioKind::kGeoWan: {
      scenario::GeoWanConfig gc;
      gc.n = smoke ? 60 : 110;
      gc.seed = 11;
      return scenario::geo_wan_scenario(gc, /*rounds=*/smoke ? 1 : 2);
    }
    case ScenarioKind::kMobilityWaypoint: {
      scenario::MobilityScenarioConfig mc;
      mc.mobility.n = 70;
      mc.mobility.seed = 3;
      mc.rounds = 3;
      mc.step_dt_s = 5.0;
      return scenario::mobility_scenario(mc);
    }
    case ScenarioKind::kMobilityGroup: {
      scenario::MobilityScenarioConfig mc;
      mc.mobility.model = scenario::MobilityConfig::Model::kGroup;
      mc.mobility.n = 70;
      mc.mobility.seed = 5;
      mc.rounds = 3;
      mc.step_dt_s = 5.0;
      return scenario::mobility_scenario(mc);
    }
    case ScenarioKind::kFlashCrowd: {
      scenario::FlashCrowdScenarioConfig fc;
      fc.n = 120;
      fc.seed = 9;
      fc.crowds = 2;
      return scenario::flash_crowd_scenario(fc);
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// One cell = (scenario, protocol) under one (engine, threads) combination.

struct CellResult {
  std::string digest;
  int delivered = 0;
  int pairs = 0;
  double delivery() const { return pairs > 0 ? static_cast<double>(delivered) / pairs : 0.0; }
};

using ComboResult = std::map<std::string, CellResult>;  // keyed by proto_name

// Scoped GDVR_THREADS override (the golden-trace pattern): everything under
// it -- topology link sweeps, all-pairs distances, the sharded engine's
// worker pool -- sees the requested thread count.
class ThreadEnv {
 public:
  explicit ThreadEnv(const char* threads) {
    const char* prev = std::getenv("GDVR_THREADS");
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    setenv("GDVR_THREADS", threads, 1);
  }
  ~ThreadEnv() {
    if (had_)
      setenv("GDVR_THREADS", saved_.c_str(), 1);
    else
      unsetenv("GDVR_THREADS");
  }

 private:
  bool had_ = false;
  std::string saved_;
};

// Routes `pairs` seeded (s, t) pairs under the installed sink.
template <typename RouteFn>
int route_pairs(int n, int pairs, std::uint64_t seed, RouteFn&& route) {
  Rng rng(seed);
  int delivered = 0;
  for (int k = 0; k < pairs; ++k) {
    const int s = rng.uniform_index(n);
    int t = rng.uniform_index(n - 1);
    if (t >= s) ++t;
    if (route(s, t).success) ++delivered;
  }
  return delivered;
}

// Shared invariant suite, applied to every packet of a cell's trace.
void check_invariants(const obs::TraceSink& sink, Proto p, const std::string& where) {
  const bool perimeter_legal = p == Proto::kGpsr;
  for (int pk = 0; pk < static_cast<int>(sink.packets().size()); ++pk) {
    std::set<int> deciders;
    double last_estimate = -1.0;
    bool have_estimate = false;
    for (const obs::HopEvent& e : sink.packet_events(pk)) {
      if (e.mode == obs::HopMode::kRelay) {
        // Relay hops forward along a precomputed virtual-link path; they make
        // no routing decision and carry no estimate.
        EXPECT_EQ(e.estimate, 0.0) << where << " packet " << pk;
        continue;
      }
      if (perimeter_legal && e.mode == obs::HopMode::kRecovery) {
        // A perimeter walk may revisit nodes and move away from the target;
        // its exit condition (strictly closer than the entry point) is what
        // keeps the whole route loop-free, checked via the greedy events.
        continue;
      }
      // Loop freedom: no node decides twice for the same packet.
      EXPECT_TRUE(deciders.insert(e.node).second)
          << where << " packet " << pk << ": node " << e.node << " decided twice";
      // Monotone estimates: remaining cost strictly decreases at every
      // decision event.
      if (have_estimate) {
        EXPECT_LT(e.estimate, last_estimate)
            << where << " packet " << pk << ": estimate rose at node " << e.node;
      }
      last_estimate = e.estimate;
      have_estimate = true;
    }
  }
}

// Runs every protocol over every round of the scenario under the given
// (engine, threads) combination and returns one digest + delivery count per
// protocol. Deterministic: everything re-derives from the scenario config.
ComboResult run_combo(ScenarioKind kind, bool smoke, bool sharded, const char* threads,
                      bool verify_invariants) {
  ThreadEnv env(threads);
  const int nthreads = std::atoi(threads);
  auto sc = make_scenario(kind, smoke);
  const int pairs_per_round = smoke ? 15 : 25;

  std::map<std::string, obs::TraceSink> sinks;
  std::map<std::string, CellResult> out;
  for (const Proto p : kProtocols) out[proto_name(p)] = CellResult{};

  for (int k = 0; k < sc->rounds(); ++k) {
    const scenario::Round round = sc->round(k);
    const radio::Topology& topo = round.topo;
    EXPECT_GE(topo.size(), 10) << sc->name() << " round " << k << " collapsed";
    const MdtView view = routing::centralized_mdt(topo.positions, topo.etx);
    const routing::PlanarGraph planar(topo.positions, topo.etx);

    // Delta-DV converges on a live simulator (the engine axis) before its
    // routes are traced from the resulting tables.
    sim::Simulator sim;
    if (sharded) sim.configure_sharding(radio::spatial_shards(topo, /*shards=*/4), nthreads);
    sim::NetSim<routing::DvMsg> net(sim, topo.etx, 0.01, 0.1, /*seed=*/99);
    routing::DistanceVector dv(net);
    dv.start();
    sim.run_until(30.0);
    EXPECT_TRUE(dv.converged()) << sc->name() << " round " << k;

    for (const Proto p : kProtocols) {
      obs::TraceSink& sink = sinks[proto_name(p)];
      CellResult& cell = out[proto_name(p)];
      const std::uint64_t seed = 1000 + 17 * static_cast<std::uint64_t>(k);
      int delivered = 0;
      {
        obs::ScopedTrace scope(sink);
        switch (p) {
          case Proto::kGdv:
            delivered = route_pairs(topo.size(), pairs_per_round, seed,
                                    [&](int s, int t) { return routing::route_gdv(view, s, t); });
            break;
          case Proto::kMdtGreedy:
            delivered = route_pairs(topo.size(), pairs_per_round, seed, [&](int s, int t) {
              return routing::route_mdt_greedy(view, s, t);
            });
            break;
          case Proto::kGpsr:
            delivered = route_pairs(topo.size(), pairs_per_round, seed, [&](int s, int t) {
              return routing::route_gpsr(topo.positions, topo.etx, planar, s, t);
            });
            break;
          case Proto::kDeltaDv:
            delivered = route_pairs(topo.size(), pairs_per_round, seed,
                                    [&](int s, int t) { return dv.route(s, t); });
            break;
        }
      }
      cell.delivered += delivered;
      cell.pairs += pairs_per_round;
    }
  }

  for (const Proto p : kProtocols) {
    obs::TraceSink& sink = sinks[proto_name(p)];
    if (verify_invariants)
      check_invariants(sink, p, std::string(proto_name(p)));
    out[proto_name(p)].digest = sink.digest_hex();
  }
  return out;
}

// Delivery-rate floors per protocol. GDV, MDT-greedy and converged DV have
// guaranteed delivery on a connected world; GPSR's witness planarization is
// imperfect on lossy/WAN graphs (the paper's own observation), so its floor
// is scenario-specific and pinned from measurement with margin.
struct Floors {
  double gdv = 1.0;
  double mdt = 1.0;
  double dv = 1.0;
  double gpsr = 0.5;
};

void check_matrix(ScenarioKind kind, bool smoke, const Floors& floors) {
  // Invariants only need checking once; the other combos must be
  // bit-identical anyway, which the digest comparison enforces.
  const ComboResult serial1 = run_combo(kind, smoke, /*sharded=*/false, "1", true);
  const ComboResult serial4 = run_combo(kind, smoke, /*sharded=*/false, "4", false);
  const ComboResult shard1 = run_combo(kind, smoke, /*sharded=*/true, "1", false);
  const ComboResult shard4 = run_combo(kind, smoke, /*sharded=*/true, "4", false);

  for (const Proto p : kProtocols) {
    const std::string name = proto_name(p);
    const CellResult& base = serial1.at(name);
    ASSERT_FALSE(base.digest.empty()) << name;
    EXPECT_EQ(base.digest, serial4.at(name).digest) << name << ": GDVR_THREADS=1 vs 4 (serial)";
    EXPECT_EQ(base.digest, shard1.at(name).digest) << name << ": serial vs sharded engine";
    EXPECT_EQ(base.digest, shard4.at(name).digest) << name << ": GDVR_THREADS=1 vs 4 (sharded)";

    const double floor = p == Proto::kGdv         ? floors.gdv
                         : p == Proto::kMdtGreedy ? floors.mdt
                         : p == Proto::kDeltaDv   ? floors.dv
                                                  : floors.gpsr;
    EXPECT_GE(base.delivery(), floor)
        << name << " delivered " << base.delivered << "/" << base.pairs;
  }
}

// ---------------------------------------------------------------------------
// Full matrix: one test per scenario, all protocols x all engine combos.

TEST(ScenarioMatrix, UnitSquare) { check_matrix(ScenarioKind::kUnitSquare, false, Floors{}); }

TEST(ScenarioMatrix, GeoWan) {
  Floors f;
  f.gpsr = 0.5;
  check_matrix(ScenarioKind::kGeoWan, false, f);
}

TEST(ScenarioMatrix, MobilityWaypoint) {
  check_matrix(ScenarioKind::kMobilityWaypoint, false, Floors{});
}

TEST(ScenarioMatrix, MobilityGroup) { check_matrix(ScenarioKind::kMobilityGroup, false, Floors{}); }

TEST(ScenarioMatrix, FlashCrowd) { check_matrix(ScenarioKind::kFlashCrowd, false, Floors{}); }

// ---------------------------------------------------------------------------
// Metric-registry reporting: geo-WAN and random-waypoint delivery/stretch
// flow through the standard registry export (the EXPERIMENTS.md table is
// produced from exactly these gauges via bench/scenario_eval).

void check_metrics_export(ScenarioKind kind, const std::string& scenario_name) {
  auto sc = make_scenario(kind, /*smoke=*/true);
  const scenario::Round round = sc->round(0);
  const MdtView view = routing::centralized_mdt(round.topo.positions, round.topo.etx);
  eval::EvalOptions opts;
  opts.pair_samples = 100;
  const eval::RoutingStats stats = eval::eval_gdv(view, round.topo, opts);

  obs::Registry reg;
  eval::export_routing_stats(reg, "scenario." + scenario_name + ".gdv", stats);
  const auto& gauges = reg.gauges();
  const auto has = [&](const std::string& key) {
    return gauges.find({"scenario." + scenario_name + ".gdv." + key, -1}) != gauges.end();
  };
  ASSERT_TRUE(has("delivery_rate"));
  ASSERT_TRUE(has("stretch"));
  ASSERT_TRUE(has("transmissions"));
  EXPECT_GE(reg.gauge("scenario." + scenario_name + ".gdv.delivery_rate").value(), 0.99);
  EXPECT_GE(reg.gauge("scenario." + scenario_name + ".gdv.stretch").value(), 1.0);
}

TEST(ScenarioMatrix, GeoWanReportsMetrics) {
  check_metrics_export(ScenarioKind::kGeoWan, "geo_wan");
}

TEST(ScenarioMatrix, MobilityWaypointReportsMetrics) {
  check_metrics_export(ScenarioKind::kMobilityWaypoint, "mobility_waypoint");
}

// ---------------------------------------------------------------------------
// Smoke subset: the default scripts/check.sh run. Small instances, serial
// engine + one sharded cross-check, full invariant suite.

TEST(ScenarioMatrixSmoke, GeoWanAllProtocols) {
  const ComboResult serial = run_combo(ScenarioKind::kGeoWan, /*smoke=*/true,
                                       /*sharded=*/false, "1", true);
  const ComboResult sharded = run_combo(ScenarioKind::kGeoWan, /*smoke=*/true,
                                        /*sharded=*/true, "4", false);
  for (const Proto p : kProtocols) {
    const std::string name = proto_name(p);
    EXPECT_EQ(serial.at(name).digest, sharded.at(name).digest) << name;
    const double floor = p == Proto::kGpsr ? 0.5 : 1.0;
    EXPECT_GE(serial.at(name).delivery(), floor) << name;
  }
}

TEST(ScenarioMatrixSmoke, UnitSquareAllProtocols) {
  const ComboResult serial = run_combo(ScenarioKind::kUnitSquare, /*smoke=*/true,
                                       /*sharded=*/false, "1", true);
  const ComboResult threads4 = run_combo(ScenarioKind::kUnitSquare, /*smoke=*/true,
                                         /*sharded=*/false, "4", false);
  for (const Proto p : kProtocols) {
    const std::string name = proto_name(p);
    EXPECT_EQ(serial.at(name).digest, threads4.at(name).digest) << name;
    const double floor = p == Proto::kGpsr ? 0.8 : 1.0;
    EXPECT_GE(serial.at(name).delivery(), floor) << name;
  }
}

}  // namespace
}  // namespace gdvr
