// Tests for the fault-injection subsystem: schedule construction,
// seed-determinism of random chaos, windowed-knob nesting, and partitions.
#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/faults.hpp"
#include "sim/netsim.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {
namespace {

struct NoMsg {};

// A NetSim-backed world the injector drives; crash/recover map straight to
// node liveness (protocol-level hooks are exercised by the chaos test).
struct World {
  Simulator sim;
  graph::Graph g;
  NetSim<NoMsg> net;
  std::vector<std::pair<int, int>> edge_list;

  explicit World(int n, const std::vector<std::pair<int, int>>& edges)
      : g([&] {
          graph::Graph gg(n);
          for (const auto& [u, v] : edges) gg.add_bidirectional(u, v, 1.0, 1.0);
          return gg;
        }()),
        net(sim, g, 0.01, 0.05, 7),
        edge_list(edges) {}

  FaultActions actions() {
    FaultActions a;
    a.crash = [this](int u) { net.set_alive(u, false); };
    a.recover = [this](int u) { net.set_alive(u, true); };
    a.set_link_up = [this](int u, int v, bool up) { net.set_link_up(u, v, up); };
    a.set_loss = [this](double p) { net.set_fault_loss(p); };
    a.set_duplication = [this](double p) { net.set_duplication(p); };
    a.set_delay_factor = [this](double f) { net.set_delay_factor(f); };
    a.node_count = [this] { return net.size(); };
    a.edges = [this] { return edge_list; };
    a.is_alive = [this](int u) { return net.alive(u); };
    return a;
  }

  // Connectivity over usable links and alive nodes, from node 0.
  int reachable_from(int s) {
    std::vector<char> seen(static_cast<std::size_t>(net.size()), 0);
    std::queue<int> q;
    q.push(s);
    seen[static_cast<std::size_t>(s)] = 1;
    int count = 1;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (const auto& e : net.alive_neighbors(u)) {
        if (seen[static_cast<std::size_t>(e.to)]) continue;
        seen[static_cast<std::size_t>(e.to)] = 1;
        ++count;
        q.push(e.to);
      }
    }
    return count;
  }
};

std::vector<std::pair<int, int>> ring_edges(int n) {
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < n; ++i) e.emplace_back(std::min(i, (i + 1) % n), std::max(i, (i + 1) % n));
  return e;
}

TEST(FaultSchedule, ScriptedActionsAreInspectable) {
  FaultSchedule s;
  s.crash_cycle(10.0, 3, 5.0).link_flap(12.0, 1, 2, 2.0).loss_burst(20.0, 4.0, 0.25);
  EXPECT_EQ(s.actions().size(), 6u);
  EXPECT_DOUBLE_EQ(s.quiesce_time(), 24.0);
  const std::string text = s.describe();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("recover"), std::string::npos);
  EXPECT_NE(text.find("loss-start"), std::string::npos);
}

TEST(FaultSchedule, RandomChaosIsSeedDeterministic) {
  ChaosConfig cfg;
  cfg.t_begin = 5.0;
  cfg.t_end = 105.0;
  const auto edges = ring_edges(20);
  const FaultSchedule a = FaultSchedule::random_chaos(cfg, 42, 20, edges);
  const FaultSchedule b = FaultSchedule::random_chaos(cfg, 42, 20, edges);
  const FaultSchedule c = FaultSchedule::random_chaos(cfg, 43, 20, edges);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultSchedule, RandomChaosStaysInWindowAndSparesProtectedNode) {
  ChaosConfig cfg;
  cfg.t_begin = 10.0;
  cfg.t_end = 60.0;
  cfg.protected_node = 4;
  const auto edges = ring_edges(12);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultSchedule s = FaultSchedule::random_chaos(cfg, seed, 12, edges);
    for (const FaultAction& a : s.actions()) {
      EXPECT_GE(a.at, cfg.t_begin);
      EXPECT_LE(a.at, cfg.t_end);
      if (a.kind == FaultKind::kCrash) {
        EXPECT_NE(a.node, cfg.protected_node);
      }
    }
    EXPECT_LE(s.quiesce_time(), cfg.t_end);
  }
}

TEST(FaultSchedule, MergeRetagsWindows) {
  FaultSchedule a;
  a.loss_burst(1.0, 2.0, 0.5);
  FaultSchedule b;
  b.loss_burst(1.5, 2.0, 0.9);
  a.merge(b);
  ASSERT_EQ(a.actions().size(), 4u);
  // Tags of the merged burst must not collide with the original's.
  std::set<std::uint64_t> tags;
  for (const FaultAction& act : a.actions()) tags.insert(act.tag);
  EXPECT_EQ(tags.size(), 2u);
}

TEST(FaultInjector, CrashRecoverDrivesLiveness) {
  World w(6, ring_edges(6));
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule s;
  s.crash_cycle(1.0, 2, 3.0);
  inj.install(s);
  w.sim.run_until(2.0);
  EXPECT_FALSE(w.net.alive(2));
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.alive(2));
  EXPECT_EQ(inj.crashes_injected(), 1);
  EXPECT_EQ(inj.recoveries_injected(), 1);
}

TEST(FaultInjector, NestedWindowsMostRecentWinsAndRestores) {
  World w(4, ring_edges(4));
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule s;
  s.loss_burst(1.0, 10.0, 0.2);  // outer: [1, 11]
  s.loss_burst(3.0, 4.0, 0.8);   // inner: [3, 7] overrides
  inj.install(s);
  w.sim.run_until(2.0);
  EXPECT_DOUBLE_EQ(w.net.fault_loss(), 0.2);
  w.sim.run_until(4.0);
  EXPECT_DOUBLE_EQ(w.net.fault_loss(), 0.8);  // most recent window wins
  w.sim.run_until(8.0);
  EXPECT_DOUBLE_EQ(w.net.fault_loss(), 0.2);  // inner closed: outer restored
  w.sim.run_until(12.0);
  EXPECT_DOUBLE_EQ(w.net.fault_loss(), 0.0);  // all closed: neutral
  EXPECT_EQ(inj.windows_opened(), 2);
}

TEST(FaultInjector, DelayWindowRestoresToUnity) {
  World w(4, ring_edges(4));
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule s;
  s.delay_spike(1.0, 2.0, 8.0).dup_burst(1.0, 2.0, 0.3);
  inj.install(s);
  w.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(w.net.delay_factor(), 8.0);
  EXPECT_DOUBLE_EQ(w.net.duplication(), 0.3);
  w.sim.run_until(4.0);
  EXPECT_DOUBLE_EQ(w.net.delay_factor(), 1.0);  // neutral for delay is 1, not 0
  EXPECT_DOUBLE_EQ(w.net.duplication(), 0.0);
}

TEST(FaultInjector, PartitionCutsAndRestoresConnectivity) {
  // 2x10 grid-ish ring: a genuine bipartition must reduce what node 0 reaches,
  // and the PartitionEnd must restore full connectivity.
  const int n = 20;
  World w(n, ring_edges(n));
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule s;
  s.partition(1.0, 5.0, 0.5);
  inj.install(s);

  EXPECT_EQ(w.reachable_from(0), n);
  w.sim.run_until(2.0);
  const int during = w.reachable_from(0);
  EXPECT_LT(during, n);       // genuinely disconnected
  EXPECT_GE(during, n / 4);   // but a real split, not node isolation
  EXPECT_EQ(inj.partitions_injected(), 1);
  w.sim.run_until(7.0);
  EXPECT_EQ(w.reachable_from(0), n);  // cut links restored
}

TEST(FaultInjector, PartitionsResolveAgainstCurrentLiveness) {
  // With a dead BFS seed candidate the partition still forms from an alive
  // node; the restore only touches the edges it actually cut.
  const int n = 10;
  World w(n, ring_edges(n));
  w.net.set_alive(3, false);
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule s;
  s.partition(1.0, 2.0, 0.4);
  inj.install(s);
  w.sim.run_until(1.5);
  EXPECT_EQ(inj.partitions_injected(), 1);
  w.sim.run_until(4.0);
  w.net.set_alive(3, true);
  EXPECT_EQ(w.reachable_from(0), n);
}

TEST(FaultInjector, PartitionSplitsTheLiveComponent) {
  // With a contiguous stretch of crashed nodes, the ring's live component is
  // a path. The partition must bipartition *that* -- seeding and growing its
  // BFS over live nodes only -- rather than wasting the cut on the dead
  // region (which would leave the live side fully connected).
  const int n = 20;
  World w(n, ring_edges(n));
  for (int u : {12, 13, 14, 15}) w.net.set_alive(u, false);
  const int live = n - 4;
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule s;
  s.partition(1.0, 4.0, 0.5);
  inj.install(s);

  w.sim.run_until(2.0);
  EXPECT_EQ(inj.partitions_injected(), 1);
  const int during = w.reachable_from(0);
  EXPECT_LT(during, live);      // the live component is genuinely split
  EXPECT_GE(during, live / 4);  // into two real sides, not an isolated node

  w.sim.run_until(6.0);
  for (int u : {12, 13, 14, 15}) w.net.set_alive(u, true);
  EXPECT_EQ(w.reachable_from(0), n);  // heal + revive restores everything
}

TEST(FaultInjector, ComposedSchedulesInstallIncrementally) {
  World w(6, ring_edges(6));
  FaultInjector inj(w.sim, w.actions());
  FaultSchedule first;
  first.crash_cycle(1.0, 1, 1.0);
  inj.install(first);
  w.sim.run_until(3.0);
  FaultSchedule second;
  second.crash_cycle(4.0, 2, 1.0);
  inj.install(second);  // composing at runtime, relative to current time
  w.sim.run_until(10.0);
  EXPECT_EQ(inj.crashes_injected(), 2);
  EXPECT_EQ(inj.recoveries_injected(), 2);
  EXPECT_TRUE(w.net.alive(1));
  EXPECT_TRUE(w.net.alive(2));
}

}  // namespace
}  // namespace gdvr::sim
