// Tests for the discrete-event simulator and the network message layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/netsim.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilSkipsCancelledBeyondBoundary) {
  // Regression: a cancelled event before the boundary must not cause the
  // next live event *after* the boundary to run.
  Simulator sim;
  bool late_fired = false;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.schedule_at(5.0, [&] { late_fired = true; });
  sim.cancel(id);
  sim.run_until(2.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PendingCount) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

// ---------- NetSim ----------

struct Msg {
  std::string text;
};

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_bidirectional(0, 1, 1.0, 2.0);
  g.add_bidirectional(1, 2, 1.0, 1.0);
  return g;
}

TEST(NetSim, DeliversWithBoundedDelay) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  double delivered_at = -1.0;
  std::string text;
  net.set_receiver([&](int to, int from, Msg m) {
    EXPECT_EQ(to, 1);
    EXPECT_EQ(from, 0);
    delivered_at = sim.now();
    text = m.text;
  });
  EXPECT_TRUE(net.send(0, 1, Msg{"hi"}));
  sim.run_all();
  EXPECT_EQ(text, "hi");
  EXPECT_GE(delivered_at, 0.1);
  EXPECT_LT(delivered_at, 0.2);
}

TEST(NetSim, RefusesMissingLink) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  EXPECT_FALSE(net.send(0, 2, Msg{"nope"}));  // 0-2 not connected
  EXPECT_EQ(net.total_messages_sent(), 0u);
}

TEST(NetSim, CountsPerSender) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  net.set_receiver([](int, int, Msg) {});
  net.send(0, 1, Msg{});
  net.send(1, 0, Msg{});
  net.send(1, 2, Msg{});
  EXPECT_EQ(net.messages_sent(0), 1u);
  EXPECT_EQ(net.messages_sent(1), 2u);
  EXPECT_EQ(net.total_messages_sent(), 3u);
  net.reset_counters();
  EXPECT_EQ(net.total_messages_sent(), 0u);
}

TEST(NetSim, DeadNodesNeitherSendNorReceive) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  net.set_alive(2, false);
  EXPECT_FALSE(net.send(2, 1, Msg{}));  // dead sender
  EXPECT_FALSE(net.send(1, 2, Msg{}));  // dead receiver known at send time
  // Receiver dies while the message is in flight: dropped at delivery.
  net.send(0, 1, Msg{});
  net.set_alive(1, false);
  sim.run_all();
  EXPECT_EQ(received, 0);
}

TEST(NetSim, AliveNeighborsFiltersDead) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  EXPECT_EQ(net.alive_neighbors(1).size(), 2u);
  net.set_alive(2, false);
  const auto nbrs = net.alive_neighbors(1);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].to, 0);
  EXPECT_TRUE(net.alive_neighbors(2).empty());  // dead node sees nothing
}

TEST(NetSim, LossModelDropsAtPrrRate) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 4.0, 4.0);  // ETX 4 -> PRR 0.25
  NetSim<Msg> net(sim, g, 0.001, 0.002, 77);
  net.set_loss_from_etx(g);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  const int total = 4000;
  for (int i = 0; i < total; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(net.total_messages_sent(), static_cast<std::uint64_t>(total));
  EXPECT_EQ(net.messages_lost() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(total));
  // ~25% delivered, generous statistical bounds.
  EXPECT_GT(received, total / 5);
  EXPECT_LT(received, total * 3 / 10);
  net.clear_loss_model();
  const int before = received;
  net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(received, before + 1);  // reliable again
}

TEST(NetSim, LossModelClampsGoodLinks) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 1.0, 1.0);  // ETX 1 -> never dropped
  NetSim<Msg> net(sim, g, 0.001, 0.002, 78);
  net.set_loss_from_etx(g);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  for (int i = 0; i < 500; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(received, 500);
  EXPECT_EQ(net.messages_lost(), 0u);
}

TEST(NetSim, DeterministicDeliveryTimes) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    const graph::Graph g = triangle();
    NetSim<Msg> net(sim, g, 0.01, 0.1, seed);
    std::vector<double> times;
    net.set_receiver([&](int, int, Msg) { times.push_back(sim.now()); });
    for (int i = 0; i < 10; ++i) net.send(0, 1, Msg{});
    sim.run_all();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace gdvr::sim
