// Tests for the discrete-event simulator and the network message layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/netsim.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilSkipsCancelledBeyondBoundary) {
  // Regression: a cancelled event before the boundary must not cause the
  // next live event *after* the boundary to run.
  Simulator sim;
  bool late_fired = false;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.schedule_at(5.0, [&] { late_fired = true; });
  sim.cancel(id);
  sim.run_until(2.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PendingCount) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PendingCountsLiveEventsNotTombstones) {
  Simulator sim;
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);  // the cancelled event no longer counts
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, SlotStorageIsBoundedByPendingNotTotal) {
  // Regression: callbacks used to accumulate one slot per event *ever*
  // scheduled, so million-event churn runs grew memory without bound. Slots
  // must be reclaimed when events fire or are cancelled.
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 1'000'000) sim.schedule_in(0.001, chain);
  };
  sim.schedule_in(0.001, chain);
  sim.run_all();
  EXPECT_EQ(fired, 1'000'000);
  // One live event at a time -> a handful of slots, never O(total events).
  EXPECT_LE(sim.slot_capacity(), 4u);
  EXPECT_EQ(sim.pending(), 0u);

  // Bursty schedule: capacity tracks the high-water mark of pending events.
  Simulator burst;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) burst.schedule_in(0.001 * (i + 1), [] {});
    burst.run_until(burst.now() + 1.0);
  }
  EXPECT_EQ(burst.pending(), 0u);
  EXPECT_LE(burst.slot_capacity(), 64u);  // ~peak pending (50), not 5000
}

TEST(Simulator, StaleEventIdCannotCancelRecycledSlot) {
  Simulator sim;
  bool first = false;
  bool second = false;
  const auto a = sim.schedule_at(1.0, [&] { first = true; });
  sim.run_all();
  EXPECT_TRUE(first);
  // The fired event's slot is recycled for the next event; the stale id must
  // not cancel the new occupant (generation check).
  const auto b = sim.schedule_at(2.0, [&] { second = true; });
  EXPECT_NE(a, b);
  sim.cancel(a);  // stale: no-op
  sim.run_all();
  EXPECT_TRUE(second);
}

TEST(Simulator, CancelReclaimsSlotImmediately) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sim.schedule_at(1.0, [] {}));
  for (auto id : ids) sim.cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  for (int i = 0; i < 100; ++i) sim.schedule_at(2.0, [] {});
  EXPECT_LE(sim.slot_capacity(), 100u);  // cancelled slots were reused
  sim.run_all();
}

TEST(Simulator, InvalidEventIdIsNeverIssuedAndSafeToCancel) {
  Simulator sim;
  sim.cancel(Simulator::kInvalidEvent);  // no-op, must not crash
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_NE(id, Simulator::kInvalidEvent);
  sim.run_all();
  EXPECT_TRUE(fired);
}

// ---------- NetSim ----------

struct Msg {
  std::string text;
};

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_bidirectional(0, 1, 1.0, 2.0);
  g.add_bidirectional(1, 2, 1.0, 1.0);
  return g;
}

TEST(NetSim, DeliversWithBoundedDelay) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  double delivered_at = -1.0;
  std::string text;
  net.set_receiver([&](int to, int from, Msg m) {
    EXPECT_EQ(to, 1);
    EXPECT_EQ(from, 0);
    delivered_at = sim.now();
    text = m.text;
  });
  EXPECT_TRUE(net.send(0, 1, Msg{"hi"}));
  sim.run_all();
  EXPECT_EQ(text, "hi");
  EXPECT_GE(delivered_at, 0.1);
  EXPECT_LT(delivered_at, 0.2);
}

TEST(NetSim, RefusesMissingLink) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  EXPECT_FALSE(net.send(0, 2, Msg{"nope"}));  // 0-2 not connected
  EXPECT_EQ(net.total_messages_sent(), 0u);
}

TEST(NetSim, CountsPerSender) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  net.set_receiver([](int, int, Msg) {});
  net.send(0, 1, Msg{});
  net.send(1, 0, Msg{});
  net.send(1, 2, Msg{});
  EXPECT_EQ(net.messages_sent(0), 1u);
  EXPECT_EQ(net.messages_sent(1), 2u);
  EXPECT_EQ(net.total_messages_sent(), 3u);
  net.reset_counters();
  EXPECT_EQ(net.total_messages_sent(), 0u);
}

TEST(NetSim, DeadNodesNeitherSendNorReceive) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  net.set_alive(2, false);
  EXPECT_FALSE(net.send(2, 1, Msg{}));  // dead sender
  EXPECT_FALSE(net.send(1, 2, Msg{}));  // dead receiver known at send time
  // Receiver dies while the message is in flight: dropped at delivery.
  net.send(0, 1, Msg{});
  net.set_alive(1, false);
  sim.run_all();
  EXPECT_EQ(received, 0);
}

TEST(NetSim, AliveNeighborsFiltersDead) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  EXPECT_EQ(net.alive_neighbors(1).size(), 2u);
  net.set_alive(2, false);
  const auto nbrs = net.alive_neighbors(1);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].to, 0);
  EXPECT_TRUE(net.alive_neighbors(2).empty());  // dead node sees nothing
}

TEST(NetSim, LossModelDropsAtPrrRate) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 4.0, 4.0);  // ETX 4 -> PRR 0.25
  NetSim<Msg> net(sim, g, 0.001, 0.002, 77);
  net.set_loss_from_etx(g);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  const int total = 4000;
  for (int i = 0; i < total; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(net.total_messages_sent(), static_cast<std::uint64_t>(total));
  EXPECT_EQ(net.messages_lost() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(total));
  // ~25% delivered, generous statistical bounds.
  EXPECT_GT(received, total / 5);
  EXPECT_LT(received, total * 3 / 10);
  net.clear_loss_model();
  const int before = received;
  net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(received, before + 1);  // reliable again
}

TEST(NetSim, LossModelClampsGoodLinks) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 1.0, 1.0);  // ETX 1 -> never dropped
  NetSim<Msg> net(sim, g, 0.001, 0.002, 78);
  net.set_loss_from_etx(g);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  for (int i = 0; i < 500; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(received, 500);
  EXPECT_EQ(net.messages_lost(), 0u);
}

TEST(NetSim, InFlightMessageExpiresWhenReceiverDies) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  net.send(0, 1, Msg{});
  net.set_alive(1, false);
  sim.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_expired(), 1u);
}

TEST(NetSim, RejoinedNodeIsNewIncarnation) {
  // A message in flight when the receiver dies must NOT be delivered to the
  // node's next incarnation, even if the node rejoins before the message's
  // scheduled arrival time.
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });

  const std::uint32_t inc0 = net.incarnation(1);
  net.send(0, 1, Msg{"to old incarnation"});
  // Die and rejoin while the message is in flight (delay >= 0.1s).
  sim.run_until(0.01);
  net.set_alive(1, false);
  net.set_alive(1, true);
  EXPECT_EQ(net.incarnation(1), inc0 + 1);
  sim.run_all();
  EXPECT_EQ(received, 0);  // dropped: addressed to the previous incarnation
  EXPECT_EQ(net.messages_expired(), 1u);

  // The new incarnation receives fresh messages normally.
  net.send(0, 1, Msg{"to new incarnation"});
  sim.run_all();
  EXPECT_EQ(received, 1);
  // Staying alive does not bump the incarnation.
  net.set_alive(1, true);
  EXPECT_EQ(net.incarnation(1), inc0 + 1);
}

TEST(NetSim, DownedLinkRefusesSendUntilRestored) {
  Simulator sim;
  const graph::Graph g = triangle();
  NetSim<Msg> net(sim, g, 0.1, 0.2, 42);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });

  EXPECT_TRUE(net.link_usable(0, 1));
  net.set_link_up(0, 1, false);
  EXPECT_FALSE(net.link_up(0, 1));
  EXPECT_FALSE(net.link_up(1, 0));  // both directions share one state
  EXPECT_FALSE(net.send(0, 1, Msg{}));
  EXPECT_FALSE(net.send(1, 0, Msg{}));
  EXPECT_EQ(net.total_messages_sent(), 0u);  // link-layer failure: not counted
  // Other links are unaffected, and alive_neighbors filters the downed link.
  EXPECT_TRUE(net.send(1, 2, Msg{}));
  ASSERT_EQ(net.alive_neighbors(0).size(), 0u);
  ASSERT_EQ(net.alive_neighbors(1).size(), 1u);
  EXPECT_EQ(net.alive_neighbors(1)[0].to, 2);

  net.set_link_up(0, 1, true);
  EXPECT_TRUE(net.send(0, 1, Msg{}));
  sim.run_all();
  EXPECT_EQ(received, 2);
  // Downing a non-existent link is a no-op, not a phantom entry.
  net.set_link_up(0, 2, false);
  EXPECT_FALSE(net.link_usable(0, 2));  // still unusable: no physical link
  EXPECT_TRUE(net.link_up(0, 2));       // but not administratively down
}

TEST(NetSim, FaultLossDropsAndAccounts) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 1.0, 1.0);
  NetSim<Msg> net(sim, g, 0.001, 0.002, 91);
  net.set_fault_loss(0.5);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  const int total = 4000;
  for (int i = 0; i < total; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(net.total_messages_sent(), static_cast<std::uint64_t>(total));
  EXPECT_EQ(net.fault_messages_lost(), net.messages_lost());
  EXPECT_EQ(net.messages_lost() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(total));
  EXPECT_GT(received, total * 2 / 5);  // ~50% delivered
  EXPECT_LT(received, total * 3 / 5);
  net.set_fault_loss(0.0);
  const int before = received;
  net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(received, before + 1);
}

TEST(NetSim, FaultLossStacksWithEtxLoss) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 2.0, 2.0);  // ETX 2 -> PRR 0.5
  NetSim<Msg> net(sim, g, 0.001, 0.002, 92);
  net.set_loss_from_etx(g);
  net.set_fault_loss(0.5);
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  const int total = 4000;
  for (int i = 0; i < total; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  // Survives both coins: ~25%.
  EXPECT_GT(received, total / 5);
  EXPECT_LT(received, total * 3 / 10);
  EXPECT_EQ(net.messages_lost() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(total));
  EXPECT_LT(net.fault_messages_lost(), net.messages_lost());  // ETX drops too
}

TEST(NetSim, DuplicationDeliversTwiceWithIndependentDelays) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 1.0, 1.0);
  NetSim<Msg> net(sim, g, 0.001, 0.002, 93);
  net.set_duplication(1.0);  // every delivery duplicated
  int received = 0;
  net.set_receiver([&](int, int, Msg) { ++received; });
  for (int i = 0; i < 100; ++i) net.send(0, 1, Msg{});
  sim.run_all();
  EXPECT_EQ(received, 200);
  EXPECT_EQ(net.messages_duplicated(), 100u);
  EXPECT_EQ(net.total_messages_sent(), 100u);  // duplicates are not "sent"
}

TEST(NetSim, DelayFactorStretchesDeliveryTimes) {
  Simulator sim;
  graph::Graph g(2);
  g.add_bidirectional(0, 1, 1.0, 1.0);
  NetSim<Msg> net(sim, g, 0.1, 0.2, 94);
  std::vector<double> times;
  net.set_receiver([&](int, int, Msg) { times.push_back(sim.now()); });
  net.set_delay_factor(10.0);
  net.send(0, 1, Msg{});
  net.set_delay_factor(1.0);
  net.send(0, 1, Msg{});  // sent later, arrives first: reordering
  sim.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_GE(times[0], 0.1);   // normal-delay message
  EXPECT_LT(times[0], 0.2);
  EXPECT_GE(times[1], 1.0);   // spiked message, 10x delay
  EXPECT_LT(times[1], 2.0);
}

TEST(NetSim, FaultKnobsOffPreservesRngStream) {
  // With every fault knob at its neutral value, the RNG draw sequence must be
  // identical to a NetSim without fault support -- existing seeded benches
  // depend on byte-identical delivery schedules.
  auto run = [](bool touch_knobs) {
    Simulator sim;
    const graph::Graph g = triangle();
    NetSim<Msg> net(sim, g, 0.01, 0.1, 1234);
    if (touch_knobs) {
      net.set_fault_loss(0.7);
      net.set_duplication(0.9);
      net.set_fault_loss(0.0);  // back to neutral
      net.set_duplication(0.0);
      net.set_delay_factor(1.0);
    }
    std::vector<double> times;
    net.set_receiver([&](int, int, Msg) { times.push_back(sim.now()); });
    for (int i = 0; i < 20; ++i) net.send(0, 1, Msg{});
    sim.run_all();
    return times;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(NetSim, DeterministicDeliveryTimes) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    const graph::Graph g = triangle();
    NetSim<Msg> net(sim, g, 0.01, 0.1, seed);
    std::vector<double> times;
    net.set_receiver([&](int, int, Msg) { times.push_back(sim.now()); });
    for (int i = 0; i < 10; ++i) net.send(0, 1, Msg{});
    sim.run_all();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace gdvr::sim
