// Tests for the reliable control transport (ACK/retransmit wrapper).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "graph/graph.hpp"
#include "sim/netsim.hpp"
#include "sim/reliable.hpp"
#include "sim/simulator.hpp"

namespace gdvr::sim {
namespace {

TEST(RetransmitBackoff, ExponentialWithCap) {
  const RetransmitBackoff b(0.3, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(b.delay(1), 0.3);
  EXPECT_DOUBLE_EQ(b.delay(2), 0.6);
  EXPECT_DOUBLE_EQ(b.delay(3), 1.2);
  EXPECT_DOUBLE_EQ(b.delay(4), 2.4);
  EXPECT_DOUBLE_EQ(b.delay(5), 4.0);  // capped
  EXPECT_DOUBLE_EQ(b.delay(6), 4.0);
}

TEST(DedupWindow, AcceptsFreshRejectsRepeats) {
  DedupWindow w(64);
  EXPECT_TRUE(w.accept(5));
  EXPECT_FALSE(w.accept(5));
  EXPECT_TRUE(w.accept(7));
  EXPECT_FALSE(w.accept(5));
  EXPECT_EQ(w.suppressed(), 2u);
}

TEST(DedupWindow, CompactsContiguousPrefix) {
  DedupWindow w(64);
  // Out-of-order arrivals still compact once the gap fills.
  EXPECT_TRUE(w.accept(2));
  EXPECT_TRUE(w.accept(3));
  EXPECT_TRUE(w.accept(1));  // fills the gap; floor slides to 3
  EXPECT_FALSE(w.accept(1));
  EXPECT_FALSE(w.accept(2));
  EXPECT_FALSE(w.accept(3));
  EXPECT_TRUE(w.accept(4));
}

TEST(DedupWindow, CapConservativelyRejectsStragglers) {
  DedupWindow w(2);
  // Widely spaced sequences never compact; the cap evicts the oldest by
  // raising the floor, so a straggler below the floor reads as a duplicate.
  EXPECT_TRUE(w.accept(10));
  EXPECT_TRUE(w.accept(20));
  EXPECT_TRUE(w.accept(30));  // evicts 10: floor >= 10 now
  EXPECT_FALSE(w.accept(5));  // straggler below floor: suppressed (safe)
  EXPECT_FALSE(w.accept(10));
}

// ---------- transport over a NetSim ----------

struct RMsg {
  int payload = 0;
  bool is_ack = false;
  std::uint64_t rel_seq = 0;
};

struct Fixture {
  Simulator sim;
  graph::Graph g{2};
  NetSim<RMsg> net;
  ReliableTransport<RMsg> rel;
  std::vector<int> delivered;  // app-layer payloads, duplicates suppressed

  explicit Fixture(std::uint64_t seed, ReliableConfig cfg = {})
      : g([] {
          graph::Graph gg(2);
          gg.add_bidirectional(0, 1, 1.0, 1.0);
          return gg;
        }()),
        net(sim, g, 0.01, 0.05, seed),
        rel(net, cfg, [](int, int, std::uint64_t seq) {
          RMsg a;
          a.is_ack = true;
          a.rel_seq = seq;
          return a;
        }) {
    net.set_receiver([this](int to, int from, RMsg m) {
      if (m.is_ack) {
        rel.on_ack(to, m.rel_seq);
        return;
      }
      if (m.rel_seq != 0 && !rel.on_receive(to, from, m.rel_seq)) return;
      delivered.push_back(m.payload);
    });
  }
};

TEST(ReliableTransport, DeliversWithoutLossNoRetransmits) {
  Fixture f(11);
  for (int i = 0; i < 10; ++i) f.rel.send(0, 1, RMsg{i});
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 10u);
  EXPECT_EQ(f.rel.stats().acked, 10u);
  EXPECT_EQ(f.rel.stats().retransmissions, 0u);
  EXPECT_EQ(f.rel.stats().gave_up, 0u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

TEST(ReliableTransport, RetransmitsThroughHeavyLoss) {
  Fixture f(12);
  f.net.set_fault_loss(0.5);  // both data and ACKs dropped at 50%
  const int total = 30;
  for (int i = 0; i < total; ++i) f.rel.send(0, 1, RMsg{i});
  f.sim.run_all();
  // Every message either got through (possibly after retries) or exhausted
  // its retry budget; nothing stays in flight.
  EXPECT_EQ(f.rel.in_flight(), 0u);
  EXPECT_EQ(f.rel.stats().acked + f.rel.stats().gave_up, static_cast<std::uint64_t>(total));
  EXPECT_GT(f.rel.stats().retransmissions, 0u);
  // App-layer delivery is deduplicated and near-complete: a message is lost
  // only if all 6 attempts drop (0.5^6 ~ 1.6%).
  const std::set<int> unique(f.delivered.begin(), f.delivered.end());
  EXPECT_EQ(unique.size(), f.delivered.size());  // no app-layer duplicates
  EXPECT_GE(unique.size(), 27u);
}

TEST(ReliableTransport, SuppressesDuplicateDeliveries) {
  Fixture f(13);
  f.net.set_duplication(1.0);  // the network duplicates every delivery
  for (int i = 0; i < 20; ++i) f.rel.send(0, 1, RMsg{i});
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 20u);  // each payload surfaces exactly once
  EXPECT_GE(f.rel.stats().duplicates_suppressed, 20u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

TEST(ReliableTransport, RetransmitsAcrossLinkOutage) {
  Fixture f(14);
  f.net.set_link_up(0, 1, false);
  f.rel.send(0, 1, RMsg{42});  // initial transmission fails at the link layer
  f.sim.run_until(0.5);
  EXPECT_TRUE(f.delivered.empty());
  f.net.set_link_up(0, 1, true);  // outage ends before the retry budget does
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0], 42);
  EXPECT_EQ(f.rel.stats().acked, 1u);
  EXPECT_GT(f.rel.stats().retransmissions, 0u);
}

TEST(ReliableTransport, GivesUpAfterRetryCap) {
  ReliableConfig cfg;
  cfg.max_attempts = 4;
  Fixture f(15, cfg);
  f.net.set_alive(1, false);
  f.rel.send(0, 1, RMsg{7});
  f.sim.run_all();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.rel.stats().gave_up, 1u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
  // Exactly max_attempts transmissions were attempted (all refused by the
  // dead receiver, so none were counted as sent on the wire).
  EXPECT_EQ(f.rel.stats().retransmissions, 3u);
}

TEST(ReliableTransport, SenderDeathAbortsRetries) {
  Fixture f(16);
  f.net.set_fault_loss(1.0);  // nothing ever arrives
  f.rel.send(0, 1, RMsg{9});
  f.sim.run_until(0.1);
  f.net.set_alive(0, false);  // sender dies mid-retry
  f.sim.run_all();
  EXPECT_EQ(f.rel.stats().gave_up, 1u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

TEST(ReliableTransport, SenderRejoinAbortsStaleRetries) {
  // A sender that dies and rejoins is a fresh incarnation: retries on behalf
  // of its previous life must stop even though the node is alive again.
  Fixture f(17);
  f.net.set_fault_loss(1.0);
  f.rel.send(0, 1, RMsg{9});
  f.sim.run_until(0.1);
  f.net.set_alive(0, false);
  f.net.set_alive(0, true);
  f.sim.run_all();
  EXPECT_EQ(f.rel.stats().gave_up, 1u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

TEST(ReliableTransport, RetransmitJitterIsRunToRunDeterministic) {
  // Retransmit timeouts carry a deterministic jitter factor hashed from
  // (sequence, attempt): two identical runs must produce bit-identical
  // retransmission schedules and deliveries, jitter included.
  auto run = [] {
    Fixture f(21);
    f.net.set_fault_loss(0.5);
    for (int i = 0; i < 30; ++i) f.rel.send(0, 1, RMsg{i});
    f.sim.run_all();
    return std::make_tuple(f.delivered, f.rel.stats().retransmissions, f.rel.stats().acked,
                           f.rel.stats().gave_up);
  };
  EXPECT_EQ(run(), run());
}

TEST(ReliableTransport, JitterZeroKeepsExactBackoffSchedule) {
  // rto_jitter = 0 must reproduce the exact textbook backoff: with a dead
  // receiver and max_attempts = 3, the give-up lands after
  // 0.3 + 0.6 = 0.9 s (the third attempt's timer is the last to arm).
  ReliableConfig cfg;
  cfg.rto_jitter = 0.0;
  cfg.max_attempts = 3;
  Fixture f(22, cfg);
  f.net.set_alive(1, false);
  f.rel.send(0, 1, RMsg{1});
  f.sim.run_until(0.89);
  EXPECT_EQ(f.rel.in_flight(), 1u);
  f.sim.run_until(0.91 + cfg.rto_initial_s * 4.0);  // third timer expires
  EXPECT_EQ(f.rel.stats().gave_up, 1u);
}

TEST(ReliableTransport, GiveUpHandlerReportsUnreachableHop) {
  ReliableConfig cfg;
  cfg.max_attempts = 3;
  Fixture f(23, cfg);
  std::vector<std::tuple<int, int, int>> reported;
  f.rel.set_give_up_handler(
      [&](int from, int to, const RMsg& m) { reported.emplace_back(from, to, m.payload); });
  f.net.set_alive(1, false);
  f.rel.send(0, 1, RMsg{5});
  f.sim.run_all();
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], std::make_tuple(0, 1, 5));
  EXPECT_EQ(f.rel.stats().gave_up, 1u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

TEST(ReliableTransport, GiveUpHandlerSilentWhenSenderDied) {
  // The handler is an "evict this hop" signal for the sender's protocol
  // state; when the sender itself died, that state is gone and the handler
  // must not fire.
  Fixture f(24);
  int fired = 0;
  f.rel.set_give_up_handler([&](int, int, const RMsg&) { ++fired; });
  f.net.set_fault_loss(1.0);
  f.rel.send(0, 1, RMsg{9});
  f.sim.run_until(0.1);
  f.net.set_alive(0, false);
  f.sim.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(f.rel.stats().gave_up, 1u);
}

TEST(ReliableTransport, GiveUpHandlerMayReenterTheTransport) {
  // The pending entry is detached before the handler runs, so a handler that
  // immediately resends (e.g. over another route) must not corrupt state.
  ReliableConfig cfg;
  cfg.max_attempts = 2;
  Fixture f(25, cfg);
  int fired = 0;
  f.rel.set_give_up_handler([&](int from, int to, const RMsg& m) {
    if (++fired == 1) f.rel.send(from, to, m);  // one re-send, then give up for good
  });
  f.net.set_alive(1, false);
  f.rel.send(0, 1, RMsg{3});
  f.sim.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(f.rel.stats().gave_up, 2u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

TEST(ReliableTransport, AckAtWrongNodeIsIgnored) {
  Fixture f(18);
  f.rel.send(0, 1, RMsg{1});
  // A stray ACK arriving at a node that is not the original sender must not
  // clear the pending entry.
  f.rel.on_ack(1, 1);
  EXPECT_EQ(f.rel.in_flight(), 1u);
  f.sim.run_all();
  EXPECT_EQ(f.rel.stats().acked, 1u);
  EXPECT_EQ(f.rel.in_flight(), 0u);
}

}  // namespace
}  // namespace gdvr::sim
