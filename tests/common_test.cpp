// Tests for the common substrate: vectors, RNG, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/vec.hpp"

namespace gdvr {
namespace {

// ---------- Vec ----------

TEST(Vec, ConstructionAndAccess) {
  Vec v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.dim(), 3);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  Vec z = Vec::zero(5);
  EXPECT_EQ(z.dim(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(z[i], 0.0);
}

TEST(Vec, Arithmetic) {
  const Vec a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, (Vec{4, 7}));
  EXPECT_EQ(b - a, (Vec{2, 3}));
  EXPECT_EQ(a * 2.0, (Vec{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec{2, 4}));
  EXPECT_EQ(b / 2.0, (Vec{1.5, 2.5}));
}

TEST(Vec, DotNormDistance) {
  const Vec a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot(Vec{1, 1}), 7.0);
  EXPECT_DOUBLE_EQ(a.distance(Vec{0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, Vec{3, 0}), 4.0);
}

TEST(Vec, UnitVector) {
  const Vec a{3, 4};
  const Vec u = a.unit();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u[0], 0.6, 1e-12);
  // Zero vector: deterministic unit along the first axis, never NaN.
  const Vec z = Vec::zero(3).unit();
  EXPECT_NEAR(z.norm(), 1.0, 1e-12);
  EXPECT_TRUE(z.finite());
}

TEST(Vec, FiniteDetection) {
  Vec v{1, 2};
  EXPECT_TRUE(v.finite());
  v[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(v.finite());
  v[0] = std::nan("");
  EXPECT_FALSE(v.finite());
}

TEST(Vec, CompoundAssignment) {
  Vec a{1, 1};
  a += Vec{2, 3};
  EXPECT_EQ(a, (Vec{3, 4}));
  a -= Vec{1, 1};
  EXPECT_EQ(a, (Vec{2, 3}));
  a *= 3.0;
  EXPECT_EQ(a, (Vec{6, 9}));
}

// ---------- Rng ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto x = rng.uniform_int(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStat rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, PointOnSphereRadius) {
  Rng rng(13);
  const Vec c{1, 2, 3};
  for (int i = 0; i < 100; ++i) {
    const Vec p = rng.point_on_sphere(c, 2.5);
    EXPECT_NEAR(p.distance(c), 2.5, 1e-9);
  }
}

TEST(Rng, PointInBox) {
  Rng rng(17);
  const Vec extent{10.0, 5.0};
  for (int i = 0; i < 200; ++i) {
    const Vec p = rng.point_in_box(extent);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LT(p[0], 10.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LT(p[1], 5.0);
  }
}

TEST(Rng, SplitStreamsIndependent) {
  Rng base(42);
  Rng a = base.split(1);
  Rng b = base.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

// ---------- stats ----------

TEST(Stats, RunningStatBasics) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatMerge) {
  RunningStat a, b, all;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MergeEdgeCases) {
  // Merging an empty operand (either side) must be exact, not just close.
  RunningStat filled;
  for (double x : {1.0, 2.0, 6.0}) filled.add(x);
  const double mean = filled.mean(), var = filled.variance();

  RunningStat empty_rhs = filled;
  empty_rhs.merge(RunningStat{});
  EXPECT_EQ(empty_rhs.count(), 3u);
  EXPECT_DOUBLE_EQ(empty_rhs.mean(), mean);
  EXPECT_DOUBLE_EQ(empty_rhs.variance(), var);

  RunningStat empty_lhs;
  empty_lhs.merge(filled);
  EXPECT_EQ(empty_lhs.count(), 3u);
  EXPECT_DOUBLE_EQ(empty_lhs.mean(), mean);
  EXPECT_DOUBLE_EQ(empty_lhs.variance(), var);
  EXPECT_DOUBLE_EQ(empty_lhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty_lhs.max(), 6.0);

  RunningStat both_empty;
  both_empty.merge(RunningStat{});
  EXPECT_EQ(both_empty.count(), 0u);
  EXPECT_DOUBLE_EQ(both_empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(both_empty.min(), 0.0);

  // Self-merge (a copy of oneself) doubles the count, keeps the mean, and
  // keeps the variance finite and correct.
  RunningStat self = filled;
  self.merge(filled);
  EXPECT_EQ(self.count(), 6u);
  EXPECT_NEAR(self.mean(), mean, 1e-12);
  // Var of {1,2,6,1,2,6} with n-1 denominator: mean 3, ss = 2*(4+1+9) = 28, /5.
  EXPECT_NEAR(self.variance(), 28.0 / 5.0, 1e-12);
}

TEST(Stats, MergeIsOrderInsensitive) {
  // a.merge(b) and b.merge(a) agree to floating-point roundoff, and both
  // match the stat over the concatenated stream.
  RunningStat a, b, all;
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    (i < 20 ? a : b).add(x);  // deliberately unequal sizes
    all.add(x);
  }
  RunningStat ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(ab.min(), ba.min());
  EXPECT_DOUBLE_EQ(ab.max(), ba.max());
  EXPECT_NEAR(ab.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(ab.variance(), all.variance(), 1e-9);
}

TEST(Stats, SingleSampleVarianceIsZero) {
  RunningStat rs;
  rs.add(42.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);  // n-1 denominator must not divide by 0
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);

  // Merging two singletons gives a well-defined two-sample variance.
  RunningStat other;
  other.add(44.0);
  rs.merge(other);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_DOUBLE_EQ(rs.mean(), 43.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 2.0);
}

TEST(Stats, PercentileEndpointsAndTwoElements) {
  // q = 0 / q = 1 must hit the exact extremes without interpolation
  // artifacts, including on single- and two-element inputs.
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);

  const std::vector<double> two{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(two, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(two, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(two, 0.5), 15.0);   // linear interpolation
  EXPECT_DOUBLE_EQ(percentile(two, 0.25), 12.5);
  // Unsorted input is sorted internally.
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 0.75), 17.5);
}

TEST(Stats, MeanStddevSpan) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(stddev_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace gdvr
