// Integration tests for VPoD: token flood, position initialization,
// adjustment convergence, adaptive timeouts, and churn.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/embedding.hpp"
#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"
#include "vpod/vpod.hpp"

namespace gdvr::vpod {
namespace {

radio::Topology dense_topo(int n, std::uint64_t seed) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

TEST(Vpod, TokenReachesEveryoneAndAllJoin) {
  const radio::Topology topo = dense_topo(80, 2);
  VpodConfig vc;
  vc.dim = 2;
  eval::VpodRunner runner(topo, /*use_etx=*/false, vc);
  runner.run_to_period(2);
  for (int u = 0; u < topo.size(); ++u) {
    EXPECT_TRUE(runner.protocol().overlay().active(u)) << u;
    EXPECT_TRUE(runner.protocol().overlay().joined(u)) << u;
  }
}

TEST(Vpod, StartingNodeAtOrigin) {
  const radio::Topology topo = dense_topo(50, 3);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, false, vc);
  runner.run_to_period(0);
  EXPECT_EQ(runner.protocol().overlay().position(0), Vec::zero(3));
}

TEST(Vpod, PositionsLiveInConfiguredDimension) {
  const radio::Topology topo = dense_topo(50, 4);
  for (int dim : {2, 3, 4}) {
    VpodConfig vc;
    vc.dim = dim;
    eval::VpodRunner runner(topo, false, vc);
    runner.run_to_period(1);
    for (int u = 0; u < topo.size(); ++u)
      EXPECT_EQ(runner.protocol().overlay().position(u).dim(), dim);
  }
}

TEST(Vpod, ErrorsDecreaseFromInitialOne) {
  const radio::Topology topo = dense_topo(80, 5);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, false, vc);
  runner.run_to_period(8);
  double avg_err = 0.0;
  for (int u = 0; u < topo.size(); ++u) avg_err += runner.protocol().overlay().error(u);
  avg_err /= topo.size();
  EXPECT_LT(avg_err, 0.5);  // started at 1.0
}

TEST(Vpod, EmbeddingQualityImproves) {
  const radio::Topology topo = dense_topo(100, 7);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/false, vc);
  const analysis::Matrix costs = analysis::cost_matrix(topo.hops);

  runner.run_to_period(0);
  const auto early = analysis::embedding_quality(runner.snapshot().pos, costs);
  runner.run_to_period(10);
  const auto late = analysis::embedding_quality(runner.snapshot().pos, costs);
  EXPECT_LT(late.stress, early.stress);
  EXPECT_LT(late.global_rel_error, early.global_rel_error);
  EXPECT_LT(late.stress, 0.5);
}

TEST(Vpod, GdvRoutingConvergesToFullDelivery) {
  const radio::Topology topo = dense_topo(100, 8);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/true, vc);
  runner.run_to_period(12);
  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 300;
  const auto stats = eval::eval_gdv(runner.snapshot(), topo, opts);
  EXPECT_GE(stats.success_rate, 0.99);
  EXPECT_GE(stats.transmissions, stats.optimal_transmissions);  // sanity
  EXPECT_LT(stats.transmissions, 2.0 * stats.optimal_transmissions);
}

TEST(Vpod, FixedTimeoutModeRuns) {
  const radio::Topology topo = dense_topo(60, 9);
  VpodConfig vc;
  vc.dim = 3;
  vc.timeout_mode = VpodConfig::TimeoutMode::kFixed;
  vc.fixed_timeout_s = 2.0;
  eval::VpodRunner runner(topo, false, vc);
  runner.run_to_period(4);
  for (int u = 0; u < topo.size(); ++u) EXPECT_TRUE(runner.protocol().overlay().joined(u));
}

TEST(Vpod, AdjustmentCountRespectsTimeout) {
  // With a fixed timeout of 5 s and Ta = 20 s, each node runs at most
  // ceil(20/5) = 4 adjustments per period; with 2 s, up to 10. More position
  // updates (messages) should flow in the latter case.
  const radio::Topology topo = dense_topo(60, 10);
  auto run_messages = [&](double timeout) {
    VpodConfig vc;
    vc.dim = 2;
    vc.timeout_mode = VpodConfig::TimeoutMode::kFixed;
    vc.fixed_timeout_s = timeout;
    eval::VpodRunner runner(topo, false, vc);
    runner.run_to_period(1);
    runner.messages_per_node_since_mark();
    runner.run_to_period(3);
    return runner.messages_per_node_since_mark();
  };
  EXPECT_GT(run_messages(2.0), 1.3 * run_messages(5.0));
}

TEST(Vpod, AdaptiveTimeoutSlowsAfterConvergence) {
  // After convergence errors are small, so adaptive delta_u -> Ta and each
  // node makes roughly one adjustment per period; early periods make many.
  const radio::Topology topo = dense_topo(60, 11);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, false, vc);
  runner.run_to_period(1);
  runner.messages_per_node_since_mark();
  runner.run_to_period(2);
  const double early = runner.messages_per_node_since_mark();
  runner.run_to_period(14);
  runner.messages_per_node_since_mark();
  runner.run_to_period(15);
  const double late = runner.messages_per_node_since_mark();
  EXPECT_LT(late, early);
}

TEST(Vpod, StorageDropsAfterConvergence) {
  // Paper Fig. 14(a): storage starts high (DT neighbors far away in the
  // arbitrary initial embedding) and falls once positions converge.
  const radio::Topology topo = dense_topo(100, 12);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, false, vc);
  runner.run_to_period(2);
  const double early = runner.avg_storage();
  runner.run_to_period(15);
  const double late = runner.avg_storage();
  EXPECT_LT(late, early);
  EXPECT_GT(late, 14.0);  // at least the physical neighborhood
}

TEST(Vpod, ChurnRecovery) {
  // Paper Sec. IV-H: after heavy churn, performance degrades then recovers
  // within a few periods.
  const radio::Topology topo = dense_topo(100, 13);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/false, vc);
  runner.run_to_period(8);

  // Fail 30% of nodes (keep node 0), then join replacements at the same
  // physical spots (fresh protocol state).
  Rng rng(99);
  std::vector<int> dead;
  while (dead.size() < static_cast<std::size_t>(topo.size() / 3)) {
    const int u = 1 + rng.uniform_index(topo.size() - 1);
    if (std::find(dead.begin(), dead.end(), u) == dead.end()) dead.push_back(u);
  }
  for (int u : dead) runner.protocol().fail_node(u);
  for (int u : dead) runner.protocol().join_node(u);

  runner.run_to_period(16);
  eval::EvalOptions opts;
  opts.pair_samples = 300;
  const auto stats = eval::eval_gdv(runner.snapshot(), topo, opts);
  EXPECT_GE(stats.success_rate, 0.97);
  EXPECT_LT(stats.stretch, 1.5);
  for (int u : dead) EXPECT_TRUE(runner.protocol().overlay().joined(u)) << u;
}

TEST(Vpod, DeterministicGivenSeeds) {
  const radio::Topology topo = dense_topo(50, 14);
  auto run = [&] {
    VpodConfig vc;
    vc.dim = 2;
    eval::VpodRunner runner(topo, false, vc);
    runner.run_to_period(5);
    std::vector<Vec> pos;
    for (int u = 0; u < topo.size(); ++u) pos.push_back(runner.protocol().overlay().position(u));
    return pos;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Vpod, ConvergesDespiteLossyControlPlane) {
  // Every protocol message is dropped with probability 1 - PRR of its link;
  // retries and soft state must still converge the system.
  const radio::Topology topo = dense_topo(80, 16);
  VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/true, vc);
  runner.enable_control_loss();
  runner.run_to_period(12);
  EXPECT_GT(runner.net().messages_lost(), 0u);
  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 200;
  const auto stats = eval::eval_gdv(runner.snapshot(), topo, opts);
  EXPECT_GE(stats.success_rate, 0.95);
  EXPECT_LT(stats.transmissions, 1.8 * stats.optimal_transmissions);
}

TEST(Vpod, HopAndEtxMetricsBothEmbed) {
  const radio::Topology topo = dense_topo(80, 15);
  for (bool use_etx : {false, true}) {
    VpodConfig vc;
    vc.dim = 3;
    eval::VpodRunner runner(topo, use_etx, vc);
    runner.run_to_period(10);
    eval::EvalOptions opts;
    opts.use_etx = use_etx;
    opts.pair_samples = 200;
    const auto stats = eval::eval_gdv(runner.snapshot(), topo, opts);
    EXPECT_GE(stats.success_rate, 0.98) << "use_etx=" << use_etx;
  }
}

}  // namespace
}  // namespace gdvr::vpod
