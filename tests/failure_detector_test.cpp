// Tests for the adaptive (phi-accrual) failure detector: the suspicion
// math on known sample streams, the bootstrap fallback, and -- on a live
// overlay -- the two acceptance bounds: a crashed multi-hop DT neighbor is
// evicted within 15 s (a third of the fixed 45 s soft-state timeout), and a
// 4x delay spike causes zero false evictions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "mdt/failure_detector.hpp"
#include "mdt/overlay.hpp"
#include "radio/topology.hpp"
#include "sim/simulator.hpp"

namespace gdvr::mdt {
namespace {

FailureDetectorConfig test_config() {
  FailureDetectorConfig c;
  c.enabled = true;
  return c;
}

TEST(PhiAccrual, PhiIsZeroAfterHeartbeatAndGrowsThroughSilence) {
  PhiAccrualDetector d(test_config(), 0.0);
  for (int i = 1; i <= 8; ++i) d.heartbeat(3.0 * i);  // clean 3 s cadence
  EXPECT_EQ(d.samples(), 8);
  EXPECT_NEAR(d.mean_interval(), 3.0, 1e-9);
  const double t_last = 24.0;
  EXPECT_LT(d.phi(t_last + 0.1), 0.1);
  const double p1 = d.phi(t_last + 4.0);
  const double p2 = d.phi(t_last + 8.0);
  const double p3 = d.phi(t_last + 16.0);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_GT(p3, 9.0);
}

TEST(PhiAccrual, SingleMissedHeartbeatStaysBelowThreshold) {
  // The min_stddev floor is sized so one lost heartbeat (one extra period of
  // silence) does not cross the threshold, while two consecutive losses do.
  const FailureDetectorConfig c = test_config();
  PhiAccrualDetector d(c, 0.0);
  for (int i = 1; i <= 10; ++i) d.heartbeat(c.heartbeat_period_s * i);
  const double t_last = c.heartbeat_period_s * 10;
  EXPECT_FALSE(d.suspect(t_last + 2.0 * c.heartbeat_period_s));  // one loss
  EXPECT_TRUE(d.suspect(t_last + 3.5 * c.heartbeat_period_s));   // two losses
}

TEST(PhiAccrual, BootstrapFallsBackToFixedTimeout) {
  const FailureDetectorConfig c = test_config();
  PhiAccrualDetector d(c, 0.0);
  d.heartbeat(3.0);
  d.heartbeat(6.0);  // 2 samples < min_samples: the normal model is not used
  ASSERT_LT(d.samples(), c.min_samples);
  // Thin statistics never evict early, even after many silent periods...
  EXPECT_FALSE(d.suspect(6.0 + 0.9 * c.bootstrap_stale_s));
  // ...but the legacy staleness bound still applies.
  EXPECT_TRUE(d.suspect(6.0 + 1.1 * c.bootstrap_stale_s));
}

TEST(PhiAccrual, LearnsTheObservedCadence) {
  // A neighbor heartbeating at 9 s (three times the configured period, e.g.
  // over a congested path) must be judged against its own cadence: silence
  // that would damn a 3 s neighbor is routine here.
  PhiAccrualDetector d(test_config(), 0.0);
  for (int i = 1; i <= 8; ++i) d.heartbeat(9.0 * i);
  EXPECT_NEAR(d.mean_interval(), 9.0, 1e-9);
  EXPECT_FALSE(d.suspect(72.0 + 10.0));
  EXPECT_TRUE(d.suspect(72.0 + 30.0));
}

TEST(PhiAccrual, WindowSlidesOldSamplesOut) {
  FailureDetectorConfig c = test_config();
  c.window = 4;
  PhiAccrualDetector d(c, 0.0);
  double t = 0.0;
  for (int i = 0; i < 4; ++i) d.heartbeat(t += 10.0);
  for (int i = 0; i < 4; ++i) d.heartbeat(t += 2.0);  // cadence shifts
  EXPECT_NEAR(d.mean_interval(), 2.0, 1e-9);  // the 10 s samples aged out
  EXPECT_EQ(d.samples(), 4);
}

TEST(PhiAccrual, VarianceTracksNoisySamples) {
  PhiAccrualDetector d(test_config(), 0.0);
  d.heartbeat(2.0);   // intervals: 2, 4
  d.heartbeat(6.0);
  EXPECT_NEAR(d.mean_interval(), 3.0, 1e-9);
  EXPECT_NEAR(d.stddev_interval(), 1.0, 1e-9);
}

// --------------------------------------------------------------------------
// Live-overlay acceptance bounds, on a star topology (hub 0, leaves around
// it): leaves are multi-hop DT neighbors of each other through the hub, so
// their liveness tracking runs entirely on heartbeats + phi.

struct Star {
  radio::Topology topo;
  sim::Simulator sim;
  std::unique_ptr<Net> net;
  std::unique_ptr<MdtOverlay> overlay;
  int leaves;

  explicit Star(int leaf_count) : leaves(leaf_count) {
    graph::Graph g(leaves + 1);
    topo.positions.push_back(Vec{0.0, 0.0});
    for (int i = 0; i < leaves; ++i) {
      const double angle = 2.0 * 3.14159265358979 * i / leaves;
      topo.positions.push_back(Vec{std::cos(angle), std::sin(angle)});
      g.add_bidirectional(0, i + 1, 1.0, 1.0);
    }
    topo.etx = g;
    topo.hops = g.with_unit_costs();
    net = std::make_unique<Net>(sim, topo.etx, 0.01, 0.1, 3);
    MdtConfig mc;
    mc.dim = 2;
    mc.fd.enabled = true;
    overlay = std::make_unique<MdtOverlay>(*net, mc);
    overlay->attach();
    for (int u = 0; u <= leaves; ++u)
      overlay->activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
    for (int u = 1; u <= leaves; ++u) sim.schedule_at(0.1 * u, [this, u] { overlay->start_join(u); });
    sim.run_until(15.0);
    for (int u = 0; u <= leaves; ++u) overlay->run_maintenance_round(u);
    sim.run_until(25.0);
    for (int u = 0; u <= leaves; ++u) overlay->run_maintenance_round(u);
    // Long steady stretch: every leaf-leaf detector accumulates well past
    // min_samples heartbeat inter-arrivals.
    sim.run_until(60.0);
  }

  // Leaves (multi-hop relationships only) currently holding y as DT neighbor.
  std::vector<int> watchers_of(int y) const {
    std::vector<int> out;
    for (int u = 1; u <= leaves; ++u) {
      if (u == y) continue;
      const auto nbrs = overlay->dt_neighbors(u);
      if (std::find(nbrs.begin(), nbrs.end(), y) != nbrs.end()) out.push_back(u);
    }
    return out;
  }
};

TEST(FailureDetectorLive, CrashedMultiHopNeighborEvictedWithin15s) {
  Star star(6);
  const int victim = 2;
  const auto watchers = star.watchers_of(victim);
  ASSERT_FALSE(watchers.empty());  // leaves really are DT neighbors via the hub
  ASSERT_GT(star.overlay->fd_stats().heartbeats_sent, 0u);
  ASSERT_EQ(star.overlay->fd_stats().evictions, 0u);  // steady state: no false evictions

  const sim::Time t_crash = star.sim.now();
  star.overlay->deactivate(victim);

  // One missed heartbeat is not proof of death: shortly after the crash the
  // victim must still be held (phi below threshold).
  star.sim.run_until(t_crash + 3.0);
  EXPECT_EQ(star.overlay->fd_stats().evictions, 0u);

  // A third of the fixed 45 s soft-state timeout: every watcher has evicted.
  star.sim.run_until(t_crash + 15.0);
  EXPECT_GE(star.overlay->fd_stats().evictions, watchers.size());
  EXPECT_GE(star.overlay->fd_stats().tombstones_created, watchers.size());
  for (int u : watchers) {
    const auto nbrs = star.overlay->dt_neighbors(u);
    EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), victim), nbrs.end())
        << "watcher " << u << " still holds the crashed neighbor";
  }
}

TEST(FailureDetectorLive, FourXDelaySpikeCausesNoFalseEvictions) {
  Star star(6);
  std::vector<std::vector<NodeId>> before;
  for (int u = 0; u <= star.leaves; ++u) before.push_back(star.overlay->dt_neighbors(u));
  ASSERT_EQ(star.overlay->fd_stats().evictions, 0u);

  star.net->set_delay_factor(4.0);
  star.sim.run_until(star.sim.now() + 30.0);  // ten heartbeat periods under the spike
  EXPECT_EQ(star.overlay->fd_stats().evictions, 0u);

  star.net->set_delay_factor(1.0);
  star.sim.run_until(star.sim.now() + 10.0);
  EXPECT_EQ(star.overlay->fd_stats().evictions, 0u);
  for (int u = 0; u <= star.leaves; ++u)
    EXPECT_EQ(star.overlay->dt_neighbors(u), before[static_cast<std::size_t>(u)]) << u;
}

TEST(FailureDetectorLive, FalseEvictionHealsThroughDirectContact) {
  // Force a false eviction by hand and verify the tombstone does not pin the
  // live neighbor out forever: its next heartbeat (same incarnation, direct
  // contact) clears the tombstone and gossip re-teaches the candidate.
  Star star(6);
  const int victim = 3;
  const auto watchers = star.watchers_of(victim);
  ASSERT_FALSE(watchers.empty());
  const int watcher = watchers.front();

  star.overlay->evict_for_test(watcher, victim);
  star.sim.run_until(star.sim.now() + 1.0);  // coalesced recompute fires
  {
    const auto nbrs = star.overlay->dt_neighbors(watcher);
    ASSERT_EQ(std::find(nbrs.begin(), nbrs.end(), victim), nbrs.end());
  }
  // The victim is alive and still heartbeating this watcher; within a few
  // periods (plus a maintenance round to re-sync) the edge is restored.
  for (int round = 0; round < 4; ++round) {
    for (int u = 0; u <= star.leaves; ++u) star.overlay->run_maintenance_round(u);
    star.sim.run_until(star.sim.now() + 8.0);
  }
  const auto nbrs = star.overlay->dt_neighbors(watcher);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), victim), nbrs.end());
}

}  // namespace
}  // namespace gdvr::mdt
