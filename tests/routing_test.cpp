// Tests for the routers: GDV, GDV_basic, MDT-greedy, NADV, GPSR, and the
// Gabriel-graph planarization / face-routing machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "radio/topology.hpp"
#include "routing/mdt_view.hpp"
#include "routing/planar.hpp"
#include "routing/routers.hpp"

namespace gdvr::routing {
namespace {

radio::Topology dense_topo(int n, std::uint64_t seed, int obstacles = 0) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.num_obstacles = obstacles;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

// ---------- MdtView construction ----------

TEST(MdtView, CentralizedHasValidVirtualLinks) {
  const radio::Topology topo = dense_topo(80, 2);
  const MdtView view = centralized_mdt(topo.positions, topo.etx);
  ASSERT_EQ(view.size(), topo.size());
  for (int u = 0; u < view.size(); ++u) {
    for (const MdtView::DtNbr& d : view.dt[static_cast<std::size_t>(u)]) {
      EXPECT_FALSE(topo.etx.has_edge(u, d.id));  // only non-physical DT edges
      ASSERT_GE(d.path.size(), 2u);
      EXPECT_EQ(d.path.front(), u);
      EXPECT_EQ(d.path.back(), d.id);
      double cost = 0.0;
      for (std::size_t i = 0; i + 1 < d.path.size(); ++i) {
        ASSERT_TRUE(topo.etx.has_edge(d.path[i], d.path[i + 1]));
        cost += topo.etx.link_cost(d.path[i], d.path[i + 1]);
      }
      EXPECT_NEAR(cost, d.cost, 1e-9);
    }
  }
}

// ---------- GDV ----------

TEST(Gdv, GuaranteedDeliveryOnCorrectMdt) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    const radio::Topology topo = dense_topo(100, seed);
    const MdtView view = centralized_mdt(topo.positions, topo.hops);
    Rng rng(seed);
    for (int trial = 0; trial < 300; ++trial) {
      const int s = rng.uniform_index(topo.size());
      int t = rng.uniform_index(topo.size() - 1);
      if (t >= s) ++t;
      const RouteResult r = route_gdv(view, s, t);
      EXPECT_TRUE(r.success) << "seed=" << seed << " " << s << "->" << t;
    }
  }
}

TEST(Gdv, CostAtLeastOptimal) {
  const radio::Topology topo = dense_topo(80, 3);
  const MdtView view = centralized_mdt(topo.positions, topo.etx);
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const RouteResult r = route_gdv(view, s, t);
    ASSERT_TRUE(r.success);
    const auto sp = graph::dijkstra(topo.etx, s);
    EXPECT_GE(r.cost, sp.dist[static_cast<std::size_t>(t)] - 1e-9);
  }
}

TEST(Gdv, PerfectEmbeddingGivesNearOptimalPaths) {
  // Line network where virtual distance exactly equals routing cost: GDV
  // must follow the optimal path.
  const int n = 12;
  graph::Graph metric(n);
  std::vector<Vec> pos;
  for (int i = 0; i < n; ++i) pos.push_back(Vec{static_cast<double>(i), 0.0});
  for (int i = 0; i + 1 < n; ++i) metric.add_bidirectional(i, i + 1, 1.0, 1.0);
  const MdtView view = centralized_mdt(pos, metric);
  const RouteResult r = route_gdv(view, 0, n - 1);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.transmissions, n - 1);
  EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(n - 1));
}

TEST(Gdv, TrivialRoutes) {
  const radio::Topology topo = dense_topo(40, 6);
  const MdtView view = centralized_mdt(topo.positions, topo.hops);
  const RouteResult self = route_gdv(view, 3, 3);
  EXPECT_TRUE(self.success);
  EXPECT_EQ(self.transmissions, 0);
  // Direct neighbor.
  const int nbr = topo.hops.neighbors(3)[0].to;
  const RouteResult one = route_gdv(view, 3, nbr);
  EXPECT_TRUE(one.success);
  EXPECT_GE(one.transmissions, 1);
}

TEST(Gdv, RespectsAliveMask) {
  const radio::Topology topo = dense_topo(60, 7);
  MdtView view = centralized_mdt(topo.positions, topo.hops);
  // Kill the destination's neighbors' neighborhood so it is unreachable.
  const int t = 10;
  for (const graph::Edge& e : topo.hops.neighbors(t))
    view.alive[static_cast<std::size_t>(e.to)] = 0;
  int s = 0;
  while (s == t || !view.is_alive(s)) ++s;
  const RouteResult r = route_gdv(view, s, t);
  EXPECT_FALSE(r.success);  // fails cleanly, no infinite loop
}

TEST(Gdv, BasicVariantDeliversOnDenseNetworks) {
  const radio::Topology topo = dense_topo(80, 11);
  const MdtView view = centralized_mdt(topo.positions, topo.hops);
  const PlanarGraph planar(topo.positions, topo.hops);
  Rng rng(8);
  int delivered = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    if (route_gdv_basic(view, s, t, &planar).success) ++delivered;
  }
  EXPECT_GT(static_cast<double>(delivered) / trials, 0.9);
}

// ---------- MDT-greedy ----------

TEST(MdtGreedy, GuaranteedDeliveryAndLowStretch) {
  const radio::Topology topo = dense_topo(100, 13);
  const MdtView view = centralized_mdt(topo.positions, topo.hops);
  Rng rng(9);
  double stretch_sum = 0.0;
  int count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const RouteResult r = route_mdt_greedy(view, s, t);
    ASSERT_TRUE(r.success);
    const auto hops = graph::bfs_hops(topo.hops, s);
    if (hops[static_cast<std::size_t>(t)] > 0) {
      stretch_sum += static_cast<double>(r.transmissions) / hops[static_cast<std::size_t>(t)];
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(stretch_sum / count, 1.6);  // paper: MDT stretch is low (~1.1-1.3)
}

TEST(MdtGreedy, DeliveryWithObstacles) {
  const radio::Topology topo = dense_topo(100, 17, /*obstacles=*/4);
  const MdtView view = centralized_mdt(topo.positions, topo.hops);
  Rng rng(10);
  for (int trial = 0; trial < 150; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    EXPECT_TRUE(route_mdt_greedy(view, s, t).success);
  }
}

// ---------- planarization ----------

TEST(Planar, GabrielIsSubgraphAndSymmetric) {
  const radio::Topology topo = dense_topo(80, 19);
  const PlanarGraph pg(topo.positions, topo.hops);
  for (int u = 0; u < topo.size(); ++u) {
    for (int v : pg.neighbors(u)) {
      EXPECT_TRUE(topo.hops.has_edge(u, v));
      EXPECT_TRUE(pg.has_edge(v, u));
    }
  }
}

TEST(Planar, GabrielRemovesWitnessedEdges) {
  // Three nodes: w sits inside the circle with diameter (u, v).
  std::vector<Vec> pos{Vec{0, 0}, Vec{10, 0}, Vec{5, 1}};
  graph::Graph links(3);
  links.add_bidirectional(0, 1, 1, 1);
  links.add_bidirectional(0, 2, 1, 1);
  links.add_bidirectional(1, 2, 1, 1);
  const PlanarGraph pg(pos, links);
  EXPECT_FALSE(pg.has_edge(0, 1));  // witnessed by node 2
  EXPECT_TRUE(pg.has_edge(0, 2));
  EXPECT_TRUE(pg.has_edge(1, 2));
}

TEST(Planar, AngleOrdering) {
  std::vector<Vec> pos{Vec{0, 0}, Vec{1, 0}, Vec{0, 1}, Vec{-1, 0}, Vec{0, -1}};
  graph::Graph links(5);
  for (int v = 1; v <= 4; ++v) links.add_bidirectional(0, v, 1, 1);
  const PlanarGraph pg(pos, links);
  // next_ccw from angle just below 0 should be node 1 (angle 0).
  EXPECT_EQ(pg.next_ccw(0, -0.01), 1);
  EXPECT_EQ(pg.next_ccw(0, 0.01), 2);   // next after 0 rad is pi/2
  EXPECT_EQ(pg.next_ccw(0, 3.0), 3);    // next after 3.0 rad is pi
  EXPECT_EQ(pg.next_ccw(0, 3.1416), 4);  // past pi: wraps to -pi/2
}

// ---------- NADV / GPSR ----------

TEST(Nadv, DeliversOnDenseNetwork) {
  const radio::Topology topo = dense_topo(100, 23);
  const PlanarGraph pg(topo.positions, topo.hops);
  Rng rng(11);
  int delivered = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    if (route_nadv(topo.positions, topo.etx, pg, s, t).success) ++delivered;
  }
  // NADV mostly delivers, but its recovery is imperfect on general
  // connectivity graphs (paper Fig. 16b shows < 100%).
  EXPECT_GT(static_cast<double>(delivered) / trials, 0.85);
}

TEST(Nadv, PrefersCheapLinks) {
  // Two-hop network: direct expensive link vs a cheap relay. NADV weighs
  // advance per cost and takes the relay.
  std::vector<Vec> pos{Vec{0, 0}, Vec{5, 2}, Vec{10, 0}};
  graph::Graph metric(3);
  metric.add_bidirectional(0, 2, 10.0, 10.0);  // lossy direct link
  metric.add_bidirectional(0, 1, 1.2, 1.2);
  metric.add_bidirectional(1, 2, 1.2, 1.2);
  const PlanarGraph pg(pos, metric.with_unit_costs());
  const RouteResult r = route_nadv(pos, metric, pg, 0, 2);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.transmissions, 2);  // went through the relay
  EXPECT_NEAR(r.cost, 2.4, 1e-9);
}

TEST(Gpsr, RecoversAroundVoid) {
  // A "U" shaped topology: greedy from the left arm toward the right arm
  // dead-ends at the void; perimeter routing must go around the bottom.
  std::vector<Vec> pos;
  graph::Graph links(9);
  // left arm (top to bottom), bottom, right arm (bottom to top)
  pos.push_back(Vec{0, 10});  // 0 source
  pos.push_back(Vec{0, 7});
  pos.push_back(Vec{0, 4});
  pos.push_back(Vec{0, 0});   // bottom-left
  pos.push_back(Vec{4, 0});   // bottom-middle
  pos.push_back(Vec{8, 0});   // bottom-right
  pos.push_back(Vec{8, 4});
  pos.push_back(Vec{8, 7});
  pos.push_back(Vec{8, 10});  // 8 destination
  for (int i = 0; i + 1 < 9; ++i) links.add_bidirectional(i, i + 1, 1, 1);
  const PlanarGraph pg(pos, links);
  const RouteResult r = route_gpsr(pos, links, pg, 0, 8);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.transmissions, 8);  // the only path: all the way around
}

TEST(Gpsr, FailsCleanlyWhenDisconnected) {
  std::vector<Vec> pos{Vec{0, 0}, Vec{1, 0}, Vec{10, 0}, Vec{11, 0}};
  graph::Graph links(4);
  links.add_bidirectional(0, 1, 1, 1);
  links.add_bidirectional(2, 3, 1, 1);
  const PlanarGraph pg(pos, links);
  const RouteResult r = route_gpsr(pos, links, pg, 0, 3);
  EXPECT_FALSE(r.success);
}

TEST(Routers, TransmissionsMatchCostForUnitMetric) {
  const radio::Topology topo = dense_topo(60, 29);
  const MdtView view = centralized_mdt(topo.positions, topo.hops);
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const RouteResult r = route_gdv(view, s, t);
    ASSERT_TRUE(r.success);
    EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(r.transmissions));
  }
}

}  // namespace
}  // namespace gdvr::routing
