// Tests for the evaluation harness: pair sampling, router evaluation, and
// the protocol runners' accounting.
#include <gtest/gtest.h>

#include <set>

#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "obs/metrics.hpp"
#include "radio/topology.hpp"

namespace gdvr::eval {
namespace {

radio::Topology dense_topo(int n, std::uint64_t seed) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

TEST(Pairs, ExhaustiveWhenCountNonPositive) {
  const std::vector<int> ids{3, 7, 9};
  const auto pairs = sample_pairs(ids, 0, 1);
  EXPECT_EQ(pairs.size(), 6u);  // 3 * 2 ordered pairs
  std::set<std::pair<int, int>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const auto& [s, t] : pairs) EXPECT_NE(s, t);
}

TEST(Pairs, SampledDeterministicAndValid) {
  std::vector<int> ids;
  for (int i = 0; i < 50; ++i) ids.push_back(i * 2);
  const auto a = sample_pairs(ids, 100, 7);
  const auto b = sample_pairs(ids, 100, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
  for (const auto& [s, t] : a) {
    EXPECT_NE(s, t);
    EXPECT_EQ(s % 2, 0);
    EXPECT_EQ(t % 2, 0);
  }
  EXPECT_NE(sample_pairs(ids, 100, 8), a);  // different seed differs
}

TEST(Pairs, TooFewNodes) {
  EXPECT_TRUE(sample_pairs({5}, 10, 1).empty());
  EXPECT_TRUE(sample_pairs({}, 10, 1).empty());
}

TEST(Evaluate, OptimalRouterHasStretchOne) {
  const radio::Topology topo = dense_topo(60, 3);
  // "Router" that walks the true shortest hop path.
  RouteFn optimal = [&](int s, int t) {
    routing::RouteResult r;
    const auto sp = graph::dijkstra(topo.hops, s);
    const auto path = graph::extract_path(sp, t);
    if (path.empty()) return r;
    r.success = true;
    r.transmissions = static_cast<int>(path.size()) - 1;
    r.cost = static_cast<double>(r.transmissions);
    return r;
  };
  std::vector<int> ids;
  for (int i = 0; i < topo.size(); ++i) ids.push_back(i);
  const auto pairs = sample_pairs(ids, 200, 5);
  const auto stats = evaluate_router(optimal, topo.hops, topo.hops, /*use_etx=*/false, pairs);
  EXPECT_DOUBLE_EQ(stats.success_rate, 1.0);
  EXPECT_NEAR(stats.stretch, 1.0, 1e-12);
  EXPECT_EQ(stats.pairs_evaluated, 200);
}

TEST(Evaluate, FailuresLowerSuccessRate) {
  RouteFn failing = [](int, int) { return routing::RouteResult{}; };
  const radio::Topology topo = dense_topo(40, 4);
  std::vector<int> ids;
  for (int i = 0; i < topo.size(); ++i) ids.push_back(i);
  const auto stats =
      evaluate_router(failing, topo.hops, topo.hops, false, sample_pairs(ids, 50, 1));
  EXPECT_DOUBLE_EQ(stats.success_rate, 0.0);
}

TEST(Evaluate, EtxModeReportsTransmissionsAndOptimal) {
  const radio::Topology topo = dense_topo(60, 6);
  const auto view = routing::centralized_mdt(topo.positions, topo.etx);
  EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 200;
  const auto stats = eval_gdv(view, topo, opts);
  EXPECT_GT(stats.transmissions, 1.0);
  EXPECT_GT(stats.optimal_transmissions, 1.0);
  EXPECT_GE(stats.transmissions, stats.optimal_transmissions - 1e-9);
}

TEST(Evaluate, BaselineWrappersRun) {
  const radio::Topology topo = dense_topo(60, 8);
  EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 100;
  const auto mdt = eval_mdt_actual(topo, opts);
  const auto nadv = eval_nadv_actual(topo, opts);
  EXPECT_GT(mdt.success_rate, 0.95);
  EXPECT_GT(nadv.success_rate, 0.7);
  EXPECT_GT(mdt.transmissions, 0.0);
  EXPECT_GT(nadv.transmissions, 0.0);
}

TEST(Runner, MessageMarkDeltas) {
  const radio::Topology topo = dense_topo(50, 9);
  vpod::VpodConfig vc;
  vc.dim = 2;
  VpodRunner runner(topo, false, vc);
  runner.run_to_period(1);
  const double first = runner.messages_per_node_since_mark();
  EXPECT_GT(first, 0.0);
  const double immediately_again = runner.messages_per_node_since_mark();
  EXPECT_DOUBLE_EQ(immediately_again, 0.0);  // nothing ran in between
  runner.run_to_period(2);
  EXPECT_GT(runner.messages_per_node_since_mark(), 0.0);
}

TEST(Runner, SnapshotMatchesOverlayState) {
  const radio::Topology topo = dense_topo(50, 10);
  vpod::VpodConfig vc;
  vc.dim = 3;
  VpodRunner runner(topo, false, vc);
  runner.run_to_period(4);
  const auto view = runner.snapshot();
  ASSERT_EQ(view.size(), topo.size());
  for (int u = 0; u < topo.size(); ++u) {
    EXPECT_EQ(view.pos[static_cast<std::size_t>(u)], runner.protocol().overlay().position(u));
    EXPECT_TRUE(view.is_alive(u));
  }
}

TEST(Runner, AvgStorageIsPositiveAndBounded) {
  const radio::Topology topo = dense_topo(50, 11);
  vpod::VpodConfig vc;
  vc.dim = 2;
  VpodRunner runner(topo, false, vc);
  runner.run_to_period(4);
  const double storage = runner.avg_storage();
  EXPECT_GT(storage, 5.0);
  EXPECT_LT(storage, static_cast<double>(topo.size()));
}

TEST(Runner, ExportsIncrementalDtCounters) {
  const radio::Topology topo = dense_topo(50, 12);
  vpod::VpodConfig vc;
  vc.dim = 3;
  VpodRunner runner(topo, false, vc);
  runner.run_to_period(2);
  obs::Registry reg;
  runner.export_metrics(reg);
  // Construction on a 50-node topology must have exercised the incremental
  // path: every node's first recompute assigns, later ones insert/remove as
  // candidates churn. Early-outs/full rebuilds may legitimately be zero.
  EXPECT_GT(reg.counter("mdt.dt.inserts").value(), 0u);
  EXPECT_GT(reg.counter("mdt.dt.removes").value(), 0u);
  const auto dt = runner.protocol().overlay().dt_stats();
  EXPECT_EQ(reg.counter("mdt.dt.inserts").value(), dt.inserts);
  EXPECT_EQ(reg.counter("mdt.dt.moves").value(), dt.moves);
  EXPECT_EQ(reg.counter("mdt.dt.full_rebuilds").value(), dt.full_rebuilds);
  EXPECT_EQ(reg.counter("mdt.dt.walk_fallbacks").value(), dt.walk_fallbacks);
}

TEST(AliveNodes, FiltersMask) {
  routing::MdtView view;
  view.pos.resize(4, Vec::zero(2));
  view.alive = {1, 0, 1, 1};
  EXPECT_EQ(alive_nodes(view), (std::vector<int>{0, 2, 3}));
}

}  // namespace
}  // namespace gdvr::eval
