// Cross-module property tests: invariances and inequalities that must hold
// for *every* seed, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <set>

#include "common/rng.hpp"
#include "eval/routing_eval.hpp"
#include "geom/delaunay.hpp"
#include "obs/trace.hpp"
#include "radio/topology.hpp"
#include "routing/mdt_view.hpp"
#include "routing/routers.hpp"

namespace gdvr {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<Vec> random_points(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> pts;
  for (int i = 0; i < n; ++i) {
    Vec p(dim);
    for (int c = 0; c < dim; ++c) p[c] = rng.uniform(0.0, 100.0);
    pts.push_back(p);
  }
  return pts;
}

// --- Delaunay invariances ---------------------------------------------------

TEST_P(SeedSweep, DelaunayInvariantUnderTranslationAndScaling) {
  const auto pts = random_points(40, 2, GetParam());
  const auto base = geom::delaunay_graph(pts).edges;
  std::vector<Vec> moved;
  for (const Vec& p : pts) moved.push_back(p * 3.5 + Vec{1000.0, -500.0});
  EXPECT_EQ(geom::delaunay_graph(moved).edges, base);
}

TEST_P(SeedSweep, DelaunayDegreeSumIsTwiceEdges) {
  const auto pts = random_points(50, 3, GetParam() + 100);
  const auto dt = geom::delaunay_graph(pts);
  std::size_t degree_sum = 0;
  for (const auto& nbrs : dt.nbrs) degree_sum += nbrs.size();
  EXPECT_EQ(degree_sum, 2 * dt.edges.size());
  // Symmetry: u in nbrs[v] iff v in nbrs[u].
  for (const auto& [u, v] : dt.edges) {
    EXPECT_TRUE(dt.has_edge(u, v));
    EXPECT_TRUE(dt.has_edge(v, u));
  }
}

// --- router inequalities ----------------------------------------------------

TEST_P(SeedSweep, GdvNeverBeatsOptimalAndMdtNeverBeatsGdvWithTies) {
  radio::TopologyConfig tc;
  tc.n = 80;
  tc.seed = GetParam() + 200;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  const auto view = routing::centralized_mdt(topo.positions, topo.etx);
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const auto gdv = routing::route_gdv(view, s, t);
    const auto mdt = routing::route_mdt_greedy(view, s, t);
    ASSERT_TRUE(gdv.success);
    ASSERT_TRUE(mdt.success);
    const auto sp = graph::dijkstra(topo.etx, s);
    const double opt = sp.dist[static_cast<std::size_t>(t)];
    EXPECT_GE(gdv.cost, opt - 1e-9);
    EXPECT_GE(mdt.cost, opt - 1e-9);
    // Path consistency: reported cost equals sum over reported path.
    double sum = 0.0;
    for (std::size_t k = 0; k + 1 < gdv.path.size(); ++k)
      sum += topo.etx.link_cost(gdv.path[k], gdv.path[k + 1]);
    EXPECT_NEAR(sum, gdv.cost, 1e-9);
    if (!gdv.path.empty()) {
      EXPECT_EQ(gdv.path.front(), s);
      EXPECT_EQ(gdv.path.back(), t);
    }
  }
}

TEST_P(SeedSweep, RouteResultsAreDeterministic) {
  radio::TopologyConfig tc;
  tc.n = 60;
  tc.seed = GetParam() + 300;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  const auto view = routing::centralized_mdt(topo.positions, topo.hops);
  const auto a = routing::route_gdv(view, 0, topo.size() - 1);
  const auto b = routing::route_gdv(view, 0, topo.size() - 1);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.path, b.path);
}

// --- trace-level forwarding properties ---------------------------------------
//
// Both GDV's DV rule and MDT-greedy only ever step to a node strictly closer
// (in the embedding) to the destination than the decision point, so along any
// packet the deciding nodes' own-distance estimates strictly decrease -- and
// therefore no node makes a forwarding decision twice (loop freedom). The
// documented exceptions are kRelay events: physical hops of a stored
// virtual-link path, where intermediate nodes make no decision and revisits
// are legal.

void check_traced_forwarding(int space_dim, std::uint64_t seed) {
  radio::TopologyConfig tc;
  tc.n = 60;
  tc.seed = seed;
  tc.space_dim = space_dim;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  const auto view = routing::centralized_mdt(topo.positions, topo.etx);

  obs::TraceSink sink;
  {
    obs::ScopedTrace scope(sink);
    Rng rng(seed + 1);
    for (int i = 0; i < 40; ++i) {
      const int s = rng.uniform_index(topo.size());
      int t = rng.uniform_index(topo.size() - 1);
      if (t >= s) ++t;
      ASSERT_TRUE(routing::route_gdv(view, s, t).success);
      ASSERT_TRUE(routing::route_mdt_greedy(view, s, t).success);
    }
  }

  ASSERT_EQ(sink.packets().size(), 80u);
  for (int p = 0; p < static_cast<int>(sink.packets().size()); ++p) {
    ASSERT_TRUE(sink.packets()[static_cast<std::size_t>(p)].closed);
    EXPECT_TRUE(sink.packets()[static_cast<std::size_t>(p)].delivered);
    std::set<int> deciders;
    double prev_estimate = graph::kInf;
    for (const obs::HopEvent& e : sink.packet_events(p)) {
      if (e.mode == obs::HopMode::kRelay) {
        EXPECT_EQ(e.estimate, 0.0);  // relays make no decision
        continue;
      }
      // Loop freedom over decision events.
      EXPECT_TRUE(deciders.insert(e.node).second)
          << "packet " << p << " revisited decision node " << e.node;
      // Estimated remaining cost is monotone (strictly) decreasing.
      EXPECT_LT(e.estimate, prev_estimate)
          << "packet " << p << " estimate rose at node " << e.node;
      prev_estimate = e.estimate;
    }
  }
}

TEST_P(SeedSweep, TracedForwardingLoopFreeAndMonotone2D) {
  check_traced_forwarding(/*space_dim=*/2, GetParam() + 700);
}

TEST_P(SeedSweep, TracedForwardingLoopFreeAndMonotone3D) {
  check_traced_forwarding(/*space_dim=*/3, GetParam() + 800);
}

// --- topology generator properties -------------------------------------------

TEST_P(SeedSweep, MetricGraphsAgreeOnReachability) {
  radio::TopologyConfig tc;
  tc.n = 70;
  tc.seed = GetParam() + 400;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  const auto hop_d = graph::bfs_hops(topo.hops, 0);
  const auto etx_d = graph::dijkstra(topo.etx, 0).dist;
  const auto ett_d = graph::dijkstra(topo.ett, 0).dist;
  for (int v = 0; v < topo.size(); ++v) {
    const bool reach = hop_d[static_cast<std::size_t>(v)] >= 0;
    EXPECT_EQ(reach, etx_d[static_cast<std::size_t>(v)] < graph::kInf);
    EXPECT_EQ(reach, ett_d[static_cast<std::size_t>(v)] < graph::kInf);
    if (reach && v != 0) {
      // ETX-optimal cost is at least the hop count (each link costs >= 1)...
      EXPECT_GE(etx_d[static_cast<std::size_t>(v)],
                static_cast<double>(hop_d[static_cast<std::size_t>(v)]) - 1e-9);
    }
  }
}

TEST_P(SeedSweep, EtxShortestNeverExceedsHopShortestPathEtx) {
  // The ETX-optimal route costs at most what the hop-optimal route costs
  // under ETX accounting (optimality of Dijkstra on the ETX graph).
  radio::TopologyConfig tc;
  tc.n = 70;
  tc.seed = GetParam() + 500;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  const auto etx_opt = graph::dijkstra(topo.etx, 0);
  const auto hop_sp = graph::dijkstra(topo.hops, 0);
  for (int v = 1; v < topo.size(); ++v) {
    const auto hop_path = graph::extract_path(hop_sp, v);
    if (hop_path.empty()) continue;
    double hop_path_etx = 0.0;
    for (std::size_t i = 0; i + 1 < hop_path.size(); ++i)
      hop_path_etx += topo.etx.link_cost(hop_path[i], hop_path[i + 1]);
    EXPECT_LE(etx_opt.dist[static_cast<std::size_t>(v)], hop_path_etx + 1e-9);
  }
}

// --- evaluation-harness properties -------------------------------------------

TEST_P(SeedSweep, SamplePairsAreUniformish) {
  // 100 ids, 3000 samples (well below the 9900 ordered pairs, so this
  // genuinely samples rather than falling back to exhaustive enumeration).
  std::vector<int> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(i);
  const auto pairs = eval::sample_pairs(ids, 3000, GetParam() + 600);
  ASSERT_EQ(pairs.size(), 3000u);
  std::vector<int> source_count(100, 0);
  for (const auto& [s, t] : pairs) {
    ++source_count[static_cast<std::size_t>(s)];
    EXPECT_NE(s, t);
  }
  for (int c : source_count) {
    EXPECT_GT(c, 5);  // expectation 30
    EXPECT_LT(c, 80);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace gdvr
