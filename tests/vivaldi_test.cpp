// Tests for the 2-hop Vivaldi baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/embedding.hpp"
#include "eval/protocol_runner.hpp"
#include "radio/topology.hpp"
#include "vivaldi/vivaldi.hpp"

namespace gdvr::vivaldi {
namespace {

TEST(Vivaldi, LocalDistancesConvergeOnLine) {
  // 8-node line, hop metric: after enough periods, 1-hop pairs should sit at
  // distance ~1 in the virtual space (local relationships preserved).
  const int n = 8;
  graph::Graph links(n);
  for (int i = 0; i + 1 < n; ++i) links.add_bidirectional(i, i + 1, 1.0, 1.0);
  sim::Simulator sim;
  sim::NetSim<VivMsg> net(sim, links, 0.001, 0.01, 1);
  VivaldiConfig vc;
  vc.dim = 2;
  vc.period_s = 5.0;
  TwoHopVivaldi viv(net, vc);
  viv.start();
  sim.run_until(1.0 + 20 * vc.period_s);
  for (int i = 0; i + 1 < n; ++i) {
    const double d = viv.position(i).distance(viv.position(i + 1));
    EXPECT_NEAR(d, 1.0, 0.45) << "pair " << i;
  }
}

TEST(Vivaldi, TwoHopSetsAreCorrect) {
  // Star-of-line: 0-1-2; node 0's only 2-hop target is 2.
  graph::Graph links(3);
  links.add_bidirectional(0, 1, 1, 1);
  links.add_bidirectional(1, 2, 1, 1);
  sim::Simulator sim;
  sim::NetSim<VivMsg> net(sim, links, 0.001, 0.01, 2);
  VivaldiConfig vc;
  vc.dim = 2;
  vc.period_s = 5.0;
  TwoHopVivaldi viv(net, vc);
  viv.start();
  sim.run_until(8.0);
  EXPECT_EQ(viv.distinct_nodes_stored(0), 2);  // 1-hop {1} + 2-hop {2}
  EXPECT_EQ(viv.distinct_nodes_stored(1), 2);  // 1-hop {0, 2}
  EXPECT_EQ(viv.distinct_nodes_stored(2), 2);
}

TEST(Vivaldi, StorageMatchesTwoHopNeighborhood) {
  radio::TopologyConfig tc;
  tc.n = 80;
  tc.seed = 5;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  eval::VivaldiRunner runner(topo, false, VivaldiConfig{});
  runner.run_to_period(2);
  // Ground truth: |{v : hops(u, v) <= 2}| - 1.
  for (int u = 0; u < std::min(topo.size(), 20); ++u) {
    const auto hops = graph::bfs_hops(topo.hops, u);
    int expect = 0;
    for (int v = 0; v < topo.size(); ++v)
      if (v != u && hops[static_cast<std::size_t>(v)] >= 1 && hops[static_cast<std::size_t>(v)] <= 2)
        ++expect;
    EXPECT_EQ(runner.protocol().distinct_nodes_stored(u), expect) << "u=" << u;
  }
}

TEST(Vivaldi, GlobalRelationshipsCollapseOnGrid) {
  // The paper's Figure 2 observation: on the 121-node grid, 2-hop Vivaldi
  // preserves local relationships but fails global ones -- distant pairs end
  // up far too close in the virtual space.
  const radio::Topology grid = radio::make_grid(11, 11, 1.0);
  eval::VivaldiRunner runner(grid, /*use_etx=*/false, VivaldiConfig{});
  runner.run_to_period(20);
  const analysis::Matrix costs = analysis::cost_matrix(grid.hops);
  const auto q = analysis::embedding_quality(runner.positions(), costs);
  // Local pairs fit decently, global pairs are far off -- the defining gap.
  EXPECT_GT(q.global_rel_error, 0.35);
  EXPECT_GT(q.global_rel_error, 1.5 * q.local_rel_error);
}

TEST(Vivaldi, MessageCostScalesWithSamples) {
  radio::TopologyConfig tc;
  tc.n = 60;
  tc.seed = 7;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  eval::VivaldiRunner runner(topo, false, VivaldiConfig{});
  runner.run_to_period(1);
  runner.messages_per_node_since_mark();
  runner.run_to_period(2);
  const double per_period = runner.messages_per_node_since_mark();
  // 200 samples/period, most requiring >= 2 transmissions (request + reply),
  // 2-hop ones 4: several hundred messages per node per period, far more
  // than VPoD uses (paper Fig. 14b).
  EXPECT_GT(per_period, 300.0);
  EXPECT_LT(per_period, 1200.0);
}

TEST(Vivaldi, ErrorsDecrease) {
  radio::TopologyConfig tc;
  tc.n = 60;
  tc.seed = 9;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);
  eval::VivaldiRunner runner(topo, false, VivaldiConfig{});
  runner.run_to_period(12);
  double avg = 0.0;
  for (int u = 0; u < topo.size(); ++u) avg += runner.protocol().error(u);
  avg /= topo.size();
  EXPECT_LT(avg, 0.6);  // started at 1.0
}

}  // namespace
}  // namespace gdvr::vivaldi
