// ParallelTrials: the determinism contract the bench sweeps rely on --
// results indexed by trial, bit-identical to a sequential run regardless of
// thread count or OS scheduling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace gdvr {
namespace {

// A deterministic per-trial workload: everything derives from the index.
double trial_value(int i) {
  Rng rng(1000 + static_cast<std::uint64_t>(i) * 17);
  double acc = 0.0;
  for (int k = 0; k < 100 + i; ++k) acc += rng.uniform(0.0, 1.0);
  return acc;
}

TEST(ParallelTrials, BitIdenticalToSequential) {
  ParallelTrials seq(1);
  ParallelTrials par(4);
  ASSERT_EQ(seq.threads(), 1);
  ASSERT_EQ(par.threads(), 4);
  const auto a = seq.run(64, trial_value);
  const auto b = par.run(64, trial_value);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact equality: the same double bits, not just approximately equal.
    EXPECT_EQ(a[i], b[i]) << "trial " << i;
  }
}

TEST(ParallelTrials, ResultsLandInSubmissionOrder) {
  ParallelTrials pool(3);
  // Uneven per-trial cost so workers finish out of order.
  const auto out = pool.run(40, [](int i) { return trial_value(i % 7) + i; });
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], trial_value(i % 7) + i) << i;
}

TEST(ParallelTrials, HandlesEmptyAndSmallCounts) {
  ParallelTrials pool(8);
  EXPECT_TRUE(pool.run(0, trial_value).empty());
  const auto one = pool.run(1, trial_value);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], trial_value(0));
  // Fewer trials than threads: spawns only as many workers as trials.
  const auto two = pool.run(2, trial_value);
  EXPECT_EQ(two[1], trial_value(1));
}

TEST(ParallelTrials, PropagatesExceptions) {
  for (int threads : {1, 4}) {
    ParallelTrials pool(threads);
    EXPECT_THROW(pool.run(16,
                          [](int i) -> int {
                            if (i == 11) throw std::runtime_error("trial 11 failed");
                            return i;
                          }),
                 std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelTrials, ThreadCountFromEnvironment) {
  ::setenv("GDVR_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ParallelTrials().threads(), 5);
  EXPECT_EQ(ParallelTrials(2).threads(), 2);  // explicit arg wins
  ::unsetenv("GDVR_THREADS");
  EXPECT_GE(ParallelTrials().threads(), 1);
}

TEST(ParallelTrials, MoveOnlyResultsAndLargeFanOut) {
  ParallelTrials pool(4);
  const auto out = pool.run(500, [](int i) {
    std::vector<int> v(static_cast<std::size_t>(i % 13 + 1));
    std::iota(v.begin(), v.end(), i);
    return v;
  });
  ASSERT_EQ(out.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(i % 13 + 1));
    EXPECT_EQ(out[static_cast<std::size_t>(i)].front(), i);
  }
}

}  // namespace
}  // namespace gdvr
