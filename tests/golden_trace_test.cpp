// Golden-trace regression tests: canonical seeded scenarios whose full
// hop-by-hop trace digest is pinned. Any change to forwarding behavior --
// tie-breaks, cost arithmetic, fallback triggering, control-plane schedule
// -- flips the digest and fails here.
//
// Refresh workflow: when a failure is an *intended* behavior change, run the
// failing test (the assertion message prints the new digest) and paste the
// new value over the pinned constant. Digests hash exact double bit
// patterns, so they are stable across runs, optimization levels, and thread
// counts on the CI platform (x86-64 SSE2 IEEE doubles, no -ffast-math).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "radio/topology.hpp"
#include "routing/distance_vector.hpp"
#include "routing/mdt_view.hpp"
#include "routing/planar.hpp"
#include "routing/routers.hpp"
#include "sim/simulator.hpp"

namespace gdvr::routing {
namespace {

radio::Topology golden_topo(int n, std::uint64_t seed, int obstacles = 0) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.num_obstacles = obstacles;
  tc.obstacle_size_m = 10.0;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

// Routes `pairs` rng-drawn (s, t) pairs under the installed sink.
template <typename RouteFn>
int route_pairs(int n, int pairs, std::uint64_t seed, RouteFn&& route) {
  Rng rng(seed);
  int delivered = 0;
  for (int k = 0; k < pairs; ++k) {
    const int s = rng.uniform_index(n);
    int t = rng.uniform_index(n - 1);
    if (t >= s) ++t;
    if (route(s, t).success) ++delivered;
  }
  return delivered;
}

int count_mode(const obs::TraceSink& sink, obs::HopMode mode) {
  int n = 0;
  for (const obs::HopEvent& e : sink.events())
    if (e.mode == mode) ++n;
  return n;
}

void expect_digest(const obs::TraceSink& sink, const std::string& expected) {
  EXPECT_EQ(sink.digest_hex(), expected)
      << "golden trace changed (" << sink.events().size() << " events, "
      << sink.packets().size() << " packets); if the behavior change is "
      << "intended, pin the new digest printed above";
}

// ---------- pinned scenarios ----------

TEST(GoldenTrace, GdvOnEtxTopology) {
  const radio::Topology topo = golden_topo(60, 7);
  const MdtView view = centralized_mdt(topo.positions, topo.etx);
  obs::TraceSink sink;
  {
    obs::ScopedTrace scope(sink);
    const int ok = route_pairs(topo.size(), 30, 21,
                               [&](int s, int t) { return route_gdv(view, s, t); });
    EXPECT_EQ(ok, 30);  // guaranteed delivery on a correct MDT
  }
  EXPECT_EQ(sink.packets().size(), 30u);
  EXPECT_GT(count_mode(sink, obs::HopMode::kGreedy), 0);
  expect_digest(sink, "27ab28c89a1afa21");
}

TEST(GoldenTrace, MdtGreedyOnEtxTopology) {
  const radio::Topology topo = golden_topo(60, 7);
  const MdtView view = centralized_mdt(topo.positions, topo.etx);
  obs::TraceSink sink;
  {
    obs::ScopedTrace scope(sink);
    const int ok = route_pairs(topo.size(), 30, 33,
                               [&](int s, int t) { return route_mdt_greedy(view, s, t); });
    EXPECT_EQ(ok, 30);
  }
  EXPECT_EQ(sink.packets().size(), 30u);
  expect_digest(sink, "768377fc83032669");
}

// Recovery-mode scenario: four 10 m obstacles punch holes into the radio
// graph, so plain greedy hits local minima and GPSR's perimeter traversal
// (kRecovery events) must carry packets around them.
TEST(GoldenTrace, GpsrObstaclePerimeter) {
  const radio::Topology topo = golden_topo(80, 12, /*obstacles=*/4);
  const PlanarGraph planar(topo.positions, topo.etx);
  obs::TraceSink sink;
  {
    obs::ScopedTrace scope(sink);
    route_pairs(topo.size(), 150, 5, [&](int s, int t) {
      return route_gpsr(topo.positions, topo.etx, planar, s, t);
    });
  }
  EXPECT_GT(count_mode(sink, obs::HopMode::kRecovery), 0)
      << "obstacle scenario no longer exercises perimeter recovery";
  expect_digest(sink, "23632407f26ef575");
}

// GDV over the same obstacle field: the DV rule plus its MDT-greedy fallback
// (kRecovery) and virtual-link relays (kRelay).
TEST(GoldenTrace, GdvObstacleFallback) {
  const radio::Topology topo = golden_topo(80, 12, /*obstacles=*/4);
  const MdtView view = centralized_mdt(topo.positions, topo.etx);
  obs::TraceSink sink;
  {
    obs::ScopedTrace scope(sink);
    const int ok = route_pairs(topo.size(), 40, 5,
                               [&](int s, int t) { return route_gdv(view, s, t); });
    EXPECT_EQ(ok, 40);
  }
  EXPECT_GT(count_mode(sink, obs::HopMode::kRelay), 0)
      << "obstacle detours should traverse virtual-link relays";
  expect_digest(sink, "615136cd0d1fc680");
}

// Control-plane scenario shared by the serial golden test and the sharded
// engine-equivalence tests below: a full Distance Vector convergence run,
// traced with simulation timestamps, plus table-driven routes afterwards.
struct DvControlRun {
  std::string digest;
  int control = 0;
  std::size_t packets = 0;
  bool converged = false;
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
};

DvControlRun run_dv_control(bool sharded, int threads) {
  const radio::Topology topo = golden_topo(30, 5);
  sim::Simulator sim;
  if (sharded) sim.configure_sharding(radio::spatial_shards(topo, /*shards=*/4), threads);
  sim::NetSim<DvMsg> net(sim, topo.etx, 0.01, 0.1, /*seed=*/99);
  DistanceVector dv(net);
  obs::TraceSink sink;
  sink.set_trace_control(true);
  DvControlRun r;
  {
    obs::ScopedTrace scope(sink);
    dv.start();
    sim.run_until(30.0);
    r.converged = dv.converged();
    const int ok =
        route_pairs(topo.size(), 10, 17, [&](int s, int t) { return dv.route(s, t); });
    EXPECT_EQ(ok, 10);
  }
  r.digest = sink.digest_hex();
  r.control = count_mode(sink, obs::HopMode::kControl);
  r.packets = sink.packets().size();
  r.sent = net.total_messages_sent();
  r.lost = net.messages_lost();
  // Control events carry simulation time.
  double last_time = 0.0;
  for (const obs::HopEvent& e : sink.events())
    if (e.mode == obs::HopMode::kControl) last_time = e.time;
  EXPECT_GT(last_time, 0.0);
  return r;
}

// Control-plane golden trace: every NetSim transmission of a Distance Vector
// convergence run, with simulation timestamps, plus the table-driven routes
// afterwards. Pins the full protocol schedule, not just routing decisions.
TEST(GoldenTrace, DistanceVectorControlSchedule) {
  const DvControlRun r = run_dv_control(/*sharded=*/false, /*threads=*/1);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.control, 100) << "DV advertisement schedule shrank unexpectedly";
  EXPECT_EQ(r.packets, 10u);
  EXPECT_EQ(r.digest, "b58ca2aab9081ed9")
      << "golden trace changed; if the behavior change is intended, pin the "
      << "new digest printed above";
}

// Determinism contract of the sharded engine (DESIGN.md §4g): the same
// scenario on the conservative-parallel engine produces a bit-identical
// trace digest whether the shards run on 1 worker or 4 -- and a pinned
// digest of its own, so the window/lane trace ordering is itself frozen.
// Against the serial oracle the *ordering* of trace events differs (lanes
// are absorbed in lane order at window barriers, the serial engine
// interleaves in global time order), but every per-node observable must
// match exactly: convergence, packet count, control-event count, and the
// NetSim send/loss counters.
TEST(GoldenTrace, ShardedEngineThreadCountInvariant) {
  const DvControlRun serial = run_dv_control(/*sharded=*/false, /*threads=*/1);
  const DvControlRun one = run_dv_control(/*sharded=*/true, /*threads=*/1);
  const DvControlRun four = run_dv_control(/*sharded=*/true, /*threads=*/4);

  EXPECT_EQ(one.digest, four.digest) << "sharded trace depends on thread count";
  EXPECT_EQ(one.digest, "d384fbfd8eb541f9")
      << "sharded golden trace changed; if the behavior change is intended, "
      << "pin the new digest printed above";

  EXPECT_TRUE(serial.converged);
  EXPECT_TRUE(one.converged);
  EXPECT_TRUE(four.converged);
  EXPECT_EQ(serial.packets, one.packets);
  EXPECT_EQ(serial.control, one.control);
  EXPECT_EQ(serial.sent, one.sent);
  EXPECT_EQ(serial.lost, one.lost);
  EXPECT_EQ(one.sent, four.sent);
  EXPECT_EQ(one.lost, four.lost);
}

// ---------- thread-count invariance ----------

// One self-contained trial: GDV plus (on obstacle trials) GPSR perimeter
// routing, traced into a trial-local sink. Everything derives from the trial
// index; nothing is shared, so the digest must not depend on which worker
// thread ran the trial or on how many workers exist.
struct TrialResult {
  std::string digest;
  int recovery = 0;
};

TrialResult run_trial(int i) {
  const bool obstacles = (i % 2) == 1;
  const radio::Topology topo = golden_topo(50, 100 + static_cast<std::uint64_t>(i),
                                           obstacles ? 4 : 0);
  const MdtView view = centralized_mdt(topo.positions, topo.etx);
  obs::TraceSink sink;
  {
    obs::ScopedTrace scope(sink);
    route_pairs(topo.size(), 10, 7 + static_cast<std::uint64_t>(i),
                [&](int s, int t) { return route_gdv(view, s, t); });
    if (obstacles) {
      const PlanarGraph planar(topo.positions, topo.etx);
      route_pairs(topo.size(), 10, 70 + static_cast<std::uint64_t>(i), [&](int s, int t) {
        return route_gpsr(topo.positions, topo.etx, planar, s, t);
      });
    }
  }
  TrialResult r;
  r.digest = sink.digest_hex();
  r.recovery = count_mode(sink, obs::HopMode::kRecovery);
  return r;
}

std::vector<TrialResult> run_trials_with_threads(const char* threads) {
  const char* prev = std::getenv("GDVR_THREADS");
  const std::string saved = prev != nullptr ? prev : "";
  setenv("GDVR_THREADS", threads, 1);
  ParallelTrials pool(0);  // reads GDVR_THREADS
  auto out = pool.run(8, run_trial);
  if (prev != nullptr)
    setenv("GDVR_THREADS", saved.c_str(), 1);
  else
    unsetenv("GDVR_THREADS");
  return out;
}

TEST(GoldenTrace, DigestsIdenticalAcrossThreadCounts) {
  const auto seq = run_trials_with_threads("1");
  const auto par = run_trials_with_threads("4");
  ASSERT_EQ(seq.size(), par.size());
  int total_recovery = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].digest, par[i].digest) << "trial " << i;
    EXPECT_EQ(seq[i].recovery, par[i].recovery) << "trial " << i;
    total_recovery += seq[i].recovery;
  }
  EXPECT_GT(total_recovery, 0) << "no trial exercised recovery mode";
}

}  // namespace
}  // namespace gdvr::routing
