// Tests for the extended metric support (ETT, energy) and 3D physical
// placement -- the paper's "any additive metric, any dimension >= 2" claims.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "radio/topology.hpp"

namespace gdvr::radio {
namespace {

Topology dense_topo(int n, std::uint64_t seed, int space_dim = 2) {
  TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.space_dim = space_dim;
  tc.target_avg_degree = 14.5;
  return make_random_topology(tc);
}

TEST(Metrics, AllGraphsShareAdjacency) {
  const Topology t = dense_topo(100, 3);
  for (int u = 0; u < t.size(); ++u) {
    EXPECT_EQ(t.etx.degree(u), t.hops.degree(u));
    EXPECT_EQ(t.etx.degree(u), t.ett.degree(u));
    EXPECT_EQ(t.etx.degree(u), t.energy.degree(u));
  }
}

TEST(Metrics, EttProportionalToEtxPerLink) {
  // ETT = ETX * airtime(rate); rate is per-pair, so the ETT/ETX ratio must
  // be identical in both directions of a link but differ across links.
  const Topology t = dense_topo(100, 5);
  std::vector<double> ratios;
  for (int u = 0; u < t.size(); ++u) {
    for (const graph::Edge& e : t.etx.neighbors(u)) {
      if (e.to < u) continue;
      const double r_fwd = t.ett.link_cost(u, e.to) / t.etx.link_cost(u, e.to);
      const double r_rev = t.ett.link_cost(e.to, u) / t.etx.link_cost(e.to, u);
      EXPECT_NEAR(r_fwd, r_rev, 1e-9);
      ratios.push_back(r_fwd);
    }
  }
  ASSERT_GT(ratios.size(), 10u);
  const auto [mn, mx] = std::minmax_element(ratios.begin(), ratios.end());
  EXPECT_GT(*mx / *mn, 2.0);  // multi-rate links: airtimes genuinely differ
}

TEST(Metrics, EnergyPositiveAndPowerDependent) {
  const Topology t = dense_topo(100, 7);
  for (int u = 0; u < t.size(); ++u)
    for (const graph::Edge& e : t.energy.neighbors(u)) EXPECT_GT(e.cost, 0.0);
}

TEST(Metrics, MetricGraphSelector) {
  const Topology t = dense_topo(60, 9);
  EXPECT_EQ(&t.metric_graph(Metric::kHopCount), &t.hops);
  EXPECT_EQ(&t.metric_graph(Metric::kEtx), &t.etx);
  EXPECT_EQ(&t.metric_graph(Metric::kEtt), &t.ett);
  EXPECT_EQ(&t.metric_graph(Metric::kEnergy), &t.energy);
  EXPECT_EQ(&t.metric_graph(true), &t.etx);
  EXPECT_EQ(&t.metric_graph(false), &t.hops);
  EXPECT_STREQ(metric_name(Metric::kEtt), "ETT (ms)");
}

TEST(Metrics, VpodEmbedsEttAndRoutesNearOptimal) {
  const Topology topo = dense_topo(80, 11);
  eval::VpodRunner runner(topo, Metric::kEtt, vpod::VpodConfig{});
  runner.run_to_period(12);
  const auto view = runner.snapshot();
  const auto pairs = eval::sample_pairs(eval::alive_nodes(view), 200, 3);
  const auto stats = eval::evaluate_router(
      [&](int s, int t) { return routing::route_gdv(view, s, t); }, topo.ett, topo.hops,
      /*use_etx=*/true, pairs);
  EXPECT_GE(stats.success_rate, 0.98);
  // ETT's dynamic range (per-pair rates 1..11 Mbps on top of ETX) makes the
  // embedding harder than plain ETX; 12 quick periods land within ~1.7x.
  EXPECT_LT(stats.transmissions, 1.75 * stats.optimal_transmissions);
}

TEST(Metrics, VpodEmbedsEnergy) {
  const Topology topo = dense_topo(80, 13);
  eval::VpodRunner runner(topo, Metric::kEnergy, vpod::VpodConfig{});
  runner.run_to_period(10);
  const auto view = runner.snapshot();
  const auto pairs = eval::sample_pairs(eval::alive_nodes(view), 200, 3);
  const auto stats = eval::evaluate_router(
      [&](int s, int t) { return routing::route_gdv(view, s, t); }, topo.energy, topo.hops,
      true, pairs);
  EXPECT_GE(stats.success_rate, 0.98);
  // Energy has the widest dynamic range of the four metrics (per-node power
  // spread multiplies the ETX spread), so the bound is looser here.
  EXPECT_LT(stats.transmissions, 1.9 * stats.optimal_transmissions);
}

// ---------- 3D physical space ----------

TEST(Space3D, PlacementAndLinks) {
  const Topology t = dense_topo(100, 15, /*space_dim=*/3);
  ASSERT_GT(t.size(), 50);
  for (const Vec& p : t.positions) {
    EXPECT_EQ(p.dim(), 3);
    EXPECT_GE(p[2], 0.0);
  }
  EXPECT_GT(t.etx.average_degree(), 10.0);
}

TEST(Space3D, MdtGreedyGuaranteedDeliveryIn3D) {
  // The guaranteed-delivery property holds in any dimension >= 2 (paper
  // Sec. I); verify MDT-greedy over the centralized 3D multi-hop DT.
  const Topology t = dense_topo(80, 17, 3);
  const auto view = routing::centralized_mdt(t.positions, t.hops);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int s = rng.uniform_index(t.size());
    int dst = rng.uniform_index(t.size() - 1);
    if (dst >= s) ++dst;
    EXPECT_TRUE(routing::route_mdt_greedy(view, s, dst).success);
  }
}

TEST(Space3D, VpodAndGdvWorkIn3DPhysicalSpace) {
  const Topology topo = dense_topo(80, 19, 3);
  eval::VpodRunner runner(topo, /*use_etx=*/true, vpod::VpodConfig{});
  runner.run_to_period(10);
  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 200;
  const auto stats = eval::eval_gdv(runner.snapshot(), topo, opts);
  EXPECT_GE(stats.success_rate, 0.97);
  EXPECT_LT(stats.transmissions, 2.0 * stats.optimal_transmissions);
}

// ---------- ablation flags ----------

TEST(Ablation, ConfidenceOffStillConverges) {
  const Topology topo = dense_topo(80, 21);
  vpod::VpodConfig vc;
  vc.use_confidence = false;
  eval::VpodRunner runner(topo, true, vc);
  runner.run_to_period(10);
  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = 200;
  EXPECT_GE(eval::eval_gdv(runner.snapshot(), topo, opts).success_rate, 0.95);
}

TEST(Ablation, StickyPathsHurtConvergedCosts) {
  const Topology topo = dense_topo(100, 23);
  auto converged_tx = [&](bool greedy_refresh) {
    vpod::VpodConfig vc;
    vc.mdt.refresh_paths_greedily = greedy_refresh;
    eval::VpodRunner runner(topo, true, vc);
    runner.run_to_period(12);
    eval::EvalOptions opts;
    opts.use_etx = true;
    opts.pair_samples = 300;
    return eval::eval_gdv(runner.snapshot(), topo, opts).transmissions;
  };
  // Sticky paths should not beat greedy refresh (they usually lose clearly).
  EXPECT_LE(converged_tx(true), converged_tx(false) * 1.05);
}

}  // namespace
}  // namespace gdvr::radio
