// Tests for the continuous churn workload generator: determinism, window and
// protected-node discipline, projected-liveness consistency, the alive
// floor, flash crowds, and composability with chaos schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "sim/churn.hpp"
#include "sim/faults.hpp"

namespace gdvr::sim {
namespace {

ChurnConfig busy_config() {
  ChurnConfig c;
  c.t_begin = 10.0;
  c.t_end = 210.0;
  c.leave_rate_hz = 0.2;
  c.join_rate_hz = 0.2;
  c.flash_crowds = 2;
  c.partition_cycles = 1;
  return c;
}

TEST(Churn, ScheduleIsSeedDeterministic) {
  const ChurnConfig c = busy_config();
  const FaultSchedule a = continuous_churn(c, 99, 40);
  const FaultSchedule b = continuous_churn(c, 99, 40);
  const FaultSchedule d = continuous_churn(c, 100, 40);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), d.describe());
  EXPECT_GT(a.actions().size(), 10u);
}

TEST(Churn, StaysInWindowAndSparesProtectedNode) {
  ChurnConfig c = busy_config();
  c.protected_node = 3;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultSchedule s = continuous_churn(c, seed, 30);
    for (const FaultAction& a : s.actions()) {
      EXPECT_GE(a.at, c.t_begin);
      EXPECT_LE(a.at, c.t_end);
      if (a.kind == FaultKind::kCrash) {
        EXPECT_NE(a.node, c.protected_node);
      }
    }
  }
}

// Chronological replay of the generated schedule: every crash must hit a
// currently-alive node, every recover a currently-dead one (this is what
// makes the schedule installable: FaultInjector's crash hook maps to
// fail_node, which expects a live victim), and the alive population must
// never drop below the configured floor.
TEST(Churn, ReplayedMembershipIsConsistentAndFloored) {
  const int n = 40;
  ChurnConfig c = busy_config();
  c.leave_rate_hz = 0.5;  // aggressive: presses against the floor
  c.join_rate_hz = 0.1;
  c.min_alive_fraction = 0.5;
  const int floor_alive =
      std::max(2, static_cast<int>(std::ceil(c.min_alive_fraction * static_cast<double>(n))));
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultSchedule s = continuous_churn(c, seed, n);
    std::vector<FaultAction> acts = s.actions();
    std::stable_sort(acts.begin(), acts.end(),
                     [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
    std::vector<char> alive(static_cast<std::size_t>(n), 1);
    int alive_count = n;
    for (const FaultAction& a : acts) {
      if (a.kind == FaultKind::kCrash) {
        ASSERT_TRUE(alive[static_cast<std::size_t>(a.node)])
            << "seed " << seed << ": crash of already-dead node " << a.node << " at " << a.at;
        alive[static_cast<std::size_t>(a.node)] = 0;
        --alive_count;
        EXPECT_GE(alive_count, floor_alive) << "seed " << seed;
      } else if (a.kind == FaultKind::kRecover) {
        ASSERT_FALSE(alive[static_cast<std::size_t>(a.node)])
            << "seed " << seed << ": recover of alive node " << a.node << " at " << a.at;
        alive[static_cast<std::size_t>(a.node)] = 1;
        ++alive_count;
      }
    }
  }
}

TEST(Churn, InitiallyDeadNodesSeedTheJoinPool) {
  ChurnConfig c;
  c.t_begin = 0.0;
  c.t_end = 100.0;
  c.join_rate_hz = 0.3;  // joins only: the dead pool is the initially_dead set
  const std::vector<int> latent = {5, 6, 7};
  const FaultSchedule s = continuous_churn(c, 11, 10, latent);
  std::set<int> recovered;
  for (const FaultAction& a : s.actions()) {
    ASSERT_EQ(a.kind, FaultKind::kRecover);
    recovered.insert(a.node);
  }
  // Only latent nodes can join, each at most once (nobody re-dies).
  EXPECT_LE(recovered.size(), latent.size());
  for (int u : recovered) EXPECT_TRUE(std::count(latent.begin(), latent.end(), u)) << u;
}

TEST(Churn, FlashCrowdSwapsDistinctNodesAtOneInstant) {
  const std::vector<int> leave_pool = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> join_pool = {20, 21, 22, 23};
  const FaultSchedule s = flash_crowd(5.0, 3, leave_pool, 2, join_pool, 77);
  std::set<int> crashed, recovered;
  for (const FaultAction& a : s.actions()) {
    EXPECT_DOUBLE_EQ(a.at, 5.0);
    if (a.kind == FaultKind::kCrash) {
      EXPECT_TRUE(std::count(leave_pool.begin(), leave_pool.end(), a.node));
      crashed.insert(a.node);
    } else {
      ASSERT_EQ(a.kind, FaultKind::kRecover);
      EXPECT_TRUE(std::count(join_pool.begin(), join_pool.end(), a.node));
      recovered.insert(a.node);
    }
  }
  EXPECT_EQ(crashed.size(), 3u);  // distinct victims
  EXPECT_EQ(recovered.size(), 2u);
  // Requests beyond the pool are clamped, not invented.
  const FaultSchedule big = flash_crowd(1.0, 100, leave_pool, 100, join_pool, 77);
  EXPECT_EQ(big.actions().size(), leave_pool.size() + join_pool.size());
}

TEST(Churn, ComposesWithChaosViaMerge) {
  ChurnConfig cc = busy_config();
  cc.partition_cycles = 0;
  FaultSchedule churn = continuous_churn(cc, 5, 30);
  const std::size_t churn_actions = churn.actions().size();

  ChaosConfig chc;
  chc.t_begin = cc.t_begin;
  chc.t_end = cc.t_end;
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < 30; ++i) edges.emplace_back(i, i + 1);
  const FaultSchedule storm = FaultSchedule::random_chaos(chc, 6, 30, edges);

  churn.merge(storm);
  EXPECT_EQ(churn.actions().size(), churn_actions + storm.actions().size());
  EXPECT_LE(churn.quiesce_time(), cc.t_end);
  const std::string text = churn.describe();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("loss-start"), std::string::npos);
}

TEST(Churn, PartitionCyclesEmitPairedActionsInsideWindow) {
  ChurnConfig c;
  c.t_begin = 0.0;
  c.t_end = 100.0;
  c.partition_cycles = 3;
  c.partition_s = 8.0;
  const FaultSchedule s = continuous_churn(c, 21, 20);
  int begins = 0, ends = 0;
  for (const FaultAction& a : s.actions()) {
    if (a.kind == FaultKind::kPartitionStart) ++begins;
    if (a.kind == FaultKind::kPartitionEnd) ++ends;
    EXPECT_LE(a.at, c.t_end);
  }
  EXPECT_EQ(begins, 3);
  EXPECT_EQ(ends, 3);
}

}  // namespace
}  // namespace gdvr::sim
