// Chaos test: the full VPoD/MDT stack survives a randomized but
// seed-deterministic fault storm -- sustained control-plane loss, repeated
// crash/recover cycles, link flapping, duplication, delay spikes, and a
// transient network partition -- and re-converges once the faults quiesce.
//
// To reproduce a failing run, the installed schedule is printed via
// FaultSchedule::describe() (SCOPED_TRACE), so the exact fault sequence for
// this (config, seed) pair is in the failure output.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/invariants.hpp"
#include "eval/protocol_runner.hpp"
#include "radio/topology.hpp"
#include "sim/faults.hpp"
#include "vpod/vpod.hpp"

namespace gdvr::eval {
namespace {

radio::Topology dense_topo(int n, std::uint64_t seed) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

TEST(Chaos, MdtReconvergesAfterFaultStorm) {
  const radio::Topology topo = dense_topo(80, 21);
  vpod::VpodConfig vc;
  vc.dim = 3;
  VpodRunner runner(topo, /*use_etx=*/true, vc);
  runner.enable_reliable_sync();
  runner.run_to_period(8);  // converge fault-free first

  // Audit late inside the J period: maintenance (plus the adaptive resync)
  // has refreshed the DT against current positions and the next A period has
  // not yet resumed moving them, so accuracy measures the protocol rather
  // than intra-period lag.
  const auto settle = [&] {
    runner.simulator().run_until(runner.simulator().now() + vc.join_period_s - 0.5);
  };
  settle();
  InvariantOptions iopts;
  iopts.pair_samples = 300;
  iopts.seed = 5;
  const InvariantReport baseline = audit_invariants(runner, iopts);
  EXPECT_GE(baseline.routing_success, 0.99);
  EXPECT_GE(baseline.dt_accuracy, 0.99);

  // Fault storm over the next ~2.5 adjustment periods. A full-window loss
  // burst keeps control loss >= 25% for the whole storm; the randomized
  // schedule layers crashes, flaps, extra bursts, duplication, delay spikes,
  // and one transient partition on top.
  const sim::Time t0 = runner.simulator().now() + 1.0;
  sim::ChaosConfig cfg;
  cfg.t_begin = t0;
  cfg.t_end = t0 + 65.0;
  cfg.crash_cycles = 5;
  cfg.crash_downtime_s = 8.0;
  cfg.link_flaps = 8;
  cfg.loss_bursts = 2;
  cfg.loss_prob = 0.4;
  cfg.dup_bursts = 2;
  cfg.delay_spikes = 2;
  cfg.partitions = 1;
  cfg.partition_s = 12.0;
  cfg.protected_node = 0;
  sim::FaultSchedule schedule =
      sim::FaultSchedule::random_chaos(cfg, /*seed=*/2025, topo.size(), runner.physical_edges());
  sim::FaultSchedule sustained_loss;
  sustained_loss.loss_burst(t0, 65.0, 0.25);
  schedule.merge(sustained_loss);
  SCOPED_TRACE(schedule.describe());
  EXPECT_LE(schedule.quiesce_time(), cfg.t_end);
  runner.faults().install(schedule);

  InvariantAuditor auditor(runner, iopts);
  auditor.start(/*period_s=*/13.0, /*until=*/cfg.t_end);

  // Ride through the storm, then give the protocol recovery time: rejoined
  // nodes need join + maintenance rounds to re-acquire correct DT neighbors,
  // and positions perturbed by the storm need A periods to settle again.
  runner.run_to_period(18);
  settle();

  // Re-convergence is sampled at the quiesce point of several consecutive
  // periods. Crash victims restart their J/A cycle out of phase when they
  // rejoin, so they keep adjusting positions during everyone else's J
  // period; an instantaneous audit therefore flickers on marginal Delaunay
  // simplices even though repair is complete (a maintenance round with
  // frozen positions reaches accuracy 1.0). Requiring the best sample to
  // reach the bar and every sample to stay near it asserts re-convergence
  // without racing that flicker.
  std::vector<InvariantReport> recovery;
  recovery.push_back(audit_invariants(runner, iopts));
  for (int k = 19; k <= 22; ++k) {
    runner.run_to_period(k);
    settle();
    recovery.push_back(audit_invariants(runner, iopts));
  }

  // The storm actually happened as specified.
  const auto& inj = runner.faults();
  EXPECT_GE(inj.crashes_injected(), 5);
  EXPECT_EQ(inj.crashes_injected(), inj.recoveries_injected());
  EXPECT_EQ(inj.partitions_injected(), 1);
  EXPECT_GE(inj.windows_opened(), 5);
  EXPECT_GT(runner.net().fault_messages_lost(), 0u);
  EXPECT_GT(runner.net().messages_duplicated(), 0u);
  EXPECT_GT(runner.net().messages_expired(), 0u);  // crashes caught messages in flight
  ASSERT_NE(runner.reliable(), nullptr);
  EXPECT_GT(runner.reliable()->stats().retransmissions, 0u);  // transport earned its keep
  EXPECT_GT(runner.reliable()->stats().acked, 0u);
  EXPECT_FALSE(auditor.history().empty());  // mid-storm audits ran

  // All fault knobs are neutral again after quiesce.
  EXPECT_DOUBLE_EQ(runner.net().fault_loss(), 0.0);
  EXPECT_DOUBLE_EQ(runner.net().duplication(), 0.0);
  EXPECT_DOUBLE_EQ(runner.net().delay_factor(), 1.0);

  // Re-convergence: every node (including the crash victims) is joined again,
  // the distributed DT matches the centralized one, virtual links are live,
  // and routing success is back at the fault-free baseline.
  for (int u = 0; u < topo.size(); ++u)
    EXPECT_TRUE(runner.protocol().overlay().joined(u)) << "node " << u << " never rejoined";
  double best_dt = 0.0;
  double worst_dt = 1.0;
  double best_liveness = 0.0;
  for (const InvariantReport& r : recovery) {
    EXPECT_EQ(r.alive_nodes, topo.size());
    EXPECT_EQ(r.joined_nodes, topo.size());
    EXPECT_GE(r.routing_success, baseline.routing_success - 0.005);
    best_dt = std::max(best_dt, r.dt_accuracy);
    worst_dt = std::min(worst_dt, r.dt_accuracy);
    best_liveness = std::max(best_liveness, r.link_liveness);
  }
  EXPECT_GE(best_dt, 0.99);    // the DT fully re-converged
  EXPECT_GE(worst_dt, 0.96);   // and never slid back appreciably
  EXPECT_GE(best_liveness, 0.99);
}

TEST(Chaos, PartitionHealsAndBothSidesRouteAgain) {
  // A single clean partition (no other faults): during the split each side
  // keeps routing internally; after it heals the MDT stitches back together.
  const radio::Topology topo = dense_topo(60, 22);
  vpod::VpodConfig vc;
  vc.dim = 3;
  VpodRunner runner(topo, /*use_etx=*/true, vc);
  runner.enable_reliable_sync();
  runner.run_to_period(6);

  InvariantOptions iopts;
  iopts.pair_samples = 250;
  iopts.seed = 9;
  const InvariantReport before = audit_invariants(runner, iopts);
  EXPECT_GE(before.routing_success, 0.99);

  const sim::Time t0 = runner.simulator().now() + 1.0;
  sim::FaultSchedule schedule;
  schedule.partition(t0, /*duration=*/20.0, /*fraction=*/0.5);
  runner.faults().install(schedule);

  // Mid-partition: routing is evaluated over the largest connected component,
  // so one side must still deliver among itself.
  runner.simulator().run_until(t0 + 10.0);
  const InvariantReport during = audit_invariants(runner, iopts);
  EXPECT_GE(during.routing_success, 0.90);

  runner.run_to_period(12);  // heal + re-converge
  const InvariantReport after = audit_invariants(runner, iopts);
  EXPECT_EQ(after.joined_nodes, topo.size());
  EXPECT_GE(after.dt_accuracy, 0.99);
  EXPECT_GE(after.routing_success, before.routing_success - 0.005);
}

}  // namespace
}  // namespace gdvr::eval
