// Long-horizon chaos soak (ctest label: soak). A 60-node network runs 30
// adjustment periods of sustained Poisson churn (>= 5% of the nodes swapped
// per period) plus one partition/heal cycle, with the full robustness stack
// on: phi-accrual failure detection, incarnation/tombstone reconciliation,
// reliable control transport, and the convergence watchdog supervising every
// period. Acceptance, per the robustness milestone:
//
//  * delivery recovers to within 2% of the pre-churn steady state within 3
//    adjustment periods of every churn event (watchdog episode durations);
//  * zero invariant-audit failures across the whole run;
//  * the run is deterministic for a fixed seed, and bit-identical between
//    GDVR_THREADS=1 and GDVR_THREADS=4.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "eval/protocol_runner.hpp"
#include "eval/watchdog.hpp"
#include "radio/topology.hpp"
#include "sim/churn.hpp"

namespace gdvr::eval {
namespace {

struct SoakOutcome {
  std::uint64_t digest = 0;  // FNV-1a over every audit's full report
  std::size_t audits = 0;
  double baseline = 0.0;
  double period_len = 0.0;
  std::vector<double> recoveries;
  std::uint64_t audit_failures = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t fd_evictions = 0;
  std::uint64_t stale_dropped = 0;
};

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

void fnv(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  fnv(h, bits);
}

SoakOutcome run_soak(std::uint64_t seed) {
  const int n = 60;
  const int periods = 30;
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  const double scale = std::sqrt(static_cast<double>(n) / 200.0);
  tc.width_m = 100.0 * scale;
  tc.height_m = 100.0 * scale;
  tc.target_avg_degree = 14.5;
  const radio::Topology topo = radio::make_random_topology(tc);

  vpod::VpodConfig vc;
  vc.dim = 3;
  vc.mdt.fd.enabled = true;
  VpodRunner runner(topo, /*use_etx=*/false, vc, {}, seed);
  runner.enable_reliable_sync();
  const double period_len = vc.join_period_s + vc.adjust_period_s;

  runner.run_to_period(3);  // steady state before supervision

  WatchdogConfig wc;
  wc.period_s = period_len;
  wc.audit.pair_samples = 150;
  wc.audit.seed = seed;
  ConvergenceWatchdog dog(runner, wc);
  const sim::Time t_end = runner.simulator().now() + periods * period_len;
  dog.start(t_end);

  // >= 5% of the population churning per adjustment period, sustained, plus
  // one partition/heal cycle mid-run. A quiet tail lets the final audits
  // observe recovery from the last events.
  sim::ChurnConfig cc;
  cc.t_begin = runner.simulator().now() + period_len;
  cc.t_end = t_end - 2.0 * period_len;
  cc.leave_rate_hz = 0.05 * static_cast<double>(n) / period_len;
  cc.join_rate_hz = cc.leave_rate_hz;
  cc.partition_cycles = 1;
  cc.partition_s = 0.5 * period_len;
  runner.faults().install(sim::continuous_churn(cc, seed + 7, n));
  runner.simulator().run_until(t_end + 1.0);

  SoakOutcome out;
  out.audits = dog.history().size();
  out.baseline = dog.baseline_success();
  out.period_len = period_len;
  out.recoveries = dog.recovery_times();
  out.audit_failures = dog.audit_failures();
  out.resyncs = dog.resyncs_triggered();
  out.fd_evictions = runner.protocol().overlay().fd_stats().evictions;
  out.stale_dropped = runner.protocol().overlay().fd_stats().stale_incarnation_dropped;
  out.digest = 1469598103934665603ull;
  for (const InvariantReport& r : dog.history()) {
    fnv(out.digest, r.at);
    fnv(out.digest, static_cast<std::uint64_t>(r.alive_nodes));
    fnv(out.digest, static_cast<std::uint64_t>(r.joined_nodes));
    fnv(out.digest, r.dt_accuracy);
    fnv(out.digest, r.link_liveness);
    fnv(out.digest, static_cast<std::uint64_t>(r.virtual_links));
    fnv(out.digest, r.routing_success);
    fnv(out.digest, r.stretch);
  }
  return out;
}

TEST(Soak, DeliveryRecoversUnderSustainedChurn) {
  const SoakOutcome r = run_soak(2026);
  EXPECT_EQ(r.audits, 31u);  // one per period boundary, inclusive
  // Healthy pre-churn baseline.
  EXPECT_GE(r.baseline, 0.95);
  // Sustained churn really ran: the failure detector saw work.
  EXPECT_GT(r.fd_evictions, 0u);
  // Every degradation episode closed within 3 adjustment periods...
  for (double t : r.recoveries)
    EXPECT_LE(t, 3.0 * r.period_len + 1.0) << "slow recovery: " << t << " s";
  // ...and none was left open, no node stayed stuck through a resync cycle.
  EXPECT_EQ(r.audit_failures, 0u);
}

TEST(Soak, DeterministicAndThreadCountInvariant) {
  // The whole run -- protocol, churn, failure detection, audits -- must be
  // bit-identical for a fixed seed regardless of evaluation parallelism.
  setenv("GDVR_THREADS", "1", 1);
  const SoakOutcome serial = run_soak(77);
  const SoakOutcome serial_again = run_soak(77);
  setenv("GDVR_THREADS", "4", 1);
  const SoakOutcome parallel = run_soak(77);
  unsetenv("GDVR_THREADS");
  EXPECT_EQ(serial.digest, serial_again.digest);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.audit_failures, parallel.audit_failures);
  EXPECT_EQ(serial.recoveries.size(), parallel.recoveries.size());
}

}  // namespace
}  // namespace gdvr::eval
