// Tests of the sharded conservative-parallel engine (ctest label: parallel;
// DESIGN.md §4g): event-heap ordering, the engine-selection seam, the
// spatial shard partition, lane scheduling semantics, and the two halves of
// the determinism contract -- bit-identical behavior across GDVR_THREADS
// values, and per-node observable equality against the serial oracle, up to
// and including a chaos + churn soak with reliable transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "eval/protocol_runner.hpp"
#include "obs/metrics.hpp"
#include "radio/topology.hpp"
#include "sim/churn.hpp"
#include "sim/simulator.hpp"

namespace gdvr {
namespace {

// Scoped environment override (restores the previous value on destruction).
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value != nullptr)
      setenv(name, value, 1);
    else
      unsetenv(name);
  }
  ~EnvVar() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// ---------------------------------------------------------------------------
// EventHeap

TEST(EventHeap, PopsInTimeThenSequenceOrder) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> time_dist(0.0, 100.0);
  for (int round = 0; round < 20; ++round) {
    sim::EventHeap heap;
    std::vector<sim::EventHeap::Entry> entries;
    const int n = 1 + static_cast<int>(gen() % 300);
    for (int i = 0; i < n; ++i) {
      // Coarse times force plenty of exact ties, exercising the seq
      // tie-break (FIFO among equal timestamps).
      const double at = std::floor(time_dist(gen) * 4.0) / 4.0;
      entries.push_back({at, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) + 1});
      heap.push(entries.back());
    }
    std::sort(entries.begin(), entries.end(),
              [](const sim::EventHeap::Entry& a, const sim::EventHeap::Entry& b) {
                return a.at != b.at ? a.at < b.at : a.seq < b.seq;
              });
    for (const sim::EventHeap::Entry& want : entries) {
      ASSERT_FALSE(heap.empty());
      EXPECT_EQ(heap.top().at, want.at);
      EXPECT_EQ(heap.top().seq, want.seq);
      EXPECT_EQ(heap.top().id, want.id);
      heap.pop();
    }
    EXPECT_TRUE(heap.empty());
  }
}

// ---------------------------------------------------------------------------
// Engine-selection seam

TEST(EngineSeam, EnvSelectsEngine) {
  {
    EnvVar env("GDVR_SIM_ENGINE", nullptr);
    EXPECT_EQ(sim::engine_from_env(), sim::SimEngine::kSerial);
  }
  {
    EnvVar env("GDVR_SIM_ENGINE", "serial");
    EXPECT_EQ(sim::engine_from_env(), sim::SimEngine::kSerial);
  }
  {
    EnvVar env("GDVR_SIM_ENGINE", "sharded");
    EXPECT_EQ(sim::engine_from_env(), sim::SimEngine::kSharded);
  }
  EXPECT_STREQ(sim::engine_name(sim::SimEngine::kSerial), "serial");
  EXPECT_STREQ(sim::engine_name(sim::SimEngine::kSharded), "sharded");
}

TEST(EngineSeam, BareSimulatorStaysSerialUnderEnv) {
  // Low-level simulators are unaffected by the env seam; only the runners
  // consult it. Unit tests building bare Simulators stay deterministic.
  EnvVar env("GDVR_SIM_ENGINE", "sharded");
  sim::Simulator sim;
  EXPECT_EQ(sim.engine(), sim::SimEngine::kSerial);
  EXPECT_EQ(sim.shard_count(), 1);  // the serial engine is one big shard
}

// ---------------------------------------------------------------------------
// Spatial shard partition

radio::Topology small_topo(int n, std::uint64_t seed) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

TEST(SpatialShards, BalancedDeterministicPartition) {
  const radio::Topology topo = small_topo(300, 11);
  const int n = topo.size();
  const std::vector<int> shard_of = radio::spatial_shards(topo, 8);
  ASSERT_EQ(static_cast<int>(shard_of.size()), n);
  std::vector<int> count(8, 0);
  for (int s : shard_of) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    ++count[static_cast<std::size_t>(s)];
  }
  // Cell packing balances by construction: every shard holds between
  // floor(n/8) and ceil(n/8) + one cell's worth of slack. Require a loose
  // 2x bound so the test does not depend on the grid geometry.
  for (int c : count) {
    EXPECT_GT(c, 0);
    EXPECT_LE(c, 2 * (n / 8 + 1));
  }
  EXPECT_EQ(shard_of, radio::spatial_shards(topo, 8));  // deterministic
}

TEST(SpatialShards, DefaultCountAndEnvOverride) {
  const radio::Topology topo = small_topo(300, 11);
  {
    // clamp(n / 128, 1, 64): ~300 nodes -> 2 shards.
    EnvVar env("GDVR_SIM_SHARDS", nullptr);
    const std::vector<int> shard_of = radio::spatial_shards(topo);
    const int k = *std::max_element(shard_of.begin(), shard_of.end()) + 1;
    EXPECT_EQ(k, topo.size() / 128);
  }
  {
    EnvVar env("GDVR_SIM_SHARDS", "6");
    const std::vector<int> shard_of = radio::spatial_shards(topo);
    EXPECT_EQ(*std::max_element(shard_of.begin(), shard_of.end()) + 1, 6);
  }
}

// ---------------------------------------------------------------------------
// Lane scheduling semantics

// Two single-node shards plus the global lane: node timers fire at the
// right clock, own-lane schedules return cancelable ids, cross-lane sends
// are fire-and-forget, and the global lane can cancel node events between
// windows.
TEST(ShardedEngine, LaneSchedulingSemantics) {
  sim::Simulator sim;
  sim.add_lookahead_provider([] { return 0.05; });
  sim.configure_sharding({0, 1}, /*threads=*/1);
  EXPECT_EQ(sim.engine(), sim::SimEngine::kSharded);
  EXPECT_EQ(sim.shard_count(), 2);
  EXPECT_EQ(sim.shard_of_node(0), 0);
  EXPECT_EQ(sim.shard_of_node(1), 1);

  std::vector<double> fired0, fired1;  // each written only by its own lane
  bool cancelled_ran = false;
  bool ping_ran = false;

  sim.schedule_at_node(0, 0.1, [&] {
    fired0.push_back(sim.now());
    // Own-lane reschedule: valid id, cancelable from this lane.
    const auto id = sim.schedule_in_node(0, 0.01, [&] { cancelled_ran = true; });
    EXPECT_NE(id, sim::Simulator::kInvalidEvent);
    sim.cancel(id);
    // Cross-lane send: must respect the lookahead; returns kInvalidEvent
    // (fire-and-forget, like a NetSim message delivery).
    const auto x = sim.schedule_in_node(1, 0.06, [&] {
      ping_ran = true;
      fired1.push_back(sim.now());
    });
    EXPECT_EQ(x, sim::Simulator::kInvalidEvent);
  });
  sim.schedule_at_node(1, 0.3, [&] { fired1.push_back(sim.now()); });

  // Global lane observes and steers between windows: cancel node 1's 0.5 s
  // timer from outside any lane.
  const auto doomed = sim.schedule_at_node(1, 0.5, [&] { cancelled_ran = true; });
  EXPECT_NE(doomed, sim::Simulator::kInvalidEvent);
  bool global_ran = false;
  sim.schedule_at(0.2, [&] {
    global_ran = true;
    EXPECT_DOUBLE_EQ(sim.now(), 0.2);
    sim.cancel(doomed);
  });

  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(global_ran);
  EXPECT_TRUE(ping_ran);
  EXPECT_FALSE(cancelled_ran);
  ASSERT_EQ(fired0.size(), 1u);
  EXPECT_DOUBLE_EQ(fired0[0], 0.1);
  ASSERT_EQ(fired1.size(), 2u);
  EXPECT_DOUBLE_EQ(fired1[0], 0.16);  // cross-lane ping: 0.1 + 0.06
  EXPECT_DOUBLE_EQ(fired1[1], 0.3);
  EXPECT_TRUE(sim.empty());
}

// ---------------------------------------------------------------------------
// Full-protocol determinism and serial-oracle equivalence

struct ProtocolOutcome {
  std::string metrics_json;  // full registry export, deterministic order
  double avg_storage = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  std::uint64_t expired = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t fault_lost = 0;
  std::uint64_t adjustments = 0;
  sim::ReliableStats reliable;
};

// One VPoD run -- optionally with the full chaos + churn + reliable stack --
// under the engine/thread/shard configuration in the environment.
ProtocolOutcome run_protocol(const radio::Topology& topo, bool chaos, std::uint64_t seed) {
  vpod::VpodConfig vc;
  vc.dim = 3;
  vc.mdt.fd.enabled = chaos;
  eval::VpodRunner runner(topo, /*use_etx=*/false, vc, {}, seed);
  const double period_len = vc.join_period_s + vc.adjust_period_s;
  if (chaos) {
    runner.enable_reliable_sync();
    // Fault knobs that exercise every NetSim counter: background loss,
    // duplication, and Poisson node churn with one partition cycle
    // (departures leave in-flight messages to expire at dead receivers).
    runner.net().set_fault_loss(0.02);
    runner.net().set_duplication(0.05);
    sim::ChurnConfig cc;
    cc.t_begin = 1.0 + period_len;
    cc.t_end = 1.0 + 3.0 * period_len;
    cc.leave_rate_hz = 0.05 * static_cast<double>(topo.size()) / period_len;
    cc.join_rate_hz = cc.leave_rate_hz;
    cc.partition_cycles = 1;
    cc.partition_s = 0.5 * period_len;
    runner.faults().install(sim::continuous_churn(cc, seed + 7, topo.size()));
  }
  runner.run_to_period(chaos ? 4 : 2);

  ProtocolOutcome out;
  obs::Registry reg;
  runner.export_metrics(reg);
  std::ostringstream os;
  reg.write_json(os);
  out.metrics_json = os.str();
  out.avg_storage = runner.avg_storage();
  out.sent = runner.net().total_messages_sent();
  out.lost = runner.net().messages_lost();
  out.expired = runner.net().messages_expired();
  out.duplicated = runner.net().messages_duplicated();
  out.fault_lost = runner.net().fault_messages_lost();
  out.adjustments = runner.protocol().adjustments();
  if (runner.reliable() != nullptr) out.reliable = runner.reliable()->stats();
  return out;
}

void expect_counters_equal(const ProtocolOutcome& a, const ProtocolOutcome& b) {
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.fault_lost, b.fault_lost);
  EXPECT_EQ(a.adjustments, b.adjustments);
  EXPECT_EQ(a.reliable.sent, b.reliable.sent);
  EXPECT_EQ(a.reliable.retransmissions, b.reliable.retransmissions);
  EXPECT_EQ(a.reliable.acked, b.reliable.acked);
  EXPECT_EQ(a.reliable.gave_up, b.reliable.gave_up);
  EXPECT_EQ(a.reliable.acks_sent, b.reliable.acks_sent);
  EXPECT_EQ(a.reliable.duplicates_suppressed, b.reliable.duplicates_suppressed);
  EXPECT_DOUBLE_EQ(a.avg_storage, b.avg_storage);
}

// Half 1 of the contract: a sharded run is bit-identical (full metric
// export, not just totals) at GDVR_THREADS=1 and 4.
TEST(ShardedEngine, ThreadCountInvariantMetrics) {
  const radio::Topology topo = small_topo(60, 17);
  EnvVar engine("GDVR_SIM_ENGINE", "sharded");
  EnvVar shards("GDVR_SIM_SHARDS", "4");
  ProtocolOutcome one, four;
  {
    EnvVar threads("GDVR_THREADS", "1");
    one = run_protocol(topo, /*chaos=*/false, 17);
  }
  {
    EnvVar threads("GDVR_THREADS", "4");
    four = run_protocol(topo, /*chaos=*/false, 17);
  }
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  expect_counters_equal(one, four);
}

// The per-lane outboxes are pooled buffers: once the protocol's per-window
// cross-lane fan-out has peaked (construction join storms), further windows
// must reuse the retained capacity -- zero reallocations in steady state.
TEST(ShardedEngine, OutboxPoolingIsSteadyStateAllocationFree) {
  const radio::Topology topo = small_topo(60, 17);
  EnvVar engine("GDVR_SIM_ENGINE", "sharded");
  EnvVar shards("GDVR_SIM_SHARDS", "4");
  EnvVar threads("GDVR_THREADS", "2");
  vpod::VpodConfig vc;
  vc.dim = 3;
  eval::VpodRunner runner(topo, /*use_etx=*/false, vc, {}, 17);
  runner.run_to_period(2);  // warmup: construction traffic sets the peak
  const sim::Simulator::ShardedStats warm = runner.simulator().sharded_stats();
  EXPECT_GT(warm.outbox_peak, 0u) << "scenario produced no cross-lane messages";
  runner.run_to_period(4);  // steady state: maintenance rounds only
  const sim::Simulator::ShardedStats steady = runner.simulator().sharded_stats();
  EXPECT_EQ(steady.outbox_grows, warm.outbox_grows)
      << "outbox buffers reallocated after warmup";
}

// Half 2: the serial engine is the behavioral oracle. Same scenario, same
// seed: every per-node observable -- NetSim counters, adjustment counts,
// storage -- matches the sharded engine exactly.
TEST(ShardedEngine, MatchesSerialOracle) {
  const radio::Topology topo = small_topo(60, 17);
  EnvVar shards("GDVR_SIM_SHARDS", "4");
  EnvVar threads("GDVR_THREADS", "4");
  ProtocolOutcome serial, sharded;
  {
    EnvVar engine("GDVR_SIM_ENGINE", "serial");
    serial = run_protocol(topo, /*chaos=*/false, 17);
  }
  {
    EnvVar engine("GDVR_SIM_ENGINE", "sharded");
    sharded = run_protocol(topo, /*chaos=*/false, 17);
  }
  EXPECT_EQ(serial.metrics_json, sharded.metrics_json);
  expect_counters_equal(serial, sharded);
}

// The chaos + churn soak: phi-accrual failure detection, incarnation
// reconciliation, reliable-transport retransmits, background loss and
// duplication, Poisson churn with a partition cycle -- the sharded engine
// must report exactly the serial oracle's counters
// (messages_sent/lost/expired/duplicated and the reliable-transport stats),
// at both 1 and 4 worker threads.
TEST(ShardedEngine, ChaosChurnSoakMatchesSerialOracle) {
  const radio::Topology topo = small_topo(60, 23);
  EnvVar shards("GDVR_SIM_SHARDS", "4");
  ProtocolOutcome serial, one, four;
  {
    EnvVar engine("GDVR_SIM_ENGINE", "serial");
    EnvVar threads("GDVR_THREADS", "1");
    serial = run_protocol(topo, /*chaos=*/true, 23);
  }
  {
    EnvVar engine("GDVR_SIM_ENGINE", "sharded");
    EnvVar threads("GDVR_THREADS", "1");
    one = run_protocol(topo, /*chaos=*/true, 23);
  }
  {
    EnvVar engine("GDVR_SIM_ENGINE", "sharded");
    EnvVar threads("GDVR_THREADS", "4");
    four = run_protocol(topo, /*chaos=*/true, 23);
  }
  // The fault stack actually engaged, so the equalities are non-vacuous.
  EXPECT_GT(serial.lost, 0u);
  EXPECT_GT(serial.duplicated, 0u);
  EXPECT_GT(serial.reliable.retransmissions, 0u);
  expect_counters_equal(serial, one);
  expect_counters_equal(serial, four);
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  EXPECT_EQ(serial.metrics_json, one.metrics_json);
}

}  // namespace
}  // namespace gdvr
