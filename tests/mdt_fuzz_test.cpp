// Randomized churn fuzzing of the MDT overlay with state-invariant checks.
//
// A random schedule of node failures, rejoins, position changes and
// maintenance rounds is applied; after every settling window the overlay's
// internal state must satisfy the structural invariants below. This is the
// kind of silent-corruption bug net that unit tests on fixed scenarios miss.
// Reproduction workflow: every operation the fuzzer applies is recorded.
// When any invariant check fails, the test prints the seed and the schedule
// prefix that led to the failure; rerun exactly that schedule with
// GDVR_FUZZ_SEED=<seed> ./mdt_fuzz_test --gtest_filter='*EnvSeed*'.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mdt/overlay.hpp"
#include "radio/topology.hpp"
#include "sim/simulator.hpp"

namespace gdvr::mdt {
namespace {

struct Fuzzer {
  radio::Topology topo;
  sim::Simulator sim;
  std::unique_ptr<Net> net;
  std::unique_ptr<MdtOverlay> overlay;
  Rng rng;
  std::uint64_t seed;
  // Every applied operation, in order -- the failure-reproduction transcript.
  std::vector<std::string> schedule;

  explicit Fuzzer(std::uint64_t fuzz_seed,
                  MdtConfig::DtMaintenance maint = MdtConfig::DtMaintenance::kIncremental)
      : rng(fuzz_seed), seed(fuzz_seed) {
    radio::TopologyConfig tc;
    tc.n = 60;
    tc.seed = seed;
    tc.target_avg_degree = 14.5;
    topo = radio::make_random_topology(tc);
    net = std::make_unique<Net>(sim, topo.etx, 0.01, 0.1, seed);
    MdtConfig mc;
    mc.dim = 2;
    mc.neighbor_stale_s = 12.0;
    mc.dt_maintenance = maint;
    overlay = std::make_unique<MdtOverlay>(*net, mc);
    overlay->attach();
    for (int u = 0; u < topo.size(); ++u)
      overlay->activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
    for (int u = 1; u < topo.size(); ++u)
      sim.schedule_at(0.1 + rng.uniform(0.0, 1.0), [this, u] { overlay->start_join(u); });
    sim.run_until(8.0);
    maintenance();
  }

  void maintenance() {
    schedule.push_back("maintenance @" + std::to_string(sim.now()));
    const double base = sim.now();
    for (int u = 0; u < topo.size(); ++u) {
      if (!net->alive(u)) continue;
      sim.schedule_at(base + rng.uniform(0.0, 0.5), [this, u] {
        if (net->alive(u)) overlay->run_maintenance_round(u);
      });
    }
    sim.run_until(base + 6.0);
  }

  void random_op() {
    const int pick = rng.uniform_index(10);
    const int u = rng.uniform_index(topo.size());
    if (pick < 2 && u != 0 && net->alive(u)) {
      schedule.push_back("deactivate " + std::to_string(u));
      overlay->deactivate(u);
    } else if (pick < 4 && !net->alive(u)) {
      schedule.push_back("rejoin " + std::to_string(u));
      net->set_alive(u, true);
      // Rejoin near the true position with some noise.
      Vec pos = topo.positions[static_cast<std::size_t>(u)];
      pos[0] += rng.normal(0.0, 3.0);
      pos[1] += rng.normal(0.0, 3.0);
      overlay->activate(u, pos, false);
      overlay->start_join(u);
    } else if (pick < 7 && net->alive(u) && overlay->active(u)) {
      schedule.push_back("move " + std::to_string(u));
      // Position adjustment, as VPoD would make.
      Vec pos = overlay->position(u);
      pos[0] += rng.normal(0.0, 1.0);
      pos[1] += rng.normal(0.0, 1.0);
      overlay->set_position(u, pos, rng.uniform(0.05, 1.0));
    } else {
      schedule.push_back("noop " + std::to_string(u));
    }
    sim.run_until(sim.now() + rng.uniform(0.2, 1.5));
  }

  // Prints the seed and the operation prefix that led here; called when an
  // invariant check has failed so the schedule can be replayed.
  void dump_schedule() const {
    std::string out = "fuzz failure: reproduce with GDVR_FUZZ_SEED=" + std::to_string(seed) +
                      "\nschedule prefix (" + std::to_string(schedule.size()) + " ops):\n";
    for (const std::string& op : schedule) out += "  " + op + "\n";
    ADD_FAILURE() << out;
  }

  void check_invariants(const char* phase) {
    for (int u = 0; u < topo.size(); ++u) {
      if (!net->alive(u) || !overlay->active(u)) {
        // Dead nodes hold no state.
        EXPECT_TRUE(overlay->dt_neighbors(u).empty()) << phase << " node " << u;
        continue;
      }
      std::set<int> seen;
      for (const NeighborView& v : overlay->neighbor_views(u)) {
        EXPECT_NE(v.id, u) << phase;                    // never self
        EXPECT_TRUE(seen.insert(v.id).second) << phase; // no duplicates
        EXPECT_TRUE(std::isfinite(v.cost)) << phase;
        EXPECT_GT(v.cost, 0.0) << phase;
        EXPECT_GE(v.err, 0.0) << phase;
        EXPECT_EQ(v.pos.dim(), 2) << phase;
        if (v.is_phys) {
          EXPECT_TRUE(topo.etx.has_edge(u, v.id)) << phase;
          EXPECT_DOUBLE_EQ(v.cost, topo.etx.link_cost(u, v.id)) << phase;
        } else if (v.is_dt) {
          // Virtual-link path: well-formed, physically valid, matches cost.
          const auto& path = overlay->virtual_path(u, v.id);
          ASSERT_GE(path.size(), 2u) << phase;
          EXPECT_EQ(path.front(), u) << phase;
          EXPECT_EQ(path.back(), v.id) << phase;
          double cost = 0.0;
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            ASSERT_TRUE(topo.etx.has_edge(path[i], path[i + 1]))
                << phase << " broken path at " << path[i];
            cost += topo.etx.link_cost(path[i], path[i + 1]);
          }
          EXPECT_NEAR(cost, v.cost, 1e-9) << phase;
        }
      }
      EXPECT_LT(overlay->distinct_nodes_stored(u), topo.size()) << phase;
    }
  }
};

// The shared fuzz loop: `rounds` churn rounds against one seed, dumping the
// seed and schedule prefix on the first round whose invariants fail.
void run_fuzz(std::uint64_t seed, int rounds) {
  Fuzzer f(seed);
  f.check_invariants("after bootstrap");
  if (::testing::Test::HasFailure()) return f.dump_schedule();
  for (int round = 0; round < rounds; ++round) {
    for (int op = 0; op < 8; ++op) f.random_op();
    f.maintenance();
    f.maintenance();
    f.check_invariants("after churn round");
    if (::testing::Test::HasFailure()) return f.dump_schedule();
  }
  // Nothing crashed, every invariant held, and the network still functions:
  // alive nodes with neighbors are joined again after the final maintenance.
  int alive = 0, joined = 0;
  for (int u = 0; u < f.topo.size(); ++u) {
    if (!f.net->alive(u)) continue;
    ++alive;
    if (f.overlay->joined(u)) ++joined;
  }
  EXPECT_GT(alive, f.topo.size() / 2);
  EXPECT_GE(joined, alive * 8 / 10);  // stragglers may still be rejoining
  if (::testing::Test::HasFailure()) f.dump_schedule();
}

class MdtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MdtFuzz, InvariantsHoldUnderRandomChurn) { run_fuzz(GetParam(), 4); }

INSTANTIATE_TEST_SUITE_P(Seeds, MdtFuzz, ::testing::Values(11u, 22u, 33u, 44u));

// The overlay-level oracle pin for incremental local-DT maintenance (the
// same pattern as kAllPairs/kLinearScan in the topology pipeline): the same
// fuzz schedule under kIncremental and kFullRebuild must yield identical
// neighbor sets at every alive node after bootstrap and after every churn
// round. The two runs can only stay in lockstep if every recompute agreed,
// so a single divergent triangulation anywhere surfaces as a mismatch here.
TEST(MdtFuzz, IncrementalMatchesFullRebuildOracle) {
  for (std::uint64_t seed : {7u, 19u}) {
    Fuzzer inc(seed, MdtConfig::DtMaintenance::kIncremental);
    Fuzzer full(seed, MdtConfig::DtMaintenance::kFullRebuild);
    const auto compare = [&](const char* phase) {
      for (int u = 0; u < inc.topo.size(); ++u) {
        ASSERT_EQ(inc.net->alive(u), full.net->alive(u))
            << phase << " node " << u << " seed " << seed;
        if (!inc.net->alive(u)) continue;
        ASSERT_EQ(inc.overlay->dt_neighbors(u), full.overlay->dt_neighbors(u))
            << phase << " node " << u << " seed " << seed;
      }
      const auto s = inc.overlay->dt_stats();
      ASSERT_GT(s.inserts, 0u) << "incremental path never exercised";
    };
    compare("bootstrap");
    for (int round = 0; round < 3; ++round) {
      for (int op = 0; op < 8; ++op) {
        inc.random_op();
        full.random_op();
      }
      inc.maintenance();
      full.maintenance();
      compare("churn round");
    }
  }
}

// Directed reproduction / exploration: GDVR_FUZZ_SEED=<n> runs one longer
// fuzz with that exact seed (the schedule is fully determined by it).
// Skipped when the variable is unset, so CI runs are unaffected.
TEST(MdtFuzzEnv, EnvSeedSchedule) {
  const char* env = std::getenv("GDVR_FUZZ_SEED");
  if (env == nullptr || env[0] == '\0')
    GTEST_SKIP() << "set GDVR_FUZZ_SEED=<seed> to fuzz a specific schedule";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  run_fuzz(seed, 8);
}

}  // namespace
}  // namespace gdvr::mdt
