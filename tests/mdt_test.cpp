// Integration tests for the distributed MDT protocol: join, neighbor-set
// exchange, virtual-link paths, cost accumulation, maintenance and churn.
//
// The overlay runs on *actual* 2D node locations here (no VPoD), so the
// converged distributed DT can be compared against the centralized Delaunay
// triangulation of the same coordinates.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "geom/delaunay.hpp"
#include "mdt/overlay.hpp"
#include "radio/topology.hpp"
#include "sim/simulator.hpp"

namespace gdvr::mdt {
namespace {

struct Harness {
  radio::Topology topo;
  sim::Simulator sim;
  std::unique_ptr<Net> net;
  std::unique_ptr<MdtOverlay> overlay;
  Rng rng{77};

  explicit Harness(int n, std::uint64_t seed, int num_obstacles = 0) {
    radio::TopologyConfig tc;
    tc.n = n;
    tc.seed = seed;
    tc.num_obstacles = num_obstacles;
    // The paper's density: ~14.5 physical neighbors per node; without this a
    // 60-node network in the default 100x100 m field is badly disconnected.
    tc.target_avg_degree = 14.5;
    topo = radio::make_random_topology(tc);
    net = std::make_unique<Net>(sim, topo.etx, 0.01, 0.1, seed);
    MdtConfig mc;
    mc.dim = 2;
    // Tests run maintenance every ~6 s, so dead neighbors should be presumed
    // stale much sooner than the VPoD-period-scale default.
    mc.neighbor_stale_s = 14.0;
    overlay = std::make_unique<MdtOverlay>(*net, mc);
    overlay->attach();
  }

  void start_all() {
    for (int u = 0; u < topo.size(); ++u)
      overlay->activate(u, topo.positions[static_cast<std::size_t>(u)], u == 0);
    // Stagger the joins a little, like a token flood would.
    for (int u = 1; u < topo.size(); ++u) {
      const double at = 0.2 + rng.uniform(0.0, 1.0);
      sim.schedule_at(at, [this, u] { overlay->start_join(u); });
    }
    sim.run_until(8.0);
  }

  void maintenance_rounds(int rounds, double period = 6.0) {
    for (int r = 0; r < rounds; ++r) {
      const double base = sim.now();
      for (int u = 0; u < topo.size(); ++u) {
        if (!net->alive(u)) continue;
        sim.schedule_at(base + rng.uniform(0.0, 0.5), [this, u] {
          if (net->alive(u)) overlay->run_maintenance_round(u);
        });
      }
      sim.run_until(base + period);
    }
  }

  // Fraction of alive nodes whose DT neighbor set exactly matches the
  // centralized Delaunay triangulation of the alive nodes' positions.
  double dt_correctness() const {
    std::vector<int> ids;
    std::vector<Vec> pts;
    for (int u = 0; u < topo.size(); ++u) {
      if (!net->alive(u) || !overlay->active(u)) continue;
      ids.push_back(u);
      pts.push_back(topo.positions[static_cast<std::size_t>(u)]);
    }
    const geom::DelaunayGraph dt = geom::delaunay_graph(pts);
    int correct = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      std::vector<int> expected;
      for (int v : dt.nbrs[i]) expected.push_back(ids[static_cast<std::size_t>(v)]);
      std::sort(expected.begin(), expected.end());
      if (overlay->dt_neighbors(ids[i]) == expected) ++correct;
    }
    return ids.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(ids.size());
  }
};

TEST(Mdt, AllNodesJoin) {
  Harness h(60, 3);
  h.start_all();
  h.maintenance_rounds(3);
  int joined = 0;
  for (int u = 0; u < h.topo.size(); ++u)
    if (h.overlay->joined(u)) ++joined;
  EXPECT_EQ(joined, h.topo.size());
}

TEST(Mdt, ConvergesToCorrectDT) {
  for (std::uint64_t seed : {3u, 8u, 21u}) {
    Harness h(60, seed);
    h.start_all();
    h.maintenance_rounds(4);
    EXPECT_GE(h.dt_correctness(), 0.95) << "seed=" << seed;
  }
}

TEST(Mdt, PhysicalDtNeighborsUseLinkCost) {
  Harness h(50, 5);
  h.start_all();
  h.maintenance_rounds(3);
  for (int u = 0; u < h.topo.size(); ++u) {
    for (const NeighborView& v : h.overlay->neighbor_views(u)) {
      if (v.is_phys) {
        EXPECT_DOUBLE_EQ(v.cost, h.topo.etx.link_cost(u, v.id));
      }
    }
  }
}

TEST(Mdt, MultiHopCostsAreValidOverestimates) {
  Harness h(60, 7);
  h.start_all();
  h.maintenance_rounds(3);
  for (int u = 0; u < h.topo.size(); ++u) {
    const auto sp = graph::dijkstra(h.topo.etx, u);
    for (const NeighborView& v : h.overlay->neighbor_views(u)) {
      if (v.is_phys || !v.is_dt) continue;
      // Recorded cost is the cost of a real path, so it is at least the
      // shortest-path cost (the paper notes over-estimates are fine).
      EXPECT_GE(v.cost, sp.dist[static_cast<std::size_t>(v.id)] - 1e-9);
      EXPECT_LT(v.cost, graph::kInf);
    }
  }
}

TEST(Mdt, VirtualPathsArePhysicallyValid) {
  Harness h(60, 9);
  h.start_all();
  h.maintenance_rounds(3);
  int multihop = 0;
  for (int u = 0; u < h.topo.size(); ++u) {
    for (const NeighborView& v : h.overlay->neighbor_views(u)) {
      if (v.is_phys || !v.is_dt) continue;
      const auto& path = h.overlay->virtual_path(u, v.id);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v.id);
      double cost = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ASSERT_TRUE(h.topo.etx.has_edge(path[i], path[i + 1]))
            << "virtual path uses a non-existent link";
        cost += h.topo.etx.link_cost(path[i], path[i + 1]);
      }
      EXPECT_NEAR(cost, v.cost, 1e-9);  // recorded cost matches the stored path
      ++multihop;
    }
  }
  EXPECT_GT(multihop, 0);  // some multi-hop DT neighbors must exist
}

TEST(Mdt, CostAccumulationRespectsAsymmetry) {
  // For a multi-hop DT pair (u, v), u's recorded cost must equal the
  // forward-direction sum over u's stored path, not v's.
  Harness h(60, 11);
  h.start_all();
  h.maintenance_rounds(3);
  int checked = 0, asymmetric = 0;
  for (int u = 0; u < h.topo.size() && checked < 40; ++u) {
    for (const NeighborView& v : h.overlay->neighbor_views(u)) {
      if (v.is_phys || !v.is_dt) continue;
      const auto& fwd = h.overlay->virtual_path(u, v.id);
      if (fwd.size() < 3) continue;
      double fwd_cost = 0.0, rev_cost = 0.0;
      for (std::size_t i = 0; i + 1 < fwd.size(); ++i) {
        fwd_cost += h.topo.etx.link_cost(fwd[i], fwd[i + 1]);
        rev_cost += h.topo.etx.link_cost(fwd[i + 1], fwd[i]);
      }
      // The recorded cost is the *forward-direction* sum along the stored
      // path (not the reverse), exactly as the paper's accumulation works.
      EXPECT_NEAR(v.cost, fwd_cost, 1e-9);
      if (fwd_cost != rev_cost) ++asymmetric;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
  // Some paths consist solely of saturated (PRR = 1) links and are exactly
  // symmetric; across the network, at least one path must show asymmetry.
  EXPECT_GT(asymmetric, 0);
}

TEST(Mdt, StorageMetricCountsKnownNodes) {
  Harness h(50, 13);
  h.start_all();
  h.maintenance_rounds(3);
  for (int u = 0; u < h.topo.size(); ++u) {
    const int stored = h.overlay->distinct_nodes_stored(u);
    // At least the physical neighbors; strictly fewer than everything.
    EXPECT_GE(stored, h.topo.etx.degree(u));
    EXPECT_LT(stored, h.topo.size());
  }
}

TEST(Mdt, SurvivesChurn) {
  Harness h(80, 17);
  h.start_all();
  h.maintenance_rounds(3);
  // Kill 20 random nodes (keep node 0 so dt_correctness sees the overlay).
  Rng rng(5);
  std::set<int> dead;
  while (dead.size() < 20) {
    const int u = 1 + rng.uniform_index(h.topo.size() - 1);
    if (dead.insert(u).second) h.overlay->deactivate(u);
  }
  // The remaining connectivity graph may be disconnected; only require
  // correctness on the surviving largest component if still connected.
  h.maintenance_rounds(5);
  int joined = 0, alive = 0;
  for (int u = 0; u < h.topo.size(); ++u) {
    if (!h.net->alive(u)) continue;
    ++alive;
    if (h.overlay->joined(u)) ++joined;
  }
  EXPECT_EQ(alive, h.topo.size() - 20);
  EXPECT_EQ(joined, alive);
  // Dead nodes must have disappeared from every survivor's neighbor views.
  for (int u = 0; u < h.topo.size(); ++u) {
    if (!h.net->alive(u)) continue;
    for (const NeighborView& v : h.overlay->neighbor_views(u)) EXPECT_FALSE(dead.count(v.id));
  }
}

TEST(Mdt, DeactivatedNodeStateCleared) {
  Harness h(40, 19);
  h.start_all();
  h.overlay->deactivate(5);
  EXPECT_FALSE(h.overlay->active(5));
  EXPECT_FALSE(h.net->alive(5));
  EXPECT_TRUE(h.overlay->dt_neighbors(5).empty());
  EXPECT_EQ(h.overlay->distinct_nodes_stored(5), 0);
}

TEST(Mdt, PositionUpdatePropagates) {
  Harness h(40, 23);
  h.start_all();
  h.maintenance_rounds(2);
  // Move node 7 and check a physical neighbor's view updates.
  const Vec new_pos{123.0, 456.0};
  h.overlay->set_position(7, new_pos, 0.5);
  h.sim.run_until(h.sim.now() + 1.0);
  const auto nbrs = h.net->alive_neighbors(7);
  ASSERT_FALSE(nbrs.empty());
  const auto& info = h.overlay->phys_info(nbrs[0].to);
  auto it = info.find(7);
  ASSERT_NE(it, info.end());
  EXPECT_EQ(it->second.pos, new_pos);
  EXPECT_DOUBLE_EQ(it->second.err, 0.5);
}

TEST(Mdt, WorksWithObstacles) {
  Harness h(70, 29, /*num_obstacles=*/4);
  h.start_all();
  h.maintenance_rounds(4);
  int joined = 0;
  for (int u = 0; u < h.topo.size(); ++u)
    if (h.overlay->joined(u)) ++joined;
  EXPECT_EQ(joined, h.topo.size());
  EXPECT_GE(h.dt_correctness(), 0.9);
}

}  // namespace
}  // namespace gdvr::mdt
