// Ablation: greedy refresh of virtual-link paths.
//
// A multi-hop DT neighbor's routing cost D(u,v) is whatever path the
// neighbor-set exchange took. Early in VPoD's construction those paths are
// long (positions are arbitrary). With greedy refresh (default), each
// maintenance round's re-sync routes greedily over the *current* embedding,
// so paths -- and the costs GDV uses -- shrink as positions converge.
// With sticky paths (ablated), the first path found is reused forever.
//
// This design choice emerged during implementation: sticky paths keep
// DT-neighbor costs inflated, which keeps VPoD's position errors high,
// which keeps the adaptive timeout short -- a feedback loop that wastes
// messages and hurts converged routing quality.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 20 : 10;
  const int pairs = full ? 0 : 400;
  const radio::Topology topo = paper_topology(200, 778);
  std::printf("Virtual-link path refresh ablation | N=%d, ETX metric, 3D%s\n", topo.size(),
              full ? " [full]" : " [quick]");

  std::vector<double> xs;
  std::vector<Series> tx_series, msg_series;
  for (bool greedy_refresh : {true, false}) {
    vpod::VpodConfig vc = paper_vpod(3);
    vc.mdt.refresh_paths_greedily = greedy_refresh;
    const auto points = run_vpod_series(topo, /*use_etx=*/true, vc, periods, pairs);
    const char* name = greedy_refresh ? "greedy refresh" : "sticky paths (ablated)";
    Series tx{name, {}}, ms{name, {}};
    if (xs.empty())
      for (const auto& p : points) xs.push_back(p.period);
    for (const auto& p : points) {
      tx.values.push_back(p.gdv.transmissions);
      ms.values.push_back(p.msgs_per_node);
    }
    tx_series.push_back(std::move(tx));
    msg_series.push_back(std::move(ms));
  }
  print_table("GDV transmissions per delivery vs period", "period", xs, tx_series);
  print_table("control messages per node per period", "period", xs, msg_series);
  std::printf("\nexpected shape: sticky paths converge to worse routing quality and keep\n"
              "spending messages (inflated errors keep the adaptive timeout short).\n");
  return 0;
}
