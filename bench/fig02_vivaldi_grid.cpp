// Figures 1 & 2: 121-node grid; virtual positions constructed by 2-hop
// Vivaldi after 10 and 20 adjustment periods. The paper's scatter plots are
// emitted as coordinate tables, plus the quantitative local/global embedding
// errors that explain the figure (local relationships preserved, global ones
// collapsed).
#include "analysis/embedding.hpp"
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void dump_positions(const char* tag, const std::vector<Vec>& pos) {
  std::printf("\n-- virtual positions %s (node: x y) --\n", tag);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    std::printf("%3zu: %8.3f %8.3f   ", i + 1, pos[i][0], pos[i][1]);
    if ((i + 1) % 4 == 0) std::printf("\n");
  }
  std::printf("\n");
}

void quality(const char* tag, const std::vector<Vec>& pos, const analysis::Matrix& costs) {
  const auto q = analysis::embedding_quality(pos, costs);
  std::printf("%s: local err %.2f | global err %.2f | stress %.2f\n", tag, q.local_rel_error,
              q.global_rel_error, q.stress);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::printf("Figures 1-2 | 121-node grid, 2-hop Vivaldi, hop-count metric%s\n",
              full ? " [full]" : " [quick]");
  const radio::Topology grid = radio::make_grid(11, 11, 1.0);
  const analysis::Matrix costs = analysis::cost_matrix(grid.hops);

  vivaldi::VivaldiConfig vc;
  vc.dim = 2;
  eval::VivaldiRunner runner(grid, /*use_etx=*/false, vc);

  runner.run_to_period(10);
  const auto pos10 = runner.positions();
  runner.run_to_period(20);
  const auto pos20 = runner.positions();

  quality("after 10 periods", pos10, costs);
  quality("after 20 periods", pos20, costs);

  // Functional consequence: GDV routed on these coordinates.
  eval::EvalOptions opts;
  opts.pair_samples = full ? 0 : 400;
  const auto stats = eval::eval_gdv_on_positions(pos20, grid, opts);
  std::printf("GDV on these positions: stretch %.2f, success %.0f%%\n", stats.stretch,
              100.0 * stats.success_rate);
  std::printf("expected shape: local error moderate, global error large --\n"
              "2-hop Vivaldi cannot recover global structure (paper Fig. 2).\n");
  if (full) {
    dump_positions("after 10 periods (Fig 2a)", pos10);
    dump_positions("after 20 periods (Fig 2b)", pos20);
  }
  return 0;
}
