// Ablation: fault-intensity sweep, with and without the reliable control
// transport.
//
// A converged VPoD/MDT system is hit with a fault storm whose intensity
// scales from "calm" to "severe": sustained control-plane loss, node
// crash/recover cycles, link flaps, duplication bursts, delay spikes, and a
// transient partition at the top intensities. Each cell runs the identical
// seed-deterministic schedule twice -- once with the MDT join/neighbor-set
// exchange riding the per-hop ACK/retransmit transport (sim/reliable.hpp),
// once on raw best-effort delivery -- and reports the joined fraction and
// routing success deep into the storm, the per-node count of neighbor-set
// sync rounds abandoned after exhausting retries (the exact failure the
// transport exists to prevent), and routing success / DT accuracy after a
// calm re-convergence tail.
#include "common.hpp"

#include "common/parallel.hpp"
#include "eval/invariants.hpp"
#include "sim/faults.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

struct Cell {
  double joined_mid = 0.0;      // fraction of nodes joined deep into the storm
  double success_mid = 0.0;     // routing success among them, deep into the storm
  double sync_failures = 0.0;   // neighbor-set sync rounds abandoned after
                                // exhausting retries, per node, over the
                                // storm + recovery window
  double success_late = 0.0;    // after the recovery tail
  double dt_late = 0.0;         // DT-neighbor accuracy after the recovery tail
  double retransmissions = 0.0; // per reliable send (0 when transport is off)
};

struct Intensity {
  const char* name;
  double loss;        // sustained control-loss probability during the storm
  int crash_cycles;
  int link_flaps;
  int partitions;
};

Cell run_cell(const radio::Topology& topo, const Intensity& in, bool reliable, int pairs) {
  vpod::VpodConfig vc = paper_vpod(3);
  eval::VpodRunner runner(topo, /*use_etx=*/true, vc);
  if (reliable) runner.enable_reliable_sync();
  runner.run_to_period(6);  // converge fault-free

  const sim::Time t0 = runner.simulator().now() + 1.0;
  const double storm_s = 50.0;
  sim::ChaosConfig cfg;
  cfg.t_begin = t0;
  cfg.t_end = t0 + storm_s;
  cfg.crash_cycles = in.crash_cycles;
  cfg.crash_downtime_s = 6.0;
  cfg.link_flaps = in.link_flaps;
  cfg.loss_bursts = 0;  // loss is the sweep variable: one full-window burst
  cfg.dup_bursts = in.crash_cycles > 0 ? 1 : 0;
  cfg.delay_spikes = in.crash_cycles > 0 ? 1 : 0;
  cfg.partitions = in.partitions;
  cfg.partition_s = 10.0;
  sim::FaultSchedule schedule = sim::FaultSchedule::random_chaos(
      cfg, /*seed=*/7321, topo.size(), runner.physical_edges());
  if (in.loss > 0.0) {
    sim::FaultSchedule sustained;
    sustained.loss_burst(t0, storm_s, in.loss);
    schedule.merge(sustained);
  }
  if (!schedule.empty()) runner.faults().install(schedule);

  eval::InvariantOptions iopts;
  iopts.pair_samples = pairs;
  iopts.seed = 17;
  const std::uint64_t failures_before = runner.protocol().overlay().sync_stats().failures;

  // Deep into the storm: the last crash victims have had their recovery, and
  // every join / neighbor-set exchange since has run under sustained loss.
  // This is where per-hop retransmission earns its keep -- without it, lost
  // join replies stall rejoins until coarse protocol retries, and
  // neighbor-set exchanges exhaust their retry budget without ever
  // completing. (Routing success is evaluated among the joined nodes, so a
  // stalled rejoin shows up in the joined fraction, not in success.)
  runner.simulator().run_until(t0 + 0.8 * storm_s);
  const eval::InvariantReport mid = audit_invariants(runner, iopts);
  // Recovery tail: several calm periods of joins + maintenance after quiesce.
  runner.run_to_period(12);
  const eval::InvariantReport late = audit_invariants(runner, iopts);
  const std::uint64_t failures_after = runner.protocol().overlay().sync_stats().failures;

  const double n = static_cast<double>(topo.size());
  Cell c;
  c.joined_mid = static_cast<double>(mid.joined_nodes) / n;
  c.success_mid = mid.routing_success;
  c.sync_failures = static_cast<double>(failures_after - failures_before) / n;
  c.success_late = late.routing_success;
  c.dt_late = late.dt_accuracy;
  if (reliable && runner.reliable() != nullptr && runner.reliable()->stats().sent > 0) {
    c.retransmissions = static_cast<double>(runner.reliable()->stats().retransmissions) /
                        static_cast<double>(runner.reliable()->stats().sent);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int pairs = full ? 600 : 250;
  const int n = full ? 200 : 120;
  const radio::Topology topo = paper_topology(n, 4242);
  ParallelTrials pool;
  std::printf("Fault-intensity ablation | N=%d, ETX metric, 3D%s, %d thread(s)\n", topo.size(),
              full ? " [full]" : " [quick]", pool.threads());
  std::printf("storm: 50 s of sustained control loss + crash cycles + link flaps\n"
              "(+ duplication, delay spikes, and a partition at higher intensities),\n"
              "identical seeded schedule with the reliable transport on vs off.\n");

  const Intensity levels[] = {
      {"none", 0.00, 0, 0, 0},
      {"mild", 0.15, 2, 3, 0},
      {"moderate", 0.30, 4, 6, 1},
      {"severe", 0.60, 6, 10, 1},
  };

  // Each (intensity, transport) cell is an independent seed-deterministic
  // simulation sharing only the read-only topology, so all eight run in
  // parallel; printing and aggregation happen after, in intensity order.
  constexpr int kLevels = static_cast<int>(std::size(levels));
  const std::vector<Cell> cells = pool.run(kLevels * 2, [&](int t) {
    return run_cell(topo, levels[t / 2], /*reliable=*/t % 2 == 1, pairs);
  });

  std::vector<double> xs;
  Series joined_mid_off{"unreliable", {}}, joined_mid_on{"reliable", {}};
  Series succ_mid_off{"unreliable", {}}, succ_mid_on{"reliable", {}};
  Series fail_off{"unreliable", {}}, fail_on{"reliable", {}};
  Series succ_late_off{"unreliable", {}}, succ_late_on{"reliable", {}};
  Series retx{"retx per send", {}};
  for (int idx = 0; idx < kLevels; ++idx) {
    const Intensity& in = levels[idx];
    const Cell& off = cells[static_cast<std::size_t>(idx * 2)];
    const Cell& on = cells[static_cast<std::size_t>(idx * 2 + 1)];
    xs.push_back(idx);
    joined_mid_off.values.push_back(off.joined_mid);
    joined_mid_on.values.push_back(on.joined_mid);
    succ_mid_off.values.push_back(off.success_mid);
    succ_mid_on.values.push_back(on.success_mid);
    fail_off.values.push_back(off.sync_failures);
    fail_on.values.push_back(on.sync_failures);
    succ_late_off.values.push_back(off.success_late);
    succ_late_on.values.push_back(on.success_late);
    retx.values.push_back(on.retransmissions);
    std::printf("[%-8s] mid-storm joined %.3f -> %.3f | sync failures/node %.2f -> %.2f | "
                "mid-storm success %.3f -> %.3f | late success %.3f -> %.3f "
                "(unreliable -> reliable)\n",
                in.name, off.joined_mid, on.joined_mid, off.sync_failures, on.sync_failures,
                off.success_mid, on.success_mid, off.success_late, on.success_late);
  }

  print_table("fraction of nodes joined deep into the storm (x = intensity level)", "intensity",
              xs, {joined_mid_off, joined_mid_on});
  print_table("neighbor-set sync rounds abandoned after exhausting retries, per node", "intensity",
              xs, {fail_off, fail_on});
  print_table("routing success deep into the storm", "intensity", xs, {succ_mid_off, succ_mid_on});
  print_table("routing success after calm re-convergence", "intensity", xs,
              {succ_late_off, succ_late_on});
  print_table("reliable-transport retransmissions per send", "intensity", xs, {retx});
  std::printf("\nexpected shape: both configurations recover after the storm (soft\n"
              "state repairs at maintenance timescales), but while faults are live\n"
              "the unreliable control plane falls behind as intensity grows:\n"
              "crash victims stall mid-rejoin on lost join replies (joined\n"
              "fraction), and neighbor-set exchanges exhaust their retry budget\n"
              "without completing (sync failures) -- while per-hop\n"
              "retransmission keeps sync failures near zero at the price of\n"
              "retransmissions rising with intensity.\n");
  return 0;
}
