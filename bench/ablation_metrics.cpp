// Extension bench (paper Sec. III-A claims GDV works "for any additive
// routing metric"): run VPoD + GDV under all four implemented metrics --
// hop count, ETX, ETT and transmit energy -- on the same network, and
// compare each converged result against that metric's optimal shortest
// path. A geographic protocol without cost awareness has no way to target
// ETT or energy at all.
#include "common.hpp"
#include "radio/topology.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 20 : 10;
  const int pairs = full ? 0 : 400;
  const radio::Topology topo = paper_topology(200, 4242);
  std::printf("Metric generality | N=%d avg degree %.1f%s\n", topo.size(),
              topo.etx.average_degree(), full ? " [full]" : " [quick]");
  std::printf("\n%-14s %16s %16s %12s %10s\n", "metric", "GDV cost/deliv", "optimal cost",
              "GDV/optimal", "delivery");

  for (radio::Metric m : {radio::Metric::kHopCount, radio::Metric::kEtx, radio::Metric::kEtt,
                          radio::Metric::kEnergy}) {
    eval::VpodRunner runner(topo, m, paper_vpod(3));
    runner.run_to_period(periods);
    const auto view = runner.snapshot();
    const graph::Graph& metric = topo.metric_graph(m);
    const auto ids = eval::alive_nodes(view);
    const auto sampled = eval::sample_pairs(ids, pairs, 11);
    // Evaluate in "ETX mode" (cost accounting) regardless of the metric:
    // stats.transmissions is then the mean metric cost per delivery.
    const auto stats = eval::evaluate_router(
        [&](int s, int t) { return routing::route_gdv(view, s, t); }, metric, topo.hops,
        /*use_etx=*/true, sampled);
    std::printf("%-14s %16.3f %16.3f %12.3f %9.0f%%\n", radio::metric_name(m),
                stats.transmissions, stats.optimal_transmissions,
                stats.transmissions / stats.optimal_transmissions, 100.0 * stats.success_rate);
  }
  std::printf("\nexpected shape: GDV tracks the per-metric optimum with full delivery under\n"
              "every metric -- closest for hop count and ETX (~10-20%% over optimal), and\n"
              "within ~50%% for ETT/energy, whose wider per-link dynamic range (rate and\n"
              "power spreads multiply the ETX spread) makes the embedding harder.\n");
  return 0;
}
