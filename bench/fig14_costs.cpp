// Figure 14: (a) storage cost (distinct nodes stored per node) vs adjustment
// period for GDV on Vivaldi / VPoD 2D-3D-4D / MDT and NADV on actual
// locations; (b) control messages sent per node per adjustment period for
// VPoD (2D/3D/4D) and 2-hop Vivaldi. Hop-count metric (the paper notes ETX
// results are similar).
#include <set>

#include "common.hpp"
#include "routing/mdt_view.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

// Storage of the MDT baseline on actual locations, from the centralized
// construction: physical neighbors, DT neighbors, plus the relay state that
// virtual-link paths install on interior nodes.
double mdt_actual_storage(const radio::Topology& topo) {
  const routing::MdtView view = routing::centralized_mdt(topo.positions, topo.hops);
  std::vector<std::set<int>> known(static_cast<std::size_t>(topo.size()));
  for (int u = 0; u < topo.size(); ++u) {
    for (const graph::Edge& e : topo.hops.neighbors(u)) known[static_cast<std::size_t>(u)].insert(e.to);
    for (const routing::MdtView::DtNbr& d : view.dt[static_cast<std::size_t>(u)]) {
      known[static_cast<std::size_t>(u)].insert(d.id);
      for (std::size_t i = 1; i + 1 < d.path.size(); ++i) {
        known[static_cast<std::size_t>(d.path[i])].insert(u);
        known[static_cast<std::size_t>(d.path[i])].insert(d.id);
      }
    }
  }
  double total = 0.0;
  for (const auto& k : known) total += static_cast<double>(k.size());
  return total / topo.size();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 25 : 15;
  const radio::Topology topo = paper_topology(200, 1401);
  std::printf("Figure 14 | N=%d, hop-count metric%s\n", topo.size(), full ? " [full]" : " [quick]");

  std::vector<double> xs;
  for (int k = 1; k <= periods; ++k) xs.push_back(k);

  // Constant baselines.
  const double nadv_storage = topo.hops.average_degree();
  const double mdt_storage = mdt_actual_storage(topo);

  std::vector<Series> storage_series, msg_series;
  // VPoD in 2D / 3D / 4D.
  for (int dim : {2, 3, 4}) {
    eval::VpodRunner runner(topo, /*use_etx=*/false, paper_vpod(dim));
    Series st{"GDV VPoD " + std::to_string(dim) + "D", {}};
    Series ms{"VPoD " + std::to_string(dim) + "D", {}};
    for (int k = 1; k <= periods; ++k) {
      runner.run_to_period(k);
      st.values.push_back(runner.avg_storage());
      ms.values.push_back(runner.messages_per_node_since_mark());
    }
    storage_series.push_back(std::move(st));
    msg_series.push_back(std::move(ms));
  }
  // 2-hop Vivaldi.
  {
    vivaldi::VivaldiConfig vc;
    vc.dim = 3;
    eval::VivaldiRunner runner(topo, false, vc);
    Series st{"GDV Vivaldi", {}};
    Series ms{"Vivaldi", {}};
    for (int k = 1; k <= periods; ++k) {
      runner.run_to_period(k);
      st.values.push_back(runner.avg_storage());
      ms.values.push_back(runner.messages_per_node_since_mark());
    }
    storage_series.push_back(std::move(st));
    msg_series.push_back(std::move(ms));
  }
  {
    Series mdt{"MDT on actual", std::vector<double>(xs.size(), mdt_storage)};
    Series nadv{"NADV on actual", std::vector<double>(xs.size(), nadv_storage)};
    storage_series.push_back(std::move(mdt));
    storage_series.push_back(std::move(nadv));
  }

  print_table("Fig 14(a): ave. distinct nodes stored per node", "period", xs, storage_series);
  print_table("Fig 14(b): control messages per node per period", "period", xs, msg_series);
  std::printf("\nexpected shape: VPoD storage starts high and drops near MDT/NADV levels;\n"
              "higher dimensions cost more; Vivaldi needs far more storage and messages.\n");
  return 0;
}
