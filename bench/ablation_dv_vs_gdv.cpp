// Extension bench: GDV vs classic Distance Vector (paper Section I).
//
// DV converges to optimal paths but pays Theta(N) routing-table state per
// node and ships Theta(N)-sized vectors; GDV computes its distance vector
// locally from virtual positions, keeping per-node state at O(degree + DT
// neighbors). This bench runs both over the same networks and reports the
// price GDV pays in path cost for its constant-size state.
#include "common.hpp"
#include "routing/distance_vector.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 20 : 10;
  const int pairs = full ? 0 : 300;
  const std::vector<int> sizes = full ? std::vector<int>{100, 200, 400, 700, 1000}
                                      : std::vector<int>{100, 200, 400};
  std::printf("GDV vs Distance Vector | ETX metric%s\n", full ? " [full]" : " [quick]");

  std::vector<double> xs;
  Series dv_cost{"DV cost/deliv", {}}, gdv_cost{"GDV cost/deliv", {}};
  Series dv_store{"DV stored nodes", {}}, gdv_store{"GDV stored nodes", {}};
  // Note: every DV message carries a Theta(N)-entry vector; every GDV/VPoD
  // message is O(1)-sized. The message *counts* below therefore understate
  // DV's traffic by a factor of N.
  Series dv_msgs{"DV msgs (O(N)-sized)", {}}, gdv_msgs{"GDV msgs (O(1)-sized)", {}};

  for (int n : sizes) {
    xs.push_back(n);
    const radio::Topology topo = paper_topology(n, 5150 + static_cast<std::uint64_t>(n));

    // --- Distance Vector: run to convergence over the DES. ---
    sim::Simulator dv_sim;
    sim::NetSim<routing::DvMsg> dv_net(dv_sim, topo.etx, 0.01, 0.1, 3);
    routing::DistanceVector dv(dv_net);
    dv.start();
    dv_sim.run_until(30.0 + n * 0.1);

    std::vector<int> ids;
    for (int i = 0; i < topo.size(); ++i) ids.push_back(i);
    const auto sampled = eval::sample_pairs(ids, pairs, 9);
    const auto dv_stats = eval::evaluate_router(
        [&](int s, int t) { return dv.route(s, t); }, topo.etx, topo.hops, true, sampled);
    dv_cost.values.push_back(dv_stats.transmissions);
    dv_store.values.push_back(topo.size() - 1.0);
    dv_msgs.values.push_back(static_cast<double>(dv_net.total_messages_sent()) / topo.size());

    // --- GDV on VPoD. ---
    eval::VpodRunner runner(topo, /*use_etx=*/true, paper_vpod(3));
    runner.run_to_period(periods);
    eval::EvalOptions opts;
    opts.use_etx = true;
    opts.pair_samples = pairs;
    opts.seed = 9;
    const auto gdv_stats = eval::eval_gdv(runner.snapshot(), topo, opts);
    gdv_cost.values.push_back(gdv_stats.transmissions);
    gdv_store.values.push_back(runner.avg_storage());
    gdv_msgs.values.push_back(static_cast<double>(runner.net().total_messages_sent()) /
                              topo.size());
  }

  print_table("expected transmissions per delivery (DV = optimal)", "N", xs,
              {dv_cost, gdv_cost});
  print_table("distinct nodes stored per node", "N", xs, {dv_store, gdv_store});
  print_table("total control messages per node (to convergence)", "N", xs, {dv_msgs, gdv_msgs});
  std::printf("\nexpected shape: DV's path costs are optimal but its state grows linearly\n"
              "with N (and each of its messages is N entries long); GDV pays ~15-35%%\n"
              "extra path cost while its state stays a small, sublinear fraction of N.\n");
  return 0;
}
