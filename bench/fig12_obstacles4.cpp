// Figure 12: routing performance with four randomly placed 10m x 10m
// obstacles. Compares GDV on VPoD (2D/3D), GDV on 2-hop Vivaldi (2D/3D),
// and the MDT / NADV baselines on actual locations.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void run_metric(bool use_etx, const radio::Topology& topo, int periods, int pairs) {
  eval::EvalOptions opts;
  opts.use_etx = use_etx;
  opts.pair_samples = pairs;
  const auto baseline =
      use_etx ? eval::eval_nadv_actual(topo, opts) : eval::eval_mdt_actual(topo, opts);
  const auto pick = [&](const eval::RoutingStats& s) {
    return use_etx ? s.transmissions : s.stretch;
  };

  std::vector<double> xs;
  for (int k = 0; k <= periods; ++k) xs.push_back(k);
  std::vector<Series> series;
  {
    Series b{use_etx ? "NADV on actual" : "MDT on actual", {}};
    b.values.assign(xs.size(), pick(baseline));
    series.push_back(std::move(b));
  }
  for (int dim : {2, 3}) {
    const auto points = run_vpod_series(topo, use_etx, paper_vpod(dim), periods, pairs);
    Series s{"GDV VPoD " + std::to_string(dim) + "D", {}};
    for (const auto& p : points) s.values.push_back(pick(p.gdv));
    series.push_back(std::move(s));
  }
  for (int dim : {2, 3}) {
    vivaldi::VivaldiConfig vc;
    vc.dim = dim;
    eval::VivaldiRunner runner(topo, use_etx, vc);
    Series s{"GDV Vivaldi " + std::to_string(dim) + "D", {}};
    for (int k = 0; k <= periods; ++k) {
      runner.run_to_period(k);
      const auto stats = eval::eval_gdv_on_positions(runner.positions(), topo, opts);
      s.values.push_back(pick(stats));
    }
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 12(b): ave. transmissions per delivery (ETX)"
                      : "Fig 12(a): routing stretch (hop count)",
              "period", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 25 : 12;
  const int pairs = full ? 0 : 300;
  const radio::Topology topo = paper_topology(200, 1201, /*num_obstacles=*/4);
  std::printf("Figure 12 | N=%d, 4 obstacles 10x10m%s\n", topo.size(),
              full ? " [full]" : " [quick]");
  run_metric(false, topo, periods, pairs);
  run_metric(true, topo, periods, pairs);
  std::printf("\nexpected shape: GDV-on-VPoD beats MDT/NADV-on-actual; GDV-on-Vivaldi is\n"
              "far worse (Vivaldi's virtual positions collapse global structure).\n");
  return 0;
}
