// Figure 5: 121-node grid; virtual positions constructed by VPoD initially
// and after 10 / 20 adjustment periods. Complements fig02 (Vivaldi): VPoD
// preserves both local and global relationships.
#include "analysis/embedding.hpp"
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void quality(const char* tag, const std::vector<Vec>& pos, const analysis::Matrix& costs) {
  const auto q = analysis::embedding_quality(pos, costs);
  std::printf("%s: local err %.2f | global err %.2f | stress %.2f\n", tag, q.local_rel_error,
              q.global_rel_error, q.stress);
}

void dump_positions(const char* tag, const std::vector<Vec>& pos) {
  std::printf("\n-- virtual positions %s (node: x y) --\n", tag);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    std::printf("%3zu: %8.3f %8.3f   ", i + 1, pos[i][0], pos[i][1]);
    if ((i + 1) % 4 == 0) std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::printf("Figure 5 | 121-node grid, VPoD (2D), hop-count metric%s\n",
              full ? " [full]" : " [quick]");
  const radio::Topology grid = radio::make_grid(11, 11, 1.0);
  const analysis::Matrix costs = analysis::cost_matrix(grid.hops);

  eval::VpodRunner runner(grid, /*use_etx=*/false, paper_vpod(2));
  runner.run_to_period(0);
  const auto pos0 = runner.snapshot().pos;
  runner.run_to_period(10);
  const auto pos10 = runner.snapshot().pos;
  runner.run_to_period(20);
  const auto pos20 = runner.snapshot().pos;

  quality("initial        ", pos0, costs);
  quality("after 10 periods", pos10, costs);
  quality("after 20 periods", pos20, costs);

  // Functional consequence: GDV routes near-optimally on the converged
  // embedding (the distributed MDT state is even better than raw positions).
  eval::EvalOptions opts;
  opts.pair_samples = full ? 0 : 400;
  const auto stats = eval::eval_gdv(runner.snapshot(), grid, opts);
  std::printf("GDV on VPoD state: stretch %.2f, success %.0f%%\n", stats.stretch,
              100.0 * stats.success_rate);
  std::printf("expected shape: global error shrinks with periods and GDV stretch -> 1\n"
              "(contrast with fig02_vivaldi_grid, where global error stays large).\n");
  if (full) {
    dump_positions("initial (Fig 5a)", pos0);
    dump_positions("after 10 periods (Fig 5b)", pos10);
    dump_positions("after 20 periods (Fig 5c)", pos20);
  }
  return 0;
}
