// Ablation: VPoD's confidence weighting f = e_u / (e_u + e_v).
//
// The paper adopts Vivaldi's confidence mechanism so that neighbors with
// large position errors have less influence ("to mitigate such error
// propagation"). This bench disables it (f = 0.5 for every update) and
// compares convergence speed and converged routing quality.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 20 : 10;
  const int pairs = full ? 0 : 400;
  const radio::Topology topo = paper_topology(200, 777);
  std::printf("Confidence-weighting ablation | N=%d, ETX metric, 3D%s\n", topo.size(),
              full ? " [full]" : " [quick]");

  std::vector<double> xs;
  std::vector<Series> series;
  for (bool use_confidence : {true, false}) {
    vpod::VpodConfig vc = paper_vpod(3);
    vc.use_confidence = use_confidence;
    const auto points = run_vpod_series(topo, /*use_etx=*/true, vc, periods, pairs);
    Series s{use_confidence ? "with confidence" : "f = 0.5 (ablated)", {}};
    if (xs.empty())
      for (const auto& p : points) xs.push_back(p.period);
    for (const auto& p : points) s.values.push_back(p.gdv.transmissions);
    series.push_back(std::move(s));
  }
  print_table("GDV transmissions per delivery vs period", "period", xs, series);
  std::printf("\nexpected shape: both converge, but the ablated variant is noisier early\n"
              "(high-error neighbors yank well-placed nodes around).\n");
  return 0;
}
