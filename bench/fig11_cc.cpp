// Figure 11: impact of the tuning parameter c_c (0.02, 0.1, 0.3) on VPoD
// convergence, 3D virtual space.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void run_metric(bool use_etx, const radio::Topology& topo, int periods, int pairs) {
  eval::EvalOptions opts;
  opts.use_etx = use_etx;
  opts.pair_samples = pairs;
  const auto baseline =
      use_etx ? eval::eval_nadv_actual(topo, opts) : eval::eval_mdt_actual(topo, opts);

  std::vector<double> xs;
  std::vector<Series> series;
  series.push_back({use_etx ? "NADV on actual" : "MDT on actual", {}});
  for (double cc : {0.02, 0.1, 0.3}) {
    vpod::VpodConfig vc = paper_vpod(3);
    vc.cc = cc;
    const auto points = run_vpod_series(topo, use_etx, vc, periods, pairs);
    char name[32];
    std::snprintf(name, sizeof name, "GDV VPoD cc=%.2f", cc);
    Series s{name, {}};
    if (xs.empty())
      for (const auto& p : points) xs.push_back(p.period);
    for (const auto& p : points) {
      s.values.push_back(use_etx ? p.gdv.transmissions : p.gdv.stretch);
      if (series[0].values.size() < points.size())
        series[0].values.push_back(use_etx ? baseline.transmissions : baseline.stretch);
    }
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 11(b): ave. transmissions per delivery (ETX)"
                      : "Fig 11(a): routing stretch (hop count)",
              "period", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 25 : 12;
  const int pairs = full ? 0 : 400;
  const radio::Topology topo = paper_topology(200, 8101);
  std::printf("Figure 11 | N=%d | c_c sweep, 3D%s\n", topo.size(), full ? " [full]" : " [quick]");
  run_metric(false, topo, periods, pairs);
  run_metric(true, topo, periods, pairs);
  return 0;
}
