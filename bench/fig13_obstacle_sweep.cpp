// Figure 13: routing performance vs the number of 10m x 10m obstacles
// (0..10) in the 100m x 100m field, N = 200.
// (a) hop metric: MDT on actual, GDV on VPoD (2D, 3D)
// (b) ETX: NADV on actual, GDV on VPoD (2D, 3D), optimal shortest path.
//
// Each (obstacles, run) pair is an independent seed-deterministic trial, so
// the sweep fans out over ParallelTrials and aggregates in trial order.
#include "common.hpp"
#include "common/parallel.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

struct Trial {
  double m = 0, g2h = 0, g3h = 0, nv = 0, g2e = 0, g3e = 0, opt = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int runs = full ? 20 : 1;
  const int periods = full ? 25 : 10;
  const int pairs = full ? 0 : 300;
  const std::vector<int> counts = full ? std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
                                       : std::vector<int>{0, 2, 6, 10};

  ParallelTrials pool;
  std::printf("Figure 13 | N=200, %d run(s) per point%s, %d thread(s)\n", runs,
              full ? " [full]" : " [quick]", pool.threads());

  const int total = static_cast<int>(counts.size()) * runs;
  const std::vector<Trial> trials = pool.run(total, [&](int t) {
    const int obstacles = counts[static_cast<std::size_t>(t / runs)];
    const int run = t % runs;
    const auto seed = 1300 + static_cast<std::uint64_t>(obstacles) * 101 +
                      static_cast<std::uint64_t>(run) * 13;
    const radio::Topology topo = paper_topology(200, seed, obstacles);
    eval::EvalOptions hop_opts{pairs, seed, false, {}};
    eval::EvalOptions etx_opts{pairs, seed, true, {}};

    Trial r;
    r.m = eval::eval_mdt_actual(topo, hop_opts).stretch;
    const auto nadv_stats = eval::eval_nadv_actual(topo, etx_opts);
    r.nv = nadv_stats.transmissions;
    r.opt = nadv_stats.optimal_transmissions;

    for (int dim : {2, 3}) {
      const auto hop_pts = run_vpod_series(topo, false, paper_vpod(dim), periods, pairs,
                                           /*sample_every=*/periods);
      const auto etx_pts = run_vpod_series(topo, true, paper_vpod(dim), periods, pairs,
                                           /*sample_every=*/periods);
      (dim == 2 ? r.g2h : r.g3h) = hop_pts.back().gdv.stretch;
      (dim == 2 ? r.g2e : r.g3e) = etx_pts.back().gdv.transmissions;
    }
    return r;
  });

  std::vector<double> xs;
  Series mdt{"MDT on actual", {}}, gdv2_hop{"GDV VPoD 2D", {}}, gdv3_hop{"GDV VPoD 3D", {}};
  Series nadv{"NADV on actual", {}}, gdv2_etx{"GDV VPoD 2D", {}}, gdv3_etx{"GDV VPoD 3D", {}},
      optimal{"optimal", {}};

  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    xs.push_back(counts[ci]);
    Trial sum;
    for (int run = 0; run < runs; ++run) {
      const Trial& r = trials[ci * static_cast<std::size_t>(runs) + static_cast<std::size_t>(run)];
      sum.m += r.m; sum.g2h += r.g2h; sum.g3h += r.g3h;
      sum.nv += r.nv; sum.g2e += r.g2e; sum.g3e += r.g3e; sum.opt += r.opt;
    }
    mdt.values.push_back(sum.m / runs);
    gdv2_hop.values.push_back(sum.g2h / runs);
    gdv3_hop.values.push_back(sum.g3h / runs);
    nadv.values.push_back(sum.nv / runs);
    gdv2_etx.values.push_back(sum.g2e / runs);
    gdv3_etx.values.push_back(sum.g3e / runs);
    optimal.values.push_back(sum.opt / runs);
  }

  print_table("Fig 13(a): routing stretch vs obstacles (hop count)", "obstacles", xs,
              {mdt, gdv2_hop, gdv3_hop});
  print_table("Fig 13(b): transmissions per delivery vs obstacles (ETX)", "obstacles", xs,
              {nadv, gdv2_etx, gdv3_etx, optimal});
  std::printf("\nexpected shape: NADV degrades steeply with obstacles while GDV on VPoD\n"
              "stays close to optimal (paper: NADV 7.4->12.7 vs GDV 5.3->6.6).\n");
  return 0;
}
