// Incremental local-DT maintenance under continuous mobility: how far can
// nodes move per adjustment period before DynamicDelaunay::apply_diff stops
// beating a from-scratch rebuild?
//
// The knob is the ratio of per-step displacement to the mean
// nearest-neighbor spacing (0.5 / sqrt(density) for a Poisson placement).
// Two workload shapes run per ratio:
//
//  * sparse -- a 20% mobile subset roams among static nodes (sensors with a
//    few vehicles, the delta-path steady state). The diff is small, so the
//    incremental path is O(affected) and wins big until rising decline
//    rates drag in per-point repairs.
//  * dense  -- every node moves every step (continuous swarm). The
//    certificate sweep alone costs a sizable fraction of a rebuild, so the
//    speedup is structurally modest and apply_diff's internal cost model is
//    expected to collapse onto the rebuild as the ratio grows.
//
// The headline number is the sparse 2x crossing: the ratio where the
// incremental speedup over the from-scratch oracle drops below 2x, recorded
// in EXPERIMENTS.md.
//
//   build/bench/mobility_sweep            # quick: n=250, 40 timed steps
//   build/bench/mobility_sweep --full     # n=600, 80 timed steps
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "geom/dynamic_delaunay.hpp"
#include "scenario/mobility.hpp"

namespace gdvr::bench {
namespace {

using geom::DynamicDelaunay;
using Key = DynamicDelaunay::Key;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SweepPoint {
  double incremental_s = 0.0;
  double rebuild_s = 0.0;
  double early_out_rate = 0.0;
  double rebuild_rate = 0.0;  // fraction of steps apply_diff chose to rebuild
  double speedup() const {
    return incremental_s > 0.0 ? rebuild_s / incremental_s : 0.0;
  }
};

SweepPoint run_ratio(double ratio, int n, double mobile_fraction, int steps,
                     std::uint64_t seed) {
  const int mobile = std::max(2, static_cast<int>(std::lround(n * mobile_fraction)));
  // One box for the whole population, sized for n nodes at the paper's
  // density; the driver only owns the mobile subset but roams the full box.
  const double side = 100.0 * std::sqrt(static_cast<double>(n) / 200.0);
  scenario::MobilityConfig mc;
  mc.n = mobile;
  mc.seed = seed;
  mc.width_m = side;
  mc.height_m = side;
  // Constant speed, no dwell: per-step displacement is exactly speed * dt
  // (clipped at waypoints), so dt alone sets the step/spacing ratio.
  mc.speed_min_mps = 1.0;
  mc.speed_max_mps = 1.0;
  mc.pause_s = 0.0;
  scenario::MobilityDriver driver(mc);
  const double nn_spacing = 0.5 * side / std::sqrt(static_cast<double>(n));
  const double dt = ratio * nn_spacing;

  std::vector<std::pair<Key, Vec>> init;
  init.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < mobile; ++i)
    init.emplace_back(i, driver.positions()[static_cast<std::size_t>(i)]);
  Rng statics(seed ^ 0x5747A71Cull);
  for (int i = mobile; i < n; ++i)
    init.emplace_back(i, Vec{statics.uniform(0.0, side), statics.uniform(0.0, side)});

  DynamicDelaunay dyn(2);
  dyn.assign(init);

  SweepPoint out;
  std::vector<std::pair<Key, Vec>> moves;
  std::vector<std::pair<Key, Vec>> all;
  all = init;
  // Warmup: apply_diff's predictive skip opens in rebuild-biased state (its
  // trailing early-out estimate starts at 0.5, decays by 3/4 per probe, and
  // re-probes only every 8th skipped batch), so a calm workload needs about
  // five probes -- forty batches -- before the incremental path re-enables.
  // Steady state, the thing worth measuring, starts after that.
  const int warmup = 64;
  for (int s = 0; s < warmup; ++s) {
    driver.step(dt);
    moves.clear();
    for (int i : driver.moved())
      moves.emplace_back(i, driver.positions()[static_cast<std::size_t>(i)]);
    dyn.apply_diff({}, {}, moves);
  }
  const auto base = dyn.stats();
  for (int s = 0; s < steps; ++s) {
    driver.step(dt);
    moves.clear();
    for (int i : driver.moved())
      moves.emplace_back(i, driver.positions()[static_cast<std::size_t>(i)]);

    const auto t0 = Clock::now();
    dyn.apply_diff({}, {}, moves);
    out.incremental_s += seconds_since(t0);

    // The oracle pays a full from-scratch build over the same positions.
    // A fresh instance per step keeps it honest (no internal state carries
    // over), exactly the expect_matches_oracle contract from geom_test.
    for (int i = 0; i < mobile; ++i)
      all[static_cast<std::size_t>(i)].second = driver.positions()[static_cast<std::size_t>(i)];
    DynamicDelaunay oracle(2);
    const auto t1 = Clock::now();
    oracle.assign(all);
    out.rebuild_s += seconds_since(t1);
  }
  const auto st = dyn.stats();
  const auto attempted = st.moves - base.moves;
  if (attempted > 0)
    out.early_out_rate = static_cast<double>(st.move_early_outs - base.move_early_outs) /
                         static_cast<double>(attempted);
  out.rebuild_rate =
      static_cast<double>(st.full_rebuilds - base.full_rebuilds) / static_cast<double>(steps);
  return out;
}

}  // namespace
}  // namespace gdvr::bench

int main(int argc, char** argv) {
  using namespace gdvr::bench;
  const bool full = full_mode(argc, argv);
  const int n = full ? 600 : 250;
  const int steps = full ? 80 : 40;

  const std::vector<double> ratios = {0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35};
  Series s_inc{"sparse_inc_ms", {}}, s_reb{"sparse_rebuild_ms", {}}, s_sp{"sparse_speedup", {}},
      s_eo{"sparse_eo_rate", {}}, d_sp{"dense_speedup", {}}, d_rr{"dense_rebuild_rate", {}};
  double crossing = -1.0;
  for (double ratio : ratios) {
    const SweepPoint sparse = run_ratio(ratio, n, 0.2, steps, /*seed=*/42);
    const SweepPoint dense = run_ratio(ratio, n, 1.0, steps, /*seed=*/42);
    s_inc.values.push_back(sparse.incremental_s * 1e3);
    s_reb.values.push_back(sparse.rebuild_s * 1e3);
    s_sp.values.push_back(sparse.speedup());
    s_eo.values.push_back(sparse.early_out_rate);
    d_sp.values.push_back(dense.speedup());
    d_rr.values.push_back(dense.rebuild_rate);
    if (crossing < 0.0 && sparse.speedup() < 2.0) crossing = ratio;
  }
  print_table("incremental DT vs full rebuild under random-waypoint mobility",
              "step/nn-spacing", ratios, {s_inc, s_reb, s_sp, s_eo, d_sp, d_rr});
  if (crossing >= 0.0)
    std::printf("\n2x crossing (sparse, 20%% mobile): speedup drops below 2 at "
                "step/nn-spacing ~%g (n=%d)\n",
                crossing, n);
  else
    std::printf("\n2x crossing (sparse, 20%% mobile): not reached; incremental stays >=2x "
                "up to ratio %g (n=%d)\n",
                ratios.back(), n);
  return 0;
}
