// Figure 8: routing performance vs adjustment period for different
// adjustment-timeout strategies (delta_u = 2 s, 10 s, adaptive), with the
// MDT-on-actual-locations / NADV-on-actual-locations baselines.
// (a) hop-count metric: routing stretch;  (b) ETX: transmissions/delivery.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void run_metric(bool use_etx, const radio::Topology& topo, int periods, int pairs) {
  struct Mode {
    const char* name;
    vpod::VpodConfig::TimeoutMode mode;
    double fixed;
  };
  const Mode modes[] = {
      {"fixed 2s", vpod::VpodConfig::TimeoutMode::kFixed, 2.0},
      {"fixed 10s", vpod::VpodConfig::TimeoutMode::kFixed, 10.0},
      {"adaptive", vpod::VpodConfig::TimeoutMode::kAdaptive, 0.0},
  };

  eval::EvalOptions opts;
  opts.use_etx = use_etx;
  opts.pair_samples = pairs;
  const auto baseline = use_etx ? eval::eval_nadv_actual(topo, opts) : eval::eval_mdt_actual(topo, opts);

  std::vector<double> xs;
  std::vector<Series> series;
  series.push_back({use_etx ? "NADV on actual" : "MDT on actual", {}});
  for (const Mode& m : modes) {
    vpod::VpodConfig vc = paper_vpod(3);
    vc.timeout_mode = m.mode;
    vc.fixed_timeout_s = m.fixed;
    const auto points = run_vpod_series(topo, use_etx, vc, periods, pairs);
    Series s{std::string("GDV VPoD ") + m.name, {}};
    if (xs.empty())
      for (const auto& p : points) xs.push_back(p.period);
    for (const auto& p : points) {
      s.values.push_back(use_etx ? p.gdv.transmissions : p.gdv.stretch);
      if (series[0].values.size() < points.size())
        series[0].values.push_back(use_etx ? baseline.transmissions : baseline.stretch);
    }
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 8(b): ave. transmissions per delivery (ETX)"
                      : "Fig 8(a): routing stretch (hop count)",
              "period", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 25 : 15;
  const int pairs = full ? 0 : 400;  // 0 = all pairs
  const radio::Topology topo = paper_topology(200, 8101);
  std::printf("Figure 8 | N=%d avg degree %.1f | Ta=20s, 3D virtual space%s\n", topo.size(),
              topo.etx.average_degree(), full ? " [full]" : " [quick]");
  run_metric(/*use_etx=*/false, topo, periods, pairs);
  run_metric(/*use_etx=*/true, topo, periods, pairs);
  return 0;
}
