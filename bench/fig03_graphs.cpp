// Figure 3: connectivity graph vs Delaunay triangulation graph vs MDT graph
// of one set of 2D nodes. Emits edge counts and the edge-set relationships
// the figure illustrates (MDT = physical links ∪ DT edges).
#include <set>

#include "common.hpp"
#include "geom/delaunay.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const radio::Topology topo = paper_topology(120, 303);
  std::printf("Figure 3 | N=%d random 2D network%s\n", topo.size(), full ? " [full]" : " [quick]");

  // (a) connectivity graph
  std::set<std::pair<int, int>> conn;
  for (int u = 0; u < topo.size(); ++u)
    for (const graph::Edge& e : topo.hops.neighbors(u))
      conn.emplace(std::min(u, e.to), std::max(u, e.to));

  // (b) DT graph of the node locations
  const geom::DelaunayGraph dt = geom::delaunay_graph(topo.positions);
  std::set<std::pair<int, int>> dt_edges(dt.edges.begin(), dt.edges.end());

  // (c) MDT graph = connectivity ∪ DT
  std::set<std::pair<int, int>> mdt = conn;
  mdt.insert(dt_edges.begin(), dt_edges.end());

  int dt_not_physical = 0;
  for (const auto& e : dt_edges)
    if (!conn.count(e)) ++dt_not_physical;

  std::printf("\n(a) connectivity graph: %zu physical links\n", conn.size());
  std::printf("(b) DT graph:           %zu edges, of which %d are multi-hop (dashed in the paper)\n",
              dt_edges.size(), dt_not_physical);
  std::printf("(c) MDT graph:          %zu edges (= physical ∪ DT)\n", mdt.size());

  // Invariants the figure depicts.
  bool mdt_superset = true;
  for (const auto& e : conn)
    if (!mdt.count(e)) mdt_superset = false;
  for (const auto& e : dt_edges)
    if (!mdt.count(e)) mdt_superset = false;
  std::printf("MDT contains every physical link and every DT edge: %s\n",
              mdt_superset ? "yes" : "NO (bug!)");

  if (full) {
    std::printf("\nmulti-hop DT edges (u, v, euclidean distance):\n");
    for (const auto& [u, v] : dt_edges)
      if (!conn.count({u, v}))
        std::printf("  %3d - %3d   %.1f m\n", u, v,
                    topo.positions[static_cast<std::size_t>(u)].distance(
                        topo.positions[static_cast<std::size_t>(v)]));
  }
  return 0;
}
