// Figure 10: routing performance of GDV on VPoD in 2D, 3D and 4D virtual
// spaces vs adjustment period, against the MDT / NADV baselines on actual
// locations.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void run_metric(bool use_etx, const radio::Topology& topo, int periods, int pairs) {
  eval::EvalOptions opts;
  opts.use_etx = use_etx;
  opts.pair_samples = pairs;
  const auto baseline =
      use_etx ? eval::eval_nadv_actual(topo, opts) : eval::eval_mdt_actual(topo, opts);

  std::vector<double> xs;
  std::vector<Series> series;
  series.push_back({use_etx ? "NADV on actual" : "MDT on actual", {}});
  for (int dim : {2, 3, 4}) {
    const auto points = run_vpod_series(topo, use_etx, paper_vpod(dim), periods, pairs);
    Series s{"GDV VPoD " + std::to_string(dim) + "D", {}};
    if (xs.empty())
      for (const auto& p : points) xs.push_back(p.period);
    for (const auto& p : points) {
      s.values.push_back(use_etx ? p.gdv.transmissions : p.gdv.stretch);
      if (series[0].values.size() < points.size())
        series[0].values.push_back(use_etx ? baseline.transmissions : baseline.stretch);
    }
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 10(b): ave. transmissions per delivery (ETX)"
                      : "Fig 10(a): routing stretch (hop count)",
              "period", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 25 : 12;
  const int pairs = full ? 0 : 400;
  const radio::Topology topo = paper_topology(200, 8101);
  std::printf("Figure 10 | N=%d avg degree %.1f | adaptive timeout%s\n", topo.size(),
              topo.etx.average_degree(), full ? " [full]" : " [quick]");
  run_metric(false, topo, periods, pairs);
  run_metric(true, topo, periods, pairs);
  return 0;
}
