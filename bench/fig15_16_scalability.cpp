// Figures 15 & 16: scalability sweep over the number of nodes N (physical
// area scaled to keep average degree 14.5). One sweep produces all four
// panels, so both figures are emitted by this binary:
//   Fig 15(a) routing stretch vs N        (MDT, GDV on VPoD 2D/3D)
//   Fig 15(b) transmissions vs N (ETX)    (NADV, GDV on VPoD 2D/3D, optimal)
//   Fig 16(a) storage cost vs N           (NADV, MDT, GDV on VPoD 2D/3D)
//   Fig 16(b) routing success rate vs N   (GDV on VPoD/MDT, NADV)
//
// Every (N, run) pair is an independent trial with its own Simulator, so the
// sweep fans out over ParallelTrials; per-trial seeds depend only on (N, run)
// and results aggregate in trial order, keeping the output identical to a
// sequential run.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>

#include "common.hpp"
#include "common/parallel.hpp"
#include "graph/csr.hpp"
#include "routing/mdt_view.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

double mdt_actual_storage(const radio::Topology& topo) {
  const routing::MdtView view = routing::centralized_mdt(topo.positions, topo.hops);
  std::vector<std::set<int>> known(static_cast<std::size_t>(topo.size()));
  for (int u = 0; u < topo.size(); ++u) {
    for (const graph::Edge& e : topo.hops.neighbors(u)) known[static_cast<std::size_t>(u)].insert(e.to);
    for (const routing::MdtView::DtNbr& d : view.dt[static_cast<std::size_t>(u)]) {
      known[static_cast<std::size_t>(u)].insert(d.id);
      for (std::size_t i = 1; i + 1 < d.path.size(); ++i) {
        known[static_cast<std::size_t>(d.path[i])].insert(u);
        known[static_cast<std::size_t>(d.path[i])].insert(d.id);
      }
    }
  }
  double total = 0.0;
  for (const auto& k : known) total += static_cast<double>(k.size());
  return total / topo.size();
}

// Everything one (N, run) trial contributes to the four panels.
struct Trial {
  double ms = 0, g2s = 0, g3s = 0, nt = 0, g2t = 0, g3t = 0, ot = 0;
  double nst = 0, mst = 0, g2st = 0, g3st = 0, gsr = 0, nsr = 0;
};

// Large-N smoke: drives the topology -> CSR -> all-pairs pipeline at sizes
// far beyond the paper's sweep (area still scaled for degree 14.5). No
// figures -- this exists to prove the pipeline completes and to show its
// wall-clock scaling. Sources for the all-pairs sweep are capped so the
// largest size stays a smoke test rather than a coffee break.
void large_smoke() {
  using clock = std::chrono::steady_clock;
  const auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };
  std::printf("Large-N pipeline smoke | avg degree 14.5\n");
  std::printf("%6s %10s %10s %8s %10s %12s\n", "N", "gen_ms", "degree", "edges",
              "csr_ms", "sssp_ms/src");
  for (const int n : {2000, 5000}) {
    auto t0 = clock::now();
    const radio::Topology topo = paper_topology(n, 97);
    const double gen_ms = ms_since(t0);

    t0 = clock::now();
    const graph::CsrGraph csr(topo.etx);
    const double csr_ms = ms_since(t0);

    // Shortest-path trees from a capped number of sources (the all-pairs
    // kernel, sampled): enough to exercise the parallel sweep end to end.
    const int sources = std::min(csr.size(), 200);
    t0 = clock::now();
    graph::DijkstraWorkspace ws;
    double reach = 0.0;
    for (int s = 0; s < sources; ++s) {
      const auto& sp = graph::dijkstra(csr, s, ws);
      for (const double d : sp.dist) reach += d < graph::kInf ? 1.0 : 0.0;
    }
    const double sssp_ms = ms_since(t0) / sources;
    GDVR_ASSERT(reach > 0.0);

    std::printf("%6d %10.1f %10.2f %8zu %10.1f %12.3f\n", topo.size(), gen_ms,
                topo.etx.average_degree(), csr.edge_count(), csr_ms, sssp_ms);
  }
}

// Serial-vs-sharded engine sweep (DESIGN.md §4g): the full VPoD protocol --
// token flood, MDT joins, position adjustment -- through one adjustment
// period at large N, on the serial oracle and on the sharded engine at
// 1/2/4/8 worker threads. The sharded rows must agree with each other
// bit-for-bit (same message count at every thread count); the speedup
// column is the engine's reason to exist. check.sh --release smokes the
// n=2000 row; the n=5000 x 8-thread point is the acceptance number that
// BM_VpodEngine re-measures into BENCH_core.json.
void engine_sweep(bool smoke) {
  using clock = std::chrono::steady_clock;
  // Smoke keeps a single-core CI container honest in seconds; the full
  // sweep is sized for a multi-core host (n=5000 serial alone runs minutes).
  const std::vector<int> sizes = smoke ? std::vector<int>{500} : std::vector<int>{2000, 5000};
  const std::vector<int> threads = smoke ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4, 8};
  std::printf("Engine sweep: full VPoD run to period %d | avg degree 14.5%s\n", smoke ? 0 : 1,
              smoke ? " [smoke]" : "");
  std::printf("%6s %10s %10s %12s %10s %10s\n", "N", "engine", "threads", "messages",
              "wall_ms", "speedup");
  for (const int n : sizes) {
    const radio::Topology topo = paper_topology(n, 97);
    double serial_ms = 0.0;
    std::uint64_t serial_msgs = 0, sharded_msgs = 0;
    for (const int t : threads) {
      const bool sharded = t > 0;
      setenv("GDVR_SIM_ENGINE", sharded ? "sharded" : "serial", 1);
      setenv("GDVR_THREADS", std::to_string(sharded ? t : 1).c_str(), 1);
      const auto t0 = clock::now();
      eval::VpodRunner runner(topo, /*use_etx=*/false, paper_vpod(3));
      // Smoke stops at the period-0 boundary (token flood + initial MDT
      // join, the densest traffic); the full sweep runs a whole J+A cycle.
      runner.run_to_period(smoke ? 0 : 1);
      const double ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
      const std::uint64_t msgs = runner.net().total_messages_sent();
      if (!sharded) {
        serial_ms = ms;
        serial_msgs = msgs;
      } else if (sharded_msgs == 0) {
        sharded_msgs = msgs;
      }
      // Determinism cross-checks: sharded runs agree with each other at
      // every thread count, and with the serial oracle.
      GDVR_ASSERT(!sharded || msgs == sharded_msgs);
      GDVR_ASSERT(serial_msgs == 0 || msgs == serial_msgs);
      std::printf("%6d %10s %10d %12llu %10.1f %9.2fx\n", n,
                  sharded ? "sharded" : "serial", sharded ? t : 1,
                  static_cast<unsigned long long>(msgs), ms,
                  serial_ms > 0.0 ? serial_ms / ms : 1.0);
    }
  }
  unsetenv("GDVR_SIM_ENGINE");
  unsetenv("GDVR_THREADS");
}

}  // namespace

int main(int argc, char** argv) {
  bool want_large = false, want_sweep = false, want_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) want_large = true;
    if (std::strcmp(argv[i], "--engine-sweep") == 0) want_sweep = true;
    if (std::strcmp(argv[i], "--smoke") == 0) want_smoke = true;
  }
  if (want_large) {
    large_smoke();
    return 0;
  }
  if (want_sweep) {
    engine_sweep(want_smoke);
    return 0;
  }
  const bool full = full_mode(argc, argv);
  const int runs = full ? 20 : 1;
  const int periods = full ? 25 : 10;
  const int pairs = full ? 0 : 300;
  const std::vector<int> sizes = full
      ? std::vector<int>{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
      : std::vector<int>{100, 200, 400, 1000};

  ParallelTrials pool;
  std::printf("Figures 15-16 | avg degree kept at 14.5, %d run(s) per point%s, %d thread(s)\n",
              runs, full ? " [full]" : " [quick]", pool.threads());

  const int total = static_cast<int>(sizes.size()) * runs;
  const std::vector<Trial> trials = pool.run(total, [&](int t) {
    const int n = sizes[static_cast<std::size_t>(t / runs)];
    const int run = t % runs;
    const auto seed = 1500 + static_cast<std::uint64_t>(n) * 7 +
                      static_cast<std::uint64_t>(run) * 17;
    const radio::Topology topo = paper_topology(n, seed);
    eval::EvalOptions hop_opts{pairs, seed, false, {}};
    eval::EvalOptions etx_opts{pairs, seed, true, {}};

    Trial r;
    r.ms = eval::eval_mdt_actual(topo, hop_opts).stretch;
    const auto nadv_hop = eval::eval_nadv_actual(topo, hop_opts);
    const auto nadv_etx = eval::eval_nadv_actual(topo, etx_opts);
    r.nt = nadv_etx.transmissions;
    r.ot = nadv_etx.optimal_transmissions;
    r.nsr = nadv_hop.success_rate;
    r.nst = topo.hops.average_degree();
    r.mst = mdt_actual_storage(topo);

    for (int dim : {2, 3}) {
      // Hop-metric run (stretch, success, storage measured here).
      eval::VpodRunner hop_runner(topo, false, paper_vpod(dim));
      hop_runner.run_to_period(periods);
      const auto hop_stats = eval::eval_gdv(hop_runner.snapshot(), topo, hop_opts);
      (dim == 2 ? r.g2s : r.g3s) = hop_stats.stretch;
      (dim == 2 ? r.g2st : r.g3st) = hop_runner.avg_storage();
      if (dim == 3) r.gsr = hop_stats.success_rate;
      // ETX-metric run.
      eval::VpodRunner etx_runner(topo, true, paper_vpod(dim));
      etx_runner.run_to_period(periods);
      (dim == 2 ? r.g2t : r.g3t) =
          eval::eval_gdv(etx_runner.snapshot(), topo, etx_opts).transmissions;
    }
    return r;
  });

  std::vector<double> xs;
  Series mdt_stretch{"MDT on actual", {}}, g2_stretch{"GDV VPoD 2D", {}},
      g3_stretch{"GDV VPoD 3D", {}};
  Series nadv_tx{"NADV on actual", {}}, g2_tx{"GDV VPoD 2D", {}}, g3_tx{"GDV VPoD 3D", {}},
      opt_tx{"optimal", {}};
  Series nadv_st{"NADV on actual", {}}, mdt_st{"MDT on actual", {}}, g2_st{"GDV VPoD 2D", {}},
      g3_st{"GDV VPoD 3D", {}};
  Series gdv_sr{"GDV on VPoD/MDT", {}}, nadv_sr{"NADV on actual", {}};

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    xs.push_back(sizes[si]);
    Trial sum;
    for (int run = 0; run < runs; ++run) {
      const Trial& r = trials[si * static_cast<std::size_t>(runs) + static_cast<std::size_t>(run)];
      sum.ms += r.ms; sum.g2s += r.g2s; sum.g3s += r.g3s;
      sum.nt += r.nt; sum.g2t += r.g2t; sum.g3t += r.g3t; sum.ot += r.ot;
      sum.nst += r.nst; sum.mst += r.mst; sum.g2st += r.g2st; sum.g3st += r.g3st;
      sum.gsr += r.gsr; sum.nsr += r.nsr;
    }
    mdt_stretch.values.push_back(sum.ms / runs);
    g2_stretch.values.push_back(sum.g2s / runs);
    g3_stretch.values.push_back(sum.g3s / runs);
    nadv_tx.values.push_back(sum.nt / runs);
    g2_tx.values.push_back(sum.g2t / runs);
    g3_tx.values.push_back(sum.g3t / runs);
    opt_tx.values.push_back(sum.ot / runs);
    nadv_st.values.push_back(sum.nst / runs);
    mdt_st.values.push_back(sum.mst / runs);
    g2_st.values.push_back(sum.g2st / runs);
    g3_st.values.push_back(sum.g3st / runs);
    gdv_sr.values.push_back(sum.gsr / runs);
    nadv_sr.values.push_back(sum.nsr / runs);
  }

  print_table("Fig 15(a): routing stretch vs N (hop count)", "N", xs,
              {mdt_stretch, g2_stretch, g3_stretch});
  print_table("Fig 15(b): transmissions per delivery vs N (ETX)", "N", xs,
              {nadv_tx, g2_tx, g3_tx, opt_tx});
  print_table("Fig 16(a): ave. distinct nodes stored vs N", "N", xs,
              {nadv_st, mdt_st, g2_st, g3_st});
  print_table("Fig 16(b): routing success rate vs N", "N", xs, {gdv_sr, nadv_sr});
  std::printf("\nexpected shape: GDV stretch stays low and beats MDT; at N=1000 GDV's ETX\n"
              "transmissions are roughly half of NADV's; GDV/MDT success stays 1.0 while\n"
              "NADV's drops below 1 and decreases with N; storage stays low for all.\n");
  return 0;
}
