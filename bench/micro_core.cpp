// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// d-dimensional Delaunay construction, geometric predicates, GDV forwarding
// decisions, SVD, Dijkstra, and topology generation.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "analysis/embedding.hpp"
#include "obs/profile.hpp"
#include "analysis/svd.hpp"
#include "common.hpp"
#include "common/rng.hpp"
#include "geom/delaunay.hpp"
#include "geom/dynamic_delaunay.hpp"
#include "geom/predicates.hpp"
#include "routing/distance_vector.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "radio/topology.hpp"
#include "routing/mdt_view.hpp"
#include "routing/routers.hpp"
#include "eval/protocol_runner.hpp"
#include "sim/netsim.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace gdvr;

std::vector<Vec> random_points(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vec p(dim);
    for (int c = 0; c < dim; ++c) p[c] = rng.uniform(0.0, 100.0);
    pts.push_back(p);
  }
  return pts;
}

void BM_DelaunayGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const auto pts = random_points(n, dim, 42);
  for (auto _ : state) {
    const auto dt = geom::delaunay_graph(pts);
    benchmark::DoNotOptimize(dt.edges.size());
  }
  state.SetLabel("n=" + std::to_string(n) + " dim=" + std::to_string(dim));
}
BENCHMARK(BM_DelaunayGraph)
    ->Args({30, 2})
    ->Args({30, 3})
    ->Args({30, 4})
    ->Args({100, 2})
    ->Args({100, 3})
    ->Args({200, 3});

// Point location in isolation: one conflict-seed query against a prebuilt
// triangulation. kWalk is the hint-seeded visibility walk; kLinearScan is the
// original exhaustive scan it replaced.
void BM_DelaunayLocate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const bool walk = state.range(2) != 0;
  const auto pts = random_points(n, dim, 42);
  geom::Triangulation tri;
  if (!tri.build(pts)) {
    state.SkipWithError("triangulation build failed");
    return;
  }
  tri.set_locate_mode(walk ? geom::Triangulation::LocateMode::kWalk
                           : geom::Triangulation::LocateMode::kLinearScan);
  const auto queries = random_points(256, dim, 43);
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tri.locate_conflict(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel(std::string(walk ? "walk" : "linear") + " n=" + std::to_string(n) +
                 " dim=" + std::to_string(dim));
}
BENCHMARK(BM_DelaunayLocate)
    ->Args({100, 2, 1})
    ->Args({100, 2, 0})
    ->Args({200, 3, 1})
    ->Args({200, 3, 0});

// Incremental Bowyer-Watson maintenance: the per-operation cost the overlay
// pays on a memo miss, to compare against BM_DelaunayGraph's
// recompute-from-scratch at the same n/dim. Batches of 64 operations with
// the restoring half of each cycle excluded via PauseTiming.
geom::DynamicDelaunay incremental_fixture(int n, int dim) {
  geom::DynamicDelaunay dyn(dim);
  const auto pts = random_points(n, dim, 42);
  std::vector<std::pair<geom::DynamicDelaunay::Key, Vec>> init;
  for (int i = 0; i < n; ++i) init.emplace_back(i, pts[static_cast<std::size_t>(i)]);
  dyn.assign(init);
  return dyn;
}

void BM_IncrementalDelaunayInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  geom::DynamicDelaunay dyn = incremental_fixture(n, dim);
  const auto fresh = random_points(64, dim, 77);
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k)
      dyn.insert(100000 + k, fresh[static_cast<std::size_t>(k)]);
    state.PauseTiming();
    for (int k = 0; k < 64; ++k) dyn.remove(100000 + k);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["full_rebuilds"] = static_cast<double>(dyn.stats().full_rebuilds);
  state.SetLabel("n=" + std::to_string(n) + " dim=" + std::to_string(dim));
}
BENCHMARK(BM_IncrementalDelaunayInsert)->Args({100, 2})->Args({100, 3})->Args({200, 3});

void BM_IncrementalDelaunayDelete(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  geom::DynamicDelaunay dyn = incremental_fixture(n, dim);
  const auto pts = random_points(n, dim, 42);
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) dyn.remove(k);
    state.PauseTiming();
    for (int k = 0; k < 64; ++k) dyn.insert(k, pts[static_cast<std::size_t>(k)]);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["full_rebuilds"] = static_cast<double>(dyn.stats().full_rebuilds);
  state.SetLabel("n=" + std::to_string(n) + " dim=" + std::to_string(dim));
}
BENCHMARK(BM_IncrementalDelaunayDelete)->Args({100, 2})->Args({100, 3})->Args({200, 3});

void BM_IncrementalDelaunayMove(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  geom::DynamicDelaunay dyn = incremental_fixture(n, dim);
  const auto pts = random_points(n, dim, 42);
  // VPoD-adjustment-sized nudges, alternating out and back so positions stay
  // bounded over any number of iterations (the return trip is also a move).
  int key = 0;
  bool out = true;
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      Vec p = pts[static_cast<std::size_t>(key)];
      if (out) p[0] += 0.2;
      dyn.move(key, p);
      key = (key + 1) % n;
      if (key == 0) out = !out;
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
  const auto s = dyn.stats();
  state.counters["early_out_rate"] =
      s.moves > 0 ? static_cast<double>(s.move_early_outs) / static_cast<double>(s.moves) : 0.0;
  state.counters["full_rebuilds"] = static_cast<double>(s.full_rebuilds);
  state.SetLabel("n=" + std::to_string(n) + " dim=" + std::to_string(dim));
}
BENCHMARK(BM_IncrementalDelaunayMove)->Args({100, 2})->Args({100, 3})->Args({200, 3});

// Distance Vector convergence with delta vs full-table triggered updates:
// same topology, same schedule, the counter records the (dest, cost) entries
// shipped -- the Theta(N)-per-trigger vs O(changed) trade.
void BM_DeltaDvRound(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  static const radio::Topology topo = [] {
    radio::TopologyConfig tc;
    tc.n = 60;
    tc.seed = 11;
    tc.target_avg_degree = 14.5;
    return radio::make_random_topology(tc);
  }();
  routing::DvConfig cfg;
  cfg.delta_updates = delta;
  std::uint64_t entries = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::NetSim<routing::DvMsg> net(sim, topo.etx, 0.001, 0.01, 7);
    routing::DistanceVector dv(net, cfg);
    dv.start();
    sim.run_until(20.0);
    const auto s = dv.dv_stats();
    entries = s.entries_full + s.entries_delta;
  }
  state.counters["entries_shipped"] = static_cast<double>(entries);
  state.SetLabel(delta ? "delta" : "full");
}
BENCHMARK(BM_DeltaDvRound)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// One full maintenance round (adjustment period) of a converged 120-node
// VPoD/MDT network: position sampling, neighbor-set sync, and every
// MdtOverlay::recompute the round triggers. The recompute memo cache is
// exercised in situ; the hit rate over the measured rounds is reported as a
// counter. Expect it in the low tens of percent, NOT the ~98% a static
// network reaches: VPoD keeps nudging positions every adjustment tick (the
// Figure-6 step never becomes exactly zero), each nudge bumps pos_version,
// and the cache must treat any changed input as a miss -- that invalidation
// is load-bearing for correctness. The frozen-position steady state is
// pinned separately by protocol_internals_test
// (RecomputeSteadyStateOnRandomTopology).
// Arg 0: incremental local-DT maintenance (the default). Arg 1: the
// kFullRebuild oracle path -- re-triangulate from scratch on every memo miss
// -- measured from the same build so the incremental speedup is always an
// apples-to-apples pair in one suite run.
void BM_MdtMaintenanceRound(benchmark::State& state) {
  const std::size_t mode = state.range(0) != 0 ? 1 : 0;
  static eval::VpodRunner* runners[2] = {nullptr, nullptr};
  static int ks[2] = {10, 10};
  if (runners[mode] == nullptr) {
    static radio::Topology topo = bench::paper_topology(120, 4242);
    auto vc = bench::paper_vpod(3);
    if (mode == 1) vc.mdt.dt_maintenance = mdt::MdtConfig::DtMaintenance::kFullRebuild;
    runners[mode] = new eval::VpodRunner(topo, /*use_etx=*/true, vc);
    runners[mode]->run_to_period(10);  // converge before measuring
  }
  eval::VpodRunner* runner = runners[mode];
  int& k = ks[mode];
  const auto before = runner->protocol().overlay().recompute_stats();
  const auto dtb = runner->protocol().overlay().dt_stats();
  for (auto _ : state) runner->run_to_period(++k);
  const auto after = runner->protocol().overlay().recompute_stats();
  const auto dta = runner->protocol().overlay().dt_stats();
  const double calls = static_cast<double>(after.calls - before.calls);
  const double iters = static_cast<double>(state.iterations());
  if (calls > 0)
    state.counters["recompute_hit_rate"] =
        1.0 - static_cast<double>(after.rebuilds - before.rebuilds) / calls;
  // Per-iteration incremental-maintenance op mix: what a memo miss costs.
  state.counters["dt_inserts"] = static_cast<double>(dta.inserts - dtb.inserts) / iters;
  state.counters["dt_removes"] = static_cast<double>(dta.removes - dtb.removes) / iters;
  state.counters["dt_moves"] = static_cast<double>(dta.moves - dtb.moves) / iters;
  state.counters["dt_early_outs"] =
      static_cast<double>(dta.move_early_outs - dtb.move_early_outs) / iters;
  state.counters["dt_rebuilds"] =
      static_cast<double>(dta.full_rebuilds - dtb.full_rebuilds) / iters;
}
BENCHMARK(BM_MdtMaintenanceRound)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_InSpherePredicate(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto pts = random_points(dim + 1, dim, 7);
  const auto q = random_points(1, dim, 8)[0];
  for (auto _ : state) benchmark::DoNotOptimize(geom::in_sphere(pts, q));
}
BENCHMARK(BM_InSpherePredicate)->Arg(2)->Arg(3)->Arg(4);

void BM_Circumsphere(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto pts = random_points(dim + 1, dim, 9);
  Vec center;
  double r2 = 0.0;
  for (auto _ : state) benchmark::DoNotOptimize(geom::circumsphere(pts, center, r2));
}
BENCHMARK(BM_Circumsphere)->Arg(2)->Arg(3)->Arg(4);

struct RoutingFixture {
  radio::Topology topo;
  routing::MdtView view;
  RoutingFixture() {
    radio::TopologyConfig tc;
    tc.n = 200;
    tc.seed = 5;
    tc.target_avg_degree = 14.5;
    topo = radio::make_random_topology(tc);
    view = routing::centralized_mdt(topo.positions, topo.etx);
  }
};

void BM_GdvRoute(benchmark::State& state) {
  static const RoutingFixture fx;
  Rng rng(11);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    int t = rng.uniform_index(fx.topo.size() - 1);
    if (t >= s) ++t;
    benchmark::DoNotOptimize(routing::route_gdv(fx.view, s, t).cost);
  }
}
BENCHMARK(BM_GdvRoute);

void BM_MdtGreedyRoute(benchmark::State& state) {
  static const RoutingFixture fx;
  Rng rng(12);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    int t = rng.uniform_index(fx.topo.size() - 1);
    if (t >= s) ++t;
    benchmark::DoNotOptimize(routing::route_mdt_greedy(fx.view, s, t).cost);
  }
}
BENCHMARK(BM_MdtGreedyRoute);

void BM_Dijkstra(benchmark::State& state) {
  static const RoutingFixture fx;
  Rng rng(13);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    benchmark::DoNotOptimize(graph::dijkstra(fx.topo.etx, s).dist.size());
  }
}
BENCHMARK(BM_Dijkstra);

// Same workload as BM_Dijkstra but over the frozen CSR snapshot -- the
// representation every all-pairs sweep and routing hot loop actually uses.
void BM_CsrDijkstra(benchmark::State& state) {
  static const RoutingFixture fx;
  static const graph::CsrGraph csr(fx.topo.etx);
  graph::DijkstraWorkspace ws;
  Rng rng(13);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    benchmark::DoNotOptimize(graph::dijkstra(csr, s, ws).dist.size());
  }
}
BENCHMARK(BM_CsrDijkstra);

// Full cost-matrix build (freeze + parallel all-pairs Dijkstra), the backbone
// of the embedding-quality and ETX-stretch analyses.
void BM_AllPairsDistances(benchmark::State& state) {
  static const RoutingFixture fx;
  for (auto _ : state) {
    const graph::CsrGraph csr(fx.topo.etx);
    benchmark::DoNotOptimize(graph::all_pairs_distances(csr).size());
  }
}
BENCHMARK(BM_AllPairsDistances)->Unit(benchmark::kMillisecond);

void BM_TopologyGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = 21;
  std::uint64_t seed = 21;
  for (auto _ : state) {
    tc.seed = seed++;
    benchmark::DoNotOptimize(radio::make_random_topology(tc).size());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(100)->Arg(400)->Arg(2000);

// The retired O(n^2) pair scan, kept as the equivalence oracle; the ratio to
// BM_TopologyGeneration/400 is the spatial grid's win at paper scale.
void BM_TopologyGenerationAllPairs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  radio::TopologyConfig tc;
  tc.n = n;
  tc.link_scan = radio::LinkScanMode::kAllPairs;
  std::uint64_t seed = 21;
  for (auto _ : state) {
    tc.seed = seed++;
    benchmark::DoNotOptimize(radio::make_random_topology(tc).size());
  }
}
BENCHMARK(BM_TopologyGenerationAllPairs)->Arg(400);

// The serial event loop in isolation: a ring of self-rescheduling timers,
// measuring schedule + heap pop + slot recycle per event. This is the
// baseline the 4-ary EventHeap was tuned against (DESIGN.md §4g) and the
// serial term in the engine-sweep speedup curve.
void BM_SimulatorEventLoop(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng(5);
    std::function<void(int)> tick = [&](int c) {
      ++fired;
      sim.schedule_in(0.5 + rng.uniform(0.0, 1.0), [&tick, c] { tick(c); });
    };
    for (int c = 0; c < chains; ++c)
      sim.schedule_in(rng.uniform(0.0, 1.0), [&tick, c] { tick(c); });
    sim.run_until(100.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
  state.SetLabel("chains=" + std::to_string(chains));
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

// One NetSim transmission end to end: link-up check (LinkSet), per-node RNG
// delay draw, node-lane schedule, delivery. The dominant inner loop of every
// protocol run.
void BM_NetSimSend(benchmark::State& state) {
  static const RoutingFixture fx;
  sim::Simulator sim;
  sim::NetSim<int> net(sim, fx.topo.etx, 0.01, 0.1, /*seed=*/3);
  net.set_receiver([](int, int, int) {});
  Rng rng(9);
  const int n = fx.topo.size();
  std::uint64_t sent = 0;
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      const int u = rng.uniform_index(n);
      const auto& nbrs = fx.topo.etx.neighbors(u);
      if (nbrs.empty()) continue;
      const int v = nbrs[static_cast<std::size_t>(rng.uniform_index(
                             static_cast<int>(nbrs.size())))].to;
      net.send(u, v, 0);
      ++sent;
    }
    sim.run_until(sim.now() + 1.0);  // drain deliveries
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_NetSimSend);

// Full-protocol engine comparison: one VPoD run (token flood + initial MDT
// join) through the engine-selection seam. threads == 0 is the serial
// oracle; threads >= 1 runs the sharded engine with that worker count. The
// serial-vs-sharded@1 ratio is the engine's bookkeeping overhead (a few
// percent); the sharded@N rows record the wall-clock speedup curve on
// multi-core hosts (on a single-core container they measure overhead only --
// see the engine-sweep section of EXPERIMENTS.md).
void BM_VpodEngine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  static std::map<int, radio::Topology> topos;
  auto it = topos.find(n);
  if (it == topos.end()) it = topos.emplace(n, bench::paper_topology(n, 97)).first;
  const radio::Topology& topo = it->second;

  const char* prev_engine = std::getenv("GDVR_SIM_ENGINE");
  const char* prev_threads = std::getenv("GDVR_THREADS");
  const std::string saved_engine = prev_engine != nullptr ? prev_engine : "";
  const std::string saved_threads = prev_threads != nullptr ? prev_threads : "";
  setenv("GDVR_SIM_ENGINE", threads > 0 ? "sharded" : "serial", 1);
  setenv("GDVR_THREADS", std::to_string(threads > 0 ? threads : 1).c_str(), 1);

  std::uint64_t msgs = 0;
  for (auto _ : state) {
    eval::VpodRunner runner(topo, /*use_etx=*/false, bench::paper_vpod(3));
    runner.run_to_period(0);
    msgs = runner.net().total_messages_sent();
  }

  if (prev_engine != nullptr)
    setenv("GDVR_SIM_ENGINE", saved_engine.c_str(), 1);
  else
    unsetenv("GDVR_SIM_ENGINE");
  if (prev_threads != nullptr)
    setenv("GDVR_THREADS", saved_threads.c_str(), 1);
  else
    unsetenv("GDVR_THREADS");

  state.counters["messages"] = static_cast<double>(msgs);
  state.SetLabel(std::string(threads > 0 ? "sharded" : "serial") +
                 " threads=" + std::to_string(threads > 0 ? threads : 1));
}
BENCHMARK(BM_VpodEngine)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 4})
    ->Unit(benchmark::kMillisecond);

// The downed-link set replacement (std::set<pair> -> open-addressing
// LinkSet): a fault-storm mix of inserts/erases over a mostly-hit
// contains() stream, the shape link_up() sees on the send path.
template <typename SetT, typename Contains, typename Insert, typename Erase>
void down_links_mix(benchmark::State& state, SetT& set, Contains&& contains, Insert&& insert,
                    Erase&& erase) {
  Rng rng(11);
  const int n = 2000;
  std::vector<std::pair<int, int>> downed;
  for (int i = 0; i < 200; ++i) {
    const int u = rng.uniform_index(n);
    const int v = (u + 1 + rng.uniform_index(16)) % n;
    insert(set, u, v);
    downed.emplace_back(u, v);
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (int k = 0; k < 256; ++k) {
      const int u = rng.uniform_index(n);
      const int v = (u + 1 + rng.uniform_index(16)) % n;
      hits += contains(set, u, v) ? 1u : 0u;
    }
    // Churn one link per probe burst, as a fault storm would.
    const auto& flip = downed[static_cast<std::size_t>(rng.uniform_index(
        static_cast<int>(downed.size())))];
    erase(set, flip.first, flip.second);
    insert(set, flip.first, flip.second);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}

void BM_DownLinksStdSet(benchmark::State& state) {
  std::set<std::pair<int, int>> set;
  auto norm = [](int u, int v) { return std::make_pair(std::min(u, v), std::max(u, v)); };
  down_links_mix(
      state, set,
      [&](const auto& s, int u, int v) { return s.count(norm(u, v)) != 0; },
      [&](auto& s, int u, int v) { s.insert(norm(u, v)); },
      [&](auto& s, int u, int v) { s.erase(norm(u, v)); });
}
BENCHMARK(BM_DownLinksStdSet);

void BM_DownLinksLinkSet(benchmark::State& state) {
  sim::LinkSet set;
  down_links_mix(
      state, set,
      [](const auto& s, int u, int v) { return s.contains(sim::LinkSet::key(u, v)); },
      [](auto& s, int u, int v) { s.insert(sim::LinkSet::key(u, v)); },
      [](auto& s, int u, int v) { s.erase(sim::LinkSet::key(u, v)); });
}
BENCHMARK(BM_DownLinksLinkSet);

void BM_JacobiSvd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  analysis::Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = rng.uniform(0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(analysis::jacobi_singular_values(m).front());
}
BENCHMARK(BM_JacobiSvd)->Arg(30)->Arg(60);

void BM_TopSingularValues(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(33);
  analysis::Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = rng.uniform(0.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::top_singular_values(m, 15, 30).front());
}
BENCHMARK(BM_TopSingularValues)->Arg(200)->Arg(400);

}  // namespace

// BENCHMARK_MAIN() expanded by hand so a GDVR_PROFILE=1 run can append the
// scoped-timer report (Delaunay build, overlay recompute, dijkstra, ...)
// after the benchmark table; scripts/bench.sh --profile relies on this.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (gdvr::obs::profiling_enabled()) gdvr::obs::write_profile_report(std::cerr);
  return 0;
}
