// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// d-dimensional Delaunay construction, geometric predicates, GDV forwarding
// decisions, SVD, Dijkstra, and topology generation.
#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/embedding.hpp"
#include "obs/profile.hpp"
#include "analysis/svd.hpp"
#include "common.hpp"
#include "common/rng.hpp"
#include "geom/delaunay.hpp"
#include "geom/predicates.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "radio/topology.hpp"
#include "routing/mdt_view.hpp"
#include "routing/routers.hpp"

namespace {

using namespace gdvr;

std::vector<Vec> random_points(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vec p(dim);
    for (int c = 0; c < dim; ++c) p[c] = rng.uniform(0.0, 100.0);
    pts.push_back(p);
  }
  return pts;
}

void BM_DelaunayGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const auto pts = random_points(n, dim, 42);
  for (auto _ : state) {
    const auto dt = geom::delaunay_graph(pts);
    benchmark::DoNotOptimize(dt.edges.size());
  }
  state.SetLabel("n=" + std::to_string(n) + " dim=" + std::to_string(dim));
}
BENCHMARK(BM_DelaunayGraph)
    ->Args({30, 2})
    ->Args({30, 3})
    ->Args({30, 4})
    ->Args({100, 2})
    ->Args({100, 3})
    ->Args({200, 3});

// Point location in isolation: one conflict-seed query against a prebuilt
// triangulation. kWalk is the hint-seeded visibility walk; kLinearScan is the
// original exhaustive scan it replaced.
void BM_DelaunayLocate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const bool walk = state.range(2) != 0;
  const auto pts = random_points(n, dim, 42);
  geom::Triangulation tri;
  if (!tri.build(pts)) {
    state.SkipWithError("triangulation build failed");
    return;
  }
  tri.set_locate_mode(walk ? geom::Triangulation::LocateMode::kWalk
                           : geom::Triangulation::LocateMode::kLinearScan);
  const auto queries = random_points(256, dim, 43);
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tri.locate_conflict(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel(std::string(walk ? "walk" : "linear") + " n=" + std::to_string(n) +
                 " dim=" + std::to_string(dim));
}
BENCHMARK(BM_DelaunayLocate)
    ->Args({100, 2, 1})
    ->Args({100, 2, 0})
    ->Args({200, 3, 1})
    ->Args({200, 3, 0});

// One full maintenance round (adjustment period) of a converged 120-node
// VPoD/MDT network: position sampling, neighbor-set sync, and every
// MdtOverlay::recompute the round triggers. The recompute memo cache is
// exercised in situ; the hit rate over the measured rounds is reported as a
// counter. Expect it in the low tens of percent, NOT the ~98% a static
// network reaches: VPoD keeps nudging positions every adjustment tick (the
// Figure-6 step never becomes exactly zero), each nudge bumps pos_version,
// and the cache must treat any changed input as a miss -- that invalidation
// is load-bearing for correctness. The frozen-position steady state is
// pinned separately by protocol_internals_test
// (RecomputeSteadyStateOnRandomTopology).
void BM_MdtMaintenanceRound(benchmark::State& state) {
  static eval::VpodRunner* runner = [] {
    static radio::Topology topo = bench::paper_topology(120, 4242);
    auto* r = new eval::VpodRunner(topo, /*use_etx=*/true, bench::paper_vpod(3));
    r->run_to_period(10);  // converge before measuring
    return r;
  }();
  static int k = 10;
  const auto before = runner->protocol().overlay().recompute_stats();
  for (auto _ : state) runner->run_to_period(++k);
  const auto after = runner->protocol().overlay().recompute_stats();
  const double calls = static_cast<double>(after.calls - before.calls);
  if (calls > 0)
    state.counters["recompute_hit_rate"] =
        1.0 - static_cast<double>(after.rebuilds - before.rebuilds) / calls;
}
BENCHMARK(BM_MdtMaintenanceRound)->Unit(benchmark::kMillisecond);

void BM_InSpherePredicate(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto pts = random_points(dim + 1, dim, 7);
  const auto q = random_points(1, dim, 8)[0];
  for (auto _ : state) benchmark::DoNotOptimize(geom::in_sphere(pts, q));
}
BENCHMARK(BM_InSpherePredicate)->Arg(2)->Arg(3)->Arg(4);

void BM_Circumsphere(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto pts = random_points(dim + 1, dim, 9);
  Vec center;
  double r2 = 0.0;
  for (auto _ : state) benchmark::DoNotOptimize(geom::circumsphere(pts, center, r2));
}
BENCHMARK(BM_Circumsphere)->Arg(2)->Arg(3)->Arg(4);

struct RoutingFixture {
  radio::Topology topo;
  routing::MdtView view;
  RoutingFixture() {
    radio::TopologyConfig tc;
    tc.n = 200;
    tc.seed = 5;
    tc.target_avg_degree = 14.5;
    topo = radio::make_random_topology(tc);
    view = routing::centralized_mdt(topo.positions, topo.etx);
  }
};

void BM_GdvRoute(benchmark::State& state) {
  static const RoutingFixture fx;
  Rng rng(11);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    int t = rng.uniform_index(fx.topo.size() - 1);
    if (t >= s) ++t;
    benchmark::DoNotOptimize(routing::route_gdv(fx.view, s, t).cost);
  }
}
BENCHMARK(BM_GdvRoute);

void BM_MdtGreedyRoute(benchmark::State& state) {
  static const RoutingFixture fx;
  Rng rng(12);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    int t = rng.uniform_index(fx.topo.size() - 1);
    if (t >= s) ++t;
    benchmark::DoNotOptimize(routing::route_mdt_greedy(fx.view, s, t).cost);
  }
}
BENCHMARK(BM_MdtGreedyRoute);

void BM_Dijkstra(benchmark::State& state) {
  static const RoutingFixture fx;
  Rng rng(13);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    benchmark::DoNotOptimize(graph::dijkstra(fx.topo.etx, s).dist.size());
  }
}
BENCHMARK(BM_Dijkstra);

// Same workload as BM_Dijkstra but over the frozen CSR snapshot -- the
// representation every all-pairs sweep and routing hot loop actually uses.
void BM_CsrDijkstra(benchmark::State& state) {
  static const RoutingFixture fx;
  static const graph::CsrGraph csr(fx.topo.etx);
  graph::DijkstraWorkspace ws;
  Rng rng(13);
  for (auto _ : state) {
    const int s = rng.uniform_index(fx.topo.size());
    benchmark::DoNotOptimize(graph::dijkstra(csr, s, ws).dist.size());
  }
}
BENCHMARK(BM_CsrDijkstra);

// Full cost-matrix build (freeze + parallel all-pairs Dijkstra), the backbone
// of the embedding-quality and ETX-stretch analyses.
void BM_AllPairsDistances(benchmark::State& state) {
  static const RoutingFixture fx;
  for (auto _ : state) {
    const graph::CsrGraph csr(fx.topo.etx);
    benchmark::DoNotOptimize(graph::all_pairs_distances(csr).size());
  }
}
BENCHMARK(BM_AllPairsDistances)->Unit(benchmark::kMillisecond);

void BM_TopologyGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = 21;
  std::uint64_t seed = 21;
  for (auto _ : state) {
    tc.seed = seed++;
    benchmark::DoNotOptimize(radio::make_random_topology(tc).size());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(100)->Arg(400)->Arg(2000);

// The retired O(n^2) pair scan, kept as the equivalence oracle; the ratio to
// BM_TopologyGeneration/400 is the spatial grid's win at paper scale.
void BM_TopologyGenerationAllPairs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  radio::TopologyConfig tc;
  tc.n = n;
  tc.link_scan = radio::LinkScanMode::kAllPairs;
  std::uint64_t seed = 21;
  for (auto _ : state) {
    tc.seed = seed++;
    benchmark::DoNotOptimize(radio::make_random_topology(tc).size());
  }
}
BENCHMARK(BM_TopologyGenerationAllPairs)->Arg(400);

void BM_JacobiSvd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  analysis::Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = rng.uniform(0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(analysis::jacobi_singular_values(m).front());
}
BENCHMARK(BM_JacobiSvd)->Arg(30)->Arg(60);

void BM_TopSingularValues(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(33);
  analysis::Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = rng.uniform(0.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::top_singular_values(m, 15, 30).front());
}
BENCHMARK(BM_TopSingularValues)->Arg(200)->Arg(400);

}  // namespace

// BENCHMARK_MAIN() expanded by hand so a GDVR_PROFILE=1 run can append the
// scoped-timer report (Delaunay build, overlay recompute, dijkstra, ...)
// after the benchmark table; scripts/bench.sh --profile relies on this.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (gdvr::obs::profiling_enabled()) gdvr::obs::write_profile_report(std::cerr);
  return 0;
}
