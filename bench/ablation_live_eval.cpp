// Methodology validation: offline snapshot evaluation vs live packet
// forwarding.
//
// Every figure bench evaluates routing by walking packets over a *snapshot*
// of the distributed state (fast, deterministic). The live data plane
// (vpod/live_gdv.hpp) instead ships real packets through the DES where each
// node forwards from its own, possibly stale, local state. This bench runs
// both on the same converged network and reports the gap -- if the offline
// shortcut were distorting results, it would show here.
#include "common.hpp"
#include "vpod/live_gdv.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int packets = full ? 2000 : 400;
  const int periods = full ? 20 : 10;
  const radio::Topology topo = paper_topology(200, 9091);
  std::printf("Offline vs live evaluation | N=%d, ETX, 3D, %d packets%s\n", topo.size(), packets,
              full ? " [full]" : " [quick]");

  sim::Simulator sim;
  mdt::Net net(sim, topo.etx, 0.01, 0.1, 5);
  vpod::VpodConfig vc = paper_vpod(3);
  vpod::Vpod proto(net, vc);
  proto.start(0);
  vpod::LiveGdv live(net, proto);
  const double period = vc.join_period_s + vc.adjust_period_s;
  sim.run_until(0.5 + vc.join_period_s + periods * period);

  const auto view = routing::snapshot_overlay(proto.overlay(), topo.etx);
  Rng rng(17);
  double offline_sum = 0.0;
  int offline_ok = 0;
  for (int i = 0; i < packets; ++i) {
    const int s = rng.uniform_index(topo.size());
    int t = rng.uniform_index(topo.size() - 1);
    if (t >= s) ++t;
    const auto r = routing::route_gdv(view, s, t);
    if (r.success) {
      offline_sum += r.cost;
      ++offline_ok;
    }
    live.send_packet(s, t);
  }
  sim.run_until(sim.now() + 60.0);

  const double offline_mean = offline_ok ? offline_sum / offline_ok : 0.0;
  std::printf("\n%-28s %14s %14s\n", "", "offline eval", "live packets");
  std::printf("%-28s %14.1f%% %13.1f%%\n", "delivery rate",
              100.0 * offline_ok / packets, 100.0 * live.delivery_rate());
  std::printf("%-28s %14.3f %14.3f\n", "mean ETX cost per delivery", offline_mean,
              live.mean_delivered_cost());
  std::printf("%-28s %14s %14.3f\n", "gap", "--",
              offline_mean > 0 ? live.mean_delivered_cost() / offline_mean : 0.0);
  std::printf("\nexpected shape: both columns agree within a few percent -- the offline\n"
              "snapshot evaluation used by the figure benches is faithful.\n");
  return 0;
}
