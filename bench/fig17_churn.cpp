// Figure 17: resilience to churn. A 200-node network runs for 10 adjustment
// periods; then 150 of the 200 nodes fail and 150 fresh nodes join (initial
// position: centroid of physical neighbors with error < 1). Routing
// performance is tracked through recovery for VPoD in 2D, 3D and 4D.
//
// Universe construction: 350 node sites are generated in the same field with
// density tuned so that any 200 alive nodes see the paper's average degree
// of ~14.5; sites 200..349 stay silent until the churn event.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

void run_metric(bool use_etx, int periods, int churn_period, int pairs, std::uint64_t seed) {
  // 350-node universe; degree scales linearly with alive density, so target
  // 14.5 * 350/200 for the full set.
  radio::TopologyConfig tc;
  tc.n = 350;
  tc.seed = seed;
  tc.width_m = 100.0;
  tc.height_m = 100.0;
  tc.target_avg_degree = 14.5 * 350.0 / 200.0;
  const radio::Topology topo = radio::make_random_topology(tc);

  std::vector<double> xs;
  for (int k = 0; k <= periods; ++k) xs.push_back(k);
  std::vector<Series> series;

  const std::vector<int> dims = full_mode() ? std::vector<int>{2, 3, 4} : std::vector<int>{2, 3};
  for (int dim : dims) {
    // Latent sites (ids >= 200) start dead.
    std::vector<int> latent;
    for (int u = 200; u < topo.size(); ++u) latent.push_back(u);
    eval::VpodRunner runner(topo, use_etx, paper_vpod(dim), {}, seed, latent);

    Series s{"GDV VPoD " + std::to_string(dim) + "D", {}};
    Rng rng(seed * 3 + static_cast<std::uint64_t>(dim));
    bool churned = false;
    for (int k = 0; k <= periods; ++k) {
      runner.run_to_period(k);
      if (!churned && k >= churn_period) {
        churned = true;
        // 150 of the 200 original nodes fail; 150 latent sites join.
        std::vector<int> victims;
        while (victims.size() < 150) {
          const int u = 1 + rng.uniform_index(199);  // keep node 0 (token origin)
          if (std::find(victims.begin(), victims.end(), u) == victims.end()) victims.push_back(u);
        }
        for (int v : victims) runner.protocol().fail_node(v);
        int joined = 0;
        for (int u : latent) {
          if (joined >= 150) break;
          runner.protocol().join_node(u);
          ++joined;
        }
      }
      const auto view = runner.snapshot();
      eval::EvalOptions opts;
      opts.use_etx = use_etx;
      opts.pair_samples = pairs;
      opts.seed = seed + static_cast<std::uint64_t>(k);
      opts.eligible = eval::largest_alive_component(view);
      const auto stats = eval::eval_gdv(view, topo, opts);
      s.values.push_back(use_etx ? stats.transmissions : stats.stretch);
    }
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 17(b): ave. transmissions per delivery (ETX)"
                      : "Fig 17(a): routing stretch (hop count)",
              "period", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 20 : 16;
  const int churn_period = 10;
  const int pairs = full ? 0 : 300;
  std::printf("Figure 17 | churn at period %d: 150/200 nodes fail, 150 join%s\n", churn_period,
              full ? " [full]" : " [quick]");
  run_metric(false, periods, churn_period, pairs, 1701);
  run_metric(true, periods, churn_period, pairs, 1702);
  std::printf("\nexpected shape: performance degrades right after churn, then recovers to\n"
              "pre-churn levels within ~2-3 adjustment periods (3D fastest).\n");
  return 0;
}
