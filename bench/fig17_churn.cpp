// Figure 17: resilience to churn. An N-node network runs for 10 adjustment
// periods; then a configurable fraction of the alive nodes fail and an equal
// number of fresh nodes join (initial position: centroid of physical
// neighbors with error < 1). Routing performance is tracked through recovery
// for VPoD in 2D, 3D and 4D.
//
// The paper's event is N=200 with churn fraction 0.75 (150 of 200 fail, 150
// latent sites join) -- the defaults here. Override with:
//   fig17_churn [--full] [--n=<alive nodes>] [--churn=<fraction>]
//
// Universe construction: N*(1+fraction) node sites are generated in the same
// field with density tuned so that any N alive nodes see the paper's average
// degree of ~14.5; the latent sites stay silent until the churn event, which
// is expanded by the churn workload generator (sim/churn.hpp) into a
// FaultSchedule and injected through the fault subsystem.
#include "common.hpp"
#include "sim/churn.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

struct ChurnParams {
  int n = 200;           // alive network size
  double fraction = 0.75;  // of alive nodes leaving (and latent nodes joining)
};

void run_metric(bool use_etx, const ChurnParams& cp, int periods, int churn_period, int pairs,
                std::uint64_t seed) {
  const int churn_count = static_cast<int>(cp.fraction * static_cast<double>(cp.n) + 0.5);
  const int universe = cp.n + churn_count;
  // Degree scales linearly with alive density, so target 14.5 * universe/n
  // for the full site set; field area scales with n like paper_topology.
  radio::TopologyConfig tc;
  tc.n = universe;
  tc.seed = seed;
  const double scale = std::sqrt(static_cast<double>(cp.n) / 200.0);
  tc.width_m = 100.0 * scale;
  tc.height_m = 100.0 * scale;
  tc.target_avg_degree = 14.5 * static_cast<double>(universe) / static_cast<double>(cp.n);
  const radio::Topology topo = radio::make_random_topology(tc);

  std::vector<double> xs;
  for (int k = 0; k <= periods; ++k) xs.push_back(k);
  std::vector<Series> series;

  const std::vector<int> dims = full_mode() ? std::vector<int>{2, 3, 4} : std::vector<int>{2, 3};
  for (int dim : dims) {
    // Latent sites (ids >= n) start dead.
    std::vector<int> latent;
    for (int u = cp.n; u < topo.size(); ++u) latent.push_back(u);
    eval::VpodRunner runner(topo, use_etx, paper_vpod(dim), {}, seed, latent);

    Series s{"GDV VPoD " + std::to_string(dim) + "D", {}};
    bool churned = false;
    for (int k = 0; k <= periods; ++k) {
      runner.run_to_period(k);
      if (!churned && k >= churn_period) {
        churned = true;
        // The flash-crowd event: churn_count of the original nodes fail and
        // churn_count latent sites join, at one instant. Node 0 (the token
        // origin) is protected by keeping it out of the leave pool.
        std::vector<int> leave_pool;
        for (int u = 1; u < cp.n; ++u) leave_pool.push_back(u);
        const sim::Time at = runner.simulator().now() + 0.01;
        const sim::FaultSchedule event = sim::flash_crowd(
            at, churn_count, leave_pool, churn_count, latent,
            seed * 3 + static_cast<std::uint64_t>(dim));
        runner.faults().install(event);
        runner.simulator().run_until(at + 0.01);  // apply before this period's eval
      }
      const auto view = runner.snapshot();
      eval::EvalOptions opts;
      opts.use_etx = use_etx;
      opts.pair_samples = pairs;
      opts.seed = seed + static_cast<std::uint64_t>(k);
      opts.eligible = eval::largest_alive_component(view);
      const auto stats = eval::eval_gdv(view, topo, opts);
      s.values.push_back(use_etx ? stats.transmissions : stats.stretch);
    }
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 17(b): ave. transmissions per delivery (ETX)"
                      : "Fig 17(a): routing stretch (hop count)",
              "period", xs, series);
}

ChurnParams parse_params(int argc, char** argv) {
  ChurnParams cp;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) cp.n = std::atoi(argv[i] + 4);
    if (std::strncmp(argv[i], "--churn=", 8) == 0) cp.fraction = std::atof(argv[i] + 8);
  }
  if (cp.n < 10) cp.n = 10;
  if (cp.fraction < 0.0) cp.fraction = 0.0;
  if (cp.fraction > 1.0) cp.fraction = 1.0;
  return cp;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const ChurnParams cp = parse_params(argc, argv);
  const int periods = full ? 20 : 16;
  const int churn_period = 10;
  const int pairs = full ? 0 : 300;
  const int churn_count = static_cast<int>(cp.fraction * static_cast<double>(cp.n) + 0.5);
  std::printf("Figure 17 | churn at period %d: %d/%d nodes fail, %d join%s\n", churn_period,
              churn_count, cp.n, churn_count, full ? " [full]" : " [quick]");
  run_metric(false, cp, periods, churn_period, pairs, 1701);
  run_metric(true, cp, periods, churn_period, pairs, 1702);
  std::printf("\nexpected shape: performance degrades right after churn, then recovers to\n"
              "pre-churn levels within ~2-3 adjustment periods (3D fastest).\n");
  return 0;
}
